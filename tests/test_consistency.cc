// Randomized release-consistency property tests.
//
// Programs perform integer read-modify-writes on a shared array under locks
// and barriers. Integer addition commutes exactly, so the final state is
// schedule-independent and can be checked against a host-side model — any
// lost update, stale read or mis-ordered diff shows up as an exact mismatch.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::AllProtocols;

struct FuzzParams {
  ProtocolKind kind;
  uint64_t seed;
};

class ConsistencyFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

// Phase pattern modeled on the Water apps: an unlocked owner phase (disjoint
// slots), a locked accumulate phase (overlapping regions), repeated over
// several barrier-separated rounds.
TEST_P(ConsistencyFuzzTest, LockedAccumulationMatchesModel) {
  const FuzzParams params = GetParam();
  Rng setup_rng(params.seed);

  const int nodes = static_cast<int>(setup_rng.NextInt(2, 8));
  const int slots = static_cast<int>(setup_rng.NextInt(64, 512));  // int64 per slot.
  const int rounds = static_cast<int>(setup_rng.NextInt(1, 4));
  const int regions = static_cast<int>(setup_rng.NextInt(2, 8));

  // Randomize the configuration space too: page size, diff granularity,
  // diff policy, GC pressure, home migration, interrupt cost.
  const int64_t page_sizes[] = {512, 1024, 4096};
  SimConfig cfg = testing::SmallConfig(params.kind, nodes, 4 << 20,
                                       page_sizes[setup_rng.NextBounded(3)]);
  cfg.protocol.gc_threshold_bytes = setup_rng.NextBool(0.3) ? 16 << 10 : 4 << 20;
  cfg.protocol.diff_word_bytes = setup_rng.NextBool() ? 4 : 8;
  cfg.protocol.diff_policy = setup_rng.NextBool(0.3) ? DiffPolicy::kLazy : DiffPolicy::kEager;
  cfg.protocol.migrate_homes = setup_rng.NextBool(0.3);
  if (setup_rng.NextBool(0.25)) {
    cfg.costs.receive_interrupt = Millis(2);  // Stretch the race windows.
  }
  if (setup_rng.NextBool(0.25)) {
    cfg.protocol.home_policy = HomePolicy::kRoundRobin;
  }
  System sys(cfg);
  const GlobalAddr arr = sys.space().AllocPageAligned(slots * 8);

  // Host-side model: final value of each slot.
  std::vector<int64_t> model(static_cast<size_t>(slots), 0);

  // Pre-generate each node's per-round plan so the model can be computed
  // independent of scheduling.
  struct Op {
    int region;
    std::vector<std::pair<int, int64_t>> adds;  // (slot, delta)
  };
  std::vector<std::vector<std::vector<Op>>> plan(static_cast<size_t>(nodes));
  const int region_size = slots / regions;
  for (int n = 0; n < nodes; ++n) {
    Rng rng(params.seed * 977 + static_cast<uint64_t>(n));
    plan[static_cast<size_t>(n)].resize(static_cast<size_t>(rounds));
    for (int r = 0; r < rounds; ++r) {
      const int ops = static_cast<int>(rng.NextInt(1, 5));
      for (int o = 0; o < ops; ++o) {
        Op op;
        op.region = static_cast<int>(rng.NextInt(0, regions - 1));
        const int base = op.region * region_size;
        const int count = static_cast<int>(rng.NextInt(1, 10));
        for (int a = 0; a < count; ++a) {
          const int slot = base + static_cast<int>(rng.NextInt(0, region_size - 1));
          const int64_t delta = rng.NextInt(1, 1000);
          op.adds.emplace_back(slot, delta);
          model[static_cast<size_t>(slot)] += delta;
        }
        plan[static_cast<size_t>(n)][static_cast<size_t>(r)].push_back(std::move(op));
      }
    }
  }

  sys.Run([&](NodeContext& ctx) -> Task<void> {
    const int me = ctx.id();
    if (me == 0) {
      co_await ctx.Write(arr, slots * 8);
      std::memset(ctx.Ptr<int64_t>(arr), 0, static_cast<size_t>(slots) * 8);
    }
    co_await ctx.Barrier(0);
    for (int r = 0; r < rounds; ++r) {
      for (const Op& op : plan[static_cast<size_t>(me)][static_cast<size_t>(r)]) {
        co_await ctx.Lock(op.region);
        const GlobalAddr raddr = arr + static_cast<GlobalAddr>(op.region * region_size) * 8;
        co_await ctx.Write(raddr, region_size * 8);
        int64_t* data = ctx.Ptr<int64_t>(arr);
        for (const auto& [slot, delta] : op.adds) {
          data[slot] += delta;
        }
        co_await ctx.Unlock(op.region);
        co_await ctx.Compute(Micros(20));
      }
      co_await ctx.Barrier(1);
      // Everyone audits the full array mid-run: all committed sums from
      // previous rounds must be visible after the barrier.
      co_await ctx.Read(arr, slots * 8);
      co_await ctx.Barrier(2);
    }
  });

  // After the final barrier every node read the array; all copies must equal
  // the model.
  for (int n = 0; n < nodes; ++n) {
    const int64_t* data = reinterpret_cast<const int64_t*>(sys.NodeMemory(n, arr));
    for (int s = 0; s < slots; ++s) {
      ASSERT_EQ(data[s], model[static_cast<size_t>(s)])
          << "node " << n << " slot " << s << " kind " << ProtocolName(params.kind)
          << " seed " << params.seed;
    }
  }
}

// Single-writer broadcast chains: each round one pseudo-random writer stamps
// a region; after the barrier everyone must see exactly the last stamp.
TEST_P(ConsistencyFuzzTest, RotatingWriterVisibility) {
  const FuzzParams params = GetParam();
  Rng setup_rng(params.seed ^ 0xabcdef);

  const int nodes = static_cast<int>(setup_rng.NextInt(2, 8));
  const int slots = 256;
  const int rounds = 6;

  SimConfig cfg = testing::SmallConfig(params.kind, nodes, 4 << 20, 1024);
  System sys(cfg);
  const GlobalAddr arr = sys.space().AllocPageAligned(slots * 8);

  std::vector<int> fail_count(static_cast<size_t>(nodes), 0);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    Rng rng(params.seed + 5);
    for (int r = 0; r < rounds; ++r) {
      const NodeId writer = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(ctx.nodes())));
      if (ctx.id() == writer) {
        co_await ctx.Write(arr, slots * 8);
        int64_t* data = ctx.Ptr<int64_t>(arr);
        for (int s = 0; s < slots; ++s) {
          data[s] = r * 1000 + s;
        }
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(arr, slots * 8);
      const int64_t* data = ctx.Ptr<int64_t>(arr);
      for (int s = 0; s < slots; ++s) {
        if (data[s] != r * 1000 + s) {
          ++fail_count[static_cast<size_t>(ctx.id())];
        }
      }
      co_await ctx.Barrier(1);
    }
  });
  for (int n = 0; n < nodes; ++n) {
    EXPECT_EQ(fail_count[static_cast<size_t>(n)], 0) << "node " << n;
  }
}

std::vector<FuzzParams> FuzzCases() {
  std::vector<FuzzParams> cases;
  for (ProtocolKind kind : AllProtocols()) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      cases.push_back(FuzzParams{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ConsistencyFuzzTest, ::testing::ValuesIn(FuzzCases()),
                         [](const ::testing::TestParamInfo<FuzzParams>& info) {
                           return std::string(ProtocolName(info.param.kind)) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace hlrc

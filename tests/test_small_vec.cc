// Directed regressions for SmallVec (src/mem/small_vec.h), the memcpy-based
// inline vector behind IntervalRecord::pages. The interesting states are the
// inline<->heap spill boundary and aliased arguments: growth reallocates, so
// any reference into the vector's own storage dangles across it. Run under
// ASan (HLRC_SANITIZE=ON) these tests are failing-before/passing-after for
// the push_back-from-self-across-growth bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "src/mem/small_vec.h"

namespace hlrc {
namespace {

using Vec = SmallVec<uint64_t, 2>;

Vec MakeInline() { return Vec{1, 2}; }           // size 2 == N: no heap.
Vec MakeHeap() { return Vec{10, 20, 30, 40}; }   // spilled to heap.

void ExpectSeq(const Vec& v, std::initializer_list<uint64_t> want) {
  ASSERT_EQ(v.size(), want.size());
  size_t i = 0;
  for (uint64_t w : want) {
    EXPECT_EQ(v[i], w) << "index " << i;
    ++i;
  }
}

TEST(SmallVec, InlineUntilCapacityThenSpills) {
  Vec v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.capacity(), Vec::inline_capacity());
  v.push_back(3);
  EXPECT_GT(v.capacity(), Vec::inline_capacity());
  ExpectSeq(v, {1, 2, 3});
}

// push_back of an element of the vector itself, across the inline->heap
// spill. The reference aliases inline_ which stays valid through Grow, but
// the value must be read before size_/storage bookkeeping moves.
TEST(SmallVec, PushBackOwnElementAcrossInlineSpill) {
  Vec v{7, 8};
  v.push_back(v[0]);
  ExpectSeq(v, {7, 8, 7});
}

// push_back of an element of the vector itself across heap->heap growth:
// Grow deletes the old heap buffer, so reading `v` after it is a
// use-after-free. This is the ASan failing-before case.
TEST(SmallVec, PushBackOwnElementAcrossHeapGrowth) {
  Vec v;
  for (uint64_t i = 0; i < 4; ++i) {
    v.push_back(100 + i);  // size 4 == cap 4, on heap; next push grows.
  }
  ASSERT_EQ(v.size(), v.capacity());
  v.push_back(v[1]);
  ExpectSeq(v, {100, 101, 102, 103, 101});
}

TEST(SmallVec, SelfCopyAssignInline) {
  Vec v = MakeInline();
  v = *&v;  // *& defeats -Wself-assign without changing semantics.
  ExpectSeq(v, {1, 2});
}

TEST(SmallVec, SelfCopyAssignHeap) {
  Vec v = MakeHeap();
  v = *&v;
  ExpectSeq(v, {10, 20, 30, 40});
}

TEST(SmallVec, SelfMoveAssignIsHarmless) {
  Vec v = MakeHeap();
  Vec& alias = v;
  v = std::move(alias);
  ExpectSeq(v, {10, 20, 30, 40});
}

// Destination holding a heap buffer, source inline: the destination may keep
// its buffer for reuse but must expose exactly the source's elements.
TEST(SmallVec, HeapToInlineCopyAssign) {
  Vec dst = MakeHeap();
  const Vec src = MakeInline();
  dst = src;
  ExpectSeq(dst, {1, 2});
}

TEST(SmallVec, InlineToHeapCopyAssign) {
  Vec dst = MakeInline();
  const Vec src = MakeHeap();
  dst = src;
  ExpectSeq(dst, {10, 20, 30, 40});
}

TEST(SmallVec, MoveAssignTransfersHeapBuffer) {
  Vec dst = MakeInline();
  Vec src = MakeHeap();
  const uint64_t* buf = src.data();
  dst = std::move(src);
  EXPECT_EQ(dst.data(), buf) << "heap buffer should transfer, not copy";
  ExpectSeq(dst, {10, 20, 30, 40});
  EXPECT_TRUE(src.empty());
}

// A moved-from SmallVec must be assignable and usable: StealFrom leaves it
// {heap_=nullptr, cap_=N, size_=0}, i.e. a fresh inline vector.
TEST(SmallVec, AssignIntoMovedFrom) {
  Vec moved_from = MakeHeap();
  Vec sink = std::move(moved_from);
  ExpectSeq(sink, {10, 20, 30, 40});

  moved_from = MakeInline();
  ExpectSeq(moved_from, {1, 2});

  Vec heap_again = MakeHeap();
  moved_from = heap_again;
  ExpectSeq(moved_from, {10, 20, 30, 40});

  moved_from.push_back(50);
  ExpectSeq(moved_from, {10, 20, 30, 40, 50});
}

TEST(SmallVec, ClearKeepsHeapBufferForReuse) {
  Vec v = MakeHeap();
  const uint64_t* buf = v.data();
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  EXPECT_EQ(v.data(), buf);
}

TEST(SmallVec, EqualityComparesElementsNotStorage) {
  Vec heap = MakeHeap();
  heap.clear();
  heap.push_back(1);
  heap.push_back(2);  // size 2 but heap-backed.
  const Vec inline_v = MakeInline();
  EXPECT_TRUE(heap == inline_v);
}

}  // namespace
}  // namespace hlrc

#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace hlrc {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.Now(), 0);
  EXPECT_TRUE(e.Idle());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.Schedule(Micros(30), [&] { order.push_back(3); });
  e.Schedule(Micros(10), [&] { order.push_back(1); });
  e.Schedule(Micros(20), [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), Micros(30));
}

TEST(Engine, SimultaneousEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.Schedule(Micros(5), [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine e;
  SimTime inner_time = -1;
  e.Schedule(Micros(10), [&] {
    e.Schedule(Micros(5), [&] { inner_time = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(inner_time, Micros(15));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const Engine::EventId id = e.Schedule(Micros(10), [&] { ran = true; });
  e.Cancel(id);
  e.Run();
  EXPECT_FALSE(ran);
  // Cancelled events do not advance time.
  EXPECT_EQ(e.Now(), 0);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterRun) {
  Engine e;
  const Engine::EventId id = e.Schedule(0, [] {});
  e.Run();
  e.Cancel(id);  // No-op.
  e.Cancel(id);
  EXPECT_TRUE(e.Idle());
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  SimTime t = -1;
  e.Schedule(Micros(7), [&] {
    e.Schedule(0, [&] { t = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(t, Micros(7));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.Step());
  e.Schedule(0, [] {});
  EXPECT_TRUE(e.Step());
  EXPECT_FALSE(e.Step());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int count = 0;
  e.Schedule(Micros(10), [&] { ++count; });
  e.Schedule(Micros(20), [&] { ++count; });
  EXPECT_FALSE(e.RunUntil(Micros(15)));
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.RunUntil(Micros(100)));
  EXPECT_EQ(count, 2);
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) {
    e.Schedule(i, [] {});
  }
  e.Run();
  EXPECT_EQ(e.events_processed(), 5);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [] {
    Engine e;
    std::vector<SimTime> times;
    for (int i = 0; i < 50; ++i) {
      e.Schedule((i * 37) % 11, [&times, &e] { times.push_back(e.Now()); });
    }
    e.Run();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hlrc

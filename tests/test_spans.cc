// Causal span tracing (src/tracing): DAG well-formedness across the paper's
// applications and protocol families, exact critical-path attribution
// (categories partition each root's wait), a hand-computed attribution
// fixture, JSON round-tripping, and the retransmit regression — a dropped
// then retransmitted page request must stay one connected fault chain.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/app.h"
#include "src/metrics/json.h"
#include "src/metrics/json_writer.h"
#include "src/svm/system.h"
#include "src/tracing/critpath.h"
#include "src/tracing/span.h"
#include "src/tracing/span_check.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

// Categories must sum exactly to each root's duration — attribution is a
// partition of the root's window, not a sample (simulated time is integral,
// so the equality is exact, no rounding slop).
void ExpectExactPartition(const CritPathSummary& sum, const std::string& where) {
  SimTime roots_wait = 0;
  for (const RootAttribution& r : sum.roots) {
    SimTime cats = 0;
    for (size_t c = 0; c < kCritCatCount; ++c) {
      cats += r.by_cat[c];
    }
    ASSERT_EQ(cats, r.t1 - r.t0)
        << where << ": root span " << r.id << " (" << SpanKindName(r.kind)
        << ") categories do not partition its wait";
    roots_wait += r.t1 - r.t0;
  }
  EXPECT_EQ(roots_wait, sum.total_wait) << where;
  SimTime grand = 0;
  for (size_t c = 0; c < kCritCatCount; ++c) {
    grand += sum.total[c];
  }
  EXPECT_EQ(grand, sum.total_wait) << where;
}

TEST(SpanDag, WellFormedAcrossPaperAppsAndProtocols) {
  for (const std::string& app_name : AppNames()) {
    for (ProtocolKind kind : testing::PaperProtocols()) {
      const std::string where = app_name + "/" + ProtocolName(kind);
      std::unique_ptr<App> app = MakeApp(app_name, AppScale::kTiny);
      SimConfig cfg;
      cfg.nodes = 8;
      cfg.protocol.kind = kind;
      System sys(cfg);
      SpanTracer* spans = sys.EnableSpans(1 << 20);
      app->Setup(sys);
      sys.Run(app->Program());
      std::string why;
      ASSERT_TRUE(app->Verify(sys, &why)) << where << ": " << why;

      ASSERT_FALSE(spans->spans().empty()) << where;
      EXPECT_EQ(spans->dropped(), 0) << where << ": raise the test capacity";
      std::string err;
      EXPECT_TRUE(CheckSpanDag(spans->spans(), &err)) << where << ": " << err;

      // Every root carries a vector-clock snapshot of its node.
      bool saw_root = false;
      for (const Span& s : spans->spans()) {
        if (RootKindIndex(s.kind) >= 0) {
          saw_root = true;
          EXPECT_EQ(s.vt.size(), 8u) << where << ": root span " << s.id;
          break;
        }
      }
      EXPECT_TRUE(saw_root) << where;

      ExpectExactPartition(AttributeCriticalPaths(spans->spans()), where);
    }
  }
}

// Hand-computed fixture: a remote page fault whose request queues, rides the
// wire (with one retransmit stretch inside), and is served at the home.
//
//   fault #0 (node 0, page 7)   [0 ......................... 100]
//     queue #1                     [10 .. 20]
//     wire #2                             [20 ............ 50]
//       retransmit #3                        [30 .. 40]
//     service #4 (node 1)                                 [50 ... 80]
//
// Deepest-active wins each segment; uncovered stretches are bookkeeping:
//   [0,10) bookkeeping  [10,20) queueing  [20,30) wire  [30,40) retransmit
//   [40,50) wire        [50,80) home service             [80,100) bookkeeping
TEST(CritPath, HandComputedFaultAttribution) {
  std::vector<Span> spans;
  auto add = [&spans](SpanId id, SpanKind kind, NodeId node, SimTime t0, SimTime t1,
                      std::vector<SpanId> links, int64_t a0 = 0) {
    Span s;
    s.id = id;
    s.kind = kind;
    s.node = node;
    s.t0 = t0;
    s.t1 = t1;
    s.links = std::move(links);
    s.a0 = a0;
    spans.push_back(std::move(s));
  };
  add(0, SpanKind::kFault, 0, 0, 100, {}, /*a0=*/7);
  add(1, SpanKind::kQueue, 0, 10, 20, {0});
  add(2, SpanKind::kWire, 0, 20, 50, {1});
  add(3, SpanKind::kRetransmit, 0, 30, 40, {2});
  add(4, SpanKind::kService, 1, 50, 80, {2});

  std::string err;
  ASSERT_TRUE(CheckSpanDag(spans, &err)) << err;

  const CritPathSummary sum = AttributeCriticalPaths(spans);
  ASSERT_EQ(sum.roots.size(), 1u);
  const RootAttribution& r = sum.roots[0];
  EXPECT_EQ(r.id, 0);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kBookkeeping)], 30);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kQueueing)], 10);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kWire)], 20);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kRetransmit)], 10);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kHomeService)], 30);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kDiffCreate)], 0);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kDiffApply)], 0);
  EXPECT_EQ(r.by_cat[static_cast<size_t>(CritCat::kCompute)], 0);
  ExpectExactPartition(sum, "fixture");

  // Page rollup: the fault's full wait lands on page 7.
  ASSERT_EQ(sum.page_wait.count(7), 1u);
  EXPECT_EQ(sum.page_wait.at(7), 100);
  EXPECT_EQ(sum.by_page.at(7)[static_cast<size_t>(CritCat::kHomeService)], 30);
}

// A second root's subtree must attribute to itself, never leak into a root
// it is causally linked from; critical sections count as compute.
TEST(CritPath, RootsAttributeTheirOwnSubtrees) {
  std::vector<Span> spans;
  auto add = [&spans](SpanId id, SpanKind kind, NodeId node, SimTime t0, SimTime t1,
                      std::vector<SpanId> links) {
    Span s;
    s.id = id;
    s.kind = kind;
    s.node = node;
    s.t0 = t0;
    s.t1 = t1;
    s.links = std::move(links);
    spans.push_back(std::move(s));
  };
  add(0, SpanKind::kFault, 0, 0, 100, {});
  add(1, SpanKind::kWire, 0, 20, 50, {0});
  // A lock acquire causally downstream of the fault: still its own root.
  add(2, SpanKind::kLock, 1, 100, 160, {1});
  add(3, SpanKind::kLockHold, 1, 110, 130, {2});

  const CritPathSummary sum = AttributeCriticalPaths(spans);
  ASSERT_EQ(sum.roots.size(), 2u);
  EXPECT_EQ(sum.by_kind[0][static_cast<size_t>(CritCat::kWire)], 30);
  EXPECT_EQ(sum.by_kind[0][static_cast<size_t>(CritCat::kBookkeeping)], 70);
  EXPECT_EQ(sum.by_kind[1][static_cast<size_t>(CritCat::kCompute)], 20);
  EXPECT_EQ(sum.by_kind[1][static_cast<size_t>(CritCat::kBookkeeping)], 40);
  ExpectExactPartition(sum, "two-root fixture");
}

// Regression (reliable delivery × tracing): a page request dropped by the
// fault injector and recovered by the ReliableChannel must still read as ONE
// connected fault chain — the retransmit stretch shows up as a kRetransmit
// span on the fault's critical path instead of severing the DAG.
TEST(SpanDag, RetransmittedPageRequestStaysConnected) {
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 4);
  cfg.reliability.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.drop_prob = 0.4;
  cfg.fault.only_types = {MsgType::kPageRequest};
  System sys(cfg);
  SpanTracer* spans = sys.EnableSpans();
  const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 4; ++r) {
      co_await ctx.Lock(1);
      co_await ctx.Write(addr, 1024);
      *ctx.Ptr<int64_t>(addr) += 1;
      co_await ctx.Unlock(1);
      co_await ctx.Barrier(r);
      co_await ctx.Read(addr, 8);
    }
  });

  ASSERT_GT(sys.network().TotalStats().msgs_retransmitted, 0)
      << "fault plan produced no retransmissions; regression is vacuous";
  std::string err;
  EXPECT_TRUE(CheckSpanDag(spans->spans(), &err)) << err;

  int64_t retransmit_spans = 0;
  for (const Span& s : spans->spans()) {
    if (s.kind == SpanKind::kRetransmit) {
      ++retransmit_spans;
      ASSERT_FALSE(s.links.empty()) << "retransmit span " << s.id << " has no cause";
    }
  }
  EXPECT_GT(retransmit_spans, 0);

  // The retry wait is attributed — some blocking root pays for it.
  const CritPathSummary sum = AttributeCriticalPaths(spans->spans());
  EXPECT_GT(sum.total[static_cast<size_t>(CritCat::kRetransmit)], 0);
  ExpectExactPartition(sum, "retransmit run");
}

TEST(SpanJson, RoundTripsThroughRunSummarySection) {
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 4);
  System sys(cfg);
  SpanTracer* spans = sys.EnableSpans();
  const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    co_await ctx.Lock(1);
    co_await ctx.Write(addr, 512);
    *ctx.Ptr<int64_t>(addr) += 1;
    co_await ctx.Unlock(1);
    co_await ctx.Barrier(0);
  });
  ASSERT_FALSE(spans->spans().empty());

  JsonWriter w;
  w.BeginObject();
  WriteSpansJson(&w, *spans);
  w.EndObject();

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(w.str(), &doc, &err)) << err;
  std::vector<Span> parsed;
  int64_t dropped = -1;
  ASSERT_TRUE(ParseSpans(doc, &parsed, &dropped, &err)) << err;
  EXPECT_EQ(dropped, spans->dropped());
  ASSERT_EQ(parsed.size(), spans->spans().size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    const Span& a = spans->spans()[i];
    const Span& b = parsed[i];
    ASSERT_EQ(a.id, b.id);
    EXPECT_EQ(a.kind, b.kind) << "span " << a.id;
    EXPECT_EQ(a.node, b.node) << "span " << a.id;
    EXPECT_EQ(a.t0, b.t0) << "span " << a.id;
    EXPECT_EQ(a.t1, b.t1) << "span " << a.id;
    EXPECT_EQ(a.parent, b.parent) << "span " << a.id;
    EXPECT_EQ(a.links, b.links) << "span " << a.id;
    EXPECT_EQ(a.a0, b.a0) << "span " << a.id;
    EXPECT_EQ(a.a1, b.a1) << "span " << a.id;
    EXPECT_EQ(a.vt, b.vt) << "span " << a.id;
  }
  EXPECT_TRUE(CheckSpanDag(parsed, &err)) << err;
}

TEST(SpanJson, MissingSectionExplainsHowToGetOne) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson("{\"schema\":\"x\"}", &doc, &err)) << err;
  std::vector<Span> parsed;
  EXPECT_FALSE(ParseSpans(doc, &parsed, nullptr, &err));
  EXPECT_NE(err.find("--metrics-out"), std::string::npos) << err;
}

TEST(SpanCheck, RejectsMalformedDags) {
  auto make = [](SpanKind kind, SimTime t0, SimTime t1, SpanId id) {
    Span s;
    s.id = id;
    s.kind = kind;
    s.node = 0;
    s.t0 = t0;
    s.t1 = t1;
    return s;
  };
  std::string err;

  // Interior span with no path from a root.
  {
    std::vector<Span> spans = {make(SpanKind::kFault, 0, 10, 0),
                               make(SpanKind::kWire, 2, 5, 1)};
    EXPECT_FALSE(CheckSpanDag(spans, &err));
  }
  // Parent interval does not contain the child.
  {
    std::vector<Span> spans = {make(SpanKind::kFault, 0, 10, 0),
                               make(SpanKind::kWire, 5, 20, 1)};
    spans[1].parent = 0;
    EXPECT_FALSE(CheckSpanDag(spans, &err));
  }
  // Link to a nonexistent span.
  {
    std::vector<Span> spans = {make(SpanKind::kFault, 0, 10, 0)};
    spans[0].links.push_back(99);
    EXPECT_FALSE(CheckSpanDag(spans, &err));
  }
  // Inverted interval.
  {
    std::vector<Span> spans = {make(SpanKind::kFault, 10, 0, 0)};
    EXPECT_FALSE(CheckSpanDag(spans, &err));
  }
}

}  // namespace
}  // namespace hlrc

// Application correctness: every benchmark verifies against its sequential
// reference under every protocol and several node counts.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/apps/app.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using AppCase = std::tuple<std::string, ProtocolKind, int>;

class AppCorrectnessTest : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppCorrectnessTest, VerifiesAgainstSequentialReference) {
  const auto& [name, kind, nodes] = GetParam();
  auto app = MakeApp(name, AppScale::kTiny);
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.page_size = 1024;
  cfg.shared_bytes = 16ll << 20;
  cfg.protocol.kind = kind;
  const AppRunResult result = RunApp(*app, cfg);
  EXPECT_TRUE(result.verified) << result.why;
  EXPECT_GT(result.report.total_time, 0);
}

std::vector<AppCase> AllCases() {
  std::vector<AppCase> cases;
  for (const std::string& name : AllAppNames()) {
    for (ProtocolKind kind : testing::AllProtocols()) {
      for (int nodes : {1, 4, 8, 16}) {
        cases.emplace_back(name, kind, nodes);
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<AppCase>& info) {
  std::string n = std::get<0>(info.param);
  for (char& c : n) {
    if (c == '-') {
      c = '_';
    }
  }
  return n + "_" + ProtocolName(std::get<1>(info.param)) + "_" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectnessTest, ::testing::ValuesIn(AllCases()),
                         CaseName);

}  // namespace
}  // namespace hlrc

// Stress test for the slab event engine: random interleavings of Schedule,
// ScheduleAt and Cancel (including cancels issued from inside callbacks, of
// ids that may have already fired) are replayed against a deliberately naive
// reference engine — a flat vector scanned linearly for the minimum
// (time, tiebreak, insertion-order) entry, the documented execution order.
// Both runs share one deterministic decision stream, so any divergence in
// firing order, cancellation semantics or HasCancelablePending shows up as a
// trace mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/engine.h"

namespace hlrc {
namespace {

// Executable spec of the engine's ordering contract. O(n) per step, obviously
// correct, and intentionally free of heaps, slabs and free lists.
class RefEngine {
 public:
  using EventId = uint64_t;

  SimTime Now() const { return now_; }

  template <typename F>
  EventId Schedule(SimTime delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  EventId ScheduleAt(SimTime t, F&& fn) {
    const uint64_t tiebreak = tiebreaker_ ? tiebreaker_() : 0;
    events_.push_back(Ev{t, tiebreak, next_id_, std::forward<F>(fn), true});
    return next_id_++;
  }

  void SetTieBreaker(std::function<uint64_t()> tiebreaker) {
    tiebreaker_ = std::move(tiebreaker);
  }

  void Cancel(EventId id) {
    for (Ev& e : events_) {
      if (e.id == id) {
        e.alive = false;
        return;
      }
    }
  }

  bool HasCancelablePending(EventId id) const {
    for (const Ev& e : events_) {
      if (e.id == id) {
        return e.alive;
      }
    }
    return false;
  }

  bool Step() {
    const Ev* best = nullptr;
    for (const Ev& e : events_) {
      if (!e.alive) {
        continue;
      }
      if (best == nullptr || e.time < best->time ||
          (e.time == best->time &&
           (e.tiebreak < best->tiebreak || (e.tiebreak == best->tiebreak && e.id < best->id)))) {
        best = &e;
      }
    }
    if (best == nullptr) {
      return false;
    }
    // Retire before invoking, like the real engine: a self-Cancel from inside
    // the callback must be a no-op.
    Ev* b = const_cast<Ev*>(best);
    b->alive = false;
    now_ = b->time;
    std::function<void()> fn = std::move(b->fn);
    fn();
    return true;
  }

  void Run() {
    while (Step()) {
    }
  }

 private:
  struct Ev {
    SimTime time;
    uint64_t tiebreak;
    EventId id;
    std::function<void()> fn;
    bool alive;
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::vector<Ev> events_;
  std::function<uint64_t()> tiebreaker_;
};

// Drives one engine through a random script derived from `seed`. Every random
// decision is drawn in execution order, so two engines that execute events in
// the same order draw identical decision streams; the recorded trace (fired
// tokens, cancel probes) then either matches exactly or pinpoints the first
// divergence.
template <typename E>
class Driver {
 public:
  Driver(uint64_t seed, bool with_tiebreaker, int max_events)
      : rng_(seed), max_events_(max_events) {
    if (with_tiebreaker) {
      // Tiny range on purpose: collisions force the (tiebreak, insertion)
      // ordering tail to actually decide.
      eng_.SetTieBreaker([this] { return tb_rng_.NextBounded(3); });
    }
  }

  std::vector<int64_t> Run(int roots) {
    for (int i = 0; i < roots; ++i) {
      SpawnOne();
    }
    eng_.Run();
    return std::move(trace_);
  }

 private:
  void SpawnOne() {
    if (scheduled_ >= max_events_) {
      return;
    }
    ++scheduled_;
    const int64_t token = next_token_++;
    // Small time range so simultaneous events are common.
    const SimTime delay = static_cast<SimTime>(rng_.NextBounded(40));
    typename E::EventId id;
    if (rng_.NextBool()) {
      id = eng_.Schedule(delay, [this, token] { OnFire(token); });
    } else {
      id = eng_.ScheduleAt(eng_.Now() + delay, [this, token] { OnFire(token); });
    }
    known_.push_back({id, token});
  }

  void OnFire(int64_t token) {
    trace_.push_back(token);
    // Sometimes probe-and-cancel a previously scheduled event; it may be
    // pending, already fired, already cancelled, or this very event.
    if (!known_.empty() && rng_.NextBounded(3) == 0) {
      const auto& victim = known_[rng_.NextBounded(known_.size())];
      trace_.push_back(eng_.HasCancelablePending(victim.first) ? victim.second : ~victim.second);
      eng_.Cancel(victim.first);
      eng_.Cancel(victim.first);  // Double-cancel must stay a no-op.
    }
    // Reschedule 0-2 children to keep the pot boiling.
    const uint64_t children = rng_.NextBounded(3);
    for (uint64_t i = 0; i < children; ++i) {
      SpawnOne();
    }
  }

  E eng_;
  Rng rng_;
  Rng tb_rng_{0xfeedface};
  int max_events_;
  int scheduled_ = 0;
  int64_t next_token_ = 0;
  std::vector<std::pair<typename E::EventId, int64_t>> known_;
  std::vector<int64_t> trace_;
};

class EngineStressTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineStressTest, MatchesReferenceModel) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const auto slab = Driver<Engine>(seed, /*with_tiebreaker=*/false, 1500).Run(40);
  const auto ref = Driver<RefEngine>(seed, /*with_tiebreaker=*/false, 1500).Run(40);
  ASSERT_EQ(slab.size(), ref.size());
  EXPECT_EQ(slab, ref);
}

TEST_P(EngineStressTest, MatchesReferenceModelWithTieBreaker) {
  const uint64_t seed = 0x1000 + static_cast<uint64_t>(GetParam());
  const auto slab = Driver<Engine>(seed, /*with_tiebreaker=*/true, 1500).Run(40);
  const auto ref = Driver<RefEngine>(seed, /*with_tiebreaker=*/true, 1500).Run(40);
  ASSERT_EQ(slab.size(), ref.size());
  EXPECT_EQ(slab, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStressTest, ::testing::Range(0, 25));

// Slot recycling across many schedule/cancel/fire generations: stale ids from
// long-dead generations must never match a recycled slot.
TEST(EngineStress, StaleIdsNeverResurrect) {
  Engine e;
  std::vector<Engine::EventId> old_ids;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    const auto keep = e.Schedule(1, [&fired] { ++fired; });
    const auto kill = e.Schedule(2, [&fired] { fired += 1000; });
    e.Cancel(kill);
    e.Run();
    old_ids.push_back(keep);
    old_ids.push_back(kill);
    // Cancelling every id ever issued must be a no-op from here on.
    for (const auto id : old_ids) {
      EXPECT_FALSE(e.HasCancelablePending(id));
      e.Cancel(id);
    }
  }
  EXPECT_EQ(fired, 200);
}

}  // namespace
}  // namespace hlrc

#include "src/proto/vector_clock.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/proto/interval.h"

namespace hlrc {
namespace {

VectorClock VC(std::initializer_list<uint32_t> vals) {
  VectorClock vc(static_cast<int>(vals.size()));
  int i = 0;
  for (uint32_t v : vals) {
    vc.Set(i++, v);
  }
  return vc;
}

TEST(VectorClock, StartsAtZero) {
  VectorClock vc(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(vc.Get(i), 0u);
  }
}

TEST(VectorClock, BumpAndSet) {
  VectorClock vc(3);
  vc.Bump(1);
  vc.Bump(1);
  vc.Set(2, 7);
  EXPECT_EQ(vc.Get(0), 0u);
  EXPECT_EQ(vc.Get(1), 2u);
  EXPECT_EQ(vc.Get(2), 7u);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a = VC({1, 5, 0});
  const VectorClock b = VC({3, 2, 0});
  a.MergeWith(b);
  EXPECT_EQ(a, VC({3, 5, 0}));
}

TEST(VectorClock, HappensBeforeIsStrictDomination) {
  EXPECT_TRUE(VC({1, 0}).HappensBefore(VC({1, 1})));
  EXPECT_FALSE(VC({1, 1}).HappensBefore(VC({1, 1})));
  EXPECT_FALSE(VC({2, 0}).HappensBefore(VC({1, 1})));
}

TEST(VectorClock, ConcurrentDetection) {
  EXPECT_TRUE(VC({2, 0}).ConcurrentWith(VC({0, 2})));
  EXPECT_FALSE(VC({1, 1}).ConcurrentWith(VC({2, 2})));
  EXPECT_FALSE(VC({1, 1}).ConcurrentWith(VC({1, 1})));
}

TEST(VectorClock, TotalOrderRespectsHappensBefore) {
  // Property: a HappensBefore b implies TotalOrderLess(a, b).
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    VectorClock a(4);
    for (int i = 0; i < 4; ++i) {
      a.Set(i, static_cast<uint32_t>(rng.NextBounded(5)));
    }
    VectorClock b = a;
    bool bumped = false;
    for (int i = 0; i < 4; ++i) {
      if (rng.NextBool()) {
        b.Set(i, b.Get(i) + static_cast<uint32_t>(rng.NextBounded(3)) + 1);
        bumped = true;
      }
    }
    if (bumped) {
      EXPECT_TRUE(a.HappensBefore(b));
      EXPECT_TRUE(a.TotalOrderLess(b));
      EXPECT_FALSE(b.TotalOrderLess(a));
    }
  }
}

TEST(VectorClock, TotalOrderIsAntisymmetricOnDistinct) {
  const VectorClock a = VC({2, 0, 1});
  const VectorClock b = VC({0, 2, 1});
  EXPECT_NE(a.TotalOrderLess(b), b.TotalOrderLess(a));
  EXPECT_FALSE(a.TotalOrderLess(a));
}

TEST(VectorClock, EncodedSizeIsFourBytesPerComponent) {
  EXPECT_EQ(VectorClock(16).EncodedSize(), 64);
  EXPECT_EQ(VectorClock(64).EncodedSize(), 256);
}

TEST(IntervalRecord, EncodedSizeGrowsWithVtOnlyWhenShipped) {
  IntervalRecord rec;
  rec.writer = 1;
  rec.id = 3;
  rec.vt = VectorClock(64);
  rec.pages = {1, 2, 3};
  // Homeless: 8 + 4 per page + full vt (the paper's §4.7 memory observation).
  EXPECT_EQ(rec.EncodedSize(true), 8 + 12 + 256);
  // Home-based: no vt on the wire.
  EXPECT_EQ(rec.EncodedSize(false), 8 + 12);
}

TEST(IntervalKey, OrderingAndHash) {
  const IntervalKey a{1, 2};
  const IntervalKey b{1, 3};
  const IntervalKey c{2, 1};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (IntervalKey{1, 2}));
  EXPECT_NE(IntervalKeyHash()(a), IntervalKeyHash()(b));
}

}  // namespace
}  // namespace hlrc

// Fuzzer subsystem tests (src/fuzz, docs/FUZZING.md): coverage-map
// determinism, genome mutation invariants, corpus dedup, the differential
// harness's clean bill on the unmutated build, the two mutation-canary
// regressions, guided-vs-random coverage, and reproducer round-trips.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/fuzz/coverage.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/genome.h"
#include "src/fuzz/harness.h"
#include "src/fuzz/repro.h"

namespace hlrc {
namespace fuzz {
namespace {

FuzzInput SeedInput(wkld::SynthPattern pattern, uint64_t seed) {
  FuzzInput in;
  in.workload = SeedWorkload(pattern, 4, 512, 1 << 20, seed);
  in.schedule.seed = seed * 101 + 7;
  in.schedule.max_jitter = Micros(150);
  return in;
}

const std::vector<wkld::SynthPattern>& AllPatterns() {
  static const std::vector<wkld::SynthPattern> kAll = {
      wkld::SynthPattern::kSingleWriter,     wkld::SynthPattern::kMigratory,
      wkld::SynthPattern::kProducerConsumer, wkld::SynthPattern::kFalseSharing,
      wkld::SynthPattern::kHotspot,          wkld::SynthPattern::kReadMostly,
  };
  return kAll;
}

TEST(CoverageMap, SameRunSameEdges) {
  // The coverage signal must be a pure function of the input: re-running the
  // identical genome yields the identical point set and hit count.
  const FuzzInput in = SeedInput(wkld::SynthPattern::kMigratory, 3);
  HarnessConfig hc;
  CoverageMap a(1), b(1);
  const RunOutcome ra = RunGenome(in, hc, &a);
  const RunOutcome rb = RunGenome(in, hc, &b);
  EXPECT_TRUE(ra.ok);
  EXPECT_TRUE(rb.ok);
  EXPECT_GT(a.points(), 0u);
  EXPECT_EQ(a.points(), b.points());
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.Report(), b.Report());
  EXPECT_EQ(ra.final_words, rb.final_words);
  EXPECT_EQ(ra.sim_time, rb.sim_time);
}

TEST(CoverageMap, MergeIsOrderIndependentAndCountsNovelty) {
  CoverageMap x(0), y(0), merged_xy(0), merged_yx(0);
  x.Cover(CoverageObserver::Domain::kMsgEdge, 1, 2);
  x.Cover(CoverageObserver::Domain::kSyncEpoch, 0, 3);
  y.Cover(CoverageObserver::Domain::kMsgEdge, 1, 2);  // Shared with x.
  y.Cover(CoverageObserver::Domain::kInterval, 2, 0);
  EXPECT_EQ(merged_xy.MergeNovel(x), 2);
  EXPECT_EQ(merged_xy.MergeNovel(y), 1);  // Only the interval point is new.
  EXPECT_EQ(merged_yx.MergeNovel(y), 2);
  EXPECT_EQ(merged_yx.MergeNovel(x), 1);
  EXPECT_EQ(merged_xy.Fingerprint(), merged_yx.Fingerprint());
  EXPECT_EQ(merged_xy.points(), 3u);
  EXPECT_EQ(merged_xy.MergeNovel(x), 0);  // Idempotent.
}

TEST(CoverageMap, SaltSeparatesProtocolPointSpaces) {
  CoverageMap hlrc(3), lrc(1);
  hlrc.Cover(CoverageObserver::Domain::kMsgEdge, 1, 2);
  lrc.Cover(CoverageObserver::Domain::kMsgEdge, 1, 2);
  CoverageMap aggregate(0);
  EXPECT_EQ(aggregate.MergeNovel(hlrc), 1);
  EXPECT_EQ(aggregate.MergeNovel(lrc), 1);  // Same tuple, distinct point.
  EXPECT_EQ(aggregate.points(), 2u);
}

TEST(Genome, MutationsPreserveSyncSkeletonAndTermination) {
  // Property test over many mutants: the sync-record subsequence of every
  // node stream is untouched (deadlock safety), streams stay kEnd-terminated
  // and kWrites-free, and accesses stay inside the shared arena.
  Rng rng(11);
  for (const wkld::SynthPattern pattern : AllPatterns()) {
    WorkloadGenome parent = SeedWorkload(pattern, 4, 512, 1 << 20, 5);
    for (int step = 0; step < 40; ++step) {
      const WorkloadGenome kid = MutateWorkload(parent, &rng);
      ASSERT_EQ(kid.nodes, parent.nodes);
      for (int n = 0; n < kid.nodes; ++n) {
        const auto& ps = parent.streams[static_cast<size_t>(n)];
        const auto& ks = kid.streams[static_cast<size_t>(n)];
        ASSERT_FALSE(ks.empty());
        EXPECT_EQ(ks.back().kind, wkld::Record::Kind::kEnd);
        std::vector<std::pair<int, int64_t>> psync, ksync;
        for (const wkld::Record& r : ps) {
          if (r.kind == wkld::Record::Kind::kLock ||
              r.kind == wkld::Record::Kind::kUnlock ||
              r.kind == wkld::Record::Kind::kBarrier) {
            psync.emplace_back(static_cast<int>(r.kind), r.sync_id);
          }
        }
        for (const wkld::Record& r : ks) {
          EXPECT_NE(r.kind, wkld::Record::Kind::kWrites);
          if (r.kind == wkld::Record::Kind::kLock ||
              r.kind == wkld::Record::Kind::kUnlock ||
              r.kind == wkld::Record::Kind::kBarrier) {
            ksync.emplace_back(static_cast<int>(r.kind), r.sync_id);
          }
          for (const AccessRange& ar : r.ranges) {
            EXPECT_GE(ar.addr, 0);
            EXPECT_GT(ar.bytes, 0);
            EXPECT_LE(ar.addr + ar.bytes, kid.shared_bytes);
          }
        }
        // Lock ids may be remapped globally, but the kind sequence and
        // barrier ids are invariant.
        ASSERT_EQ(psync.size(), ksync.size()) << "node " << n;
        for (size_t i = 0; i < psync.size(); ++i) {
          EXPECT_EQ(psync[i].first, ksync[i].first);
          if (psync[i].first == static_cast<int>(wkld::Record::Kind::kBarrier)) {
            EXPECT_EQ(psync[i].second, ksync[i].second);
          }
        }
      }
      parent = kid;  // Walk a mutation chain, not just one step.
    }
  }
}

TEST(Genome, MutatedInputsStayRunnable) {
  // Any mutant must execute cleanly under the unmutated protocol: no
  // deadlock, no oracle violation, no final-image mismatch.
  Rng rng(23);
  HarnessConfig hc;
  for (const wkld::SynthPattern pattern : AllPatterns()) {
    FuzzInput in = SeedInput(pattern, 9);
    for (int step = 0; step < 5; ++step) {
      in.workload = MutateWorkload(in.workload, &rng);
      in.schedule = MutateSchedule(in.schedule, &rng);
      const RunOutcome out = RunGenome(in, hc, nullptr);
      EXPECT_TRUE(out.ok) << wkld::SynthPatternName(pattern) << " step " << step
                          << ": " << (out.ok ? "" : out.violations.front());
    }
  }
}

TEST(Genome, HashDedupsIdenticalInputsAndSplitsMutants) {
  Rng rng(7);
  const FuzzInput a = SeedInput(wkld::SynthPattern::kHotspot, 1);
  FuzzInput b = a;
  EXPECT_EQ(HashInput(a), HashInput(b));
  std::set<uint64_t> hashes;
  hashes.insert(HashInput(a));
  int distinct = 0;
  for (int i = 0; i < 64; ++i) {
    FuzzInput kid = a;
    kid.workload = MutateWorkload(a.workload, &rng);
    kid.schedule = MutateSchedule(a.schedule, &rng);
    if (hashes.insert(HashInput(kid)).second) {
      ++distinct;
    }
  }
  // Mutation is stochastic, but near-all mutants must hash apart.
  EXPECT_GE(distinct, 56);
  // Schedule-only differences must also split the hash.
  b.schedule.seed ^= 1;
  EXPECT_NE(HashInput(a), HashInput(b));
}

TEST(Differential, CleanBuildHasNoCrossProtocolDivergence) {
  // Acceptance pin: on the unmutated build the four evaluated protocol
  // families produce identical final images and sync totals for every seed
  // pattern (and a mutated child of each).
  const std::vector<ProtocolKind> cross = {ProtocolKind::kLrc, ProtocolKind::kErc,
                                           ProtocolKind::kHlrc, ProtocolKind::kAurc};
  HarnessConfig hc;
  Rng rng(31);
  for (const wkld::SynthPattern pattern : AllPatterns()) {
    FuzzInput in = SeedInput(pattern, 13);
    for (int step = 0; step < 2; ++step) {
      CoverageMap aggregate(0);
      const DifferentialResult diff = RunDifferential(in, hc, cross, &aggregate);
      EXPECT_FALSE(diff.diverged)
          << wkld::SynthPatternName(pattern) << ": "
          << (diff.reports.empty() ? "" : diff.reports.front());
      EXPECT_EQ(diff.runs, 4);
      EXPECT_GT(aggregate.points(), 0u);
      in.workload = MutateWorkload(in.workload, &rng);
    }
  }
}

FuzzConfig CanaryConfig(TestMutation mutation) {
  FuzzConfig cfg;
  cfg.seed = 7;
  cfg.budget = 10000;  // Pinned canary budget (ISSUE 7 acceptance).
  cfg.mutation = mutation;
  return cfg;
}

TEST(Fuzzer, FindsHlrcSkipDiffApplyCanary) {
  Fuzzer fuzzer(CanaryConfig(TestMutation::kHlrcSkipDiffApply));
  const FuzzResult r = fuzzer.Run();
  ASSERT_TRUE(r.found_failure);
  EXPECT_LE(r.stats.executions, 10000);
  EXPECT_FALSE(r.violation.empty());
  // The minimized repro must replay to the same violation, deterministically.
  EXPECT_EQ(ReplayRepro(r.repro), r.violation);
  EXPECT_EQ(ReplayRepro(r.repro), r.violation);
}

TEST(Fuzzer, FindsLrcSkipInvalidateCanaryViaDifferential) {
  // kLrcSkipInvalidate only fires under LRC/OLRC; with HLRC as the primary
  // it is reachable exclusively through the differential harness.
  Fuzzer fuzzer(CanaryConfig(TestMutation::kLrcSkipInvalidate));
  const FuzzResult r = fuzzer.Run();
  ASSERT_TRUE(r.found_failure);
  EXPECT_FALSE(r.repro.cross.empty());
  EXPECT_EQ(ReplayRepro(r.repro), r.violation);
}

TEST(Fuzzer, GuidedBeatsUniformRandomAtEqualBudget) {
  // Acceptance pin: with the corpus frozen at the six seed genomes
  // (feedback off) the same mutation machinery reaches strictly fewer
  // coverage points than the coverage-guided session at the same budget.
  FuzzConfig guided;
  guided.seed = 5;
  guided.budget = 10000;
  guided.jobs = 4;
  FuzzConfig random = guided;
  random.feedback = false;
  const FuzzResult rg = Fuzzer(guided).Run();
  const FuzzResult rr = Fuzzer(random).Run();
  EXPECT_FALSE(rg.found_failure);
  EXPECT_FALSE(rr.found_failure);
  EXPECT_EQ(rr.stats.corpus_size, 6);
  EXPECT_GT(rg.stats.corpus_size, 6);
  EXPECT_GT(rg.coverage_points, rr.coverage_points);
}

TEST(Fuzzer, SessionIsJobCountIndependent) {
  FuzzConfig cfg;
  cfg.seed = 19;
  cfg.budget = 600;
  cfg.jobs = 1;
  const FuzzResult serial = Fuzzer(cfg).Run();
  cfg.jobs = 4;
  const FuzzResult parallel = Fuzzer(cfg).Run();
  EXPECT_EQ(serial.stats.executions, parallel.stats.executions);
  EXPECT_EQ(serial.stats.corpus_size, parallel.stats.corpus_size);
  EXPECT_EQ(serial.stats.novel_inputs, parallel.stats.novel_inputs);
  EXPECT_EQ(serial.coverage_points, parallel.coverage_points);
  EXPECT_EQ(serial.coverage_report, parallel.coverage_report);
}

TEST(Fuzzer, CorpusHashesAreUnique) {
  FuzzConfig cfg;
  cfg.seed = 29;
  cfg.budget = 800;
  Fuzzer fuzzer(cfg);
  fuzzer.Run();
  std::set<uint64_t> hashes;
  for (const FuzzInput& in : fuzzer.corpus()) {
    EXPECT_TRUE(hashes.insert(HashInput(in)).second) << "duplicate corpus entry";
  }
  EXPECT_GE(fuzzer.corpus().size(), 6u);
}

TEST(Repro, SerializationRoundTripsExactly) {
  Rng rng(41);
  ReproFile repro;
  repro.input = SeedInput(wkld::SynthPattern::kFalseSharing, 17);
  repro.input.workload = MutateWorkload(repro.input.workload, &rng);
  repro.input.schedule.prefix = {3, 1, 4, 1, 5};
  repro.config.protocol = ProtocolKind::kAurc;
  repro.config.mutation = TestMutation::kHlrcSkipDiffApply;
  repro.config.migrate_homes = true;
  repro.config.fault.drop_prob = 0.25;
  repro.config.fault.seed = 99;
  repro.cross = {ProtocolKind::kLrc, ProtocolKind::kHlrc};
  repro.violation = "final-image: word 3 mismatch\nsecond line";
  const std::string text = SerializeRepro(repro);
  ReproFile back;
  std::string error;
  ASSERT_TRUE(ParseRepro(text, &back, &error)) << error;
  // Newlines in the violation are flattened; everything else is exact.
  EXPECT_EQ(SerializeRepro(back), text);
  EXPECT_EQ(back.config.protocol, ProtocolKind::kAurc);
  EXPECT_EQ(back.config.mutation, TestMutation::kHlrcSkipDiffApply);
  EXPECT_TRUE(back.config.migrate_homes);
  EXPECT_DOUBLE_EQ(back.config.fault.drop_prob, 0.25);
  EXPECT_EQ(back.input.schedule.prefix, repro.input.schedule.prefix);
  EXPECT_EQ(back.input.workload.streams, repro.input.workload.streams);
  EXPECT_EQ(HashInput(back.input), HashInput(repro.input));
}

TEST(Repro, ParserRejectsMalformedFiles) {
  ReproFile repro;
  repro.input = SeedInput(wkld::SynthPattern::kSingleWriter, 2);
  const std::string good = SerializeRepro(repro);
  ReproFile out;
  std::string error;
  EXPECT_FALSE(ParseRepro("not a repro\n", &out, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos);
  // Truncation (no 'end') must be rejected, not half-applied.
  EXPECT_FALSE(ParseRepro(good.substr(0, good.size() / 2), &out, &error));
  std::string tampered = good;
  const size_t pos = tampered.find("protocol ");
  tampered.replace(pos, 9, "protokol ");
  EXPECT_FALSE(ParseRepro(tampered, &out, &error));
}

}  // namespace
}  // namespace fuzz
}  // namespace hlrc

#include "src/net/reliable_channel.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/network.h"
#include "src/sim/engine.h"

namespace hlrc {
namespace {

// Replays a scripted decision per physical transmission — data frames,
// retransmissions and acks alike, in Network::Transmit order. All-clear once
// the script runs dry.
class ScriptedHook : public FaultHook {
 public:
  void Push(FaultDecision d) { script_.push_back(d); }

  FaultDecision OnTransmit(NodeId, NodeId, MsgType, SimTime, bool) override {
    if (script_.empty()) {
      return {};
    }
    FaultDecision d = script_.front();
    script_.pop_front();
    return d;
  }

 private:
  std::deque<FaultDecision> script_;
};

// Drops every frame, forever; only the retry budget stops the sender.
class BlackHoleHook : public FaultHook {
 public:
  FaultDecision OnTransmit(NodeId, NodeId, MsgType, SimTime, bool) override {
    FaultDecision d;
    d.drop = true;
    return d;
  }
};

Message MakeMsg(NodeId src, NodeId dst, MsgType type = MsgType::kPageRequest,
                int64_t proto = 16) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.protocol_bytes = proto;
  return m;
}

// Builds a 2-node network with reliable delivery and a scripted hook; node 1
// records the types it receives in delivery order.
struct Rig {
  Rig(SimTime retry_timeout, int max_retries, FaultHook* fault_hook)
      : net(&engine, 2, NetworkConfig{}) {
    ReliabilityConfig rc;
    rc.enabled = true;
    rc.retry_timeout = retry_timeout;
    rc.max_retries = max_retries;
    net.EnableReliableDelivery(rc);
    net.SetFaultHook(fault_hook);
    net.SetHandler(0, [this](Message m) { received0.push_back(m.type); });
    net.SetHandler(1, [this](Message m) { received1.push_back(m.type); });
  }

  Engine engine;
  Network net;
  std::vector<MsgType> received0;
  std::vector<MsgType> received1;
};

TEST(ReliableChannel, RetransmitRecoversDroppedFrame) {
  ScriptedHook hook;
  FaultDecision drop;
  drop.drop = true;
  hook.Push(drop);  // First physical transmission of the data frame is lost.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);
  EXPECT_EQ(rig.received1[0], MsgType::kPageRequest);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 1);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_dropped_in_net, 1);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 1);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, ReceiverDropsInjectedDuplicate) {
  ScriptedHook hook;
  FaultDecision dup;
  dup.duplicate = true;
  hook.Push(dup);  // The data frame is delivered twice.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);  // Handler ran exactly once.
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 1);
  // Every physical data arrival is (re-)acked, duplicates included.
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 2);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 0);
}

TEST(ReliableChannel, LostAckTriggersRetransmitAndDedup) {
  ScriptedHook hook;
  hook.Push({});  // Data frame arrives fine.
  FaultDecision drop;
  drop.drop = true;
  hook.Push(drop);  // Its ack is lost.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);  // Delivered exactly once to the protocol.
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 1);
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 1);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 2);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, DelayedFrameIsHeldForInOrderDelivery) {
  ScriptedHook hook;
  FaultDecision late;
  late.extra_delay = Millis(5);  // First frame physically arrives after the second.
  hook.Push(late);
  // Long retry timeout so the delay does not also trigger a (harmless but
  // counter-visible) spurious retransmit.
  Rig rig(Millis(20), 12, &hook);

  rig.net.Send(MakeMsg(0, 1, MsgType::kPageRequest));
  rig.net.Send(MakeMsg(0, 1, MsgType::kPageReply));
  rig.engine.Run();

  // FIFO per (src, dst) pair is restored despite the physical reordering.
  ASSERT_EQ(rig.received1.size(), 2u);
  EXPECT_EQ(rig.received1[0], MsgType::kPageRequest);
  EXPECT_EQ(rig.received1[1], MsgType::kPageReply);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 0);
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 0);
}

TEST(ReliableChannel, CleanFabricAddsOnlyAcks) {
  ScriptedHook hook;  // Empty script: no faults at all.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.net.Send(MakeMsg(1, 0, MsgType::kPageReply));
  rig.engine.Run();

  EXPECT_EQ(rig.received1.size(), 1u);
  EXPECT_EQ(rig.received0.size(), 1u);
  EXPECT_EQ(rig.net.TotalStats().msgs_retransmitted, 0);
  EXPECT_EQ(rig.net.TotalStats().msgs_duplicated_dropped, 0);
  EXPECT_EQ(rig.net.TotalStats().acks_sent, 2);
}

TEST(ReliableChannel, TransientPartitionHealsWithinRetryBudget) {
  // A partition window shorter than the retry budget: frames sent into the
  // window are lost, but a later retransmission lands and delivery resumes.
  FaultPlan plan;
  PartitionWindow w;
  w.group_a = {0};
  w.group_b = {1};
  w.start = 0;
  w.end = Millis(2);
  plan.partitions.push_back(w);
  FaultInjector injector(plan);
  Rig rig(Micros(500), /*max_retries=*/12, &injector);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);
  EXPECT_GE(rig.net.NodeStats(0).msgs_retransmitted, 1);
  EXPECT_GE(injector.counters().partition_dropped, 1);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannelDeathTest, RetryBudgetExhaustedDuringPartitionIsFatalNotAHang) {
  // A partition that outlives the whole retry budget (4 sends x 100us
  // timeouts with 2x backoff end well before the window does) must surface
  // as a fatal diagnostic, not as a silent hang of the blocked protocol.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine;
        Network net(&engine, 2, NetworkConfig{});
        ReliabilityConfig rc;
        rc.enabled = true;
        rc.retry_timeout = Micros(100);
        rc.max_retries = 3;
        net.EnableReliableDelivery(rc);
        FaultPlan plan;
        PartitionWindow w;
        w.group_a = {0};
        w.group_b = {1};
        w.start = 0;
        w.end = Seconds(1);
        plan.partitions.push_back(w);
        FaultInjector injector(plan);
        net.SetFaultHook(&injector);
        net.SetHandler(0, [](Message) {});
        net.SetHandler(1, [](Message) {});
        net.Send(MakeMsg(0, 1));
        engine.Run();
      },
      "retry budget exhausted");
}

TEST(ReliableChannelDeathTest, RetryBudgetExhaustionIsFatalNotAHang) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine;
        Network net(&engine, 2, NetworkConfig{});
        ReliabilityConfig rc;
        rc.enabled = true;
        rc.retry_timeout = Micros(100);
        rc.max_retries = 3;
        net.EnableReliableDelivery(rc);
        BlackHoleHook black_hole;
        net.SetFaultHook(&black_hole);
        net.SetHandler(0, [](Message) {});
        net.SetHandler(1, [](Message) {});
        net.Send(MakeMsg(0, 1));
        engine.Run();
      },
      "retry budget exhausted");
}

}  // namespace
}  // namespace hlrc

#include "src/net/reliable_channel.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/network.h"
#include "src/sim/engine.h"

namespace hlrc {
namespace {

// Replays a scripted decision per physical transmission — data frames,
// retransmissions and acks alike, in Network::Transmit order. All-clear once
// the script runs dry.
class ScriptedHook : public FaultHook {
 public:
  void Push(FaultDecision d) { script_.push_back(d); }

  FaultDecision OnTransmit(NodeId, NodeId, MsgType, SimTime, bool) override {
    if (script_.empty()) {
      return {};
    }
    FaultDecision d = script_.front();
    script_.pop_front();
    return d;
  }

 private:
  std::deque<FaultDecision> script_;
};

// Drops every frame, forever; only the retry budget stops the sender.
class BlackHoleHook : public FaultHook {
 public:
  FaultDecision OnTransmit(NodeId, NodeId, MsgType, SimTime, bool) override {
    FaultDecision d;
    d.drop = true;
    return d;
  }
};

Message MakeMsg(NodeId src, NodeId dst, MsgType type = MsgType::kPageRequest,
                int64_t proto = 16) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.protocol_bytes = proto;
  return m;
}

// Builds a 2-node network with reliable delivery and a scripted hook; node 1
// records the types it receives in delivery order.
struct Rig {
  Rig(SimTime retry_timeout, int max_retries, FaultHook* fault_hook)
      : Rig(MakeConfig(retry_timeout, max_retries), fault_hook) {}

  Rig(ReliabilityConfig rc, FaultHook* fault_hook) : net(&engine, 2, NetworkConfig{}) {
    net.EnableReliableDelivery(rc);
    net.SetFaultHook(fault_hook);
    net.SetHandler(0, [this](Message m) { received0.push_back(m.type); });
    net.SetHandler(1, [this](Message m) { received1.push_back(m.type); });
  }

  static ReliabilityConfig MakeConfig(SimTime retry_timeout, int max_retries) {
    ReliabilityConfig rc;
    rc.enabled = true;
    rc.retry_timeout = retry_timeout;
    rc.max_retries = max_retries;
    return rc;
  }

  Engine engine;
  Network net;
  std::vector<MsgType> received0;
  std::vector<MsgType> received1;
};

TEST(ReliableChannel, RetransmitRecoversDroppedFrame) {
  ScriptedHook hook;
  FaultDecision drop;
  drop.drop = true;
  hook.Push(drop);  // First physical transmission of the data frame is lost.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);
  EXPECT_EQ(rig.received1[0], MsgType::kPageRequest);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 1);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_dropped_in_net, 1);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 1);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, ReceiverDropsInjectedDuplicate) {
  ScriptedHook hook;
  FaultDecision dup;
  dup.duplicate = true;
  hook.Push(dup);  // The data frame is delivered twice.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);  // Handler ran exactly once.
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 1);
  // Every physical data arrival is (re-)acked, duplicates included.
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 2);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 0);
}

TEST(ReliableChannel, LostAckTriggersRetransmitAndDedup) {
  ScriptedHook hook;
  hook.Push({});  // Data frame arrives fine.
  FaultDecision drop;
  drop.drop = true;
  hook.Push(drop);  // Its ack is lost.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);  // Delivered exactly once to the protocol.
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 1);
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 1);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 2);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, DelayedFrameIsHeldForInOrderDelivery) {
  ScriptedHook hook;
  FaultDecision late;
  late.extra_delay = Millis(5);  // First frame physically arrives after the second.
  hook.Push(late);
  // Long retry timeout so the delay does not also trigger a (harmless but
  // counter-visible) spurious retransmit.
  Rig rig(Millis(20), 12, &hook);

  rig.net.Send(MakeMsg(0, 1, MsgType::kPageRequest));
  rig.net.Send(MakeMsg(0, 1, MsgType::kPageReply));
  rig.engine.Run();

  // FIFO per (src, dst) pair is restored despite the physical reordering.
  ASSERT_EQ(rig.received1.size(), 2u);
  EXPECT_EQ(rig.received1[0], MsgType::kPageRequest);
  EXPECT_EQ(rig.received1[1], MsgType::kPageReply);
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 0);
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 0);
}

TEST(ReliableChannel, CleanFabricAddsOnlyAcks) {
  ScriptedHook hook;  // Empty script: no faults at all.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.net.Send(MakeMsg(1, 0, MsgType::kPageReply));
  rig.engine.Run();

  EXPECT_EQ(rig.received1.size(), 1u);
  EXPECT_EQ(rig.received0.size(), 1u);
  EXPECT_EQ(rig.net.TotalStats().msgs_retransmitted, 0);
  EXPECT_EQ(rig.net.TotalStats().msgs_duplicated_dropped, 0);
  EXPECT_EQ(rig.net.TotalStats().acks_sent, 2);
}

TEST(ReliableChannel, TransientPartitionHealsWithinRetryBudget) {
  // A partition window shorter than the retry budget: frames sent into the
  // window are lost, but a later retransmission lands and delivery resumes.
  FaultPlan plan;
  PartitionWindow w;
  w.group_a = {0};
  w.group_b = {1};
  w.start = 0;
  w.end = Millis(2);
  plan.partitions.push_back(w);
  FaultInjector injector(plan);
  Rig rig(Micros(500), /*max_retries=*/12, &injector);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);
  EXPECT_GE(rig.net.NodeStats(0).msgs_retransmitted, 1);
  EXPECT_GE(injector.counters().partition_dropped, 1);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, PiggybackAckRidesReverseDataFrame) {
  // Request/reply exchange with piggybacking on: the reply leaves well within
  // the ack deadline, so the request's ack rides it instead of costing a
  // standalone frame. Only the final reply (no reverse traffic after it) needs
  // a deadline-flushed standalone ack.
  ScriptedHook hook;  // Clean fabric.
  ReliabilityConfig rc = Rig::MakeConfig(Millis(10), 12);
  rc.piggyback_acks = true;
  Rig rig(rc, &hook);
  rig.net.SetHandler(1, [&rig](Message m) {
    rig.received1.push_back(m.type);
    rig.net.Send(MakeMsg(1, 0, MsgType::kPageReply));
  });

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);
  ASSERT_EQ(rig.received0.size(), 1u);
  EXPECT_EQ(rig.net.NodeStats(1).acks_piggybacked, 1);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 0);  // Its ack rode the reply.
  EXPECT_EQ(rig.net.NodeStats(0).acks_sent, 1);  // Deadline flush for the reply.
  EXPECT_EQ(rig.net.TotalStats().msgs_retransmitted, 0);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, PiggybackDeadlineCombinesStandaloneAcks) {
  // No reverse traffic at all: the deadline fires and flushes every owed seq
  // in ONE multi-seq standalone ack frame, not one frame per data frame.
  ScriptedHook hook;
  ReliabilityConfig rc = Rig::MakeConfig(Millis(10), 12);
  rc.piggyback_acks = true;
  Rig rig(rc, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.net.Send(MakeMsg(0, 1, MsgType::kDiffRequest));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 2u);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, 1);  // Two seqs, one ack frame.
  EXPECT_EQ(rig.net.NodeStats(1).acks_piggybacked, 0);
  EXPECT_EQ(rig.net.TotalStats().msgs_retransmitted, 0);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, PiggybackedAckSurvivesRetransmissionOfItsCarrier) {
  // The request's ack is attached to the reply frame; the reply's first
  // physical copy is lost. Losing the carrier loses the ack with it, so the
  // requester times out and retransmits the request (which the receiver
  // dup-drops and re-acks). The retransmitted reply must still carry the
  // original piggybacked ack (the seqs stay attached to the frame), it must
  // be counted once — not once per physical copy — and the late duplicate
  // ack copies must retire nothing twice.
  ScriptedHook hook;
  hook.Push({});  // Request 0->1 arrives fine.
  FaultDecision drop;
  drop.drop = true;
  hook.Push(drop);  // Reply 1->0 (carrying the piggybacked ack) is lost.
  ReliabilityConfig rc = Rig::MakeConfig(Millis(5), 12);
  rc.piggyback_acks = true;
  Rig rig(rc, &hook);
  rig.net.SetHandler(1, [&rig](Message m) {
    rig.received1.push_back(m.type);
    rig.net.Send(MakeMsg(1, 0, MsgType::kPageReply));
  });

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received0.size(), 1u);  // Reply delivered exactly once.
  ASSERT_EQ(rig.received1.size(), 1u);  // Request too.
  EXPECT_EQ(rig.net.NodeStats(1).msgs_retransmitted, 1);  // The reply.
  EXPECT_EQ(rig.net.NodeStats(0).msgs_retransmitted, 1);  // The orphaned request.
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, 1);
  EXPECT_EQ(rig.net.NodeStats(1).acks_piggybacked, 1);  // Counted once, not per copy.
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannel, DuplicateAckAfterRetransmitIsIdempotent) {
  // Regression: the first ack is delayed past the retry timeout, so the
  // sender retransmits and the receiver re-acks. Both acks eventually arrive
  // for the same seq; the second must be a pure no-op — it must not
  // double-decrement the retransmit backlog, record a second (negative)
  // retransmit-latency sample, or touch an already-erased entry (this test
  // runs under ASan/UBSan in the sanitizer suite).
  // The delayed first ack also holds the later re-acks behind it (the link
  // preserves physical FIFO), so several retransmissions pile up and every
  // one of their acks arrives after the entry was already retired.
  ScriptedHook hook;
  hook.Push({});  // Data frame arrives fine.
  FaultDecision late;
  late.extra_delay = Millis(5);
  hook.Push(late);  // Its ack is delayed past the 500us retry timeout.
  Rig rig(Micros(500), 12, &hook);

  rig.net.Send(MakeMsg(0, 1));
  rig.engine.Run();

  ASSERT_EQ(rig.received1.size(), 1u);  // Delivered exactly once.
  const int64_t retx = rig.net.NodeStats(0).msgs_retransmitted;
  EXPECT_GE(retx, 1);
  // Each physical data arrival is re-acked and then dup-dropped; each ack
  // beyond the first finds the seq already retired and must change nothing.
  EXPECT_EQ(rig.net.NodeStats(1).msgs_duplicated_dropped, retx);
  EXPECT_EQ(rig.net.NodeStats(1).acks_sent, retx + 1);
  EXPECT_EQ(rig.net.reliable_channel()->UnackedCount(), 0);
}

TEST(ReliableChannelDeathTest, RetryBudgetExhaustedDuringPartitionIsFatalNotAHang) {
  // A partition that outlives the whole retry budget (4 sends x 100us
  // timeouts with 2x backoff end well before the window does) must surface
  // as a fatal diagnostic, not as a silent hang of the blocked protocol.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine;
        Network net(&engine, 2, NetworkConfig{});
        ReliabilityConfig rc;
        rc.enabled = true;
        rc.retry_timeout = Micros(100);
        rc.max_retries = 3;
        net.EnableReliableDelivery(rc);
        FaultPlan plan;
        PartitionWindow w;
        w.group_a = {0};
        w.group_b = {1};
        w.start = 0;
        w.end = Seconds(1);
        plan.partitions.push_back(w);
        FaultInjector injector(plan);
        net.SetFaultHook(&injector);
        net.SetHandler(0, [](Message) {});
        net.SetHandler(1, [](Message) {});
        net.Send(MakeMsg(0, 1));
        engine.Run();
      },
      "retry budget exhausted");
}

TEST(ReliableChannelDeathTest, RetryBudgetExhaustionIsFatalNotAHang) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine;
        Network net(&engine, 2, NetworkConfig{});
        ReliabilityConfig rc;
        rc.enabled = true;
        rc.retry_timeout = Micros(100);
        rc.max_retries = 3;
        net.EnableReliableDelivery(rc);
        BlackHoleHook black_hole;
        net.SetFaultHook(&black_hole);
        net.SetHandler(0, [](Message) {});
        net.SetHandler(1, [](Message) {});
        net.Send(MakeMsg(0, 1));
        engine.Run();
      },
      "retry budget exhausted");
}

}  // namespace
}  // namespace hlrc

// Shared helpers for protocol/system tests.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <vector>

#include "src/svm/system.h"

namespace hlrc {
namespace testing {

inline SimConfig SmallConfig(ProtocolKind kind, int nodes, int64_t shared_bytes = 1 << 20,
                             int64_t page_size = 1024) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.page_size = page_size;
  cfg.shared_bytes = shared_bytes;
  cfg.protocol.kind = kind;
  return cfg;
}

// The paper's four protocols plus the two extensions (ERC, AURC): every
// generic correctness test runs against all six.
inline const std::vector<ProtocolKind>& AllProtocols() {
  static const std::vector<ProtocolKind> kAll = {
      ProtocolKind::kLrc,  ProtocolKind::kOlrc, ProtocolKind::kHlrc,
      ProtocolKind::kOhlrc, ProtocolKind::kErc, ProtocolKind::kAurc};
  return kAll;
}

// Only the protocols evaluated in the paper.
inline const std::vector<ProtocolKind>& PaperProtocols() {
  static const std::vector<ProtocolKind> kPaper = {
      ProtocolKind::kLrc, ProtocolKind::kOlrc, ProtocolKind::kHlrc, ProtocolKind::kOhlrc};
  return kPaper;
}

}  // namespace testing
}  // namespace hlrc

#endif  // TESTS_TEST_UTIL_H_

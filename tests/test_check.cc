// Tests for the consistency checker (src/check): oracle semantics on
// hand-built histories, explorer determinism, clean-protocol sweeps, and the
// mutation regression — a protocol seeded with a known bug must be flagged
// within a bounded number of seeds and reproduce from the reported seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/litmus.h"
#include "src/check/explorer.h"
#include "src/check/oracle.h"

namespace hlrc {
namespace {

constexpr int kNodes = 4;

MemoryAccess Acc(NodeId node, GlobalAddr addr, uint64_t value, bool is_write,
                 std::vector<uint32_t> vt, SimTime when) {
  MemoryAccess a;
  a.node = node;
  a.addr = addr;
  a.value = value;
  a.is_write = is_write;
  a.vt = VectorClock(kNodes);
  for (int n = 0; n < kNodes; ++n) {
    a.vt.Set(n, vt[static_cast<size_t>(n)]);
  }
  a.interval = a.vt.Get(node) + 1;
  a.when = when;
  return a;
}

TEST(LrcOracle, AcceptsHappensBeforePropagation) {
  LrcOracle oracle(kNodes);
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  // Node 1's timestamp covers node 0's interval 1, so it must (and does) see
  // the write.
  oracle.OnAccess(Acc(1, 0x100, 5, false, {1, 0, 0, 0}, 20));
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.reads_checked(), 1);
  EXPECT_EQ(oracle.writes_recorded(), 1);
}

TEST(LrcOracle, RejectsMaskedStaleValue) {
  LrcOracle oracle(kNodes);
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  // Node 1 saw interval (0,1) before overwriting: write 6 masks write 5.
  oracle.OnAccess(Acc(1, 0x100, 6, true, {1, 0, 0, 0}, 20));
  // Node 2 has seen both intervals; returning the masked 5 is a violation.
  oracle.OnAccess(Acc(2, 0x100, 5, false, {1, 1, 0, 0}, 30));
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations()[0].description.find("stale"), std::string::npos);
}

TEST(LrcOracle, AcceptsLatestOfChain) {
  LrcOracle oracle(kNodes);
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  oracle.OnAccess(Acc(1, 0x100, 6, true, {1, 0, 0, 0}, 20));
  oracle.OnAccess(Acc(2, 0x100, 6, false, {1, 1, 0, 0}, 30));
  EXPECT_TRUE(oracle.ok());
}

TEST(LrcOracle, AcceptsEitherConcurrentWrite) {
  LrcOracle oracle(kNodes);
  // Two concurrent writes: neither vector timestamp covers the other.
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  oracle.OnAccess(Acc(1, 0x100, 6, true, {0, 0, 0, 0}, 11));
  // A reader that has seen both may return either under RC.
  oracle.OnAccess(Acc(2, 0x100, 5, false, {1, 1, 0, 0}, 30));
  oracle.OnAccess(Acc(3, 0x100, 6, false, {1, 1, 0, 0}, 31));
  EXPECT_TRUE(oracle.ok());
}

TEST(LrcOracle, ZeroReadLegalOnlyUntilAWriteHappensBefore) {
  LrcOracle oracle(kNodes);
  // No writes yet: initial zero is the only value.
  oracle.OnAccess(Acc(1, 0x100, 0, false, {0, 0, 0, 0}, 5));
  EXPECT_TRUE(oracle.ok());
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  // Concurrent with the write: zero still legal.
  oracle.OnAccess(Acc(2, 0x100, 0, false, {0, 0, 0, 0}, 15));
  EXPECT_TRUE(oracle.ok());
  // Covers the write: the initial zero is masked.
  oracle.OnAccess(Acc(3, 0x100, 0, false, {1, 0, 0, 0}, 20));
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations()[0].description.find("zero"), std::string::npos);
}

TEST(LrcOracle, FlagsValueNeverWritten) {
  LrcOracle oracle(kNodes);
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  oracle.OnAccess(Acc(1, 0x100, 77, false, {1, 0, 0, 0}, 20));
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations()[0].description.find("never written"), std::string::npos);
}

TEST(LrcOracle, ProgramOrderOrdersSameNodeAccesses) {
  LrcOracle oracle(kNodes);
  // Same node, same timestamp: the second write masks the first in program
  // order, so a remote reader covering the interval must not see 5.
  oracle.OnAccess(Acc(0, 0x100, 5, true, {0, 0, 0, 0}, 10));
  oracle.OnAccess(Acc(0, 0x100, 6, true, {0, 0, 0, 0}, 11));
  oracle.OnAccess(Acc(1, 0x100, 5, false, {1, 0, 0, 0}, 20));
  EXPECT_FALSE(oracle.ok());
}

TEST(Explorer, SameSeedSameRun) {
  CheckConfig cfg;
  cfg.litmus = "message-passing";
  cfg.protocol = ProtocolKind::kHlrc;
  cfg.seed = 12345;
  const CheckResult a = RunOne(cfg);
  const CheckResult b = RunOne(cfg);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.decisions_used, b.decisions_used);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reads_checked, b.reads_checked);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].kind, b.trace[i].kind);
    EXPECT_EQ(a.trace[i].value, b.trace[i].value);
  }
}

TEST(Explorer, DifferentSeedsPerturbTheSchedule) {
  CheckConfig cfg;
  cfg.litmus = "store-buffer";
  cfg.seed = 1;
  const CheckResult a = RunOne(cfg);
  cfg.seed = 2;
  const CheckResult b = RunOne(cfg);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  // Jitter shifts delivery times, so the runs' virtual times diverge.
  EXPECT_NE(a.sim_time, b.sim_time);
}

TEST(Explorer, DecisionLimitZeroMatchesChaosDisabled) {
  CheckConfig limited;
  limited.litmus = "lock-handoff";
  limited.seed = 9;
  limited.decision_limit = 0;
  CheckConfig off;
  off.litmus = "lock-handoff";
  off.seed = 9;
  off.permute_tasks = false;
  off.max_jitter = 0;
  const CheckResult a = RunOne(limited);
  const CheckResult b = RunOne(off);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.events, b.events);
}

TEST(Explorer, CleanProtocolsSurviveMiniSweep) {
  const ProtocolKind kProtocols[] = {ProtocolKind::kLrc, ProtocolKind::kErc,
                                     ProtocolKind::kHlrc, ProtocolKind::kAurc};
  for (const std::string& litmus : LitmusNames()) {
    for (ProtocolKind protocol : kProtocols) {
      CheckConfig cfg;
      cfg.litmus = litmus;
      cfg.protocol = protocol;
      const SweepResult sweep = Sweep(cfg, /*first_seed=*/1, /*seeds=*/5);
      EXPECT_EQ(sweep.failures, 0)
          << litmus << " under " << ProtocolName(protocol) << " first failing seed "
          << sweep.first_failing_seed;
      EXPECT_GT(sweep.reads_checked, 0);
    }
  }
}

TEST(Explorer, SurvivesFaultInjectionComposition) {
  CheckConfig cfg;
  cfg.litmus = "barrier-propagation";
  cfg.protocol = ProtocolKind::kHlrc;
  cfg.fault.drop_prob = 0.05;
  cfg.reliability.enabled = true;
  const SweepResult sweep = Sweep(cfg, /*first_seed=*/1, /*seeds=*/5);
  EXPECT_EQ(sweep.failures, 0);
}

// The coalesced wire plane (frame packing, request combining, piggybacked
// acks, barrier tree) must be invisible to the consistency oracle: a 200-seed
// chaos sweep through the coalesced paths finds no violation, and the sweep
// genuinely exercises them (deterministically, so the counters are stable).
TEST(Explorer, CoalescedWirePlaneSurvivesSweep) {
  for (ProtocolKind protocol : {ProtocolKind::kHlrc, ProtocolKind::kLrc}) {
    CheckConfig cfg;
    cfg.litmus = "barrier-propagation";
    cfg.protocol = protocol;
    cfg.coalesce = true;
    cfg.barrier_arity = 3;
    cfg.reliability.enabled = true;  // Engages ack piggybacking too.
    const SweepResult sweep = Sweep(cfg, /*first_seed=*/1, /*seeds=*/200);
    EXPECT_EQ(sweep.failures, 0)
        << ProtocolName(protocol) << " first failing seed " << sweep.first_failing_seed;
    EXPECT_GT(sweep.reads_checked, 0);
  }
}

// The mutation regression: a protocol with a seeded bug must be flagged
// within 200 seeds, the reported seed must reproduce, and minimization must
// still fail at its reduced decision limit.
void ExpectMutationCaught(ProtocolKind protocol, TestMutation mutation) {
  CheckConfig cfg;
  cfg.litmus = "barrier-propagation";
  cfg.protocol = protocol;
  cfg.mutation = mutation;
  const SweepResult sweep = Sweep(cfg, /*first_seed=*/1, /*seeds=*/200);
  ASSERT_TRUE(sweep.found_failure)
      << TestMutationName(mutation) << " not flagged in 200 seeds under "
      << ProtocolName(protocol);
  EXPECT_LE(sweep.first_failing_seed, 200u);

  // Reproduce from the reported seed alone.
  cfg.seed = sweep.first_failing_seed;
  const CheckResult replay = RunOne(cfg);
  ASSERT_FALSE(replay.ok);
  EXPECT_FALSE(replay.violations.empty());

  // The minimized schedule still fails, at a no-larger decision limit.
  const MinimizedSchedule min = Minimize(cfg);
  EXPECT_FALSE(min.result.ok);
  EXPECT_LE(min.config.decision_limit, replay.decisions_used);
}

TEST(MutationRegression, HlrcSkipDiffApplyFlagged) {
  ExpectMutationCaught(ProtocolKind::kHlrc, TestMutation::kHlrcSkipDiffApply);
}

TEST(MutationRegression, AurcSkipDiffApplyFlagged) {
  ExpectMutationCaught(ProtocolKind::kAurc, TestMutation::kHlrcSkipDiffApply);
}

TEST(MutationRegression, LrcSkipInvalidateFlagged) {
  ExpectMutationCaught(ProtocolKind::kLrc, TestMutation::kLrcSkipInvalidate);
}

TEST(Litmus, ValuesAreUniqueAndNonZero) {
  EXPECT_NE(LitmusValue(0, 0, 0), 0u);
  EXPECT_NE(LitmusValue(0, 0, 0), LitmusValue(0, 0, 1));
  EXPECT_NE(LitmusValue(0, 0, 0), LitmusValue(0, 1, 0));
  EXPECT_NE(LitmusValue(0, 0, 0), LitmusValue(1, 0, 0));
}

TEST(Litmus, UnknownNameDies) {
  LitmusConfig cfg;
  EXPECT_DEATH(MakeLitmus("no-such-litmus", cfg), "litmus");
}

}  // namespace
}  // namespace hlrc

#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/metrics/json.h"
#include "src/svm/system.h"
#include "src/tracing/span.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

TEST(TraceLog, RecordsInOrder) {
  TraceLog log(16);
  log.Record(0, Micros(1), TraceEvent::kFault, 7, 1);
  log.Record(1, Micros(2), TraceEvent::kLockRequest, 3);
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].event, TraceEvent::kFault);
  EXPECT_EQ(snap[0].arg0, 7);
  EXPECT_EQ(snap[1].node, 1);
  EXPECT_EQ(log.recorded(), 2);
  EXPECT_EQ(log.dropped(), 0);
}

TEST(TraceLog, RingDropsOldest) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(0, Micros(i), TraceEvent::kFault, i);
  }
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().arg0, 6);  // Oldest surviving.
  EXPECT_EQ(snap.back().arg0, 9);
  EXPECT_EQ(log.dropped(), 6);
  EXPECT_EQ(log.recorded(), 10);
}

TEST(TraceLog, CountsPerEvent) {
  TraceLog log(64);
  log.Record(0, 0, TraceEvent::kDiffCreate);
  log.Record(0, 0, TraceEvent::kDiffCreate);
  log.Record(0, 0, TraceEvent::kDiffApply);
  EXPECT_EQ(log.CountOf(TraceEvent::kDiffCreate), 2);
  EXPECT_EQ(log.CountOf(TraceEvent::kDiffApply), 1);
  EXPECT_EQ(log.CountOf(TraceEvent::kGcStart), 0);
}

TEST(TraceLog, EventNamesAreUnique) {
  for (int a = 0; a < static_cast<int>(TraceEvent::kCount); ++a) {
    EXPECT_STRNE(TraceEventName(static_cast<TraceEvent>(a)), "?");
    for (int b = a + 1; b < static_cast<int>(TraceEvent::kCount); ++b) {
      EXPECT_STRNE(TraceEventName(static_cast<TraceEvent>(a)),
                   TraceEventName(static_cast<TraceEvent>(b)));
    }
  }
}

TEST(TraceIntegration, EventsMatchProtocolCounters) {
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 4);
  System sys(cfg);
  TraceLog* trace = sys.EnableTracing();
  const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 3; ++r) {
      co_await ctx.Lock(1);
      co_await ctx.Write(addr, 1024);
      *ctx.Ptr<int64_t>(addr) += 1;
      co_await ctx.Unlock(1);
      co_await ctx.Barrier(0);
    }
  });

  const NodeReport totals = sys.report().Totals();
  EXPECT_EQ(trace->CountOf(TraceEvent::kPageFetch), totals.proto.page_fetches);
  EXPECT_EQ(trace->CountOf(TraceEvent::kDiffCreate), totals.proto.diffs_created);
  EXPECT_EQ(trace->CountOf(TraceEvent::kDiffApply), totals.proto.diffs_applied);
  EXPECT_EQ(trace->CountOf(TraceEvent::kBarrierEnter), totals.proto.barriers);
  EXPECT_EQ(trace->CountOf(TraceEvent::kBarrierExit), totals.proto.barriers);
  EXPECT_EQ(trace->CountOf(TraceEvent::kLockRequest), totals.proto.remote_acquires);
  // Times are monotone within the snapshot.
  auto snap = trace->Snapshot();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].time, snap[i].time);
  }
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

TEST(TraceLog, WraparoundKeepsNewestAcrossManyTurns) {
  // Fill the ring several times over; the survivors must be exactly the
  // newest `capacity` records in recording order.
  TraceLog log(8);
  const int kTotal = 100;
  for (int i = 0; i < kTotal; ++i) {
    log.Record(i % 3, Micros(i), TraceEvent::kFault, i);
  }
  auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(snap[static_cast<size_t>(i)].arg0, kTotal - 8 + i);
  }
  EXPECT_EQ(log.dropped(), kTotal - 8);
}

TEST(TraceLog, ChromeJsonParsesWithStrictParser) {
  // Strict-parse the whole dump: no trailing commas anywhere, every event
  // name escaped properly, every record accounted for.
  TraceLog log(64);
  for (int e = 0; e < static_cast<int>(TraceEvent::kCount); ++e) {
    log.Record(e % 4, Micros(e), static_cast<TraceEvent>(e), e, -e);
  }
  const std::string path = ::testing::TempDir() + "/hlrc_trace_strict.json";
  log.DumpChromeJson(path);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(ReadWholeFile(path), &doc, &err)) << err;
  std::remove(path.c_str());
  ASSERT_TRUE(doc.IsArray());
  ASSERT_EQ(doc.arr.size(), static_cast<size_t>(TraceEvent::kCount));
  for (size_t i = 0; i < doc.arr.size(); ++i) {
    const JsonValue& ev = doc.arr[i];
    EXPECT_EQ(ev.GetString("name"), TraceEventName(static_cast<TraceEvent>(i)));
    EXPECT_EQ(ev.GetString("ph"), "i");
    EXPECT_EQ(ev.GetInt("tid"), static_cast<int64_t>(i % 4));
    EXPECT_EQ(ev.Find("args")->GetInt("a0"), static_cast<int64_t>(i));
  }
}

TEST(TraceLog, ExtraEventsSpliceIntoEventArray) {
  TraceLog log(16);
  log.Record(0, Micros(1), TraceEvent::kFault, 1);
  const std::string path = ::testing::TempDir() + "/hlrc_trace_splice.json";
  log.DumpChromeJson(path,
                     "{\"name\":\"c\",\"ph\":\"C\",\"ts\":0.0,\"pid\":0,\"tid\":0,"
                     "\"args\":{\"value\":7}}");
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(ReadWholeFile(path), &doc, &err)) << err;
  std::remove(path.c_str());
  ASSERT_EQ(doc.arr.size(), 2u);
  EXPECT_EQ(doc.arr[0].GetString("ph"), "i");
  EXPECT_EQ(doc.arr[1].GetString("ph"), "C");
  EXPECT_EQ(doc.arr[1].Find("args")->GetInt("value"), 7);
}

TEST(TraceLog, ExtraEventsIntoEmptyTraceStillParse) {
  TraceLog log(16);  // Nothing recorded: splice must not emit a leading comma.
  const std::string path = ::testing::TempDir() + "/hlrc_trace_splice_empty.json";
  log.DumpChromeJson(path, "{\"name\":\"only\",\"ph\":\"C\",\"ts\":0.0,\"pid\":0,"
                           "\"tid\":0,\"args\":{\"value\":1}}");
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(ReadWholeFile(path), &doc, &err)) << err;
  std::remove(path.c_str());
  ASSERT_EQ(doc.arr.size(), 1u);
  EXPECT_EQ(doc.arr[0].GetString("name"), "only");
}

TEST(TraceIntegration, SpanFlowEventSpliceStrictParses) {
  // The causal-span slices and flow arrows svmsim splices into the execution
  // trace (ChromeSpanEvents) must survive a strict parse of the whole file:
  // complete slices, paired flow begin/end events, no trailing commas.
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 4);
  System sys(cfg);
  TraceLog* trace = sys.EnableTracing();
  sys.EnableSpans();
  const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    co_await ctx.Lock(1);
    co_await ctx.Write(addr, 1024);
    *ctx.Ptr<int64_t>(addr) += 1;
    co_await ctx.Unlock(1);
    co_await ctx.Barrier(0);
    co_await ctx.Read(addr, 8);
  });

  const std::string extra = ChromeSpanEvents(*sys.spans());
  ASSERT_FALSE(extra.empty());
  const std::string path = ::testing::TempDir() + "/hlrc_trace_spans.json";
  trace->DumpChromeJson(path, extra);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(ReadWholeFile(path), &doc, &err)) << err;
  std::remove(path.c_str());
  ASSERT_TRUE(doc.IsArray());

  int64_t slices = 0, flow_starts = 0, flow_ends = 0;
  for (const JsonValue& ev : doc.arr) {
    ASSERT_TRUE(ev.IsObject());
    const std::string ph = ev.GetString("ph");
    ASSERT_FALSE(ph.empty());
    EXPECT_FALSE(ev.GetString("name").empty());
    if (ph == "X") {
      ++slices;
      const JsonValue* dur = ev.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->AsDouble(), 0.0);
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_ends;
    }
  }
  EXPECT_GT(slices, 0) << "no span slices spliced";
  EXPECT_GT(flow_starts, 0) << "no causal flow arrows spliced";
  EXPECT_EQ(flow_starts, flow_ends) << "unpaired flow events";
}

TEST(TraceIntegration, ChromeJsonDumpIsWellFormedEnough) {
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kLrc, 2);
  System sys(cfg);
  TraceLog* trace = sys.EnableTracing(256);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      co_await ctx.Write(addr, 8);
      *ctx.Ptr<int64_t>(addr) = 1;
    }
    co_await ctx.Barrier(0);
    co_await ctx.Read(addr, 8);
  });

  const std::string path = ::testing::TempDir() + "/hlrc_trace.json";
  trace->DumpChromeJson(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content.front(), '[');
  EXPECT_NE(content.find("\"name\":\"barrier-enter\""), std::string::npos);
  EXPECT_NE(content.find("\"tid\":1"), std::string::npos);
  EXPECT_EQ(content[content.size() - 2], ']');
}

}  // namespace
}  // namespace hlrc

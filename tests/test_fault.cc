#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/apps/app.h"
#include "src/fault/fault_plan.h"
#include "src/svm/system.h"

namespace hlrc {
namespace {

bool SameDecision(const FaultDecision& a, const FaultDecision& b) {
  return a.drop == b.drop && a.corrupt == b.corrupt && a.duplicate == b.duplicate &&
         a.extra_delay == b.extra_delay;
}

// A deterministic synthetic frame stream: cycles node pairs and message types.
std::vector<FaultDecision> Decide(FaultInjector& inj, int frames) {
  std::vector<FaultDecision> out;
  for (int i = 0; i < frames; ++i) {
    const NodeId src = i % 4;
    const NodeId dst = (i + 1) % 4;
    const MsgType type = (i % 2 == 0) ? MsgType::kPageRequest : MsgType::kDiffFlush;
    out.push_back(inj.OnTransmit(src, dst, type, static_cast<SimTime>(i) * Micros(10),
                                 /*retransmit=*/false));
  }
  return out;
}

TEST(FaultInjector, DeterministicForFixedSeed) {
  FaultPlan plan;
  plan.seed = 123;
  plan.drop_prob = 0.3;
  plan.dup_prob = 0.1;
  plan.delay_prob = 0.2;
  FaultInjector a(plan);
  FaultInjector b(plan);
  const auto da = Decide(a, 500);
  const auto db = Decide(b, 500);
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_TRUE(SameDecision(da[i], db[i])) << "decision " << i << " diverged";
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_GT(a.counters().dropped, 0);
  EXPECT_GT(a.counters().delayed, 0);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.seed = 1;
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  const auto da = Decide(a, 500);
  const auto db = Decide(b, 500);
  int differing = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    differing += SameDecision(da[i], db[i]) ? 0 : 1;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, PartitionBlocksExactlyConfiguredPairs) {
  FaultPlan plan;
  PartitionWindow w;
  w.group_a = {0, 1};
  w.group_b = {2};
  w.start = Millis(5);
  w.end = Millis(10);
  plan.partitions.push_back(w);
  FaultInjector inj(plan);

  // Cross-group pairs, both directions, inside the window.
  EXPECT_TRUE(inj.Partitioned(0, 2, Millis(7)));
  EXPECT_TRUE(inj.Partitioned(2, 1, Millis(7)));
  // Intra-group and uninvolved pairs are never blocked.
  EXPECT_FALSE(inj.Partitioned(0, 1, Millis(7)));
  EXPECT_FALSE(inj.Partitioned(2, 3, Millis(7)));
  EXPECT_FALSE(inj.Partitioned(3, 0, Millis(7)));
  // Window is [start, end).
  EXPECT_FALSE(inj.Partitioned(0, 2, Millis(4)));
  EXPECT_TRUE(inj.Partitioned(0, 2, Millis(5)));
  EXPECT_FALSE(inj.Partitioned(0, 2, Millis(10)));

  // OnTransmit turns a partitioned frame into a deterministic drop.
  const FaultDecision d = inj.OnTransmit(0, 2, MsgType::kPageRequest, Millis(7), false);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(inj.counters().partition_dropped, 1);
  const FaultDecision ok = inj.OnTransmit(0, 1, MsgType::kPageRequest, Millis(7), false);
  EXPECT_FALSE(ok.drop);
}

TEST(FaultInjector, EmptyGroupBMeansEveryoneElse) {
  FaultPlan plan;
  PartitionWindow w;
  w.group_a = {0};
  plan.partitions.push_back(w);  // All of virtual time.
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.Partitioned(0, 3, Millis(1)));
  EXPECT_TRUE(inj.Partitioned(2, 0, Millis(1)));
  EXPECT_FALSE(inj.Partitioned(1, 2, Millis(1)));
}

TEST(FaultInjector, TypeFilterRestrictsProbabilisticFaults) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  plan.only_types = {MsgType::kPageRequest};
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.OnTransmit(0, 1, MsgType::kPageRequest, 0, false).drop);
  EXPECT_FALSE(inj.OnTransmit(0, 1, MsgType::kLockRequest, 0, false).drop);
}

TEST(FaultInjector, PairFilterRestrictsProbabilisticFaults) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  plan.only_src = 0;
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.OnTransmit(0, 1, MsgType::kPageRequest, 0, false).drop);
  EXPECT_FALSE(inj.OnTransmit(1, 0, MsgType::kPageRequest, 0, false).drop);
}

TEST(ParsePartitionSpec, FullGrammar) {
  PartitionWindow w;
  std::string err;
  ASSERT_TRUE(ParsePartitionSpec("0,1-2,3@5..10", &w, &err)) << err;
  EXPECT_EQ(w.group_a, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(w.group_b, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(w.start, Millis(5));
  EXPECT_EQ(w.end, Millis(10));
}

TEST(ParsePartitionSpec, EmptyGroupBAndFractionalTimes) {
  PartitionWindow w;
  std::string err;
  ASSERT_TRUE(ParsePartitionSpec("0-@0..2.5", &w, &err)) << err;
  EXPECT_EQ(w.group_a, (std::vector<NodeId>{0}));
  EXPECT_TRUE(w.group_b.empty());
  EXPECT_EQ(w.start, 0);
  EXPECT_EQ(w.end, static_cast<SimTime>(2.5 * 1e6));
}

TEST(ParsePartitionSpec, RejectsMalformedSpecs) {
  PartitionWindow w;
  std::string err;
  EXPECT_FALSE(ParsePartitionSpec("0-1", &w, &err));           // No '@'.
  EXPECT_FALSE(ParsePartitionSpec("0,1@5..10", &w, &err));     // No '-'.
  EXPECT_FALSE(ParsePartitionSpec("0-1@5", &w, &err));         // No '..'.
  EXPECT_FALSE(ParsePartitionSpec("-1@5..10", &w, &err));      // Empty group_a.
  EXPECT_FALSE(ParsePartitionSpec("0,x-1@5..10", &w, &err));   // Bad node id.
  EXPECT_FALSE(ParsePartitionSpec("0-1@10..5", &w, &err));     // End before start.
}

// The issue's regression gate: a faulty run is a deterministic function of the
// configuration. SOR on 8 nodes under 1% drop, run twice with the same seed,
// must verify both times and agree on every observable — finish time and the
// full traffic ledger (which fingerprints the message history).
RunReport RunSorUnderDrop() {
  auto app = MakeApp("sor", AppScale::kTiny);
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.shared_bytes = 16ll << 20;
  cfg.fault.drop_prob = 0.01;
  cfg.fault.seed = 7;
  cfg.reliability.enabled = true;
  cfg.reliability.retry_timeout = Millis(1);
  AppRunResult result = RunApp(*app, cfg);
  EXPECT_TRUE(result.verified) << result.why;
  return result.report;
}

TEST(FaultEndToEnd, SorUnderDropIsDeterministic) {
  const RunReport a = RunSorUnderDrop();
  const RunReport b = RunSorUnderDrop();
  EXPECT_EQ(a.total_time, b.total_time);

  const NodeReport ta = a.Totals();
  const NodeReport tb = b.Totals();
  EXPECT_EQ(ta.traffic.msgs_sent, tb.traffic.msgs_sent);
  EXPECT_EQ(ta.traffic.msgs_received, tb.traffic.msgs_received);
  EXPECT_EQ(ta.traffic.update_bytes_sent, tb.traffic.update_bytes_sent);
  EXPECT_EQ(ta.traffic.protocol_bytes_sent, tb.traffic.protocol_bytes_sent);
  EXPECT_EQ(ta.traffic.msgs_retransmitted, tb.traffic.msgs_retransmitted);
  EXPECT_EQ(ta.traffic.msgs_dropped_in_net, tb.traffic.msgs_dropped_in_net);
  EXPECT_EQ(ta.traffic.msgs_duplicated_dropped, tb.traffic.msgs_duplicated_dropped);
  EXPECT_EQ(ta.traffic.acks_sent, tb.traffic.acks_sent);

  // The plan actually bit: frames were lost and recovered.
  EXPECT_GT(ta.traffic.msgs_dropped_in_net, 0);
  EXPECT_GT(ta.traffic.msgs_retransmitted, 0);
  EXPECT_GT(ta.traffic.acks_sent, 0);

  // Per-node finish times agree too, not just the max.
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t n = 0; n < a.nodes.size(); ++n) {
    EXPECT_EQ(a.nodes[n].finish_time, b.nodes[n].finish_time) << "node " << n;
  }
}

}  // namespace
}  // namespace hlrc

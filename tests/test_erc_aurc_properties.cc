// Deeper property checks for the extension protocols: ERC's flush-barrier
// semantics and AURC's equivalence to HLRC at the data level.
#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/app.h"
#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

TEST(ErcProperties, LockChainNeverObservesStaleData) {
  // A tight increment chain under contention with stretched service windows:
  // the exact final count proves no grant ever overtook a flush.
  for (int trial = 0; trial < 4; ++trial) {
    SimConfig cfg = SmallConfig(ProtocolKind::kErc, 4 + trial);
    cfg.costs.receive_interrupt = Micros(500 * (trial + 1));
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(1024);
    const int rounds = 6;
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < rounds; ++r) {
        co_await ctx.Lock(3);
        co_await ctx.Write(addr, 8);
        *ctx.Ptr<int64_t>(addr) += 1;
        co_await ctx.Unlock(3);
        // Unrelated write so later closes cover fresh intervals.
        co_await ctx.Write(addr + 512, 8);
        *ctx.Ptr<int64_t>(addr + 512) = r;
        co_await ctx.Compute(Micros(50 + 13 * ctx.id()));
      }
      co_await ctx.Barrier(0);
    });
    const int64_t expect = static_cast<int64_t>(rounds) * (4 + trial);
    for (int n = 0; n < 4 + trial; ++n) {
      EXPECT_EQ(*reinterpret_cast<int64_t*>(sys.NodeMemory(n, addr)), expect)
          << "trial " << trial << " node " << n;
    }
  }
}

TEST(ErcProperties, BarrierFlushesEverythingEverywhere) {
  // After a barrier, every node's copy of every written page is identical —
  // without any reads (the updates were pushed, not pulled).
  constexpr int kNodes = 6;
  SimConfig cfg = SmallConfig(ProtocolKind::kErc, kNodes);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(kNodes * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * 1024;
    co_await ctx.Write(mine, 1024);
    std::memset(ctx.Ptr<char>(mine), 0x40 + ctx.id(), 1024);
    co_await ctx.Barrier(0);
    // No reads at all.
  });
  for (int n = 0; n < kNodes; ++n) {
    for (int w = 0; w < kNodes; ++w) {
      const char* data = reinterpret_cast<const char*>(
          sys.NodeMemory(n, addr + static_cast<GlobalAddr>(w) * 1024));
      EXPECT_EQ(data[0], 0x40 + w) << "node " << n << " region " << w;
      EXPECT_EQ(data[1023], 0x40 + w) << "node " << n << " region " << w;
    }
  }
}

TEST(AurcProperties, MatchesHlrcResultsBitwise) {
  // AURC changes costs, not data flow: deterministic apps must produce the
  // exact same bytes as under HLRC.
  for (const std::string& name : {std::string("lu"), std::string("fft")}) {
    auto hlrc_app = MakeApp(name, AppScale::kTiny);
    auto aurc_app = MakeApp(name, AppScale::kTiny);
    SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 8, 16ll << 20, 1024);
    const AppRunResult a = RunApp(*hlrc_app, cfg);
    cfg.protocol.kind = ProtocolKind::kAurc;
    const AppRunResult b = RunApp(*aurc_app, cfg);
    EXPECT_TRUE(a.verified) << a.why;
    EXPECT_TRUE(b.verified) << b.why;
  }
}

TEST(AurcProperties, TrafficScalesWithAmplification) {
  int64_t update_bytes[2] = {0, 0};
  const double amps[2] = {1.0, 3.0};
  for (int k = 0; k < 2; ++k) {
    SimConfig cfg = SmallConfig(ProtocolKind::kAurc, 4);
    cfg.protocol.home_policy = HomePolicy::kSingleNode;
    cfg.protocol.aurc_write_amplification = amps[k];
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(4096);
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < 3; ++r) {
        if (ctx.id() == 1) {
          co_await ctx.Write(addr, 4096);
          std::memset(ctx.Ptr<char>(addr), r + 1, 4096);
        }
        co_await ctx.Barrier(0);
        co_await ctx.Read(addr, 4096);
        co_await ctx.Barrier(1);
      }
    });
    update_bytes[k] = sys.report().Totals().traffic.update_bytes_sent;
  }
  EXPECT_GT(update_bytes[1], update_bytes[0]);
}

TEST(AurcProperties, NoGarbageCollectionEver) {
  SimConfig cfg = SmallConfig(ProtocolKind::kAurc, 4);
  cfg.protocol.gc_threshold_bytes = 1024;  // Would trigger constantly on LRC.
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 4; ++r) {
      const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * 8 * 1024;
      co_await ctx.Write(mine, 8 * 1024);
      std::memset(ctx.Ptr<char>(mine), r + 1, 8 * 1024);
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 32 * 1024);
      co_await ctx.Barrier(1);
    }
  });
  EXPECT_EQ(sys.report().Totals().proto.gc_runs, 0);
}

}  // namespace
}  // namespace hlrc

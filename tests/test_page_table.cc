#include "src/mem/page_table.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/mem/shared_space.h"

namespace hlrc {
namespace {

TEST(PageTable, GeometryAndAddressing) {
  PageTable pt(64 * 1024, 4096);
  EXPECT_EQ(pt.num_pages(), 16);
  EXPECT_EQ(pt.PageOf(0), 0);
  EXPECT_EQ(pt.PageOf(4095), 0);
  EXPECT_EQ(pt.PageOf(4096), 1);
  EXPECT_EQ(pt.AddrData(4096), pt.PageData(1));
  EXPECT_EQ(pt.AddrData(4100), pt.PageData(1) + 4);
}

TEST(PageTable, StartsZeroFilledAndReadable) {
  PageTable pt(16 * 1024, 4096);
  for (PageId p = 0; p < pt.num_pages(); ++p) {
    EXPECT_EQ(pt.State(p).prot, PageProt::kRead);
    EXPECT_TRUE(pt.State(p).has_copy);
    const std::byte* data = pt.PageData(p);
    for (int i = 0; i < 4096; ++i) {
      EXPECT_EQ(data[i], std::byte{0});
    }
  }
}

TEST(PageTable, TwinSnapshotsAndTracksMemory) {
  PageTable pt(16 * 1024, 4096);
  std::memset(pt.PageData(2), 0xAB, 4096);
  pt.MakeTwin(2);
  EXPECT_TRUE(pt.HasTwin(2));
  EXPECT_EQ(pt.TwinBytes(), 4096);
  // Twin holds the snapshot even after the page changes.
  std::memset(pt.PageData(2), 0xCD, 4096);
  EXPECT_EQ(pt.State(2).twin.get()[0], std::byte{0xAB});
  pt.DropTwin(2);
  EXPECT_FALSE(pt.HasTwin(2));
  EXPECT_EQ(pt.TwinBytes(), 0);
}

TEST(PageTable, DropTwinIsIdempotent) {
  PageTable pt(8 * 1024, 4096);
  pt.MakeTwin(0);
  pt.DropTwin(0);
  pt.DropTwin(0);
  EXPECT_EQ(pt.TwinBytes(), 0);
}

TEST(SharedSpace, BumpAllocationAligns) {
  SharedSpace space(1 << 20, 4096);
  const GlobalAddr a = space.Alloc(10);
  const GlobalAddr b = space.Alloc(10);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GE(b, a + 10);
}

TEST(SharedSpace, PageAlignedAllocation) {
  SharedSpace space(1 << 20, 4096);
  space.Alloc(100);
  const GlobalAddr b = space.AllocPageAligned(8192);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_EQ(space.AllocatedBytes(), static_cast<int64_t>(b) + 8192);
}

TEST(SharedSpace, TracksAllocationsPerObject) {
  SharedSpace space(1 << 20, 4096);
  const GlobalAddr a = space.AllocPageAligned(3 * 4096);
  const GlobalAddr b = space.AllocPageAligned(2 * 4096);
  const SharedSpace::Allocation* aa = space.AllocationOf(static_cast<PageId>(a / 4096));
  const SharedSpace::Allocation* bb = space.AllocationOf(static_cast<PageId>(b / 4096));
  ASSERT_NE(aa, nullptr);
  ASSERT_NE(bb, nullptr);
  EXPECT_NE(aa, bb);
  EXPECT_EQ(aa->last_page - aa->first_page, 2);
  EXPECT_EQ(bb->last_page - bb->first_page, 1);
  EXPECT_EQ(space.AllocationOf(100), nullptr);
}

TEST(SharedSpace, AdjacentSmallAllocationsMergeOnSharedPage) {
  SharedSpace space(1 << 20, 4096);
  const GlobalAddr a = space.Alloc(64);
  const GlobalAddr b = space.Alloc(64);
  EXPECT_EQ(space.AllocationOf(static_cast<PageId>(a / 4096)),
            space.AllocationOf(static_cast<PageId>(b / 4096)));
}

}  // namespace
}  // namespace hlrc

// System-level API behaviour: reports, phase snapshots, allocation, compute
// charging, and misuse detection.
#include <gtest/gtest.h>

#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

TEST(SystemApi, ComputeAdvancesVirtualTime) {
  System sys(SmallConfig(ProtocolKind::kHlrc, 2));
  sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    co_await ctx.Compute(Millis(5));
    co_await ctx.Barrier(0);
  });
  EXPECT_GE(sys.report().total_time, Millis(5));
  EXPECT_EQ(sys.report().nodes[0].Computation(), Millis(5));
}

TEST(SystemApi, ComputeFlopsUsesCalibration) {
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 1);
  cfg.costs.ns_per_flop = Nanos(100);
  System sys(cfg);
  sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    co_await ctx.ComputeFlops(1000);
  });
  EXPECT_EQ(sys.report().nodes[0].Computation(), Micros(100));
}

TEST(SystemApi, PhaseSnapshotsCaptureDeltas) {
  System sys(SmallConfig(ProtocolKind::kHlrc, 2));
  sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    ctx.SnapshotPhase(0);
    co_await ctx.Compute(Millis(1));
    co_await ctx.Barrier(0);
    ctx.SnapshotPhase(1);
    co_await ctx.Compute(Millis(2));
    co_await ctx.Barrier(1);
    ctx.SnapshotPhase(2);
  });
  const auto& phases = sys.report().phases;
  ASSERT_EQ(phases.size(), 6u);
  const NodeReport& p1 = phases.at({1, 0});
  const NodeReport& p2 = phases.at({2, 0});
  EXPECT_EQ(p2.cpu_busy.Get(BusyCat::kCompute) - p1.cpu_busy.Get(BusyCat::kCompute),
            Millis(2));
  EXPECT_GT(p2.finish_time, p1.finish_time);
}

TEST(SystemApi, NodeMemoryIsPerNode) {
  System sys(SmallConfig(ProtocolKind::kLrc, 2));
  const GlobalAddr addr = sys.space().AllocPageAligned(64);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      co_await ctx.Write(addr, 8);
      *ctx.Ptr<int64_t>(addr) = 5;
    }
    co_return;  // No barrier: node 1 never learns of the write.
  });
  EXPECT_EQ(*reinterpret_cast<int64_t*>(sys.NodeMemory(0, addr)), 5);
  EXPECT_EQ(*reinterpret_cast<int64_t*>(sys.NodeMemory(1, addr)), 0);
}

TEST(SystemApi, NeedsAccessReflectsProtectionState) {
  System sys(SmallConfig(ProtocolKind::kHlrc, 2));
  const GlobalAddr addr = sys.space().AllocPageAligned(4096);
  bool before_write = false;
  bool after_write = true;
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      before_write = ctx.NeedsAccess(addr, 8, true);
      co_await ctx.Write(addr, 8);
      after_write = ctx.NeedsAccess(addr, 8, true);
      *ctx.Ptr<int64_t>(addr) = 1;
    }
    co_await ctx.Barrier(0);
  });
  EXPECT_TRUE(before_write);   // Initially read-only: write would fault.
  EXPECT_FALSE(after_write);   // Granted.
}

TEST(SystemApi, ReadsAreFreeWhenPagesValid) {
  System sys(SmallConfig(ProtocolKind::kHlrc, 2));
  const GlobalAddr addr = sys.space().AllocPageAligned(4096);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    // All pages start valid (zero-filled everywhere): reads never fault.
    co_await ctx.Read(addr, 4096);
    co_await ctx.Barrier(0);
  });
  EXPECT_EQ(sys.report().Totals().proto.read_misses, 0);
  EXPECT_EQ(sys.report().Totals().traffic.msgs_sent,
            sys.report().Totals().traffic.msgs_received);
}

TEST(SystemApiDeathTest, RecursiveAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        System sys(SmallConfig(ProtocolKind::kHlrc, 2));
        sys.space().AllocPageAligned(64);
        sys.Run([&](NodeContext& ctx) -> Task<void> {
          co_await ctx.Lock(1);
          co_await ctx.Lock(1);  // Recursive: aborts.
        });
      },
      "recursive acquire");
}

TEST(SystemApiDeathTest, UnlockWithoutLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        System sys(SmallConfig(ProtocolKind::kHlrc, 2));
        sys.space().AllocPageAligned(64);
        sys.Run([&](NodeContext& ctx) -> Task<void> { co_await ctx.Unlock(3); });
      },
      "release of lock");
}

TEST(SystemApiDeathTest, MismatchedBarrierDeadlockDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        System sys(SmallConfig(ProtocolKind::kHlrc, 2));
        sys.space().AllocPageAligned(64);
        sys.Run([&](NodeContext& ctx) -> Task<void> {
          if (ctx.id() == 0) {
            co_await ctx.Barrier(0);  // Node 1 never arrives.
          }
        });
      },
      "deadlock");
}

}  // namespace
}  // namespace hlrc

// Workload subsystem tests (src/wkld): wire-format round-trips, trace-file
// integrity checking, record→replay exactness on the paper applications,
// synthetic workload determinism, and the app registry.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/rng.h"
#include "src/wkld/recorder.h"
#include "src/wkld/replay.h"
#include "src/wkld/synth.h"
#include "src/wkld/trace_file.h"
#include "src/wkld/wire.h"

namespace hlrc {
namespace wkld {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---- wire primitives -------------------------------------------------------

TEST(Wire, VarintRoundTrips) {
  const uint64_t cases[] = {0,    1,    127,  128,   129,  16383, 16384,
                            1ull << 32, 1ull << 63, ~0ull, 42};
  for (uint64_t v : cases) {
    Buffer buf;
    PutVarint(buf, v);
    ByteReader in(buf.data(), buf.size());
    uint64_t back = 1;
    ASSERT_TRUE(in.ReadVarint(&back));
    EXPECT_EQ(v, back);
    EXPECT_TRUE(in.AtEnd());
  }
}

TEST(Wire, VarintRandomRoundTrips) {
  Rng rng(7);
  Buffer buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all varint lengths are exercised.
    const uint64_t v = rng.NextU64() >> (rng.NextU64() % 64);
    values.push_back(v);
    PutVarint(buf, v);
  }
  ByteReader in(buf.data(), buf.size());
  for (uint64_t v : values) {
    uint64_t back;
    ASSERT_TRUE(in.ReadVarint(&back));
    EXPECT_EQ(v, back);
  }
  EXPECT_TRUE(in.AtEnd());
}

TEST(Wire, ZigZagRoundTrips) {
  const int64_t cases[] = {0, 1, -1, 2, -2, 1000, -1000, INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    EXPECT_EQ(v, UnZigZag(ZigZag(v)));
  }
}

TEST(Wire, TruncatedVarintFails) {
  Buffer buf;
  PutVarint(buf, 1ull << 40);
  buf.pop_back();
  ByteReader in(buf.data(), buf.size());
  uint64_t v;
  EXPECT_FALSE(in.ReadVarint(&v));
  EXPECT_FALSE(in.ok());
}

TEST(Wire, Crc32MatchesKnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(0xCBF43926u, Crc32(reinterpret_cast<const uint8_t*>(s), 9));
}

TEST(Wire, Crc32DetectsBitFlip) {
  Buffer buf(64, 0xAB);
  const uint32_t crc = Crc32(buf);
  buf[17] ^= 0x01;
  EXPECT_NE(crc, Crc32(buf));
}

// ---- trace file round-trips ------------------------------------------------

Record MakeRandomRecord(Rng& rng) {
  Record rec;
  switch (rng.NextBounded(7)) {
    case 0:
      rec.kind = Record::Kind::kCompute;
      rec.duration_ns = rng.NextInt(0, 1 << 30);
      break;
    case 1: {
      rec.kind = Record::Kind::kAccess;
      const int n = static_cast<int>(rng.NextInt(1, 4));
      for (int i = 0; i < n; ++i) {
        rec.ranges.push_back(AccessRange{rng.NextU64() % (1ull << 40),
                                         rng.NextInt(1, 1 << 20), rng.NextBool()});
      }
      break;
    }
    case 2: {
      rec.kind = Record::Kind::kWrites;
      const int n = static_cast<int>(rng.NextInt(1, 3));
      for (int i = 0; i < n; ++i) {
        WriteRun run;
        run.addr = rng.NextU64() % (1ull << 40);
        run.bytes.resize(static_cast<size_t>(rng.NextInt(1, 512)));
        for (uint8_t& b : run.bytes) {
          b = static_cast<uint8_t>(rng.NextBounded(256));
        }
        rec.runs.push_back(std::move(run));
      }
      break;
    }
    case 3:
      rec.kind = Record::Kind::kLock;
      rec.sync_id = rng.NextInt(0, 1000);
      break;
    case 4:
      rec.kind = Record::Kind::kUnlock;
      rec.sync_id = rng.NextInt(0, 1000);
      break;
    case 5:
      rec.kind = Record::Kind::kBarrier;
      rec.sync_id = rng.NextInt(0, 100);
      break;
    default:
      rec.kind = Record::Kind::kPhase;
      rec.sync_id = rng.NextInt(0, 100);
      break;
  }
  return rec;
}

TraceInfo TestInfo(int nodes) {
  TraceInfo info;
  info.nodes = nodes;
  info.page_size = 4096;
  info.shared_bytes = 1 << 20;
  info.app = "test-app";
  info.meta = "directed round-trip";
  return info;
}

void ExpectWorkloadsEqual(const VectorSink& a, const VectorSink& b) {
  ASSERT_EQ(a.nodes(), b.nodes());
  EXPECT_EQ(a.allocs(), b.allocs());
  for (int n = 0; n < a.nodes(); ++n) {
    ASSERT_EQ(a.stream(n).size(), b.stream(n).size()) << "node " << n;
    for (size_t i = 0; i < a.stream(n).size(); ++i) {
      EXPECT_EQ(a.stream(n)[i], b.stream(n)[i]) << "node " << n << " record " << i;
    }
  }
}

TEST(TraceFile, DirectedRoundTrip) {
  const std::string path = TempPath("directed.wkld");
  VectorSink original(2);
  original.Alloc(AllocEntry{0, 8192, true});
  original.Alloc(AllocEntry{8192, 100, false});
  Record compute;
  compute.kind = Record::Kind::kCompute;
  compute.duration_ns = 12345;
  original.Append(0, compute);
  Record access;
  access.kind = Record::Kind::kAccess;
  access.ranges = {{0, 4096, true}, {4096, 64, false}};
  original.Append(0, access);
  Record writes;
  writes.kind = Record::Kind::kWrites;
  WriteRun run;
  run.addr = 16;
  run.bytes = {1, 2, 3, 4, 5};
  writes.runs.push_back(run);
  original.Append(0, writes);
  Record end;
  end.kind = Record::Kind::kEnd;
  Record barrier;
  barrier.kind = Record::Kind::kBarrier;
  barrier.sync_id = 0;
  original.Append(0, barrier);
  original.Append(0, end);
  original.Append(1, barrier);
  original.Append(1, end);

  TraceInfo info = TestInfo(2);
  WriteTrace(path, info, original);

  VectorSink back(2);
  TraceInfo read_info;
  std::string error;
  ASSERT_TRUE(ReadTrace(path, &back, &read_info, &error)) << error;
  EXPECT_EQ(info.app, read_info.app);
  EXPECT_EQ(info.meta, read_info.meta);
  EXPECT_EQ(info.page_size, read_info.page_size);
  EXPECT_EQ(info.shared_bytes, read_info.shared_bytes);
  ExpectWorkloadsEqual(original, back);
}

// ~1000 random records across several files and node interleavings: whatever
// is written comes back bit-identical.
TEST(TraceFile, RandomizedRoundTrips) {
  Rng rng(99);
  for (int file = 0; file < 8; ++file) {
    const int nodes = static_cast<int>(rng.NextInt(1, 4));
    const std::string path = TempPath("random" + std::to_string(file) + ".wkld");
    VectorSink original(nodes);
    GlobalAddr next_alloc = 0;
    for (int a = 0; a < static_cast<int>(rng.NextInt(1, 4)); ++a) {
      const int64_t bytes = rng.NextInt(16, 1 << 16);
      original.Alloc(AllocEntry{next_alloc, bytes, rng.NextBool()});
      next_alloc += static_cast<GlobalAddr>(bytes);
    }
    for (int r = 0; r < 140; ++r) {
      original.Append(static_cast<int>(rng.NextBounded(static_cast<uint64_t>(nodes))),
                      MakeRandomRecord(rng));
    }
    Record end;
    end.kind = Record::Kind::kEnd;
    for (int n = 0; n < nodes; ++n) {
      original.Append(n, end);
    }
    WriteTrace(path, TestInfo(nodes), original);

    VectorSink back(nodes);
    std::string error;
    ASSERT_TRUE(ReadTrace(path, &back, nullptr, &error)) << error;
    ExpectWorkloadsEqual(original, back);
  }
}

// A trace big enough to force multiple chunk flushes per node still
// round-trips (records never span chunks; delta state carries across them).
TEST(TraceFile, MultiChunkRoundTrip) {
  Rng rng(5);
  const std::string path = TempPath("multichunk.wkld");
  VectorSink original(2);
  original.Alloc(AllocEntry{0, 1 << 20, true});
  for (int r = 0; r < 600; ++r) {  // ~600 x ~0.5 KiB avg >> 64 KiB flush threshold.
    original.Append(r % 2, MakeRandomRecord(rng));
  }
  Record end;
  end.kind = Record::Kind::kEnd;
  original.Append(0, end);
  original.Append(1, end);
  WriteTrace(path, TestInfo(2), original);

  VectorSink back(2);
  std::string error;
  ASSERT_TRUE(ReadTrace(path, &back, nullptr, &error)) << error;
  ExpectWorkloadsEqual(original, back);
}

// ---- corruption rejection --------------------------------------------------

std::string ValidTracePath() {
  const std::string path = TempPath("valid.wkld");
  SynthConfig cfg;
  cfg.nodes = 2;
  cfg.pages_per_node = 2;
  cfg.iterations = 2;
  cfg.ops_per_iter = 4;
  WriteSyntheticTrace(path, cfg);
  return path;
}

TEST(TraceFile, RejectsBadMagic) {
  const std::string path = ValidTracePath();
  std::vector<uint8_t> bytes = Slurp(path);
  bytes[0] ^= 0xFF;
  const std::string bad = TempPath("badmagic.wkld");
  Dump(bad, bytes);
  std::string error;
  EXPECT_EQ(nullptr, TraceReader::Open(bad, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(TraceFile, RejectsVersionMismatch) {
  const std::string path = ValidTracePath();
  std::vector<uint8_t> bytes = Slurp(path);
  // The version is the u32 after the 8-byte magic; it is deliberately
  // outside the header CRC so a reader can name the version it cannot parse.
  bytes[8] = 0x7F;
  const std::string bad = TempPath("badversion.wkld");
  Dump(bad, bytes);
  std::string error;
  EXPECT_EQ(nullptr, TraceReader::Open(bad, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TraceFile, RejectsCorruptHeader) {
  const std::string path = ValidTracePath();
  std::vector<uint8_t> bytes = Slurp(path);
  bytes[20] ^= 0x10;  // Inside the header payload.
  const std::string bad = TempPath("badheader.wkld");
  Dump(bad, bytes);
  std::string error;
  EXPECT_EQ(nullptr, TraceReader::Open(bad, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(TraceFile, RejectsCorruptChunk) {
  const std::string path = ValidTracePath();
  std::vector<uint8_t> bytes = Slurp(path);
  bytes[bytes.size() - 40] ^= 0x40;  // Inside the last node's chunk payload.
  const std::string bad = TempPath("badchunk.wkld");
  Dump(bad, bytes);
  VectorSink sink(2);
  std::string error;
  EXPECT_FALSE(ReadTrace(bad, &sink, nullptr, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceFile, RejectsTruncation) {
  const std::string path = ValidTracePath();
  std::vector<uint8_t> bytes = Slurp(path);
  // Cut at several depths that each lose real data: mid-magic, mid-header,
  // mid-stream, and inside the last chunk. (Losing only the trailing 12-byte
  // end marker is harmless by design — every per-node stream carries its own
  // kEnd sentinel — so the shallowest cut here still bites into a chunk.)
  for (const size_t keep :
       {size_t{4}, size_t{10}, bytes.size() / 2, bytes.size() - 20}) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(keep));
    const std::string bad = TempPath("trunc" + std::to_string(keep) + ".wkld");
    Dump(bad, cut);
    VectorSink sink(2);
    std::string error;
    EXPECT_FALSE(ReadTrace(bad, &sink, nullptr, &error)) << "keep=" << keep;
    EXPECT_FALSE(error.empty()) << "keep=" << keep;
  }
}

// ---- record → replay exactness ---------------------------------------------

// The full pinned signature: every time category, every protocol counter,
// every per-MsgType message count.
std::string FullSummary(const RunReport& report) {
  const NodeReport t = report.Totals();
  std::ostringstream os;
  os << "time=" << report.total_time;
  for (int c = 0; c < static_cast<int>(BusyCat::kCount); ++c) {
    os << " busy." << BusyCatName(static_cast<BusyCat>(c)) << "="
       << t.cpu_busy.Get(static_cast<BusyCat>(c));
  }
  for (int c = 0; c < static_cast<int>(WaitCat::kCount); ++c) {
    os << " wait." << WaitCatName(static_cast<WaitCat>(c)) << "="
       << t.waits.Get(static_cast<WaitCat>(c));
  }
  for (int m = 0; m < static_cast<int>(MsgType::kCount); ++m) {
    os << " msg." << MsgTypeName(static_cast<MsgType>(m)) << "="
       << t.traffic.msgs_by_type[static_cast<size_t>(m)];
  }
  os << " fetches=" << t.proto.page_fetches << " diffs=" << t.proto.diffs_created
     << " applied=" << t.proto.diffs_applied << " locks=" << t.proto.lock_acquires
     << " barriers=" << t.proto.barriers << " update_bytes=" << t.traffic.update_bytes_sent
     << " proto_bytes=" << t.traffic.protocol_bytes_sent;
  return os.str();
}

SimConfig TestConfig(ProtocolKind kind) {
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.protocol.kind = kind;
  return cfg;
}

// Runs `app_name` (tiny scale) with the recorder attached, writing the trace
// to `path`. Returns the recorded run's summary.
std::string RecordAppTrace(const std::string& app_name, ProtocolKind kind,
                           const std::string& path) {
  auto app = MakeApp(app_name, AppScale::kTiny);
  const SimConfig cfg = TestConfig(kind);
  System sys(cfg);
  TraceWriter writer(path, MakeTraceInfo(cfg, app->name(), "test"));
  TraceRecorder recorder(&sys, &writer);
  sys.SetWorkloadObserver(&recorder);
  app->Setup(sys);
  sys.Run(app->Program());
  writer.Finish();
  std::string why;
  EXPECT_TRUE(app->Verify(sys, &why)) << app_name << ": " << why;
  return FullSummary(sys.report());
}

std::string ReplayTrace(const std::string& path, ProtocolKind kind) {
  std::string error;
  auto app = TraceReplayApp::Open(path, &error);
  EXPECT_NE(nullptr, app) << error;
  if (app == nullptr) {
    return "";
  }
  const SimConfig cfg = TestConfig(kind);
  System sys(cfg);
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  EXPECT_TRUE(app->Verify(sys, &why)) << why;
  return FullSummary(sys.report());
}

std::string PlainRun(const std::string& app_name, ProtocolKind kind) {
  auto app = MakeApp(app_name, AppScale::kTiny);
  System sys(TestConfig(kind));
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  EXPECT_TRUE(app->Verify(sys, &why)) << app_name << ": " << why;
  return FullSummary(sys.report());
}

// The acceptance bar: record→replay on each of the five paper applications
// reproduces the protocol behavior exactly — per-category time breakdown and
// per-MsgType message counts, bit for bit.
TEST(RecordReplay, PaperAppsReplayExactlyUnderHlrc) {
  for (const char* app : {"sor", "lu", "water-nsq", "water-sp", "raytrace"}) {
    const std::string path = TempPath(std::string("exact-") + app + ".wkld");
    const std::string recorded = RecordAppTrace(app, ProtocolKind::kHlrc, path);
    const std::string replayed = ReplayTrace(path, ProtocolKind::kHlrc);
    EXPECT_EQ(recorded, replayed) << app;
  }
}

// Attaching the recorder must not perturb the run it observes.
TEST(RecordReplay, RecordingIsPureObservation) {
  for (ProtocolKind kind : {ProtocolKind::kHlrc, ProtocolKind::kLrc}) {
    const std::string path = TempPath("observe.wkld");
    EXPECT_EQ(PlainRun("sor", kind), RecordAppTrace("sor", kind, path))
        << ProtocolName(kind);
  }
}

// A trace recorded under one protocol family replays under the others: the
// workload is protocol-independent; only the measured behavior changes.
TEST(RecordReplay, CrossProtocolReplayRuns) {
  const std::string path = TempPath("cross.wkld");
  RecordAppTrace("sor", ProtocolKind::kHlrc, path);
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kErc, ProtocolKind::kAurc,
                            ProtocolKind::kOhlrc}) {
    const std::string summary = ReplayTrace(path, kind);
    EXPECT_FALSE(summary.empty()) << ProtocolName(kind);
  }
}

TEST(RecordReplay, NodeCountMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = TempPath("mismatch.wkld");
  RecordAppTrace("sor", ProtocolKind::kHlrc, path);
  EXPECT_DEATH(
      {
        std::string error;
        auto app = TraceReplayApp::Open(path, &error);
        SimConfig cfg;
        cfg.nodes = 4;
        cfg.protocol.kind = ProtocolKind::kHlrc;
        System sys(cfg);
        app->Setup(sys);
      },
      "recorded with");
}

// ---- synthetic workloads ---------------------------------------------------

TEST(Synth, SameSeedIsByteIdentical) {
  SynthConfig cfg;
  cfg.pattern = SynthPattern::kHotspot;
  cfg.seed = 123;
  const std::string a = TempPath("synth-a.wkld");
  const std::string b = TempPath("synth-b.wkld");
  WriteSyntheticTrace(a, cfg);
  WriteSyntheticTrace(b, cfg);
  EXPECT_EQ(Slurp(a), Slurp(b));
}

TEST(Synth, DifferentSeedDiffers) {
  SynthConfig cfg;
  cfg.pattern = SynthPattern::kHotspot;
  cfg.seed = 123;
  const std::string a = TempPath("synth-s123.wkld");
  WriteSyntheticTrace(a, cfg);
  cfg.seed = 124;
  const std::string b = TempPath("synth-s124.wkld");
  WriteSyntheticTrace(b, cfg);
  EXPECT_NE(Slurp(a), Slurp(b));
}

// Every pattern runs to completion (no deadlock: barrier schedules match
// across nodes, locks are balanced) and through every protocol's replay path.
TEST(Synth, AllPatternsRunUnderHlrcAndLrc) {
  for (int p = 0; p < static_cast<int>(SynthPatternNames().size()); ++p) {
    SynthConfig cfg;
    cfg.pattern = static_cast<SynthPattern>(p);
    cfg.nodes = 4;
    cfg.pages_per_node = 2;
    cfg.iterations = 2;
    cfg.ops_per_iter = 4;
    for (ProtocolKind kind : {ProtocolKind::kHlrc, ProtocolKind::kLrc}) {
      auto app = MakeSyntheticApp(cfg);
      SimConfig sim;
      sim.nodes = 4;
      sim.protocol.kind = kind;
      const AppRunResult r = RunApp(*app, sim);
      EXPECT_TRUE(r.verified) << SynthPatternName(cfg.pattern) << " under "
                              << ProtocolName(kind) << ": " << r.why;
      EXPECT_GT(r.report.total_time, 0);
    }
  }
}

// Synthetic apps adapt to the system's topology (unlike file replay).
TEST(Synth, AppAdaptsToNodeCount) {
  SynthConfig cfg;
  cfg.pattern = SynthPattern::kSingleWriter;
  cfg.iterations = 2;
  cfg.ops_per_iter = 4;
  for (int nodes : {2, 8}) {
    auto app = MakeSyntheticApp(cfg);
    SimConfig sim;
    sim.nodes = nodes;
    const AppRunResult r = RunApp(*app, sim);
    EXPECT_TRUE(r.verified) << nodes << " nodes: " << r.why;
  }
}

// A generated trace file replays through the full file path too.
TEST(Synth, GeneratedTraceReplays) {
  const std::string path = TempPath("synth-replay.wkld");
  SynthConfig cfg;
  cfg.pattern = SynthPattern::kMigratory;
  cfg.nodes = 4;
  cfg.pages_per_node = 2;
  cfg.iterations = 2;
  cfg.ops_per_iter = 4;
  WriteSyntheticTrace(path, cfg);
  std::string error;
  auto app = TraceReplayApp::Open(path, &error);
  ASSERT_NE(nullptr, app) << error;
  SimConfig sim;
  sim.nodes = 4;
  System sys(sim);
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  EXPECT_TRUE(app->Verify(sys, &why)) << why;
}

TEST(Synth, PatternNamesRoundTrip) {
  for (const std::string& name : SynthPatternNames()) {
    SynthPattern p;
    ASSERT_TRUE(ParseSynthPattern(name, &p));
    EXPECT_EQ(name, SynthPatternName(p));
  }
  SynthPattern p;
  EXPECT_FALSE(ParseSynthPattern("no-such-pattern", &p));
}

// ---- app registry ----------------------------------------------------------

TEST(Registry, TryMakeAppReturnsNullOnUnknown) {
  EXPECT_EQ(nullptr, TryMakeApp("no-such-app", AppScale::kTiny));
  EXPECT_NE(nullptr, TryMakeApp("sor", AppScale::kTiny));
}

TEST(Registry, RegisteredNamesIncludePaperAppsAndSynthetics) {
  const std::vector<std::string> names = RegisteredAppNames();
  auto has = [&](const std::string& n) {
    for (const std::string& name : names) {
      if (name == n) {
        return true;
      }
    }
    return false;
  };
  for (const std::string& n : AllAppNames()) {
    EXPECT_TRUE(has(n)) << n;
  }
  for (const std::string& p : SynthPatternNames()) {
    EXPECT_TRUE(has("synth-" + p)) << p;
  }
  // Sorted, no duplicates.
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(Registry, SyntheticAppsComeFromTheFactory) {
  auto app = TryMakeApp("synth-migratory", AppScale::kTiny);
  ASSERT_NE(nullptr, app);
  SimConfig sim;
  sim.nodes = 4;
  const AppRunResult r = RunApp(*app, sim);
  EXPECT_TRUE(r.verified) << r.why;
}

}  // namespace
}  // namespace wkld
}  // namespace hlrc

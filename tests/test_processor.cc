#include "src/sim/processor.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace hlrc {
namespace {

TEST(Processor, AppExecutionTakesItsDuration) {
  Engine e;
  Processor p(&e, "cpu");
  SimTime end = -1;
  SpawnDetached([](Engine* eng, Processor* proc, SimTime* t) -> Task<void> {
    co_await proc->ExecuteApp(Micros(100));
    *t = eng->Now();
  }(&e, &p, &end));
  e.Run();
  EXPECT_EQ(end, Micros(100));
  EXPECT_EQ(p.busy().Get(BusyCat::kCompute), Micros(100));
}

TEST(Processor, ServicePreemptsAndDelaysApp) {
  Engine e;
  Processor p(&e, "cpu");
  SimTime end = -1;
  SpawnDetached([](Engine* eng, Processor* proc, SimTime* t) -> Task<void> {
    co_await proc->ExecuteApp(Micros(100));
    *t = eng->Now();
  }(&e, &p, &end));
  // Interrupt arrives mid-execution.
  bool serviced = false;
  e.Schedule(Micros(40), [&] {
    p.RunService(Micros(20), BusyCat::kInterrupt, [&] { serviced = true; });
  });
  e.Run();
  EXPECT_TRUE(serviced);
  EXPECT_EQ(end, Micros(120));  // 100 of work stretched by 20 of service.
  EXPECT_EQ(p.busy().Get(BusyCat::kCompute), Micros(100));
  EXPECT_EQ(p.busy().Get(BusyCat::kInterrupt), Micros(20));
}

TEST(Processor, ServicesRunFifo) {
  Engine e;
  Processor p(&e, "cop");
  std::vector<int> order;
  e.Schedule(0, [&] {
    p.RunService(Micros(10), BusyCat::kService, [&] { order.push_back(1); });
    p.RunService(Micros(10), BusyCat::kService, [&] { order.push_back(2); });
    p.RunService(Micros(10), BusyCat::kService, [&] { order.push_back(3); });
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), Micros(30));
}

TEST(Processor, ServiceWhileIdleRunsImmediately) {
  Engine e;
  Processor p(&e, "cpu");
  SimTime done_at = -1;
  e.Schedule(Micros(5), [&] {
    p.RunService(Micros(7), BusyCat::kService, [&] { done_at = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(done_at, Micros(12));
}

TEST(Processor, AppAfterServicesWaits) {
  Engine e;
  Processor p(&e, "cpu");
  // Service running when app work is requested: app starts after.
  SimTime end = -1;
  e.Schedule(0, [&] { p.RunService(Micros(50), BusyCat::kService, [] {}); });
  e.Schedule(Micros(10), [&] {
    SpawnDetached([](Engine* eng, Processor* proc, SimTime* t) -> Task<void> {
      co_await proc->ExecuteApp(Micros(10));
      *t = eng->Now();
    }(&e, &p, &end));
  });
  e.Run();
  EXPECT_EQ(end, Micros(60));
}

TEST(Processor, BackToBackInterruptsExtendAppProportionally) {
  Engine e;
  Processor p(&e, "cpu");
  SimTime end = -1;
  SpawnDetached([](Engine* eng, Processor* proc, SimTime* t) -> Task<void> {
    co_await proc->ExecuteApp(Micros(100));
    *t = eng->Now();
  }(&e, &p, &end));
  for (int i = 0; i < 5; ++i) {
    e.Schedule(Micros(10 + i), [&] { p.RunService(Micros(10), BusyCat::kInterrupt, [] {}); });
  }
  e.Run();
  EXPECT_EQ(end, Micros(150));
  EXPECT_EQ(p.busy().Total(), Micros(150));
}

TEST(Processor, IdleHookReportsGaps) {
  Engine e;
  Processor p(&e, "cpu");
  std::vector<std::pair<SimTime, SimTime>> gaps;
  p.SetIdleHook([&](SimTime a, SimTime b) { gaps.emplace_back(a, b); });
  e.Schedule(Micros(10), [&] { p.RunService(Micros(5), BusyCat::kService, [] {}); });
  e.Schedule(Micros(30), [&] { p.RunService(Micros(5), BusyCat::kService, [] {}); });
  e.Run();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], std::make_pair(Micros(0), Micros(10)));
  EXPECT_EQ(gaps[1], std::make_pair(Micros(15), Micros(30)));
}

TEST(Processor, ZeroCostServiceStillRunsInOrder) {
  Engine e;
  Processor p(&e, "cpu");
  std::vector<int> order;
  e.Schedule(0, [&] {
    p.RunService(0, BusyCat::kService, [&] { order.push_back(1); });
    p.RunService(Micros(1), BusyCat::kService, [&] { order.push_back(2); });
    p.RunService(0, BusyCat::kService, [&] { order.push_back(3); });
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace hlrc

// Golden determinism test: the simulator must produce bit-identical summary
// statistics for a fixed configuration, run to run and commit to commit.
//
// A Table-2-style summary (virtual time plus the operation/traffic totals
// behind the paper's tables) is pinned for the four protocol families on 8
// nodes to tests/golden/summary_8nodes.txt. Any change to scheduling,
// protocol logic, cost model or network timing that alters behavior shows up
// as a diff of that file — intentional changes are re-pinned with
//
//   HLRC_REGEN_GOLDEN=1 ./test_golden_determinism
//
// which rewrites the golden in the source tree; review the diff like code.
// Only integer virtual-time and counter fields are pinned (no floating
// point), so the file is platform-independent.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/app.h"
#include "src/check/explorer.h"
#include "src/wkld/recorder.h"
#include "src/wkld/replay.h"
#include "src/wkld/trace_file.h"

namespace hlrc {
namespace {

constexpr int kNodes = 8;

std::string FormatSummary(const std::string& app_name, ProtocolKind kind, const RunReport& report);

std::string SummaryLine(const std::string& app_name, ProtocolKind kind) {
  std::unique_ptr<App> app = MakeApp(app_name, AppScale::kTiny);
  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.protocol.kind = kind;
  const AppRunResult r = RunApp(*app, cfg);
  EXPECT_TRUE(r.verified) << app_name << " under " << ProtocolName(kind) << ": " << r.why;
  return FormatSummary(app_name, kind, r.report);
}

// Same run with the metrics layer enabled: recording must be pure
// observation, so the summary line has to be bit-identical to SummaryLine's.
std::string SummaryLineWithMetrics(const std::string& app_name, ProtocolKind kind) {
  std::unique_ptr<App> app = MakeApp(app_name, AppScale::kTiny);
  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.protocol.kind = kind;
  System sys(cfg);
  sys.EnableMetrics(Micros(100));
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  EXPECT_TRUE(app->Verify(sys, &why)) << app_name << ": " << why;
  return FormatSummary(app_name, kind, sys.report());
}

// Same run with metrics AND the span tracer enabled: span recording is pure
// observation (no simulated time, no messages, no allocation visible to the
// protocols), so the summary line has to be bit-identical to SummaryLine's.
std::string SummaryLineWithSpans(const std::string& app_name, ProtocolKind kind) {
  std::unique_ptr<App> app = MakeApp(app_name, AppScale::kTiny);
  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.protocol.kind = kind;
  System sys(cfg);
  sys.EnableMetrics(Micros(100));
  sys.EnableSpans();
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  EXPECT_TRUE(app->Verify(sys, &why)) << app_name << ": " << why;
  EXPECT_FALSE(sys.spans()->spans().empty()) << "tracer attached but recorded nothing";
  return FormatSummary(app_name, kind, sys.report());
}

std::string FormatSummary(const std::string& app_name, ProtocolKind kind,
                          const RunReport& report) {
  const NodeReport t = report.Totals();
  std::ostringstream os;
  os << app_name << " " << ProtocolName(kind) << " nodes=" << kNodes
     << " time=" << report.total_time << " msgs=" << t.traffic.msgs_sent
     << " update_bytes=" << t.traffic.update_bytes_sent
     << " proto_bytes=" << t.traffic.protocol_bytes_sent
     << " read_misses=" << t.proto.read_misses << " write_faults=" << t.proto.write_faults
     << " page_fetches=" << t.proto.page_fetches << " diffs=" << t.proto.diffs_created
     << " applied=" << t.proto.diffs_applied << " locks=" << t.proto.lock_acquires
     << " barriers=" << t.proto.barriers << " intervals=" << t.proto.intervals_closed
     << " invalidations=" << t.proto.pages_invalidated
     << " proto_mem=" << t.proto_mem_highwater;
  return os.str();
}

std::string BuildSummary() {
  const ProtocolKind kProtocols[] = {ProtocolKind::kLrc, ProtocolKind::kOlrc,
                                     ProtocolKind::kHlrc, ProtocolKind::kOhlrc};
  std::ostringstream os;
  for (const std::string& app : {std::string("sor"), std::string("lu")}) {
    for (ProtocolKind kind : kProtocols) {
      os << SummaryLine(app, kind) << "\n";
    }
  }
  return os.str();
}

std::string GoldenPath() { return std::string(HLRC_GOLDEN_DIR) + "/summary_8nodes.txt"; }

TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical) {
  EXPECT_EQ(SummaryLine("sor", ProtocolKind::kHlrc), SummaryLine("sor", ProtocolKind::kHlrc));
}

TEST(GoldenDeterminism, MetricsCollectionDoesNotChangeTheRun) {
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kHlrc}) {
    EXPECT_EQ(SummaryLine("sor", kind), SummaryLineWithMetrics("sor", kind))
        << ProtocolName(kind);
  }
}

TEST(GoldenDeterminism, SpanTracingDoesNotChangeTheRun) {
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kHlrc, ProtocolKind::kErc,
                            ProtocolKind::kAurc}) {
    EXPECT_EQ(SummaryLine("sor", kind), SummaryLineWithSpans("sor", kind))
        << ProtocolName(kind);
  }
}

// The parallel seed-sweep driver (src/sim/sweep.h) must be an implementation
// detail: a schedule-exploration sweep aggregated across worker threads has to
// match the serial sweep exactly — same counters and the same failure
// callbacks in the same (seed) order.
TEST(GoldenDeterminism, ParallelSweepMatchesSerialSweep) {
  CheckConfig base;
  base.litmus = "barrier-propagation";
  base.protocol = ProtocolKind::kHlrc;
  // Inject a mutation so some seeds genuinely fail and exercise the
  // on_failure path on both sides (same setup as test_check's mutation
  // regression, which flags this bug within 200 seeds).
  base.mutation = TestMutation::kHlrcSkipDiffApply;
  constexpr uint64_t kFirstSeed = 1;
  constexpr int kSeeds = 200;

  auto run = [&](int jobs) {
    std::vector<std::pair<uint64_t, bool>> failures;
    const SweepResult r = Sweep(
        base, kFirstSeed, kSeeds,
        [&failures](uint64_t seed, const CheckResult& cr) {
          failures.emplace_back(seed, cr.ok);
        },
        jobs);
    return std::make_pair(r, failures);
  };

  const auto [serial, serial_failures] = run(1);
  const auto [parallel, parallel_failures] = run(4);
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.failures, parallel.failures);
  EXPECT_EQ(serial.found_failure, parallel.found_failure);
  EXPECT_EQ(serial.first_failing_seed, parallel.first_failing_seed);
  EXPECT_EQ(serial.reads_checked, parallel.reads_checked);
  EXPECT_EQ(serial.writes_recorded, parallel.writes_recorded);
  EXPECT_EQ(serial_failures, parallel_failures);
  EXPECT_GT(serial.failures, 0) << "mutation produced no failures; parity test is vacuous";
}

// Trace replay is pinned to the same bar as repeated runs: a recorded run
// replayed from its trace file must reproduce the original summary line bit
// for bit (src/wkld). Recording itself must also be pure observation.
TEST(GoldenDeterminism, ReplayReproducesRecordedRun) {
  const std::string path = ::testing::TempDir() + "/golden-replay.wkld";
  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.protocol.kind = ProtocolKind::kHlrc;

  std::string recorded;
  {
    std::unique_ptr<App> app = MakeApp("sor", AppScale::kTiny);
    System sys(cfg);
    wkld::TraceWriter writer(path, wkld::MakeTraceInfo(cfg, app->name(), "golden"));
    wkld::TraceRecorder recorder(&sys, &writer);
    sys.SetWorkloadObserver(&recorder);
    app->Setup(sys);
    sys.Run(app->Program());
    writer.Finish();
    std::string why;
    ASSERT_TRUE(app->Verify(sys, &why)) << why;
    recorded = FormatSummary("sor", ProtocolKind::kHlrc, sys.report());
  }
  EXPECT_EQ(SummaryLine("sor", ProtocolKind::kHlrc), recorded)
      << "recording perturbed the run it observed";

  std::string error;
  std::unique_ptr<wkld::TraceReplayApp> replay = wkld::TraceReplayApp::Open(path, &error);
  ASSERT_NE(nullptr, replay) << error;
  System sys(cfg);
  replay->Setup(sys);
  sys.Run(replay->Program());
  std::string why;
  ASSERT_TRUE(replay->Verify(sys, &why)) << why;
  EXPECT_EQ(recorded, FormatSummary("sor", ProtocolKind::kHlrc, sys.report()));
}

// The coalesced wire plane (PR-10) is opt-in: a default-constructed config
// must have every piece of it off, which together with
// SummaryMatchesCheckedInGolden pins "flags off => bit-identical to the
// pre-coalescing golden" for all four protocol families.
TEST(GoldenDeterminism, CoalescedWirePlaneIsOffByDefault) {
  SimConfig cfg;
  EXPECT_FALSE(cfg.network.coalesce);
  EXPECT_FALSE(cfg.protocol.coalesce);
  EXPECT_FALSE(cfg.reliability.piggyback_acks);
  EXPECT_EQ(cfg.protocol.barrier_arity, 0);
}

// Coalesce-on runs: deterministic, correct, and frame-accounting-consistent.
AppRunResult RunCoalesced(const std::string& app_name, ProtocolKind kind) {
  std::unique_ptr<App> app = MakeApp(app_name, AppScale::kTiny);
  SimConfig cfg;
  cfg.nodes = kNodes;
  cfg.protocol.kind = kind;
  cfg.network.coalesce = true;
  cfg.protocol.coalesce = true;
  cfg.protocol.barrier_arity = 4;
  return RunApp(*app, cfg);
}

// Logical protocol messages inside the frames: everything except standalone
// acks and the bundle frames themselves (each bundle is counted once per
// carried part).
int64_t LogicalMsgs(const NodeReport& t) {
  int64_t n = 0;
  for (size_t i = 0; i < t.traffic.msgs_by_type.size(); ++i) {
    if (i == static_cast<size_t>(MsgType::kAck) ||
        i == static_cast<size_t>(MsgType::kBundle)) {
      continue;
    }
    n += t.traffic.msgs_by_type[i];
  }
  return n;
}

TEST(GoldenDeterminism, CoalescedRunsAreBitIdenticalAndLogicallyEquivalent) {
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kOlrc, ProtocolKind::kHlrc,
                            ProtocolKind::kOhlrc}) {
    const AppRunResult a = RunCoalesced("sor", kind);
    const AppRunResult b = RunCoalesced("sor", kind);
    ASSERT_TRUE(a.verified) << ProtocolName(kind) << ": " << a.why;
    EXPECT_EQ(FormatSummary("sor", kind, a.report), FormatSummary("sor", kind, b.report))
        << ProtocolName(kind) << ": coalesce-on run is not deterministic";

    const NodeReport on = a.report.Totals();
    // Frame accounting must balance exactly: each bundle replaces its parts
    // with one frame, and (without reliability) there are no ack frames.
    EXPECT_EQ(on.traffic.msgs_sent,
              LogicalMsgs(on) - on.traffic.msgs_coalesced + on.traffic.frames_coalesced +
                  on.traffic.acks_sent)
        << ProtocolName(kind);
    EXPECT_EQ(on.traffic.acks_sent, 0) << ProtocolName(kind);

    // Against the plain run: the program-driven counters cannot move (the
    // wire plane repacks frames, it does not change what the app does), and
    // coalescing never adds frames.
    std::unique_ptr<App> app = MakeApp("sor", AppScale::kTiny);
    SimConfig cfg;
    cfg.nodes = kNodes;
    cfg.protocol.kind = kind;
    const AppRunResult plain = RunApp(*app, cfg);
    const NodeReport off = plain.report.Totals();
    EXPECT_EQ(on.proto.barriers, off.proto.barriers) << ProtocolName(kind);
    EXPECT_EQ(on.proto.lock_acquires, off.proto.lock_acquires) << ProtocolName(kind);
    EXPECT_LE(on.traffic.msgs_sent, off.traffic.msgs_sent) << ProtocolName(kind);
  }
}

TEST(GoldenDeterminism, SummaryMatchesCheckedInGolden) {
  const std::string actual = BuildSummary();
  if (std::getenv("HLRC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << actual;
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << " — run with HLRC_REGEN_GOLDEN=1 to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "summary drifted from " << GoldenPath()
      << "; if the behavior change is intentional, regenerate with "
         "HLRC_REGEN_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace hlrc

// Garbage-collection mechanism tests for the homeless protocols (paper §3.5):
// trigger conditions, validator behaviour, post-GC full-page fetches, memory
// reclamation, and correctness across collections.
#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/app.h"
#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

// Rotating writers so diffs and write notices pile up at every node.
void RunChurn(System& sys, GlobalAddr addr, int rounds, int chunk, int nodes) {
  sys.Run([&, rounds, chunk, nodes](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < rounds; ++r) {
      const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * chunk;
      co_await ctx.Write(mine, chunk);
      std::memset(ctx.Ptr<char>(mine), (r + ctx.id()) % 250 + 1, static_cast<size_t>(chunk));
      co_await ctx.Barrier(0);
      const GlobalAddr theirs =
          addr + static_cast<GlobalAddr>((ctx.id() + 1) % nodes) * chunk;
      co_await ctx.Read(theirs, chunk);
      co_await ctx.Barrier(1);
    }
  });
}

TEST(Gc, NoGcWithLargeThreshold) {
  SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 4);
  cfg.protocol.gc_threshold_bytes = 1ll << 30;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
  RunChurn(sys, addr, 5, 8 * 1024, 4);
  EXPECT_EQ(sys.report().Totals().proto.gc_runs, 0);
}

TEST(Gc, TriggersOnEveryNodeTogether) {
  SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 4);
  cfg.protocol.gc_threshold_bytes = 8 * 1024;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
  RunChurn(sys, addr, 5, 8 * 1024, 4);
  // GC is a global event at a barrier: all nodes record the same count.
  const int64_t runs0 = sys.report().nodes[0].proto.gc_runs;
  EXPECT_GT(runs0, 0);
  for (const NodeReport& n : sys.report().nodes) {
    EXPECT_EQ(n.proto.gc_runs, runs0);
  }
}

TEST(Gc, DataSurvivesCollections) {
  // After heavy churn with frequent GC, final values must still be exact.
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kOlrc}) {
    SimConfig cfg = SmallConfig(kind, 4);
    cfg.protocol.gc_threshold_bytes = 4 * 1024;
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < 6; ++r) {
        if (ctx.id() == r % 4) {
          co_await ctx.Write(addr, 16 * 1024);
          int64_t* data = ctx.Ptr<int64_t>(addr);
          for (int i = 0; i < 2048; ++i) {
            data[i] = r * 10000 + i;
          }
        }
        co_await ctx.Barrier(0);
        co_await ctx.Read(addr, 16 * 1024);
        const int64_t* data = ctx.Ptr<int64_t>(addr);
        for (int i = 0; i < 2048; i += 97) {
          EXPECT_EQ(data[i], r * 10000 + i) << "node " << ctx.id() << " round " << r;
        }
        co_await ctx.Barrier(1);
      }
    });
    EXPECT_GT(sys.report().Totals().proto.gc_runs, 0) << ProtocolName(kind);
  }
}

TEST(Gc, CausesFullPageFetchesAfterCopiesDropped) {
  SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 4);
  cfg.protocol.gc_threshold_bytes = 4 * 1024;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
  RunChurn(sys, addr, 6, 8 * 1024, 4);
  // Without GC the initial copies never drop, so any full-page fetch is a
  // post-GC effect (the paper's LU observation in §4.6).
  EXPECT_GT(sys.report().Totals().proto.page_fetches, 0);
  EXPECT_GT(sys.report().Totals().proto.gc_runs, 0);
}

TEST(Gc, ReducesProtocolMemoryVersusNoGc) {
  int64_t highwater[2] = {0, 0};
  const int64_t thresholds[2] = {1ll << 30, 8 * 1024};
  for (int k = 0; k < 2; ++k) {
    SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 4);
    cfg.protocol.gc_threshold_bytes = thresholds[k];
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
    RunChurn(sys, addr, 8, 8 * 1024, 4);
    for (const NodeReport& n : sys.report().nodes) {
      highwater[k] = std::max(highwater[k], n.proto_mem_highwater);
    }
  }
  EXPECT_GT(highwater[0], highwater[1]);
}

TEST(Gc, GcTimeAppearsInBreakdown) {
  SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 4);
  cfg.protocol.gc_threshold_bytes = 4 * 1024;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
  RunChurn(sys, addr, 6, 8 * 1024, 4);
  SimTime gc_time = 0;
  for (const NodeReport& n : sys.report().nodes) {
    gc_time += n.GcTime();
  }
  EXPECT_GT(gc_time, 0);
}


TEST(Gc, MigratoryChurnWithAggressiveGcAtScale) {
  // Regression: a GC validator could learn of intervals for its own pages
  // only from the barrier release — after the diffs were collected. LU-like
  // migratory block updates at 16 nodes with a tiny threshold reproduce the
  // window; the run must verify exactly.
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kOlrc}) {
    auto app = MakeApp("lu", AppScale::kTiny);
    SimConfig cfg = SmallConfig(kind, 16, 16ll << 20, 1024);
    cfg.protocol.gc_threshold_bytes = 16 << 10;
    const AppRunResult r = RunApp(*app, cfg);
    EXPECT_TRUE(r.verified) << ProtocolName(kind) << ": " << r.why;
    EXPECT_GT(r.report.Totals().proto.gc_runs, 0) << ProtocolName(kind);
  }
}

}  // namespace
}  // namespace hlrc

#include "bench/bench_util.h"

#include <gtest/gtest.h>

namespace hlrc {
namespace bench {
namespace {

BenchOptions Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "bench";
  argv.push_back(prog.data());
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  return ParseArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchUtil, Defaults) {
  std::vector<std::string> none;
  const BenchOptions opts = Parse(none);
  EXPECT_EQ(opts.node_counts, (std::vector<int>{8, 32, 64}));
  EXPECT_EQ(opts.scale, AppScale::kDefault);
  EXPECT_EQ(opts.apps.size(), 5u);
  EXPECT_EQ(opts.protocols.size(), 4u);
  EXPECT_EQ(opts.page_size, 4096);
  EXPECT_TRUE(opts.verify);
}

TEST(BenchUtil, ParsesNodesList) {
  std::vector<std::string> args = {"--nodes=4,16"};
  const BenchOptions opts = Parse(std::move(args));
  EXPECT_EQ(opts.node_counts, (std::vector<int>{4, 16}));
}

TEST(BenchUtil, ParsesScaleAndApps) {
  std::vector<std::string> args = {"--scale=tiny", "--apps=lu,raytrace"};
  const BenchOptions opts = Parse(std::move(args));
  EXPECT_EQ(opts.scale, AppScale::kTiny);
  EXPECT_EQ(opts.apps, (std::vector<std::string>{"lu", "raytrace"}));
}

TEST(BenchUtil, ParsesProtocolsAndHome) {
  std::vector<std::string> args = {"--protocols=lrc,ohlrc", "--home=round-robin",
                                   "--page-size=8192", "--no-verify"};
  const BenchOptions opts = Parse(std::move(args));
  ASSERT_EQ(opts.protocols.size(), 2u);
  EXPECT_EQ(opts.protocols[0], ProtocolKind::kLrc);
  EXPECT_EQ(opts.protocols[1], ProtocolKind::kOhlrc);
  EXPECT_EQ(opts.home_policy, HomePolicy::kRoundRobin);
  EXPECT_EQ(opts.page_size, 8192);
  EXPECT_FALSE(opts.verify);
}

TEST(BenchUtil, BaseConfigReflectsOptions) {
  std::vector<std::string> args = {"--page-size=1024", "--home=single-node"};
  const BenchOptions opts = Parse(std::move(args));
  const SimConfig cfg = BaseConfig(opts, ProtocolKind::kOlrc, 16);
  EXPECT_EQ(cfg.nodes, 16);
  EXPECT_EQ(cfg.page_size, 1024);
  EXPECT_EQ(cfg.protocol.kind, ProtocolKind::kOlrc);
  EXPECT_EQ(cfg.protocol.home_policy, HomePolicy::kSingleNode);
}

TEST(BenchUtil, SequentialTimeIsPureCompute) {
  std::vector<std::string> args = {"--scale=tiny"};
  const BenchOptions opts = Parse(std::move(args));
  const SimTime t = SequentialTime("sor", opts);
  EXPECT_GT(t, 0);
  // Sequential compute is protocol independent.
  BenchOptions opts2 = opts;
  opts2.protocols = {ProtocolKind::kLrc};
  EXPECT_EQ(SequentialTime("sor", opts2), t);
}

TEST(BenchUtil, RunVerifiedReturnsReport) {
  std::vector<std::string> args = {"--scale=tiny"};
  const BenchOptions opts = Parse(std::move(args));
  const AppRunResult r = RunVerified("lu", opts, BaseConfig(opts, ProtocolKind::kHlrc, 4));
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.report.total_time, 0);
  EXPECT_EQ(r.report.nodes.size(), 4u);
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

// Differential tests for the optimized diff data plane (docs/PERFORMANCE.md):
// CreateDiff (whole-page memcmp short-circuit + 8-byte scanning) must produce
// byte-identical output to CreateDiffReference, the original word-at-a-time
// implementation kept as the oracle, across directed edge cases and ~1000
// randomized twin/current pairs.
#include "src/mem/diff.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"

namespace hlrc {
namespace {

void ExpectSameDiff(const Diff& fast, const Diff& ref) {
  EXPECT_EQ(fast.page, ref.page);
  ASSERT_EQ(fast.runs.size(), ref.runs.size());
  for (size_t i = 0; i < fast.runs.size(); ++i) {
    EXPECT_EQ(fast.runs[i].offset, ref.runs[i].offset) << "run " << i;
    EXPECT_EQ(fast.runs[i].length, ref.runs[i].length) << "run " << i;
    EXPECT_EQ(fast.runs[i].data_offset, ref.runs[i].data_offset) << "run " << i;
  }
  EXPECT_EQ(fast.data, ref.data);
  EXPECT_EQ(fast.DataBytes(), ref.DataBytes());
  EXPECT_EQ(fast.EncodedSize(), ref.EncodedSize());
}

void CheckPair(const std::vector<std::byte>& twin, const std::vector<std::byte>& cur,
               int word_bytes) {
  const int64_t page = static_cast<int64_t>(twin.size());
  const Diff fast = CreateDiff(7, twin.data(), cur.data(), page, word_bytes);
  const Diff ref = CreateDiffReference(7, twin.data(), cur.data(), page, word_bytes);
  ExpectSameDiff(fast, ref);

  // Applying the optimized diff onto the twin must reconstruct `cur` exactly.
  auto target = twin;
  ApplyDiff(fast, target.data(), page);
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), static_cast<size_t>(page)), 0);
}

std::vector<std::byte> RandomPage(Rng* rng, int64_t bytes) {
  std::vector<std::byte> p(static_cast<size_t>(bytes));
  for (auto& b : p) {
    b = std::byte{static_cast<uint8_t>(rng->NextU64())};
  }
  return p;
}

TEST(DiffFast, AllCleanTakesShortCircuit) {
  for (const int word : {4, 8}) {
    Rng rng(1);
    const auto twin = RandomPage(&rng, 4096);
    CheckPair(twin, twin, word);
    const Diff d = CreateDiff(7, twin.data(), twin.data(), 4096, word);
    EXPECT_TRUE(d.Empty());
  }
}

TEST(DiffFast, AllDirtyIsOneFullRun) {
  for (const int word : {4, 8}) {
    Rng rng(2);
    const auto twin = RandomPage(&rng, 4096);
    auto cur = twin;
    for (auto& b : cur) {
      b ^= std::byte{0xff};
    }
    CheckPair(twin, cur, word);
    const Diff d = CreateDiff(7, twin.data(), cur.data(), 4096, word);
    ASSERT_EQ(d.runs.size(), 1u);
    EXPECT_EQ(d.runs[0].length, 4096u);
  }
}

TEST(DiffFast, RunEndingAtPageEnd) {
  for (const int word : {4, 8}) {
    Rng rng(3);
    const auto twin = RandomPage(&rng, 4096);
    auto cur = twin;
    // Dirty the final 3 words, so the run must close at the page boundary,
    // not by finding a clean word after it.
    for (int64_t i = 4096 - 3 * word; i < 4096; ++i) {
      cur[static_cast<size_t>(i)] ^= std::byte{0x5a};
    }
    CheckPair(twin, cur, word);
  }
}

TEST(DiffFast, RunStartingAtPageStart) {
  for (const int word : {4, 8}) {
    Rng rng(4);
    const auto twin = RandomPage(&rng, 4096);
    auto cur = twin;
    cur[0] ^= std::byte{1};
    CheckPair(twin, cur, word);
  }
}

TEST(DiffFast, AlternatingWordsMaximizeRunCount) {
  for (const int word : {4, 8}) {
    Rng rng(5);
    const auto twin = RandomPage(&rng, 2048);
    auto cur = twin;
    for (int64_t w = 0; w < 2048 / word; w += 2) {
      cur[static_cast<size_t>(w * word)] ^= std::byte{0xff};
    }
    CheckPair(twin, cur, word);
  }
}

// A changed byte in every position of every word lane: catches any lane the
// 8-byte granule compare might mask.
TEST(DiffFast, SingleByteInEveryLane) {
  Rng rng(6);
  const auto twin = RandomPage(&rng, 256);
  for (const int word : {4, 8}) {
    for (int64_t pos = 0; pos < 64; ++pos) {
      auto cur = twin;
      cur[static_cast<size_t>(pos)] ^= std::byte{0x80};
      CheckPair(twin, cur, word);
    }
  }
}

// Randomized differential sweep: 2 word sizes x 2 page sizes x 256 seeds of
// random dirty patterns, ~1000 pairs total.
TEST(DiffFast, RandomizedPairsMatchReference) {
  for (const int word : {4, 8}) {
    for (const int64_t page : {1024ll, 4096ll}) {
      for (uint64_t seed = 0; seed < 256; ++seed) {
        Rng rng(seed * 4 + static_cast<uint64_t>(word) + static_cast<uint64_t>(page));
        const auto twin = RandomPage(&rng, page);
        auto cur = twin;
        // Mix sparse single-byte pokes and word-aligned block smears.
        const int pokes = static_cast<int>(rng.NextBounded(64));
        for (int i = 0; i < pokes; ++i) {
          cur[rng.NextBounded(static_cast<uint64_t>(page))] =
              std::byte{static_cast<uint8_t>(rng.NextU64())};
        }
        if (rng.NextBool()) {
          const int64_t words = page / word;
          const int64_t start = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(words)));
          const int64_t len =
              1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(words - start)));
          for (int64_t b = start * word; b < (start + len) * word; ++b) {
            cur[static_cast<size_t>(b)] ^= std::byte{0x33};
          }
        }
        CheckPair(twin, cur, word);
      }
    }
  }
}

// A rewritten word whose bytes happen to equal the twin's must not appear in
// the diff (content comparison, not write tracking) — and the short-circuit
// must agree with the reference about it.
TEST(DiffFast, RewriteWithSameValueProducesCleanPage) {
  Rng rng(8);
  const auto twin = RandomPage(&rng, 1024);
  auto cur = twin;
  std::memcpy(cur.data() + 512, twin.data() + 512, 64);
  CheckPair(twin, cur, 8);
  const Diff d = CreateDiff(7, twin.data(), cur.data(), 1024, 8);
  EXPECT_TRUE(d.Empty());
}

}  // namespace
}  // namespace hlrc

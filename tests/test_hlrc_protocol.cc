// HLRC-specific mechanism tests: pending page requests at the home, the
// required/applied flush-timestamp handshake, and OHLRC's asynchronous diff
// pipeline.
#include <gtest/gtest.h>

#include <cstring>

#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

TEST(HlrcMechanism, FetchWaitsForInFlightDiff) {
  // Writer releases a lock; the reader's page request can reach the home
  // before the writer's diff does (the OHLRC case in paper §2.4.2). The home
  // must park the request and still deliver the updated page.
  for (ProtocolKind kind : {ProtocolKind::kHlrc, ProtocolKind::kOhlrc}) {
    SimConfig cfg = SmallConfig(kind, 4);
    cfg.protocol.home_policy = HomePolicy::kSingleNode;  // Home = node 0.
    // Slow the diff path so the fetch overtakes the flush.
    cfg.costs.diff_apply_per_byte = Nanos(500);
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(1024);

    int64_t seen = -1;
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      if (ctx.id() == 1) {
        co_await ctx.Lock(1);
        co_await ctx.Write(addr, 512);
        std::memset(ctx.Ptr<char>(addr), 0x5a, 512);
        co_await ctx.Unlock(1);
      } else if (ctx.id() == 2) {
        // Chase the lock immediately; the grant races the diff flush.
        co_await ctx.Compute(Micros(10));
        co_await ctx.Lock(1);
        co_await ctx.Read(addr, 512);
        seen = static_cast<int64_t>(static_cast<unsigned char>(*ctx.Ptr<char>(addr)));
        co_await ctx.Unlock(1);
      }
      co_await ctx.Barrier(0);
    });
    EXPECT_EQ(seen, 0x5a) << ProtocolName(kind);
  }
}

TEST(HlrcMechanism, HomeLocalAccessWaitsForRemoteDiff) {
  // The home itself acquires a lock whose protected data was just written by
  // a remote node: its own read must wait for the diff to land locally.
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 3);
  cfg.protocol.home_policy = HomePolicy::kSingleNode;  // Node 0 homes all.
  cfg.costs.diff_apply_per_byte = Nanos(500);          // Slow diffs.
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);

  int64_t home_saw = -1;
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 1) {
      co_await ctx.Lock(1);
      co_await ctx.Write(addr, 8);
      *ctx.Ptr<int64_t>(addr) = 987;
      co_await ctx.Unlock(1);
    } else if (ctx.id() == 0) {
      co_await ctx.Compute(Micros(10));
      co_await ctx.Lock(1);
      co_await ctx.Read(addr, 8);
      home_saw = *ctx.Ptr<int64_t>(addr);
      co_await ctx.Unlock(1);
    }
    co_await ctx.Barrier(0);
  });
  EXPECT_EQ(home_saw, 987);
}

TEST(HlrcMechanism, HomeReadsNeverFetch) {
  // The home never sends page requests for its own pages (paper §2.3).
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 2);
  cfg.protocol.home_policy = HomePolicy::kSingleNode;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(4096);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 3; ++r) {
      if (ctx.id() == 0) {  // The home itself produces the data.
        co_await ctx.Write(addr, 4096);
        std::memset(ctx.Ptr<char>(addr), r + 1, 4096);
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 4096);
      co_await ctx.Barrier(1);
    }
  });
  EXPECT_EQ(sys.report().nodes[0].proto.page_fetches, 0);  // Home: no fetches.
  EXPECT_GT(sys.report().nodes[1].proto.page_fetches, 0);  // Reader re-fetches.
}

TEST(OlrcMechanism, DiffRequestWaitsForCoprocessorCreation) {
  // Under OLRC a diff request can arrive while the co-processor is still
  // computing the diff; the request queues until it is ready (paper §2.4.1).
  SimConfig cfg = SmallConfig(ProtocolKind::kOlrc, 3);
  cfg.costs.diff_scan_per_byte = Micros(2);  // Very slow diffing.
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);

  int64_t seen = -1;
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 1) {
      co_await ctx.Lock(1);
      co_await ctx.Write(addr, 8);
      *ctx.Ptr<int64_t>(addr) = 31337;
      co_await ctx.Unlock(1);
    } else if (ctx.id() == 2) {
      co_await ctx.Compute(Micros(5));
      co_await ctx.Lock(1);
      co_await ctx.Read(addr, 8);
      seen = *ctx.Ptr<int64_t>(addr);
      co_await ctx.Unlock(1);
    }
    co_await ctx.Barrier(0);
  });
  EXPECT_EQ(seen, 31337);
}

TEST(HlrcMechanism, WriteNoticesAreCheapOnTheWire) {
  // Same workload: the homeless protocol ships full vector timestamps in
  // write notices, the home-based one does not (paper §4.6/4.7) — HLRC's
  // protocol byte count must be smaller per notice at scale.
  int64_t proto_bytes[2] = {0, 0};
  int64_t notices[2] = {0, 0};
  const ProtocolKind kinds[2] = {ProtocolKind::kLrc, ProtocolKind::kHlrc};
  for (int k = 0; k < 2; ++k) {
    SimConfig cfg = SmallConfig(kinds[k], 16);
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < 3; ++r) {
        const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * 2048;
        co_await ctx.Write(mine, 2048);
        std::memset(ctx.Ptr<char>(mine), r + 1, 2048);
        co_await ctx.Barrier(0);
      }
    });
    const NodeReport t = sys.report().Totals();
    proto_bytes[k] = t.traffic.protocol_bytes_sent;
    notices[k] = t.proto.write_notices_received;
  }
  ASSERT_GT(notices[0], 0);
  ASSERT_GT(notices[1], 0);
  EXPECT_GT(static_cast<double>(proto_bytes[0]) / static_cast<double>(notices[0]),
            static_cast<double>(proto_bytes[1]) / static_cast<double>(notices[1]));
}

}  // namespace
}  // namespace hlrc

// Protocol-level behavioral properties: the mechanisms behind the paper's
// Tables 4-6 (home effect, message-count asymmetries, garbage collection,
// memory profiles, overlap effects), checked on purpose-built miniature
// workloads.
#include <gtest/gtest.h>

#include <cstring>

#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

// Single producer writing pages homed at itself, many consumers.
void RunProducerConsumer(System& sys, GlobalAddr addr, int64_t bytes, int rounds) {
  sys.Run([&, rounds](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < rounds; ++r) {
      if (ctx.id() == 0) {
        co_await ctx.Write(addr, bytes);
        std::memset(ctx.Ptr<char>(addr), r + 1, static_cast<size_t>(bytes));
      }
      co_await ctx.Barrier(0);
      if (ctx.id() != 0) {
        co_await ctx.Read(addr, bytes);
      }
      co_await ctx.Barrier(1);
    }
  });
}

TEST(HomeEffect, WriterAtHomeCreatesNoDiffs) {
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 4);
  System sys(cfg);
  // One allocation: with block policy across 4 nodes, node 0 homes the first
  // quarter. Node 0 writes only its own quarter.
  const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
  RunProducerConsumer(sys, addr, 4 * 1024, 3);
  const NodeReport totals = sys.report().Totals();
  EXPECT_EQ(totals.proto.diffs_created, 0);
  EXPECT_EQ(totals.proto.diffs_applied, 0);
  EXPECT_GT(totals.proto.page_fetches, 0);
}

TEST(HomeEffect, RemoteHomeForcesDiffFlush) {
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 4);
  cfg.protocol.home_policy = HomePolicy::kSingleNode;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 1) {  // Writer != home (home is node 0).
      co_await ctx.Write(addr, 1024);
      std::memset(ctx.Ptr<char>(addr), 7, 1024);
    }
    co_await ctx.Barrier(0);
    co_await ctx.Read(addr, 1024);
  });
  const NodeReport totals = sys.report().Totals();
  EXPECT_GT(totals.proto.diffs_created, 0);
  EXPECT_EQ(totals.proto.diffs_created, totals.proto.diffs_applied);
  // One flush message per diff (paper §4.6).
  EXPECT_EQ(totals.traffic.msgs_by_type[static_cast<int>(MsgType::kDiffFlush)],
            totals.proto.diffs_created);
}

TEST(HomeEffect, HlrcMissIsOneRoundTrip) {
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 4);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
  RunProducerConsumer(sys, addr, 4 * 1024, 2);
  const NodeReport totals = sys.report().Totals();
  EXPECT_EQ(totals.traffic.msgs_by_type[static_cast<int>(MsgType::kPageRequest)],
            totals.proto.page_fetches);
  EXPECT_EQ(totals.traffic.msgs_by_type[static_cast<int>(MsgType::kPageReply)],
            totals.proto.page_fetches);
}

TEST(Homeless, ReaderVisitsEveryWriterOfAPage) {
  // Two nodes false-share one page; a third reads it: the LRC reader must
  // send one diff request per writer (paper §2.1).
  SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 3);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() < 2) {
      const GlobalAddr slot = addr + static_cast<GlobalAddr>(ctx.id()) * 8;
      co_await ctx.Write(slot, 8);
      *ctx.Ptr<int64_t>(slot) = ctx.id() + 1;
    }
    co_await ctx.Barrier(0);
    if (ctx.id() == 2) {
      co_await ctx.Read(addr, 16);
      EXPECT_EQ(ctx.Ptr<int64_t>(addr)[0], 1);
      EXPECT_EQ(ctx.Ptr<int64_t>(addr)[1], 2);
    }
  });
  const NodeReport& reader = sys.report().nodes[2];
  EXPECT_EQ(reader.proto.diff_requests_sent, 2);
  EXPECT_EQ(reader.proto.diffs_applied, 2);
}

TEST(Homeless, GcRunsUnderMemoryPressureAndNotForHlrc) {
  for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kHlrc}) {
    SimConfig cfg = SmallConfig(kind, 4);
    cfg.protocol.gc_threshold_bytes = 4 * 1024;  // Tiny: force GC quickly.
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(64 * 1024);
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < 4; ++r) {
        const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * 16 * 1024;
        co_await ctx.Write(mine, 16 * 1024);
        std::memset(ctx.Ptr<char>(mine), r + 1, 16 * 1024);
        co_await ctx.Barrier(0);
        const GlobalAddr theirs =
            addr + static_cast<GlobalAddr>((ctx.id() + 1) % 4) * 16 * 1024;
        co_await ctx.Read(theirs, 16 * 1024);
        co_await ctx.Barrier(1);
      }
    });
    const NodeReport totals = sys.report().Totals();
    if (kind == ProtocolKind::kLrc) {
      EXPECT_GT(totals.proto.gc_runs, 0);
    } else {
      EXPECT_EQ(totals.proto.gc_runs, 0);  // Paper §3.5: HLRC never collects.
    }
  }
}

TEST(Homeless, ProtocolMemoryExceedsHlrcMemory) {
  // Same workload; homeless high-water protocol memory should dominate the
  // home-based protocol's (paper Table 6).
  int64_t highwater[2] = {0, 0};
  const ProtocolKind kinds[2] = {ProtocolKind::kLrc, ProtocolKind::kHlrc};
  for (int k = 0; k < 2; ++k) {
    SimConfig cfg = SmallConfig(kinds[k], 8);
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(64 * 1024);
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < 6; ++r) {
        const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * 8 * 1024;
        co_await ctx.Write(mine, 8 * 1024);
        std::memset(ctx.Ptr<char>(mine), r + 1, 8 * 1024);
        co_await ctx.Barrier(0);
        const GlobalAddr theirs =
            addr + static_cast<GlobalAddr>((ctx.id() + 1) % 8) * 8 * 1024;
        co_await ctx.Read(theirs, 8 * 1024);
        co_await ctx.Barrier(1);
      }
    });
    for (const NodeReport& n : sys.report().nodes) {
      highwater[k] = std::max(highwater[k], n.proto_mem_highwater);
    }
  }
  EXPECT_GT(highwater[0], highwater[1]);
}

TEST(Locks, LocalReacquireCostsNothing) {
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 4);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(64);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 1) {
      for (int i = 0; i < 10; ++i) {
        // Lock 6's manager is node 2 (6 mod 4), so the first acquire is
        // remote; the token is then cached locally.
        co_await ctx.Lock(6);
        co_await ctx.Write(addr, 8);
        *ctx.Ptr<int64_t>(addr) += 1;
        co_await ctx.Unlock(6);
      }
    }
    co_await ctx.Barrier(0);
  });
  const NodeReport& n1 = sys.report().nodes[1];
  EXPECT_EQ(n1.proto.lock_acquires, 10);
  EXPECT_EQ(n1.proto.remote_acquires, 1);  // Only the first acquire talks.
}

TEST(Locks, GrantCarriesInvalidationsWithoutBarrier) {
  // Classic LRC visibility: updates propagate through the lock chain alone.
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, 2);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  int64_t seen = -1;
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      co_await ctx.Lock(1);
      co_await ctx.Write(addr, 8);
      *ctx.Ptr<int64_t>(addr) = 77;
      co_await ctx.Unlock(1);
    } else {
      // Spin on the lock until the write is visible.
      while (seen != 77) {
        co_await ctx.Lock(1);
        co_await ctx.Read(addr, 8);
        seen = *ctx.Ptr<int64_t>(addr);
        co_await ctx.Unlock(1);
        co_await ctx.Compute(Micros(100));
      }
    }
  });
  EXPECT_EQ(seen, 77);
}

TEST(Overlap, MovesServicingOffTheComputeProcessor) {
  // Same workload under HLRC and OHLRC: the overlapped variant must show
  // co-processor busy time and fewer compute-processor interrupts.
  SimTime interrupts[2] = {0, 0};
  SimTime cop_busy[2] = {0, 0};
  SimTime total[2] = {0, 0};
  const ProtocolKind kinds[2] = {ProtocolKind::kHlrc, ProtocolKind::kOhlrc};
  for (int k = 0; k < 2; ++k) {
    SimConfig cfg = SmallConfig(kinds[k], 4);
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(32 * 1024);
    RunProducerConsumer(sys, addr, 16 * 1024, 4);
    const NodeReport totals = sys.report().Totals();
    interrupts[k] = totals.cpu_busy.Get(BusyCat::kInterrupt);
    cop_busy[k] = totals.cop_busy.Total();
    total[k] = sys.report().total_time;
  }
  EXPECT_GT(interrupts[0], interrupts[1]);
  EXPECT_EQ(cop_busy[0], 0);
  EXPECT_GT(cop_busy[1], 0);
  EXPECT_LT(total[1], total[0]);  // Overlapping helps (paper Table 2).
}

TEST(Accounting, BreakdownCoversWallTime) {
  SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 4);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 3; ++r) {
      co_await ctx.Lock(1);
      co_await ctx.Write(addr, 1024);
      *ctx.Ptr<int64_t>(addr) += 1;
      co_await ctx.Unlock(1);
      co_await ctx.Compute(Millis(1));
      co_await ctx.Barrier(0);
    }
  });
  for (const NodeReport& n : sys.report().nodes) {
    const SimTime accounted = n.cpu_busy.Total() + n.waits.Total();
    // Every instant of a node's run is either compute-processor busy time or
    // attributed wait time (small slack for op entry bookkeeping).
    EXPECT_NEAR(static_cast<double>(accounted), static_cast<double>(n.finish_time),
                static_cast<double>(n.finish_time) * 0.02);
  }
}

TEST(Barriers, ReusedBarrierIdsAcrossEpisodes) {
  SimConfig cfg = SmallConfig(ProtocolKind::kOlrc, 6);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 10; ++r) {
      if (ctx.id() == r % 6) {
        co_await ctx.Write(addr, 8);
        *ctx.Ptr<int64_t>(addr) = r;
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 8);
      EXPECT_EQ(*ctx.Ptr<int64_t>(addr), r);
      co_await ctx.Barrier(0);
    }
  });
  EXPECT_EQ(sys.report().nodes[0].proto.barriers, 20);
}

}  // namespace
}  // namespace hlrc

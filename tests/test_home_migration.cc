// Home migration (extension): a page with a stable remote writer gets its
// home transferred to that writer, converting flush traffic into the home
// effect. Correctness must hold through transfers, forwarding, and
// path-shortened fetches.
#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/app.h"
#include "src/check/oracle.h"
#include "src/common/rng.h"
#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

int64_t Transfers(const System& sys) {
  int64_t n = 0;
  for (const NodeReport& r : sys.report().nodes) {
    n += r.traffic.msgs_by_type[static_cast<int>(MsgType::kHomeTransfer)];
  }
  return n;
}

SimConfig MigrConfig(int nodes, bool migrate) {
  SimConfig cfg = SmallConfig(ProtocolKind::kHlrc, nodes);
  cfg.protocol.home_policy = HomePolicy::kSingleNode;  // Writers never match.
  cfg.protocol.migrate_homes = migrate;
  cfg.protocol.migrate_threshold = 3;
  return cfg;
}

void RunSteadyWriter(System& sys, GlobalAddr addr, int rounds) {
  sys.Run([&, rounds](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < rounds; ++r) {
      if (ctx.id() == 1) {  // Stable writer, never the static home (node 0).
        co_await ctx.Write(addr, 2048);
        int64_t* data = ctx.Ptr<int64_t>(addr);
        for (int i = 0; i < 256; ++i) {
          data[i] = r * 1000 + i;
        }
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 2048);
      const int64_t* data = ctx.Ptr<int64_t>(addr);
      for (int i = 0; i < 256; i += 37) {
        EXPECT_EQ(data[i], r * 1000 + i) << "node " << ctx.id() << " round " << r;
      }
      co_await ctx.Barrier(1);
    }
  });
}

TEST(HomeMigration, TransfersHomeToStableWriterAndStopsDiffing) {
  int64_t diffs[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    SimConfig cfg = MigrConfig(4, m == 1);
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(2048);
    RunSteadyWriter(sys, addr, 10);
    diffs[m] = sys.report().Totals().proto.diffs_created;
    if (m == 1) {
      EXPECT_GE(Transfers(sys), 1);
    } else {
      EXPECT_EQ(Transfers(sys), 0);
    }
  }
  // Once migrated, the writer is home: diff creation stops after ~threshold
  // rounds instead of once per round.
  EXPECT_LT(diffs[1], diffs[0] / 2);
}

TEST(HomeMigration, MigrationImprovesSteadyProducerTime) {
  SimTime total[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    SimConfig cfg = MigrConfig(8, m == 1);
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
    RunSteadyWriter(sys, addr, 12);
    total[m] = sys.report().total_time;
  }
  EXPECT_LT(total[1], total[0]);
}

TEST(HomeMigration, AlternatingWritersDoNotThrash) {
  // Two writers alternating below the threshold: no transfer should happen,
  // and the data must stay exact.
  SimConfig cfg = MigrConfig(4, true);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 12; ++r) {
      if (ctx.id() == 1 + r % 2) {
        co_await ctx.Write(addr, 8);
        *ctx.Ptr<int64_t>(addr) = r;
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 8);
      EXPECT_EQ(*ctx.Ptr<int64_t>(addr), r) << "node " << ctx.id();
      co_await ctx.Barrier(1);
    }
  });
  EXPECT_EQ(Transfers(sys), 0);
}

TEST(HomeMigration, SuccessiveMigrationsFollowTheWriter) {
  // Writer 1 for a while, then writer 2: the home should migrate twice and
  // everything stays correct (forwarding chains, path shortening).
  SimConfig cfg = MigrConfig(4, true);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 16; ++r) {
      const NodeId writer = r < 8 ? 1 : 2;
      if (ctx.id() == writer) {
        co_await ctx.Write(addr, 512);
        int64_t* data = ctx.Ptr<int64_t>(addr);
        for (int i = 0; i < 64; ++i) {
          data[i] = r * 100 + i;
        }
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 512);
      const int64_t* data = ctx.Ptr<int64_t>(addr);
      for (int i = 0; i < 64; i += 13) {
        EXPECT_EQ(data[i], r * 100 + i) << "node " << ctx.id() << " round " << r;
      }
      co_await ctx.Barrier(1);
    }
  });
  EXPECT_GE(Transfers(sys), 2);
}

TEST(HomeMigration, AppsVerifyWithMigrationAndAdverseHomes) {
  // Worst-case static placement + migration: results must stay exact and
  // migration should recover some of the home effect.
  for (const std::string& name : {std::string("sor"), std::string("water-nsq")}) {
    auto app = MakeApp(name, AppScale::kTiny);
    SimConfig cfg = MigrConfig(8, true);
    cfg.shared_bytes = 16ll << 20;
    const AppRunResult r = RunApp(*app, cfg);
    EXPECT_TRUE(r.verified) << name << ": " << r.why;
  }
}

TEST(HomeMigration, FuzzWithMigrationEnabled) {
  // The integer consistency fuzz pattern under adverse homes + migration.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 31);
    const int nodes = static_cast<int>(rng.NextInt(2, 8));
    SimConfig cfg = MigrConfig(nodes, true);
    System sys(cfg);
    const int slots = 256;
    const GlobalAddr arr = sys.space().AllocPageAligned(slots * 8);
    std::vector<int64_t> model(slots, 0);
    std::vector<std::vector<std::pair<int, int64_t>>> plan(static_cast<size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      Rng prng(seed * 977 + static_cast<uint64_t>(n));
      for (int o = 0; o < 8; ++o) {
        const int slot = static_cast<int>(prng.NextBounded(slots));
        const int64_t delta = prng.NextInt(1, 99);
        plan[static_cast<size_t>(n)].emplace_back(slot, delta);
        model[static_cast<size_t>(slot)] += delta;
      }
    }
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (const auto& [slot, delta] : plan[static_cast<size_t>(ctx.id())]) {
        co_await ctx.Lock(1);
        co_await ctx.Write(arr, slots * 8);
        ctx.Ptr<int64_t>(arr)[slot] += delta;
        co_await ctx.Unlock(1);
        co_await ctx.Compute(Micros(40));
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(arr, slots * 8);
    });
    for (int n = 0; n < nodes; ++n) {
      const int64_t* data = reinterpret_cast<const int64_t*>(sys.NodeMemory(n, arr));
      for (int sidx = 0; sidx < slots; ++sidx) {
        ASSERT_EQ(data[sidx], model[static_cast<size_t>(sidx)])
            << "seed " << seed << " node " << n << " slot " << sidx;
      }
    }
  }
}


TEST(HomeMigration, SorAtScaleWithAdverseHomes) {
  // Regression for two migration hazards found at 32 nodes: transferring a
  // page whose (old) home holds it dirty in its open interval, and migrating
  // while a local fault waits on in-flight diffs.
  auto app = MakeApp("sor", AppScale::kTiny);
  SimConfig cfg = MigrConfig(32, true);
  cfg.shared_bytes = 16ll << 20;
  const AppRunResult r = RunApp(*app, cfg);
  EXPECT_TRUE(r.verified) << r.why;
}

TEST(HomeMigration, MixedWritersOnOnePageStayExact) {
  // Two writers false-sharing one page under migration pressure: streaks
  // reset on writer changes, transfers may or may not fire depending on
  // interleaving, and the data must stay exact either way (double-install
  // or stale-forwarded-reply bugs would corrupt it).
  SimConfig cfg = MigrConfig(6, true);
  cfg.protocol.migrate_threshold = 2;
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 10; ++r) {
      // Node 1 writes half the page steadily (earning the migration), while
      // node 2 writes the other half (false sharing keeps fetches flying).
      if (ctx.id() == 1) {
        co_await ctx.Lock(1);
        co_await ctx.Write(addr, 256);
        for (int i = 0; i < 32; ++i) {
          ctx.Ptr<int64_t>(addr)[i] = r * 100 + i;
        }
        co_await ctx.Unlock(1);
      } else if (ctx.id() == 2) {
        co_await ctx.Lock(2);
        co_await ctx.Write(addr + 512, 256);
        for (int i = 0; i < 32; ++i) {
          ctx.Ptr<int64_t>(addr + 512)[i] = r * 1000 + i;
        }
        co_await ctx.Unlock(2);
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 1024);
      const int64_t* lo = ctx.Ptr<int64_t>(addr);
      const int64_t* hi = ctx.Ptr<int64_t>(addr + 512);
      for (int i = 0; i < 32; i += 7) {
        EXPECT_EQ(lo[i], r * 100 + i) << "node " << ctx.id() << " round " << r;
        EXPECT_EQ(hi[i], r * 1000 + i) << "node " << ctx.id() << " round " << r;
      }
      co_await ctx.Barrier(1);
    }
  });
  EXPECT_GE(Transfers(sys), 0);  // Data exactness above is the real check.
}

// Migration composed with a lossy, delaying fabric, validated by the LRC
// oracle on every observed word access: a home transfer racing a retransmit
// (stale forwarded reply, double-install) would surface as a masked read.
// StoreWord gives every write a location-unique value so the oracle
// identifies the originating write exactly.
void RunMigratingWriterUnderFaults(ProtocolKind proto, uint64_t seed) {
  SimConfig cfg = MigrConfig(4, true);
  cfg.protocol.kind = proto;
  cfg.fault.drop_prob = 0.03;
  cfg.fault.delay_prob = 0.10;
  cfg.fault.seed = seed * 7919 + 1;
  cfg.reliability.enabled = true;
  System sys(cfg);
  LrcOracle oracle(cfg.nodes);
  sys.SetAccessObserver(&oracle);
  const int slots = 16;
  const GlobalAddr addr = sys.space().AllocPageAligned(slots * 8);
  const int rounds = 8;
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < rounds; ++r) {
      if (ctx.id() == 1) {  // Stable writer, never the static home (node 0).
        for (int i = 0; i < slots; ++i) {
          co_await ctx.StoreWord(addr + i * 8,
                                 static_cast<uint64_t>(r * 1000 + i + 1));
        }
      }
      co_await ctx.Barrier(0);
      for (int i = 0; i < slots; i += 5) {
        const uint64_t v = co_await ctx.LoadWord(addr + i * 8);
        EXPECT_EQ(v, static_cast<uint64_t>(r * 1000 + i + 1))
            << ProtocolName(proto) << " node " << ctx.id() << " round " << r;
      }
      co_await ctx.Barrier(1);
    }
  });
  EXPECT_TRUE(oracle.ok()) << ProtocolName(proto) << " seed " << seed << ": "
                           << (oracle.ok() ? ""
                                           : oracle.violations().front().description);
  EXPECT_GT(oracle.reads_checked(), 0);
  EXPECT_GE(Transfers(sys), 1) << ProtocolName(proto) << " seed " << seed;
}

TEST(HomeMigration, FaultInjectedMigrationIsOracleCleanHlrc) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunMigratingWriterUnderFaults(ProtocolKind::kHlrc, seed);
  }
}

TEST(HomeMigration, FaultInjectedMigrationIsOracleCleanAurc) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunMigratingWriterUnderFaults(ProtocolKind::kAurc, seed);
  }
}

TEST(HomeMigration, MetricsObservationIsBitIdentical) {
  // Golden pin: metrics are pure observation, so a migrating run with the
  // sampler attached must produce the exact report of the same run without
  // it — total time, per-node finish times, traffic and transfer counts.
  RunReport reports[2];
  for (int m = 0; m < 2; ++m) {
    SimConfig cfg = MigrConfig(4, true);
    System sys(cfg);
    if (m == 1) {
      sys.EnableMetrics(Micros(500));
    }
    const GlobalAddr addr = sys.space().AllocPageAligned(2048);
    RunSteadyWriter(sys, addr, 10);
    reports[m] = sys.report();
  }
  EXPECT_EQ(reports[0].total_time, reports[1].total_time);
  ASSERT_EQ(reports[0].nodes.size(), reports[1].nodes.size());
  for (size_t n = 0; n < reports[0].nodes.size(); ++n) {
    const NodeReport& a = reports[0].nodes[n];
    const NodeReport& b = reports[1].nodes[n];
    EXPECT_EQ(a.finish_time, b.finish_time) << "node " << n;
    EXPECT_EQ(a.traffic.msgs_sent, b.traffic.msgs_sent) << "node " << n;
    EXPECT_EQ(a.proto.diffs_created, b.proto.diffs_created) << "node " << n;
    EXPECT_EQ(a.traffic.msgs_by_type[static_cast<int>(MsgType::kHomeTransfer)],
              b.traffic.msgs_by_type[static_cast<int>(MsgType::kHomeTransfer)])
        << "node " << n;
  }
}

}  // namespace
}  // namespace hlrc

// Regression tests for invalidation races found during development.
//
// The barrier manager applies other nodes' write notices the moment their
// enter messages arrive — including while its own application is inside a
// page-fault resolution whose cost charges are stretched by interrupt load.
// A fault that completes after such an invalidation must re-resolve, or the
// node writes on a stale base (lost update). A huge receive-interrupt cost
// amplifies the window.
#include <gtest/gtest.h>

#include <cstring>

#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

class InvalidationRaceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(InvalidationRaceTest, BusyManagerLockChainAccumulation) {
  // All nodes add into one lock-protected region whose page is repeatedly
  // invalidated; node 0 (the barrier manager) is last in the chain while
  // already swamped by other nodes' barrier-enter interrupts.
  constexpr int kNodes = 16;
  constexpr int kRounds = 3;
  SimConfig cfg = testing::SmallConfig(GetParam(), kNodes, 1 << 20, 1024);
  cfg.costs.receive_interrupt = Millis(2);  // Stretch every service window.
  System sys(cfg);
  const GlobalAddr arr = sys.space().AllocPageAligned(kNodes * 8);

  sys.Run([&](NodeContext& ctx) -> Task<void> {
    const int me = ctx.id();
    if (me == 0) {
      co_await ctx.Write(arr, kNodes * 8);
      std::memset(ctx.Ptr<int64_t>(arr), 0, kNodes * 8);
    }
    co_await ctx.Barrier(0);
    for (int r = 0; r < kRounds; ++r) {
      // Node 0 computes longest so it reaches the lock chain last, while
      // early finishers pile barrier enters onto it.
      co_await ctx.Compute(Micros(100) * (me == 0 ? 50 : me));
      co_await ctx.Lock(1);
      co_await ctx.Write(arr, kNodes * 8);
      int64_t* data = ctx.Ptr<int64_t>(arr);
      for (int s = 0; s < kNodes; ++s) {
        data[s] += me + 1 + s;
      }
      co_await ctx.Unlock(1);
      co_await ctx.Barrier(1);
      co_await ctx.Read(arr, kNodes * 8);
      co_await ctx.Barrier(2);
    }
  });

  int64_t base = 0;
  for (int n = 0; n < kNodes; ++n) {
    base += n + 1;
  }
  for (int node = 0; node < kNodes; ++node) {
    const int64_t* data = reinterpret_cast<const int64_t*>(sys.NodeMemory(node, arr));
    for (int s = 0; s < kNodes; ++s) {
      EXPECT_EQ(data[s], kRounds * (base + static_cast<int64_t>(kNodes) * s))
          << "node " << node << " slot " << s;
    }
  }
}

TEST_P(InvalidationRaceTest, WriteGrantSurvivesIntervalCloseDuringFault) {
  // A multi-page write grant where resolving the second page can overlap a
  // remote lock request that closes the interval and re-protects the first
  // page — the grant must re-upgrade it before the stores happen.
  constexpr int kNodes = 8;
  SimConfig cfg = testing::SmallConfig(GetParam(), kNodes, 1 << 20, 1024);
  System sys(cfg);
  const GlobalAddr arr = sys.space().AllocPageAligned(8 * 1024);

  sys.Run([&](NodeContext& ctx) -> Task<void> {
    const int me = ctx.id();
    for (int r = 0; r < 4; ++r) {
      co_await ctx.Lock(me % 4);  // Contended locks force forwards mid-fault.
      co_await ctx.Write(arr + static_cast<GlobalAddr>((me % 4) * 2048), 2048);
      int64_t* data = ctx.Ptr<int64_t>(arr + static_cast<GlobalAddr>((me % 4) * 2048));
      data[0] += 1;
      data[200] += 1;  // Second page of the grant.
      co_await ctx.Unlock(me % 4);
      co_await ctx.Compute(Micros(30));
    }
    co_await ctx.Barrier(0);
    co_await ctx.Read(arr, 8 * 1024);
  });

  for (int node = 0; node < kNodes; ++node) {
    for (int region = 0; region < 4; ++region) {
      const int64_t* data = reinterpret_cast<const int64_t*>(
          sys.NodeMemory(node, arr + static_cast<GlobalAddr>(region * 2048)));
      EXPECT_EQ(data[0], 8) << "node " << node << " region " << region;
      EXPECT_EQ(data[200], 8) << "node " << node << " region " << region;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, InvalidationRaceTest,
                         ::testing::ValuesIn(testing::AllProtocols()),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return ProtocolName(info.param);
                         });

}  // namespace
}  // namespace hlrc

// The calibrated cost model must reproduce the paper's §4.3 derived numbers
// (DESIGN.md §6): these tests pin the calibration so a parameter change that
// breaks the Table 3 reconstruction fails loudly.
#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/proto/cost_model.h"

namespace hlrc {
namespace {

constexpr int64_t kPage = 8192;  // Paragon OS page.

TEST(CostModel, PageTransferMatchesTable3) {
  const NetworkConfig net;
  // ~353 us for an 8 KB page.
  EXPECT_NEAR(ToMicros(kPage * net.per_byte), 353.0, 4.0);
}

TEST(CostModel, NonOverlappedPageMissIs1172us) {
  const CostModel c;
  const NetworkConfig net;
  const double us = ToMicros(c.page_fault + net.base_latency + c.receive_interrupt +
                             kPage * net.per_byte + net.base_latency);
  EXPECT_NEAR(us, 1172.0, 5.0);
}

TEST(CostModel, OverlappedPageMissIs482us) {
  const CostModel c;
  const NetworkConfig net;
  const double us =
      ToMicros(c.page_fault + net.base_latency + kPage * net.per_byte + net.base_latency);
  EXPECT_NEAR(us, 482.0, 5.0);
}

TEST(CostModel, RemoteAcquireIs1530us) {
  const CostModel c;
  const NetworkConfig net;
  // Request -> manager (interrupt) -> forward -> holder (interrupt) -> grant.
  const double us = ToMicros(3 * net.base_latency + 2 * c.receive_interrupt);
  EXPECT_NEAR(us, 1530.0, 30.0);  // Paper: ~1550.
}

TEST(CostModel, DiffCreationRangeMatchesTable3) {
  const CostModel c;
  // 120 us floor (scan) to ~310 us fully dirty for an 8 KB page.
  EXPECT_NEAR(ToMicros(c.DiffCreateCost(kPage, 0)), 120.0, 5.0);
  EXPECT_NEAR(ToMicros(c.DiffCreateCost(kPage, kPage)), 310.0, 10.0);
}

TEST(CostModel, DiffApplicationUpTo430us) {
  const CostModel c;
  EXPECT_NEAR(ToMicros(c.DiffApplyCost(kPage)), 430.0, 10.0);
  EXPECT_LT(ToMicros(c.DiffApplyCost(0)), 5.0);
}

TEST(CostModel, TwinCopyIs120us) {
  const CostModel c;
  EXPECT_NEAR(ToMicros(c.TwinCost(kPage)), 120.0, 5.0);
}

TEST(CostModel, SmallConstantsAsPrinted) {
  const CostModel c;
  EXPECT_EQ(c.page_fault, Micros(29));
  EXPECT_EQ(c.page_invalidate, Micros(2));
  EXPECT_EQ(c.page_protect, Micros(5));
}

TEST(CostModel, CostsScaleWithPageSize) {
  const CostModel c;
  EXPECT_EQ(c.TwinCost(4096) * 2, c.TwinCost(8192));
  EXPECT_LT(c.DiffCreateCost(4096, 100), c.DiffCreateCost(8192, 100));
}

TEST(CostModel, FlopCalibration) {
  const CostModel c;
  EXPECT_EQ(c.FlopCost(10), 10 * c.ns_per_flop);
}

}  // namespace
}  // namespace hlrc

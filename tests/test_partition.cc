#include "src/svm/partition.h"

#include <gtest/gtest.h>

namespace hlrc {
namespace {

TEST(Partition, EvenSplit) {
  const Band b = BandOf(100, 4, 1);
  EXPECT_EQ(b.first, 25);
  EXPECT_EQ(b.last, 49);
  EXPECT_EQ(b.size(), 25);
}

TEST(Partition, UnevenSplitFrontLoadsExtras) {
  // 10 items over 4 parts: sizes 3,3,2,2.
  EXPECT_EQ(BandOf(10, 4, 0).size(), 3);
  EXPECT_EQ(BandOf(10, 4, 1).size(), 3);
  EXPECT_EQ(BandOf(10, 4, 2).size(), 2);
  EXPECT_EQ(BandOf(10, 4, 3).size(), 2);
}

TEST(Partition, BandsTileTheRangeExactly) {
  for (int items : {1, 7, 64, 1000}) {
    for (int parts : {1, 3, 8, 64}) {
      int next = 0;
      for (int p = 0; p < parts; ++p) {
        const Band b = BandOf(items, parts, p);
        if (b.empty()) {
          continue;
        }
        EXPECT_EQ(b.first, next) << items << "/" << parts << " part " << p;
        next = b.last + 1;
      }
      EXPECT_EQ(next, items) << items << "/" << parts;
    }
  }
}

TEST(Partition, MoreNodesThanItemsYieldsEmptyBands) {
  int non_empty = 0;
  for (int p = 0; p < 8; ++p) {
    if (!BandOf(3, 8, p).empty()) {
      ++non_empty;
    }
  }
  EXPECT_EQ(non_empty, 3);
}

TEST(Partition, BandOwnerInvertsBandOf) {
  for (int items : {5, 17, 64, 129}) {
    for (int parts : {1, 2, 7, 16}) {
      for (int i = 0; i < items; ++i) {
        const int owner = BandOwner(items, parts, i);
        EXPECT_TRUE(BandOf(items, parts, owner).Contains(i))
            << items << "/" << parts << " item " << i;
      }
    }
  }
}

TEST(Partition, ContiguousOwnerIsMonotoneAndBalanced) {
  constexpr int kTotal = 256;
  constexpr int kNodes = 12;
  int counts[kNodes] = {};
  NodeId prev = 0;
  for (int i = 0; i < kTotal; ++i) {
    const NodeId owner = ContiguousOwner(i, kTotal, kNodes);
    EXPECT_GE(owner, prev);
    EXPECT_LT(owner, kNodes);
    ++counts[owner];
    prev = owner;
  }
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_NEAR(counts[n], kTotal / kNodes, 1.0);
  }
}

TEST(Partition, ContainsBoundaries) {
  const Band b = BandOf(64, 8, 3);
  EXPECT_TRUE(b.Contains(b.first));
  EXPECT_TRUE(b.Contains(b.last));
  EXPECT_FALSE(b.Contains(b.first - 1));
  EXPECT_FALSE(b.Contains(b.last + 1));
}

}  // namespace
}  // namespace hlrc

#include "src/sim/task.h"

#include <gtest/gtest.h>

#include "src/sim/completion.h"
#include "src/sim/engine.h"

namespace hlrc {
namespace {

Task<int> ReturnValue(int v) { co_return v; }

Task<int> AddNested(int a, int b) {
  const int x = co_await ReturnValue(a);
  const int y = co_await ReturnValue(b);
  co_return x + y;
}

TEST(Task, ReturnsValueThroughNestedAwaits) {
  int result = 0;
  SpawnDetached([](int* out) -> Task<void> { *out = co_await AddNested(2, 3); }(&result));
  EXPECT_EQ(result, 5);
}

TEST(Task, SpawnDetachedRunsOnDone) {
  bool done = false;
  SpawnDetached([]() -> Task<void> { co_return; }(), [&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(Task, SleepSuspendsUntilEngineAdvances) {
  Engine e;
  SimTime woke_at = -1;
  SpawnDetached([](Engine* eng, SimTime* t) -> Task<void> {
    co_await SleepFor(eng, Micros(42));
    *t = eng->Now();
  }(&e, &woke_at));
  EXPECT_EQ(woke_at, -1);  // Still suspended.
  e.Run();
  EXPECT_EQ(woke_at, Micros(42));
}

TEST(Completion, AwaitAfterCompleteDoesNotSuspend) {
  Engine e;
  Completion c(&e);
  c.Complete();
  bool resumed = false;
  SpawnDetached([](Completion* comp, bool* r) -> Task<void> {
    co_await *comp;
    *r = true;
  }(&c, &resumed));
  EXPECT_TRUE(resumed);  // No engine events needed.
}

TEST(Completion, CompleteResumesWaiterThroughEngine) {
  Engine e;
  Completion c(&e);
  bool resumed = false;
  SpawnDetached([](Completion* comp, bool* r) -> Task<void> {
    co_await *comp;
    *r = true;
  }(&c, &resumed));
  EXPECT_FALSE(resumed);
  c.Complete();
  EXPECT_FALSE(resumed);  // Resumption goes through an engine event.
  e.Run();
  EXPECT_TRUE(resumed);
}

TEST(Completion, ResetAllowsReuse) {
  Engine e;
  Completion c(&e);
  c.Complete();
  EXPECT_TRUE(c.IsDone());
  c.Reset();
  EXPECT_FALSE(c.IsDone());
  c.Complete();
  EXPECT_TRUE(c.IsDone());
}

TEST(Task, ChainsOfSleepsAccumulateTime) {
  Engine e;
  SimTime end = -1;
  SpawnDetached([](Engine* eng, SimTime* t) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await SleepFor(eng, Micros(10));
    }
    *t = eng->Now();
  }(&e, &end));
  e.Run();
  EXPECT_EQ(end, Micros(100));
}

TEST(Task, TwoCoroutinesInterleaveDeterministically) {
  Engine e;
  std::vector<int> order;
  auto worker = [](Engine* eng, std::vector<int>* ord, int id, SimTime step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await SleepFor(eng, step);
      ord->push_back(id);
    }
  };
  SpawnDetached(worker(&e, &order, 1, Micros(10)));
  SpawnDetached(worker(&e, &order, 2, Micros(15)));
  e.Run();
  // w1 wakes at 10,20,30; w2 at 15,30,45. At t=30, w2's event was scheduled
  // earlier (at t=15) so it runs first.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

}  // namespace
}  // namespace hlrc

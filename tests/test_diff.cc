#include "src/mem/diff.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"

namespace hlrc {
namespace {

constexpr int64_t kPage = 1024;

std::vector<std::byte> MakePage(uint8_t fill) {
  return std::vector<std::byte>(kPage, std::byte{fill});
}

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  auto twin = MakePage(0xAA);
  auto cur = twin;
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  EXPECT_TRUE(d.Empty());
  EXPECT_EQ(d.DataBytes(), 0);
}

TEST(Diff, SingleWordChange) {
  auto twin = MakePage(0);
  auto cur = twin;
  cur[128] = std::byte{0xFF};
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 128u);
  EXPECT_EQ(d.runs[0].length, 8u);  // Word granularity.
  EXPECT_EQ(d.DataBytes(), 8);
}

TEST(Diff, FourByteGranularity) {
  auto twin = MakePage(0);
  auto cur = twin;
  cur[128] = std::byte{0xFF};
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 4);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].length, 4u);
}

TEST(Diff, AdjacentWordsCoalesceIntoOneRun) {
  auto twin = MakePage(0);
  auto cur = twin;
  for (int i = 64; i < 96; ++i) {
    cur[static_cast<size_t>(i)] = std::byte{1};
  }
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 64u);
  EXPECT_EQ(d.runs[0].length, 32u);
}

TEST(Diff, DisjointChangesProduceMultipleRuns) {
  auto twin = MakePage(0);
  auto cur = twin;
  cur[0] = std::byte{1};
  cur[512] = std::byte{2};
  cur[kPage - 1] = std::byte{3};
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  EXPECT_EQ(d.runs.size(), 3u);
}

TEST(Diff, FullyDirtyPageIsOneRun) {
  auto twin = MakePage(0);
  auto cur = MakePage(0xEE);
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.DataBytes(), kPage);
}

TEST(Diff, ApplyReconstructsPage) {
  Rng rng(7);
  auto twin = MakePage(0);
  auto cur = twin;
  for (int i = 0; i < 100; ++i) {
    cur[rng.NextBounded(kPage)] = std::byte{static_cast<uint8_t>(rng.NextU64())};
  }
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  auto target = twin;
  ApplyDiff(d, target.data(), kPage);
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), kPage), 0);
}

TEST(Diff, ApplyIsIdempotent) {
  auto twin = MakePage(0);
  auto cur = twin;
  cur[100] = std::byte{9};
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  auto target = twin;
  ApplyDiff(d, target.data(), kPage);
  ApplyDiff(d, target.data(), kPage);
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), kPage), 0);
}

TEST(Diff, DisjointDiffsCommute) {
  auto base = MakePage(0);
  auto a = base;
  auto b = base;
  a[8] = std::byte{1};
  b[808] = std::byte{2};
  const Diff da = CreateDiff(1, base.data(), a.data(), kPage, 8);
  const Diff db = CreateDiff(1, base.data(), b.data(), kPage, 8);

  auto t1 = base;
  ApplyDiff(da, t1.data(), kPage);
  ApplyDiff(db, t1.data(), kPage);
  auto t2 = base;
  ApplyDiff(db, t2.data(), kPage);
  ApplyDiff(da, t2.data(), kPage);
  EXPECT_EQ(std::memcmp(t1.data(), t2.data(), kPage), 0);
  EXPECT_EQ(t1[8], std::byte{1});
  EXPECT_EQ(t1[808], std::byte{2});
}

TEST(Diff, EncodedSizeAccountsRunsAndPayload) {
  auto twin = MakePage(0);
  auto cur = twin;
  cur[0] = std::byte{1};
  cur[512] = std::byte{2};
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, 8);
  EXPECT_EQ(d.EncodedSize(), Diff::kHeaderBytes + 2 * Diff::kRunHeaderBytes + 16);
}

// Property: random twin/current pairs round-trip exactly through create/apply.
class DiffFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffFuzzTest, RoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int word = rng.NextBool() ? 4 : 8;
  std::vector<std::byte> twin(kPage);
  for (auto& b : twin) {
    b = std::byte{static_cast<uint8_t>(rng.NextU64())};
  }
  auto cur = twin;
  const int changes = static_cast<int>(rng.NextBounded(200));
  for (int i = 0; i < changes; ++i) {
    cur[rng.NextBounded(kPage)] = std::byte{static_cast<uint8_t>(rng.NextU64())};
  }
  const Diff d = CreateDiff(1, twin.data(), cur.data(), kPage, word);
  auto target = twin;
  ApplyDiff(d, target.data(), kPage);
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), kPage), 0);

  // Runs are within bounds, non-empty and word aligned.
  for (const DiffRun& r : d.runs) {
    EXPECT_LT(r.offset, kPage);
    EXPECT_GT(r.length, 0u);
    EXPECT_EQ(r.offset % static_cast<uint32_t>(word), 0u);
    EXPECT_EQ(r.length % static_cast<uint32_t>(word), 0u);
    EXPECT_LE(static_cast<size_t>(r.data_offset) + r.length, d.data.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffFuzzTest, ::testing::Range(0, 32));

}  // namespace
}  // namespace hlrc

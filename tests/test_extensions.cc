// Behaviour of the protocol extensions: ERC (eager update broadcast) and
// AURC (simulated automatic-update hardware), plus the lazy diff policy.
#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/app.h"
#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::SmallConfig;

void RunProducerConsumers(System& sys, GlobalAddr addr, int64_t bytes, int rounds) {
  sys.Run([&, rounds](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < rounds; ++r) {
      if (ctx.id() == 0) {
        co_await ctx.Write(addr, bytes);
        std::memset(ctx.Ptr<char>(addr), r + 1, static_cast<size_t>(bytes));
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, bytes);
      co_await ctx.Barrier(1);
    }
  });
}

TEST(Erc, ReadersNeverFault) {
  SimConfig cfg = SmallConfig(ProtocolKind::kErc, 4);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
  RunProducerConsumers(sys, addr, 8 * 1024, 3);
  const NodeReport totals = sys.report().Totals();
  // Pages are always valid under an update protocol: no misses, no fetches.
  EXPECT_EQ(totals.proto.read_misses, 0);
  EXPECT_EQ(totals.proto.page_fetches, 0);
  EXPECT_EQ(totals.proto.write_notices_received, 0);
}

TEST(Erc, BroadcastsOneUpdatePerReceiverPerDiff) {
  constexpr int kNodes = 6;
  SimConfig cfg = SmallConfig(ProtocolKind::kErc, kNodes);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  RunProducerConsumers(sys, addr, 1024, 2);
  const NodeReport totals = sys.report().Totals();
  // Every created diff is applied nodes-1 times (one per receiver).
  EXPECT_EQ(totals.proto.diffs_applied, totals.proto.diffs_created * (kNodes - 1));
}

TEST(Erc, GrantWaitsForOutstandingFlushes) {
  // Regression for the flush-barrier race: the lock chain must always expose
  // the previous holder's writes even when the grant is produced by an
  // idle-holder forward while an earlier interval's flush is in flight.
  SimConfig cfg = SmallConfig(ProtocolKind::kErc, 4);
  cfg.costs.receive_interrupt = Millis(1);  // Stretch service windows.
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 5; ++r) {
      co_await ctx.Lock(2);
      co_await ctx.Write(addr, 8);
      *ctx.Ptr<int64_t>(addr) += 1;
      co_await ctx.Unlock(2);
      // Touch an unrelated page so the next acquire closes a fresh interval.
      co_await ctx.Write(addr + 512, 8);
      *ctx.Ptr<int64_t>(addr + 512) = ctx.id();
      co_await ctx.Compute(Micros(100));
    }
    co_await ctx.Barrier(0);
  });
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(*reinterpret_cast<int64_t*>(sys.NodeMemory(n, addr)), 20) << "node " << n;
  }
}

TEST(Aurc, NoDiffOperationsAndNoTwinCost) {
  SimConfig cfg = SmallConfig(ProtocolKind::kAurc, 4);
  cfg.protocol.home_policy = HomePolicy::kSingleNode;  // Writers are not homes.
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < 3; ++r) {
      if (ctx.id() == 1) {
        co_await ctx.Write(addr, 4096);
        std::memset(ctx.Ptr<char>(addr), r + 1, 4096);
      }
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, 4096);
      co_await ctx.Barrier(1);
    }
  });
  const NodeReport totals = sys.report().Totals();
  EXPECT_EQ(totals.proto.diffs_created, 0);  // Paper §2.2: AURC uses no diffs.
  EXPECT_EQ(totals.cpu_busy.Get(BusyCat::kTwin), 0);        // Hardware capture.
  EXPECT_EQ(totals.cpu_busy.Get(BusyCat::kDiffCreate), 0);  // Zero software cost.
  EXPECT_GT(totals.proto.page_fetches, 0);  // Misses still fetch whole pages.
}

TEST(Aurc, WriteThroughTrafficExceedsHlrc) {
  int64_t update_bytes[2] = {0, 0};
  SimTime total[2] = {0, 0};
  const ProtocolKind kinds[2] = {ProtocolKind::kHlrc, ProtocolKind::kAurc};
  for (int k = 0; k < 2; ++k) {
    SimConfig cfg = SmallConfig(kinds[k], 4);
    cfg.protocol.home_policy = HomePolicy::kSingleNode;
    System sys(cfg);
    const GlobalAddr addr = sys.space().AllocPageAligned(8 * 1024);
    sys.Run([&](NodeContext& ctx) -> Task<void> {
      for (int r = 0; r < 3; ++r) {
        if (ctx.id() == 1) {
          co_await ctx.Write(addr, 4096);
          std::memset(ctx.Ptr<char>(addr), r + 1, 4096);
        }
        co_await ctx.Barrier(0);
        co_await ctx.Read(addr, 4096);
        co_await ctx.Barrier(1);
      }
    });
    update_bytes[k] = sys.report().Totals().traffic.update_bytes_sent;
    total[k] = sys.report().total_time;
  }
  // The paper's §2.3 tradeoff: AURC trades bandwidth (write-through
  // amplification) for zero software update-detection overhead.
  EXPECT_GT(update_bytes[1], update_bytes[0]);
  EXPECT_LT(total[1], total[0]);
}

TEST(LazyDiffs, SameResultsFewerCreationsCharged) {
  // SOR-like: many diffs created eagerly are never fetched (only boundary
  // pages are read). Lazy diffing defers — and mostly avoids — that work.
  SimTime create_time[2] = {0, 0};
  const DiffPolicy policies[2] = {DiffPolicy::kEager, DiffPolicy::kLazy};
  for (int k = 0; k < 2; ++k) {
    auto app = MakeApp("sor", AppScale::kTiny);
    SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 8, 16ll << 20, 1024);
    cfg.protocol.diff_policy = policies[k];
    const AppRunResult r = RunApp(*app, cfg);
    ASSERT_TRUE(r.verified) << DiffPolicyName(policies[k]) << ": " << r.why;
    create_time[k] = r.report.Totals().cpu_busy.Get(BusyCat::kDiffCreate);
  }
  EXPECT_LT(create_time[1], create_time[0] / 2);
}

TEST(LazyDiffs, MigratoryWorkloadsVerifyUnderLazyPolicy) {
  for (const std::string& name : {std::string("water-nsq"), std::string("lu")}) {
    auto app = MakeApp(name, AppScale::kTiny);
    SimConfig cfg = SmallConfig(ProtocolKind::kLrc, 8, 16ll << 20, 1024);
    cfg.protocol.diff_policy = DiffPolicy::kLazy;
    cfg.protocol.gc_threshold_bytes = 32 << 10;  // Exercise GC with lazy diffs.
    const AppRunResult r = RunApp(*app, cfg);
    EXPECT_TRUE(r.verified) << name << ": " << r.why;
  }
}

TEST(Extensions, AppsVerifyUnderErcAndAurc) {
  for (ProtocolKind kind : {ProtocolKind::kErc, ProtocolKind::kAurc}) {
    for (const std::string& name : AppNames()) {
      auto app = MakeApp(name, AppScale::kTiny);
      SimConfig cfg = SmallConfig(kind, 8, 16ll << 20, 1024);
      const AppRunResult r = RunApp(*app, cfg);
      EXPECT_TRUE(r.verified) << name << " " << ProtocolName(kind) << ": " << r.why;
    }
  }
}

}  // namespace
}  // namespace hlrc

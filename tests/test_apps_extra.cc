// Additional application-level behaviour: odd node counts, 64-node runs (the
// regime that exposed the invalidation races), the §4.8 zero-interior diff
// suppression, and registry sanity.
#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/apps/sor.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

SimConfig AppConfig(ProtocolKind kind, int nodes) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.page_size = 1024;
  cfg.shared_bytes = 16ll << 20;
  cfg.protocol.kind = kind;
  return cfg;
}

TEST(AppsExtra, OddNodeCountsVerify) {
  // Partitionings must handle node counts that divide nothing evenly.
  for (const std::string& name : {std::string("lu"), std::string("sor"),
                                  std::string("water-sp"), std::string("raytrace")}) {
    for (int nodes : {3, 5, 7}) {
      auto app = MakeApp(name, AppScale::kTiny);
      const AppRunResult r = RunApp(*app, AppConfig(ProtocolKind::kHlrc, nodes));
      EXPECT_TRUE(r.verified) << name << " nodes=" << nodes << ": " << r.why;
    }
  }
}

TEST(AppsExtra, SixtyFourNodesAllProtocols) {
  // The full paper scale: heavily loaded barrier manager, long lock chains.
  for (ProtocolKind kind : testing::AllProtocols()) {
    for (const std::string& name : {std::string("water-nsq"), std::string("sor")}) {
      auto app = MakeApp(name, AppScale::kTiny);
      const AppRunResult r = RunApp(*app, AppConfig(kind, 64));
      EXPECT_TRUE(r.verified) << name << " " << ProtocolName(kind) << ": " << r.why;
    }
  }
}

TEST(AppsExtra, ZeroInteriorSorSuppressesDiffs) {
  SorConfig base;
  base.rows = 64;
  base.cols = 64;
  base.iterations = 3;

  int64_t diffs[2] = {0, 0};
  for (int z = 0; z < 2; ++z) {
    SorConfig cfg = base;
    cfg.zero_interior = (z == 1);
    SorApp app(cfg);
    const AppRunResult r = RunApp(app, AppConfig(ProtocolKind::kLrc, 4));
    ASSERT_TRUE(r.verified) << r.why;
    diffs[z] = r.report.Totals().proto.diffs_created;
  }
  // Writes that do not change the page produce no diffs (paper §4.8).
  EXPECT_GT(diffs[0], 0);
  EXPECT_LT(diffs[1], diffs[0] / 2);
}

TEST(AppsExtra, RegistryKnowsAllFiveApps) {
  EXPECT_EQ(AppNames().size(), 5u);
  for (const std::string& name : AppNames()) {
    auto app = MakeApp(name, AppScale::kTiny);
    ASSERT_NE(app, nullptr);
    EXPECT_FALSE(app->name().empty());
  }
}

TEST(AppsExtra, ProtocolsAgreeBitwiseOnDeterministicApps) {
  // LU, SOR and Raytrace are schedule-independent: every protocol must
  // produce the exact same bytes at the owners.
  for (const std::string& name :
       {std::string("lu"), std::string("sor"), std::string("raytrace")}) {
    for (ProtocolKind kind : testing::AllProtocols()) {
      auto app = MakeApp(name, AppScale::kTiny);
      const AppRunResult r = RunApp(*app, AppConfig(kind, 8));
      EXPECT_TRUE(r.verified) << name << " " << ProtocolName(kind) << ": " << r.why;
    }
  }
}

TEST(AppsExtra, DeterministicTotalTimeAcrossRuns) {
  // The whole simulation is deterministic: identical config => identical
  // virtual end time and traffic.
  SimTime t[2];
  int64_t msgs[2];
  for (int i = 0; i < 2; ++i) {
    auto app = MakeApp("water-sp", AppScale::kTiny);
    const AppRunResult r = RunApp(*app, AppConfig(ProtocolKind::kOhlrc, 8));
    ASSERT_TRUE(r.verified) << r.why;
    t[i] = r.report.total_time;
    msgs[i] = r.report.Totals().traffic.msgs_sent;
  }
  EXPECT_EQ(t[0], t[1]);
  EXPECT_EQ(msgs[0], msgs[1]);
}

}  // namespace
}  // namespace hlrc

// FFT application specifics: numerical correctness of the kernel, the
// all-to-all communication signature, and cross-protocol agreement.
#include <gtest/gtest.h>

#include <complex>

#include "src/apps/app.h"
#include "src/apps/fft.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

// Direct O(N^2) DFT for validating the six-step algorithm end to end.
std::vector<std::complex<double>> Dft(const std::vector<std::complex<double>>& x) {
  const size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> sum = 0;
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n);
      sum += x[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

TEST(FftApp, SixStepMatchesDirectDftOnTinyInput) {
  // Run the parallel app on a 16x16 (N=256) input and compare the result
  // against a direct DFT of the row-major input.
  FftConfig cfg;
  cfg.n = 16;
  FftApp app(cfg);
  SimConfig sim = testing::SmallConfig(ProtocolKind::kHlrc, 4, 16ll << 20, 1024);
  System sys(sim);
  app.Setup(sys);
  sys.Run(app.Program());
  std::string why;
  ASSERT_TRUE(app.Verify(sys, &why)) << why;

  // The six-step algorithm computes the 1-D DFT of the n*n vector laid out
  // in column-major order (standard for the transpose formulation): check a
  // few output bins against the direct DFT.
  // Reconstruct the input in the order the algorithm consumed it.
  // Input element (i,j) of the matrix is vector position j*n + i after the
  // initial transpose; we simply validate internal consistency instead:
  // Verify() already checked against the reference transform, and here we
  // check the reference transform itself is a true DFT for an impulse.
  const int n = 8;
  std::vector<std::complex<double>> impulse(static_cast<size_t>(n) * n, 0.0);
  impulse[1] = 1.0;
  const auto direct = Dft(impulse);
  // DFT of a shifted impulse is a complex exponential with |X[k]| == 1.
  for (size_t k = 0; k < direct.size(); k += 7) {
    EXPECT_NEAR(std::abs(direct[k]), 1.0, 1e-9);
  }
}

TEST(FftApp, TransposesAreAllToAll) {
  // Every node must exchange data with every other node (the transpose
  // signature): under HLRC each node fetches pages homed at all peers.
  constexpr int kNodes = 8;
  auto app = MakeApp("fft", AppScale::kTiny);
  SimConfig sim = testing::SmallConfig(ProtocolKind::kHlrc, kNodes, 16ll << 20, 1024);
  const AppRunResult r = RunApp(*app, sim);
  ASSERT_TRUE(r.verified) << r.why;
  // All nodes participate in fetching and serving.
  for (const NodeReport& node : r.report.nodes) {
    EXPECT_GT(node.proto.page_fetches, 0);
    EXPECT_GT(node.traffic.msgs_by_type[static_cast<int>(MsgType::kPageRequest)], 0);
    EXPECT_GT(node.traffic.msgs_by_type[static_cast<int>(MsgType::kPageReply)], 0);
  }
}

TEST(FftApp, HomelessProtocolPaysMoreProtocolTraffic) {
  int64_t proto_bytes[2] = {0, 0};
  int64_t msgs[2] = {0, 0};
  const ProtocolKind kinds[2] = {ProtocolKind::kLrc, ProtocolKind::kHlrc};
  for (int k = 0; k < 2; ++k) {
    auto app = MakeApp("fft", AppScale::kTiny);
    SimConfig sim = testing::SmallConfig(kinds[k], 16, 16ll << 20, 1024);
    const AppRunResult r = RunApp(*app, sim);
    ASSERT_TRUE(r.verified) << r.why;
    proto_bytes[k] = r.report.Totals().traffic.protocol_bytes_sent;
    msgs[k] = r.report.Totals().traffic.msgs_sent;
  }
  // Each transposed band has a single writer, so the message counts tie
  // (one diff fetch == one page round trip); the homeless protocol still
  // ships full vector timestamps in every write notice.
  EXPECT_GE(msgs[0], msgs[1]);
  EXPECT_GT(proto_bytes[0], proto_bytes[1]);
}

TEST(FftApp, AgreesAcrossAllProtocols) {
  for (ProtocolKind kind : testing::AllProtocols()) {
    auto app = MakeApp("fft", AppScale::kTiny);
    SimConfig sim = testing::SmallConfig(kind, 8, 16ll << 20, 1024);
    const AppRunResult r = RunApp(*app, sim);
    EXPECT_TRUE(r.verified) << ProtocolName(kind) << ": " << r.why;
  }
}

}  // namespace
}  // namespace hlrc

// Each application must exhibit the sharing pattern the paper attributes to
// it (§4.1) — these tests pin the workload characteristics the protocol
// comparison depends on.
#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/apps/water_spatial.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

AppRunResult RunCase(const std::string& name, ProtocolKind kind, int nodes) {
  auto app = MakeApp(name, AppScale::kTiny);
  SimConfig cfg = testing::SmallConfig(kind, nodes, 16ll << 20, 1024);
  AppRunResult r = RunApp(*app, cfg);
  EXPECT_TRUE(r.verified) << name << ": " << r.why;
  return r;
}

TEST(AppCharacteristics, LuAndSorAreLockFree) {
  // "The only synchronization primitives ... are LOCK, UNLOCK and BARRIER";
  // LU and SOR use barriers exclusively (coarse-grained single-writer).
  for (const std::string& name : {std::string("lu"), std::string("sor")}) {
    const AppRunResult r = RunCase(name, ProtocolKind::kHlrc, 8);
    EXPECT_EQ(r.report.Totals().proto.lock_acquires, 0) << name;
    EXPECT_GT(r.report.Totals().proto.barriers, 0) << name;
  }
}

TEST(AppCharacteristics, WaterNsqUsesPerPartitionLocks) {
  const AppRunResult r = RunCase("water-nsq", ProtocolKind::kHlrc, 8);
  // Every node locks its own partition and its neighbours' (paper: updates
  // its own n/p molecules and the following n/2).
  EXPECT_GT(r.report.Totals().proto.lock_acquires, 8);
  for (const NodeReport& n : r.report.nodes) {
    EXPECT_GT(n.proto.lock_acquires, 0);
  }
}

TEST(AppCharacteristics, WaterSpatialMigratesMolecules) {
  // Molecules drift between cells: the cell directory sees lock-protected
  // insertions (paper: "molecules migrate slowly"). The tiny preset is too
  // short for any crossing, so run with a larger timestep and more steps.
  WaterSpConfig cfg;
  cfg.molecules = 128;
  cfg.cells = 4;
  cfg.box = 8.0;
  cfg.steps = 10;
  cfg.dt = 0.5;
  WaterSpApp app(cfg);
  SimConfig sim = testing::SmallConfig(ProtocolKind::kHlrc, 8, 16ll << 20, 1024);
  const AppRunResult r = RunApp(app, sim);
  ASSERT_TRUE(r.verified) << r.why;
  EXPECT_GT(r.report.Totals().proto.lock_acquires, 0);
}

TEST(AppCharacteristics, RaytraceStealsWork) {
  // Task stealing: every node must end up having rendered something, i.e.
  // all nodes show application compute time and queue lock activity.
  const AppRunResult r = RunCase("raytrace", ProtocolKind::kHlrc, 8);
  for (const NodeReport& n : r.report.nodes) {
    EXPECT_GT(n.Computation(), 0);
    EXPECT_GT(n.proto.lock_acquires, 0);  // Queue pops are lock protected.
  }
}

TEST(AppCharacteristics, RaytraceFalselySharesImagePages) {
  // Neighboring tiles land on shared pages: under LRC, image pages must see
  // diffs from multiple writers (concurrent, false sharing).
  const AppRunResult r = RunCase("raytrace", ProtocolKind::kLrc, 8);
  EXPECT_GT(r.report.Totals().proto.diffs_created, 0);
}

TEST(AppCharacteristics, WaterNsqIsMigratory) {
  // The same force pages pass through many hands: the homeless protocol
  // applies far more diffs than it creates (re-fetch per reader), one of the
  // paper's Table 4 signatures.
  const AppRunResult r = RunCase("water-nsq", ProtocolKind::kLrc, 8);
  EXPECT_GT(r.report.Totals().proto.diffs_applied,
            r.report.Totals().proto.diffs_created);
}

TEST(AppCharacteristics, WaterNsqSnapshotsPhasesForFigure4) {
  auto app = MakeApp("water-nsq", AppScale::kTiny);
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 4, 16ll << 20, 1024);
  const AppRunResult r = RunApp(*app, cfg);
  ASSERT_TRUE(r.verified) << r.why;
  // Tiny scale = 2 steps => snapshots at phases 0..4 for each node.
  EXPECT_EQ(r.report.phases.size(), 5u * 4u);
  // Deltas between consecutive snapshots are monotone in time.
  for (NodeId n = 0; n < 4; ++n) {
    SimTime prev = -1;
    for (int phase = 0; phase <= 4; ++phase) {
      const auto it = r.report.phases.find({phase, n});
      ASSERT_NE(it, r.report.phases.end());
      EXPECT_GE(it->second.finish_time, prev);
      prev = it->second.finish_time;
    }
  }
}

TEST(AppCharacteristics, SequentialRunsHaveNoCommunication) {
  for (const std::string& name : AllAppNames()) {
    auto app = MakeApp(name, AppScale::kTiny);
    SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 1, 16ll << 20, 1024);
    const AppRunResult r = RunApp(*app, cfg);
    ASSERT_TRUE(r.verified) << name << ": " << r.why;
    EXPECT_EQ(r.report.Totals().traffic.msgs_sent, 0) << name;
    EXPECT_EQ(r.report.Totals().proto.page_fetches, 0) << name;
  }
}

TEST(AppCharacteristics, ScalesProduceIncreasingWork) {
  // kTiny < kDefault sequential compute for every app.
  for (const std::string& name : AllAppNames()) {
    SimTime t[2];
    const AppScale scales[2] = {AppScale::kTiny, AppScale::kDefault};
    for (int k = 0; k < 2; ++k) {
      auto app = MakeApp(name, scales[k]);
      SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 1, 256ll << 20, 4096);
      const AppRunResult r = RunApp(*app, cfg);
      ASSERT_TRUE(r.verified) << name << ": " << r.why;
      t[k] = r.report.nodes[0].Computation();
    }
    EXPECT_LT(t[0], t[1]) << name;
  }
}

}  // namespace
}  // namespace hlrc

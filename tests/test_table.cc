#include "src/common/table.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hlrc {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.SetHeader({"a", "b"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| a      | b  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
}

TEST(Table, NumbersRightAlignedTextLeftAligned) {
  Table t("");
  t.SetHeader({"name", "val"});
  t.AddRow({"ab", "7"});
  t.AddRow({"c", "123"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| ab   |   7 |"), std::string::npos);
  EXPECT_NE(s.find("| c    | 123 |"), std::string::npos);
}

TEST(Table, SeparatorInsertsRule) {
  Table t("");
  t.SetHeader({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string s = t.ToString();
  // Rules: top, after header, before row 2, bottom.
  size_t rules = 0;
  for (size_t pos = s.find("+-"); pos != std::string::npos; pos = s.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table t("");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("| only |"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fmt(static_cast<int64_t>(42)), "42");
  EXPECT_EQ(Table::FmtBytes(512), "512B");
  EXPECT_EQ(Table::FmtBytes(64 << 10), "64.0KB");
  EXPECT_EQ(Table::FmtBytes(50ll << 20), "50.0MB");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, BoundedAndRangeRespectLimits) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace hlrc

// Randomized property tests for the ordering primitives the protocols and
// the checker oracle are built on: VectorClock (src/proto/vector_clock.h)
// and interval records/keys (src/proto/interval.h). Each property is checked
// over a few thousand Rng-driven cases; failures print the violating clocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/proto/interval.h"
#include "src/proto/vector_clock.h"

namespace hlrc {
namespace {

constexpr int kCases = 2000;

VectorClock RandomClock(Rng& rng, int nodes, uint32_t max_component) {
  VectorClock vt(nodes);
  for (int n = 0; n < nodes; ++n) {
    vt.Set(n, static_cast<uint32_t>(rng.NextBounded(max_component + 1)));
  }
  return vt;
}

std::string Show(const VectorClock& vt) {
  std::ostringstream os;
  os << "[";
  for (int n = 0; n < vt.size(); ++n) {
    os << (n ? "," : "") << vt.Get(n);
  }
  os << "]";
  return os.str();
}

VectorClock Merged(const VectorClock& a, const VectorClock& b) {
  VectorClock m = a;
  m.MergeWith(b);
  return m;
}

TEST(VectorClockProperty, MergeIsCommutativeAssociativeIdempotent) {
  Rng rng(1);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(8));
    const VectorClock a = RandomClock(rng, nodes, 5);
    const VectorClock b = RandomClock(rng, nodes, 5);
    const VectorClock c = RandomClock(rng, nodes, 5);
    EXPECT_TRUE(Merged(a, b) == Merged(b, a)) << Show(a) << " " << Show(b);
    EXPECT_TRUE(Merged(Merged(a, b), c) == Merged(a, Merged(b, c)))
        << Show(a) << " " << Show(b) << " " << Show(c);
    EXPECT_TRUE(Merged(a, a) == a) << Show(a);
  }
}

TEST(VectorClockProperty, MergeIsLeastUpperBound) {
  Rng rng(2);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(8));
    const VectorClock a = RandomClock(rng, nodes, 5);
    const VectorClock b = RandomClock(rng, nodes, 5);
    const VectorClock m = Merged(a, b);
    EXPECT_TRUE(a.DominatedBy(m) && b.DominatedBy(m)) << Show(a) << " " << Show(b);
    // Least: any upper bound of both dominates the merge.
    VectorClock ub = RandomClock(rng, nodes, 5);
    ub.MergeWith(a);
    ub.MergeWith(b);
    EXPECT_TRUE(m.DominatedBy(ub)) << Show(m) << " " << Show(ub);
  }
}

TEST(VectorClockProperty, DominanceIsAntisymmetricPartialOrder) {
  Rng rng(3);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(6));
    const VectorClock a = RandomClock(rng, nodes, 3);
    const VectorClock b = RandomClock(rng, nodes, 3);
    const VectorClock c = RandomClock(rng, nodes, 3);
    EXPECT_TRUE(a.DominatedBy(a)) << Show(a);
    if (a.DominatedBy(b) && b.DominatedBy(a)) {
      EXPECT_TRUE(a == b) << Show(a) << " " << Show(b);
    }
    if (a.DominatedBy(b) && b.DominatedBy(c)) {
      EXPECT_TRUE(a.DominatedBy(c)) << Show(a) << " " << Show(b) << " " << Show(c);
    }
  }
}

TEST(VectorClockProperty, HappensBeforeAndConcurrencyPartitionPairs) {
  Rng rng(4);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(6));
    const VectorClock a = RandomClock(rng, nodes, 3);
    const VectorClock b = RandomClock(rng, nodes, 3);
    // Exactly one of: a hb b, b hb a, a == b, a || b.
    const int kinds = (a.HappensBefore(b) ? 1 : 0) + (b.HappensBefore(a) ? 1 : 0) +
                      (a == b ? 1 : 0) + (a.ConcurrentWith(b) ? 1 : 0);
    EXPECT_EQ(kinds, 1) << Show(a) << " " << Show(b);
    EXPECT_FALSE(a.HappensBefore(a)) << Show(a);
  }
}

TEST(VectorClockProperty, TotalOrderRefinesHappensBefore) {
  Rng rng(5);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(6));
    const VectorClock a = RandomClock(rng, nodes, 3);
    const VectorClock b = RandomClock(rng, nodes, 3);
    if (a.HappensBefore(b)) {
      EXPECT_TRUE(a.TotalOrderLess(b)) << Show(a) << " " << Show(b);
    }
    if (!(a == b)) {
      // Strict total order: exactly one direction.
      EXPECT_NE(a.TotalOrderLess(b), b.TotalOrderLess(a)) << Show(a) << " " << Show(b);
    } else {
      EXPECT_FALSE(a.TotalOrderLess(b)) << Show(a);
    }
  }
}

TEST(VectorClockProperty, BumpCreatesHappensBeforeSuccessor) {
  Rng rng(6);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(6));
    VectorClock a = RandomClock(rng, nodes, 3);
    const VectorClock before = a;
    const NodeId n = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(nodes)));
    a.Bump(n);
    EXPECT_TRUE(before.HappensBefore(a)) << Show(before) << " " << Show(a);
    EXPECT_EQ(a.Get(n), before.Get(n) + 1);
  }
}

TEST(IntervalProperty, KeyOrderingIsStrictAndConsistentWithEquality) {
  Rng rng(7);
  auto random_key = [&rng] {
    return IntervalKey{static_cast<NodeId>(rng.NextBounded(8)),
                       static_cast<uint32_t>(rng.NextBounded(8))};
  };
  for (int i = 0; i < kCases; ++i) {
    const IntervalKey a = random_key();
    const IntervalKey b = random_key();
    const IntervalKey c = random_key();
    EXPECT_FALSE(a < a);
    EXPECT_EQ(a == b, !(a < b) && !(b < a));
    if (a < b && b < c) {
      EXPECT_TRUE(a < c);
    }
    if (a == b) {
      EXPECT_EQ(IntervalKeyHash()(a), IntervalKeyHash()(b));
    }
  }
}

TEST(IntervalProperty, EncodedSizeCountsNoticesAndOptionalTimestamp) {
  Rng rng(8);
  for (int i = 0; i < kCases; ++i) {
    const int nodes = 1 + static_cast<int>(rng.NextBounded(16));
    IntervalRecord rec;
    rec.writer = static_cast<NodeId>(rng.NextBounded(static_cast<uint64_t>(nodes)));
    rec.vt = RandomClock(rng, nodes, 9);
    const int pages = static_cast<int>(rng.NextBounded(32));
    for (int p = 0; p < pages; ++p) {
      rec.pages.push_back(static_cast<PageId>(rng.NextBounded(1024)));
    }
    // Home-based wire format: header + 4 bytes per notice.
    EXPECT_EQ(rec.EncodedSize(/*with_vt=*/false), 8 + 4 * pages);
    // Homeless adds the full vector timestamp (4 bytes per node), so the
    // delta grows linearly with the machine size.
    EXPECT_EQ(rec.EncodedSize(/*with_vt=*/true) - rec.EncodedSize(/*with_vt=*/false),
              4 * nodes);
    EXPECT_EQ(rec.vt.EncodedSize(), 4 * nodes);
  }
}

}  // namespace
}  // namespace hlrc

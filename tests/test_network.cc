#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/sim/engine.h"

namespace hlrc {
namespace {

Message MakeMsg(NodeId src, NodeId dst, int64_t update = 0, int64_t proto = 0,
                MsgType type = MsgType::kPageRequest) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = type;
  m.update_bytes = update;
  m.protocol_bytes = proto;
  return m;
}

TEST(Mesh2D, SquareDimensions) {
  Mesh2D mesh(64);
  EXPECT_EQ(mesh.rows(), 8);
  EXPECT_EQ(mesh.cols(), 8);
}

TEST(Mesh2D, NonSquareNodeCounts) {
  Mesh2D mesh(8);
  EXPECT_EQ(mesh.rows() * mesh.cols(), 8);
  Mesh2D mesh32(32);
  EXPECT_GE(mesh32.rows() * mesh32.cols(), 32);
}

TEST(Mesh2D, HopsAreManhattanDistance) {
  Mesh2D mesh(16);  // 4x4.
  EXPECT_EQ(mesh.Hops(0, 0), 0);
  EXPECT_EQ(mesh.Hops(0, 3), 3);
  EXPECT_EQ(mesh.Hops(0, 15), 6);
  EXPECT_EQ(mesh.Hops(5, 10), 2);
}

TEST(Mesh2D, RouteLengthMatchesHops) {
  Mesh2D mesh(16);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(static_cast<int>(mesh.Route(a, b).size()), mesh.Hops(a, b));
    }
  }
}

TEST(Network, DeliversWithLatencyAndTransferTime) {
  Engine e;
  NetworkConfig cfg;
  cfg.base_latency = Micros(50);
  cfg.per_hop = 0;
  cfg.per_byte = Nanos(43);
  cfg.header_bytes = 0;
  Network net(&e, 4, cfg);
  SimTime delivered = -1;
  net.SetHandler(1, [&](Message) { delivered = e.Now(); });
  net.SetHandler(0, [](Message) {});
  net.Send(MakeMsg(0, 1, 8192, 0));
  e.Run();
  EXPECT_EQ(delivered, Micros(50) + 8192 * Nanos(43));
}

TEST(Network, SmallMessageIsLatencyBound) {
  Engine e;
  NetworkConfig cfg;
  cfg.header_bytes = 0;
  Network net(&e, 4, cfg);
  SimTime delivered = -1;
  net.SetHandler(1, [&](Message) { delivered = e.Now(); });
  net.Send(MakeMsg(0, 1, 0, 4));
  e.Run();
  EXPECT_NEAR(static_cast<double>(delivered), static_cast<double>(Micros(50)),
              static_cast<double>(Micros(1)));
}

TEST(Network, ReceiverSerializesConcurrentSenders) {
  Engine e;
  NetworkConfig cfg;
  cfg.header_bytes = 0;
  cfg.per_hop = 0;
  Network net(&e, 4, cfg);
  std::vector<SimTime> arrivals;
  net.SetHandler(0, [&](Message) { arrivals.push_back(e.Now()); });
  // Two full pages sent simultaneously from different nodes to node 0: the
  // second is serialized behind the first at the receiving NIC (hot spot).
  net.Send(MakeMsg(1, 0, 8192, 0));
  net.Send(MakeMsg(2, 0, 8192, 0));
  e.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  const SimTime xfer = 8192 * NetworkConfig().per_byte;
  EXPECT_EQ(arrivals[1] - arrivals[0], xfer);
}

TEST(Network, SenderSerializesItsOwnMessages) {
  Engine e;
  NetworkConfig cfg;
  cfg.header_bytes = 0;
  cfg.per_hop = 0;
  Network net(&e, 4, cfg);
  std::vector<SimTime> arrivals;
  net.SetHandler(1, [&](Message) { arrivals.push_back(e.Now()); });
  net.SetHandler(2, [&](Message) { arrivals.push_back(e.Now()); });
  net.Send(MakeMsg(0, 1, 8192, 0));
  net.Send(MakeMsg(0, 2, 8192, 0));
  e.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST(Network, FifoPerPair) {
  Engine e;
  NetworkConfig cfg;
  Network net(&e, 2, cfg);
  std::vector<int> order;
  net.SetHandler(1, [&](Message m) { order.push_back(static_cast<int>(m.update_bytes)); });
  for (int i = 1; i <= 5; ++i) {
    net.Send(MakeMsg(0, 1, i, 0));
  }
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Network, TrafficStatsSplitUpdateAndProtocol) {
  Engine e;
  NetworkConfig cfg;
  cfg.header_bytes = 32;
  Network net(&e, 2, cfg);
  net.SetHandler(1, [](Message) {});
  net.Send(MakeMsg(0, 1, 100, 20, MsgType::kDiffFlush));
  net.Send(MakeMsg(0, 1, 0, 8, MsgType::kLockRequest));
  e.Run();
  const TrafficStats& s = net.NodeStats(0);
  EXPECT_EQ(s.msgs_sent, 2);
  EXPECT_EQ(s.update_bytes_sent, 100);
  EXPECT_EQ(s.protocol_bytes_sent, 20 + 8 + 2 * 32);
  EXPECT_EQ(s.msgs_by_type[static_cast<int>(MsgType::kDiffFlush)], 1);
  EXPECT_EQ(net.NodeStats(1).msgs_received, 2);
}

TEST(Network, LinkContentionDelaysCrossingRoutes) {
  // Two transfers sharing a mesh link take longer with contention modelling.
  auto run = [](bool contention) {
    Engine e;
    NetworkConfig cfg;
    cfg.model_link_contention = contention;
    cfg.header_bytes = 0;
    Network net(&e, 16, cfg);
    SimTime last = 0;
    for (NodeId n = 0; n < 16; ++n) {
      net.SetHandler(n, [&, n](Message) { last = std::max(last, e.Now()); });
    }
    // Both 0->3 and 1->3 share the links between columns 1..3 on row 0.
    net.Send(MakeMsg(0, 3, 8192, 0));
    net.Send(MakeMsg(1, 3, 8192, 0));
    e.Run();
    return last;
  };
  EXPECT_GE(run(true), run(false));
}

TEST(Network, HopLatencyIncreasesWithDistance) {
  Engine e;
  NetworkConfig cfg;
  cfg.per_hop = Micros(1);
  cfg.header_bytes = 0;
  Network net(&e, 16, cfg);
  SimTime near_t = 0;
  SimTime far_t = 0;
  net.SetHandler(1, [&](Message) { near_t = e.Now(); });
  net.SetHandler(15, [&](Message) { far_t = e.Now(); });
  net.Send(MakeMsg(0, 1, 0, 4));
  net.Send(MakeMsg(0, 15, 0, 4));
  e.Run();
  EXPECT_GT(far_t, near_t);
}

}  // namespace
}  // namespace hlrc

// Unit tests for the metrics layer: log2 histograms (merge/percentile
// properties and bucket-boundary edges), the registry's stable-pointer
// contract, the simulated-time sampler, the page-heat profiler, and the JSON
// writer/parser pair that backs the run-summary files.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metrics/heat.h"
#include "src/metrics/histogram.h"
#include "src/metrics/json.h"
#include "src/metrics/json_writer.h"
#include "src/metrics/registry.h"
#include "src/metrics/sampler.h"
#include "src/sim/engine.h"

namespace hlrc {
namespace {

// ---------------------------------------------------------------------------
// Histogram.

TEST(Histogram, EmptyIsZeroed) {
  Histogram h;
  EXPECT_TRUE(h.Empty());
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  for (int k = 1; k < 62; ++k) {
    const int64_t lo = int64_t{1} << k;
    // 2^k - 1 and 2^k land in adjacent buckets.
    EXPECT_EQ(Histogram::BucketOf(lo - 1) + 1, Histogram::BucketOf(lo)) << "k=" << k;
    EXPECT_EQ(Histogram::BucketLow(Histogram::BucketOf(lo)), lo);
    EXPECT_EQ(Histogram::BucketHigh(Histogram::BucketOf(lo - 1)), lo - 1);
  }
  EXPECT_EQ(Histogram::BucketOf(std::numeric_limits<int64_t>::max()), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketHigh(Histogram::kBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(Histogram, RecordsEdgeValues) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.Count(), 3);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.buckets()[0], 1);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1);
  // Negative values clamp to 0 rather than corrupting a bucket index.
  h.Record(-5);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.Min(), 0);
}

TEST(Histogram, PercentileBracketsAndMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.Percentile(0), static_cast<double>(h.Min()));
  EXPECT_EQ(h.Percentile(100), static_cast<double>(h.Max()));
  double prev = -1;
  for (double p = 0; p <= 100; p += 0.5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, static_cast<double>(h.Min()));
    EXPECT_LE(v, static_cast<double>(h.Max()));
    prev = v;
  }
  // The estimate of the median of 1..1000 must land within its 2x bucket.
  EXPECT_GE(h.Percentile(50), 256.0);
  EXPECT_LE(h.Percentile(50), 1023.0);
}

TEST(Histogram, MergeOfSplitEqualsCombined) {
  // Property: recording a stream into one histogram equals splitting the
  // stream arbitrarily across two and merging.
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram combined, a, b;
    const int n = static_cast<int>(rng.NextInt(1, 500));
    for (int i = 0; i < n; ++i) {
      // Mix magnitudes so many buckets are hit: value = random in [0, 2^k).
      const int k = static_cast<int>(rng.NextInt(0, 40));
      const int64_t v = static_cast<int64_t>(rng.NextBounded((uint64_t{1} << k) + 1));
      combined.Record(v);
      (rng.NextBool() ? a : b).Record(v);
    }
    a.Merge(b);
    EXPECT_EQ(a.Count(), combined.Count());
    EXPECT_EQ(a.Sum(), combined.Sum());
    EXPECT_EQ(a.Min(), combined.Min());
    EXPECT_EQ(a.Max(), combined.Max());
    EXPECT_EQ(a.buckets(), combined.buckets());
    for (double p : {0.0, 50.0, 90.0, 99.0, 100.0}) {
      EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p=" << p;
    }
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram h, empty;
  h.Record(7);
  h.Merge(empty);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Min(), 7);
  empty.Merge(h);
  EXPECT_EQ(empty.Count(), 1);
  EXPECT_EQ(empty.Max(), 7);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistry, PointersAreStableAcrossRegistrations) {
  MetricsRegistry reg(4);
  int64_t* c0 = reg.Counter("a", 0);
  Histogram* h0 = reg.Histo("h", 0);
  // Registering many more names must not move previously handed-out
  // pointers (hot paths cache them for the whole run).
  for (int i = 0; i < 200; ++i) {
    reg.Counter("counter" + std::to_string(i), i % 4);
    reg.Histo("histo" + std::to_string(i), i % 4);
  }
  EXPECT_EQ(reg.Counter("a", 0), c0);
  EXPECT_EQ(reg.Histo("h", 0), h0);
  *c0 += 5;
  EXPECT_EQ(reg.CounterTotal("a"), 5);
}

TEST(MetricsRegistry, MergedHistoAggregatesNodes) {
  MetricsRegistry reg(3);
  reg.Histo("lat", 0)->Record(1);
  reg.Histo("lat", 1)->Record(100);
  reg.Histo("lat", 2)->Record(10000);
  const Histogram m = reg.MergedHisto("lat");
  EXPECT_EQ(m.Count(), 3);
  EXPECT_EQ(m.Min(), 1);
  EXPECT_EQ(m.Max(), 10000);
  EXPECT_EQ(reg.MergedHisto("absent").Count(), 0);
}

// ---------------------------------------------------------------------------
// Sampler.

TEST(Sampler, SamplesAtIntervalAndStopsWithQueue) {
  Engine eng;
  int64_t counter = 0;
  Sampler s(&eng, Micros(10));
  s.AddSeries("c", -1, [&] { return static_cast<double>(counter); });
  // Application events: bump the counter at 5us, 25us, 45us; queue drains at
  // 45us, so sampling must stop shortly after rather than ticking forever.
  for (int i = 0; i < 3; ++i) {
    eng.ScheduleAt(Micros(5 + 20 * i), [&] { ++counter; });
  }
  s.Start();
  eng.Run();
  ASSERT_GE(s.samples().size(), 5u);
  EXPECT_FALSE(s.truncated());
  // t=0 sample plus every 10us; values reflect state at each tick.
  EXPECT_EQ(s.samples()[0].time, 0);
  EXPECT_EQ(s.samples()[0].values[0], 0.0);
  EXPECT_EQ(s.samples()[1].time, Micros(10));
  EXPECT_EQ(s.samples()[1].values[0], 1.0);
  EXPECT_EQ(s.samples()[3].time, Micros(30));
  EXPECT_EQ(s.samples()[3].values[0], 2.0);
  for (size_t i = 1; i < s.samples().size(); ++i) {
    EXPECT_EQ(s.samples()[i].time - s.samples()[i - 1].time, Micros(10));
  }
  // The sampler must not have kept the engine alive much past the last app
  // event (one trailing tick is fine).
  EXPECT_LE(s.samples().back().time, Micros(60));
}

TEST(Sampler, TruncatesAtMaxSamples) {
  Engine eng;
  Sampler s(&eng, Micros(1), /*max_samples=*/8);
  s.AddSeries("x", 0, [] { return 1.0; });
  eng.ScheduleAt(Millis(1), [] {});  // Keep the queue non-empty for 1 ms.
  s.Start();
  eng.Run();
  EXPECT_EQ(s.samples().size(), 8u);
  EXPECT_TRUE(s.truncated());
}

TEST(Sampler, NoSeriesMeansNoEvents) {
  Engine eng;
  Sampler s(&eng, Micros(1));
  s.Start();
  eng.Run();
  EXPECT_TRUE(s.samples().empty());
  EXPECT_EQ(eng.events_processed(), 0);
}

TEST(Sampler, ChromeCounterEventsAreParseableJson) {
  Engine eng;
  Sampler s(&eng, Micros(10));
  s.AddSeries("bytes_in_flight", 2, [] { return 42.0; });
  eng.ScheduleAt(Micros(15), [] {});
  s.Start();
  eng.Run();
  const std::string events = ChromeCounterEvents(s);
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson("[" + events + "]", &v, &err)) << err;
  ASSERT_GE(v.arr.size(), 2u);
  EXPECT_EQ(v.arr[0].GetString("ph"), "C");
  EXPECT_EQ(v.arr[0].GetString("name"), "bytes_in_flight");
  EXPECT_EQ(v.arr[0].GetInt("pid"), 2);  // Counter tracks group by node.
  EXPECT_EQ(v.arr[0].Find("args")->GetDouble("value"), 42.0);
}

// ---------------------------------------------------------------------------
// Page heat.

TEST(PageHeat, TopNRanksByScoreAndTracksWriters) {
  PageHeatProfiler heat(16);
  heat.OnFault(3, /*is_write=*/false);
  heat.OnFetch(3, 4096);
  // Page 3 scores 1 fault + 1 fetch + 4096/64 = 66; give page 7 strictly
  // more protocol work so the ranking is unambiguous.
  for (int i = 0; i < 50; ++i) {
    heat.OnFault(7, /*is_write=*/true);
    heat.OnDiffApplied(7, 128);
  }
  heat.OnWrite(7, 0);
  heat.OnWrite(7, 5);
  heat.OnWrite(7, 5);  // Same writer twice: mask counts distinct nodes.

  const auto top = heat.TopN(10);
  ASSERT_EQ(top.size(), 2u);  // Only touched pages appear.
  EXPECT_EQ(top[0].page, 7);
  EXPECT_EQ(top[1].page, 3);
  EXPECT_GT(top[0].heat.Score(), top[1].heat.Score());
  EXPECT_EQ(top[0].heat.Writers(), 2);
  EXPECT_EQ(top[0].heat.write_faults, 50);
  EXPECT_EQ(top[1].heat.read_faults, 1);
  EXPECT_EQ(top[1].heat.fetch_bytes, 4096);
  EXPECT_EQ(heat.TopN(1).size(), 1u);
}

// ---------------------------------------------------------------------------
// JSON writer + parser.

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.KV("plain", "x");
  w.KV("tricky", "quote\" slash\\ nl\n tab\t ctl\x01");
  w.Key("arr");
  w.BeginArray();
  w.Int(-3);
  w.Double(1.5);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.EndObject();
  w.EndObject();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson(w.str(), &v, &err)) << err << " in " << w.str();
  EXPECT_EQ(v.GetString("tricky"), "quote\" slash\\ nl\n tab\t ctl\x01");
  ASSERT_EQ(v.Find("arr")->arr.size(), 4u);
  EXPECT_EQ(v.Find("arr")->arr[0].AsInt(), -3);
  EXPECT_EQ(v.Find("arr")->arr[1].AsDouble(), 1.5);
  EXPECT_TRUE(v.Find("arr")->arr[2].AsBool());
  EXPECT_TRUE(v.Find("arr")->arr[3].IsNull());
  EXPECT_TRUE(v.Find("nested")->IsObject());
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson(w.str(), &v, &err)) << err;
  EXPECT_TRUE(v.arr[0].IsNull());
  EXPECT_TRUE(v.arr[1].IsNull());
}

TEST(JsonParser, RoundTripsNumbers) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson("[0, -1, 9007199254740993, 1.25, 1e3, -2.5e-2]", &v, &err)) << err;
  EXPECT_TRUE(v.arr[0].is_int);
  EXPECT_EQ(v.arr[1].AsInt(), -1);
  EXPECT_EQ(v.arr[2].AsInt(), 9007199254740993ll);  // Exceeds double precision.
  EXPECT_FALSE(v.arr[3].is_int);
  EXPECT_EQ(v.arr[3].AsDouble(), 1.25);
  EXPECT_EQ(v.arr[4].AsDouble(), 1000.0);
  EXPECT_EQ(v.arr[5].AsDouble(), -0.025);
}

TEST(JsonParser, HandlesUnicodeEscapes) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson("\"a\\u0041 \\u00e9 \\ud83d\\ude00\"", &v, &err)) << err;
  EXPECT_EQ(v.AsString(), "aA \xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonParser, RejectsMalformedInput) {
  const char* kBad[] = {
      "",                    // empty
      "{",                   // unterminated object
      "[1,]",                // trailing comma
      "{\"a\":1,}",          // trailing comma in object
      "{\"a\" 1}",           // missing colon
      "\"unterminated",      // unterminated string
      "\"bad\\q\"",          // bad escape
      "01",                  // leading zero
      "1 2",                 // trailing data
      "nulll",               // trailing data after literal
      "\"\\ud83d\"",         // lone surrogate
      "{\"a\":}",            // missing value
  };
  for (const char* text : kBad) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(ParseJson(text, &v, &err)) << "accepted: " << text;
    EXPECT_FALSE(err.empty());
  }
}

TEST(JsonParser, DuplicateKeysKeepLast) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson("{\"a\":1,\"a\":2}", &v, &err)) << err;
  EXPECT_EQ(v.GetInt("a"), 2);
}

}  // namespace
}  // namespace hlrc

// End-to-end tests for System::EnableMetrics and the run-summary JSON
// exporter: a small 4-node program with faults, locks and barriers must
// produce a schema-valid document with populated histograms, time-series
// samples and a hot-page table — and enabling metrics must not change what
// the simulation computes.
#include <gtest/gtest.h>

#include <string>

#include "src/metrics/json.h"
#include "src/metrics/metrics.h"
#include "src/metrics/run_summary_schema.h"
#include "src/svm/run_summary.h"
#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

// A workload that exercises every instrumented path: page faults and fetches
// (data waits), lock handoffs (lock waits + diffs), and barriers.
Task<void> Workload(NodeContext& ctx, GlobalAddr addr) {
  for (int r = 0; r < 4; ++r) {
    co_await ctx.Lock(1);
    co_await ctx.Write(addr, 2048);
    *ctx.Ptr<int64_t>(addr) += 1;
    co_await ctx.Unlock(1);
    co_await ctx.Barrier(0);
    co_await ctx.Read(addr + 4096, 1024);
  }
}

struct RunResult {
  std::string json;
  RunReport report;
};

RunResult RunWithMetrics(ProtocolKind kind, SimTime sample_interval) {
  SimConfig cfg = testing::SmallConfig(kind, 4, /*shared_bytes=*/1 << 20,
                                       /*page_size=*/1024);
  System sys(cfg);
  sys.EnableMetrics(sample_interval);
  const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> { return Workload(ctx, addr); });
  RunSummaryMeta meta;
  meta.app = "test-workload";
  meta.verified = true;
  return {RunSummaryJson(sys, meta), sys.report()};
}

RunReport RunWithoutMetrics(ProtocolKind kind) {
  SimConfig cfg = testing::SmallConfig(kind, 4, /*shared_bytes=*/1 << 20,
                                       /*page_size=*/1024);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(16 * 1024);
  sys.Run([&](NodeContext& ctx) -> Task<void> { return Workload(ctx, addr); });
  return sys.report();
}

TEST(RunSummary, ValidatesAgainstSchema) {
  for (ProtocolKind kind : testing::PaperProtocols()) {
    const RunResult r = RunWithMetrics(kind, Micros(100));
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(ParseJson(r.json, &doc, &err)) << ProtocolName(kind) << ": " << err;
    EXPECT_TRUE(ValidateRunSummary(doc, &err)) << ProtocolName(kind) << ": " << err;
    EXPECT_EQ(doc.GetString("schema"), kRunSummarySchemaName);
    EXPECT_EQ(doc.GetInt("version"), kRunSummarySchemaVersion);
  }
}

TEST(RunSummary, HistogramsTimeseriesAndHotPagesArePopulated) {
  const RunResult r = RunWithMetrics(ProtocolKind::kHlrc, Micros(100));
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(r.json, &doc, &err)) << err;

  // The acceptance bar: at least four distinct latency histograms recorded.
  const JsonValue* histos = doc.Find("histograms");
  ASSERT_NE(histos, nullptr);
  EXPECT_GE(histos->obj.size(), 4u) << r.json;
  for (const auto& [name, h] : histos->obj) {
    EXPECT_GT(h.GetInt("count"), 0) << name;
    const JsonValue* p = h.Find("percentiles");
    ASSERT_NE(p, nullptr) << name;
    EXPECT_LE(p->GetDouble("p50"), p->GetDouble("p999")) << name;
  }
  // This workload waits on data, locks and barriers, so those specific
  // histograms must exist by name.
  EXPECT_NE(histos->Find("proto.data_wait_ns"), nullptr);
  EXPECT_NE(histos->Find("proto.lock_wait_ns"), nullptr);
  EXPECT_NE(histos->Find("proto.barrier_wait_ns"), nullptr);

  const JsonValue* ts = doc.Find("timeseries");
  EXPECT_EQ(ts->GetInt("interval_ns"), Micros(100));
  EXPECT_FALSE(ts->Find("series")->arr.empty());
  EXPECT_GT(ts->Find("samples")->arr.size(), 1u);

  const JsonValue* pages = doc.Find("hot_pages");
  ASSERT_FALSE(pages->arr.empty());
  // The lock-protected page is written by all four nodes.
  const JsonValue& hottest = pages->arr[0];
  EXPECT_GT(hottest.GetInt("score"), 0);
  EXPECT_EQ(pages->arr[0].GetInt("writers"), 4);
}

TEST(RunSummary, MetricsDoNotPerturbSimulation) {
  for (ProtocolKind kind : testing::PaperProtocols()) {
    const RunResult with = RunWithMetrics(kind, Micros(50));
    const RunReport without = RunWithoutMetrics(kind);
    EXPECT_EQ(with.report.total_time, without.total_time) << ProtocolName(kind);
    const NodeReport a = with.report.Totals();
    const NodeReport b = without.Totals();
    EXPECT_EQ(a.traffic.msgs_sent, b.traffic.msgs_sent) << ProtocolName(kind);
    EXPECT_EQ(a.proto.page_fetches, b.proto.page_fetches) << ProtocolName(kind);
    EXPECT_EQ(a.proto.diffs_created, b.proto.diffs_created) << ProtocolName(kind);
    for (size_t n = 0; n < with.report.nodes.size(); ++n) {
      EXPECT_EQ(with.report.nodes[n].finish_time, without.nodes[n].finish_time)
          << ProtocolName(kind) << " node " << n;
    }
  }
}

TEST(RunSummary, DeterministicAcrossRuns) {
  const RunResult a = RunWithMetrics(ProtocolKind::kHlrc, Micros(100));
  const RunResult b = RunWithMetrics(ProtocolKind::kHlrc, Micros(100));
  EXPECT_EQ(a.json, b.json);
}

TEST(RunSummary, HistogramCountsMatchWaitEvents) {
  const RunResult r = RunWithMetrics(ProtocolKind::kHlrc, Micros(100));
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(r.json, &doc, &err)) << err;
  // Every node crosses the barrier 4 times: 16 recorded barrier waits.
  const NodeReport totals = r.report.Totals();
  EXPECT_EQ(doc.Find("histograms")->Find("proto.barrier_wait_ns")->GetInt("count"),
            totals.proto.barriers);
}

TEST(ValidateRunSummary, RejectsTamperedDocuments) {
  const RunResult r = RunWithMetrics(ProtocolKind::kHlrc, Micros(100));
  std::string err;

  struct Mutation {
    const char* what;
    std::string from;
    std::string to;
  };
  const Mutation kMutations[] = {
      {"wrong schema name", "\"hlrc-run-summary\"", "\"other\""},
      {"wrong version", "\"version\":1", "\"version\":99"},
      {"missing totals", "\"totals\"", "\"renamed\""},
      {"negative node count", "\"nodes\":4", "\"nodes\":-4"},
  };
  for (const Mutation& m : kMutations) {
    std::string json = r.json;
    const size_t pos = json.find(m.from);
    ASSERT_NE(pos, std::string::npos) << m.what;
    json.replace(pos, m.from.size(), m.to);
    JsonValue doc;
    ASSERT_TRUE(ParseJson(json, &doc, &err)) << m.what << ": " << err;
    EXPECT_FALSE(ValidateRunSummary(doc, &err)) << m.what;
    EXPECT_FALSE(err.empty()) << m.what;
  }

  // The untampered document still validates (guards the mutations above).
  JsonValue doc;
  ASSERT_TRUE(ParseJson(r.json, &doc, &err));
  EXPECT_TRUE(ValidateRunSummary(doc, &err)) << err;
}

TEST(RunSummary, ChromeCounterTracksCoverSampler) {
  SimConfig cfg = testing::SmallConfig(ProtocolKind::kHlrc, 2);
  System sys(cfg);
  Metrics* metrics = sys.EnableMetrics(Micros(100));
  const GlobalAddr addr = sys.space().AllocPageAligned(4096);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    co_await ctx.Write(addr, 8);
    *ctx.Ptr<int64_t>(addr) = 1;
    co_await ctx.Barrier(0);
  });
  const std::string events = ChromeCounterEvents(metrics->sampler());
  ASSERT_FALSE(events.empty());
  JsonValue arr;
  std::string err;
  ASSERT_TRUE(ParseJson("[" + events + "]", &arr, &err)) << err;
  EXPECT_EQ(arr.arr.size(),
            metrics->sampler().series().size() * metrics->sampler().samples().size());
}

}  // namespace
}  // namespace hlrc

// End-to-end smoke tests: small programs running on the full stack under all
// four protocols.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/svm/system.h"
#include "tests/test_util.h"

namespace hlrc {
namespace {

using testing::AllProtocols;
using testing::SmallConfig;

class SmokeTest : public ::testing::TestWithParam<ProtocolKind> {};

// Node 0 writes a value, everyone barriers, all nodes read it.
TEST_P(SmokeTest, SingleWriterBroadcastThroughBarrier) {
  SimConfig cfg = SmallConfig(GetParam(), 4);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(sizeof(int64_t));

  std::vector<int64_t> seen(4, -1);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      co_await ctx.Write(addr, sizeof(int64_t));
      *ctx.Ptr<int64_t>(addr) = 424242;
    }
    co_await ctx.Barrier(0);
    co_await ctx.Read(addr, sizeof(int64_t));
    seen[static_cast<size_t>(ctx.id())] = *ctx.Ptr<int64_t>(addr);
  });

  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(seen[static_cast<size_t>(n)], 424242) << "node " << n;
  }
  EXPECT_GT(sys.report().total_time, 0);
}

// A lock-protected counter incremented by every node several times.
TEST_P(SmokeTest, LockProtectedCounter) {
  constexpr int kNodes = 6;
  constexpr int kRounds = 5;
  SimConfig cfg = SmallConfig(GetParam(), kNodes);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(sizeof(int64_t));

  sys.Run([&](NodeContext& ctx) -> Task<void> {
    for (int r = 0; r < kRounds; ++r) {
      co_await ctx.Lock(7);
      co_await ctx.Write(addr, sizeof(int64_t));
      *ctx.Ptr<int64_t>(addr) += 1;
      co_await ctx.Unlock(7);
    }
    co_await ctx.Barrier(0);
    co_await ctx.Read(addr, sizeof(int64_t));
  });

  // Every node's final view must be the full count.
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(*reinterpret_cast<int64_t*>(sys.NodeMemory(n, addr)), kNodes * kRounds)
        << "node " << n;
  }
}

// Migratory pattern: the value hops node to node through a lock.
TEST_P(SmokeTest, MigratoryChain) {
  constexpr int kNodes = 5;
  SimConfig cfg = SmallConfig(GetParam(), kNodes);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(sizeof(int64_t) * 2);

  sys.Run([&](NodeContext& ctx) -> Task<void> {
    // Token-passing: node i waits until the counter reaches i (mod kNodes),
    // using a lock to poll. Each node appends its id by multiplying.
    for (int round = 0; round < 3; ++round) {
      bool done = false;
      while (!done) {
        co_await ctx.Lock(1);
        co_await ctx.Write(addr, sizeof(int64_t) * 2);
        int64_t* turn = ctx.Ptr<int64_t>(addr);
        int64_t* acc = ctx.Ptr<int64_t>(addr + sizeof(int64_t));
        if (*turn % kNodes == ctx.id()) {
          *acc += ctx.id() + 1;
          *turn += 1;
          done = true;
        }
        co_await ctx.Unlock(1);
        if (!done) {
          co_await ctx.Compute(Micros(50));
        }
      }
    }
    co_await ctx.Barrier(9);
    co_await ctx.Read(addr, sizeof(int64_t) * 2);
  });

  const int64_t expect = 3 * (1 + 2 + 3 + 4 + 5);
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(reinterpret_cast<int64_t*>(sys.NodeMemory(n, addr))[1], expect) << "node " << n;
  }
}

// False sharing: every node writes its own slot of one page each phase;
// everyone reads all slots after the barrier.
TEST_P(SmokeTest, MultipleWritersOnePage) {
  constexpr int kNodes = 8;
  SimConfig cfg = SmallConfig(GetParam(), kNodes);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(kNodes * sizeof(int64_t));

  std::vector<int> bad(kNodes, 0);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    const GlobalAddr mine = addr + static_cast<GlobalAddr>(ctx.id()) * sizeof(int64_t);
    for (int phase = 1; phase <= 4; ++phase) {
      co_await ctx.Write(mine, sizeof(int64_t));
      *ctx.Ptr<int64_t>(mine) = phase * 100 + ctx.id();
      co_await ctx.Barrier(0);
      co_await ctx.Read(addr, kNodes * sizeof(int64_t));
      for (int w = 0; w < kNodes; ++w) {
        const int64_t v = ctx.Ptr<int64_t>(addr)[w];
        if (v != phase * 100 + w) {
          ++bad[static_cast<size_t>(ctx.id())];
        }
      }
      co_await ctx.Barrier(1);
    }
  });

  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(bad[static_cast<size_t>(n)], 0) << "node " << n;
  }
}

// Neighbor exchange across multi-page arrays (SOR-like).
TEST_P(SmokeTest, NeighborExchange) {
  constexpr int kNodes = 4;
  constexpr int kPerNode = 512;  // 4 KB of doubles per node, multiple pages.
  SimConfig cfg = SmallConfig(GetParam(), kNodes, 1 << 20, 1024);
  System sys(cfg);
  const int64_t bytes = kNodes * kPerNode * static_cast<int64_t>(sizeof(double));
  const GlobalAddr addr = sys.space().AllocPageAligned(bytes);

  std::vector<int> bad(kNodes, 0);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    const int me = ctx.id();
    const GlobalAddr mine = addr + static_cast<GlobalAddr>(me) * kPerNode * sizeof(double);
    for (int iter = 1; iter <= 3; ++iter) {
      co_await ctx.Write(mine, kPerNode * sizeof(double));
      double* d = ctx.Ptr<double>(mine);
      for (int i = 0; i < kPerNode; ++i) {
        d[i] = me * 1000.0 + iter + i * 0.5;
      }
      co_await ctx.Barrier(0);
      // Read the right neighbor's band and check it.
      const int nb = (me + 1) % kNodes;
      const GlobalAddr theirs = addr + static_cast<GlobalAddr>(nb) * kPerNode * sizeof(double);
      co_await ctx.Read(theirs, kPerNode * sizeof(double));
      const double* t = ctx.Ptr<double>(theirs);
      for (int i = 0; i < kPerNode; ++i) {
        if (t[i] != nb * 1000.0 + iter + i * 0.5) {
          ++bad[static_cast<size_t>(me)];
        }
      }
      co_await ctx.Barrier(1);
    }
  });

  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(bad[static_cast<size_t>(n)], 0) << "node " << n;
  }
}

// One node (sequential) still works and takes nonzero virtual time.
TEST_P(SmokeTest, SingleNodeRun) {
  SimConfig cfg = SmallConfig(GetParam(), 1);
  System sys(cfg);
  const GlobalAddr addr = sys.space().AllocPageAligned(4096);
  sys.Run([&](NodeContext& ctx) -> Task<void> {
    co_await ctx.Write(addr, 4096);
    std::memset(ctx.Ptr<char>(addr), 7, 4096);
    co_await ctx.Compute(Millis(1));
    co_await ctx.Barrier(0);
  });
  EXPECT_GE(sys.report().total_time, Millis(1));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SmokeTest, ::testing::ValuesIn(AllProtocols()),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return ProtocolName(info.param);
                         });

}  // namespace
}  // namespace hlrc

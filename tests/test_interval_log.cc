// Differential tests for the interval metadata fast path
// (docs/PERFORMANCE.md): the per-writer append-only IntervalLog of shared
// immutable records must behave exactly like the original global
// std::map<IntervalKey, IntervalRecord> store it replaced — same surviving
// records, same pack order (writers ascending, ids ascending), same encoded
// bytes — across ~1000 randomized close/apply/pack/GC-truncation sequences.
// Also pins the two properties the copy-free fan-out relies on: packed
// batches alias the published record (no deep copies) and published records
// are immutable, plus directed coverage for SmallVec, the inline write-notice
// page list.
#include "src/proto/interval_log.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/small_vec.h"
#include "src/proto/interval.h"
#include "src/proto/vector_clock.h"

namespace hlrc {
namespace {

IntervalPtr MakeRecord(NodeId writer, uint32_t id, const VectorClock& vt,
                       std::initializer_list<PageId> pages) {
  IntervalRecord rec;
  rec.writer = writer;
  rec.id = id;
  rec.vt = vt;
  rec.pages = pages;
  rec.Seal();
  return std::make_shared<IntervalRecord>(std::move(rec));
}

// The representation this PR replaced: one global map keyed by (writer, id)
// with the receive-side skip/raise bookkeeping of ApplyIntervals, kept here
// as the differential oracle.
class ReferenceStore {
 public:
  explicit ReferenceStore(int nodes) : vt_(nodes) {}

  void Apply(const IntervalBatch& recs) {
    for (const IntervalPtr& rec : recs) {
      if (rec->id <= vt_.Get(rec->writer)) {
        continue;
      }
      intervals_[IntervalKey{rec->writer, rec->id}] = *rec;  // Deep copy.
      vt_.Set(rec->writer, rec->id);
    }
  }

  std::vector<IntervalRecord> PackFor(const VectorClock& vt) const {
    std::vector<IntervalRecord> out;
    for (const auto& [key, rec] : intervals_) {
      if (key.id > vt.Get(key.writer)) {
        out.push_back(rec);
      }
    }
    return out;
  }

  const IntervalRecord* Find(NodeId writer, uint32_t id) const {
    auto it = intervals_.find(IntervalKey{writer, id});
    return it == intervals_.end() ? nullptr : &it->second;
  }

  void Clear() { intervals_.clear(); }

  const VectorClock& vt() const { return vt_; }
  size_t size() const { return intervals_.size(); }

 private:
  VectorClock vt_;
  std::map<IntervalKey, IntervalRecord> intervals_;
};

// The node under test: IntervalLog plus the same vt bookkeeping.
class LogStore {
 public:
  explicit LogStore(int nodes) : vt_(nodes), log_(nodes) {}

  void Apply(const IntervalBatch& recs) {
    for (const IntervalPtr& rec : recs) {
      if (rec->id <= vt_.Get(rec->writer)) {
        continue;
      }
      log_.Append(rec);
      vt_.Set(rec->writer, rec->id);
    }
  }

  const IntervalLog& log() const { return log_; }
  void Clear() { log_.Clear(); }
  const VectorClock& vt() const { return vt_; }

 private:
  VectorClock vt_;
  IntervalLog log_;
};

void ExpectSamePack(const std::vector<IntervalRecord>& ref, const IntervalBatch& log) {
  ASSERT_EQ(ref.size(), log.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].writer, log[i]->writer) << "pack position " << i;
    EXPECT_EQ(ref[i].id, log[i]->id) << "pack position " << i;
    EXPECT_TRUE(ref[i].vt == log[i]->vt) << "pack position " << i;
    EXPECT_TRUE(ref[i].pages == log[i]->pages) << "pack position " << i;
    EXPECT_EQ(ref[i].EncodedSize(false), log[i]->EncodedSize(false));
    EXPECT_EQ(ref[i].EncodedSize(true), log[i]->EncodedSize(true));
  }
}

// One randomized protocol-shaped episode: writers close intervals (each
// writer's ids strictly increasing, its vt merging loose knowledge of the
// others), batches get delivered — sometimes twice, so the id <= vt[writer]
// skip path runs — packs for random receiver timestamps are compared, and
// barrier GC truncates both stores.
void RunEpisode(uint64_t seed) {
  constexpr int kNodes = 6;
  Rng rng(seed);
  ReferenceStore ref(kNodes);
  LogStore log(kNodes);

  // Per-writer global history, so a re-delivery replays the identical
  // records (as retransmission does).
  std::vector<std::vector<IntervalPtr>> history(kNodes);
  std::vector<VectorClock> writer_vt(kNodes, VectorClock(kNodes));

  const int ops = static_cast<int>(rng.NextInt(20, 60));
  for (int op = 0; op < ops; ++op) {
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // A writer closes a new interval.
        const NodeId w = static_cast<NodeId>(rng.NextBounded(kNodes));
        VectorClock& vt = writer_vt[static_cast<size_t>(w)];
        // Loosely observe the others, like lock hand-offs do.
        for (NodeId o = 0; o < kNodes; ++o) {
          if (o != w && rng.NextBool(0.3)) {
            const auto& h = history[static_cast<size_t>(o)];
            if (!h.empty() && vt.Get(o) < h.back()->id) {
              vt.Set(o, vt.Get(o) + 1);
            }
          }
        }
        vt.Bump(w);
        IntervalRecord rec;
        rec.writer = w;
        rec.id = vt.Get(w);
        rec.vt = vt;
        const int64_t pages = rng.NextInt(0, 12);
        for (int64_t i = 0; i < pages; ++i) {
          rec.pages.push_back(static_cast<PageId>(rng.NextBounded(256)));
        }
        rec.Seal();
        history[static_cast<size_t>(w)].push_back(
            std::make_shared<IntervalRecord>(std::move(rec)));
        break;
      }
      case 4:
      case 5:
      case 6: {  // Deliver a batch: a suffix of one writer's history,
                 // starting at or before what the node has seen.
        const NodeId w = static_cast<NodeId>(rng.NextBounded(kNodes));
        const auto& h = history[static_cast<size_t>(w)];
        if (h.empty()) {
          break;
        }
        const size_t from = rng.NextBounded(h.size());
        IntervalBatch batch(h.begin() + static_cast<int64_t>(from), h.end());
        ref.Apply(batch);
        log.Apply(batch);
        EXPECT_TRUE(ref.vt() == log.vt());
        break;
      }
      case 7:
      case 8: {  // Pack for a random receiver timestamp.
        VectorClock recv(kNodes);
        for (NodeId n = 0; n < kNodes; ++n) {
          recv.Set(n, static_cast<uint32_t>(
                          rng.NextBounded(writer_vt[static_cast<size_t>(n)].Get(n) + 2)));
        }
        ExpectSamePack(ref.PackFor(recv), log.log().PackFor(recv));
        break;
      }
      case 9: {  // Barrier GC: every record is now known everywhere.
        ref.Clear();
        log.Clear();
        EXPECT_TRUE(log.log().empty());
        break;
      }
    }
  }

  // Final full-content comparison: pack against the zero timestamp returns
  // everything either store holds, in the pinned order.
  const VectorClock zero(kNodes);
  ExpectSamePack(ref.PackFor(zero), log.log().PackFor(zero));
  EXPECT_EQ(ref.size(), static_cast<size_t>(log.log().size()));

  // Find agrees with the oracle on every surviving record.
  for (const IntervalRecord& rec : ref.PackFor(zero)) {
    const IntervalRecord* got = log.log().Find(rec.writer, rec.id);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->id, rec.id);
    EXPECT_TRUE(got->vt == rec.vt);
  }
}

TEST(IntervalLogDifferential, MatchesMapStoreAcross1000Episodes) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    RunEpisode(seed);
    if (HasFailure()) {
      FAIL() << "episode seed " << seed;
    }
  }
}

// The point of the refactor: packing for N receivers yields N handles to the
// SAME record — pointer-equal, not deep copies — and the log itself still
// holds it, so a barrier fan-out costs one record no matter the node count.
TEST(IntervalLog, FanOutSharesOneRecord) {
  VectorClock vt(4);
  vt.Set(1, 1);
  IntervalLog log(4);
  IntervalPtr rec = MakeRecord(1, 1, vt, {10, 11, 12});
  const IntervalRecord* raw = rec.get();
  log.Append(rec);

  const VectorClock zero(4);
  const IntervalBatch to_a = log.PackFor(zero);
  const IntervalBatch to_b = log.PackFor(zero);
  const IntervalBatch to_c = log.PackFor(zero);
  ASSERT_EQ(to_a.size(), 1u);
  EXPECT_EQ(to_a[0].get(), raw);
  EXPECT_EQ(to_b[0].get(), raw);
  EXPECT_EQ(to_c[0].get(), raw);
  // One owner in the log, one in `rec`, one per packed payload — and no
  // copies anywhere.
  EXPECT_EQ(rec.use_count(), 5);

  // Truncation drops the log's reference; in-flight payloads keep the record
  // alive until they are consumed.
  log.Clear();
  EXPECT_EQ(rec.use_count(), 4);
  EXPECT_EQ(to_a[0]->pages.size(), 3u);
}

// Published records are immutable: handles are shared_ptr<const ...>, and the
// sealed size cache answers for both encodings without recomputation.
TEST(IntervalLog, SealedRecordsCacheEncodedSizes) {
  VectorClock vt(8);
  vt.Set(3, 7);
  IntervalRecord rec;
  rec.writer = 3;
  rec.id = 7;
  rec.vt = vt;
  rec.pages = {1, 2, 3, 4, 5};
  EXPECT_FALSE(rec.sealed());
  const int64_t without_vt = rec.ComputeEncodedSize(false);
  const int64_t with_vt = rec.ComputeEncodedSize(true);
  EXPECT_EQ(without_vt, 8 + 5 * 4);
  EXPECT_EQ(with_vt, without_vt + vt.EncodedSize());
  // Unsealed records compute on the fly; sealed records answer from cache.
  EXPECT_EQ(rec.EncodedSize(false), without_vt);
  rec.Seal();
  EXPECT_TRUE(rec.sealed());
  EXPECT_EQ(rec.cached_size_without_vt, without_vt);
  EXPECT_EQ(rec.cached_size_with_vt, with_vt);
  EXPECT_EQ(rec.EncodedSize(false), without_vt);
  EXPECT_EQ(rec.EncodedSize(true), with_vt);
  static_assert(std::is_const_v<std::remove_reference_t<decltype(*std::declval<IntervalPtr>())>>,
                "published interval handles must be read-only");
}

TEST(IntervalLog, PackSkipsSeenPrefixesPerWriter) {
  IntervalLog log(3);
  for (uint32_t id = 1; id <= 4; ++id) {
    VectorClock vt(3);
    vt.Set(0, id);
    log.Append(MakeRecord(0, id, vt, {static_cast<PageId>(id)}));
  }
  VectorClock vt2(3);
  vt2.Set(2, 9);
  log.Append(MakeRecord(2, 9, vt2, {}));

  VectorClock recv(3);
  recv.Set(0, 2);  // Seen ids 1..2 of writer 0, nothing of writer 2.
  const IntervalBatch out = log.PackFor(recv);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0]->writer, 0);
  EXPECT_EQ(out[0]->id, 3u);
  EXPECT_EQ(out[1]->id, 4u);
  EXPECT_EQ(out[2]->writer, 2);
  EXPECT_EQ(out[2]->id, 9u);

  EXPECT_EQ(log.Find(0, 3)->id, 3u);
  EXPECT_EQ(log.Find(0, 5), nullptr);
  EXPECT_EQ(log.Find(1, 1), nullptr);
  EXPECT_EQ(log.Find(2, 9)->id, 9u);
}

TEST(IntervalLogDeathTest, RejectsNonMonotonicAppend) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  IntervalLog log(2);
  VectorClock vt(2);
  vt.Set(0, 5);
  log.Append(MakeRecord(0, 5, vt, {}));
  EXPECT_DEATH(log.Append(MakeRecord(0, 5, vt, {})), "monotonic|id");
  IntervalRecord unsealed;
  unsealed.writer = 1;
  unsealed.id = 1;
  unsealed.vt = VectorClock(2);
  EXPECT_DEATH(log.Append(std::make_shared<IntervalRecord>(std::move(unsealed))),
               "seal");
}

// ---------------------------------------------------------------------------
// SmallVec: the inline write-notice page list.

TEST(SmallVec, SpillsFromInlineToHeap) {
  SmallVec<PageId, 8> v;
  EXPECT_EQ(v.inline_capacity(), 8u);
  for (PageId p = 0; p < 8; ++p) {
    v.push_back(p);
  }
  EXPECT_EQ(v.capacity(), 8u);  // Still inline.
  v.push_back(8);               // Spill.
  EXPECT_GT(v.capacity(), 8u);
  for (PageId p = 9; p < 100; ++p) {
    v.push_back(p);
  }
  ASSERT_EQ(v.size(), 100u);
  for (PageId p = 0; p < 100; ++p) {
    EXPECT_EQ(v[static_cast<size_t>(p)], p);
  }
  EXPECT_EQ(v.back(), 99);
}

TEST(SmallVec, CopyAndMoveBothSidesOfTheSpill) {
  SmallVec<PageId, 4> small = {1, 2, 3};
  SmallVec<PageId, 4> big;
  for (PageId p = 0; p < 32; ++p) {
    big.push_back(p * 10);
  }

  SmallVec<PageId, 4> small_copy(small);
  SmallVec<PageId, 4> big_copy(big);
  EXPECT_TRUE(small_copy == small);
  EXPECT_TRUE(big_copy == big);

  SmallVec<PageId, 4> small_moved(std::move(small_copy));
  SmallVec<PageId, 4> big_moved(std::move(big_copy));
  EXPECT_TRUE(small_moved == small);
  EXPECT_TRUE(big_moved == big);
  EXPECT_EQ(small_copy.size(), 0u);
  EXPECT_EQ(big_copy.size(), 0u);

  big_moved = small;  // Heap state assigned from inline state.
  EXPECT_TRUE(big_moved == small);
  small_moved = big;  // And the reverse.
  EXPECT_TRUE(small_moved == big);

  small_moved.clear();
  EXPECT_EQ(small_moved.size(), 0u);
  EXPECT_FALSE(small_moved == big);
}

TEST(SmallVec, AssignAndIterate) {
  const std::vector<PageId> src = {7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  SmallVec<PageId, 8> v = {1};
  v.assign(src.begin(), src.end());
  ASSERT_EQ(v.size(), src.size());
  size_t i = 0;
  for (PageId p : v) {
    EXPECT_EQ(p, src[i++]);
  }
}

}  // namespace
}  // namespace hlrc

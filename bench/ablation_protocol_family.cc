// Ablation: the full protocol family — the paper's four (LRC, OLRC, HLRC,
// OHLRC) plus the two reconstructed relatives: ERC (eager update broadcast,
// the §1 "RC propagates updates on release" baseline) and AURC (the
// automatic-update hardware protocol HLRC was derived from, §2.2).
//
// Shapes to check: ERC collapses with node count (O(N) update messages per
// dirty page and releases that stall on acknowledgements) — the historical
// reason lazy protocols won; AURC tracks or beats HLRC in time (zero software
// update-detection cost) while moving more update bytes (write-through).
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.apps.size() == 5) {
    opts.apps = {"sor", "water-nsq"};
  }
  const ProtocolKind family[] = {ProtocolKind::kErc,  ProtocolKind::kLrc,
                                 ProtocolKind::kOlrc, ProtocolKind::kHlrc,
                                 ProtocolKind::kOhlrc, ProtocolKind::kAurc};

  std::printf("=== Ablation: protocol family (ERC vs LRC vs HLRC vs AURC) ===\n\n");
  for (const std::string& app : opts.apps) {
    const SimTime seq = SequentialTime(app, opts);
    Table table(app + " (T_seq = " + FmtSeconds(seq) + "s)");
    std::vector<std::string> header = {"Protocol"};
    for (int nodes : opts.node_counts) {
      header.push_back("Speedup/" + std::to_string(nodes));
    }
    header.push_back("Msgs/64");
    header.push_back("Update bytes/64");
    table.SetHeader(header);

    for (ProtocolKind kind : family) {
      std::vector<std::string> row = {ProtocolName(kind)};
      NodeReport last_totals;
      for (int nodes : opts.node_counts) {
        const AppRunResult r = RunVerified(app, opts, BaseConfig(opts, kind, nodes));
        row.push_back(Table::Fmt(
            static_cast<double>(seq) / static_cast<double>(r.report.total_time), 2));
        last_totals = r.report.Totals();
        std::fflush(stdout);
      }
      row.push_back(Table::Fmt(last_totals.traffic.msgs_sent));
      row.push_back(Table::FmtBytes(last_totals.traffic.update_bytes_sent));
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

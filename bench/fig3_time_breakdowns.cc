// Reproduces paper Figure 3: average per-node execution-time breakdowns
// (computation, data transfer, lock, barrier, garbage collection, protocol
// overhead) for all four protocols, printed as stacked percentage tables plus
// ASCII bars. With --causal, each table gains a companion built from the
// causal span DAG instead of flat counters: the per-category critical-path
// attribution of every blocking operation's wait (svmtrace's critpath sweep),
// telling not just how long nodes waited but what the waits were made of.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/tracing/critpath.h"
#include "src/tracing/span.h"

namespace hlrc {
namespace bench {
namespace {

std::string Bar(double frac, int width = 40) {
  const int n = static_cast<int>(frac * width + 0.5);
  std::string s(static_cast<size_t>(n), '#');
  return s;
}

// RunVerified with the span tracer attached (tracing is pure observation, so
// the run matches the counter table's run exactly) → critical-path summary.
CritPathSummary RunCausal(const std::string& app_name, const BenchOptions& opts,
                          const SimConfig& cfg) {
  std::unique_ptr<App> app = MakeApp(app_name, opts.scale);
  System sys(cfg);
  sys.EnableSpans(1 << 22);
  app->Setup(sys);
  sys.Run(app->Program());
  if (opts.verify) {
    std::string why;
    HLRC_CHECK_MSG(app->Verify(sys, &why), "%s failed verification under %s at %d nodes: %s",
                   app_name.c_str(), ProtocolName(cfg.protocol.kind), cfg.nodes, why.c_str());
  }
  return AttributeCriticalPaths(sys.spans()->spans());
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.node_counts.size() == 3 && opts.node_counts[0] == 8) {
    opts.node_counts = {8, 32};  // Figure 3 shows 8 and 32/64-node runs.
  }

  std::printf("=== Figure 3: Execution time breakdowns (average per node) ===\n");

  for (const std::string& app : opts.apps) {
    for (int nodes : opts.node_counts) {
      std::printf("\n--- %s, %d nodes ---\n", app.c_str(), nodes);
      Table table("");
      table.SetHeader({"Protocol", "Total(s)", "Compute", "Data", "Lock", "Barrier", "GC",
                       "Protocol", "Bar (compute fraction)"});
      for (ProtocolKind kind : opts.protocols) {
        const AppRunResult r = RunVerified(app, opts, BaseConfig(opts, kind, nodes));
        const NodeReport avg = r.report.Average();
        const double total = static_cast<double>(r.report.total_time);
        auto pct = [&](SimTime t) {
          return Table::Fmt(100.0 * static_cast<double>(t) / total, 1) + "%";
        };
        table.AddRow({ProtocolName(kind), FmtSeconds(r.report.total_time),
                      pct(avg.Computation()), pct(avg.DataTransfer()), pct(avg.LockTime()),
                      pct(avg.BarrierTime()), pct(avg.GcTime()), pct(avg.ProtocolOverhead()),
                      Bar(static_cast<double>(avg.Computation()) / total)});
        std::fflush(stdout);
      }
      table.Print();

      if (opts.causal) {
        Table causal("Critical-path attribution of blocking waits (causal spans)");
        std::vector<std::string> header = {"Protocol", "Wait(s)"};
        for (size_t c = 0; c < kCritCatCount; ++c) {
          header.push_back(CritCatName(static_cast<CritCat>(c)));
        }
        causal.SetHeader(header);
        for (ProtocolKind kind : opts.protocols) {
          const CritPathSummary sum = RunCausal(app, opts, BaseConfig(opts, kind, nodes));
          std::vector<std::string> row = {ProtocolName(kind), FmtSeconds(sum.total_wait)};
          for (size_t c = 0; c < kCritCatCount; ++c) {
            const double frac = sum.total_wait > 0
                                    ? 100.0 * static_cast<double>(sum.total[c]) /
                                          static_cast<double>(sum.total_wait)
                                    : 0.0;
            row.push_back(Table::Fmt(frac, 1) + "%");
          }
          causal.AddRow(row);
          std::fflush(stdout);
        }
        causal.Print();
      }
    }
  }
  std::printf(
      "\nPaper §4.5 shapes: home-based protocols cut lock/barrier wait, data transfer\n"
      "time and protocol overhead; synchronization dominates the total overhead; GC\n"
      "appears only under the homeless protocols.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

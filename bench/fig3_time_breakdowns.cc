// Reproduces paper Figure 3: average per-node execution-time breakdowns
// (computation, data transfer, lock, barrier, garbage collection, protocol
// overhead) for all four protocols, printed as stacked percentage tables plus
// ASCII bars.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

std::string Bar(double frac, int width = 40) {
  const int n = static_cast<int>(frac * width + 0.5);
  std::string s(static_cast<size_t>(n), '#');
  return s;
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.node_counts.size() == 3 && opts.node_counts[0] == 8) {
    opts.node_counts = {8, 32};  // Figure 3 shows 8 and 32/64-node runs.
  }

  std::printf("=== Figure 3: Execution time breakdowns (average per node) ===\n");

  for (const std::string& app : opts.apps) {
    for (int nodes : opts.node_counts) {
      std::printf("\n--- %s, %d nodes ---\n", app.c_str(), nodes);
      Table table("");
      table.SetHeader({"Protocol", "Total(s)", "Compute", "Data", "Lock", "Barrier", "GC",
                       "Protocol", "Bar (compute fraction)"});
      for (ProtocolKind kind : opts.protocols) {
        const AppRunResult r = RunVerified(app, opts, BaseConfig(opts, kind, nodes));
        const NodeReport avg = r.report.Average();
        const double total = static_cast<double>(r.report.total_time);
        auto pct = [&](SimTime t) {
          return Table::Fmt(100.0 * static_cast<double>(t) / total, 1) + "%";
        };
        table.AddRow({ProtocolName(kind), FmtSeconds(r.report.total_time),
                      pct(avg.Computation()), pct(avg.DataTransfer()), pct(avg.LockTime()),
                      pct(avg.BarrierTime()), pct(avg.GcTime()), pct(avg.ProtocolOverhead()),
                      Bar(static_cast<double>(avg.Computation()) / total)});
        std::fflush(stdout);
      }
      table.Print();
    }
  }
  std::printf(
      "\nPaper §4.5 shapes: home-based protocols cut lock/barrier wait, data transfer\n"
      "time and protocol overhead; synchronization dominates the total overhead; GC\n"
      "appears only under the homeless protocols.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

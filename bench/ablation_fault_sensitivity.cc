// Ablation: protocol sensitivity to an unreliable interconnect. The paper's
// runs assume lossless messaging; here each protocol family runs over the
// fault-injected fabric (docs/FAULTS.md) with the reliable-delivery layer
// recovering drops, and we measure the slowdown versus a clean network.
//
// Expected shape: homeless LRC — many small point-to-point messages and
// per-writer round trips — exposes more frames to loss than home-based HLRC,
// but a single dropped message only stalls the requester until the retry
// timer fires, so slowdown ~ drop_rate * retry_timeout * message_count.
// AURC's write-through streams give it the largest frame count and hence the
// most retransmissions.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.apps.size() == 5) {
    opts.apps = {"sor", "lu"};  // The issue's acceptance pair.
  }
  const int nodes = opts.node_counts.back();
  const double drop_rates[] = {0.0, 0.001, 0.01, 0.05};
  const ProtocolKind kinds[] = {ProtocolKind::kLrc, ProtocolKind::kErc,
                                ProtocolKind::kHlrc, ProtocolKind::kAurc};

  std::printf("=== Ablation: fault sensitivity (%d nodes, fault seed %llu) ===\n\n",
              nodes, static_cast<unsigned long long>(opts.fault_seed));
  Table table("");
  table.SetHeader({"Application", "Protocol", "Drop rate", "Time(s)", "Slowdown",
                   "Msgs", "Retransmits", "Acks"});
  for (const std::string& app : opts.apps) {
    for (ProtocolKind kind : kinds) {
      SimTime clean_time = 0;
      for (double drop : drop_rates) {
        SimConfig cfg = BaseConfig(opts, kind, nodes);
        if (drop > 0) {
          cfg.fault.drop_prob = drop;
          cfg.fault.seed = opts.fault_seed;
          cfg.reliability.enabled = true;
        }
        const AppRunResult result = RunVerified(app, opts, cfg);
        const NodeReport totals = result.report.Totals();
        if (drop == 0.0) {
          clean_time = result.report.total_time;
        }
        char rate[16];
        std::snprintf(rate, sizeof(rate), "%.1f%%", drop * 100.0);
        table.AddRow({app, ProtocolName(kind), rate,
                      FmtSeconds(result.report.total_time),
                      Table::Fmt(static_cast<double>(result.report.total_time) /
                                     static_cast<double>(clean_time),
                                 2),
                      Table::Fmt(totals.traffic.msgs_sent),
                      Table::Fmt(totals.traffic.msgs_retransmitted),
                      Table::Fmt(totals.traffic.acks_sent)});
        std::fflush(stdout);
      }
      table.AddSeparator();
    }
  }
  table.Print();
  std::printf(
      "\nShape to check: every protocol still verifies at every drop rate (the\n"
      "reliable channel restores exactly-once in-order delivery), and slowdown\n"
      "grows with drop rate roughly in proportion to each protocol's message\n"
      "count — message-hungry homeless LRC and write-through AURC degrade\n"
      "fastest; HLRC's one-round-trip-per-miss profile is the most tolerant.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// Ablation: sensitivity of the home-based protocols to home placement
// (paper §2.2: "page faults can be reduced if homes are chosen
// intelligently"). Block placement aligns homes with each application's
// partitioning; round-robin scatters them; single-node is the worst case.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  const int nodes = opts.node_counts.size() > 1 ? opts.node_counts[1] : opts.node_counts[0];

  std::printf("=== Ablation: home placement policy (HLRC, %d nodes) ===\n\n", nodes);
  Table table("");
  table.SetHeader({"Application", "Policy", "Time(s)", "Read misses/node", "Diffs/node",
                   "Update traffic"});
  for (const std::string& app : opts.apps) {
    for (int variant = 0; variant < 4; ++variant) {
      BenchOptions o = opts;
      std::string label;
      bool migrate = false;
      switch (variant) {
        case 0:
          o.home_policy = HomePolicy::kBlock;
          label = "block";
          break;
        case 1:
          o.home_policy = HomePolicy::kRoundRobin;
          label = "round-robin";
          break;
        case 2:
          o.home_policy = HomePolicy::kSingleNode;
          label = "single-node";
          break;
        case 3:
          o.home_policy = HomePolicy::kSingleNode;
          label = "single-node + migration";
          migrate = true;
          break;
      }
      SimConfig cfg = BaseConfig(o, ProtocolKind::kHlrc, nodes);
      cfg.protocol.migrate_homes = migrate;
      const AppRunResult r = RunVerified(app, o, cfg);
      const NodeReport avg = r.report.Average();
      table.AddRow({app, label, FmtSeconds(r.report.total_time),
                    Table::Fmt(avg.proto.read_misses), Table::Fmt(avg.proto.diffs_created),
                    Table::FmtBytes(r.report.Totals().traffic.update_bytes_sent)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nShape to check: block placement (homes aligned with the writer partitioning)\n"
      "minimizes diffs and misses — the paper's home effect; single-node homes\n"
      "serialize all updates through one node.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

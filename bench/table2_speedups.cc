// Reproduces paper Table 2: speedups of the five applications under LRC,
// OLRC, HLRC and OHLRC on 8, 32 and 64 nodes.
//
// Speedup = sequential (uniprocessor compute) time / parallel virtual time.
// Absolute values depend on the compute calibration; the paper-relevant
// shapes are (a) home-based >> homeless, (b) the gap grows with node count,
// (c) overlapping adds a modest extra improvement.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);

  std::printf("=== Table 2: Speedups on the simulated Paragon ===\n");
  std::printf("scale=%s page=%lld home=%s\n\n",
              opts.scale == AppScale::kPaper
                  ? "paper"
                  : (opts.scale == AppScale::kTiny ? "tiny" : "default"),
              static_cast<long long>(opts.page_size), HomePolicyName(opts.home_policy));

  Table table("Speedups (T_seq / T_parallel)");
  std::vector<std::string> header = {"Application", "T_seq(s)"};
  for (int nodes : opts.node_counts) {
    for (ProtocolKind kind : opts.protocols) {
      header.push_back(std::string(ProtocolName(kind)) + "/" + std::to_string(nodes));
    }
  }
  table.SetHeader(header);

  // Every data point is an isolated simulation, so the full grid fans out
  // through ParallelMap and the table/JSON emission below walks the results
  // in the original order — output is byte-identical at any --jobs count.
  const int apps_n = static_cast<int>(opts.apps.size());
  const std::vector<SimTime> seq_times = ParallelMap<SimTime>(
      apps_n, opts.jobs, [&](int i) { return SequentialTime(opts.apps[static_cast<size_t>(i)], opts); });

  struct Cell {
    std::string app;
    int nodes = 0;
    ProtocolKind kind = ProtocolKind::kLrc;
    SimTime seq = 0;
  };
  std::vector<Cell> cells;
  for (int a = 0; a < apps_n; ++a) {
    for (int nodes : opts.node_counts) {
      for (ProtocolKind kind : opts.protocols) {
        cells.push_back({opts.apps[static_cast<size_t>(a)], nodes, kind,
                         seq_times[static_cast<size_t>(a)]});
      }
    }
  }
  const std::vector<AppRunResult> runs = ParallelMap<AppRunResult>(
      static_cast<int>(cells.size()), opts.jobs, [&](int i) {
        const Cell& c = cells[static_cast<size_t>(i)];
        return RunVerified(c.app, opts, BaseConfig(opts, c.kind, c.nodes));
      });

  BenchJson json("table2_speedups");
  size_t cell = 0;
  for (int a = 0; a < apps_n; ++a) {
    const std::string& app = opts.apps[static_cast<size_t>(a)];
    const SimTime seq = seq_times[static_cast<size_t>(a)];
    std::vector<std::string> row = {app, FmtSeconds(seq)};
    for (int nodes : opts.node_counts) {
      for (ProtocolKind kind : opts.protocols) {
        const AppRunResult& r = runs[cell++];
        const double speedup =
            static_cast<double>(seq) / static_cast<double>(r.report.total_time);
        row.push_back(Table::Fmt(speedup, 2));
        json.BeginRow();
        json.Add("app", app);
        json.Add("protocol", ProtocolName(kind));
        json.Add("nodes", nodes);
        json.Add("seq_s", ToSeconds(seq));
        json.Add("time_s", ToSeconds(r.report.total_time));
        json.Add("speedup", speedup);
        json.EndRow();
      }
    }
    table.AddRow(row);
  }
  table.Print();
  if (!opts.json_out.empty()) {
    json.WriteFile(opts.json_out);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

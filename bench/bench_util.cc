#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/metrics/json_writer.h"

namespace hlrc {
namespace bench {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

ProtocolKind ParseProtocol(const std::string& s) {
  if (s == "lrc") {
    return ProtocolKind::kLrc;
  }
  if (s == "olrc") {
    return ProtocolKind::kOlrc;
  }
  if (s == "hlrc") {
    return ProtocolKind::kHlrc;
  }
  if (s == "ohlrc") {
    return ProtocolKind::kOhlrc;
  }
  if (s == "erc") {
    return ProtocolKind::kErc;
  }
  if (s == "aurc") {
    return ProtocolKind::kAurc;
  }
  HLRC_CHECK_MSG(false, "unknown protocol '%s'", s.c_str());
  return ProtocolKind::kLrc;
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes=8,32,64] [--scale=tiny|default|paper]\n"
               "          [--apps=lu,sor,water-nsq,water-sp,raytrace]\n"
               "          [--protocols=lrc,olrc,hlrc,ohlrc] [--page-size=N]\n"
               "          [--home=block|round-robin|single-node] [--no-verify]\n"
               "          [--fault-drop=P] [--fault-seed=N] [--json=FILE] [--jobs=N]\n"
               "          [--causal] [--reliable] [--coalesce] [--barrier-arity=N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--nodes=", 0) == 0) {
      opts.node_counts.clear();
      for (const std::string& n : Split(value("--nodes="), ',')) {
        opts.node_counts.push_back(std::atoi(n.c_str()));
      }
    } else if (arg.rfind("--scale=", 0) == 0) {
      const std::string v = value("--scale=");
      if (v == "tiny") {
        opts.scale = AppScale::kTiny;
      } else if (v == "default") {
        opts.scale = AppScale::kDefault;
      } else if (v == "paper") {
        opts.scale = AppScale::kPaper;
      } else {
        Usage(argv[0]);
      }
    } else if (arg.rfind("--apps=", 0) == 0) {
      opts.apps = Split(value("--apps="), ',');
    } else if (arg.rfind("--protocols=", 0) == 0) {
      opts.protocols.clear();
      for (const std::string& p : Split(value("--protocols="), ',')) {
        opts.protocols.push_back(ParseProtocol(p));
      }
    } else if (arg.rfind("--page-size=", 0) == 0) {
      opts.page_size = std::atoll(value("--page-size=").c_str());
    } else if (arg.rfind("--home=", 0) == 0) {
      const std::string v = value("--home=");
      if (v == "block") {
        opts.home_policy = HomePolicy::kBlock;
      } else if (v == "round-robin") {
        opts.home_policy = HomePolicy::kRoundRobin;
      } else if (v == "single-node") {
        opts.home_policy = HomePolicy::kSingleNode;
      } else {
        Usage(argv[0]);
      }
    } else if (arg.rfind("--fault-drop=", 0) == 0) {
      opts.fault_drop = std::atof(value("--fault-drop=").c_str());
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      opts.fault_seed = static_cast<uint64_t>(
          std::strtoull(value("--fault-seed=").c_str(), nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      opts.json_out = value("--json=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opts.jobs = std::atoi(value("--jobs=").c_str());
    } else if (arg == "--causal") {
      opts.causal = true;
    } else if (arg == "--reliable") {
      opts.reliable = true;
    } else if (arg == "--coalesce") {
      opts.coalesce = true;
    } else if (arg.rfind("--barrier-arity=", 0) == 0) {
      opts.barrier_arity = std::atoi(value("--barrier-arity=").c_str());
    } else if (arg == "--no-verify") {
      opts.verify = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (opts.apps.empty()) {
    opts.apps = AppNames();
  }
  return opts;
}

SimConfig BaseConfig(const BenchOptions& opts, ProtocolKind kind, int nodes) {
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.page_size = opts.page_size;
  cfg.shared_bytes = 256ll << 20;  // Mirrors are lazily backed; size generously.
  cfg.protocol.kind = kind;
  cfg.protocol.home_policy = opts.home_policy;
  if (opts.fault_drop > 0) {
    cfg.fault.drop_prob = opts.fault_drop;
    cfg.fault.seed = opts.fault_seed;
    cfg.reliability.enabled = true;
  }
  if (opts.reliable) {
    cfg.reliability.enabled = true;
  }
  if (opts.coalesce) {
    cfg.network.coalesce = true;
    cfg.protocol.coalesce = true;
    cfg.reliability.piggyback_acks = cfg.reliability.enabled;
  }
  cfg.protocol.barrier_arity = opts.barrier_arity;
  return cfg;
}

AppRunResult RunVerified(const std::string& app_name, const BenchOptions& opts,
                         const SimConfig& cfg) {
  auto app = MakeApp(app_name, opts.scale);
  AppRunResult result = RunApp(*app, cfg);
  if (opts.verify) {
    HLRC_CHECK_MSG(result.verified, "%s failed verification under %s at %d nodes: %s",
                   app_name.c_str(), ProtocolName(cfg.protocol.kind), cfg.nodes,
                   result.why.c_str());
  }
  return result;
}

SimTime SequentialTime(const std::string& app_name, const BenchOptions& opts) {
  const SimConfig cfg = BaseConfig(opts, ProtocolKind::kHlrc, 1);
  const AppRunResult result = RunVerified(app_name, opts, cfg);
  // Pure computation: what a uniprocessor (no SVM) would take.
  return result.report.nodes[0].cpu_busy.Get(BusyCat::kCompute);
}

std::string FmtSeconds(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ToSeconds(t));
  return buf;
}

void BenchJson::BeginRow() {
  HLRC_CHECK_MSG(!in_row_, "BeginRow without EndRow");
  rows_.emplace_back();
  in_row_ = true;
}

void BenchJson::Add(const std::string& key, const std::string& v) {
  HLRC_CHECK_MSG(in_row_, "Add outside BeginRow/EndRow");
  rows_.back().push_back({Field::Kind::kString, key, v, 0, 0.0});
}

void BenchJson::Add(const std::string& key, const char* v) { Add(key, std::string(v)); }

void BenchJson::Add(const std::string& key, int64_t v) {
  HLRC_CHECK_MSG(in_row_, "Add outside BeginRow/EndRow");
  rows_.back().push_back({Field::Kind::kInt, key, "", v, 0.0});
}

void BenchJson::Add(const std::string& key, double v) {
  HLRC_CHECK_MSG(in_row_, "Add outside BeginRow/EndRow");
  rows_.back().push_back({Field::Kind::kDouble, key, "", 0, v});
}

void BenchJson::EndRow() {
  HLRC_CHECK_MSG(in_row_, "EndRow without BeginRow");
  in_row_ = false;
}

std::string BenchJson::ToJson() const {
  HLRC_CHECK_MSG(!in_row_, "ToJson with an open row");
  JsonWriter w;
  w.BeginObject();
  w.KV("schema", "hlrc-bench");
  w.KV("version", static_cast<int64_t>(1));
  w.KV("bench", bench_name_);
  w.Key("rows");
  w.BeginArray();
  for (const std::vector<Field>& row : rows_) {
    w.BeginObject();
    for (const Field& f : row) {
      switch (f.kind) {
        case Field::Kind::kString:
          w.KV(f.key, f.s);
          break;
        case Field::Kind::kInt:
          w.KV(f.key, f.i);
          break;
        case Field::Kind::kDouble:
          w.KV(f.key, f.d);
          break;
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void BenchJson::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  HLRC_CHECK_MSG(f != nullptr, "cannot open %s for writing", path.c_str());
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  HLRC_CHECK_MSG(std::fclose(f) == 0 && n == json.size(), "short write to %s", path.c_str());
  std::printf("results written to %s\n", path.c_str());
}

}  // namespace bench
}  // namespace hlrc

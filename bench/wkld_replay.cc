// Workload capture/replay benchmark (docs/WORKLOADS.md).
//
// Part 1 — fidelity: each application is recorded once (with the trace
// recorder attached) and then replayed from the trace file under the same
// protocol. The replay must land on the identical virtual time and message
// count — the whole point of a trace is that it stands in for the app — and
// the table shows the trace-file cost of that fidelity (size on disk, bytes
// per simulated second).
//
// Part 2 — workload characterization: the six synthetic sharing patterns are
// replayed under each protocol family, the capture/replay counterpart of
// table1_applications. Patterns are where protocols separate: single-writer
// barely stresses anything, migratory is lock-ping-pong, false sharing is the
// diff machinery's best case and a write-through protocol's worst.
#include <cstdio>
#include <sys/stat.h>

#include <string>

#include "bench/bench_util.h"
#include "src/wkld/recorder.h"
#include "src/wkld/replay.h"
#include "src/wkld/synth.h"
#include "src/wkld/trace_file.h"

namespace hlrc {
namespace bench {
namespace {

int64_t FileBytes(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size) : -1;
}

std::string TracePath(const std::string& tag) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/wkld_replay_" + tag + ".wkld";
}

struct RunSig {
  SimTime time = 0;
  int64_t msgs = 0;
  int64_t update_bytes = 0;

  bool operator==(const RunSig& o) const {
    return time == o.time && msgs == o.msgs && update_bytes == o.update_bytes;
  }
};

RunSig Sig(const RunReport& report) {
  const NodeReport t = report.Totals();
  return RunSig{report.total_time, t.traffic.msgs_sent, t.traffic.update_bytes_sent};
}

RunSig RecordApp(const std::string& app_name, const BenchOptions& opts,
                 const SimConfig& cfg, const std::string& path) {
  std::unique_ptr<App> app = MakeApp(app_name, opts.scale);
  System sys(cfg);
  wkld::TraceWriter writer(path, wkld::MakeTraceInfo(cfg, app->name(), "bench"));
  wkld::TraceRecorder recorder(&sys, &writer);
  sys.SetWorkloadObserver(&recorder);
  app->Setup(sys);
  sys.Run(app->Program());
  writer.Finish();
  std::string why;
  if (!app->Verify(sys, &why)) {
    std::fprintf(stderr, "%s failed verification while recording: %s\n",
                 app_name.c_str(), why.c_str());
    std::exit(1);
  }
  return Sig(sys.report());
}

RunSig Replay(const std::string& path, const SimConfig& cfg) {
  std::string error;
  std::unique_ptr<wkld::TraceReplayApp> app = wkld::TraceReplayApp::Open(path, &error);
  if (app == nullptr) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(), error.c_str());
    std::exit(1);
  }
  System sys(cfg);
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  if (!app->Verify(sys, &why)) {
    std::fprintf(stderr, "replay of %s failed verification: %s\n", path.c_str(),
                 why.c_str());
    std::exit(1);
  }
  return Sig(sys.report());
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  const int nodes = opts.node_counts.front();
  BenchJson json("wkld_replay");

  std::printf("=== Workload capture/replay (nodes=%d) ===\n\n", nodes);

  Table fidelity("Record -> replay fidelity (HLRC)");
  fidelity.SetHeader({"App", "T_direct", "T_replay", "Match", "Trace", "Msgs"});
  for (const std::string& app : opts.apps) {
    const SimConfig cfg = BaseConfig(opts, ProtocolKind::kHlrc, nodes);
    const std::string path = TracePath(app);
    const RunSig direct = RecordApp(app, opts, cfg, path);
    const RunSig replayed = Replay(path, cfg);
    const int64_t bytes = FileBytes(path);
    fidelity.AddRow({app, FmtSeconds(direct.time), FmtSeconds(replayed.time),
                     direct == replayed ? "exact" : "DRIFT", Table::FmtBytes(bytes),
                     Table::Fmt(direct.msgs)});
    json.BeginRow();
    json.Add("section", "fidelity");
    json.Add("app", app);
    json.Add("nodes", nodes);
    json.Add("time_direct", direct.time);
    json.Add("time_replay", replayed.time);
    json.Add("exact", direct == replayed ? 1 : 0);
    json.Add("trace_bytes", bytes);
    json.EndRow();
    std::remove(path.c_str());
    std::fflush(stdout);
  }
  fidelity.Print();
  std::printf("\n");

  Table patterns("Synthetic sharing patterns: virtual time by protocol");
  std::vector<std::string> header = {"Pattern"};
  for (ProtocolKind kind : opts.protocols) {
    header.push_back(ProtocolName(kind));
  }
  header.push_back("Msgs/" + std::string(ProtocolName(opts.protocols.back())));
  patterns.SetHeader(header);
  for (const std::string& name : wkld::SynthPatternNames()) {
    wkld::SynthPattern pattern;
    wkld::ParseSynthPattern(name, &pattern);
    wkld::SynthConfig scfg;
    scfg.pattern = pattern;
    scfg.nodes = nodes;
    std::vector<std::string> row = {name};
    RunSig last;
    for (ProtocolKind kind : opts.protocols) {
      std::unique_ptr<App> app = wkld::MakeSyntheticApp(scfg);
      const SimConfig cfg = BaseConfig(opts, kind, nodes);
      const AppRunResult r = RunApp(*app, cfg);
      if (!r.verified) {
        std::fprintf(stderr, "synth-%s failed under %s: %s\n", name.c_str(),
                     ProtocolName(kind), r.why.c_str());
        std::exit(1);
      }
      last = Sig(r.report);
      row.push_back(FmtSeconds(last.time));
      json.BeginRow();
      json.Add("section", "synthetic");
      json.Add("pattern", name);
      json.Add("protocol", ProtocolName(kind));
      json.Add("nodes", nodes);
      json.Add("time", last.time);
      json.Add("msgs", last.msgs);
      json.Add("update_bytes", last.update_bytes);
      json.EndRow();
      std::fflush(stdout);
    }
    row.push_back(Table::Fmt(last.msgs));
    patterns.AddRow(row);
  }
  patterns.Print();

  if (!opts.json_out.empty()) {
    json.WriteFile(opts.json_out);
    std::printf("\nJSON results written to %s\n", opts.json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

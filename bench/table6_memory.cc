// Reproduces paper Table 6: protocol memory requirements of LRC vs HLRC as a
// fraction of application memory, per node count.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);

  std::printf("=== Table 6: Protocol memory (per-node high-water mark) ===\n\n");
  Table table("");
  table.SetHeader({"Application", "Nodes", "App memory", "LRC proto mem", "LRC %app",
                   "LRC intv meta", "HLRC proto mem", "HLRC %app", "HLRC intv meta",
                   "LRC GCs"});

  for (const std::string& app : opts.apps) {
    for (int nodes : opts.node_counts) {
      const AppRunResult lrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kLrc, nodes));
      const AppRunResult hlrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kHlrc, nodes));
      const NodeReport al = lrc.report.Average();
      const NodeReport ah = hlrc.report.Average();
      const double app_mem = static_cast<double>(lrc.report.app_memory_bytes);
      const NodeReport tl = lrc.report.Totals();
      table.AddRow(
          {app, Table::Fmt(static_cast<int64_t>(nodes)),
           Table::FmtBytes(lrc.report.app_memory_bytes),
           Table::FmtBytes(al.proto_mem_highwater),
           Table::Fmt(100.0 * static_cast<double>(al.proto_mem_highwater) / app_mem, 1),
           Table::FmtBytes(al.proto.interval_meta_highwater),
           Table::FmtBytes(ah.proto_mem_highwater),
           Table::Fmt(100.0 * static_cast<double>(ah.proto_mem_highwater) / app_mem, 1),
           Table::FmtBytes(ah.proto.interval_meta_highwater),
           Table::Fmt(tl.proto.gc_runs)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nPaper §4.7 shapes: homeless protocol memory is a large multiple of application\n"
      "memory (diffs + write notices with full vector timestamps, kept until GC) and\n"
      "grows with node count; home-based protocol memory is a few percent and shrinks.\n"
      "The 'intv meta' columns isolate the interval-record bytes held in the shared\n"
      "interval log (docs/PERFORMANCE.md, metadata fast path) from diffs and twins.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

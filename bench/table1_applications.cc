// Reproduces paper Table 1: benchmark applications, problem sizes, and
// sequential execution times (virtual uniprocessor time under the i860
// compute calibration).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/lu.h"
#include "src/apps/raytrace.h"
#include "src/apps/sor.h"
#include "src/apps/water_nsquared.h"
#include "src/apps/water_spatial.h"

namespace hlrc {
namespace bench {
namespace {

std::string ProblemSize(const std::string& name, AppScale scale) {
  auto app = MakeApp(name, scale);
  if (name == "lu") {
    const auto& cfg = static_cast<LuApp*>(app.get())->config();
    return std::to_string(cfg.n) + "x" + std::to_string(cfg.n) + ", block " +
           std::to_string(cfg.block);
  }
  if (name == "sor") {
    const auto& cfg = static_cast<SorApp*>(app.get())->config();
    return std::to_string(cfg.rows) + "x" + std::to_string(cfg.cols) + ", " +
           std::to_string(cfg.iterations) + " iters";
  }
  if (name == "water-nsq") {
    const auto& cfg = static_cast<WaterNsqApp*>(app.get())->config();
    return std::to_string(cfg.molecules) + " molecules, " + std::to_string(cfg.steps) +
           " steps";
  }
  if (name == "water-sp") {
    const auto& cfg = static_cast<WaterSpApp*>(app.get())->config();
    return std::to_string(cfg.molecules) + " molecules, " + std::to_string(cfg.cells) + "^3 cells";
  }
  const auto& cfg = static_cast<RaytraceApp*>(app.get())->config();
  return std::to_string(cfg.width) + "x" + std::to_string(cfg.height) + ", " +
         std::to_string(cfg.spheres) + " spheres";
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  std::printf("=== Table 1: Applications, problem sizes, sequential times ===\n\n");
  Table table("");
  table.SetHeader({"Application", "Problem size", "Sequential time (virtual s)"});
  for (const std::string& app : opts.apps) {
    table.AddRow({app, ProblemSize(app, opts.scale), FmtSeconds(SequentialTime(app, opts))});
  }
  table.Print();
  std::printf(
      "\nNote: the paper's problems (Table 1) ran ~1000-2000s sequential on a 50 MHz\n"
      "i860; these are scaled-down defaults with the same sharing patterns. Run with\n"
      "--scale=paper for the paper's sizes.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// Wall-clock throughput of the schedule-exploration checker (src/check):
// seeds/second per (litmus, protocol) pair. Not a paper table — this bounds
// how many schedules a CI budget can explore (docs/CHECKING.md).
//
//   check_throughput [--seeds=N] [--nodes=N] [--rounds=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/litmus.h"
#include "src/check/explorer.h"
#include "src/common/check.h"

namespace hlrc {
namespace {

int Main(int argc, char** argv) {
  int seeds = 50;
  int nodes = 4;
  int rounds = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::atoi(arg.c_str() + std::strlen("--seeds="));
    } else if (arg.rfind("--nodes=", 0) == 0) {
      nodes = std::atoi(arg.c_str() + std::strlen("--nodes="));
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(arg.c_str() + std::strlen("--rounds="));
    } else {
      std::fprintf(stderr, "usage: check_throughput [--seeds=N] [--nodes=N] [--rounds=N]\n");
      return 2;
    }
  }

  const ProtocolKind kProtocols[] = {ProtocolKind::kLrc, ProtocolKind::kErc,
                                     ProtocolKind::kHlrc, ProtocolKind::kAurc};
  std::printf("%-22s %-6s %10s %12s %14s\n", "litmus", "proto", "seeds/s", "reads/seed",
              "sim-events/seed");
  double total_seeds = 0, total_secs = 0;
  for (const std::string& litmus : LitmusNames()) {
    for (ProtocolKind protocol : kProtocols) {
      CheckConfig cfg;
      cfg.litmus = litmus;
      cfg.protocol = protocol;
      cfg.nodes = nodes;
      cfg.rounds = rounds;
      int64_t reads = 0, events = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int s = 0; s < seeds; ++s) {
        cfg.seed = static_cast<uint64_t>(s) + 1;
        const CheckResult r = RunOne(cfg);
        HLRC_CHECK_MSG(r.ok, "oracle violation during throughput bench");
        reads += r.reads_checked;
        events += r.events;
      }
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      std::printf("%-22s %-6s %10.0f %12lld %14lld\n", litmus.c_str(), ProtocolName(protocol),
                  seeds / secs, static_cast<long long>(reads / seeds),
                  static_cast<long long>(events / seeds));
      total_seeds += seeds;
      total_secs += secs;
    }
  }
  std::printf("overall: %.0f seeds/s\n", total_seeds / total_secs);
  return 0;
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

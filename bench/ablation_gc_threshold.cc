// Ablation: garbage-collection threshold for the homeless protocols. A small
// threshold collects often (time overhead, extra page fetches after copies
// are dropped); a large one lets diffs and write notices accumulate (memory
// overhead). Home-based protocols need no GC at all (paper §3.5).
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.apps.size() == 5) {
    opts.apps = {"lu", "water-nsq"};
  }
  const int nodes = opts.node_counts.size() > 1 ? opts.node_counts[1] : opts.node_counts[0];

  std::printf("=== Ablation: LRC garbage-collection threshold (%d nodes) ===\n\n", nodes);
  Table table("");
  table.SetHeader({"Application", "Threshold", "Time(s)", "GC runs", "Proto mem highwater",
                   "Page fetches"});
  for (const std::string& app : opts.apps) {
    for (int64_t threshold : {64ll << 10, 256ll << 10, 1ll << 20, 64ll << 20}) {
      SimConfig cfg = BaseConfig(opts, ProtocolKind::kLrc, nodes);
      cfg.protocol.gc_threshold_bytes = threshold;
      const AppRunResult r = RunVerified(app, opts, cfg);
      const NodeReport avg = r.report.Average();
      const NodeReport tot = r.report.Totals();
      table.AddRow({app, Table::FmtBytes(threshold), FmtSeconds(r.report.total_time),
                    Table::Fmt(tot.proto.gc_runs), Table::FmtBytes(avg.proto_mem_highwater),
                    Table::Fmt(tot.proto.page_fetches)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nShape to check: lower thresholds trade execution time (GC runs + post-GC full\n"
      "page fetches) for protocol memory; with a huge threshold GC never runs and\n"
      "memory reaches the multiples of application memory reported in Table 6.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// Reproduces paper Table 3: costs of basic operations on the (simulated)
// Paragon, plus the derived minimum page-miss and lock-acquire costs from
// §4.3. Additionally uses google-benchmark to measure the *real* twin and
// diff create/apply kernels on this host, for comparison with the modelled
// costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/mem/diff.h"
#include "src/net/network.h"
#include "src/proto/cost_model.h"

namespace hlrc {
namespace {

constexpr int64_t kPage = 8192;  // The Paragon's OS page size.

void PrintModelTables() {
  const CostModel costs;
  const NetworkConfig net;

  Table t3("=== Table 3: Timings for basic operations (model, 8 KB page) ===");
  t3.SetHeader({"Operation", "Time (us)"});
  t3.AddRow({"Message latency (one way)", Table::Fmt(ToMicros(net.base_latency), 0)});
  t3.AddRow({"Page transfer (8 KB)", Table::Fmt(ToMicros(kPage * net.per_byte), 0)});
  t3.AddRow({"Receive interrupt", Table::Fmt(ToMicros(costs.receive_interrupt), 0)});
  t3.AddRow({"Twin copy", Table::Fmt(ToMicros(costs.TwinCost(kPage)), 0)});
  t3.AddRow({"Diff creation", Table::Fmt(ToMicros(costs.DiffCreateCost(kPage, 0)), 0) + "-" +
                                  Table::Fmt(ToMicros(costs.DiffCreateCost(kPage, kPage)), 0)});
  t3.AddRow({"Diff application", "0-" + Table::Fmt(ToMicros(costs.DiffApplyCost(kPage)), 0)});
  t3.AddRow({"Page fault", Table::Fmt(ToMicros(costs.page_fault), 0)});
  t3.AddRow({"Page invalidation", Table::Fmt(ToMicros(costs.page_invalidate), 0)});
  t3.AddRow({"Page protection", Table::Fmt(ToMicros(costs.page_protect), 0)});
  t3.Print();

  // Derived quantities from §4.3.
  const double lat = ToMicros(net.base_latency);
  const double interrupt = ToMicros(costs.receive_interrupt);
  const double xfer = ToMicros(kPage * net.per_byte);
  const double fault = ToMicros(costs.page_fault);
  const double diff1 = ToMicros(costs.DiffCreateCost(kPage, 8));

  Table t3b("\n=== Derived minimum costs (paper §4.3) ===");
  t3b.SetHeader({"Operation", "Model (us)", "Paper (us)"});
  t3b.AddRow({"HLRC page miss (non-overlapped)",
              Table::Fmt(fault + lat + interrupt + xfer + lat, 0), "1172"});
  t3b.AddRow({"HLRC page miss (overlapped)", Table::Fmt(fault + lat + xfer + lat, 0), "482"});
  t3b.AddRow({"LRC single-word-diff miss (non-overlapped)",
              Table::Fmt(fault + lat + interrupt + diff1 + lat, 0), "~1130"});
  t3b.AddRow({"LRC single-word-diff miss (overlapped)",
              Table::Fmt(fault + lat + diff1 + lat, 0), "440"});
  t3b.AddRow({"Remote lock acquire (via manager)", Table::Fmt(3 * lat + 2 * interrupt, 0),
              "~1550"});
  t3b.AddRow({"Remote lock acquire (co-processor, hypothetical)", Table::Fmt(3 * lat, 0),
              "150"});
  t3b.Print();
  std::printf("\n--- Real host kernel timings (google-benchmark) ---\n");
}

// ---------------------------------------------------------------------------
// Real kernel micro-benchmarks on the host.

void BM_TwinCopy(benchmark::State& state) {
  std::vector<std::byte> src(kPage, std::byte{1});
  std::vector<std::byte> dst(kPage);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), kPage);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPage);
}
BENCHMARK(BM_TwinCopy);

void BM_DiffCreate(benchmark::State& state) {
  const int64_t dirty_words = state.range(0);
  std::vector<std::byte> twin(kPage, std::byte{0});
  std::vector<std::byte> cur = twin;
  Rng rng(7);
  for (int64_t i = 0; i < dirty_words; ++i) {
    cur[rng.NextBounded(kPage / 8) * 8] = std::byte{0xff};
  }
  for (auto _ : state) {
    Diff d = CreateDiff(0, twin.data(), cur.data(), kPage, 8);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(16)->Arg(256)->Arg(1024);

void BM_DiffApply(benchmark::State& state) {
  const int64_t dirty_words = state.range(0);
  std::vector<std::byte> twin(kPage, std::byte{0});
  std::vector<std::byte> cur = twin;
  Rng rng(7);
  for (int64_t i = 0; i < dirty_words; ++i) {
    cur[rng.NextBounded(kPage / 8) * 8] = std::byte{0xff};
  }
  const Diff d = CreateDiff(0, twin.data(), cur.data(), kPage, 8);
  std::vector<std::byte> target = twin;
  for (auto _ : state) {
    ApplyDiff(d, target.data(), kPage);
    benchmark::DoNotOptimize(target.data());
  }
}
BENCHMARK(BM_DiffApply)->Arg(16)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) {
  hlrc::PrintModelTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// perf_wallclock — host wall-clock benchmarks for the simulator fast path
// (docs/PERFORMANCE.md).
//
// Unlike the table/figure binaries (which measure *virtual* time inside the
// simulated machine), this one measures how fast the simulator itself runs:
//
//   * engine        — events/sec through the slab event engine, against an
//                     in-binary replica of the original binary-heap +
//                     std::function + unordered_map engine;
//   * diff_create   — pages/sec through CreateDiff for clean, sparse, dense
//                     and fully-dirty pages, against CreateDiffReference
//                     (the original word-at-a-time scan, kept as the oracle);
//   * diff_apply    — pages/sec through ApplyDiff;
//   * pack_intervals / apply_intervals
//                   — packs/sec and batches/sec through the shared interval
//                     log, against an in-binary replica of the original
//                     std::map<IntervalKey, IntervalRecord> store that
//                     deep-copied every record into every payload;
//   * end_to_end    — wall seconds and events/sec for whole svmsim-style
//                     application runs.
//   * coalesce      — physical-frame counts for HLRC runs on a reliable
//                     fabric with the coalesced wire plane off vs. on
//                     (--coalesce --barrier-arity=4 in svmsim terms).
//
//   perf_wallclock [--quick] [--json=FILE]
//
// --quick shrinks the iteration counts for CI smoke runs; --json writes the
// results in the hlrc-bench v1 schema (see BENCH_PR4.json and BENCH_PR9.json
// at the repo root for the checked-in reference numbers).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/app.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/mem/diff.h"
#include "src/proto/interval_log.h"
#include "src/sim/engine.h"
#include "src/svm/system.h"

namespace hlrc {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Engine microbenchmark.
//
// BaselineEngine replicates the pre-slab engine exactly: a binary
// priority_queue of (time, tiebreak, id) entries next to an
// unordered_map<id, std::function> of pending callbacks. Keeping the replica
// in this binary makes the speedup self-measuring on any machine instead of
// depending on a stored number from some other host.
class BaselineEngine {
 public:
  using EventId = uint64_t;

  SimTime Now() const { return now_; }

  EventId Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  EventId ScheduleAt(SimTime t, std::function<void()> fn) {
    const EventId id = next_id_++;
    pending_.emplace(id, std::move(fn));
    queue_.push(QEntry{t, 0, id});
    return id;
  }

  void Cancel(EventId id) { pending_.erase(id); }

  bool Step() {
    while (!queue_.empty()) {
      const QEntry top = queue_.top();
      queue_.pop();
      auto it = pending_.find(top.id);
      if (it == pending_.end()) {
        continue;
      }
      now_ = top.time;
      std::function<void()> fn = std::move(it->second);
      pending_.erase(it);
      ++events_processed_;
      fn();
      return true;
    }
    return false;
  }

  void Run() {
    while (Step()) {
    }
  }

  int64_t events_processed() const { return events_processed_; }

 private:
  struct QEntry {
    SimTime time;
    uint64_t tiebreak;
    EventId id;
    bool operator>(const QEntry& o) const {
      if (time != o.time) {
        return time > o.time;
      }
      if (tiebreak != o.tiebreak) {
        return tiebreak > o.tiebreak;
      }
      return id > o.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  int64_t events_processed_ = 0;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue_;
  std::unordered_map<EventId, std::function<void()>> pending_;
};

// Self-rescheduling timer churn with a steady-state pending set and a cancel
// every 8th firing — the schedule/fire/cancel mix a protocol run produces.
// The callbacks capture 24 bytes (an object pointer plus message metadata),
// matching the simulator's hot handlers: network delivery captures
// [this, shared_ptr<WireFrame>] and processor service completion captures a
// whole Service record. Captures past 16 bytes are exactly what the original
// engine's std::function heap-allocated on every Schedule.
//
// Each step is one precomputed schedule decision: the delay of the next
// event and a payload word its callback consumes. Drawing these outside the
// timed region keeps Rng arithmetic out of the measurement and guarantees
// both engines replay the identical workload.
struct ChurnStep {
  SimTime delay;
  uint64_t payload;
};

std::vector<ChurnStep> MakeChurnPlan(int64_t target, uint64_t seed) {
  Rng rng(seed);
  std::vector<ChurnStep> plan(static_cast<size_t>(target));
  for (ChurnStep& s : plan) {
    // Nanosecond-resolution delays up to 150us, like the simulated network's
    // latencies — equal-time ties are rare, as in production schedules.
    s.delay = static_cast<SimTime>(rng.NextBounded(Micros(150)));
    s.payload = rng.NextU64();
  }
  return plan;
}

template <typename E>
struct ChurnLoad {
  E eng;
  const std::vector<ChurnStep>& plan;
  int64_t remaining;
  uint64_t sink = 0;

  explicit ChurnLoad(const std::vector<ChurnStep>& p)
      : plan(p), remaining(static_cast<int64_t>(p.size())) {}

  void Spawn() {
    if (remaining <= 0) {
      return;
    }
    --remaining;
    const ChurnStep step = plan[static_cast<size_t>(remaining)];
    eng.Schedule(step.delay, [this, step] {
      sink += step.payload ^ static_cast<uint64_t>(step.delay);
      if ((remaining & 7) == 0) {
        const auto victim = eng.Schedule(5, [] {});
        eng.Cancel(victim);
      }
      Spawn();
    });
  }
};

template <typename E>
double RunChurn(const std::vector<ChurnStep>& plan, int64_t* processed) {
  ChurnLoad<E> load(plan);
  // Steady-state pending set sized like a real run: a machine of a few dozen
  // nodes keeps hundreds of timers and in-flight messages scheduled at once.
  constexpr int kTimers = 512;
  for (int i = 0; i < kTimers && load.remaining > 0; ++i) {
    load.Spawn();
  }
  const auto start = std::chrono::steady_clock::now();
  load.eng.Run();
  const double wall = Seconds(start);
  *processed = load.eng.events_processed();
  return wall;
}

// The reliable-delivery pattern from the interconnect: every frame schedules a
// delivery event AND a retransmit timeout, and the delivery handler cancels
// the timeout — one Cancel per fired event. This is the production mix of
// Processor::Preempt and ReliableChannel, and it is where slot recycling pays
// most: the original engine's Cancel was a hash erase whose std::function heap
// block was freed under the lock-step of the run loop, while the slab engine's
// Cancel is a generation bump plus a free-list push.
struct TimeoutStep {
  SimTime delay;   // Delivery latency.
  SimTime margin;  // Extra time before the retransmit timeout would fire.
  uint64_t payload;
};

std::vector<TimeoutStep> MakeTimeoutPlan(int64_t target, uint64_t seed) {
  Rng rng(seed);
  std::vector<TimeoutStep> plan(static_cast<size_t>(target));
  for (TimeoutStep& s : plan) {
    s.delay = static_cast<SimTime>(rng.NextBounded(Micros(150)));
    s.margin = Micros(50) + static_cast<SimTime>(rng.NextBounded(Micros(100)));
    s.payload = rng.NextU64();
  }
  return plan;
}

template <typename E>
struct TimeoutLoad {
  E eng;
  const std::vector<TimeoutStep>& plan;
  int64_t remaining;
  uint64_t sink = 0;

  explicit TimeoutLoad(const std::vector<TimeoutStep>& p)
      : plan(p), remaining(static_cast<int64_t>(p.size())) {}

  void Spawn() {
    if (remaining <= 0) {
      return;
    }
    --remaining;
    const TimeoutStep step = plan[static_cast<size_t>(remaining)];
    // Timeout margin > 0, so delivery always fires first and cancels it; the
    // timeout body only runs if cancellation is broken.
    const auto timeout = eng.Schedule(
        step.delay + step.margin,
        [this, p = step.payload, d = step.delay] { sink += p * 3 + static_cast<uint64_t>(d); });
    eng.Schedule(step.delay, [this, timeout, p = step.payload] {
      sink += p;
      eng.Cancel(timeout);
      Spawn();
    });
  }
};

template <typename E>
double RunTimeout(const std::vector<TimeoutStep>& plan, int64_t* processed) {
  TimeoutLoad<E> load(plan);
  constexpr int kFrames = 256;  // ~512 pending entries, like the churn case.
  for (int i = 0; i < kFrames && load.remaining > 0; ++i) {
    load.Spawn();
  }
  const auto start = std::chrono::steady_clock::now();
  load.eng.Run();
  const double wall = Seconds(start);
  *processed = load.eng.events_processed();
  return wall;
}

// Warm both allocators once, then take the best of three measured runs of
// each engine — min-of-N discards scheduler and frequency noise, which on a
// shared machine easily exceeds the per-run spread.
void MeasureEngineCase(const char* name, const std::function<void()>& warm,
                       const std::function<double(int64_t*)>& run_base,
                       const std::function<double(int64_t*)>& run_slab, BenchJson* json) {
  warm();
  int64_t base_events = 0;
  int64_t slab_events = 0;
  double base_s = 1e100;
  double slab_s = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    base_s = std::min(base_s, run_base(&base_events));
    slab_s = std::min(slab_s, run_slab(&slab_events));
  }
  HLRC_CHECK_MSG(base_events == slab_events,
                 "engine %s diverged: baseline fired %lld, slab fired %lld", name,
                 static_cast<long long>(base_events), static_cast<long long>(slab_events));
  const double base_eps = static_cast<double>(base_events) / base_s;
  const double slab_eps = static_cast<double>(slab_events) / slab_s;
  const double speedup = slab_eps / base_eps;
  std::printf("engine      %-10s %7.2fM ev/s  (baseline %7.2fM ev/s, %.2fx)\n", name,
              slab_eps / 1e6, base_eps / 1e6, speedup);
  json->BeginRow();
  json->Add("component", "engine");
  json->Add("case", name);
  json->Add("events", base_events);
  json->Add("baseline_s", base_s);
  json->Add("optimized_s", slab_s);
  json->Add("baseline_events_per_sec", base_eps);
  json->Add("optimized_events_per_sec", slab_eps);
  json->Add("speedup", speedup);
  json->EndRow();
}

void BenchEngine(bool quick, BenchJson* json) {
  const int64_t target = quick ? 300'000 : 3'000'000;
  {
    const std::vector<ChurnStep> plan = MakeChurnPlan(target, 0x9e3779b97f4a7c15ULL);
    const std::vector<ChurnStep> warm = MakeChurnPlan(target / 10, 17);
    MeasureEngineCase(
        "churn",
        [&] {
          int64_t scratch = 0;
          RunChurn<BaselineEngine>(warm, &scratch);
          RunChurn<Engine>(warm, &scratch);
        },
        [&](int64_t* n) { return RunChurn<BaselineEngine>(plan, n); },
        [&](int64_t* n) { return RunChurn<Engine>(plan, n); }, json);
  }
  {
    // Each delivery costs a schedule+cancel pair on top of its own
    // schedule/fire, so half the fired-event target gives a similar runtime.
    const std::vector<TimeoutStep> plan = MakeTimeoutPlan(target / 2, 0x51ed2701u);
    const std::vector<TimeoutStep> warm = MakeTimeoutPlan(target / 20, 29);
    MeasureEngineCase(
        "timeout",
        [&] {
          int64_t scratch = 0;
          RunTimeout<BaselineEngine>(warm, &scratch);
          RunTimeout<Engine>(warm, &scratch);
        },
        [&](int64_t* n) { return RunTimeout<BaselineEngine>(plan, n); },
        [&](int64_t* n) { return RunTimeout<Engine>(plan, n); }, json);
  }
}

// ---------------------------------------------------------------------------
// Diff data-plane benchmark.

struct DiffCase {
  const char* name;
  double dirty_frac;  // Fraction of words rewritten in `current`.
  int word_bytes;
};

void BenchDiff(bool quick, BenchJson* json) {
  constexpr int64_t kPage = 4096;
  const DiffCase cases[] = {
      {"clean", 0.0, 8},
      {"sparse", 0.01, 8},
      {"dense", 0.5, 8},
      {"full", 1.0, 4},
  };
  std::vector<std::byte> twin(kPage);
  std::vector<std::byte> current(kPage);
  std::vector<std::byte> target(kPage);
  for (const DiffCase& c : cases) {
    Rng rng(0x8ae6'1234 + static_cast<uint64_t>(c.word_bytes));
    for (int64_t i = 0; i < kPage; ++i) {
      twin[static_cast<size_t>(i)] = static_cast<std::byte>(rng.NextU64());
    }
    current = twin;
    const int64_t words = kPage / c.word_bytes;
    const int64_t dirty = static_cast<int64_t>(static_cast<double>(words) * c.dirty_frac);
    for (int64_t i = 0; i < dirty; ++i) {
      const int64_t w = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(words)));
      current[static_cast<size_t>(w * c.word_bytes)] ^= std::byte{0xff};
    }

    const int64_t iters = quick ? 20'000 : 200'000;
    int64_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      const Diff d = CreateDiff(1, twin.data(), current.data(), kPage, c.word_bytes);
      sink += static_cast<int64_t>(d.runs.size()) + d.DataBytes();
    }
    const double fast_s = Seconds(start);
    start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      const Diff d = CreateDiffReference(1, twin.data(), current.data(), kPage, c.word_bytes);
      sink -= static_cast<int64_t>(d.runs.size()) + d.DataBytes();
    }
    const double ref_s = Seconds(start);
    HLRC_CHECK_MSG(sink == 0, "optimized and reference diffs disagree on %s", c.name);

    const double fast_pps = static_cast<double>(iters) / fast_s;
    const double ref_pps = static_cast<double>(iters) / ref_s;
    const double speedup = fast_pps / ref_pps;
    std::printf("diff_create %-10s %7.2fK pages/s (baseline %7.2fK pages/s, %.2fx, word=%d)\n",
                c.name, fast_pps / 1e3, ref_pps / 1e3, speedup, c.word_bytes);
    json->BeginRow();
    json->Add("component", "diff_create");
    json->Add("case", c.name);
    json->Add("word_bytes", c.word_bytes);
    json->Add("page_bytes", kPage);
    json->Add("pages", iters);
    json->Add("baseline_s", ref_s);
    json->Add("optimized_s", fast_s);
    json->Add("baseline_pages_per_sec", ref_pps);
    json->Add("optimized_pages_per_sec", fast_pps);
    json->Add("speedup", speedup);
    json->EndRow();

    if (std::strcmp(c.name, "dense") == 0) {
      const Diff d = CreateDiff(1, twin.data(), current.data(), kPage, c.word_bytes);
      target = twin;
      const int64_t apply_iters = iters;
      start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < apply_iters; ++i) {
        ApplyDiff(d, target.data(), kPage);
      }
      const double apply_s = Seconds(start);
      HLRC_CHECK(std::memcmp(target.data(), current.data(), kPage) == 0);
      const double apply_pps = static_cast<double>(apply_iters) / apply_s;
      std::printf("diff_apply  %-10s %7.2fK pages/s\n", c.name, apply_pps / 1e3);
      json->BeginRow();
      json->Add("component", "diff_apply");
      json->Add("case", c.name);
      json->Add("word_bytes", c.word_bytes);
      json->Add("page_bytes", kPage);
      json->Add("pages", apply_iters);
      json->Add("pages_per_sec", apply_pps);
      json->EndRow();
    }
  }
}

// ---------------------------------------------------------------------------
// Interval metadata-plane benchmark (docs/PERFORMANCE.md, metadata fast
// path).
//
// BaselineIntervalStore replicates the pre-log representation exactly: one
// std::map<IntervalKey, IntervalRecord> per node, with PackFor walking the
// whole map and deep-copying every unseen record into the outgoing payload
// (what lock grants and barrier releases used to carry) and ApplyBatch
// deep-copying every received record back into the map. The shipped
// IntervalLog packs shared handles off per-writer sorted tails instead, so an
// N-receiver fan-out shares one record N ways.

struct IntervalWorkload {
  int writers = 0;
  std::vector<IntervalRecord> records;    // Writer-major, id-ascending.
  IntervalBatch handles;                  // Sealed shared twins of `records`.
  std::vector<VectorClock> receiver_vts;  // Lagged receivers to pack for.
};

// A barrier-epoch's worth of metadata on a mid-size machine: every writer has
// closed a couple dozen intervals of 6–16 write notices, and every other node
// is a receiver that has seen a random prefix of each writer's log (the state
// lock hand-offs leave behind).
IntervalWorkload MakeIntervalWorkload(uint64_t seed) {
  constexpr int kWriters = 32;
  constexpr uint32_t kIntervalsPerWriter = 24;
  IntervalWorkload w;
  w.writers = kWriters;
  Rng rng(seed);
  for (NodeId writer = 0; writer < kWriters; ++writer) {
    VectorClock vt(kWriters);
    for (uint32_t id = 1; id <= kIntervalsPerWriter; ++id) {
      IntervalRecord rec;
      rec.writer = writer;
      rec.id = id;
      vt.Set(writer, id);
      // Observed progress of other writers advances loosely, as it does under
      // lock hand-offs.
      for (NodeId other = 0; other < kWriters; ++other) {
        if (other != writer && (rng.NextU64() & 3) == 0 &&
            vt.Get(other) < kIntervalsPerWriter) {
          vt.Set(other, vt.Get(other) + 1);
        }
      }
      rec.vt = vt;
      const int64_t pages = rng.NextInt(6, 16);
      for (int64_t i = 0; i < pages; ++i) {
        rec.pages.push_back(static_cast<PageId>(rng.NextBounded(4096)));
      }
      rec.Seal();
      w.records.push_back(rec);
      w.handles.push_back(std::make_shared<IntervalRecord>(std::move(rec)));
    }
  }
  for (int r = 1; r < kWriters; ++r) {
    VectorClock vt(kWriters);
    for (NodeId n = 0; n < kWriters; ++n) {
      vt.Set(n, static_cast<uint32_t>(rng.NextBounded(kIntervalsPerWriter + 1)));
    }
    w.receiver_vts.push_back(vt);
  }
  return w;
}

class BaselineIntervalStore {
 public:
  explicit BaselineIntervalStore(int nodes) : vt_(nodes) {}

  // Mirrors the old HlrcProtocol::ApplyIntervals bookkeeping.
  void ApplyBatch(const std::vector<IntervalRecord>& recs) {
    for (const IntervalRecord& rec : recs) {
      if (rec.id <= vt_.Get(rec.writer)) {
        continue;
      }
      intervals_[IntervalKey{rec.writer, rec.id}] = rec;  // Deep copy.
      vt_.Set(rec.writer, rec.id);
    }
  }

  // Mirrors the old HlrcProtocol::PackIntervalsFor: full-map walk, one deep
  // copy per unseen record.
  std::vector<IntervalRecord> PackFor(const VectorClock& vt) const {
    std::vector<IntervalRecord> out;
    for (const auto& [key, rec] : intervals_) {
      if (key.id > vt.Get(key.writer)) {
        out.push_back(rec);
      }
    }
    return out;
  }

  size_t size() const { return intervals_.size(); }

 private:
  VectorClock vt_;
  std::map<IntervalKey, IntervalRecord> intervals_;
};

class LogIntervalStore {
 public:
  explicit LogIntervalStore(int nodes) : vt_(nodes), log_(nodes) {}

  void ApplyBatch(const IntervalBatch& recs) {
    for (const IntervalPtr& rec : recs) {
      if (rec->id <= vt_.Get(rec->writer)) {
        continue;
      }
      log_.Append(rec);  // Shares the handle; no record copy.
      vt_.Set(rec->writer, rec->id);
    }
  }

  const IntervalLog& log() const { return log_; }

  size_t size() const { return static_cast<size_t>(log_.size()); }

 private:
  VectorClock vt_;
  IntervalLog log_;
};

void BenchIntervals(bool quick, BenchJson* json) {
  const IntervalWorkload w = MakeIntervalWorkload(0x1f7a'33d1);

  BaselineIntervalStore base(w.writers);
  base.ApplyBatch(w.records);
  LogIntervalStore opt(w.writers);
  opt.ApplyBatch(w.handles);
  HLRC_CHECK(base.size() == opt.size());

  // One untimed correctness pass: both representations must pack the same
  // interval sequence with the same encoded bytes for every receiver.
  int64_t check_bytes = 0;
  for (const VectorClock& vt : w.receiver_vts) {
    const std::vector<IntervalRecord> b = base.PackFor(vt);
    const IntervalBatch o = opt.log().PackFor(vt);
    HLRC_CHECK_MSG(b.size() == o.size(), "pack diverged: baseline %zu, log %zu", b.size(),
                   o.size());
    for (size_t i = 0; i < b.size(); ++i) {
      HLRC_CHECK(b[i].writer == o[i]->writer && b[i].id == o[i]->id);
      HLRC_CHECK(b[i].EncodedSize(true) == o[i]->EncodedSize(true));
      check_bytes += o[i]->EncodedSize(true);
    }
  }

  // pack_intervals: the barrier-release fan-out. Each iteration packs the
  // full log once per receiver and charges the encoded payload bytes, exactly
  // what SendBarrierReleases does per epoch.
  {
    const int64_t iters = quick ? 80 : 800;
    const int64_t packs = iters * static_cast<int64_t>(w.receiver_vts.size());
    auto run_base = [&](int64_t* bytes) {
      int64_t sum = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < iters; ++i) {
        for (const VectorClock& vt : w.receiver_vts) {
          const std::vector<IntervalRecord> out = base.PackFor(vt);
          for (const IntervalRecord& rec : out) {
            sum += rec.EncodedSize(true);
          }
        }
      }
      const double wall = Seconds(start);
      *bytes = sum;
      return wall;
    };
    auto run_opt = [&](int64_t* bytes) {
      int64_t sum = 0;
      IntervalBatch out;
      const auto start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < iters; ++i) {
        for (const VectorClock& vt : w.receiver_vts) {
          out.clear();
          opt.log().PackInto(vt, &out);
          for (const IntervalPtr& rec : out) {
            sum += rec->EncodedSize(true);
          }
        }
      }
      const double wall = Seconds(start);
      *bytes = sum;
      return wall;
    };
    int64_t base_bytes = 0;
    int64_t opt_bytes = 0;
    run_base(&base_bytes);  // Warm.
    run_opt(&opt_bytes);
    double base_s = 1e100;
    double opt_s = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      base_s = std::min(base_s, run_base(&base_bytes));
      opt_s = std::min(opt_s, run_opt(&opt_bytes));
    }
    HLRC_CHECK(base_bytes == opt_bytes);
    HLRC_CHECK(base_bytes == check_bytes * iters);
    const double base_pps = static_cast<double>(packs) / base_s;
    const double opt_pps = static_cast<double>(packs) / opt_s;
    const double speedup = opt_pps / base_pps;
    std::printf(
        "pack_intervals %-7s %7.2fK packs/s (baseline %7.2fK packs/s, %.2fx)\n", "fanout",
        opt_pps / 1e3, base_pps / 1e3, speedup);
    json->BeginRow();
    json->Add("component", "pack_intervals");
    json->Add("case", "fanout");
    json->Add("writers", static_cast<int64_t>(w.writers));
    json->Add("records", static_cast<int64_t>(w.records.size()));
    json->Add("receivers", static_cast<int64_t>(w.receiver_vts.size()));
    json->Add("packs", packs);
    json->Add("payload_bytes", check_bytes);
    json->Add("baseline_s", base_s);
    json->Add("optimized_s", opt_s);
    json->Add("baseline_packs_per_sec", base_pps);
    json->Add("optimized_packs_per_sec", opt_pps);
    json->Add("speedup", speedup);
    json->EndRow();
  }

  // apply_intervals: receiving one whole epoch. Each iteration replays the
  // full batch into a fresh store, as a node does when a barrier release (or
  // the burst of grants after a lock convoy) lands after GC truncation.
  {
    const int64_t iters = quick ? 200 : 2000;
    auto run_base = [&](size_t* final_size) {
      const auto start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < iters; ++i) {
        BaselineIntervalStore store(w.writers);
        store.ApplyBatch(w.records);
        *final_size = store.size();
      }
      return Seconds(start);
    };
    auto run_opt = [&](size_t* final_size) {
      const auto start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < iters; ++i) {
        LogIntervalStore store(w.writers);
        store.ApplyBatch(w.handles);
        *final_size = store.size();
      }
      return Seconds(start);
    };
    size_t base_size = 0;
    size_t opt_size = 0;
    run_base(&base_size);  // Warm.
    run_opt(&opt_size);
    double base_s = 1e100;
    double opt_s = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      base_s = std::min(base_s, run_base(&base_size));
      opt_s = std::min(opt_s, run_opt(&opt_size));
    }
    HLRC_CHECK(base_size == opt_size && base_size == w.records.size());
    const double base_bps = static_cast<double>(iters) / base_s;
    const double opt_bps = static_cast<double>(iters) / opt_s;
    const double speedup = opt_bps / base_bps;
    std::printf(
        "apply_intervals %-6s %7.2fK batches/s (baseline %7.2fK batches/s, %.2fx)\n",
        "batch", opt_bps / 1e3, base_bps / 1e3, speedup);
    json->BeginRow();
    json->Add("component", "apply_intervals");
    json->Add("case", "batch");
    json->Add("writers", static_cast<int64_t>(w.writers));
    json->Add("records", static_cast<int64_t>(w.records.size()));
    json->Add("batches", iters);
    json->Add("baseline_s", base_s);
    json->Add("optimized_s", opt_s);
    json->Add("baseline_batches_per_sec", base_bps);
    json->Add("optimized_batches_per_sec", opt_bps);
    json->Add("speedup", speedup);
    json->EndRow();
  }
}

// ---------------------------------------------------------------------------
// End-to-end runs: the whole simulator (engine + protocol + diff plane).

void BenchEndToEnd(bool quick, BenchJson* json) {
  struct Run {
    const char* app;
    ProtocolKind proto;
    int nodes;
  };
  const Run runs[] = {
      {"sor", ProtocolKind::kHlrc, 8},
      {"lu", ProtocolKind::kLrc, 8},
  };
  const AppScale scale = quick ? AppScale::kTiny : AppScale::kDefault;
  for (const Run& r : runs) {
    SimConfig cfg;
    cfg.nodes = r.nodes;
    cfg.page_size = 4096;
    cfg.shared_bytes = 256ll << 20;
    cfg.protocol.kind = r.proto;
    auto app = MakeApp(r.app, scale);
    System sys(cfg);
    app->Setup(sys);
    const auto start = std::chrono::steady_clock::now();
    sys.Run(app->Program());
    const double wall = Seconds(start);
    std::string why;
    HLRC_CHECK_MSG(app->Verify(sys, &why), "%s failed verification: %s", r.app, why.c_str());
    const int64_t events = sys.engine().events_processed();
    const double eps = static_cast<double>(events) / wall;
    std::printf("end_to_end  %-10s %s/%d: %.3f s wall, %lld events (%.2fM ev/s)\n", r.app,
                ProtocolName(r.proto), r.nodes, wall, static_cast<long long>(events),
                eps / 1e6);
    json->BeginRow();
    json->Add("component", "end_to_end");
    json->Add("app", r.app);
    json->Add("protocol", ProtocolName(r.proto));
    json->Add("nodes", r.nodes);
    json->Add("scale", quick ? "tiny" : "default");
    json->Add("wall_s", wall);
    json->Add("events", events);
    json->Add("events_per_sec", eps);
    json->Add("virtual_s", ToSeconds(sys.report().total_time));
    json->EndRow();
  }
}

// ---------------------------------------------------------------------------
// Coalesced wire plane: physical frames with and without --coalesce
// --barrier-arity=4 on a reliable fabric. The interesting number is the frame
// cut — protocol messages repacked into multi-part bundles plus acks riding
// reverse-direction data — while the logical message count stays within the
// timing-drift noise (delayed acks shift fault timing slightly).

int64_t LogicalMsgs(const NodeReport& t) {
  int64_t n = 0;
  for (size_t i = 0; i < t.traffic.msgs_by_type.size(); ++i) {
    if (i == static_cast<size_t>(MsgType::kAck) ||
        i == static_cast<size_t>(MsgType::kBundle)) {
      continue;
    }
    n += t.traffic.msgs_by_type[i];
  }
  return n;
}

void BenchCoalesce(bool quick, BenchJson* json) {
  const std::vector<std::string> apps =
      quick ? std::vector<std::string>{"sor", "raytrace"}
            : std::vector<std::string>{"sor", "water-nsq", "water-sp", "raytrace"};
  constexpr int kNodes = 8;
  for (const std::string& app_name : apps) {
    auto run_once = [&](bool coalesce, NodeReport* totals, double* wall) {
      SimConfig cfg;
      cfg.nodes = kNodes;
      cfg.page_size = 4096;
      cfg.shared_bytes = 256ll << 20;
      cfg.protocol.kind = ProtocolKind::kHlrc;
      cfg.reliability.enabled = true;
      if (coalesce) {
        cfg.network.coalesce = true;
        cfg.protocol.coalesce = true;
        cfg.protocol.barrier_arity = 4;
        cfg.reliability.piggyback_acks = true;
      }
      auto app = MakeApp(app_name, AppScale::kDefault);
      System sys(cfg);
      app->Setup(sys);
      const auto start = std::chrono::steady_clock::now();
      sys.Run(app->Program());
      *wall = Seconds(start);
      std::string why;
      HLRC_CHECK_MSG(app->Verify(sys, &why), "%s failed verification: %s",
                     app_name.c_str(), why.c_str());
      *totals = sys.report().Totals();
    };
    NodeReport base;
    NodeReport co;
    double base_wall = 0;
    double co_wall = 0;
    run_once(false, &base, &base_wall);
    run_once(true, &co, &co_wall);
    const double cut = 1.0 - static_cast<double>(co.traffic.msgs_sent) /
                                 static_cast<double>(base.traffic.msgs_sent);
    std::printf(
        "coalesce    %-10s HLRC/%d: frames %lld -> %lld (%.1f%% cut), "
        "%lld acks piggybacked, %lld msgs packed into %lld bundles\n",
        app_name.c_str(), kNodes, static_cast<long long>(base.traffic.msgs_sent),
        static_cast<long long>(co.traffic.msgs_sent), 100.0 * cut,
        static_cast<long long>(co.traffic.acks_piggybacked),
        static_cast<long long>(co.traffic.msgs_coalesced),
        static_cast<long long>(co.traffic.frames_coalesced));
    json->BeginRow();
    json->Add("component", "coalesce");
    json->Add("app", app_name);
    json->Add("protocol", "HLRC");
    json->Add("nodes", kNodes);
    json->Add("frames_base", base.traffic.msgs_sent);
    json->Add("frames_coalesce", co.traffic.msgs_sent);
    json->Add("frame_cut", cut);
    json->Add("logical_base", LogicalMsgs(base));
    json->Add("logical_coalesce", LogicalMsgs(co));
    json->Add("acks_piggybacked", co.traffic.acks_piggybacked);
    json->Add("msgs_coalesced", co.traffic.msgs_coalesced);
    json->Add("frames_coalesced", co.traffic.frames_coalesced);
    json->Add("page_replies_combined", co.proto.page_replies_combined);
    json->Add("base_wall_s", base_wall);
    json->Add("coalesce_wall_s", co_wall);
    json->EndRow();
  }
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr, "usage: perf_wallclock [--quick] [--json=FILE]\n");
      return 2;
    }
  }

  std::printf("=== perf_wallclock: simulator fast-path throughput (%s) ===\n",
              quick ? "quick" : "full");
  BenchJson json("perf_wallclock");
  BenchEngine(quick, &json);
  BenchDiff(quick, &json);
  BenchIntervals(quick, &json);
  BenchEndToEnd(quick, &json);
  BenchCoalesce(quick, &json);
  if (!json_out.empty()) {
    json.WriteFile(json_out);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

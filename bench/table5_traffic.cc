// Reproduces paper Table 5: communication traffic of LRC vs HLRC — message
// counts, update-related traffic (diff/page payloads) and protocol traffic
// (write notices, requests, headers).
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);

  std::printf("=== Table 5: Communication traffic (totals across nodes) ===\n\n");
  Table table("");
  table.SetHeader({"Application", "Nodes", "Msgs LRC", "Msgs HLRC", "Update LRC", "Update HLRC",
                   "Protocol LRC", "Protocol HLRC"});

  for (const std::string& app : opts.apps) {
    for (int nodes : opts.node_counts) {
      const AppRunResult lrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kLrc, nodes));
      const AppRunResult hlrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kHlrc, nodes));
      const NodeReport tl = lrc.report.Totals();
      const NodeReport th = hlrc.report.Totals();
      table.AddRow({app, Table::Fmt(static_cast<int64_t>(nodes)),
                    Table::Fmt(tl.traffic.msgs_sent), Table::Fmt(th.traffic.msgs_sent),
                    Table::FmtBytes(tl.traffic.update_bytes_sent),
                    Table::FmtBytes(th.traffic.update_bytes_sent),
                    Table::FmtBytes(tl.traffic.protocol_bytes_sent),
                    Table::FmtBytes(th.traffic.protocol_bytes_sent)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nPaper §4.6 shapes: HLRC sends one message per diff (to the home) and exactly one\n"
      "round trip per page miss; LRC needs a message per writer per miss. Homeless\n"
      "protocol traffic grows with node count because write notices carry full vector\n"
      "timestamps. For fine-grain sharing (Raytrace) HLRC moves more bytes (whole pages)\n"
      "but fewer messages.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

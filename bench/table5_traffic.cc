// Reproduces paper Table 5: communication traffic of LRC vs HLRC — message
// counts, update-related traffic (diff/page payloads) and protocol traffic
// (write notices, requests, headers).
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

// Protocol-level message count: every logical message the protocols
// exchanged, regardless of how the wire plane framed it. Excludes acks
// (reliable-delivery bookkeeping, not protocol traffic) and bundle frames
// (counted once per carried part instead). Invariant under --coalesce: the
// coalesced plane repacks frames but never adds or removes protocol
// messages.
int64_t LogicalMsgs(const NodeReport& t) {
  int64_t n = 0;
  for (size_t i = 0; i < t.traffic.msgs_by_type.size(); ++i) {
    if (i == static_cast<size_t>(MsgType::kAck) ||
        i == static_cast<size_t>(MsgType::kBundle)) {
      continue;
    }
    n += t.traffic.msgs_by_type[i];
  }
  return n;
}

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);

  // Under fault injection the reliable-delivery layer adds traffic of its
  // own; report it so degraded-fabric runs stay interpretable.
  const bool faulty = opts.fault_drop > 0;

  std::printf("=== Table 5: Communication traffic (totals across nodes) ===\n\n");
  Table table("");
  std::vector<std::string> header = {"Application",  "Nodes",       "Msgs LRC",
                                     "Msgs HLRC",    "Update LRC",  "Update HLRC",
                                     "Protocol LRC", "Protocol HLRC"};
  if (faulty) {
    header.insert(header.end(),
                  {"Retx LRC", "Retx HLRC", "DupDrop LRC", "DupDrop HLRC", "Acks LRC",
                   "Acks HLRC"});
  }
  table.SetHeader(header);

  BenchJson json("table5_traffic");
  auto add_row = [&json](const std::string& app, int nodes, const char* protocol,
                         const NodeReport& t) {
    json.BeginRow();
    json.Add("app", app);
    json.Add("protocol", protocol);
    json.Add("nodes", nodes);
    json.Add("msgs", t.traffic.msgs_sent);
    json.Add("update_bytes", t.traffic.update_bytes_sent);
    json.Add("protocol_bytes", t.traffic.protocol_bytes_sent);
    json.Add("retransmissions", t.traffic.msgs_retransmitted);
    json.Add("dup_dropped", t.traffic.msgs_duplicated_dropped);
    json.Add("acks", t.traffic.acks_sent);
    // Frames vs. logical messages: "msgs" above counts physical frames (a
    // coalesced bundle is one frame); "logical_msgs" counts the protocol
    // messages inside them and must not change under --coalesce.
    json.Add("logical_msgs", LogicalMsgs(t));
    json.Add("frames_coalesced", t.traffic.frames_coalesced);
    json.Add("msgs_coalesced", t.traffic.msgs_coalesced);
    json.Add("acks_piggybacked", t.traffic.acks_piggybacked);
    json.Add("page_replies_combined", t.proto.page_replies_combined);
    json.EndRow();
  };

  for (const std::string& app : opts.apps) {
    for (int nodes : opts.node_counts) {
      const AppRunResult lrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kLrc, nodes));
      const AppRunResult hlrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kHlrc, nodes));
      const NodeReport tl = lrc.report.Totals();
      const NodeReport th = hlrc.report.Totals();
      add_row(app, nodes, "LRC", tl);
      add_row(app, nodes, "HLRC", th);
      std::vector<std::string> row = {app, Table::Fmt(static_cast<int64_t>(nodes)),
                                      Table::Fmt(tl.traffic.msgs_sent),
                                      Table::Fmt(th.traffic.msgs_sent),
                                      Table::FmtBytes(tl.traffic.update_bytes_sent),
                                      Table::FmtBytes(th.traffic.update_bytes_sent),
                                      Table::FmtBytes(tl.traffic.protocol_bytes_sent),
                                      Table::FmtBytes(th.traffic.protocol_bytes_sent)};
      if (faulty) {
        row.insert(row.end(), {Table::Fmt(tl.traffic.msgs_retransmitted),
                               Table::Fmt(th.traffic.msgs_retransmitted),
                               Table::Fmt(tl.traffic.msgs_duplicated_dropped),
                               Table::Fmt(th.traffic.msgs_duplicated_dropped),
                               Table::Fmt(tl.traffic.acks_sent),
                               Table::Fmt(th.traffic.acks_sent)});
      }
      table.AddRow(row);
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  if (!opts.json_out.empty()) {
    json.WriteFile(opts.json_out);
  }
  if (faulty) {
    std::printf("\nFault injection active: drop=%.4f seed=%llu (reliable delivery on).\n",
                opts.fault_drop, static_cast<unsigned long long>(opts.fault_seed));
  }
  std::printf(
      "\nPaper §4.6 shapes: HLRC sends one message per diff (to the home) and exactly one\n"
      "round trip per page miss; LRC needs a message per writer per miss. Homeless\n"
      "protocol traffic grows with node count because write notices carry full vector\n"
      "timestamps. For fine-grain sharing (Raytrace) HLRC moves more bytes (whole pages)\n"
      "but fewer messages.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

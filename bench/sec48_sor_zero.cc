// Reproduces the paper's §4.8 experiment: SOR with a zero interior. Interior
// elements do not change for many iterations, so writes produce no diffs —
// the conditions maximally favour LRC (single writer, single tiny diff per
// interval) and penalize HLRC (whole-page transfers regardless). The paper
// still measured HLRC ~10% ahead.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sor.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);

  std::printf("=== Section 4.8: SOR with zero-initialized interior ===\n\n");
  Table table("");
  table.SetHeader({"Init", "Nodes", "LRC time(s)", "HLRC time(s)", "HLRC/LRC", "LRC diffs",
                   "HLRC diffs"});

  for (const bool zero : {false, true}) {
    for (int nodes : opts.node_counts) {
      SorConfig scfg;
      scfg.rows = 512;
      scfg.cols = 512;
      scfg.iterations = 10;
      scfg.zero_interior = zero;
      if (opts.scale == AppScale::kTiny) {
        scfg.rows = scfg.cols = 128;
        scfg.iterations = 4;
      }

      RunReport reports[2];
      int64_t diffs[2] = {0, 0};
      const ProtocolKind kinds[2] = {ProtocolKind::kLrc, ProtocolKind::kHlrc};
      for (int k = 0; k < 2; ++k) {
        SorApp app(scfg);
        const AppRunResult r = RunApp(app, BaseConfig(opts, kinds[k], nodes));
        HLRC_CHECK_MSG(r.verified, "SOR zero-interior failed verification: %s",
                       r.why.c_str());
        reports[k] = r.report;
        diffs[k] = r.report.Totals().proto.diffs_created;
      }
      const double ratio = static_cast<double>(reports[1].total_time) /
                           static_cast<double>(reports[0].total_time);
      table.AddRow({zero ? "zero interior" : "random", Table::Fmt(static_cast<int64_t>(nodes)),
                    FmtSeconds(reports[0].total_time), FmtSeconds(reports[1].total_time),
                    Table::Fmt(ratio, 2), Table::Fmt(diffs[0]), Table::Fmt(diffs[1])});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nShape to check: with a zero interior both protocols create almost no diffs\n"
      "(unchanged pages are suppressed), and HLRC remains at least competitive\n"
      "(paper: ~10%% better) even under these LRC-favourable conditions.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

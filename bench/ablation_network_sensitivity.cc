// Ablation for the paper's §4.8 discussion: how architectural parameters
// (receive-interrupt cost, message latency) change the HLRC/LRC gap. The
// paper predicts that fast interrupts and low-latency messages — the
// direction networks were heading in 1996 — shrink the gap, because the
// homeless protocol pays for more round trips.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.apps.size() == 5) {
    opts.apps = {"lu", "water-nsq"};  // Representative regular + lock-heavy apps.
  }
  const int nodes = opts.node_counts.back();

  struct Point {
    const char* name;
    SimTime interrupt;
    SimTime latency;
  };
  const Point points[] = {
      {"Paragon (690us intr, 50us lat)", Micros(690), Micros(50)},
      {"fast interrupts (50us intr)", Micros(50), Micros(50)},
      {"fast network (50us intr, 10us lat)", Micros(50), Micros(10)},
      {"VMMC-class (5us intr, 3us lat)", Micros(5), Micros(3)},
  };

  std::printf("=== Ablation: interrupt/latency sensitivity (%d nodes) ===\n\n", nodes);
  Table table("");
  table.SetHeader({"Application", "Architecture", "LRC time(s)", "HLRC time(s)",
                   "LRC/HLRC gap"});
  for (const std::string& app : opts.apps) {
    for (const Point& pt : points) {
      SimTime times[2];
      const ProtocolKind kinds[2] = {ProtocolKind::kLrc, ProtocolKind::kHlrc};
      for (int k = 0; k < 2; ++k) {
        SimConfig cfg = BaseConfig(opts, kinds[k], nodes);
        cfg.costs.receive_interrupt = pt.interrupt;
        cfg.network.base_latency = pt.latency;
        times[k] = RunVerified(app, opts, cfg).report.total_time;
      }
      table.AddRow({app, pt.name, FmtSeconds(times[0]), FmtSeconds(times[1]),
                    Table::Fmt(static_cast<double>(times[0]) / static_cast<double>(times[1]),
                               2)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nShape to check (paper §4.8): the LRC/HLRC gap narrows as interrupts and\n"
      "latency get cheaper, since the homeless protocol's extra round trips and\n"
      "interrupts stop dominating.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

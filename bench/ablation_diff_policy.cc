// Ablation: eager vs lazy diff creation for the homeless protocol (paper
// §2.1: "The LRC protocol creates diffs either eagerly, at the end of each
// interval, or lazily, on demand" — TreadMarks chose lazily).
//
// Shape to check: single-writer apps (SOR, LU) create thousands of diffs that
// nobody ever fetches, so lazy diffing removes most diff-creation time from
// the writers; for migratory apps most diffs do get fetched and the policies
// converge (the work just moves from interval end to the request path).
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  const int nodes = opts.node_counts.size() > 1 ? opts.node_counts[1] : opts.node_counts[0];

  std::printf("=== Ablation: LRC diff-creation policy (%d nodes) ===\n\n", nodes);
  Table table("");
  table.SetHeader({"Application", "Policy", "Time(s)", "Diff-create CPU (ms, total)",
                   "Diffs created", "Diff requests"});
  for (const std::string& app : opts.apps) {
    for (DiffPolicy policy : {DiffPolicy::kEager, DiffPolicy::kLazy}) {
      SimConfig cfg = BaseConfig(opts, ProtocolKind::kLrc, nodes);
      cfg.protocol.diff_policy = policy;
      const AppRunResult r = RunVerified(app, opts, cfg);
      const NodeReport totals = r.report.Totals();
      table.AddRow({app, DiffPolicyName(policy), FmtSeconds(r.report.total_time),
                    Table::Fmt(ToMillis(totals.cpu_busy.Get(BusyCat::kDiffCreate)), 1),
                    Table::Fmt(totals.proto.diffs_created),
                    Table::Fmt(totals.proto.diff_requests_sent)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// Reproduces paper Figure 4: per-processor execution-time breakdowns of
// Water-Nsquared between two consecutive barriers (the lock-heavy force
// phase), LRC vs HLRC — showing the imbalance caused by lock contention and
// data-transfer hot spots under the homeless protocol.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.node_counts.size() == 3 && opts.node_counts[0] == 8) {
    opts.node_counts = {8, 32};
  }
  const std::string app = "water-nsq";

  // Water-Nsquared snapshots phases 2k (start of step k) and 2k+1 (after the
  // predict barrier). The window [2k+1, 2k+2) covers the force phase of step
  // k: locks + data transfer, between two barriers (paper's barriers 9..10).
  const int window_lo = 1;
  const int window_hi = 2;

  std::printf("=== Figure 4: Per-processor breakdowns, Water-Nsquared force phase ===\n");

  for (int nodes : opts.node_counts) {
    for (ProtocolKind kind : {ProtocolKind::kLrc, ProtocolKind::kHlrc}) {
      const AppRunResult r = RunVerified(app, opts, BaseConfig(opts, kind, nodes));
      std::printf("\n--- %s, %d nodes, window between barriers ---\n", ProtocolName(kind),
                  nodes);
      Table table("");
      table.SetHeader({"Node", "Window(ms)", "Compute(ms)", "Data(ms)", "Lock(ms)",
                       "Protocol(ms)"});
      const int shown = std::min(nodes, 8);  // First 8 processors, like the figure.
      for (NodeId n = 0; n < shown; ++n) {
        const auto lo = r.report.phases.find({window_lo, n});
        const auto hi = r.report.phases.find({window_hi, n});
        if (lo == r.report.phases.end() || hi == r.report.phases.end()) {
          continue;
        }
        const NodeReport& a = lo->second;
        const NodeReport& b = hi->second;
        const SimTime span = b.finish_time - a.finish_time;
        const BusyBreakdown busy = b.cpu_busy - a.cpu_busy;
        const WaitBreakdown waits = b.waits - a.waits;
        table.AddRow({Table::Fmt(static_cast<int64_t>(n)), Table::Fmt(ToMillis(span), 2),
                      Table::Fmt(ToMillis(busy.Get(BusyCat::kCompute)), 2),
                      Table::Fmt(ToMillis(waits.Get(WaitCat::kData)), 2),
                      Table::Fmt(ToMillis(waits.Get(WaitCat::kLock)), 2),
                      Table::Fmt(ToMillis(busy.ProtocolOverhead()), 2)});
      }
      table.Print();
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nPaper §4.5 shapes: at 8 nodes the imbalance is mostly computational; at larger\n"
      "node counts lock waiting dominates and is larger and more imbalanced under LRC\n"
      "than HLRC, because page misses inside critical sections serialize at hot spots.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// Ablation: coherence granularity. Large pages amplify false sharing and
// transfer cost (paper §1 lists the VM page granularity as a core SVM
// limitation); the tradeoff differs for homeless (diff traffic) and
// home-based (whole-page fetch) protocols.
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.apps.size() == 5) {
    opts.apps = {"sor", "raytrace"};  // Coarse-grain vs false-sharing-heavy.
  }
  const int nodes = opts.node_counts.size() > 1 ? opts.node_counts[1] : opts.node_counts[0];

  std::printf("=== Ablation: page size (LRC vs HLRC, %d nodes) ===\n\n", nodes);
  Table table("");
  table.SetHeader({"Application", "Page", "LRC time(s)", "HLRC time(s)", "LRC update",
                   "HLRC update"});
  for (const std::string& app : opts.apps) {
    for (int64_t page : {1024, 4096, 8192, 16384}) {
      BenchOptions o = opts;
      o.page_size = page;
      const AppRunResult lrc = RunVerified(app, o, BaseConfig(o, ProtocolKind::kLrc, nodes));
      const AppRunResult hlrc = RunVerified(app, o, BaseConfig(o, ProtocolKind::kHlrc, nodes));
      table.AddRow({app, Table::FmtBytes(page), FmtSeconds(lrc.report.total_time),
                    FmtSeconds(hlrc.report.total_time),
                    Table::FmtBytes(lrc.report.Totals().traffic.update_bytes_sent),
                    Table::FmtBytes(hlrc.report.Totals().traffic.update_bytes_sent)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nShape to check: HLRC's whole-page transfers grow with the page size while\n"
      "LRC's diff traffic does not, narrowing (or inverting) the bandwidth side of\n"
      "the tradeoff at large pages — the paper's bandwidth-vs-overhead tradeoff.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// Shared harness for the table/figure reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/table.h"
#include "src/sim/sweep.h"  // ParallelMap/ParallelFor for --jobs fan-out.
#include "src/svm/system.h"

namespace hlrc {
namespace bench {

struct BenchOptions {
  std::vector<int> node_counts = {8, 32, 64};
  AppScale scale = AppScale::kDefault;
  std::vector<ProtocolKind> protocols = {ProtocolKind::kLrc, ProtocolKind::kOlrc,
                                         ProtocolKind::kHlrc, ProtocolKind::kOhlrc};
  std::vector<std::string> apps;  // Empty => all five.
  int64_t page_size = 4096;
  HomePolicy home_policy = HomePolicy::kBlock;
  bool verify = true;
  // Fault injection (docs/FAULTS.md): a nonzero drop rate makes BaseConfig
  // produce a lossy fabric with reliable delivery enabled, so any table can
  // be regenerated under degradation (e.g. table5_traffic --fault-drop=0.01).
  double fault_drop = 0.0;
  uint64_t fault_seed = 42;
  // Reliable delivery without faults (--reliable): acks/retransmit machinery
  // on a clean fabric, the baseline the coalesced wire plane is measured
  // against (table5_traffic --coalesce).
  bool reliable = false;
  // Coalesced wire plane (--coalesce) + combining barrier tree
  // (--barrier-arity=N). Piggybacked acks engage when reliability is on.
  bool coalesce = false;
  int barrier_arity = 0;
  // Worker threads for benchmarks that fan data points out through
  // ParallelMap (src/sim/sweep.h). Each data point is an isolated System, so
  // tables and JSON output are byte-identical at any job count.
  // 0 = hardware concurrency.
  int jobs = 0;
  // When non-empty, benchmarks that support it also write their results as a
  // machine-readable JSON file (schema "hlrc-bench" v1) for plotting and
  // regression tracking alongside the ASCII table.
  std::string json_out;
  // Benchmarks that support it (fig3_time_breakdowns) add a causal-span
  // critical-path companion table (docs/OBSERVABILITY.md).
  bool causal = false;
};

// Parses --nodes=8,32,64 --scale=tiny|default|paper --apps=lu,sor
// --protocols=lrc,hlrc --page-size=4096 --fault-drop=0.01 --fault-seed=7.
// Unknown flags abort with usage.
BenchOptions ParseArgs(int argc, char** argv);

SimConfig BaseConfig(const BenchOptions& opts, ProtocolKind kind, int nodes);

// Runs one application once; aborts if verification fails (a benchmark on an
// incorrect run would be meaningless).
AppRunResult RunVerified(const std::string& app_name, const BenchOptions& opts,
                         const SimConfig& cfg);

// Virtual time of the uniprocessor computation (the paper's "sequential
// execution time" baseline): the pure compute time of a 1-node run.
SimTime SequentialTime(const std::string& app_name, const BenchOptions& opts);

std::string FmtSeconds(SimTime t);

// Accumulates one flat result row per benchmark data point and writes them
// as {"schema":"hlrc-bench","version":1,"bench":...,"rows":[{...},...]}.
// Field order within a row is preserved. Usage:
//   BenchJson json("table2_speedups");
//   json.BeginRow();
//   json.Add("app", app); json.Add("nodes", nodes); json.Add("speedup", s);
//   json.EndRow();
//   ... if (!opts.json_out.empty()) json.WriteFile(opts.json_out);
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void BeginRow();
  void Add(const std::string& key, const std::string& v);
  void Add(const std::string& key, const char* v);
  void Add(const std::string& key, int64_t v);
  void Add(const std::string& key, int v) { Add(key, static_cast<int64_t>(v)); }
  void Add(const std::string& key, double v);
  void EndRow();

  std::string ToJson() const;
  // Writes ToJson() to `path`; aborts with a message on I/O failure (a bench
  // run whose results vanish is worse than one that stops).
  void WriteFile(const std::string& path) const;

 private:
  struct Field {
    enum class Kind { kString, kInt, kDouble } kind;
    std::string key;
    std::string s;
    int64_t i = 0;
    double d = 0.0;
  };
  std::string bench_name_;
  std::vector<std::vector<Field>> rows_;
  bool in_row_ = false;
};

}  // namespace bench
}  // namespace hlrc

#endif  // BENCH_BENCH_UTIL_H_

// Shared harness for the table/figure reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/table.h"
#include "src/svm/system.h"

namespace hlrc {
namespace bench {

struct BenchOptions {
  std::vector<int> node_counts = {8, 32, 64};
  AppScale scale = AppScale::kDefault;
  std::vector<ProtocolKind> protocols = {ProtocolKind::kLrc, ProtocolKind::kOlrc,
                                         ProtocolKind::kHlrc, ProtocolKind::kOhlrc};
  std::vector<std::string> apps;  // Empty => all five.
  int64_t page_size = 4096;
  HomePolicy home_policy = HomePolicy::kBlock;
  bool verify = true;
  // Fault injection (docs/FAULTS.md): a nonzero drop rate makes BaseConfig
  // produce a lossy fabric with reliable delivery enabled, so any table can
  // be regenerated under degradation (e.g. table5_traffic --fault-drop=0.01).
  double fault_drop = 0.0;
  uint64_t fault_seed = 42;
};

// Parses --nodes=8,32,64 --scale=tiny|default|paper --apps=lu,sor
// --protocols=lrc,hlrc --page-size=4096 --fault-drop=0.01 --fault-seed=7.
// Unknown flags abort with usage.
BenchOptions ParseArgs(int argc, char** argv);

SimConfig BaseConfig(const BenchOptions& opts, ProtocolKind kind, int nodes);

// Runs one application once; aborts if verification fails (a benchmark on an
// incorrect run would be meaningless).
AppRunResult RunVerified(const std::string& app_name, const BenchOptions& opts,
                         const SimConfig& cfg);

// Virtual time of the uniprocessor computation (the paper's "sequential
// execution time" baseline): the pure compute time of a 1-node run.
SimTime SequentialTime(const std::string& app_name, const BenchOptions& opts);

std::string FmtSeconds(SimTime t);

}  // namespace bench
}  // namespace hlrc

#endif  // BENCH_BENCH_UTIL_H_

// Reproduces paper Table 4: average per-node operation counts (read misses,
// diffs created/applied, lock acquires, barriers) for LRC vs HLRC on 8 and
// 64 nodes — the "home effect".
#include <cstdio>

#include "bench/bench_util.h"

namespace hlrc {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = ParseArgs(argc, argv);
  if (opts.node_counts.size() == 3 && opts.node_counts[0] == 8) {
    opts.node_counts = {8, 64};  // The paper's Table 4 uses 8 and 64.
  }

  std::printf("=== Table 4: Average number of operations on each node ===\n\n");
  Table table("");
  table.SetHeader({"Application", "Nodes", "ReadMiss LRC", "ReadMiss HLRC", "DiffsCre LRC",
                   "DiffsCre HLRC", "DiffsApp LRC", "DiffsApp HLRC", "Lock acq", "Barriers"});

  for (const std::string& app : opts.apps) {
    for (int nodes : opts.node_counts) {
      const AppRunResult lrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kLrc, nodes));
      const AppRunResult hlrc =
          RunVerified(app, opts, BaseConfig(opts, ProtocolKind::kHlrc, nodes));
      const NodeReport al = lrc.report.Average();
      const NodeReport ah = hlrc.report.Average();
      table.AddRow({app, Table::Fmt(static_cast<int64_t>(nodes)),
                    Table::Fmt(al.proto.read_misses), Table::Fmt(ah.proto.read_misses),
                    Table::Fmt(al.proto.diffs_created), Table::Fmt(ah.proto.diffs_created),
                    Table::Fmt(al.proto.diffs_applied), Table::Fmt(ah.proto.diffs_applied),
                    Table::Fmt(ah.proto.lock_acquires), Table::Fmt(ah.proto.barriers)});
      std::fflush(stdout);
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nHome effect (paper §4.4): HLRC creates no diffs at homes (zero for LU/SOR with\n"
      "block placement), has fewer read misses, and applies each diff exactly once.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::bench::Main(argc, argv); }

// svmfuzz — coverage-guided protocol fuzzer (src/fuzz, docs/FUZZING.md).
//
// Mutates synthetic-workload genomes and chaos-schedule decision strings,
// guided by a protocol-state coverage map (message edges, page-protection
// transitions, sync epochs, fault decisions, interval sizes). Every shared
// read is validated online by the LRC oracle; coverage-novel inputs are
// additionally replayed under several protocol families and their final
// shared-memory images diffed. The first violation or divergence is
// minimized and written as a self-contained repro file.
//
//   svmfuzz --budget=10000 --seed=7
//   svmfuzz --mutation=hlrc-skip-diff-apply --repro-out=bug.repro
//   svmfuzz --repro=bug.repro                # replay a finding
//   svmfuzz --budget=2000 --cover-report     # coverage as a metric
//
// Exit status: 0 clean session (or reproducer confirmed), 1 violation or
// divergence found (or reproducer did not reproduce), 2 bad invocation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/repro.h"
#include "src/sim/sweep.h"

namespace hlrc {
namespace {

const ToolInfo kTool = {
    "svmfuzz",
    "Coverage-guided fuzzer for the SVM protocol families, with an LRC\n"
    "oracle on every shared read and differential cross-protocol replay\n"
    "of coverage-novel inputs.",
    "  --budget=N            total harness executions (default 1000)\n"
    "  --seed=N              session seed (default 1)\n"
    "  --jobs=N              worker threads per batch (default: hardware\n"
    "                        concurrency; results are --jobs independent)\n"
    "  --batch=N             mutants per batch (default 16)\n"
    "  --nodes=N             simulated node count (default 4)\n"
    "  --page-size=BYTES     SVM page size (default 512)\n"
    "  --max-jitter-us=N     max per-message delivery jitter (default 150)\n"
    "  --primary=NAME        protocol fuzzed directly: lrc | olrc | hlrc |\n"
    "                        ohlrc | erc | aurc (default hlrc)\n"
    "  --cross=LIST          differential protocol set (default\n"
    "                        lrc,erc,hlrc,aurc; first entry is the reference)\n"
    "  --mutation=NAME       seeded protocol bug for canary sessions: none |\n"
    "                        hlrc-skip-diff-apply | lrc-skip-invalidate\n"
    "  --fault-drop=P        drop probability under every run (reliable\n"
    "                        delivery is enabled automatically)\n"
    "  --fault-delay=P       delay probability under every run\n"
    "  --no-feedback         disable corpus growth (uniform random control)\n"
    "  --no-differential     skip cross-protocol replay of novel inputs\n"
    "  --max-seconds=S       wall-clock bound, checked between batches\n"
    "  --corpus-out=DIR      write the final corpus as repro files\n"
    "  --repro-out=FILE      write the minimized failure repro here\n"
    "                        (default: svmfuzz-failure.repro)\n"
    "  --cover-report        print the per-domain coverage breakdown\n"
    "  --repro=FILE          replay one repro file instead of fuzzing\n",
};

ProtocolKind ParseProtocol(const std::string& s) {
  if (s == "lrc") return ProtocolKind::kLrc;
  if (s == "olrc") return ProtocolKind::kOlrc;
  if (s == "hlrc") return ProtocolKind::kHlrc;
  if (s == "ohlrc") return ProtocolKind::kOhlrc;
  if (s == "erc") return ProtocolKind::kErc;
  if (s == "aurc") return ProtocolKind::kAurc;
  UsageError(kTool, "unknown protocol '" + s + "'");
}

TestMutation ParseMutation(const std::string& s) {
  if (s == "none") return TestMutation::kNone;
  if (s == "hlrc-skip-diff-apply") return TestMutation::kHlrcSkipDiffApply;
  if (s == "lrc-skip-invalidate") return TestMutation::kLrcSkipInvalidate;
  UsageError(kTool, "unknown mutation '" + s + "'");
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) {
      out.push_back(s.substr(pos, end - pos));
    }
    pos = end + 1;
  }
  return out;
}

int ReplayFile(const std::string& path) {
  fuzz::ReproFile repro;
  std::string error;
  if (!fuzz::LoadReproFile(path, &repro, &error)) {
    std::fprintf(stderr, "svmfuzz: %s\n", error.c_str());
    return 2;
  }
  std::printf("svmfuzz: replaying %s (%s, %d nodes, origin %s)\n", path.c_str(),
              ProtocolName(repro.config.protocol), repro.input.workload.nodes,
              repro.input.workload.origin.c_str());
  const std::string violation = fuzz::ReplayRepro(repro);
  if (violation.empty()) {
    std::printf("svmfuzz: repro did NOT reproduce (run was clean)\n");
    if (!repro.violation.empty()) {
      std::printf("  recorded violation was: %s\n", repro.violation.c_str());
    }
    return 1;
  }
  std::printf("svmfuzz: reproduced: %s\n", violation.c_str());
  return 0;
}

bool WriteCorpus(const std::string& dir, const fuzz::Fuzzer& fuzzer,
                 const fuzz::FuzzConfig& cfg) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "svmfuzz: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  int idx = 0;
  for (const fuzz::FuzzInput& input : fuzzer.corpus()) {
    fuzz::ReproFile entry;
    entry.input = input;
    entry.config.protocol = cfg.primary;
    entry.config.mutation = cfg.mutation;
    char name[64];
    std::snprintf(name, sizeof(name), "corpus-%04d.repro", idx++);
    std::string error;
    if (!fuzz::WriteReproFile(dir + "/" + name, entry, &error)) {
      std::fprintf(stderr, "svmfuzz: %s\n", error.c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  fuzz::FuzzConfig cfg;
  cfg.jobs = 0;  // EffectiveJobs resolves 0 to hardware concurrency.
  std::string corpus_out;
  std::string repro_out = "svmfuzz-failure.repro";
  std::string replay_path;
  bool cover_report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* p) { return arg.substr(std::strlen(p)); };
    if (arg.rfind("--budget=", 0) == 0) {
      cfg.budget = std::atoi(val("--budget=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::strtoull(val("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg.jobs = std::atoi(val("--jobs=").c_str());
    } else if (arg.rfind("--batch=", 0) == 0) {
      cfg.batch = std::atoi(val("--batch=").c_str());
    } else if (arg.rfind("--nodes=", 0) == 0) {
      cfg.nodes = std::atoi(val("--nodes=").c_str());
    } else if (arg.rfind("--page-size=", 0) == 0) {
      cfg.page_size = std::atoll(val("--page-size=").c_str());
    } else if (arg.rfind("--max-jitter-us=", 0) == 0) {
      cfg.max_jitter = Micros(std::atoll(val("--max-jitter-us=").c_str()));
    } else if (arg.rfind("--primary=", 0) == 0) {
      cfg.primary = ParseProtocol(val("--primary="));
    } else if (arg.rfind("--cross=", 0) == 0) {
      cfg.cross.clear();
      for (const std::string& p : SplitList(val("--cross="))) {
        cfg.cross.push_back(ParseProtocol(p));
      }
    } else if (arg.rfind("--mutation=", 0) == 0) {
      cfg.mutation = ParseMutation(val("--mutation="));
    } else if (arg.rfind("--fault-drop=", 0) == 0) {
      cfg.fault_drop = std::atof(val("--fault-drop=").c_str());
    } else if (arg.rfind("--fault-delay=", 0) == 0) {
      cfg.fault_delay = std::atof(val("--fault-delay=").c_str());
    } else if (arg == "--no-feedback") {
      cfg.feedback = false;
    } else if (arg == "--no-differential") {
      cfg.differential = false;
    } else if (arg.rfind("--max-seconds=", 0) == 0) {
      cfg.max_seconds = std::atof(val("--max-seconds=").c_str());
    } else if (arg.rfind("--corpus-out=", 0) == 0) {
      corpus_out = val("--corpus-out=");
    } else if (arg.rfind("--repro-out=", 0) == 0) {
      repro_out = val("--repro-out=");
    } else if (arg == "--cover-report") {
      cover_report = true;
    } else if (arg.rfind("--repro=", 0) == 0) {
      replay_path = val("--repro=");
    } else if (!HandleCommonFlag(kTool, arg)) {
      UsageError(kTool, "unknown flag: " + arg);
    }
  }
  if (!replay_path.empty()) {
    return ReplayFile(replay_path);
  }
  if (cfg.budget <= 0 || cfg.batch <= 0 || cfg.nodes < 2 || cfg.page_size <= 0) {
    UsageError(kTool, "--budget, --batch must be positive; --nodes at least 2");
  }
  cfg.jobs = EffectiveJobs(cfg.jobs, cfg.batch);

  std::printf("svmfuzz: seed=%llu budget=%d batch=%d jobs=%d primary=%s mutation=%s%s%s\n",
              static_cast<unsigned long long>(cfg.seed), cfg.budget, cfg.batch, cfg.jobs,
              ProtocolName(cfg.primary), TestMutationName(cfg.mutation),
              cfg.feedback ? "" : " (no feedback)",
              cfg.differential ? "" : " (no differential)");
  fuzz::Fuzzer fuzzer(cfg);
  const fuzz::FuzzResult result = fuzzer.Run();

  std::printf("svmfuzz: %d executions in %d batches, %d differential, corpus %d "
              "(%d coverage-novel), %zu coverage points / %lld hits\n",
              result.stats.executions, result.stats.batches,
              result.stats.differential_runs, result.stats.corpus_size,
              result.stats.novel_inputs, result.coverage_points,
              static_cast<long long>(result.coverage_hits));
  if (cover_report) {
    std::printf("%s", result.coverage_report.c_str());
  }
  if (!corpus_out.empty() && !WriteCorpus(corpus_out, fuzzer, cfg)) {
    return 2;
  }
  if (!result.found_failure) {
    std::printf("svmfuzz: no violation found\n");
    return 0;
  }
  std::printf("svmfuzz: VIOLATION: %s\n", result.violation.c_str());
  std::string error;
  if (!fuzz::WriteReproFile(repro_out, result.repro, &error)) {
    std::fprintf(stderr, "svmfuzz: %s\n", error.c_str());
  } else {
    std::printf("svmfuzz: minimized repro written to %s (replay: svmfuzz --repro=%s)\n",
                repro_out.c_str(), repro_out.c_str());
  }
  return 1;
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

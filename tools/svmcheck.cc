// svmcheck — schedule-exploration driver for the consistency checker
// (src/check, docs/CHECKING.md).
//
// Sweeps seeded schedule perturbations of the litmus programs under the
// selected protocols, validating every shared read against the LRC oracle.
// On a violation it shrinks the failing schedule to the shortest chaos
// prefix that still fails and prints the (seed, decision-limit) pair that
// replays it.
//
//   svmcheck                                  # all litmus x all protocols
//   svmcheck --litmus=message-passing --protocols=hlrc --seeds=1000
//   svmcheck --mutation=hlrc-skip-diff-apply  # prove the oracle has teeth
//   svmcheck --replay-seed=17 --limit=42 --litmus=lock-handoff --protocols=lrc
//
// Flags:
//   --litmus=LIST         comma-separated litmus names, or "all" (default)
//   --protocols=LIST      lrc | olrc | hlrc | ohlrc | erc | aurc, or "all"
//                         (default: the four evaluated families
//                         lrc,erc,hlrc,aurc)
//   --seeds=N             seeds per (litmus, protocol) pair (default 100)
//   --seed=N              first seed of the sweep (default 1)
//   --jobs=N              worker threads per sweep (default: hardware
//                         concurrency; each seed runs its own System, and the
//                         report is byte-identical to --jobs=1)
//   --nodes=N             node count (default 4)
//   --rounds=N            litmus rounds (default 3)
//   --page-size=BYTES     SVM page size (default 512)
//   --max-jitter-us=N     max per-message delivery jitter (default 150; 0 off)
//   --no-permute          disable the same-time event permutation
//   --mutation=NAME       none | hlrc-skip-diff-apply | lrc-skip-invalidate
//   --fault-drop=P        compose with fault injection: drop probability
//                         (enables the reliable channel automatically)
//   --coalesce            coalesced wire plane (frame packing, request
//                         combining; piggybacked acks with --fault-drop)
//   --barrier-arity=N     combining barrier tree of arity N (0 = flat)
//   --stop-on-failure     stop a sweep at its first failing seed
//   --replay-seed=N       run exactly one seed and print its chaos decision
//                         trace (scheduler decisions — neither an execution
//                         trace nor a workload trace)
//   --limit=N             decision limit for --replay-seed (default: unlimited)
//   --list                print litmus and protocol names
//
// Exit status: 0 if every run satisfied the oracle, 1 otherwise.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/apps/litmus.h"
#include "src/check/explorer.h"
#include "src/common/cli.h"
#include "src/sim/sweep.h"

namespace hlrc {
namespace {

struct Options {
  std::vector<std::string> litmus;
  std::vector<ProtocolKind> protocols;
  int seeds = 100;
  uint64_t first_seed = 1;
  int jobs = 0;  // 0 = hardware concurrency.
  int nodes = 4;
  int rounds = 3;
  int64_t page_size = 512;
  SimTime max_jitter = Micros(150);
  bool permute = true;
  TestMutation mutation = TestMutation::kNone;
  double fault_drop = 0.0;
  bool coalesce = false;
  int barrier_arity = 0;
  bool stop_on_failure = false;
  bool replay = false;
  uint64_t replay_seed = 0;
  bool limit_set = false;
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

const ToolInfo kTool = {
    "svmcheck",
    "Sweeps seeded schedule perturbations of the litmus programs under the\n"
    "selected protocols, validating every shared read against the LRC\n"
    "oracle; failing schedules are minimized to a replayable\n"
    "(seed, decision-limit) pair.",
    "  --litmus=LIST         comma-separated litmus names, or \"all\" (default)\n"
    "  --protocols=LIST      lrc | olrc | hlrc | ohlrc | erc | aurc, or \"all\"\n"
    "                        (default: lrc,erc,hlrc,aurc)\n"
    "  --seeds=N             seeds per (litmus, protocol) pair (default 100)\n"
    "  --seed=N              first seed of the sweep (default 1)\n"
    "  --jobs=N              worker threads per sweep (default: hardware\n"
    "                        concurrency; report is --jobs independent)\n"
    "  --nodes=N             node count (default 4)\n"
    "  --rounds=N            litmus rounds (default 3)\n"
    "  --page-size=BYTES     SVM page size (default 512)\n"
    "  --max-jitter-us=N     max per-message delivery jitter (default 150)\n"
    "  --no-permute          disable the same-time event permutation\n"
    "  --mutation=NAME       none | hlrc-skip-diff-apply | lrc-skip-invalidate\n"
    "  --fault-drop=P        compose with fault injection: drop probability\n"
    "  --coalesce            coalesced wire plane (frame packing, request\n"
    "                        combining; piggybacked acks with --fault-drop)\n"
    "  --barrier-arity=N     combining barrier tree of arity N (0 = flat)\n"
    "  --stop-on-failure     stop a sweep at its first failing seed\n"
    "  --replay-seed=N       run exactly one seed (requires --limit)\n"
    "  --limit=N             decision limit for --replay-seed\n"
    "  --list                print litmus, protocol and mutation names\n",
};

const char* ProtocolFlag(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kLrc: return "lrc";
    case ProtocolKind::kOlrc: return "olrc";
    case ProtocolKind::kHlrc: return "hlrc";
    case ProtocolKind::kOhlrc: return "ohlrc";
    case ProtocolKind::kErc: return "erc";
    case ProtocolKind::kAurc: return "aurc";
  }
  return "?";
}

ProtocolKind ParseProtocol(const std::string& s) {
  if (s == "lrc") return ProtocolKind::kLrc;
  if (s == "olrc") return ProtocolKind::kOlrc;
  if (s == "hlrc") return ProtocolKind::kHlrc;
  if (s == "ohlrc") return ProtocolKind::kOhlrc;
  if (s == "erc") return ProtocolKind::kErc;
  if (s == "aurc") return ProtocolKind::kAurc;
  UsageError(kTool, "unknown protocol '" + s + "'");
}

TestMutation ParseMutation(const std::string& s) {
  if (s == "none") return TestMutation::kNone;
  if (s == "hlrc-skip-diff-apply") return TestMutation::kHlrcSkipDiffApply;
  if (s == "lrc-skip-invalidate") return TestMutation::kLrcSkipInvalidate;
  UsageError(kTool, "unknown mutation '" + s + "'");
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) {
      out.push_back(s.substr(pos, end - pos));
    }
    pos = end + 1;
  }
  return out;
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* p) { return arg.substr(std::strlen(p)); };
    if (arg == "--list") {
      std::printf("litmus tests:");
      for (const std::string& l : LitmusNames()) {
        std::printf(" %s", l.c_str());
      }
      std::printf("\nprotocols: lrc olrc hlrc ohlrc erc aurc\n");
      std::printf("mutations: none hlrc-skip-diff-apply lrc-skip-invalidate\n");
      std::exit(0);
    } else if (arg.rfind("--litmus=", 0) == 0) {
      const std::string s = val("--litmus=");
      o.litmus = s == "all" ? LitmusNames() : SplitList(s);
    } else if (arg.rfind("--protocols=", 0) == 0) {
      const std::string s = val("--protocols=");
      for (const std::string& p :
           SplitList(s == "all" ? "lrc,olrc,hlrc,ohlrc,erc,aurc" : s)) {
        o.protocols.push_back(ParseProtocol(p));
      }
    } else if (arg.rfind("--seeds=", 0) == 0) {
      o.seeds = std::atoi(val("--seeds=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.first_seed = std::strtoull(val("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      o.jobs = std::atoi(val("--jobs=").c_str());
    } else if (arg.rfind("--nodes=", 0) == 0) {
      o.nodes = std::atoi(val("--nodes=").c_str());
    } else if (arg.rfind("--rounds=", 0) == 0) {
      o.rounds = std::atoi(val("--rounds=").c_str());
    } else if (arg.rfind("--page-size=", 0) == 0) {
      o.page_size = std::atoll(val("--page-size=").c_str());
    } else if (arg.rfind("--max-jitter-us=", 0) == 0) {
      o.max_jitter = Micros(std::atoll(val("--max-jitter-us=").c_str()));
    } else if (arg == "--no-permute") {
      o.permute = false;
    } else if (arg.rfind("--mutation=", 0) == 0) {
      o.mutation = ParseMutation(val("--mutation="));
    } else if (arg.rfind("--fault-drop=", 0) == 0) {
      o.fault_drop = std::atof(val("--fault-drop=").c_str());
    } else if (arg == "--coalesce") {
      o.coalesce = true;
    } else if (arg.rfind("--barrier-arity=", 0) == 0) {
      o.barrier_arity = std::atoi(val("--barrier-arity=").c_str());
      if (o.barrier_arity < 0) {
        UsageError(kTool, "--barrier-arity must be >= 0");
      }
    } else if (arg == "--stop-on-failure") {
      o.stop_on_failure = true;
    } else if (arg.rfind("--replay-seed=", 0) == 0) {
      o.replay = true;
      o.replay_seed = std::strtoull(val("--replay-seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--limit=", 0) == 0) {
      o.limit = std::strtoull(val("--limit=").c_str(), nullptr, 10);
      o.limit_set = true;
    } else if (!HandleCommonFlag(kTool, arg)) {
      UsageError(kTool, "unknown flag: " + arg);
    }
  }
  // --replay-seed and --limit only make sense as a pair: a replay without a
  // decision limit is not the minimized schedule svmcheck printed, and a
  // limit without a replay seed would silently run a full sweep.
  if (o.replay && !o.limit_set) {
    UsageError(kTool, "--replay-seed requires --limit");
  }
  if (o.limit_set && !o.replay) {
    UsageError(kTool, "--limit requires --replay-seed");
  }
  if (o.litmus.empty()) {
    o.litmus = LitmusNames();
  }
  // Validate names up front: a typo should list the alternatives, not abort
  // mid-sweep inside MakeLitmus.
  for (const std::string& name : o.litmus) {
    bool known = false;
    for (const std::string& l : LitmusNames()) {
      known = known || l == name;
    }
    if (!known) {
      std::fprintf(stderr, "unknown litmus '%s'; known litmus tests:", name.c_str());
      for (const std::string& l : LitmusNames()) {
        std::fprintf(stderr, " %s", l.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
  }
  if (o.protocols.empty()) {
    o.protocols = {ProtocolKind::kLrc, ProtocolKind::kErc, ProtocolKind::kHlrc,
                   ProtocolKind::kAurc};
  }
  return o;
}

CheckConfig BaseConfig(const Options& o, const std::string& litmus, ProtocolKind protocol) {
  CheckConfig cfg;
  cfg.litmus = litmus;
  cfg.protocol = protocol;
  cfg.nodes = o.nodes;
  cfg.rounds = o.rounds;
  cfg.page_size = o.page_size;
  cfg.permute_tasks = o.permute;
  cfg.max_jitter = o.max_jitter;
  cfg.mutation = o.mutation;
  if (o.fault_drop > 0) {
    cfg.fault.drop_prob = o.fault_drop;
    cfg.reliability.enabled = true;
  }
  cfg.coalesce = o.coalesce;
  cfg.barrier_arity = o.barrier_arity;
  return cfg;
}

void PrintViolations(const CheckResult& r) {
  for (const OracleViolation& v : r.violations) {
    std::printf("    violation: %s\n", v.description.c_str());
  }
}

void PrintTrace(const CheckResult& r, uint64_t limit) {
  std::printf("    decision trace (%llu chaos decisions%s):",
              static_cast<unsigned long long>(std::min(limit, r.decisions_used)),
              r.trace.size() < std::min<uint64_t>(limit, r.decisions_used) ? ", first shown"
                                                                           : "");
  uint64_t shown = 0;
  for (const ChaosDecision& d : r.trace) {
    if (d.index >= limit) {
      break;
    }
    std::printf(" %c:%llu", d.kind, static_cast<unsigned long long>(d.value));
    if (++shown >= 16) {
      std::printf(" ...");
      break;
    }
  }
  std::printf("\n");
}

int Replay(const Options& o) {
  int rc = 0;
  for (const std::string& litmus : o.litmus) {
    for (ProtocolKind protocol : o.protocols) {
      CheckConfig cfg = BaseConfig(o, litmus, protocol);
      cfg.seed = o.replay_seed;
      cfg.decision_limit = o.limit;
      const CheckResult r = RunOne(cfg);
      std::printf("%-20s %-6s seed=%llu limit=%llu: %s (%lld reads, %lld writes, %llu decisions)\n",
                  litmus.c_str(), ProtocolName(protocol),
                  static_cast<unsigned long long>(o.replay_seed),
                  static_cast<unsigned long long>(o.limit), r.ok ? "ok" : "VIOLATION",
                  static_cast<long long>(r.reads_checked),
                  static_cast<long long>(r.writes_recorded),
                  static_cast<unsigned long long>(r.decisions_used));
      PrintTrace(r, o.limit);
      if (!r.ok) {
        PrintViolations(r);
        rc = 1;
      }
    }
  }
  return rc;
}

int Main(int argc, char** argv) {
  const Options o = Parse(argc, argv);
  if (o.replay) {
    return Replay(o);
  }

  const int jobs = EffectiveJobs(o.jobs, o.seeds);
  std::printf("svmcheck: %d seeds per pair, %d nodes, %d rounds, mutation=%s\n", o.seeds,
              o.nodes, o.rounds, TestMutationName(o.mutation));
  int total_failures = 0;
  int64_t total_reads = 0;
  for (const std::string& litmus : o.litmus) {
    for (ProtocolKind protocol : o.protocols) {
      const CheckConfig base = BaseConfig(o, litmus, protocol);
      // Materialize the per-seed results, then aggregate and print with a
      // sequential scan in seed order — the report is byte-identical at any
      // job count. With --stop-on-failure on one job, the historical
      // streaming path avoids running seeds past the first failure; in
      // parallel every seed runs and the scan truncates instead.
      std::vector<CheckResult> results;
      if (jobs <= 1 && o.stop_on_failure) {
        for (int i = 0; i < o.seeds; ++i) {
          CheckConfig cfg = base;
          cfg.seed = o.first_seed + static_cast<uint64_t>(i);
          results.push_back(RunOne(cfg));
          if (!results.back().ok) {
            break;
          }
        }
      } else {
        results = ParallelMap<CheckResult>(o.seeds, jobs, [&base, &o](int i) {
          CheckConfig cfg = base;
          cfg.seed = o.first_seed + static_cast<uint64_t>(i);
          return RunOne(cfg);
        });
      }
      bool printed_failure = false;
      SweepResult sweep;
      for (size_t i = 0; i < results.size(); ++i) {
        const CheckResult& r = results[i];
        const uint64_t s = o.first_seed + static_cast<uint64_t>(i);
        ++sweep.runs;
        sweep.reads_checked += r.reads_checked;
        sweep.writes_recorded += r.writes_recorded;
        if (!r.ok) {
          ++sweep.failures;
          if (!sweep.found_failure) {
            sweep.found_failure = true;
            sweep.first_failing_seed = s;
          }
          if (!printed_failure) {
            printed_failure = true;
            std::printf("%-20s %-6s seed=%llu: VIOLATION — minimizing...\n", litmus.c_str(),
                        ProtocolName(protocol), static_cast<unsigned long long>(s));
            CheckConfig failing = base;
            failing.seed = s;
            const MinimizedSchedule min = Minimize(failing);
            std::printf("  reproduce: svmcheck --replay-seed=%llu --limit=%llu "
                        "--litmus=%s --protocols=%s --nodes=%d --rounds=%d%s%s\n",
                        static_cast<unsigned long long>(s),
                        static_cast<unsigned long long>(min.config.decision_limit),
                        litmus.c_str(), ProtocolFlag(protocol), o.nodes, o.rounds,
                        o.mutation != TestMutation::kNone ? " --mutation=" : "",
                        o.mutation != TestMutation::kNone ? TestMutationName(o.mutation) : "");
            PrintTrace(min.result, min.config.decision_limit);
            PrintViolations(min.result);
          }
          if (o.stop_on_failure) {
            break;
          }
        }
      }
      std::printf("%-20s %-6s: %d seeds, %d violation%s, %lld reads checked\n",
                  litmus.c_str(), ProtocolName(protocol), sweep.runs, sweep.failures,
                  sweep.failures == 1 ? "" : "s", static_cast<long long>(sweep.reads_checked));
      total_failures += sweep.failures;
      total_reads += sweep.reads_checked;
    }
  }
  std::printf("total: %lld reads checked, %d violating run%s\n",
              static_cast<long long>(total_reads), total_failures,
              total_failures == 1 ? "" : "s");
  return total_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

// svmsim — command-line driver for the HLRC shared-virtual-memory simulator.
//
// Runs one benchmark application under one protocol and prints the full
// paper-style report: time breakdown, operation counts, traffic, protocol
// memory, and optionally a Chrome trace.
//
//   svmsim --app=water-nsq --protocol=hlrc --nodes=32
//   svmsim --app=lu --protocol=lrc --nodes=64 --scale=paper --trace=lu.json
//   svmsim --list
//
// Flags:
//   --app=NAME            lu | sor | water-nsq | water-sp | raytrace
//   --protocol=NAME       lrc | olrc | hlrc | ohlrc | erc | aurc
//   --nodes=N             node count (default 8)
//   --scale=S             tiny | default | paper
//   --page-size=BYTES     SVM page size (default 4096)
//   --home=POLICY         block | round-robin | single-node
//   --diff-policy=P       eager | lazy (homeless protocols)
//   --gc-threshold=BYTES  homeless GC trigger (default 4 MiB)
//   --migrate-homes       enable dynamic home migration (home-based)
//   --trace=FILE.json     write a chrome://tracing execution trace (protocol
//                         event timeline; distinct from a --record-trace
//                         workload trace)
//   --per-node            print the per-node breakdown table
//   --no-verify           skip result verification
//   --verbose             print a host wall-clock summary after the report
//                         (events processed, events/sec, peak RSS)
//   --seed=N              root seed (application inputs + fault injector)
//
// Workload capture & replay (docs/WORKLOADS.md):
//   --record-trace=FILE   record the run's shared-access/sync workload into
//                         a trace file (pure observation; timing unchanged)
//   --replay-trace=FILE   replay a recorded trace instead of running an app
//                         (defaults --nodes/--page-size to the trace header;
//                         combine with --protocol to cross-replay)
//
// Observability (docs/OBSERVABILITY.md):
//   --metrics-out=FILE    write a versioned JSON run summary (latency
//                         histograms, time-series samples, hot pages, causal
//                         spans); also adds Perfetto counter tracks and span
//                         flow events to --trace
//   --sample-interval=US  metrics sampler period in simulated microseconds
//                         (default 1000; implies metrics collection)
//
// Fault injection & reliable delivery (docs/FAULTS.md):
//   --fault-drop=P        drop each message with probability P
//   --fault-dup=P         duplicate each message with probability P
//   --fault-delay=P       delay each message with probability P
//   --fault-corrupt=P     corrupt-and-drop each message with probability P
//   --fault-seed=N        injector seed (default: derived from --seed)
//   --partition=a-b@t0..t1  partition node lists a and b during [t0,t1) ms
//                           (repeatable; empty b = rest of the machine)
//   --reliable            enable ack/retransmit delivery (implied by faults)
//   --retry-timeout=US    retransmit timeout in microseconds (default 10000)
//   --retry-max=N         retransmissions per message before aborting
//   --coalesce            coalesced wire plane (frame packing, ack
//                         piggybacking, request combining)
//   --barrier-arity=N     combining barrier tree of arity N (0 = flat)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/apps/app.h"
#include "src/common/cli.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/fuzz/coverage.h"
#include "src/fault/fault_plan.h"
#include "src/metrics/sampler.h"
#include "src/svm/run_summary.h"
#include "src/svm/system.h"
#include "src/tracing/span.h"
#include "src/wkld/recorder.h"
#include "src/wkld/replay.h"
#include "src/wkld/trace_file.h"

namespace hlrc {
namespace {

struct Options {
  std::string app = "sor";
  bool app_set = false;
  std::string record_trace_path;
  std::string replay_trace_path;
  ProtocolKind protocol = ProtocolKind::kHlrc;
  int nodes = 8;
  bool nodes_set = false;
  bool page_size_set = false;
  AppScale scale = AppScale::kDefault;
  int64_t page_size = 4096;
  HomePolicy home = HomePolicy::kBlock;
  DiffPolicy diff_policy = DiffPolicy::kEager;
  int64_t gc_threshold = 4ll << 20;
  std::string trace_path;
  std::string metrics_path;
  SimTime sample_interval = Millis(1);
  bool migrate_homes = false;
  bool per_node = false;
  bool verbose = false;
  bool verify = true;
  bool seed_set = false;
  uint64_t seed = 42;
  FaultPlan fault;
  bool fault_seed_set = false;
  bool reliable = false;
  SimTime retry_timeout = Micros(10000);
  int retry_max = 12;
  bool coalesce = false;
  int barrier_arity = 0;
  bool coverage = false;
};

const ToolInfo kTool = {
    "svmsim",
    "Runs one benchmark application under one SVM protocol and prints the\n"
    "paper-style report (time breakdown, operation counts, traffic).",
    "  --app=NAME            lu | sor | water-nsq | water-sp | raytrace\n"
    "  --protocol=NAME       lrc | olrc | hlrc | ohlrc | erc | aurc\n"
    "  --nodes=N             node count (default 8)\n"
    "  --scale=S             tiny | default | paper\n"
    "  --page-size=BYTES     SVM page size (default 4096)\n"
    "  --home=POLICY         block | round-robin | single-node\n"
    "  --diff-policy=P       eager | lazy (homeless protocols)\n"
    "  --gc-threshold=BYTES  homeless GC trigger (default 4 MiB)\n"
    "  --migrate-homes       enable dynamic home migration (home-based)\n"
    "  --trace=FILE.json     write a chrome://tracing execution trace (event\n"
    "                        timeline; distinct from a workload trace)\n"
    "  --per-node            print the per-node breakdown table\n"
    "  --no-verify           skip result verification\n"
    "  --verbose             print a host wall-clock summary\n"
    "  --seed=N              root seed (app inputs + fault injector)\n"
    "  --record-trace=FILE   record the run's workload trace (shared accesses\n"
    "                        and sync; replayable input, not a timeline)\n"
    "  --replay-trace=FILE   replay a recorded workload trace instead of an app\n"
    "  --metrics-out=FILE    write a versioned JSON run summary (includes the\n"
    "                        causal-span section read by svmtrace)\n"
    "  --sample-interval=US  metrics sampler period (default 1000)\n"
    "  --coverage            collect protocol-state coverage; printed after\n"
    "                        the report and exported in --metrics-out\n"
    "  --fault-drop=P --fault-dup=P --fault-delay=P --fault-corrupt=P\n"
    "                        per-message fault probabilities\n"
    "  --fault-seed=N        injector seed (default: derived from --seed)\n"
    "  --partition=a-b@t0..t1  partition node lists a and b during [t0,t1) ms\n"
    "  --reliable            enable ack/retransmit delivery (implied by faults)\n"
    "  --retry-timeout=US    retransmit timeout (default 10000)\n"
    "  --retry-max=N         retransmissions per message before aborting\n"
    "  --coalesce            coalesced wire plane: same-tick sends to one peer\n"
    "                        packed into multi-part frames, acks piggybacked on\n"
    "                        data (with --reliable), page requests combined at\n"
    "                        the home\n"
    "  --barrier-arity=N     combining barrier tree of arity N (default 0 =\n"
    "                        flat all-to-manager barrier)\n"
    "  --list                print application and protocol names\n",
};

ProtocolKind ParseProtocol(const std::string& s) {
  if (s == "lrc") return ProtocolKind::kLrc;
  if (s == "olrc") return ProtocolKind::kOlrc;
  if (s == "hlrc") return ProtocolKind::kHlrc;
  if (s == "ohlrc") return ProtocolKind::kOhlrc;
  if (s == "erc") return ProtocolKind::kErc;
  if (s == "aurc") return ProtocolKind::kAurc;
  UsageError(kTool, "unknown protocol '" + s + "'");
}

// Peak resident set size of this process, in bytes (0 when unavailable).
int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<int64_t>(ru.ru_maxrss);  // Bytes on macOS.
#else
  return static_cast<int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux.
#endif
#else
  return 0;
#endif
}

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* p) { return arg.substr(std::strlen(p)); };
    if (arg == "--list") {
      std::printf("applications:");
      for (const std::string& a : RegisteredAppNames()) {
        std::printf(" %s", a.c_str());
      }
      std::printf("\nprotocols: lrc olrc hlrc ohlrc erc aurc\n");
      std::exit(0);
    } else if (arg.rfind("--app=", 0) == 0) {
      o.app = val("--app=");
      o.app_set = true;
    } else if (arg.rfind("--record-trace=", 0) == 0) {
      o.record_trace_path = val("--record-trace=");
    } else if (arg.rfind("--replay-trace=", 0) == 0) {
      o.replay_trace_path = val("--replay-trace=");
    } else if (arg.rfind("--protocol=", 0) == 0) {
      o.protocol = ParseProtocol(val("--protocol="));
    } else if (arg.rfind("--nodes=", 0) == 0) {
      o.nodes = std::atoi(val("--nodes=").c_str());
      o.nodes_set = true;
    } else if (arg.rfind("--scale=", 0) == 0) {
      const std::string s = val("--scale=");
      o.scale = s == "tiny" ? AppScale::kTiny
                            : (s == "paper" ? AppScale::kPaper : AppScale::kDefault);
    } else if (arg.rfind("--page-size=", 0) == 0) {
      o.page_size = std::atoll(val("--page-size=").c_str());
      o.page_size_set = true;
    } else if (arg.rfind("--home=", 0) == 0) {
      const std::string s = val("--home=");
      o.home = s == "round-robin"
                   ? HomePolicy::kRoundRobin
                   : (s == "single-node" ? HomePolicy::kSingleNode : HomePolicy::kBlock);
    } else if (arg.rfind("--diff-policy=", 0) == 0) {
      o.diff_policy = val("--diff-policy=") == "lazy" ? DiffPolicy::kLazy : DiffPolicy::kEager;
    } else if (arg.rfind("--gc-threshold=", 0) == 0) {
      o.gc_threshold = std::atoll(val("--gc-threshold=").c_str());
    } else if (arg.rfind("--trace=", 0) == 0) {
      o.trace_path = val("--trace=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      o.metrics_path = val("--metrics-out=");
    } else if (arg.rfind("--sample-interval=", 0) == 0) {
      o.sample_interval = Micros(std::atoll(val("--sample-interval=").c_str()));
      if (o.sample_interval <= 0) {
        UsageError(kTool, "--sample-interval must be positive");
      }
    } else if (arg == "--coverage") {
      o.coverage = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = static_cast<uint64_t>(std::strtoull(val("--seed=").c_str(), nullptr, 10));
      o.seed_set = true;
    } else if (arg.rfind("--fault-drop=", 0) == 0) {
      o.fault.drop_prob = std::atof(val("--fault-drop=").c_str());
    } else if (arg.rfind("--fault-dup=", 0) == 0) {
      o.fault.dup_prob = std::atof(val("--fault-dup=").c_str());
    } else if (arg.rfind("--fault-delay=", 0) == 0) {
      o.fault.delay_prob = std::atof(val("--fault-delay=").c_str());
    } else if (arg.rfind("--fault-corrupt=", 0) == 0) {
      o.fault.corrupt_prob = std::atof(val("--fault-corrupt=").c_str());
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      o.fault.seed =
          static_cast<uint64_t>(std::strtoull(val("--fault-seed=").c_str(), nullptr, 10));
      o.fault_seed_set = true;
    } else if (arg.rfind("--partition=", 0) == 0) {
      PartitionWindow w;
      std::string err;
      if (!ParsePartitionSpec(val("--partition="), &w, &err)) {
        UsageError(kTool, "bad --partition spec: " + err);
      }
      o.fault.partitions.push_back(std::move(w));
    } else if (arg == "--reliable") {
      o.reliable = true;
    } else if (arg.rfind("--retry-timeout=", 0) == 0) {
      o.retry_timeout = Micros(std::atoll(val("--retry-timeout=").c_str()));
      o.reliable = true;
    } else if (arg.rfind("--retry-max=", 0) == 0) {
      o.retry_max = std::atoi(val("--retry-max=").c_str());
      o.reliable = true;
    } else if (arg == "--coalesce") {
      o.coalesce = true;
    } else if (arg.rfind("--barrier-arity=", 0) == 0) {
      o.barrier_arity = std::atoi(val("--barrier-arity=").c_str());
      if (o.barrier_arity < 0) {
        UsageError(kTool, "--barrier-arity must be >= 0");
      }
    } else if (arg == "--migrate-homes") {
      o.migrate_homes = true;
    } else if (arg == "--per-node") {
      o.per_node = true;
    } else if (arg == "--verbose") {
      o.verbose = true;
    } else if (arg == "--no-verify") {
      o.verify = false;
    } else if (!HandleCommonFlag(kTool, arg)) {
      UsageError(kTool, "unknown flag: " + arg);
    }
  }
  return o;
}

int Main(int argc, char** argv) {
  const Options o = Parse(argc, argv);

  // Replay substitutes the trace for an application and inherits the
  // recorded topology unless flags override it explicitly.
  std::unique_ptr<wkld::TraceReplayApp> replay_app;
  if (!o.replay_trace_path.empty()) {
    if (o.app_set) {
      std::fprintf(stderr, "--replay-trace and --app are mutually exclusive\n");
      return 2;
    }
    std::string err;
    replay_app = wkld::TraceReplayApp::Open(o.replay_trace_path, &err);
    if (replay_app == nullptr) {
      std::fprintf(stderr, "cannot replay: %s\n", err.c_str());
      return 2;
    }
  }

  SimConfig cfg;
  cfg.nodes = o.nodes;
  cfg.page_size = o.page_size;
  cfg.shared_bytes = 256ll << 20;
  cfg.seed = o.seed;
  if (replay_app != nullptr) {
    const wkld::TraceInfo& info = replay_app->info();
    if (!o.nodes_set) {
      cfg.nodes = info.nodes;
    }
    if (!o.page_size_set) {
      cfg.page_size = info.page_size;
    }
    if (info.shared_bytes > 0) {
      cfg.shared_bytes = info.shared_bytes;
    }
  }
  cfg.protocol.kind = o.protocol;
  cfg.protocol.home_policy = o.home;
  cfg.protocol.diff_policy = o.diff_policy;
  cfg.protocol.gc_threshold_bytes = o.gc_threshold;
  cfg.protocol.migrate_homes = o.migrate_homes;

  // One root seed feeds every Rng consumer: application inputs and the fault
  // injector draw distinct derived seeds, unless overridden explicitly.
  Rng root(cfg.seed);
  const uint64_t app_seed = root.NextU64();
  const uint64_t derived_fault_seed = root.NextU64();
  cfg.fault = o.fault;
  if (!o.fault_seed_set) {
    cfg.fault.seed = derived_fault_seed;
  }
  if (o.reliable || cfg.fault.Active()) {
    cfg.reliability.enabled = true;
    cfg.reliability.retry_timeout = o.retry_timeout;
    cfg.reliability.max_retries = o.retry_max;
  }
  if (o.coalesce) {
    cfg.network.coalesce = true;
    cfg.protocol.coalesce = true;
    // Ack piggybacking only matters once acks exist at all.
    cfg.reliability.piggyback_acks = cfg.reliability.enabled;
  }
  cfg.protocol.barrier_arity = o.barrier_arity;

  std::unique_ptr<App> app;
  if (replay_app != nullptr) {
    app = std::move(replay_app);
  } else {
    app = o.seed_set ? TryMakeApp(o.app, o.scale, app_seed) : TryMakeApp(o.app, o.scale);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown app '%s'; registered apps:", o.app.c_str());
      for (const std::string& name : RegisteredAppNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }
  System sys(cfg);
  TraceLog* trace = o.trace_path.empty() ? nullptr : sys.EnableTracing();
  // Metrics ride along whenever a run summary is requested, and also when a
  // trace is: the Perfetto counter tracks come from the sampler. Causal spans
  // ride along too — they feed the run summary's "spans" section (svmtrace)
  // and the execution trace's flow events.
  Metrics* metrics = (o.metrics_path.empty() && o.trace_path.empty())
                         ? nullptr
                         : sys.EnableMetrics(o.sample_interval);
  if (metrics != nullptr) {
    // 256K spans covers the paper apps at 8 nodes; beyond that the tracer
    // drops monotonically (newest first), which keeps the DAG closed.
    sys.EnableSpans(1 << 18);
  }
  // Workload recording attaches before Setup so the allocation table is
  // captured. Pure observation: the recorded run's timing is unchanged.
  // Coverage observation, like metrics, attaches before the run and never
  // charges simulated time.
  std::unique_ptr<fuzz::CoverageMap> coverage;
  if (o.coverage) {
    coverage = std::make_unique<fuzz::CoverageMap>(
        static_cast<uint64_t>(o.protocol) + 1);
    sys.SetCoverageObserver(coverage.get());
  }
  std::unique_ptr<wkld::TraceWriter> trace_writer;
  std::unique_ptr<wkld::TraceRecorder> recorder;
  if (!o.record_trace_path.empty()) {
    const std::string meta = std::string("protocol=") + ProtocolName(o.protocol) +
                             " seed=" + std::to_string(cfg.seed);
    trace_writer = std::make_unique<wkld::TraceWriter>(
        o.record_trace_path, wkld::MakeTraceInfo(cfg, app->name(), meta));
    recorder = std::make_unique<wkld::TraceRecorder>(&sys, trace_writer.get());
    sys.SetWorkloadObserver(recorder.get());
  }
  app->Setup(sys);
  const auto wall_start = std::chrono::steady_clock::now();
  sys.Run(app->Program());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (trace_writer != nullptr) {
    trace_writer->Finish();
    std::printf("workload trace written to %s\n", o.record_trace_path.c_str());
  }

  std::string why;
  const bool verified = !o.verify || app->Verify(sys, &why);

  const RunReport& report = sys.report();
  const NodeReport avg = report.Average();
  const NodeReport totals = report.Totals();

  std::printf("%s under %s on %d nodes (%s scale, %lld B pages, %s homes)\n",
              app->name().c_str(), ProtocolName(o.protocol), o.nodes,
              o.scale == AppScale::kPaper ? "paper"
                                          : (o.scale == AppScale::kTiny ? "tiny" : "default"),
              static_cast<long long>(o.page_size), HomePolicyName(o.home));
  char app_seed_str[32] = "builtin";  // No --seed: apps keep their fixed inputs.
  if (o.seed_set) {
    std::snprintf(app_seed_str, sizeof(app_seed_str), "%llu",
                  static_cast<unsigned long long>(app_seed));
  }
  std::printf("seed: %llu%s (app=%s, fault=%llu)\n",
              static_cast<unsigned long long>(cfg.seed), o.seed_set ? "" : " [default]",
              app_seed_str, static_cast<unsigned long long>(cfg.fault.seed));
  if (cfg.fault.Active()) {
    std::printf("faults: %s\n", FaultPlanSummary(cfg.fault).c_str());
  }
  if (cfg.reliability.enabled) {
    std::printf("reliable delivery: timeout=%lldus backoff=%.1f max-retries=%d\n",
                static_cast<long long>(cfg.reliability.retry_timeout / 1000),
                cfg.reliability.retry_backoff, cfg.reliability.max_retries);
  }
  if (o.coalesce || o.barrier_arity >= 2) {
    std::printf("wire plane: coalesce=%s piggyback=%s barrier-arity=%d\n",
                o.coalesce ? "on" : "off",
                cfg.reliability.piggyback_acks ? "on" : "off", o.barrier_arity);
  }
  std::printf("verification: %s%s\n\n", verified ? "OK" : "FAILED ",
              verified ? "" : why.c_str());

  Table summary("Run summary");
  summary.SetHeader({"Metric", "Value"});
  summary.AddRow({"Virtual time", Table::Fmt(ToSeconds(report.total_time), 3) + " s"});
  summary.AddRow({"Computation (avg/node)", Table::Fmt(ToSeconds(avg.Computation()), 3) + " s"});
  summary.AddRow({"Data transfer wait (avg)", Table::Fmt(ToSeconds(avg.DataTransfer()), 3) + " s"});
  summary.AddRow({"Lock wait (avg)", Table::Fmt(ToSeconds(avg.LockTime()), 3) + " s"});
  summary.AddRow({"Barrier wait (avg)", Table::Fmt(ToSeconds(avg.BarrierTime()), 3) + " s"});
  summary.AddRow({"GC time (avg)", Table::Fmt(ToSeconds(avg.GcTime()), 3) + " s"});
  summary.AddRow({"Protocol overhead (avg)",
                  Table::Fmt(ToSeconds(avg.ProtocolOverhead()), 3) + " s"});
  summary.AddSeparator();
  summary.AddRow({"Messages", Table::Fmt(totals.traffic.msgs_sent)});
  summary.AddRow({"Update traffic", Table::FmtBytes(totals.traffic.update_bytes_sent)});
  summary.AddRow({"Protocol traffic", Table::FmtBytes(totals.traffic.protocol_bytes_sent)});
  if (cfg.reliability.enabled || cfg.fault.Active()) {
    summary.AddRow({"Retransmissions", Table::Fmt(totals.traffic.msgs_retransmitted)});
    summary.AddRow({"Dropped in net", Table::Fmt(totals.traffic.msgs_dropped_in_net)});
    summary.AddRow({"Duplicates dropped", Table::Fmt(totals.traffic.msgs_duplicated_dropped)});
    summary.AddRow({"Acks", Table::Fmt(totals.traffic.acks_sent)});
  }
  if (o.coalesce || o.barrier_arity >= 2) {
    summary.AddRow({"Coalesced frames", Table::Fmt(totals.traffic.frames_coalesced)});
    summary.AddRow({"Messages coalesced", Table::Fmt(totals.traffic.msgs_coalesced)});
    summary.AddRow({"Acks piggybacked", Table::Fmt(totals.traffic.acks_piggybacked)});
    summary.AddRow({"Page replies combined", Table::Fmt(totals.proto.page_replies_combined)});
  }
  summary.AddSeparator();
  summary.AddRow({"Read misses (avg/node)", Table::Fmt(avg.proto.read_misses)});
  summary.AddRow({"Page fetches (avg/node)", Table::Fmt(avg.proto.page_fetches)});
  summary.AddRow({"Diffs created (avg/node)", Table::Fmt(avg.proto.diffs_created)});
  summary.AddRow({"Diffs applied (avg/node)", Table::Fmt(avg.proto.diffs_applied)});
  summary.AddRow({"Lock acquires (avg/node)", Table::Fmt(avg.proto.lock_acquires)});
  summary.AddRow({"Barriers (avg/node)", Table::Fmt(avg.proto.barriers)});
  summary.AddRow({"GC runs", Table::Fmt(totals.proto.gc_runs)});
  summary.AddRow({"Protocol memory (max/node)", Table::FmtBytes(avg.proto_mem_highwater)});
  summary.AddRow({"App memory", Table::FmtBytes(report.app_memory_bytes)});
  summary.Print();

  if (o.per_node) {
    std::printf("\n");
    Table per("Per-node breakdown");
    per.SetHeader({"Node", "Finish(s)", "Compute(s)", "Data(s)", "Lock(s)", "Barrier(s)",
                   "Proto(s)"});
    for (size_t n = 0; n < report.nodes.size(); ++n) {
      const NodeReport& r = report.nodes[n];
      per.AddRow({Table::Fmt(static_cast<int64_t>(n)), Table::Fmt(ToSeconds(r.finish_time), 3),
                  Table::Fmt(ToSeconds(r.Computation()), 3),
                  Table::Fmt(ToSeconds(r.DataTransfer()), 3),
                  Table::Fmt(ToSeconds(r.LockTime()), 3),
                  Table::Fmt(ToSeconds(r.BarrierTime()), 3),
                  Table::Fmt(ToSeconds(r.ProtocolOverhead()), 3)});
    }
    per.Print();
  }

  if (trace != nullptr) {
    // Splice the sampler's counter tracks and the span slices/flow arrows
    // into the execution trace.
    std::string extra = ChromeCounterEvents(metrics->sampler());
    if (sys.spans() != nullptr) {
      const std::string span_events = ChromeSpanEvents(*sys.spans());
      if (!span_events.empty()) {
        if (!extra.empty()) {
          extra += ",\n";
        }
        extra += span_events;
      }
    }
    trace->DumpChromeJson(o.trace_path, extra);
    std::printf("\nexecution trace written to %s (%lld events, %lld dropped)\n",
                o.trace_path.c_str(), static_cast<long long>(trace->recorded()),
                static_cast<long long>(trace->dropped()));
  }
  if (coverage != nullptr) {
    std::printf("\nprotocol-state coverage (%s):\n%s", ProtocolName(o.protocol),
                coverage->Report().c_str());
  }
  if (!o.metrics_path.empty()) {
    RunSummaryMeta meta;
    meta.app = app->name();
    meta.scale = o.scale == AppScale::kPaper ? "paper"
                                             : (o.scale == AppScale::kTiny ? "tiny" : "default");
    meta.verified = verified;
    if (coverage != nullptr) {
      meta.coverage.enabled = true;
      meta.coverage.points = static_cast<int64_t>(coverage->points());
      meta.coverage.hits = coverage->hits();
      for (int d = 0; d < CoverageObserver::kDomains; ++d) {
        meta.coverage.domain_points[static_cast<size_t>(d)] = static_cast<int64_t>(
            coverage->DomainPoints(static_cast<CoverageObserver::Domain>(d)));
      }
    }
    std::string err;
    if (!WriteRunSummaryJson(o.metrics_path, sys, meta, &err)) {
      std::fprintf(stderr, "metrics: %s\n", err.c_str());
      return 1;
    }
    std::printf("run summary written to %s (inspect with svmprof / svmtrace)\n",
                o.metrics_path.c_str());
  }
  if (o.verbose) {
    const int64_t events = sys.engine().events_processed();
    const double rate = wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0.0;
    std::printf("\nwall clock: %.3f s, %lld events (%.2fM events/s), peak RSS %.1f MiB\n",
                wall_seconds, static_cast<long long>(events), rate / 1e6,
                static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0));
  }
  return verified ? 0 : 1;
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

// svmprof — offline analyzer for svmsim run-summary JSON files.
//
// Reads the versioned "hlrc-run-summary" JSON that `svmsim --metrics-out=`
// writes (schema: docs/OBSERVABILITY.md) and renders it for humans: run
// configuration, per-phase time breakdown, latency percentile tables, the
// hottest shared pages, and the traffic totals. Every file is validated
// against the schema on load; a malformed or schema-violating file is a
// hard error so CI can use `svmprof --check` as a smoke gate.
//
//   svmprof run.json                  full report
//   svmprof run.json --top=40         widen the hot-page table
//   svmprof --check run.json          validate only (exit 0/1)
//   svmprof --diff a.json b.json      A/B comparison with percent deltas
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/metrics/json.h"
#include "src/metrics/run_summary_schema.h"

namespace hlrc {
namespace {

const ToolInfo kTool = {
    "svmprof",
    "Renders svmsim \"hlrc-run-summary\" JSON files for humans: run\n"
    "configuration, per-phase time breakdown, latency percentiles, hot\n"
    "pages and traffic totals. Files are schema-validated on load.",
    "  --top=N               widen the hot-page table (default 20)\n"
    "  --check               validate only (exit 0/1), no report\n"
    "  --diff                compare two runs with percent deltas; exits 2\n"
    "                        when either input fails schema validation\n",
    "RUN.json [flags] | --check RUN.json | --diff A.json B.json",
};

bool ReadFile(const std::string& path, std::string* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *err = "cannot open " + path;
    return false;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    *err = "read error on " + path;
  }
  return ok;
}

// Loads, parses, and schema-validates one run summary. Exits with
// `fail_exit` on failure so every code path downstream can assume a
// well-formed document. --diff passes 2: an invalid input there is a bad
// invocation, not a run-quality finding.
JsonValue LoadSummary(const std::string& path, int fail_exit = 1) {
  std::string text, err;
  if (!ReadFile(path, &text, &err)) {
    std::fprintf(stderr, "svmprof: %s\n", err.c_str());
    std::exit(fail_exit);
  }
  JsonValue v;
  if (!ParseJson(text, &v, &err)) {
    std::fprintf(stderr, "svmprof: %s: JSON parse error: %s\n", path.c_str(), err.c_str());
    std::exit(fail_exit);
  }
  if (!ValidateRunSummary(v, &err)) {
    std::fprintf(stderr, "svmprof: %s: schema violation: %s\n", path.c_str(), err.c_str());
    std::exit(fail_exit);
  }
  return v;
}

double NsToUs(double ns) { return ns / 1000.0; }
double NsToS(double ns) { return ns / 1e9; }

std::string Pct(double part, double whole) {
  if (whole <= 0.0) {
    return "-";
  }
  return Table::Fmt(100.0 * part / whole, 1) + "%";
}

// Average over the per_node array of one int field, in ns.
double PerNodeAvg(const JsonValue& run, const char* field) {
  const JsonValue* per_node = run.Find("per_node");
  if (per_node == nullptr || per_node->arr.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const JsonValue& n : per_node->arr) {
    sum += static_cast<double>(n.GetInt(field));
  }
  return sum / static_cast<double>(per_node->arr.size());
}

void PrintHeader(const JsonValue& run) {
  const JsonValue* cfg = run.Find("config");
  const JsonValue* totals = run.Find("totals");
  std::printf("%s under %s on %lld nodes (%s scale, %lld B pages, seed %lld)\n",
              cfg->GetString("app").c_str(), cfg->GetString("protocol").c_str(),
              static_cast<long long>(cfg->GetInt("nodes")), cfg->GetString("scale").c_str(),
              static_cast<long long>(cfg->GetInt("page_size")),
              static_cast<long long>(cfg->GetInt("seed")));
  std::printf("virtual time: %s s   verified: %s",
              Table::Fmt(NsToS(static_cast<double>(totals->GetInt("virtual_time_ns"))), 3).c_str(),
              run.GetBool("verified") ? "yes" : "NO");
  if (cfg->GetBool("faults_active")) {
    std::printf("   faults: active");
  }
  if (cfg->GetBool("migrate_homes")) {
    std::printf("   migrate-homes: on");
  }
  std::printf("\n\n");
}

void PrintPhases(const JsonValue& run) {
  const double total = static_cast<double>(run.Find("totals")->GetInt("virtual_time_ns"));
  Table t("Per-phase time (average per node)");
  t.SetHeader({"Phase", "Avg (s)", "Of run"});
  const struct {
    const char* label;
    const char* field;
  } kPhases[] = {
      {"Computation", "compute_ns"},       {"Data transfer wait", "data_wait_ns"},
      {"Lock wait", "lock_wait_ns"},       {"Barrier wait", "barrier_wait_ns"},
      {"Garbage collection", "gc_ns"},     {"Protocol overhead", "proto_overhead_ns"},
  };
  for (const auto& p : kPhases) {
    const double ns = PerNodeAvg(run, p.field);
    t.AddRow({p.label, Table::Fmt(NsToS(ns), 3), Pct(ns, total)});
  }
  t.Print();
  std::printf("\n");
}

void PrintHistograms(const JsonValue& run) {
  const JsonValue* histos = run.Find("histograms");
  if (histos == nullptr || histos->obj.empty()) {
    std::printf("(no latency histograms recorded)\n\n");
    return;
  }
  Table t("Latency histograms (us)");
  t.SetHeader({"Metric", "Count", "Mean", "p50", "p90", "p99", "p99.9", "Max"});
  for (const auto& [name, h] : histos->obj) {
    const JsonValue* p = h.Find("percentiles");
    t.AddRow({name, Table::Fmt(h.GetInt("count")),
              Table::Fmt(NsToUs(h.GetDouble("mean")), 1),
              Table::Fmt(NsToUs(p->GetDouble("p50")), 1),
              Table::Fmt(NsToUs(p->GetDouble("p90")), 1),
              Table::Fmt(NsToUs(p->GetDouble("p99")), 1),
              Table::Fmt(NsToUs(p->GetDouble("p999")), 1),
              Table::Fmt(NsToUs(static_cast<double>(h.GetInt("max"))), 1)});
  }
  t.Print();
  std::printf("\n");
}

void PrintHotPages(const JsonValue& run, int64_t top) {
  const JsonValue* pages = run.Find("hot_pages");
  if (pages == nullptr || pages->arr.empty()) {
    std::printf("(no page heat recorded)\n\n");
    return;
  }
  Table t("Hottest shared pages");
  t.SetHeader({"Page", "Score", "RdFaults", "WrFaults", "Fetches", "FetchB", "DiffB", "Writers"});
  int64_t shown = 0;
  for (const JsonValue& p : pages->arr) {
    if (shown++ >= top) {
      break;
    }
    t.AddRow({Table::Fmt(p.GetInt("page")), Table::Fmt(p.GetInt("score")),
              Table::Fmt(p.GetInt("read_faults")), Table::Fmt(p.GetInt("write_faults")),
              Table::Fmt(p.GetInt("fetches")), Table::FmtBytes(p.GetInt("fetch_bytes")),
              Table::FmtBytes(p.GetInt("diff_bytes_applied")), Table::Fmt(p.GetInt("writers"))});
  }
  t.Print();
  if (static_cast<int64_t>(pages->arr.size()) > top) {
    std::printf("(%lld more hot pages in the file)\n",
                static_cast<long long>(static_cast<int64_t>(pages->arr.size()) - top));
  }
  std::printf("\n");
}

void PrintTraffic(const JsonValue& run) {
  const JsonValue* tr = run.Find("totals")->Find("traffic");
  Table t("Traffic totals");
  t.SetHeader({"Metric", "Value"});
  t.AddRow({"Messages sent", Table::Fmt(tr->GetInt("msgs_sent"))});
  t.AddRow({"Update traffic", Table::FmtBytes(tr->GetInt("update_bytes_sent"))});
  t.AddRow({"Protocol traffic", Table::FmtBytes(tr->GetInt("protocol_bytes_sent"))});
  if (tr->GetInt("msgs_retransmitted") > 0 || tr->GetInt("msgs_dropped_in_net") > 0) {
    t.AddRow({"Retransmissions", Table::Fmt(tr->GetInt("msgs_retransmitted"))});
    t.AddRow({"Dropped in net", Table::Fmt(tr->GetInt("msgs_dropped_in_net"))});
    t.AddRow({"Duplicates dropped", Table::Fmt(tr->GetInt("msgs_duplicated_dropped"))});
    t.AddRow({"Acks", Table::Fmt(tr->GetInt("acks_sent"))});
  }
  t.Print();
  std::printf("\n");
}

void PrintTimeseries(const JsonValue& run) {
  const JsonValue* ts = run.Find("timeseries");
  const size_t series = ts->Find("series")->arr.size();
  const size_t samples = ts->Find("samples")->arr.size();
  std::printf("time-series: %zu series x %zu samples every %s ms%s\n", series, samples,
              Table::Fmt(static_cast<double>(ts->GetInt("interval_ns")) / 1e6, 3).c_str(),
              ts->GetBool("truncated") ? " (truncated)" : "");
}

int Report(const std::string& path, int64_t top) {
  const JsonValue run = LoadSummary(path);
  PrintHeader(run);
  PrintPhases(run);
  PrintHistograms(run);
  PrintHotPages(run, top);
  PrintTraffic(run);
  PrintTimeseries(run);
  return 0;
}

// ---------------------------------------------------------------------------
// A/B diff.

std::string Delta(double a, double b) {
  if (a == 0.0 && b == 0.0) {
    return "-";
  }
  if (a == 0.0) {
    return "new";
  }
  const double pct = 100.0 * (b - a) / a;
  return (pct >= 0 ? "+" : "") + Table::Fmt(pct, 1) + "%";
}

int Diff(const std::string& path_a, const std::string& path_b) {
  const JsonValue a = LoadSummary(path_a, /*fail_exit=*/2);
  const JsonValue b = LoadSummary(path_b, /*fail_exit=*/2);

  const JsonValue* ca = a.Find("config");
  const JsonValue* cb = b.Find("config");
  std::printf("A: %s  (%s/%s, %lld nodes)\n", path_a.c_str(), ca->GetString("app").c_str(),
              ca->GetString("protocol").c_str(), static_cast<long long>(ca->GetInt("nodes")));
  std::printf("B: %s  (%s/%s, %lld nodes)\n\n", path_b.c_str(), cb->GetString("app").c_str(),
              cb->GetString("protocol").c_str(), static_cast<long long>(cb->GetInt("nodes")));

  Table t("Run comparison (B vs A)");
  t.SetHeader({"Metric", "A", "B", "Delta"});

  auto row_s = [&](const char* label, double va, double vb) {
    t.AddRow({label, Table::Fmt(NsToS(va), 3), Table::Fmt(NsToS(vb), 3), Delta(va, vb)});
  };
  auto row_i = [&](const char* label, int64_t va, int64_t vb) {
    t.AddRow({label, Table::Fmt(va), Table::Fmt(vb),
              Delta(static_cast<double>(va), static_cast<double>(vb))});
  };

  row_s("Virtual time (s)", static_cast<double>(a.Find("totals")->GetInt("virtual_time_ns")),
        static_cast<double>(b.Find("totals")->GetInt("virtual_time_ns")));
  const struct {
    const char* label;
    const char* field;
  } kPhases[] = {
      {"Computation (avg s)", "compute_ns"},     {"Data wait (avg s)", "data_wait_ns"},
      {"Lock wait (avg s)", "lock_wait_ns"},     {"Barrier wait (avg s)", "barrier_wait_ns"},
      {"GC (avg s)", "gc_ns"},                   {"Proto overhead (avg s)", "proto_overhead_ns"},
  };
  for (const auto& p : kPhases) {
    row_s(p.label, PerNodeAvg(a, p.field), PerNodeAvg(b, p.field));
  }
  t.AddSeparator();
  const JsonValue* ta = a.Find("totals")->Find("traffic");
  const JsonValue* tb = b.Find("totals")->Find("traffic");
  row_i("Messages", ta->GetInt("msgs_sent"), tb->GetInt("msgs_sent"));
  row_i("Update bytes", ta->GetInt("update_bytes_sent"), tb->GetInt("update_bytes_sent"));
  row_i("Protocol bytes", ta->GetInt("protocol_bytes_sent"), tb->GetInt("protocol_bytes_sent"));
  const JsonValue* pa = a.Find("totals")->Find("proto");
  const JsonValue* pb = b.Find("totals")->Find("proto");
  row_i("Page fetches", pa->GetInt("page_fetches"), pb->GetInt("page_fetches"));
  row_i("Diffs created", pa->GetInt("diffs_created"), pb->GetInt("diffs_created"));
  row_i("Diffs applied", pa->GetInt("diffs_applied"), pb->GetInt("diffs_applied"));
  t.Print();
  std::printf("\n");

  // Histogram tails for metrics present in both runs.
  const JsonValue* ha = a.Find("histograms");
  const JsonValue* hb = b.Find("histograms");
  Table h("Latency deltas, us (B vs A)");
  h.SetHeader({"Metric", "p50 A", "p50 B", "d p50", "p99 A", "p99 B", "d p99"});
  bool any = false;
  for (const auto& [name, va] : ha->obj) {
    const JsonValue* vb = hb->Find(name);
    if (vb == nullptr) {
      continue;
    }
    any = true;
    const JsonValue* qa = va.Find("percentiles");
    const JsonValue* qb = vb->Find("percentiles");
    h.AddRow({name, Table::Fmt(NsToUs(qa->GetDouble("p50")), 1),
              Table::Fmt(NsToUs(qb->GetDouble("p50")), 1),
              Delta(qa->GetDouble("p50"), qb->GetDouble("p50")),
              Table::Fmt(NsToUs(qa->GetDouble("p99")), 1),
              Table::Fmt(NsToUs(qb->GetDouble("p99")), 1),
              Delta(qa->GetDouble("p99"), qb->GetDouble("p99"))});
  }
  if (any) {
    h.Print();
  } else {
    std::printf("(no histogram present in both runs)\n");
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool check_only = false;
  bool diff = false;
  int64_t top = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top = std::atoll(arg.substr(std::strlen("--top=")).c_str());
      if (top <= 0) {
        UsageError(kTool, "--top must be positive");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      if (!HandleCommonFlag(kTool, arg)) {
        UsageError(kTool, "unknown flag: " + arg);
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (diff) {
    if (check_only || positional.size() != 2) {
      UsageError(kTool, "--diff takes exactly two run files");
    }
    return Diff(positional[0], positional[1]);
  }
  if (positional.size() != 1) {
    UsageError(kTool, "exactly one run file required");
  }
  if (check_only) {
    LoadSummary(positional[0]);  // Exits nonzero on parse/schema failure.
    std::printf("%s: OK (schema %s v%d)\n", positional[0].c_str(), kRunSummarySchemaName,
                kRunSummarySchemaVersion);
    return 0;
  }
  return Report(positional[0], top);
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

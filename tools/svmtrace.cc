// svmtrace — causal span analyzer for svmsim run-summary JSON files.
//
// Reads the versioned "hlrc-spans" section that `svmsim --metrics-out=`
// records (schema: docs/OBSERVABILITY.md) and answers the question flat
// counters cannot: *what was each blocked operation actually waiting for?*
// Every page fault, lock acquire and barrier is a root span whose causal
// descendants — wire time, send queueing, retransmit stretches, home
// service, diff creation/application — are swept to attribute the root's
// wait, category by category, with the residue counted as protocol
// bookkeeping. The per-root categories sum exactly to the root's duration.
//
//   svmtrace critpath run.json            per-category / per-kind rollups
//   svmtrace critpath run.json --per-page widen with the per-page table
//   svmtrace slowest run.json --top=10    slowest root operations
//   svmtrace --check run.json             schema + DAG well-formedness (0/1)
//   svmtrace --diff a.json b.json         compare two runs' attributions
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/metrics/json.h"
#include "src/metrics/run_summary_schema.h"
#include "src/tracing/critpath.h"
#include "src/tracing/span.h"
#include "src/tracing/span_check.h"

namespace hlrc {
namespace {

const ToolInfo kTool = {
    "svmtrace",
    "Attributes each blocked operation's wait (page faults, lock acquires,\n"
    "barriers) across the causal span DAG an svmsim run records: wire time,\n"
    "queueing, retransmits, home service, diff work, bookkeeping, compute.",
    "  --top=N               rows in the slowest/per-page tables (default 10)\n"
    "  --per-page            critpath: include the per-page fault table\n"
    "  --check               validate spans (schema + DAG shape), exit 0/1\n"
    "  --diff                compare two runs' attributions; exits 2 when\n"
    "                        either input fails schema validation\n",
    "COMMAND RUN.json [flags] | --check RUN.json | --diff A.json B.json",
};

bool ReadFile(const std::string& path, std::string* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *err = "cannot open " + path;
    return false;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    *err = "read error on " + path;
  }
  return ok;
}

struct LoadedSpans {
  std::vector<Span> spans;
  int64_t dropped = 0;
  std::string app, protocol;
  int64_t nodes = 0;
};

// Loads a run summary, validates it against the run-summary schema, and
// extracts + DAG-checks the spans section. Exits with `fail_exit` on any
// failure (--diff passes 2: an invalid input is a bad invocation).
LoadedSpans LoadSpans(const std::string& path, int fail_exit = 1) {
  std::string text, err;
  if (!ReadFile(path, &text, &err)) {
    std::fprintf(stderr, "svmtrace: %s\n", err.c_str());
    std::exit(fail_exit);
  }
  JsonValue v;
  if (!ParseJson(text, &v, &err)) {
    std::fprintf(stderr, "svmtrace: %s: JSON parse error: %s\n", path.c_str(), err.c_str());
    std::exit(fail_exit);
  }
  if (!ValidateRunSummary(v, &err)) {
    std::fprintf(stderr, "svmtrace: %s: schema violation: %s\n", path.c_str(), err.c_str());
    std::exit(fail_exit);
  }
  LoadedSpans out;
  if (!ParseSpans(v, &out.spans, &out.dropped, &err)) {
    std::fprintf(stderr, "svmtrace: %s: %s\n", path.c_str(), err.c_str());
    std::exit(fail_exit);
  }
  if (!CheckSpanDag(out.spans, &err)) {
    std::fprintf(stderr, "svmtrace: %s: span DAG violation: %s\n", path.c_str(), err.c_str());
    std::exit(fail_exit);
  }
  const JsonValue* cfg = v.Find("config");
  out.app = cfg->GetString("app");
  out.protocol = cfg->GetString("protocol");
  out.nodes = cfg->GetInt("nodes");
  return out;
}

double NsToUs(double ns) { return ns / 1000.0; }
double NsToMs(double ns) { return ns / 1e6; }

std::string Pct(double part, double whole) {
  if (whole <= 0.0) {
    return "-";
  }
  return Table::Fmt(100.0 * part / whole, 1) + "%";
}

const char* RootKindLabel(SpanKind k) {
  switch (k) {
    case SpanKind::kFault:
      return "fault";
    case SpanKind::kLock:
      return "lock";
    case SpanKind::kBarrier:
      return "barrier";
    default:
      return SpanKindName(k);
  }
}

void PrintHeader(const LoadedSpans& run, const std::string& path) {
  int64_t root_count = 0;
  for (const Span& s : run.spans) {
    if (RootKindIndex(s.kind) >= 0) {
      ++root_count;
    }
  }
  std::printf("%s: %s under %s on %lld nodes — %zu spans (%lld blocking roots",
              path.c_str(), run.app.c_str(), run.protocol.c_str(),
              static_cast<long long>(run.nodes), run.spans.size(),
              static_cast<long long>(root_count));
  if (run.dropped > 0) {
    std::printf(", %lld dropped at capacity", static_cast<long long>(run.dropped));
  }
  std::printf(")\n\n");
}

int CritPath(const std::string& path, bool per_page, int64_t top) {
  const LoadedSpans run = LoadSpans(path);
  PrintHeader(run, path);
  const CritPathSummary sum = AttributeCriticalPaths(run.spans);
  if (sum.roots.empty()) {
    std::printf("(no blocking roots recorded)\n");
    return 0;
  }

  Table t("Critical-path attribution (all blocking roots)");
  t.SetHeader({"Category", "Total (ms)", "Of wait", "Fault (ms)", "Lock (ms)", "Barrier (ms)"});
  for (size_t c = 0; c < kCritCatCount; ++c) {
    t.AddRow({CritCatName(static_cast<CritCat>(c)),
              Table::Fmt(NsToMs(static_cast<double>(sum.total[c])), 3),
              Pct(static_cast<double>(sum.total[c]), static_cast<double>(sum.total_wait)),
              Table::Fmt(NsToMs(static_cast<double>(sum.by_kind[0][c])), 3),
              Table::Fmt(NsToMs(static_cast<double>(sum.by_kind[1][c])), 3),
              Table::Fmt(NsToMs(static_cast<double>(sum.by_kind[2][c])), 3)});
  }
  t.AddSeparator();
  SimTime fault_wait = 0, lock_wait = 0, barrier_wait = 0;
  for (size_t c = 0; c < kCritCatCount; ++c) {
    fault_wait += sum.by_kind[0][c];
    lock_wait += sum.by_kind[1][c];
    barrier_wait += sum.by_kind[2][c];
  }
  t.AddRow({"total wait", Table::Fmt(NsToMs(static_cast<double>(sum.total_wait)), 3), "100%",
            Table::Fmt(NsToMs(static_cast<double>(fault_wait)), 3),
            Table::Fmt(NsToMs(static_cast<double>(lock_wait)), 3),
            Table::Fmt(NsToMs(static_cast<double>(barrier_wait)), 3)});
  t.Print();
  std::printf("\n");

  if (per_page) {
    // Pages ordered by total fault wait, widest first.
    std::vector<std::pair<int64_t, SimTime>> pages(sum.page_wait.begin(), sum.page_wait.end());
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    Table p("Per-page fault wait");
    p.SetHeader({"Page", "Wait (ms)", "Wire", "Queue", "Retx", "HomeSvc", "DiffC", "DiffA",
                 "Bookkeep"});
    int64_t shown = 0;
    for (const auto& [page, wait] : pages) {
      if (shown++ >= top) {
        break;
      }
      const CatTimes& c = sum.by_page.at(page);
      auto pc = [&](CritCat cat) {
        return Pct(static_cast<double>(c[static_cast<size_t>(cat)]), static_cast<double>(wait));
      };
      p.AddRow({Table::Fmt(page), Table::Fmt(NsToMs(static_cast<double>(wait)), 3),
                pc(CritCat::kWire), pc(CritCat::kQueueing), pc(CritCat::kRetransmit),
                pc(CritCat::kHomeService), pc(CritCat::kDiffCreate), pc(CritCat::kDiffApply),
                pc(CritCat::kBookkeeping)});
    }
    p.Print();
    if (static_cast<int64_t>(pages.size()) > top) {
      std::printf("(%lld more pages; raise --top)\n",
                  static_cast<long long>(static_cast<int64_t>(pages.size()) - top));
    }
    std::printf("\n");
  }
  return 0;
}

int Slowest(const std::string& path, int64_t top) {
  const LoadedSpans run = LoadSpans(path);
  PrintHeader(run, path);
  CritPathSummary sum = AttributeCriticalPaths(run.spans);
  std::sort(sum.roots.begin(), sum.roots.end(), [](const RootAttribution& a,
                                                   const RootAttribution& b) {
    return (a.t1 - a.t0) != (b.t1 - b.t0) ? (a.t1 - a.t0) > (b.t1 - b.t0) : a.id < b.id;
  });
  Table t("Slowest blocking operations");
  t.SetHeader({"Span", "Kind", "Node", "Arg", "Start (ms)", "Wait (us)", "Top category"});
  int64_t shown = 0;
  for (const RootAttribution& r : sum.roots) {
    if (shown++ >= top) {
      break;
    }
    size_t best = static_cast<size_t>(CritCat::kBookkeeping);
    for (size_t c = 0; c < kCritCatCount; ++c) {
      if (r.by_cat[c] > r.by_cat[best]) {
        best = c;
      }
    }
    const SimTime wait = r.t1 - r.t0;
    t.AddRow({Table::Fmt(r.id), RootKindLabel(r.kind), Table::Fmt(static_cast<int64_t>(r.node)),
              Table::Fmt(r.a0), Table::Fmt(NsToMs(static_cast<double>(r.t0)), 3),
              Table::Fmt(NsToUs(static_cast<double>(wait)), 1),
              std::string(CritCatName(static_cast<CritCat>(best))) + " (" +
                  Pct(static_cast<double>(r.by_cat[best]), static_cast<double>(wait)) + ")"});
  }
  t.Print();
  if (static_cast<int64_t>(sum.roots.size()) > top) {
    std::printf("(%lld more roots; raise --top)\n",
                static_cast<long long>(static_cast<int64_t>(sum.roots.size()) - top));
  }
  return 0;
}

int Check(const std::string& path) {
  const LoadedSpans run = LoadSpans(path);  // Exits nonzero on any violation.
  int64_t roots = 0;
  for (const Span& s : run.spans) {
    if (RootKindIndex(s.kind) >= 0) {
      ++roots;
    }
  }
  std::printf("%s: OK (schema %s v%d, %zu spans, %lld blocking roots, %lld dropped)\n",
              path.c_str(), kSpansSchemaName, kSpansSchemaVersion, run.spans.size(),
              static_cast<long long>(roots), static_cast<long long>(run.dropped));
  return 0;
}

std::string Delta(double a, double b) {
  if (a == 0.0 && b == 0.0) {
    return "-";
  }
  if (a == 0.0) {
    return "new";
  }
  const double pct = 100.0 * (b - a) / a;
  return (pct >= 0 ? "+" : "") + Table::Fmt(pct, 1) + "%";
}

int Diff(const std::string& path_a, const std::string& path_b) {
  const LoadedSpans a = LoadSpans(path_a, /*fail_exit=*/2);
  const LoadedSpans b = LoadSpans(path_b, /*fail_exit=*/2);
  std::printf("A: %s  (%s/%s, %lld nodes, %zu spans)\n", path_a.c_str(), a.app.c_str(),
              a.protocol.c_str(), static_cast<long long>(a.nodes), a.spans.size());
  std::printf("B: %s  (%s/%s, %lld nodes, %zu spans)\n\n", path_b.c_str(), b.app.c_str(),
              b.protocol.c_str(), static_cast<long long>(b.nodes), b.spans.size());

  const CritPathSummary sa = AttributeCriticalPaths(a.spans);
  const CritPathSummary sb = AttributeCriticalPaths(b.spans);
  Table t("Critical-path comparison (B vs A, ms)");
  t.SetHeader({"Category", "A", "B", "Delta"});
  for (size_t c = 0; c < kCritCatCount; ++c) {
    const double va = static_cast<double>(sa.total[c]);
    const double vb = static_cast<double>(sb.total[c]);
    t.AddRow({CritCatName(static_cast<CritCat>(c)), Table::Fmt(NsToMs(va), 3),
              Table::Fmt(NsToMs(vb), 3), Delta(va, vb)});
  }
  t.AddSeparator();
  t.AddRow({"total wait", Table::Fmt(NsToMs(static_cast<double>(sa.total_wait)), 3),
            Table::Fmt(NsToMs(static_cast<double>(sb.total_wait)), 3),
            Delta(static_cast<double>(sa.total_wait), static_cast<double>(sb.total_wait))});
  t.AddRow({"blocking roots", Table::Fmt(static_cast<int64_t>(sa.roots.size())),
            Table::Fmt(static_cast<int64_t>(sb.roots.size())),
            Delta(static_cast<double>(sa.roots.size()), static_cast<double>(sb.roots.size()))});
  t.Print();
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool check_only = false;
  bool diff = false;
  bool per_page = false;
  int64_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--per-page") {
      per_page = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top = std::atoll(arg.substr(std::strlen("--top=")).c_str());
      if (top <= 0) {
        UsageError(kTool, "--top must be positive");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      if (!HandleCommonFlag(kTool, arg)) {
        UsageError(kTool, "unknown flag: " + arg);
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (diff) {
    if (check_only || positional.size() != 2) {
      UsageError(kTool, "--diff takes exactly two run files");
    }
    return Diff(positional[0], positional[1]);
  }
  if (check_only) {
    if (positional.size() != 1) {
      UsageError(kTool, "--check takes exactly one run file");
    }
    return Check(positional[0]);
  }
  if (positional.empty()) {
    UsageError(kTool, "command required: critpath | slowest (or --check / --diff)");
  }
  const std::string cmd = positional[0];
  if (positional.size() != 2) {
    UsageError(kTool, cmd + " takes exactly one run file");
  }
  if (cmd == "critpath") {
    return CritPath(positional[1], per_page, top);
  }
  if (cmd == "slowest") {
    return Slowest(positional[1], top);
  }
  UsageError(kTool, "unknown command '" + cmd + "' (critpath | slowest)");
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

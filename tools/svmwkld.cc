// svmwkld — workload trace toolbox (docs/WORKLOADS.md).
//
//   svmwkld record --app=sor --out=sor.wkld [--protocol=P] [--nodes=N]
//                  [--scale=S] [--page-size=B] [--seed=N]
//       Run an application with the workload-trace recorder attached and
//       write the captured workload. The run itself is unchanged by
//       recording.
//
//   svmwkld replay --in=FILE [--protocol=P] [--nodes=N] [--page-size=B]
//       Re-execute a captured workload trace (any protocol; topology
//       defaults to the trace header) and print the run's vital signs.
//
//   svmwkld gen --pattern=NAME --out=FILE [--nodes=N] [--page-size=B]
//               [--pages-per-node=N] [--iterations=N] [--ops=N]
//               [--write-frac=F] [--locality=F] [--compute-ns=N] [--seed=N]
//       Generate a seeded synthetic workload trace. Same flags + same seed
//       => byte-identical file.
//
//   svmwkld stats --in=FILE
//       Print the header and per-node record/byte counts.
//
//   svmwkld cat --in=FILE [--node=N] [--limit=N]
//       Dump records in a readable text form.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/cli.h"
#include "src/common/rng.h"
#include "src/proto/options.h"
#include "src/svm/system.h"
#include "src/wkld/recorder.h"
#include "src/wkld/replay.h"
#include "src/wkld/synth.h"
#include "src/wkld/trace_file.h"

namespace hlrc {
namespace {

using wkld::Record;

const ToolInfo kTool = {
    "svmwkld",
    "Workload trace toolbox: record an application's shared-access/sync\n"
    "workload, replay a captured workload trace under any protocol, generate\n"
    "seeded synthetic workloads, and inspect workload trace files\n"
    "(docs/WORKLOADS.md). A workload trace is replayable input, distinct\n"
    "from the execution trace timeline svmsim --trace writes.",
    "  record --app=NAME --out=FILE [--protocol=P] [--nodes=N]\n"
    "         [--scale=S] [--page-size=B] [--seed=N]\n"
    "  replay --in=FILE [--protocol=P] [--nodes=N] [--page-size=B]\n"
    "  gen    --pattern=NAME --out=FILE [--nodes=N] [--page-size=B]\n"
    "         [--pages-per-node=N] [--iterations=N] [--ops=N]\n"
    "         [--write-frac=F] [--locality=F] [--compute-ns=N] [--seed=N]\n"
    "  stats  --in=FILE\n"
    "  cat    --in=FILE [--node=N] [--limit=N]\n",
    "COMMAND [flags]",
};

[[noreturn]] void Usage() {
  PrintUsage(kTool, stderr);
  std::fprintf(stderr, "patterns:");
  for (const std::string& p : wkld::SynthPatternNames()) {
    std::fprintf(stderr, " %s", p.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

struct Flags {
  std::string app;
  std::string pattern;
  std::string in_path;
  std::string out_path;
  std::string protocol = "hlrc";
  AppScale scale = AppScale::kTiny;
  int nodes = 8;
  bool nodes_set = false;
  int64_t page_size = 4096;
  bool page_size_set = false;
  int pages_per_node = 4;
  int iterations = 8;
  int ops = 16;
  double write_frac = 0.5;
  double locality = 0.8;
  int64_t compute_ns = 2000;
  uint64_t seed = 42;
  bool seed_set = false;
  int node = -1;
  int64_t limit = -1;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* p) { return arg.substr(std::strlen(p)); };
    if (arg.rfind("--app=", 0) == 0) {
      f.app = val("--app=");
    } else if (arg.rfind("--pattern=", 0) == 0) {
      f.pattern = val("--pattern=");
    } else if (arg.rfind("--in=", 0) == 0) {
      f.in_path = val("--in=");
    } else if (arg.rfind("--out=", 0) == 0) {
      f.out_path = val("--out=");
    } else if (arg.rfind("--protocol=", 0) == 0) {
      f.protocol = val("--protocol=");
    } else if (arg.rfind("--scale=", 0) == 0) {
      const std::string s = val("--scale=");
      f.scale = s == "paper" ? AppScale::kPaper
                             : (s == "default" ? AppScale::kDefault : AppScale::kTiny);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      f.nodes = std::atoi(val("--nodes=").c_str());
      f.nodes_set = true;
    } else if (arg.rfind("--page-size=", 0) == 0) {
      f.page_size = std::atoll(val("--page-size=").c_str());
      f.page_size_set = true;
    } else if (arg.rfind("--pages-per-node=", 0) == 0) {
      f.pages_per_node = std::atoi(val("--pages-per-node=").c_str());
    } else if (arg.rfind("--iterations=", 0) == 0) {
      f.iterations = std::atoi(val("--iterations=").c_str());
    } else if (arg.rfind("--ops=", 0) == 0) {
      f.ops = std::atoi(val("--ops=").c_str());
    } else if (arg.rfind("--write-frac=", 0) == 0) {
      f.write_frac = std::atof(val("--write-frac=").c_str());
    } else if (arg.rfind("--locality=", 0) == 0) {
      f.locality = std::atof(val("--locality=").c_str());
    } else if (arg.rfind("--compute-ns=", 0) == 0) {
      f.compute_ns = std::atoll(val("--compute-ns=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      f.seed = std::strtoull(val("--seed=").c_str(), nullptr, 10);
      f.seed_set = true;
    } else if (arg.rfind("--node=", 0) == 0) {
      f.node = std::atoi(val("--node=").c_str());
    } else if (arg.rfind("--limit=", 0) == 0) {
      f.limit = std::atoll(val("--limit=").c_str());
    } else if (!HandleCommonFlag(kTool, arg)) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
    }
  }
  return f;
}

bool ParseProtocol(const std::string& s, ProtocolKind* kind) {
  if (s == "lrc") *kind = ProtocolKind::kLrc;
  else if (s == "olrc") *kind = ProtocolKind::kOlrc;
  else if (s == "hlrc") *kind = ProtocolKind::kHlrc;
  else if (s == "ohlrc") *kind = ProtocolKind::kOhlrc;
  else if (s == "erc") *kind = ProtocolKind::kErc;
  else if (s == "aurc") *kind = ProtocolKind::kAurc;
  else return false;
  return true;
}

void PrintRunVitals(const System& sys, const App& app, bool verified,
                    const std::string& why) {
  const RunReport& report = sys.report();
  const NodeReport totals = report.Totals();
  std::printf("%s: virtual time %.6f s, %" PRId64 " messages, %" PRId64
              " page fetches, %" PRId64 " diffs, verification %s%s\n",
              app.name().c_str(), ToSeconds(report.total_time), totals.traffic.msgs_sent,
              totals.proto.page_fetches, totals.proto.diffs_created,
              verified ? "OK" : "FAILED ", verified ? "" : why.c_str());
}

int CmdRecord(const Flags& f) {
  if (f.app.empty() || f.out_path.empty()) {
    std::fprintf(stderr, "record needs --app and --out\n");
    Usage();
  }
  ProtocolKind kind;
  if (!ParseProtocol(f.protocol, &kind)) {
    std::fprintf(stderr, "unknown protocol '%s'\n", f.protocol.c_str());
    return 2;
  }
  SimConfig cfg;
  cfg.nodes = f.nodes;
  cfg.page_size = f.page_size;
  cfg.shared_bytes = 256ll << 20;
  cfg.seed = f.seed;
  cfg.protocol.kind = kind;
  Rng root(cfg.seed);
  const uint64_t app_seed = root.NextU64();
  auto app = f.seed_set ? TryMakeApp(f.app, f.scale, app_seed) : TryMakeApp(f.app, f.scale);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'; registered apps:", f.app.c_str());
    for (const std::string& name : RegisteredAppNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  System sys(cfg);
  const std::string meta =
      std::string("protocol=") + ProtocolName(kind) + " seed=" + std::to_string(cfg.seed);
  wkld::TraceWriter writer(f.out_path, wkld::MakeTraceInfo(cfg, app->name(), meta));
  wkld::TraceRecorder recorder(&sys, &writer);
  sys.SetWorkloadObserver(&recorder);
  app->Setup(sys);
  sys.Run(app->Program());
  writer.Finish();

  std::string why;
  const bool verified = app->Verify(sys, &why);
  PrintRunVitals(sys, *app, verified, why);
  std::printf("workload trace written to %s\n", f.out_path.c_str());
  return verified ? 0 : 1;
}

int CmdReplay(const Flags& f) {
  if (f.in_path.empty()) {
    std::fprintf(stderr, "replay needs --in\n");
    Usage();
  }
  ProtocolKind kind;
  if (!ParseProtocol(f.protocol, &kind)) {
    std::fprintf(stderr, "unknown protocol '%s'\n", f.protocol.c_str());
    return 2;
  }
  std::string err;
  auto app = wkld::TraceReplayApp::Open(f.in_path, &err);
  if (app == nullptr) {
    std::fprintf(stderr, "cannot replay: %s\n", err.c_str());
    return 2;
  }
  SimConfig cfg;
  cfg.nodes = f.nodes_set ? f.nodes : app->info().nodes;
  cfg.page_size = f.page_size_set ? f.page_size : app->info().page_size;
  cfg.shared_bytes = app->info().shared_bytes > 0 ? app->info().shared_bytes : 256ll << 20;
  cfg.protocol.kind = kind;
  System sys(cfg);
  app->Setup(sys);
  sys.Run(app->Program());
  std::string why;
  const bool verified = app->Verify(sys, &why);
  PrintRunVitals(sys, *app, verified, why);
  return verified ? 0 : 1;
}

int CmdGen(const Flags& f) {
  if (f.pattern.empty() || f.out_path.empty()) {
    std::fprintf(stderr, "gen needs --pattern and --out\n");
    Usage();
  }
  wkld::SynthConfig cfg;
  if (!wkld::ParseSynthPattern(f.pattern, &cfg.pattern)) {
    std::fprintf(stderr, "unknown pattern '%s'; patterns:", f.pattern.c_str());
    for (const std::string& p : wkld::SynthPatternNames()) {
      std::fprintf(stderr, " %s", p.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  cfg.nodes = f.nodes;
  cfg.page_size = f.page_size;
  cfg.pages_per_node = f.pages_per_node;
  cfg.iterations = f.iterations;
  cfg.ops_per_iter = f.ops;
  cfg.write_frac = f.write_frac;
  cfg.locality = f.locality;
  cfg.compute_ns = f.compute_ns;
  cfg.seed = f.seed;
  wkld::WriteSyntheticTrace(f.out_path, cfg);
  std::printf("synthetic %s trace written to %s (%d nodes, %d iterations, seed %" PRIu64
              ")\n",
              f.pattern.c_str(), f.out_path.c_str(), cfg.nodes, cfg.iterations, cfg.seed);
  return 0;
}

const char* KindLabel(Record::Kind kind) { return wkld::RecordKindName(kind); }

int CmdStats(const Flags& f) {
  if (f.in_path.empty()) {
    std::fprintf(stderr, "stats needs --in\n");
    Usage();
  }
  std::string err;
  auto reader = wkld::TraceReader::Open(f.in_path, &err);
  if (reader == nullptr) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const wkld::TraceInfo& info = reader->info();
  std::printf("trace %s\n  app: %s\n  meta: %s\n  nodes: %d\n  page size: %" PRId64
              "\n  shared bytes: %" PRId64 "\n  allocations: %zu\n",
              f.in_path.c_str(), info.app.c_str(), info.meta.c_str(), info.nodes,
              info.page_size, info.shared_bytes, info.allocs.size());
  int64_t grand_records = 0;
  int64_t grand_write_bytes = 0;
  for (int node = 0; node < info.nodes; ++node) {
    auto stream = reader->OpenStream(node, &err);
    if (stream == nullptr) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    int64_t counts[9] = {0};
    int64_t access_bytes = 0;
    int64_t write_bytes = 0;
    Record rec;
    while (stream->Next(&rec, &err)) {
      ++counts[static_cast<int>(rec.kind)];
      ++grand_records;
      for (const AccessRange& r : rec.ranges) {
        access_bytes += r.bytes;
      }
      for (const wkld::WriteRun& run : rec.runs) {
        write_bytes += static_cast<int64_t>(run.bytes.size());
      }
    }
    if (!err.empty()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    grand_write_bytes += write_bytes;
    std::printf("  node %d: compute=%" PRId64 " access=%" PRId64 " writes=%" PRId64
                " lock=%" PRId64 "/%" PRId64 " barrier=%" PRId64 " phase=%" PRId64
                " (access %" PRId64 " B, stored %" PRId64 " B)\n",
                node, counts[1], counts[2], counts[3], counts[4], counts[5], counts[6],
                counts[7], access_bytes, write_bytes);
  }
  std::printf("  total: %" PRId64 " records, %" PRId64 " stored bytes\n", grand_records,
              grand_write_bytes);
  return 0;
}

int CmdCat(const Flags& f) {
  if (f.in_path.empty()) {
    std::fprintf(stderr, "cat needs --in\n");
    Usage();
  }
  std::string err;
  auto reader = wkld::TraceReader::Open(f.in_path, &err);
  if (reader == nullptr) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  const wkld::TraceInfo& info = reader->info();
  for (const wkld::AllocEntry& a : info.allocs) {
    std::printf("ALLOC addr=0x%" PRIx64 " bytes=%" PRId64 "%s\n", a.addr, a.bytes,
                a.page_aligned ? " page-aligned" : "");
  }
  int64_t printed = 0;
  for (int node = 0; node < info.nodes; ++node) {
    if (f.node >= 0 && node != f.node) {
      continue;
    }
    auto stream = reader->OpenStream(node, &err);
    if (stream == nullptr) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    Record rec;
    while (stream->Next(&rec, &err)) {
      if (f.limit >= 0 && printed >= f.limit) {
        std::printf("... (limit reached)\n");
        return 0;
      }
      ++printed;
      std::printf("[%d] %s", node, KindLabel(rec.kind));
      switch (rec.kind) {
        case Record::Kind::kCompute:
          std::printf(" %" PRId64 " ns", rec.duration_ns);
          break;
        case Record::Kind::kAccess:
          for (const AccessRange& r : rec.ranges) {
            std::printf(" %s[0x%" PRIx64 "+%" PRId64 "]", r.write ? "W" : "R", r.addr,
                        r.bytes);
          }
          break;
        case Record::Kind::kWrites:
          for (const wkld::WriteRun& run : rec.runs) {
            std::printf(" [0x%" PRIx64 "+%zu]", run.addr, run.bytes.size());
          }
          break;
        case Record::Kind::kLock:
        case Record::Kind::kUnlock:
        case Record::Kind::kBarrier:
        case Record::Kind::kPhase:
          std::printf(" %" PRId64, rec.sync_id);
          break;
        case Record::Kind::kEnd:
          break;
      }
      std::printf("\n");
    }
    if (!err.empty()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
  }
  const std::string cmd = argv[1];
  HandleCommonFlag(kTool, cmd);  // `svmwkld --help` / `--version` with no command.
  const Flags f = ParseFlags(argc, argv, 2);
  if (cmd == "record") return CmdRecord(f);
  if (cmd == "replay") return CmdReplay(f);
  if (cmd == "gen") return CmdGen(f);
  if (cmd == "stats") return CmdStats(f);
  if (cmd == "cat") return CmdCat(f);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  Usage();
}

}  // namespace
}  // namespace hlrc

int main(int argc, char** argv) { return hlrc::Main(argc, argv); }

// Quickstart: the smallest complete HLRC-SVM program.
//
// Four simulated nodes share one page of memory. Node 0 initializes a
// counter; every node increments it 10 times under a lock; a barrier makes
// the total visible everywhere. Demonstrates: System construction, G_MALLOC
// allocation, the per-node coroutine program, Lock/Unlock/Barrier, the
// Read/Write access grants, and the run report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/svm/system.h"

using namespace hlrc;

int main() {
  // A 4-node machine running the home-based protocol (the paper's HLRC).
  SimConfig config;
  config.nodes = 4;
  config.protocol.kind = ProtocolKind::kHlrc;

  System system(config);

  // Allocate shared data before the run (Splash-2's G_MALLOC).
  const GlobalAddr counter = system.space().AllocPageAligned(sizeof(int64_t));

  system.Run([&](NodeContext& ctx) -> Task<void> {
    if (ctx.id() == 0) {
      co_await ctx.Write(counter, sizeof(int64_t));
      *ctx.Ptr<int64_t>(counter) = 0;
    }
    co_await ctx.Barrier(0);

    for (int i = 0; i < 10; ++i) {
      co_await ctx.Lock(1);
      // A write grant holds until the next co_await: mutate immediately.
      co_await ctx.Write(counter, sizeof(int64_t));
      *ctx.Ptr<int64_t>(counter) += 1;
      co_await ctx.Unlock(1);
      // Pretend to do 50 microseconds of real work between increments.
      co_await ctx.Compute(Micros(50));
    }

    co_await ctx.Barrier(0);
    co_await ctx.Read(counter, sizeof(int64_t));
    std::printf("node %d sees counter = %lld at virtual time %.3f ms\n", ctx.id(),
                static_cast<long long>(*ctx.Ptr<int64_t>(counter)),
                ToMillis(ctx.system()->engine().Now()));
  });

  const RunReport& report = system.report();
  std::printf("\nrun finished at %.3f virtual ms\n", ToMillis(report.total_time));
  const NodeReport totals = report.Totals();
  std::printf("lock acquires: %lld, messages: %lld, update traffic: %lld bytes\n",
              static_cast<long long>(totals.proto.lock_acquires),
              static_cast<long long>(totals.traffic.msgs_sent),
              static_cast<long long>(totals.traffic.update_bytes_sent));
  return 0;
}

// Domain scenario: a dynamic work-stealing task farm over shared memory —
// the irregular, lock-heavy access pattern of the paper's Raytrace.
//
// A shared queue of "jobs" (integration subintervals of a function) is
// consumed by all nodes with lock-protected pops; partial results are
// accumulated into a shared array slot per node and reduced at the end.
// Shows: locks with real contention, fine-grained false sharing (all result
// slots live on one page), and how to read the per-node breakdown report.
//
// Build & run:  ./build/examples/task_queue [nodes] [jobs]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/svm/system.h"

using namespace hlrc;

namespace {

// The function whose integral the farm computes.
double F(double x) { return 4.0 / (1.0 + x * x); }  // Integral over [0,1] = pi.

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 256;
  constexpr int kSamplesPerJob = 2000;

  SimConfig config;
  config.nodes = nodes;
  config.protocol.kind = ProtocolKind::kOhlrc;
  System system(config);

  // Shared state: queue head index + per-node partial sums (false sharing:
  // all slots on one page, like Raytrace's image plane).
  const GlobalAddr head = system.space().AllocPageAligned(sizeof(int64_t));
  const GlobalAddr partial = system.space().AllocPageAligned(nodes * sizeof(double));

  system.Run([&](NodeContext& ctx) -> Task<void> {
    const int me = ctx.id();
    if (me == 0) {
      const std::vector<NodeContext::Range> init = {
          {head, sizeof(int64_t), true},
          {partial, nodes * static_cast<int64_t>(sizeof(double)), true}};
      co_await ctx.Access(init);
      *ctx.Ptr<int64_t>(head) = 0;
      for (int n = 0; n < ctx.nodes(); ++n) {
        ctx.Ptr<double>(partial)[n] = 0.0;
      }
    }
    co_await ctx.Barrier(0);

    double local = 0.0;
    int64_t taken = 0;
    while (true) {
      // Pop the next job index under the queue lock.
      co_await ctx.Lock(1);
      co_await ctx.Write(head, sizeof(int64_t));
      int64_t* h = ctx.Ptr<int64_t>(head);
      const int64_t job = *h < jobs ? (*h)++ : -1;
      co_await ctx.Unlock(1);
      if (job < 0) {
        break;
      }
      ++taken;

      // Integrate F over this job's subinterval (real math, charged time).
      const double lo = static_cast<double>(job) / jobs;
      const double hi = static_cast<double>(job + 1) / jobs;
      double sum = 0.0;
      for (int s = 0; s < kSamplesPerJob; ++s) {
        const double x = lo + (hi - lo) * (s + 0.5) / kSamplesPerJob;
        sum += F(x);
      }
      local += sum * (hi - lo) / kSamplesPerJob;
      co_await ctx.ComputeFlops(kSamplesPerJob * 6);
    }

    // Publish the partial result (own slot; the page is falsely shared).
    co_await ctx.Write(partial + static_cast<GlobalAddr>(me) * sizeof(double),
                       sizeof(double));
    ctx.Ptr<double>(partial)[me] = local;
    co_await ctx.Barrier(1);

    if (me == 0) {
      co_await ctx.Read(partial, ctx.nodes() * sizeof(double));
      double pi = 0.0;
      for (int n = 0; n < ctx.nodes(); ++n) {
        pi += ctx.Ptr<double>(partial)[n];
      }
      std::printf("pi ~= %.9f (error %.2e), %d jobs across %d nodes\n", pi,
                  std::fabs(pi - M_PI), jobs, ctx.nodes());
    }
    std::printf("  node %2d took %lld jobs\n", me, static_cast<long long>(taken));
  });

  std::printf("\nPer-node time breakdown (paper Figure 3 categories):\n");
  for (const NodeReport& n : system.report().nodes) {
    std::printf(
        "  node %2zu: compute %6.2fms  data %6.2fms  lock %6.2fms  barrier %6.2fms  "
        "proto %5.2fms\n",
        static_cast<size_t>(&n - system.report().nodes.data()), ToMillis(n.Computation()),
        ToMillis(n.DataTransfer()), ToMillis(n.LockTime()), ToMillis(n.BarrierTime()),
        ToMillis(n.ProtocolOverhead()));
  }
  return 0;
}

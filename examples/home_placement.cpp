// Domain scenario: producer/consumer pipelines and the home effect.
//
// A ring of nodes: each node repeatedly writes a block that its right
// neighbor reads in the next phase. Under HLRC the placement of the block's
// home decides whether updates travel zero, one or two network hops — the
// "home effect" of paper §4.4. This example measures all three placements.
//
// Build & run:  ./build/examples/home_placement [nodes]
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/svm/system.h"

using namespace hlrc;

namespace {

constexpr int kBlockBytes = 16 << 10;
constexpr int kPhases = 12;

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;

  Table table("Producer/consumer ring, " + std::to_string(nodes) + " nodes");
  table.SetHeader({"Home policy", "Time (ms)", "Page fetches", "Diff flushes (msgs)",
                   "Update bytes"});

  for (HomePolicy policy :
       {HomePolicy::kBlock, HomePolicy::kRoundRobin, HomePolicy::kSingleNode}) {
    SimConfig config;
    config.nodes = nodes;
    config.protocol.kind = ProtocolKind::kHlrc;
    config.protocol.home_policy = policy;
    System system(config);
    const GlobalAddr blocks =
        system.space().AllocPageAligned(static_cast<int64_t>(nodes) * kBlockBytes);

    system.Run([&](NodeContext& ctx) -> Task<void> {
      const int me = ctx.id();
      const GlobalAddr mine = blocks + static_cast<GlobalAddr>(me) * kBlockBytes;
      const GlobalAddr left =
          blocks + static_cast<GlobalAddr>((me + ctx.nodes() - 1) % ctx.nodes()) * kBlockBytes;
      for (int phase = 0; phase < kPhases; ++phase) {
        // Produce into the own block (consumed by the right neighbor).
        co_await ctx.Write(mine, kBlockBytes);
        int64_t* data = ctx.Ptr<int64_t>(mine);
        for (int i = 0; i < kBlockBytes / 8; i += 8) {
          data[i] = phase * 1000 + me;
        }
        co_await ctx.ComputeFlops(kBlockBytes / 8);
        co_await ctx.Barrier(0);
        // Consume the left neighbor's block.
        co_await ctx.Read(left, kBlockBytes);
        const int64_t* in = ctx.Ptr<int64_t>(left);
        int64_t sum = 0;
        for (int i = 0; i < kBlockBytes / 8; i += 8) {
          sum += in[i];
        }
        co_await ctx.ComputeFlops(kBlockBytes / 8);
        co_await ctx.Barrier(1);
      }
    });

    const NodeReport totals = system.report().Totals();
    table.AddRow({HomePolicyName(policy), Table::Fmt(ToMillis(system.report().total_time), 2),
                  Table::Fmt(totals.proto.page_fetches),
                  Table::Fmt(totals.proto.diffs_created),
                  Table::FmtBytes(totals.traffic.update_bytes_sent)});
  }
  table.Print();
  std::printf(
      "\nblock: each producer IS its block's home — no diffs, consumers fetch one hop.\n"
      "round-robin/single-node: updates are flushed to a third-party home first, then\n"
      "fetched — twice the update traffic, and single-node homes are also a hot spot.\n");
  return 0;
}

// Protocol comparison on a heat-diffusion stencil (the workload class the
// paper's introduction motivates: iterative scientific kernels on a network
// of computers).
//
// Runs the same 2-D Jacobi stencil under LRC, OLRC, HLRC and OHLRC and prints
// execution time, message counts, traffic and protocol memory side by side —
// a miniature of the paper's whole evaluation.
//
// Build & run:  ./build/examples/protocol_comparison [nodes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/table.h"
#include "src/svm/system.h"

using namespace hlrc;

namespace {

constexpr int kRows = 256;
constexpr int kCols = 256;
constexpr int kIters = 8;

Task<void> Stencil(NodeContext& ctx, GlobalAddr grid_a, GlobalAddr grid_b) {
  const int nodes = ctx.nodes();
  const int me = ctx.id();
  const int per = kRows / nodes;
  const int first = me * per;
  const int64_t row_bytes = kCols * 8;

  if (me == 0) {
    co_await ctx.Write(grid_a, kRows * row_bytes);
    double* a = ctx.Ptr<double>(grid_a);
    uint64_t state = 42;
    for (int i = 0; i < kRows * kCols; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      a[i] = static_cast<double>(state >> 40) / 16777216.0 * 100.0;
    }
  }
  co_await ctx.Barrier(0);

  GlobalAddr src = grid_a;
  GlobalAddr dst = grid_b;
  for (int it = 0; it < kIters; ++it) {
    const int rfirst = std::max(first - 1, 0);
    const int rlast = std::min(first + per, kRows - 1);
    const std::vector<NodeContext::Range> ranges = {
        {src + static_cast<GlobalAddr>(rfirst) * row_bytes,
         (rlast - rfirst + 1) * row_bytes, false},
        {dst + static_cast<GlobalAddr>(first) * row_bytes, per * row_bytes, true}};
    co_await ctx.Access(ranges);
    const double* s = ctx.Ptr<double>(src);
    double* d = ctx.Ptr<double>(dst);
    for (int i = first; i < first + per; ++i) {
      for (int j = 0; j < kCols; ++j) {
        const double up = i > 0 ? s[(i - 1) * kCols + j] : s[i * kCols + j];
        const double down = i < kRows - 1 ? s[(i + 1) * kCols + j] : s[i * kCols + j];
        const double left = j > 0 ? s[i * kCols + j - 1] : s[i * kCols + j];
        const double right = j < kCols - 1 ? s[i * kCols + j + 1] : s[i * kCols + j];
        d[i * kCols + j] = 0.25 * (up + down + left + right);
      }
    }
    co_await ctx.ComputeFlops(4ll * per * kCols);
    co_await ctx.Barrier(1);
    std::swap(src, dst);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 16;

  Table table("Heat-diffusion stencil, " + std::to_string(nodes) + " nodes, " +
              std::to_string(kRows) + "x" + std::to_string(kCols));
  table.SetHeader({"Protocol", "Time (ms)", "Messages", "Update bytes", "Protocol bytes",
                   "Proto mem (max/node)"});

  for (ProtocolKind kind : {ProtocolKind::kErc, ProtocolKind::kLrc, ProtocolKind::kOlrc,
                            ProtocolKind::kHlrc, ProtocolKind::kOhlrc, ProtocolKind::kAurc}) {
    SimConfig config;
    config.nodes = nodes;
    config.protocol.kind = kind;
    System system(config);
    const GlobalAddr grid_a = system.space().AllocPageAligned(kRows * kCols * 8);
    const GlobalAddr grid_b = system.space().AllocPageAligned(kRows * kCols * 8);
    system.Run(
        [&](NodeContext& ctx) -> Task<void> { return Stencil(ctx, grid_a, grid_b); });

    const NodeReport totals = system.report().Totals();
    int64_t max_mem = 0;
    for (const NodeReport& n : system.report().nodes) {
      max_mem = std::max(max_mem, n.proto_mem_highwater);
    }
    table.AddRow({ProtocolName(kind), Table::Fmt(ToMillis(system.report().total_time), 2),
                  Table::Fmt(totals.traffic.msgs_sent),
                  Table::FmtBytes(totals.traffic.update_bytes_sent),
                  Table::FmtBytes(totals.traffic.protocol_bytes_sent),
                  Table::FmtBytes(max_mem)});
  }
  table.Print();
  std::printf("\nExpected: the home-based protocols need fewer messages and far less\n"
              "protocol memory; overlapping removes the receive-interrupt cost.\n");
  return 0;
}

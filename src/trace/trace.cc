#include "src/trace/trace.h"

#include <algorithm>

#include "src/common/check.h"

namespace hlrc {

const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kFault:
      return "fault";
    case TraceEvent::kPageFetch:
      return "page-fetch";
    case TraceEvent::kPageServe:
      return "page-serve";
    case TraceEvent::kDiffCreate:
      return "diff-create";
    case TraceEvent::kDiffApply:
      return "diff-apply";
    case TraceEvent::kDiffFlush:
      return "diff-flush";
    case TraceEvent::kLockRequest:
      return "lock-request";
    case TraceEvent::kLockGrant:
      return "lock-grant";
    case TraceEvent::kLockAcquired:
      return "lock-acquired";
    case TraceEvent::kBarrierEnter:
      return "barrier-enter";
    case TraceEvent::kBarrierExit:
      return "barrier-exit";
    case TraceEvent::kIntervalClose:
      return "interval-close";
    case TraceEvent::kGcStart:
      return "gc-start";
    case TraceEvent::kGcEnd:
      return "gc-end";
    case TraceEvent::kNetDrop:
      return "net-drop";
    case TraceEvent::kNetRetransmit:
      return "net-retransmit";
    case TraceEvent::kNetDupDrop:
      return "net-dup-drop";
    case TraceEvent::kCount:
      break;
  }
  return "?";
}

TraceLog::TraceLog(size_t capacity) : capacity_(capacity) {
  HLRC_CHECK(capacity > 0);
  ring_.reserve(std::min<size_t>(capacity, 4096));
}

void TraceLog::Record(NodeId node, SimTime time, TraceEvent event, int64_t arg0,
                      int64_t arg1) {
  ++recorded_;
  ++counts_[static_cast<size_t>(event)];
  const TraceRecord rec{time, node, event, arg0, arg1};
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  // Overwrite the oldest.
  wrapped_ = true;
  ++dropped_;
  ring_[next_] = rec;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceRecord> TraceLog::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<int64_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<int64_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

void TraceLog::DumpText(std::FILE* out) const {
  for (const TraceRecord& r : Snapshot()) {
    std::fprintf(out, "%12.3fus node %3d %-14s %lld %lld\n", ToMicros(r.time), r.node,
                 TraceEventName(r.event), static_cast<long long>(r.arg0),
                 static_cast<long long>(r.arg1));
  }
  if (dropped_ > 0) {
    std::fprintf(out, "(%lld older records dropped)\n", static_cast<long long>(dropped_));
  }
}

void TraceLog::DumpChromeJson(const std::string& path, const std::string& extra_events) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HLRC_CHECK_MSG(f != nullptr, "cannot open trace file %s", path.c_str());
  std::fprintf(f, "[\n");
  bool first = true;
  for (const TraceRecord& r : Snapshot()) {
    if (!first) {
      std::fprintf(f, ",\n");
    }
    first = false;
    std::fprintf(f,
                 "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,"
                 "\"s\":\"t\",\"args\":{\"a0\":%lld,\"a1\":%lld}}",
                 TraceEventName(r.event), ToMicros(r.time), r.node,
                 static_cast<long long>(r.arg0), static_cast<long long>(r.arg1));
  }
  if (!extra_events.empty()) {
    if (!first) {
      std::fprintf(f, ",\n");
    }
    std::fwrite(extra_events.data(), 1, extra_events.size(), f);
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
}

}  // namespace hlrc

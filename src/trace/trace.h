// Structured protocol event tracing.
//
// When enabled, every node records fixed-size protocol events (faults,
// fetches, diff operations, lock and barrier activity, GC) into a per-node
// ring buffer. Traces dump as readable text or as a Chrome trace-event JSON
// file loadable in chrome://tracing / Perfetto, with one row per simulated
// node. Recording is a single branch + array store, cheap enough to leave
// compiled in; a null TraceLog pointer disables it entirely.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace hlrc {

enum class TraceEvent : uint8_t {
  kFault = 0,          // arg0 = page, arg1 = write flag.
  kPageFetch = 1,      // arg0 = page, arg1 = target node.
  kPageServe = 2,      // arg0 = page, arg1 = requester.
  kDiffCreate = 3,     // arg0 = page, arg1 = diff bytes.
  kDiffApply = 4,      // arg0 = page, arg1 = diff bytes.
  kDiffFlush = 5,      // arg0 = page, arg1 = home node.
  kLockRequest = 6,    // arg0 = lock id.
  kLockGrant = 7,      // arg0 = lock id, arg1 = requester.
  kLockAcquired = 8,   // arg0 = lock id.
  kBarrierEnter = 9,   // arg0 = barrier id.
  kBarrierExit = 10,   // arg0 = barrier id.
  kIntervalClose = 11, // arg0 = interval id, arg1 = dirty pages.
  kGcStart = 12,
  kGcEnd = 13,
  kNetDrop = 14,        // arg0 = msg type, arg1 = dst (recorded on src).
  kNetRetransmit = 15,  // arg0 = msg type, arg1 = dst (recorded on src).
  kNetDupDrop = 16,     // arg0 = msg type, arg1 = src (recorded on dst).
  kCount = 17,
};

const char* TraceEventName(TraceEvent e);

struct TraceRecord {
  SimTime time;
  NodeId node;
  TraceEvent event;
  int64_t arg0;
  int64_t arg1;
};

class TraceLog {
 public:
  // `capacity` bounds the total number of retained records; older records
  // are dropped (ring buffer) so long runs cannot exhaust memory.
  explicit TraceLog(size_t capacity = 1 << 20);

  void Record(NodeId node, SimTime time, TraceEvent event, int64_t arg0 = 0,
              int64_t arg1 = 0);

  // Records in time order (reconstructed from the ring).
  std::vector<TraceRecord> Snapshot() const;

  int64_t recorded() const { return recorded_; }
  int64_t dropped() const { return dropped_; }
  int64_t CountOf(TraceEvent e) const { return counts_[static_cast<size_t>(e)]; }

  // Human-readable dump.
  void DumpText(std::FILE* out) const;

  // Chrome trace-event format (chrome://tracing, Perfetto). One instant
  // event per record; pid 0, tid = node. `extra_events`, when non-empty, is
  // spliced into the event array verbatim: a comma-joined list of event
  // objects with no trailing comma (e.g. the sampler's Perfetto counter
  // tracks from ChromeCounterEvents).
  void DumpChromeJson(const std::string& path, const std::string& extra_events = "") const;

 private:
  size_t capacity_;
  std::vector<TraceRecord> ring_;
  size_t next_ = 0;
  bool wrapped_ = false;
  int64_t recorded_ = 0;
  int64_t dropped_ = 0;
  int64_t counts_[static_cast<size_t>(TraceEvent::kCount)] = {};
};

}  // namespace hlrc

#endif  // SRC_TRACE_TRACE_H_

// Declarative fault plans for the simulated interconnect.
//
// A FaultPlan describes, deterministically, how the fabric misbehaves during
// a run: per-frame probabilistic faults (drop / duplicate / delay /
// corrupt-and-drop), optionally restricted by message type or node pair, plus
// scheduled link-partition windows between node sets and transient node
// slowdowns. The plan is pure data; src/fault/fault_injector.h executes it.
// All randomness comes from one explicit SplitMix64 seed — no wall-clock, no
// global state — so a plan replays bit-identically (docs/FAULTS.md).
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/net/message.h"

namespace hlrc {

// While now is in [start, end), frames between group_a and group_b (either
// direction) are dropped deterministically. An empty group_b means "every
// node not in group_a" (a clean network split).
struct PartitionWindow {
  std::vector<NodeId> group_a;
  std::vector<NodeId> group_b;
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();
};

// While now is in [start, end), every frame to or from `node` takes
// `extra_delay` longer (a transiently slow or overloaded node).
struct SlowdownWindow {
  NodeId node = kInvalidNode;
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();
  SimTime extra_delay = Micros(500);
};

struct FaultPlan {
  // Root seed of the injector's private Rng.
  uint64_t seed = 42;

  // Per-frame probabilities, evaluated in this order; at most one fires.
  double drop_prob = 0.0;     // Lost in the network.
  double corrupt_prob = 0.0;  // Delivered bytes, discarded at the receiver.
  double dup_prob = 0.0;      // Delivered twice (requires reliable delivery).
  double delay_prob = 0.0;    // Head arrival delayed by uniform [delay_min, delay_max].
  SimTime delay_min = Micros(50);
  SimTime delay_max = Millis(2);

  // Restrict probabilistic faults to one (src, dst) pair; kInvalidNode = any.
  // Partition and slowdown windows are unaffected by these filters.
  NodeId only_src = kInvalidNode;
  NodeId only_dst = kInvalidNode;
  // Restrict probabilistic faults to these message types; empty = all types
  // (acks included — a lost ack exercises the retransmit/dedup path).
  std::vector<MsgType> only_types;

  std::vector<PartitionWindow> partitions;
  std::vector<SlowdownWindow> slowdowns;

  // True if this plan can affect any frame at all.
  bool Active() const {
    return drop_prob > 0 || corrupt_prob > 0 || dup_prob > 0 || delay_prob > 0 ||
           !partitions.empty() || !slowdowns.empty();
  }
};

// Parses the CLI partition grammar `a-b@t0..t1`:
//   group:  comma-separated node ids, e.g. `0,1,2`
//   spec:   <group_a>-<group_b>@<t0>..<t1>  with times in milliseconds of
//           virtual time (decimals allowed); group_b may be empty
//           (`0-@5..10` splits node 0 from everyone else).
// Examples: `0,1-2,3@5..10`, `0-@0..2.5`.
// Returns false and fills *error on malformed input.
bool ParsePartitionSpec(const std::string& spec, PartitionWindow* out, std::string* error);

// One-line human-readable plan summary for run headers.
std::string FaultPlanSummary(const FaultPlan& plan);

}  // namespace hlrc

#endif  // SRC_FAULT_FAULT_PLAN_H_

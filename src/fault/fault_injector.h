// Deterministic execution of a FaultPlan.
//
// The injector implements the network's FaultHook: the fabric consults it
// once per physical transmission (data frames, retransmissions and acks
// alike) and applies the returned decision. Determinism contract: decisions
// depend only on the plan, the seed and the (deterministic) sequence of
// OnTransmit calls — the injector draws a fixed number of random values per
// eligible frame, so a plan change that leaves a frame ineligible does not
// shift the stream for later frames within the same eligibility class.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>

#include "src/common/rng.h"
#include "src/fault/fault_plan.h"
#include "src/net/fault_hook.h"

namespace hlrc {

class FaultInjector : public FaultHook {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  FaultDecision OnTransmit(NodeId src, NodeId dst, MsgType type, SimTime now,
                           bool retransmit) override;

  struct Counters {
    int64_t dropped = 0;
    int64_t corrupted = 0;
    int64_t duplicated = 0;
    int64_t delayed = 0;
    int64_t partition_dropped = 0;
    int64_t slowdown_delayed = 0;
  };
  const Counters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

  // True if a frame src->dst at `now` falls inside a partition window.
  bool Partitioned(NodeId src, NodeId dst, SimTime now) const;

 private:
  bool TypeEnabled(MsgType type) const;
  bool PairEnabled(NodeId src, NodeId dst) const;
  SimTime SlowdownDelay(NodeId src, NodeId dst, SimTime now) const;

  FaultPlan plan_;
  Rng rng_;
  std::array<bool, static_cast<size_t>(MsgType::kCount)> type_enabled_{};
  Counters counters_;
};

}  // namespace hlrc

#endif  // SRC_FAULT_FAULT_INJECTOR_H_

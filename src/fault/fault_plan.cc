#include "src/fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>

namespace hlrc {

namespace {

// Parses a comma-separated node-id list. Empty input yields an empty group.
bool ParseGroup(const std::string& s, std::vector<NodeId>* out, std::string* error) {
  out->clear();
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find(',', start);
    if (end == std::string::npos) {
      end = s.size();
    }
    const std::string tok = s.substr(start, end - start);
    char* rest = nullptr;
    const long v = std::strtol(tok.c_str(), &rest, 10);
    if (tok.empty() || rest == nullptr || *rest != '\0' || v < 0) {
      *error = "bad node id '" + tok + "'";
      return false;
    }
    out->push_back(static_cast<NodeId>(v));
    start = end + 1;
  }
  return true;
}

bool ParseMillis(const std::string& s, SimTime* out, std::string* error) {
  char* rest = nullptr;
  const double ms = std::strtod(s.c_str(), &rest);
  if (s.empty() || rest == nullptr || *rest != '\0' || ms < 0) {
    *error = "bad time '" + s + "' (expected milliseconds)";
    return false;
  }
  *out = static_cast<SimTime>(ms * 1e6);
  return true;
}

}  // namespace

bool ParsePartitionSpec(const std::string& spec, PartitionWindow* out, std::string* error) {
  std::string err;
  if (error == nullptr) {
    error = &err;
  }
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    *error = "missing '@' in partition spec (want a-b@t0..t1)";
    return false;
  }
  const std::string groups = spec.substr(0, at);
  const std::string times = spec.substr(at + 1);

  const size_t dash = groups.find('-');
  if (dash == std::string::npos) {
    *error = "missing '-' between node groups";
    return false;
  }
  PartitionWindow w;
  if (!ParseGroup(groups.substr(0, dash), &w.group_a, error) ||
      !ParseGroup(groups.substr(dash + 1), &w.group_b, error)) {
    return false;
  }
  if (w.group_a.empty()) {
    *error = "group_a must not be empty";
    return false;
  }

  const size_t dots = times.find("..");
  if (dots == std::string::npos) {
    *error = "missing '..' between start and end times";
    return false;
  }
  if (!ParseMillis(times.substr(0, dots), &w.start, error) ||
      !ParseMillis(times.substr(dots + 2), &w.end, error)) {
    return false;
  }
  if (w.start > w.end) {
    *error = "partition window ends before it starts";
    return false;
  }
  *out = w;
  return true;
}

std::string FaultPlanSummary(const FaultPlan& plan) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "drop=%.4g corrupt=%.4g dup=%.4g delay=%.4g partitions=%zu slowdowns=%zu "
                "seed=%llu",
                plan.drop_prob, plan.corrupt_prob, plan.dup_prob, plan.delay_prob,
                plan.partitions.size(), plan.slowdowns.size(),
                static_cast<unsigned long long>(plan.seed));
  return buf;
}

}  // namespace hlrc

#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/common/check.h"

namespace hlrc {

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {
  HLRC_CHECK(plan_.drop_prob >= 0 && plan_.drop_prob <= 1);
  HLRC_CHECK(plan_.corrupt_prob >= 0 && plan_.corrupt_prob <= 1);
  HLRC_CHECK(plan_.dup_prob >= 0 && plan_.dup_prob <= 1);
  HLRC_CHECK(plan_.delay_prob >= 0 && plan_.delay_prob <= 1);
  HLRC_CHECK(plan_.delay_min >= 0 && plan_.delay_min <= plan_.delay_max);
  for (const PartitionWindow& w : plan_.partitions) {
    HLRC_CHECK_MSG(!w.group_a.empty(), "partition window needs a non-empty group_a");
    HLRC_CHECK(w.start <= w.end);
  }
  for (const SlowdownWindow& w : plan_.slowdowns) {
    HLRC_CHECK(w.node != kInvalidNode && w.start <= w.end && w.extra_delay >= 0);
  }
  if (plan_.only_types.empty()) {
    type_enabled_.fill(true);
  } else {
    type_enabled_.fill(false);
    for (MsgType t : plan_.only_types) {
      type_enabled_[static_cast<size_t>(t)] = true;
    }
  }
}

bool FaultInjector::TypeEnabled(MsgType type) const {
  return type_enabled_[static_cast<size_t>(type)];
}

bool FaultInjector::PairEnabled(NodeId src, NodeId dst) const {
  return (plan_.only_src == kInvalidNode || plan_.only_src == src) &&
         (plan_.only_dst == kInvalidNode || plan_.only_dst == dst);
}

namespace {

bool Contains(const std::vector<NodeId>& group, NodeId n) {
  return std::find(group.begin(), group.end(), n) != group.end();
}

}  // namespace

bool FaultInjector::Partitioned(NodeId src, NodeId dst, SimTime now) const {
  for (const PartitionWindow& w : plan_.partitions) {
    if (now < w.start || now >= w.end) {
      continue;
    }
    const bool src_a = Contains(w.group_a, src);
    const bool dst_a = Contains(w.group_a, dst);
    if (w.group_b.empty()) {
      // Clean split: group_a vs everyone else.
      if (src_a != dst_a) {
        return true;
      }
      continue;
    }
    const bool src_b = Contains(w.group_b, src);
    const bool dst_b = Contains(w.group_b, dst);
    if ((src_a && dst_b) || (src_b && dst_a)) {
      return true;
    }
  }
  return false;
}

SimTime FaultInjector::SlowdownDelay(NodeId src, NodeId dst, SimTime now) const {
  SimTime extra = 0;
  for (const SlowdownWindow& w : plan_.slowdowns) {
    if (now >= w.start && now < w.end && (w.node == src || w.node == dst)) {
      extra += w.extra_delay;
    }
  }
  return extra;
}

FaultDecision FaultInjector::OnTransmit(NodeId src, NodeId dst, MsgType type, SimTime now,
                                        bool /*retransmit*/) {
  FaultDecision d;

  // Scheduled faults first: deterministic, no randomness consumed.
  if (Partitioned(src, dst, now)) {
    d.drop = true;
    ++counters_.partition_dropped;
    ++counters_.dropped;
    return d;
  }
  d.extra_delay = SlowdownDelay(src, dst, now);
  if (d.extra_delay > 0) {
    ++counters_.slowdown_delayed;
  }

  // Loopback frames never enter the fabric; probabilistic faults skip them.
  if (src == dst || !PairEnabled(src, dst) || !TypeEnabled(type)) {
    return d;
  }

  // One draw per stage, always all four, so the random stream stays aligned
  // across plan variations (e.g. raising drop_prob does not reshuffle which
  // frames get duplicated).
  const double u_drop = rng_.NextDouble();
  const double u_corrupt = rng_.NextDouble();
  const double u_dup = rng_.NextDouble();
  const double u_delay = rng_.NextDouble();

  if (u_drop < plan_.drop_prob) {
    d.drop = true;
    ++counters_.dropped;
    return d;
  }
  if (u_corrupt < plan_.corrupt_prob) {
    d.corrupt = true;
    ++counters_.corrupted;
    return d;
  }
  if (u_dup < plan_.dup_prob) {
    d.duplicate = true;
    ++counters_.duplicated;
  }
  if (u_delay < plan_.delay_prob) {
    const uint64_t span = static_cast<uint64_t>(plan_.delay_max - plan_.delay_min) + 1;
    d.extra_delay += plan_.delay_min + static_cast<SimTime>(rng_.NextBounded(span));
    ++counters_.delayed;
  }
  return d;
}

}  // namespace hlrc

// Calibrated costs of the basic SVM operations (paper Table 3).
//
// The paper's Table 3 OCR is partially garbled, but the derived quantities in
// §4.3 pin the values down (see DESIGN.md §6): a non-overlapped page miss is
// 29 (fault) + 50 (request) + 690 (receive interrupt) + 353 (8 KB page
// transfer) + 50 (reply) = 1172 us, and overlapping removes exactly the
// interrupt (482 us). Per-byte rates below reproduce those sums at the
// default 8 KB page and scale with the configured page size.
#ifndef SRC_PROTO_COST_MODEL_H_
#define SRC_PROTO_COST_MODEL_H_

#include "src/common/types.h"

namespace hlrc {

struct CostModel {
  // Cost of taking a receive interrupt on the compute processor. This is the
  // dominant protocol cost on the Paragon and the main thing overlapping
  // removes.
  SimTime receive_interrupt = Micros(690);

  // Page fault entry (exception dispatch into the SVM handler).
  SimTime page_fault = Micros(29);
  // Changing a page's protection.
  SimTime page_protect = Micros(5);
  // Invalidating a page mapping.
  SimTime page_invalidate = Micros(2);

  // Twin creation: copy of one clean page. 120 us per 8 KB page.
  SimTime twin_per_byte = Nanos(15);

  // Diff creation = scan of the whole page + emission of dirty words.
  // 120 us floor and up to ~310 us for a fully dirty 8 KB page.
  SimTime diff_scan_per_byte = Nanos(15);
  SimTime diff_emit_per_byte = Nanos(23);

  // Diff application, proportional to diff payload: up to ~430 us / 8 KB.
  SimTime diff_apply_per_byte = Nanos(52);
  SimTime diff_apply_fixed = Micros(2);

  // Fixed dispatch cost of servicing one remote request on whichever
  // processor handles it.
  SimTime service_fixed = Micros(5);

  // Lock manager / holder bookkeeping per lock message.
  SimTime lock_handling = Micros(10);

  // Barrier manager bookkeeping per arriving/leaving node.
  SimTime barrier_handling = Micros(10);

  // Packing / applying one write notice (plus page_invalidate per page
  // actually invalidated on apply).
  SimTime wn_pack = Nanos(500);
  SimTime wn_apply = Nanos(500);

  // Garbage collection bookkeeping (homeless protocols only).
  SimTime gc_fixed = Micros(100);
  SimTime gc_per_page = Micros(3);

  // Application compute calibration: i860 @ 50 MHz sustained a few MFLOPS on
  // these codes; 100 ns/flop reproduces sequential times in the paper's
  // ballpark at paper-scale problem sizes.
  SimTime ns_per_flop = Nanos(100);

  SimTime TwinCost(int64_t page_bytes) const { return page_bytes * twin_per_byte; }

  SimTime DiffCreateCost(int64_t page_bytes, int64_t dirty_bytes) const {
    return page_bytes * diff_scan_per_byte + dirty_bytes * diff_emit_per_byte;
  }

  SimTime DiffApplyCost(int64_t diff_payload_bytes) const {
    return diff_apply_fixed + diff_payload_bytes * diff_apply_per_byte;
  }

  SimTime FlopCost(int64_t flops) const { return flops * ns_per_flop; }
};

}  // namespace hlrc

#endif  // SRC_PROTO_COST_MODEL_H_

// Homeless lazy release consistency (the paper's LRC baseline and its
// overlapped variant OLRC).
//
// Diffs stay distributed at their writers. A page fault collects the diffs
// named by the page's pending write notices from every writer and applies
// them locally in happens-before order. Protocol data (diffs, write notices)
// accumulates until a barrier-time garbage collection validates each page at
// its last writer and discards everything (paper §3.5).
//
// OLRC (overlapped()) moves diff creation and diff/page fetch servicing to
// the communication co-processor; twin creation, diff application and lock
// handling stay on the compute processor (paper §2.4.1).
#ifndef SRC_PROTO_LRC_H_
#define SRC_PROTO_LRC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/proto/protocol.h"

namespace hlrc {

class LrcProtocol : public ProtocolNode {
 public:
  explicit LrcProtocol(const Env& env) : ProtocolNode(env) {}

  // Test/bench introspection.
  int64_t stored_diff_bytes() const { return diff_store_bytes_; }
  int64_t pending_notice_count() const { return pending_count_; }

 protected:
  void OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) override;
  bool OnWriteNotice(const IntervalRecord& rec, PageId page) override;
  Task<void> ResolveFault(PageId page, bool write) override;
  void HandleProtocolMessage(Message msg) override;
  int64_t SubclassMemoryBytes() const override;
  Task<void> BarrierPreRelease(BarrierId barrier, bool mem_pressure) override;
  void OnBarrierReleased() override;

 private:
  struct StoredDiff {
    Diff diff;
    VectorClock vt;  // Writer's vt at the interval that produced the diff.
    bool ready = true;
    // Lazy diff policy: the creation cost is deferred to the first request.
    bool cost_charged = true;
    SimTime create_cost = 0;
    int64_t bytes = 0;
  };
  using DiffKey = std::pair<PageId, uint32_t>;

  struct PendingWn {
    NodeId writer;
    uint32_t id;
    VectorClock vt;
  };

  // In-flight fault resolution for one page.
  struct FaultCtx {
    int replies_needed = 0;
    // (vt, interval id, writer, diff) collected from replies.
    std::vector<std::tuple<VectorClock, uint32_t, NodeId, Diff>> collected;
    std::vector<std::byte> page_data;
    std::vector<std::pair<NodeId, uint32_t>> page_covered;
    std::unique_ptr<Completion> done;
  };

  bool HasPending(PageId page) const;
  Task<void> FetchDiffs(PageId page);
  Task<void> FetchFullPage(PageId page);
  void InstallPageData(PageId page, const std::vector<std::byte>& data);

  uint32_t GetCovered(PageId page, NodeId writer) const;
  void SetCovered(PageId page, NodeId writer, uint32_t id);
  void PrunePendingCovered(PageId page);

  void MarkDiffReady(PageId page, uint32_t id);
  void TrySendDiffReply(PageId page, NodeId requester, const std::vector<uint32_t>& ids);
  void ServePageRequest(PageId page, NodeId requester);

  // Garbage collection.
  void HandleGcRequest();
  void HandleGcInfo(NodeId node,
                    std::vector<std::tuple<PageId, uint32_t, VectorClock>> entries);
  void ApplyGcValidate(const std::vector<std::pair<PageId, NodeId>>& validators,
                       const IntervalBatch& intervals);
  Task<void> ValidateForGc(std::vector<PageId> pages);
  void HandleGcDone();

  std::map<DiffKey, StoredDiff> diff_store_;
  int64_t diff_store_bytes_ = 0;

  // Flat per-page GC inventory index: page -> highest interval id with a
  // stored diff. Maintained incrementally at diff creation so HandleGcRequest
  // reads it off instead of rebuilding a std::map from the whole diff store
  // every GC round. Cleared with diff_store_. Host-side bookkeeping only: not
  // part of the simulated memory model (SubclassMemoryBytes).
  std::unordered_map<PageId, uint32_t> latest_diff_id_;

  // Reusable per-writer buckets for FetchDiffs grouping (replaces a fresh
  // std::map<NodeId, vector> per fault). writer_scratch_ lists the writers
  // with a non-empty bucket; both are drained before any suspension point.
  std::vector<std::vector<uint32_t>> writer_bucket_;
  std::vector<NodeId> writer_scratch_;

  std::unordered_map<PageId, std::vector<PendingWn>> pending_;
  int64_t pending_count_ = 0;

  // Per page: highest interval id of each writer reflected in the local copy.
  std::unordered_map<PageId, std::vector<uint32_t>> covered_;

  // Where to fetch a full page after GC dropped the local copy.
  std::unordered_map<PageId, NodeId> owner_hint_;

  std::unordered_map<PageId, FaultCtx> faults_;
  std::map<DiffKey, std::vector<std::function<void()>>> diff_ready_waiters_;

  // GC state (node side): page -> validator assignments of the current GC.
  std::map<PageId, NodeId> gc_map_;

  // TestMutation::kLrcSkipInvalidate fires once per run.
  bool mutation_fired_ = false;

  // GC state (manager side).
  struct GcCoord {
    int infos_pending = 0;
    int dones_pending = 0;
    std::map<PageId, std::pair<VectorClock, NodeId>> best;  // Last writer per page.
    std::unique_ptr<Completion> infos_done;
    std::unique_ptr<Completion> dones_done;
  };
  std::unique_ptr<GcCoord> gc_coord_;
};

// Payloads.

struct DiffRequestPayload : Payload {
  PageId page;
  NodeId requester;
  std::vector<uint32_t> intervals;
};

struct DiffReplyPayload : Payload {
  PageId page;
  NodeId writer;
  std::vector<std::pair<uint32_t, Diff>> diffs;
};

struct HomelessPageRequestPayload : Payload {
  PageId page;
  NodeId requester;
};

struct HomelessPageReplyPayload : Payload {
  PageId page;
  std::vector<std::byte> data;
  std::vector<std::pair<NodeId, uint32_t>> covered;
};

struct GcRequestPayload : Payload {};

struct GcInfoPayload : Payload {
  NodeId node;
  std::vector<std::tuple<PageId, uint32_t, VectorClock>> entries;
};

struct GcValidatePayload : Payload {
  std::vector<std::pair<PageId, NodeId>> validators;
  // The write notices this node's barrier release will carry, delivered
  // early: a validator must know every pre-barrier interval of its pages
  // before validating, or it would discover new diffs only after they have
  // been collected. Shared handles, like the release payload itself.
  IntervalBatch intervals;
};

struct GcDonePayload : Payload {
  NodeId node;
};

}  // namespace hlrc

#endif  // SRC_PROTO_LRC_H_

// Interval records and write notices.
//
// An interval groups all writes one node performed between two of its
// synchronization events. Its record carries one write notice per dirty page.
// Homeless protocols ship the writer's full vector timestamp with each
// interval (needed to order diff application), which is why their protocol
// traffic and memory grow with the node count; home-based protocols only need
// (writer, interval id, pages).
#ifndef SRC_PROTO_INTERVAL_H_
#define SRC_PROTO_INTERVAL_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/proto/vector_clock.h"

namespace hlrc {

struct IntervalRecord {
  NodeId writer = kInvalidNode;
  uint32_t id = 0;  // The writer's interval index (its own VT component).
  // Writer's vector timestamp when the interval was closed (vt.Get(writer)
  // == id). Homeless protocols need it to order diffs; home-based protocols
  // carry and store it too for bookkeeping but do not ship it on the wire
  // (see EncodedSize).
  VectorClock vt;
  std::vector<PageId> pages;

  // Wire/storage footprint of the interval's write notices.
  int64_t EncodedSize(bool with_vt) const {
    int64_t size = 8 + static_cast<int64_t>(pages.size()) * 4;
    if (with_vt) {
      size += vt.EncodedSize();
    }
    return size;
  }
};

// Key identifying one interval of one writer.
struct IntervalKey {
  NodeId writer;
  uint32_t id;

  bool operator==(const IntervalKey& o) const { return writer == o.writer && id == o.id; }
  bool operator<(const IntervalKey& o) const {
    if (writer != o.writer) {
      return writer < o.writer;
    }
    return id < o.id;
  }
};

struct IntervalKeyHash {
  size_t operator()(const IntervalKey& k) const {
    return static_cast<size_t>(k.writer) * 1000003u + k.id;
  }
};

}  // namespace hlrc

#endif  // SRC_PROTO_INTERVAL_H_

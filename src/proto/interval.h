// Interval records and write notices.
//
// An interval groups all writes one node performed between two of its
// synchronization events. Its record carries one write notice per dirty page.
// Homeless protocols ship the writer's full vector timestamp with each
// interval (needed to order diff application), which is why their protocol
// traffic and memory grow with the node count; home-based protocols only need
// (writer, interval id, pages).
#ifndef SRC_PROTO_INTERVAL_H_
#define SRC_PROTO_INTERVAL_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/mem/small_vec.h"
#include "src/proto/vector_clock.h"

namespace hlrc {

// Write-notice page list. Most intervals touch a handful of pages (one lock-
// protected update, one band row), so eight inline slots cover the common
// case without a heap allocation per record.
using PageList = SmallVec<PageId, 8>;

struct IntervalRecord {
  NodeId writer = kInvalidNode;
  uint32_t id = 0;  // The writer's interval index (its own VT component).
  // Writer's vector timestamp when the interval was closed (vt.Get(writer)
  // == id). Homeless protocols need it to order diffs; home-based protocols
  // carry and store it too for bookkeeping but do not ship it on the wire
  // (see EncodedSize).
  VectorClock vt;
  PageList pages;

  // Wire/storage footprint of the interval's write notices. Records under
  // construction compute it on the fly; sealed (published) records answer
  // from the cache.
  int64_t EncodedSize(bool with_vt) const {
    const int64_t cached = with_vt ? cached_size_with_vt : cached_size_without_vt;
    return cached >= 0 ? cached : ComputeEncodedSize(with_vt);
  }

  int64_t ComputeEncodedSize(bool with_vt) const {
    int64_t size = 8 + static_cast<int64_t>(pages.size()) * 4;
    if (with_vt) {
      size += vt.EncodedSize();
    }
    return size;
  }

  // Caches both encoded sizes. Called once when the record is published into
  // an IntervalLog; published records are immutable (every handle aliases the
  // same object), so the cache can never go stale.
  void Seal() {
    cached_size_without_vt = ComputeEncodedSize(false);
    cached_size_with_vt = ComputeEncodedSize(true);
  }
  bool sealed() const { return cached_size_without_vt >= 0; }

  // -1 until Seal().
  int64_t cached_size_with_vt = -1;
  int64_t cached_size_without_vt = -1;
};

// Key identifying one interval of one writer.
struct IntervalKey {
  NodeId writer;
  uint32_t id;

  bool operator==(const IntervalKey& o) const { return writer == o.writer && id == o.id; }
  bool operator<(const IntervalKey& o) const {
    if (writer != o.writer) {
      return writer < o.writer;
    }
    return id < o.id;
  }
};

struct IntervalKeyHash {
  size_t operator()(const IntervalKey& k) const {
    return static_cast<size_t>(k.writer) * 1000003u + k.id;
  }
};

}  // namespace hlrc

#endif  // SRC_PROTO_INTERVAL_H_

#include "src/proto/protocol.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace hlrc {

const char* ProtocolName(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kLrc:
      return "LRC";
    case ProtocolKind::kOlrc:
      return "OLRC";
    case ProtocolKind::kHlrc:
      return "HLRC";
    case ProtocolKind::kOhlrc:
      return "OHLRC";
    case ProtocolKind::kErc:
      return "ERC";
    case ProtocolKind::kAurc:
      return "AURC";
  }
  return "?";
}

const char* DiffPolicyName(DiffPolicy p) {
  switch (p) {
    case DiffPolicy::kEager:
      return "eager";
    case DiffPolicy::kLazy:
      return "lazy";
  }
  return "?";
}

const char* HomePolicyName(HomePolicy p) {
  switch (p) {
    case HomePolicy::kBlock:
      return "block";
    case HomePolicy::kRoundRobin:
      return "round-robin";
    case HomePolicy::kSingleNode:
      return "single-node";
  }
  return "?";
}

const char* TestMutationName(TestMutation m) {
  switch (m) {
    case TestMutation::kNone:
      return "none";
    case TestMutation::kHlrcSkipDiffApply:
      return "hlrc-skip-diff-apply";
    case TestMutation::kLrcSkipInvalidate:
      return "lrc-skip-invalidate";
  }
  return "?";
}

ProtocolNode::ProtocolNode(const Env& env)
    : vt_(env.nodes),
      interval_log_(env.nodes),
      env_(env),
      sent_to_manager_vt_(env.nodes),
      dirty_flag_(static_cast<size_t>(env.pages->num_pages()), false) {}

ProtocolNode::~ProtocolNode() = default;

// ---------------------------------------------------------------------------
// Wait accounting.

ProtocolNode::WaitScope::WaitScope(ProtocolNode* n, WaitCat c, WaitCat d)
    : node(n), cat(c), deduct(d), t0(n->engine()->Now()), busy0(n->env_.cpu->busy().Total()) {}

void ProtocolNode::WaitScope::Finish() {
  const SimTime span = node->engine()->Now() - t0;
  const SimTime busy = node->env_.cpu->busy().Total() - busy0;
  const SimTime wait = span - busy;
  if (wait > 0) {
    node->stats_.waits.Add(cat, wait);
    if (deduct != WaitCat::kNone) {
      node->stats_.waits.Add(deduct, -wait);
    }
  }
  if (node->metrics_ != nullptr) {
    // The histogram takes the full wall-clock span of the scope: that is the
    // per-operation latency the application observed, the distribution the
    // scalar waits[] averages cannot show.
    if (Histogram* h = node->metrics_->ForWait(cat)) {
      h->Record(span);
    }
  }
}

// ---------------------------------------------------------------------------
// Shared services.

Task<void> ProtocolNode::ChargeCpu(SimTime cost, BusyCat cat) {
  if (cost > 0) {
    co_await env_.cpu->ExecuteApp(cost, cat);
  }
}

void ProtocolNode::Serve(bool on_coproc, bool interrupt, SimTime cost, BusyCat cat,
                         std::function<void()> fn) {
  Processor* proc = on_coproc ? env_.cop : env_.cpu;
  if (interrupt) {
    HLRC_DCHECK(!on_coproc);  // The co-processor polls; it takes no interrupts.
    proc->RunService(costs().receive_interrupt, BusyCat::kInterrupt,
                     [proc, cost, cat, fn = std::move(fn)]() mutable {
                       proc->RunService(cost, cat, std::move(fn));
                     });
    return;
  }
  proc->RunService(cost, cat, std::move(fn));
}

void ProtocolNode::ServeDataRequest(SimTime cost, BusyCat cat, std::function<void()> fn) {
  if (overlapped()) {
    Serve(/*on_coproc=*/true, /*interrupt=*/false, cost, cat, std::move(fn));
  } else {
    Serve(/*on_coproc=*/false, /*interrupt=*/true, cost, cat, std::move(fn));
  }
}

void ProtocolNode::Send(NodeId dst, MsgType type, int64_t update_bytes, int64_t protocol_bytes,
                        std::unique_ptr<Payload> payload) {
  Message msg;
  msg.src = env_.self;
  msg.dst = dst;
  msg.type = type;
  msg.update_bytes = update_bytes;
  msg.protocol_bytes = protocol_bytes;
  msg.span = active_span_;  // Causal parent for span tracing (observation only).
  msg.payload = std::move(payload);
  env_.network->Send(std::move(msg));
}

NodeId ProtocolNode::HomeOf(PageId page) const {
  const int num_pages =
      used_pages_ > 0 ? std::max(used_pages_, page + 1) : env_.pages->num_pages();
  switch (env_.options->home_policy) {
    case HomePolicy::kBlock: {
      // Contiguous chunks *per allocation*: the k-th band of every array is
      // homed on node k — the paper's "homes chosen intelligently", matching
      // the applications' block partitioning.
      if (env_.space != nullptr) {
        const SharedSpace::Allocation* alloc = env_.space->AllocationOf(page);
        if (alloc != nullptr) {
          const int64_t span = alloc->last_page - alloc->first_page + 1;
          return static_cast<NodeId>(static_cast<int64_t>(page - alloc->first_page) *
                                     env_.nodes / span);
        }
      }
      return static_cast<NodeId>(static_cast<int64_t>(page) * env_.nodes / num_pages);
    }
    case HomePolicy::kRoundRobin:
      return static_cast<NodeId>(page % env_.nodes);
    case HomePolicy::kSingleNode:
      return 0;
  }
  return 0;
}

void ProtocolNode::NoteMemory() {
  if (known_interval_bytes_ > stats_.interval_meta_highwater) {
    stats_.interval_meta_highwater = known_interval_bytes_;
  }
  const int64_t mem = ProtocolMemoryBytes();
  if (mem > stats_.proto_mem_highwater) {
    stats_.proto_mem_highwater = mem;
  }
}

int64_t ProtocolNode::ProtocolMemoryBytes() const {
  return known_interval_bytes_ + env_.pages->TwinBytes() + SubclassMemoryBytes();
}

const IntervalRecord& ProtocolNode::KnownInterval(NodeId writer, uint32_t id) const {
  const IntervalRecord* rec = interval_log_.Find(writer, id);
  HLRC_CHECK_MSG(rec != nullptr, "node %d: unknown interval (%d, %u)", env_.self, writer, id);
  return *rec;
}

// ---------------------------------------------------------------------------
// Intervals and write notices.

void ProtocolNode::MarkDirty(PageId page) {
  if (!dirty_flag_[static_cast<size_t>(page)]) {
    dirty_flag_[static_cast<size_t>(page)] = true;
    open_dirty_.push_back(page);
    if (metrics_ != nullptr) {
      metrics_->heat->OnWrite(page, env_.self);
    }
  }
}

bool ProtocolNode::IsDirtyInOpenInterval(PageId page) const {
  return dirty_flag_[static_cast<size_t>(page)];
}

ProtocolNode::CloseActions ProtocolNode::CloseIntervalPrepared() {
  CloseActions actions;
  if (open_dirty_.empty()) {
    return actions;
  }

  IntervalRecord rec;
  rec.writer = env_.self;
  rec.id = vt_.Get(env_.self) + 1;
  rec.vt = vt_;
  rec.vt.Set(env_.self, rec.id);
  std::sort(open_dirty_.begin(), open_dirty_.end());
  rec.pages.assign(open_dirty_.begin(), open_dirty_.end());
  open_dirty_.clear();

  for (PageId p : rec.pages) {
    PageState& st = env_.pages->State(p);
    dirty_flag_[static_cast<size_t>(p)] = false;
    if (st.prot == PageProt::kReadWrite) {
      st.prot = PageProt::kRead;
      actions.protect_cost += costs().page_protect;
      Cover(CoverageObserver::Domain::kPageTransition,
            (static_cast<uint64_t>(PageProt::kReadWrite) << 8) |
                static_cast<uint64_t>(PageProt::kRead),
            2);  // Cause 2: interval-close reprotection.
    }
  }

  // The close span is the causal origin of the flush fan-out: subclasses
  // capture it (via interval_close_span()) into their deferred send lambdas.
  interval_close_span_ =
      SpanEmit(SpanKind::kIntervalClose, engine()->Now(), active_span_,
               static_cast<int64_t>(rec.id), static_cast<int64_t>(rec.pages.size()));

  OnIntervalClosed(&rec, &actions);

  if (!rec.pages.empty()) {
    Cover(CoverageObserver::Domain::kInterval,
          CoverageBucket(rec.pages.size()), 0);
    Trace(TraceEvent::kIntervalClose, rec.id, static_cast<int64_t>(rec.pages.size()));
    HLRC_TRACE("[%lld] node %d: close interval id=%u with %zu pages (first=%d)",
               (long long)engine()->Now(), env_.self, rec.id, rec.pages.size(), rec.pages[0]);
    vt_.Bump(env_.self);
    HLRC_CHECK(vt_.Get(env_.self) == rec.id);
    ++stats_.intervals_closed;
    // Publish: seal the record and hand it to the log as a shared immutable
    // handle. From here on, every packed payload and every receiver's log
    // alias this one object; nobody may mutate it.
    rec.Seal();
    IntervalPtr handle = std::make_shared<IntervalRecord>(std::move(rec));
    known_interval_bytes_ += IntervalBytes(*handle);
    interval_log_.Append(std::move(handle));
    NoteMemory();
  }
  return actions;
}

Task<void> ProtocolNode::CloseIntervalFromApp() {
  CloseActions actions = CloseIntervalPrepared();
  co_await ChargeCpu(actions.protect_cost, BusyCat::kFault);
  co_await ChargeCpu(actions.diff_cost, BusyCat::kDiffCreate);
  if (actions.post) {
    actions.post();
  }
  // Eager protocols: the synchronization operation may not proceed while any
  // update flush (from this close or an earlier one) is unacknowledged.
  Completion flushed(env_.engine);
  FlushBarrier([&flushed] { flushed.Complete(); });
  co_await flushed;
}

SimTime ProtocolNode::ApplyIntervals(const IntervalBatch& recs) {
  SimTime cost = 0;
  int64_t invalidated = 0;
  for (const IntervalPtr& handle : recs) {
    const IntervalRecord& rec = *handle;
    if (rec.id <= vt_.Get(rec.writer)) {
      HLRC_TRACE("[%lld] node %d: skip interval (w=%d id=%u) vt=%u",
                 (long long)engine()->Now(), env_.self, rec.writer, rec.id,
                 vt_.Get(rec.writer));
      continue;  // Already known.
    }
    vt_.Set(rec.writer, std::max(vt_.Get(rec.writer), rec.id));
    HLRC_TRACE("[%lld] node %d: apply interval (w=%d id=%u) %zu pages", (long long)engine()->Now(),
               env_.self, rec.writer, rec.id, rec.pages.size());
    stats_.write_notices_received += static_cast<int64_t>(rec.pages.size());
    cost += costs().wn_apply * static_cast<SimTime>(rec.pages.size());
    for (PageId p : rec.pages) {
      const PageProt before = env_.pages->State(p).prot;
      const bool did_invalidate = OnWriteNotice(rec, p);
      if (did_invalidate) {
        ++invalidated;
      }
      Cover(CoverageObserver::Domain::kPageTransition,
            (static_cast<uint64_t>(before) << 8) |
                static_cast<uint64_t>(env_.pages->State(p).prot),
            did_invalidate ? 1 : 0);  // Cause 1: invalidated, 0: kept.
    }
    known_interval_bytes_ += IntervalBytes(rec);
    interval_log_.Append(handle);  // Shared handle: no record copy.
  }
  cost += invalidated * costs().page_invalidate;
  stats_.pages_invalidated += invalidated;
  NoteMemory();
  return cost;
}

IntervalBatch ProtocolNode::PackIntervalsFor(const VectorClock& vt) const {
  return interval_log_.PackFor(vt);
}

// ---------------------------------------------------------------------------
// Page access.

Task<void> ProtocolNode::EnsureAccessSpans(std::vector<PageSpan> spans) {
  // Keep scanning until one full pass needs no fault. Rescanning matters:
  // while a fault on a later page is being resolved (the coroutine is
  // suspended), a remote lock request can close the current interval, which
  // re-write-protects pages this grant already upgraded. The final fault-free
  // pass runs synchronously with the caller's resumption, so the grant is
  // stable until the application's next suspension point.
  while (true) {
    PageId fault_page = kInvalidPage;
    bool fault_write = false;
    bool fault_invalid = false;
    for (const PageSpan& span : spans) {
      HLRC_CHECK(span.first >= 0 && span.last < env_.pages->num_pages() &&
                 span.first <= span.last);
      for (PageId p = span.first; p <= span.last; ++p) {
        const PageState& st = env_.pages->State(p);
        const bool invalid = st.prot == PageProt::kNone;
        const bool needs_write_upgrade = span.write && st.prot != PageProt::kReadWrite;
        if (invalid || needs_write_upgrade) {
          fault_page = p;
          fault_write = span.write;
          fault_invalid = invalid;
          break;
        }
      }
      if (fault_page != kInvalidPage) {
        break;
      }
    }
    if (fault_page == kInvalidPage) {
      co_return;
    }

    WaitScope ws(this, WaitCat::kData);
    const SpanId fault_span =
        SpanBegin(SpanKind::kFault, fault_page, fault_write ? 1 : 0);
    SpanVt(fault_span);
    cur_fault_span_ = fault_span;
    Trace(TraceEvent::kFault, fault_page, fault_write ? 1 : 0);
    co_await ChargeCpu(costs().page_fault, BusyCat::kFault);
    if (fault_invalid) {
      ++stats_.read_misses;
    }
    if (fault_write) {
      ++stats_.write_faults;
    }
    if (metrics_ != nullptr) {
      metrics_->heat->OnFault(fault_page, fault_write);
      ++*metrics_->outstanding_fetches;
    }
    const PageProt prot_before = env_.pages->State(fault_page).prot;
    co_await ResolveFault(fault_page, fault_write);
    if (metrics_ != nullptr) {
      --*metrics_->outstanding_fetches;
    }
    Cover(CoverageObserver::Domain::kPageTransition,
          (static_cast<uint64_t>(prot_before) << 8) |
              static_cast<uint64_t>(env_.pages->State(fault_page).prot),
          fault_write ? 4 : 3);  // Cause 3: read fault, 4: write fault.
    HLRC_DCHECK(env_.pages->State(fault_page).prot != PageProt::kNone);
    cur_fault_span_ = kNoSpan;
    SpanEnd(fault_span);
    ws.Finish();
  }
}

Task<void> ProtocolNode::EnsureAccess(PageId first, PageId last, bool write) {
  return EnsureAccessSpans({PageSpan{first, last, write}});
}

// ---------------------------------------------------------------------------
// Locks.

ProtocolNode::LockState& ProtocolNode::Lock(LockId lock) {
  auto it = locks_.find(lock);
  if (it == locks_.end()) {
    LockState ls;
    ls.held = (env_.self == LockManagerNode(lock));
    it = locks_.emplace(lock, std::move(ls)).first;
  }
  return it->second;
}

ProtocolNode::LockManagerState& ProtocolNode::ManagerState(LockId lock) {
  auto it = lock_managers_.find(lock);
  if (it == lock_managers_.end()) {
    LockManagerState ms;
    ms.last_requester = env_.self;  // Token starts at the manager.
    it = lock_managers_.emplace(lock, ms).first;
  }
  return it->second;
}

Task<void> ProtocolNode::Acquire(LockId lock) {
  ++stats_.lock_acquires;
  LockState& ls = Lock(lock);
  HLRC_CHECK_MSG(!ls.in_use, "node %d: recursive acquire of lock %d", env_.self, lock);
  if (ls.held) {
    HLRC_TRACE("[%lld] node %d: local reacquire lock %d", (long long)engine()->Now(),
               env_.self, lock);
    ls.in_use = true;
    co_return;  // Local reacquire: no interval end, no messages.
  }

  ++stats_.remote_acquires;
  Trace(TraceEvent::kLockRequest, lock);
  HLRC_TRACE("[%lld] node %d: remote acquire lock %d", (long long)engine()->Now(), env_.self,
             lock);
  // A remote acquire delimits the current interval (paper §2.1 case (i)).
  co_await CloseIntervalFromApp();

  WaitScope ws(this, WaitCat::kLock);
  const SpanId lock_span = SpanBegin(SpanKind::kLock, lock);
  SpanVt(lock_span);
  ls.waiting = std::make_unique<Completion>(env_.engine);

  {
    SpanCause sc(this, lock_span);
    const NodeId manager = LockManagerNode(lock);
    if (manager == env_.self) {
      HandleLockRequest(lock, env_.self, vt_);
    } else {
      auto payload = std::make_unique<LockRequestPayload>();
      payload->lock = lock;
      payload->requester = env_.self;
      payload->vt = vt_;
      Send(manager, MsgType::kLockRequest, 0, 8 + vt_.EncodedSize(), std::move(payload));
    }
  }

  co_await *ls.waiting;
  Trace(TraceEvent::kLockAcquired, lock);
  // `ls` may dangle after suspension (other locks can rehash the map).
  LockState& ls2 = Lock(lock);
  ls2.waiting.reset();
  ls2.held = true;
  ls2.in_use = true;
  SpanEnd(lock_span);
  // The critical section itself: a later requester's wait that overlaps it is
  // attributed to compute (the holder was legitimately working).
  ls2.hold_span = SpanBegin(SpanKind::kLockHold, lock);
  SpanLink(ls2.hold_span, lock_span);
  ws.Finish();
}

Task<void> ProtocolNode::Release(LockId lock) {
  LockState& ls = Lock(lock);
  HLRC_CHECK_MSG(ls.in_use, "node %d: release of lock %d not held", env_.self, lock);
  ls.in_use = false;
  if (ls.pending_requester != kInvalidNode) {
    const NodeId requester = ls.pending_requester;
    VectorClock rvt = std::move(ls.pending_vt);
    const SpanId pending_span = ls.pending_span;
    ls.pending_requester = kInvalidNode;
    ls.pending_span = kNoSpan;
    GrantLock(lock, requester, rvt, pending_span);
  }
  co_return;
}

void ProtocolNode::HandleLockRequest(LockId lock, NodeId requester, const VectorClock& rvt) {
  LockManagerState& ms = ManagerState(lock);
  const NodeId last = ms.last_requester;
  HLRC_CHECK(last != requester);
  ms.last_requester = requester;
  if (last == env_.self) {
    HandleLockForward(lock, requester, rvt);
    return;
  }
  auto payload = std::make_unique<LockForwardPayload>();
  payload->lock = lock;
  payload->requester = requester;
  payload->vt = rvt;
  Send(last, MsgType::kLockForward, 0, 8 + rvt.EncodedSize(), std::move(payload));
}

void ProtocolNode::HandleLockForward(LockId lock, NodeId requester, const VectorClock& rvt) {
  LockState& ls = Lock(lock);
  if (ls.held && !ls.in_use) {
    // Idle holder: receiving the remote request delimits the interval
    // (paper §2.1 case (ii)) and we grant immediately.
    GrantLock(lock, requester, rvt, active_span_);
    return;
  }
  // Either the app is inside the critical section or we are ourselves still
  // waiting for the token; the grant happens at release time.
  HLRC_CHECK_MSG(ls.pending_requester == kInvalidNode,
                 "node %d: two pending requesters for lock %d", env_.self, lock);
  ls.pending_requester = requester;
  ls.pending_vt = rvt;
  ls.pending_span = active_span_;  // Re-established as the grant's cause at release.
}

void ProtocolNode::GrantLock(LockId lock, NodeId requester, const VectorClock& rvt,
                             SpanId cause) {
  Trace(TraceEvent::kLockGrant, lock, requester);
  HLRC_TRACE("[%lld] node %d: grant lock %d -> node %d", (long long)engine()->Now(), env_.self,
             lock, requester);
  LockState& ls = Lock(lock);
  HLRC_CHECK(ls.held && !ls.in_use);
  ls.held = false;

  // The critical section ends here. Linking the hold span from the parked
  // requester's context makes it a causal descendant of the requester's
  // acquire root, so the overlap is attributed to compute.
  SpanEnd(ls.hold_span);
  SpanLink(ls.hold_span, cause);
  ls.hold_span = kNoSpan;

  CloseActions actions = CloseIntervalPrepared();

  auto send_grant = [this, lock, requester, rvt, cause] {
    IntervalBatch recs = PackIntervalsFor(rvt);
    const SimTime pack_cost =
        costs().lock_handling + costs().wn_pack * static_cast<SimTime>(recs.size());
    const SimTime t_dispatch = engine()->Now();
    env_.cpu->RunService(
        pack_cost, BusyCat::kWriteNotice,
        [this, lock, requester, cause, t_dispatch, recs = std::move(recs)]() mutable {
          int64_t bytes = 16;
          for (const IntervalPtr& rec : recs) {
            bytes += IntervalBytes(*rec);
          }
          auto payload = std::make_unique<LockGrantPayload>();
          payload->lock = lock;
          payload->intervals = std::move(recs);
          const SpanId grant_span =
              SpanEmit(SpanKind::kService, t_dispatch, cause, lock);
          SpanCause sc(this, grant_span);
          Send(requester, MsgType::kLockGrant, 0, bytes, std::move(payload));
        });
  };

  if (actions.TotalCpu() > 0 || actions.post) {
    env_.cpu->RunService(
        actions.protect_cost, BusyCat::kFault,
        [this, diff_cost = actions.diff_cost, post = std::move(actions.post), send_grant] {
          env_.cpu->RunService(diff_cost, BusyCat::kDiffCreate, [this, post, send_grant] {
            if (post) {
              post();
            }
            // The grant is the happens-before edge: it may not leave while
            // eager flushes are outstanding.
            FlushBarrier(send_grant);
          });
        });
  } else {
    FlushBarrier(send_grant);
  }
}

void ProtocolNode::HandleLockGrant(LockId lock, IntervalBatch intervals) {
  HLRC_TRACE("[%lld] node %d: received grant for lock %d", (long long)engine()->Now(),
             env_.self, lock);
  Cover(CoverageObserver::Domain::kSyncEpoch, 0,
        CoverageBucket(intervals.size()));  // Sync kind 0: lock grant.
  const SimTime cost = ApplyIntervals(intervals);
  const SpanId cause = active_span_;
  const SimTime t0 = engine()->Now();
  env_.cpu->RunService(cost, BusyCat::kWriteNotice, [this, lock, cause, t0] {
    SpanEmit(SpanKind::kWnApply, t0, cause, lock);
    LockState& ls = Lock(lock);
    HLRC_CHECK(ls.waiting != nullptr);
    ls.waiting->Complete();
  });
}

// ---------------------------------------------------------------------------
// Barriers.

Task<void> ProtocolNode::Barrier(BarrierId barrier) {
  ++stats_.barriers;
  Trace(TraceEvent::kBarrierEnter, barrier);
  co_await CloseIntervalFromApp();

  WaitScope ws(this, WaitCat::kBarrier);
  const SpanId bar_span = SpanBegin(SpanKind::kBarrier, barrier);
  SpanVt(bar_span);
  HLRC_CHECK(barrier_waiting_ == nullptr);
  barrier_waiting_ = std::make_unique<Completion>(env_.engine);

  // In tree mode the pack happens once per subtree at forward-up time (own
  // and child records together), so the app-side pack is skipped here.
  IntervalBatch recs;
  if (!TreeBarrier()) {
    recs = PackIntervalsFor(sent_to_manager_vt_);
    co_await ChargeCpu(costs().wn_pack * static_cast<SimTime>(recs.size()),
                       BusyCat::kWriteNotice);
  }
  const bool pressure =
      !home_based() && ProtocolMemoryBytes() > env_.options->gc_threshold_bytes;

  {
    SpanCause sc(this, bar_span);
    if (TreeBarrier()) {
      std::vector<BarrierArrival> self_arrival(1);
      self_arrival[0].node = env_.self;
      self_arrival[0].vt = vt_;
      TreeBarrierAccumulate(barrier, std::move(self_arrival), {}, pressure);
    } else if (env_.self == kBarrierManager) {
      HandleBarrierEnter(barrier, env_.self, vt_, std::move(recs), pressure);
    } else {
      int64_t bytes = 16 + vt_.EncodedSize();
      for (const IntervalPtr& rec : recs) {
        bytes += IntervalBytes(*rec);
      }
      auto payload = std::make_unique<BarrierEnterPayload>();
      payload->barrier = barrier;
      payload->node = env_.self;
      payload->vt = vt_;
      payload->intervals = std::move(recs);
      payload->mem_pressure = pressure;
      Send(kBarrierManager, MsgType::kBarrierEnter, 0, bytes, std::move(payload));
    }
  }

  co_await *barrier_waiting_;
  barrier_waiting_.reset();
  Trace(TraceEvent::kBarrierExit, barrier);
  SpanEnd(bar_span);
  ws.Finish();
}

void ProtocolNode::HandleBarrierEnter(BarrierId barrier, NodeId node, const VectorClock& nvt,
                                      IntervalBatch intervals, bool mem_pressure) {
  BarrierManagerState& bm = barrier_mgr_[barrier];
  if (bm.arrival_vt.empty()) {
    bm.arrival_vt.assign(static_cast<size_t>(env_.nodes), VectorClock(env_.nodes));
    bm.present.assign(static_cast<size_t>(env_.nodes), false);
  }
  HLRC_CHECK(!bm.present[static_cast<size_t>(node)]);
  bm.present[static_cast<size_t>(node)] = true;
  bm.arrival_vt[static_cast<size_t>(node)] = nvt;
  bm.mem_pressure = bm.mem_pressure || mem_pressure;
  ++bm.arrived;

  if (bm.gather_span == kNoSpan) {
    bm.gather_span = SpanBegin(SpanKind::kBarrierGather, barrier);
  }
  // Every arrival (the manager's own included) is a causal input to the
  // gather: a straggler's wait overlapping it counts as compute.
  SpanLink(bm.gather_span, active_span_);

  const SimTime cost = costs().barrier_handling + ApplyIntervals(intervals);
  // Merge in case the arriving vt is ahead in components we have no records
  // for (cannot happen today, but keeps the invariant explicit).
  vt_.MergeWith(nvt);

  env_.cpu->RunService(cost, BusyCat::kWriteNotice, [this, barrier] {
    auto it = barrier_mgr_.find(barrier);
    if (it != barrier_mgr_.end() && it->second.arrived == env_.nodes && !it->second.launched) {
      it->second.launched = true;
      BarrierAllArrived(barrier);
    }
  });
}

int ProtocolNode::TreeSubtreeSize(NodeId n) const {
  int size = 1;
  const NodeId first = TreeFirstChild(n);
  for (NodeId c = first;
       c < first + env_.options->barrier_arity && c < env_.nodes; ++c) {
    size += TreeSubtreeSize(c);
  }
  return size;
}

void ProtocolNode::TreeBarrierAccumulate(BarrierId barrier,
                                         std::vector<BarrierArrival> arrivals,
                                         IntervalBatch intervals, bool mem_pressure) {
  BarrierTreeState& ts = barrier_tree_[barrier];
  if (ts.gather_span == kNoSpan) {
    ts.gather_span = SpanBegin(SpanKind::kBarrierGather, barrier);
  }
  // Every arrival batch (own or a child subtree's) is a causal input to this
  // node's slice of the gather.
  SpanLink(ts.gather_span, active_span_);
  ts.mem_pressure = ts.mem_pressure || mem_pressure;
  const SimTime cost = costs().barrier_handling + ApplyIntervals(intervals);
  for (BarrierArrival& a : arrivals) {
    vt_.MergeWith(a.vt);
    ts.arrivals.push_back(std::move(a));
  }
  env_.cpu->RunService(cost, BusyCat::kWriteNotice,
                       [this, barrier] { TreeMaybeForwardUp(barrier); });
}

void ProtocolNode::TreeMaybeForwardUp(BarrierId barrier) {
  auto it = barrier_tree_.find(barrier);
  if (it == barrier_tree_.end()) {
    return;
  }
  BarrierTreeState& ts = it->second;
  if (ts.launched ||
      static_cast<int>(ts.arrivals.size()) < TreeSubtreeSize(env_.self)) {
    return;
  }
  ts.launched = true;

  if (env_.self == kBarrierManager) {
    // Root: the whole machine has arrived. Build the flat manager state from
    // the accumulated pairs so BarrierPreRelease (homeless GC) and
    // PackBarrierReleaseFor work unchanged, then run the normal release path
    // (which fans out to the root's direct children only in tree mode).
    BarrierManagerState& bm = barrier_mgr_[barrier];
    bm.arrival_vt.assign(static_cast<size_t>(env_.nodes), VectorClock(env_.nodes));
    bm.present.assign(static_cast<size_t>(env_.nodes), false);
    for (const BarrierArrival& a : ts.arrivals) {
      HLRC_CHECK(!bm.present[static_cast<size_t>(a.node)]);
      bm.present[static_cast<size_t>(a.node)] = true;
      bm.arrival_vt[static_cast<size_t>(a.node)] = a.vt;
    }
    bm.arrived = env_.nodes;
    bm.mem_pressure = ts.mem_pressure;
    bm.launched = true;
    bm.gather_span = ts.gather_span;
    barrier_tree_.erase(it);
    BarrierAllArrived(barrier);
    return;
  }

  // Interior node or leaf: one combined enter carries the whole subtree —
  // its (node, arrival-vt) pairs plus every interval record the chain above
  // might be missing (children's records were applied into this node's log,
  // so one pack against sent_to_manager_vt_ covers own and child intervals).
  IntervalBatch recs = PackIntervalsFor(sent_to_manager_vt_);
  const SimTime cost = costs().wn_pack * static_cast<SimTime>(recs.size());
  int64_t bytes = 16 + vt_.EncodedSize();
  for (const IntervalPtr& rec : recs) {
    bytes += IntervalBytes(*rec);
  }
  for (const BarrierArrival& a : ts.arrivals) {
    bytes += 4 + a.vt.EncodedSize();
  }
  auto payload = std::make_unique<BarrierEnterPayload>();
  payload->barrier = barrier;
  payload->node = env_.self;
  payload->vt = vt_;
  payload->intervals = std::move(recs);
  payload->mem_pressure = ts.mem_pressure;
  // Copy, not move: the arrival vts are needed again at release time to pack
  // each direct child's release forward.
  payload->arrivals = ts.arrivals;
  SpanEnd(ts.gather_span);
  {
    SpanCause sc(this, ts.gather_span);
    Send(TreeParent(env_.self), MsgType::kBarrierEnter, 0, bytes, std::move(payload));
  }
  env_.cpu->RunService(cost, BusyCat::kWriteNotice, [] {});
}

void ProtocolNode::BarrierAllArrived(BarrierId barrier) {
  const bool pressure = barrier_mgr_[barrier].mem_pressure;
  SpawnDetached([](ProtocolNode* self, BarrierId b, bool mem) -> Task<void> {
    co_await self->BarrierPreRelease(b, mem);
    self->SendBarrierReleases(b);
  }(this, barrier, pressure));
}

IntervalBatch ProtocolNode::PackBarrierReleaseFor(BarrierId barrier, NodeId node) const {
  auto it = barrier_mgr_.find(barrier);
  HLRC_CHECK(it != barrier_mgr_.end());
  return PackIntervalsFor(it->second.arrival_vt[static_cast<size_t>(node)]);
}

SpanId ProtocolNode::BarrierGatherSpan(BarrierId barrier) const {
  auto it = barrier_mgr_.find(barrier);
  return it != barrier_mgr_.end() ? it->second.gather_span : kNoSpan;
}

void ProtocolNode::SendBarrierReleases(BarrierId barrier) {
  BarrierManagerState bm = std::move(barrier_mgr_[barrier]);
  barrier_mgr_.erase(barrier);

  SpanEnd(bm.gather_span);
  SpanCause sc(this, bm.gather_span);  // Releases fan out from the gather.

  // Flat barrier: the manager releases every other node directly. Tree mode:
  // only its direct children — each interior node re-packs and forwards to
  // its own children in HandleBarrierRelease.
  std::vector<NodeId> targets;
  if (TreeBarrier()) {
    const NodeId first = TreeFirstChild(env_.self);
    for (NodeId c = first;
         c < first + env_.options->barrier_arity && c < env_.nodes; ++c) {
      targets.push_back(c);
    }
  } else {
    for (NodeId n = 0; n < env_.nodes; ++n) {
      if (n != env_.self) {
        targets.push_back(n);
      }
    }
  }

  SimTime cost = 0;
  for (const NodeId n : targets) {
    // Handle copies only: each receiver's release payload aliases the same
    // underlying records (the copy-free fan-out this PR is about).
    IntervalBatch recs = PackIntervalsFor(bm.arrival_vt[static_cast<size_t>(n)]);
    cost += costs().barrier_handling + costs().wn_pack * static_cast<SimTime>(recs.size());
    int64_t bytes = 16 + vt_.EncodedSize();
    for (const IntervalPtr& rec : recs) {
      bytes += IntervalBytes(*rec);
    }
    auto payload = std::make_unique<BarrierReleasePayload>();
    payload->barrier = barrier;
    payload->intervals = std::move(recs);
    payload->max_vt = vt_;
    Send(n, MsgType::kBarrierRelease, 0, bytes, std::move(payload));
  }
  // The manager releases itself once the send-side work is charged.
  env_.cpu->RunService(cost, BusyCat::kWriteNotice,
                       [this, barrier, cause = bm.gather_span] {
                         SpanCause sc2(this, cause);
                         HandleBarrierRelease(barrier, {}, vt_);
                       });
}

void ProtocolNode::HandleBarrierRelease(BarrierId barrier, IntervalBatch intervals,
                                        const VectorClock& max_vt) {
  Cover(CoverageObserver::Domain::kSyncEpoch, 1,
        CoverageBucket(intervals.size()));  // Sync kind 1: barrier release.
  SimTime cost = ApplyIntervals(intervals);
  vt_.MergeWith(max_vt);
  if (TreeBarrier() && env_.self != kBarrierManager) {
    // Fan the release down: after applying the parent's batch this node's
    // log holds every interval record of the epoch, so packing against a
    // direct child's recorded arrival vt yields exactly the content the flat
    // manager would have sent that child. Must run before the truncation
    // charged below.
    auto it = barrier_tree_.find(barrier);
    HLRC_CHECK(it != barrier_tree_.end());
    const NodeId first = TreeFirstChild(env_.self);
    for (NodeId c = first;
         c < first + env_.options->barrier_arity && c < env_.nodes; ++c) {
      const VectorClock* cvt = nullptr;
      for (const BarrierArrival& a : it->second.arrivals) {
        if (a.node == c) {
          cvt = &a.vt;
          break;
        }
      }
      HLRC_CHECK(cvt != nullptr);
      IntervalBatch recs = PackIntervalsFor(*cvt);
      cost += costs().barrier_handling + costs().wn_pack * static_cast<SimTime>(recs.size());
      int64_t bytes = 16 + vt_.EncodedSize();
      for (const IntervalPtr& rec : recs) {
        bytes += IntervalBytes(*rec);
      }
      auto payload = std::make_unique<BarrierReleasePayload>();
      payload->barrier = barrier;
      payload->intervals = std::move(recs);
      payload->max_vt = vt_;
      Send(c, MsgType::kBarrierRelease, 0, bytes, std::move(payload));
    }
  }
  const SpanId cause = active_span_;
  const SimTime t0 = engine()->Now();
  env_.cpu->RunService(cost, BusyCat::kWriteNotice, [this, barrier, cause, t0] {
    SpanEmit(SpanKind::kWnApply, t0, cause);
    // Everything known at this barrier is now known everywhere: truncate the
    // interval log (diffs and per-page state are managed by the subclass).
    // Records still referenced by in-flight payloads stay alive through
    // their shared handles and die with the last one.
    interval_log_.Clear();
    known_interval_bytes_ = 0;
    sent_to_manager_vt_ = vt_;
    barrier_tree_.erase(barrier);
    OnBarrierReleased();
    HLRC_CHECK(barrier_waiting_ != nullptr);
    barrier_waiting_->Complete();
  });
}

Task<void> ProtocolNode::BarrierPreRelease(BarrierId /*barrier*/, bool /*mem_pressure*/) {
  co_return;
}

void ProtocolNode::OnBarrierReleased() {}

// ---------------------------------------------------------------------------
// Message dispatch.

void ProtocolNode::HandleMessage(Message msg) {
  // Span tracing: every deferred handler runs under a service span chained
  // from the message's wire span, covering [arrival, service completion] —
  // interrupt charge and processor queueing included.
  const SpanId cause = msg.span;
  const SimTime t_arrive = engine()->Now();
  switch (msg.type) {
    case MsgType::kLockRequest: {
      auto* p = static_cast<LockRequestPayload*>(msg.payload.get());
      // Lock management always runs on the compute processor (paper §2.4.1).
      Serve(/*on_coproc=*/false, /*interrupt=*/true, costs().lock_handling, BusyCat::kService,
            [this, cause, t_arrive, lock = p->lock, requester = p->requester, vt = p->vt] {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, lock));
              HandleLockRequest(lock, requester, vt);
            });
      return;
    }
    case MsgType::kLockForward: {
      auto* p = static_cast<LockForwardPayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/true, costs().lock_handling, BusyCat::kService,
            [this, cause, t_arrive, lock = p->lock, requester = p->requester, vt = p->vt] {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, lock));
              HandleLockForward(lock, requester, vt);
            });
      return;
    }
    case MsgType::kLockGrant: {
      auto* p = static_cast<LockGrantPayload*>(msg.payload.get());
      // Solicited reply: the requester is blocked in a receive, no interrupt.
      Serve(/*on_coproc=*/false, /*interrupt=*/false, 0, BusyCat::kService,
            [this, cause, t_arrive, lock = p->lock,
             intervals = std::move(p->intervals)]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, lock));
              HandleLockGrant(lock, std::move(intervals));
            });
      return;
    }
    case MsgType::kBarrierEnter: {
      auto* p = static_cast<BarrierEnterPayload*>(msg.payload.get());
      if (!p->arrivals.empty()) {
        // Combined enter from a barrier-tree child: fold the whole subtree
        // into this node's fan-in state.
        Serve(/*on_coproc=*/false, /*interrupt=*/true, 0, BusyCat::kService,
              [this, cause, t_arrive, barrier = p->barrier,
               arrivals = std::move(p->arrivals), intervals = std::move(p->intervals),
               mem = p->mem_pressure]() mutable {
                SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, barrier));
                TreeBarrierAccumulate(barrier, std::move(arrivals),
                                      std::move(intervals), mem);
              });
        return;
      }
      Serve(/*on_coproc=*/false, /*interrupt=*/true, 0, BusyCat::kService,
            [this, cause, t_arrive, barrier = p->barrier, node = p->node, vt = p->vt,
             intervals = std::move(p->intervals), mem = p->mem_pressure]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, barrier));
              HandleBarrierEnter(barrier, node, vt, std::move(intervals), mem);
            });
      return;
    }
    case MsgType::kBarrierRelease: {
      auto* p = static_cast<BarrierReleasePayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/false, 0, BusyCat::kService,
            [this, cause, t_arrive, barrier = p->barrier,
             intervals = std::move(p->intervals), max_vt = p->max_vt]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause));
              HandleBarrierRelease(barrier, std::move(intervals), max_vt);
            });
      return;
    }
    default:
      HandleProtocolMessage(std::move(msg));
      return;
  }
}

}  // namespace hlrc

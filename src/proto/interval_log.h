// Per-writer append-only log of shared, immutable interval records.
//
// The metadata fast path (docs/PERFORMANCE.md): instead of one global
// std::map<IntervalKey, IntervalRecord> per node that deep-copies records
// into every lock-grant and barrier-release payload, each node keeps one
// contiguous, id-sorted log per writer holding shared_ptr<const
// IntervalRecord> handles.
//
//   * Packing for a receiver's vector timestamp is a binary search for the
//     first unseen id in each writer's log followed by a tail copy of
//     handles — no tree walk, no record copies.
//   * An N-node barrier-release fan-out shares one record N ways. This is
//     sound because published records are immutable: CloseIntervalPrepared
//     seals a record and wraps it in a shared_ptr<const ...> before anything
//     aliases it, mirroring how src/net/reliable_channel.cc already aliases
//     whole Messages across retransmissions.
//   * Barrier-release garbage collection truncates the log wholesale
//     (Clear); the records themselves die when the last payload in flight
//     drops its handle.
//
// Append order per writer is strictly increasing in id. The protocols
// guarantee this: a node's own closes bump its VT component one at a time,
// and ApplyIntervals drops any record with id <= vt[writer] before raising
// vt[writer], so surviving appends are monotonic.
#ifndef SRC_PROTO_INTERVAL_LOG_H_
#define SRC_PROTO_INTERVAL_LOG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/proto/interval.h"
#include "src/proto/vector_clock.h"

namespace hlrc {

// Handle to a published (immutable) interval record.
using IntervalPtr = std::shared_ptr<const IntervalRecord>;
// What grant/release payloads carry: handles, not records.
using IntervalBatch = std::vector<IntervalPtr>;

class IntervalLog {
 public:
  IntervalLog() = default;
  explicit IntervalLog(int writers) { Reset(writers); }

  void Reset(int writers);
  int writers() const { return static_cast<int>(by_writer_.size()); }

  // Appends a sealed record to its writer's log. The id must be strictly
  // greater than the writer's current tail (checked).
  void Append(IntervalPtr rec);

  // Appends every record `vt` has not seen to `out`: writers ascending, ids
  // ascending within a writer — exactly the iteration order of the previous
  // std::map<IntervalKey, ...> representation, which the golden summaries
  // pin.
  void PackInto(const VectorClock& vt, IntervalBatch* out) const;
  IntervalBatch PackFor(const VectorClock& vt) const {
    IntervalBatch out;
    PackInto(vt, &out);
    return out;
  }

  // Binary search by (writer, id); nullptr if absent.
  const IntervalRecord* Find(NodeId writer, uint32_t id) const;

  // Barrier-release truncation: every record here is now known everywhere.
  void Clear();

  int64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  const std::vector<IntervalPtr>& writer_log(NodeId writer) const {
    return by_writer_[static_cast<size_t>(writer)];
  }

 private:
  std::vector<std::vector<IntervalPtr>> by_writer_;
  int64_t count_ = 0;
};

}  // namespace hlrc

#endif  // SRC_PROTO_INTERVAL_LOG_H_

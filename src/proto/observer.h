// Shared-memory access observation for correctness checking.
//
// A consistency checker (src/check) registers an AccessObserver with
// svm::System; the observed-access API (NodeContext::LoadWord / StoreWord)
// then reports every shared read and write together with the node's vector
// timestamp at the access. The observer sees accesses in simulated-time
// order, which lets an online oracle validate each read the moment it
// happens.
//
// The interval id of an access is the node's *open* interval,
// vt.Get(node) + 1: writes performed now are published under that id when
// the interval closes at the next release/barrier, so a remote access b has
// seen access a exactly when b's vector timestamp covers a's interval.
#ifndef SRC_PROTO_OBSERVER_H_
#define SRC_PROTO_OBSERVER_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/proto/vector_clock.h"

namespace hlrc {

struct MemoryAccess {
  NodeId node = kInvalidNode;
  GlobalAddr addr = 0;
  uint64_t value = 0;
  bool is_write = false;
  // The node's open interval id at the access: vt.Get(node) + 1.
  uint32_t interval = 0;
  // The node's vector timestamp at the access (intervals it has acquired).
  VectorClock vt;
  SimTime when = 0;
};

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void OnAccess(const MemoryAccess& access) = 0;
};

}  // namespace hlrc

#endif  // SRC_PROTO_OBSERVER_H_

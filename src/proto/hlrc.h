// Home-based lazy release consistency (the paper's HLRC contribution and its
// overlapped variant OHLRC).
//
// Every page has a home. At interval end, writers diff their dirty pages and
// flush the diffs to the homes, where they are applied immediately and
// discarded. A page fault is a single round trip to the home: the request
// carries the faulting node's required flush timestamps; the home answers
// with the whole page once its applied timestamps cover the request, queueing
// the request otherwise (paper §2.3, §2.4.2).
//
// OHLRC (overlapped()) runs diff creation (writer side), diff application
// (home side) and page servicing on the communication co-processor.
#ifndef SRC_PROTO_HLRC_H_
#define SRC_PROTO_HLRC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/proto/protocol.h"

namespace hlrc {

class HlrcProtocol : public ProtocolNode {
 public:
  explicit HlrcProtocol(const Env& env) : ProtocolNode(env) {}

  // Test/bench introspection.
  int64_t pending_request_count() const;
  int64_t homes_migrated() const { return homes_migrated_; }

 protected:
  void OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) override;
  bool OnWriteNotice(const IntervalRecord& rec, PageId page) override;
  Task<void> ResolveFault(PageId page, bool write) override;
  void HandleProtocolMessage(Message msg) override;
  int64_t SubclassMemoryBytes() const override;

  // Cost of capturing writes on a page (twin creation). The AURC subclass
  // overrides this to zero: automatic-update hardware snoops the bus.
  virtual SimTime WriteCaptureCost() const { return costs().TwinCost(pages().page_size()); }

  using Required = std::vector<std::pair<NodeId, uint32_t>>;
  // Immutable page snapshot shared between replies (request combining) and
  // with the delivered payload — same discipline as the interval log's
  // shared immutable batches.
  using PageSnapshot = std::shared_ptr<const std::vector<std::byte>>;

  struct FaultWait {
    PageSnapshot data;  // Page contents from the home's reply.
    // Set when a home transfer satisfied the fetch and already installed the
    // master (with twin rebase): the fetch path must not install again.
    bool already_installed = false;
    std::unique_ptr<Completion> done;
  };

  struct PendingReq {
    NodeId requester;
    Required required;
    // Span tracing: the parked request's causal context and park time, so the
    // home-wait stretch shows up on the requester's fault critical path.
    SpanId span = kNoSpan;
    SimTime parked_at = 0;
  };

  // The node currently believed to home `page`: a migration override if one
  // is known, else the static assignment. Flushes still route via the static
  // home (whose forwarding keeps per-writer ordering); fetches chase the
  // believed home and learn the true one from the reply.
  NodeId BelievedHomeOf(PageId page) const;
  bool IsHomeHere(PageId page) const { return BelievedHomeOf(page) == self(); }

  // Required-flush bookkeeping (faulting side). Protected: the AURC subclass
  // reuses the home machinery with a different update-capture model.
  void UpdateRequired(PageId page, NodeId writer, uint32_t id);
  const Required* RequiredOf(PageId page) const;
  // Bumped whenever a page's required set grows; lets an in-flight fetch
  // detect that a new write notice arrived while it waited for the home.
  uint64_t RequiredEpoch(PageId page) const;

  // Applied-flush bookkeeping (home side).
  void SetApplied(PageId page, NodeId writer, uint32_t id);
  uint32_t GetApplied(PageId page, NodeId writer) const;
  bool AppliedSatisfies(PageId page, const Required& required) const;

  void HandleDiffFlush(NodeId writer, PageId page, uint32_t interval, const Diff& diff);
  void MaybeMigrateHome(PageId page, NodeId writer);
  void HandleHomeTransfer(PageId page, NodeId old_home, const std::vector<std::byte>& data,
                          const std::vector<uint32_t>& applied);
  void HandlePageRequest(PageId page, NodeId requester, Required required);
  // `snapshot` is null for a one-off reply (a fresh copy is taken); request
  // combining passes one shared snapshot to every reply of the same pass.
  void SendPageReply(PageId page, NodeId requester, PageSnapshot snapshot = nullptr);
  PageSnapshot SnapshotPage(PageId page);
  void ServePendingRequests(PageId page);
  void WakeLocalFaultIfReady(PageId page);
  void InstallPageData(PageId page, const std::vector<std::byte>& data);

  std::unordered_map<PageId, std::vector<uint32_t>> applied_flush_;
  std::unordered_map<PageId, std::vector<PendingReq>> pending_reqs_;
  std::unordered_map<PageId, Required> required_flush_;
  std::unordered_map<PageId, uint64_t> required_epoch_;
  std::unordered_map<PageId, FaultWait> fault_waiting_;

  // Home migration state.
  std::unordered_map<PageId, NodeId> home_override_;
  struct WriterStreak {
    NodeId writer = kInvalidNode;
    int count = 0;
  };
  std::unordered_map<PageId, WriterStreak> writer_streak_;
  int64_t homes_migrated_ = 0;

  // Diffs created but not yet flushed (co-processor still working). Writers
  // discard diffs the moment they are sent (paper §2.3).
  int64_t inflight_diff_bytes_ = 0;

  // TestMutation::kHlrcSkipDiffApply fires once per run.
  bool mutation_fired_ = false;
};

// Payloads.

struct DiffFlushPayload : Payload {
  NodeId writer;
  PageId page;
  uint32_t interval;
  Diff diff;
};

struct HomePageRequestPayload : Payload {
  PageId page;
  NodeId requester;
  std::vector<std::pair<NodeId, uint32_t>> required;
};

struct HomePageReplyPayload : Payload {
  PageId page;
  NodeId home;  // The actual serving home (updates the requester's override).
  // Immutable: combined replies to concurrent requesters share one snapshot.
  std::shared_ptr<const std::vector<std::byte>> data;
};

struct HomeTransferPayload : Payload {
  PageId page;
  NodeId old_home;
  std::vector<std::byte> data;
  std::vector<uint32_t> applied;  // Per-writer applied flush timestamps.
};

}  // namespace hlrc

#endif  // SRC_PROTO_HLRC_H_

// Eager release consistency (extension beyond the paper's four protocols).
//
// The paper's introduction contrasts LRC with plain release consistency,
// which "propagates updates on release". This is that baseline, in the
// Munin write-shared style: at every interval end the writer broadcasts its
// diffs to all other copies and the synchronization operation (lock grant,
// barrier enter) blocks until every receiver acknowledges. Pages are
// therefore *always valid everywhere*: no write notices, no invalidations,
// no page faults on readers, no garbage collection — in exchange for
// O(nodes) update messages per dirty page per interval and a release that
// stalls on the slowest receiver. The comparison against LRC/HLRC shows
// exactly why lazy protocols won (run bench/ablation_protocol_family).
#ifndef SRC_PROTO_ERC_H_
#define SRC_PROTO_ERC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/proto/protocol.h"

namespace hlrc {

class ErcProtocol : public ProtocolNode {
 public:
  explicit ErcProtocol(const Env& env) : ProtocolNode(env) {}

  int64_t updates_broadcast() const { return updates_broadcast_; }

 protected:
  void OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) override;
  bool OnWriteNotice(const IntervalRecord& rec, PageId page) override;
  Task<void> ResolveFault(PageId page, bool write) override;
  void HandleProtocolMessage(Message msg) override;
  int64_t SubclassMemoryBytes() const override;

  void FlushBarrier(std::function<void()> done) override;

 private:
  void HandleUpdate(NodeId writer, uint64_t flush_id, std::vector<Diff> diffs,
                    int64_t apply_bytes);
  void HandleAck(uint64_t flush_id);

  uint64_t next_flush_id_ = 1;
  // flush id -> acks still missing.
  std::unordered_map<uint64_t, int> flushes_;
  // Continuations gated on all flushes being acknowledged.
  std::vector<std::function<void()>> flush_waiters_;
  int64_t updates_broadcast_ = 0;
};

// Payloads.

struct ErcUpdatePayload : Payload {
  NodeId writer;
  uint64_t flush_id;
  std::vector<Diff> diffs;
};

struct ErcAckPayload : Payload {
  uint64_t flush_id;
};

}  // namespace hlrc

#endif  // SRC_PROTO_ERC_H_

#include "src/proto/hlrc.h"

#include <algorithm>

#include "src/common/log.h"
#include <cstring>
#include <utility>

namespace hlrc {

// ---------------------------------------------------------------------------
// Required / applied flush timestamp bookkeeping.

void HlrcProtocol::UpdateRequired(PageId page, NodeId writer, uint32_t id) {
  Required& req = required_flush_[page];
  for (auto& [w, i] : req) {
    if (w == writer) {
      if (id > i) {
        i = id;
        ++required_epoch_[page];
      }
      return;
    }
  }
  req.emplace_back(writer, id);
  ++required_epoch_[page];
}

uint64_t HlrcProtocol::RequiredEpoch(PageId page) const {
  auto it = required_epoch_.find(page);
  return it == required_epoch_.end() ? 0 : it->second;
}

NodeId HlrcProtocol::BelievedHomeOf(PageId page) const {
  auto it = home_override_.find(page);
  return it == home_override_.end() ? HomeOf(page) : it->second;
}

const HlrcProtocol::Required* HlrcProtocol::RequiredOf(PageId page) const {
  auto it = required_flush_.find(page);
  return it == required_flush_.end() ? nullptr : &it->second;
}

void HlrcProtocol::SetApplied(PageId page, NodeId writer, uint32_t id) {
  auto it = applied_flush_.find(page);
  if (it == applied_flush_.end()) {
    it = applied_flush_.emplace(page, std::vector<uint32_t>(static_cast<size_t>(nodes()), 0))
             .first;
  }
  uint32_t& slot = it->second[static_cast<size_t>(writer)];
  slot = std::max(slot, id);
}

uint32_t HlrcProtocol::GetApplied(PageId page, NodeId writer) const {
  auto it = applied_flush_.find(page);
  if (it == applied_flush_.end()) {
    return 0;
  }
  return it->second[static_cast<size_t>(writer)];
}

bool HlrcProtocol::AppliedSatisfies(PageId page, const Required& required) const {
  for (const auto& [writer, id] : required) {
    if (GetApplied(page, writer) < id) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Interval close: diff dirty pages and flush them to their homes. Pages homed
// here update the master copy in place — no twin, no diff (the "home
// effect", paper §4.4).

void HlrcProtocol::OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) {
  PageList kept;
  std::vector<std::function<void()>> flushes;          // Non-overlapped sends.
  std::vector<std::pair<SimTime, std::function<void()>>> cop_work;  // Overlapped.

  for (PageId p : rec->pages) {
    // Flushes always route via the static home; if the page migrated, the
    // static home forwards along a fixed path, preserving per-writer order.
    const NodeId home = HomeOf(p);
    if (IsHomeHere(p)) {
      HLRC_CHECK(!pages().HasTwin(p));
      SetApplied(p, self(), rec->id);
      writer_streak_.erase(p);  // The home is writing: no migration streak.
      kept.push_back(p);
      continue;
    }
    HLRC_CHECK(pages().HasTwin(p));
    Diff d = CreateDiff(p, pages().State(p).twin.get(), pages().PageData(p),
                        pages().page_size(), env().options->diff_word_bytes);
    pages().DropTwin(p);
    if (d.Empty()) {
      continue;  // Nothing changed: no write notice, no flush.
    }
    kept.push_back(p);
    ++stats_.diffs_created;
    MetricDiffCreated(p, d.DataBytes());
    Trace(TraceEvent::kDiffCreate, p, d.DataBytes());
    Trace(TraceEvent::kDiffFlush, p, home);
    // A later fetch of this page must not return a home copy that predates
    // our own flush, or our writes would be lost: require our own interval.
    UpdateRequired(p, self(), rec->id);
    const SimTime create_cost = costs().DiffCreateCost(pages().page_size(), d.DataBytes());
    const int64_t diff_bytes = d.EncodedSize();
    inflight_diff_bytes_ += diff_bytes;
    NoteMemory();

    auto send_flush = [this, home, p, id = rec->id, diff_bytes,
                       cause = interval_close_span(),
                       diff = std::make_shared<Diff>(std::move(d))] {
      // The flush is causally part of the interval close, not of whatever
      // message happens to be in service when the co-processor finishes.
      SpanCause sc(this, cause);
      auto payload = std::make_unique<DiffFlushPayload>();
      payload->writer = self();
      payload->page = p;
      payload->interval = id;
      payload->diff = std::move(*diff);
      inflight_diff_bytes_ -= diff_bytes;
      Send(home, MsgType::kDiffFlush, diff_bytes, 16, std::move(payload));
    };

    if (overlapped()) {
      cop_work.emplace_back(create_cost, std::move(send_flush));
    } else {
      actions->diff_cost += create_cost;
      flushes.push_back(std::move(send_flush));
    }
  }
  rec->pages = std::move(kept);

  if (!flushes.empty() || !cop_work.empty()) {
    actions->post = [this, flushes = std::move(flushes), cop_work = std::move(cop_work),
                     cause = interval_close_span()] {
      // Non-overlapped: diffs were computed on the compute processor (cost
      // already charged); send them now, one message per diff (paper §4.6).
      for (const auto& send : flushes) {
        send();
      }
      // Overlapped: the co-processor computes each diff and sends it to the
      // home when done; the compute processor continues immediately.
      for (const auto& [cost, send] : cop_work) {
        const SimTime t0 = engine()->Now();
        env().cop->RunService(cost, BusyCat::kDiffCreate, [this, t0, cause, send] {
          SpanEmit(SpanKind::kDiffCreate, t0, cause);
          send();
        });
      }
    };
  }
}

// ---------------------------------------------------------------------------
// Write notices.

bool HlrcProtocol::OnWriteNotice(const IntervalRecord& rec, PageId page) {
  UpdateRequired(page, rec.writer, rec.id);
  PageState& st = pages().State(page);
  if (IsHomeHere(page)) {
    // The master copy lives here. If the announced diffs have already been
    // applied there is nothing to do — this is why home accesses take no
    // page faults. Only an in-flight diff forces a temporary invalidation.
    const Required* req = RequiredOf(page);
    if (req == nullptr || AppliedSatisfies(page, *req)) {
      return false;
    }
  }
  const bool was_mapped = st.prot != PageProt::kNone;
  st.prot = PageProt::kNone;
  return was_mapped;
}

// ---------------------------------------------------------------------------
// Fault resolution: one round trip to the home (paper §2.3).

Task<void> HlrcProtocol::ResolveFault(PageId page, bool write) {
  // Every co_await below is a point where a write notice can invalidate this
  // page (e.g. the barrier manager applies other nodes' notices whenever an
  // enter message arrives, even mid-computation, and cost charges stretch
  // under interrupt load). The outer loop therefore re-checks the protection
  // after every suspension and restarts resolution if the page went invalid -
  // the software equivalent of the store re-faulting on real hardware.
  while (true) {
  const NodeId home = BelievedHomeOf(page);
  if (pages().State(page).prot == PageProt::kNone) {
    if (home == self()) {
      // Wait for in-flight diffs to land on the master copy; purely local.
      // Loop: new write notices may extend the requirement while waiting.
      while (true) {
        const Required* req = RequiredOf(page);
        if (req == nullptr || AppliedSatisfies(page, *req)) {
          break;
        }
        HLRC_CHECK(fault_waiting_.find(page) == fault_waiting_.end());
        FaultWait& fw = fault_waiting_[page];
        fw.done = std::make_unique<Completion>(engine());
        co_await *fw.done;
        fault_waiting_.erase(page);
      }
    } else {
      // Fetch from the home. If a new write notice for this page arrives
      // while the request is in flight (e.g. the barrier manager applying
      // another node's notices mid-computation), the reply predates the
      // newly-announced diff: fetch again.
      while (true) {
        const uint64_t epoch = RequiredEpoch(page);
        ++stats_.page_fetches;
        MetricFetch(page, pages().page_size());
        Trace(TraceEvent::kPageFetch, page, home);
        HLRC_TRACE("[%lld] node %d: fetch page=%d from home %d", (long long)engine()->Now(),
                   self(), page, home);
        HLRC_CHECK(fault_waiting_.find(page) == fault_waiting_.end());
        FaultWait& fw = fault_waiting_[page];
        fw.done = std::make_unique<Completion>(engine());

        auto payload = std::make_unique<HomePageRequestPayload>();
        payload->page = page;
        payload->requester = self();
        const Required* req = RequiredOf(page);
        if (req != nullptr) {
          payload->required = *req;
        }
        const int64_t req_bytes = 16 + 8 * static_cast<int64_t>(payload->required.size());
        {
          // Chain the request from the fault root (scoped: the context must
          // not survive across the suspension below).
          SpanCause sc(this, cur_fault_span_);
          Send(home, MsgType::kPageRequest, 0, req_bytes, std::move(payload));
        }

        co_await *fw.done;
        FaultWait& done_fw = fault_waiting_[page];
        const bool transfer_satisfied = done_fw.already_installed;
        if (!transfer_satisfied) {
          InstallPageData(page, *done_fw.data);
        }
        fault_waiting_.erase(page);
        if (transfer_satisfied || RequiredEpoch(page) == epoch) {
          // A home transfer made this node the page's home: its copy IS the
          // master now; no re-fetch regardless of epoch churn.
          break;
        }
      }
    }
    pages().State(page).prot = PageProt::kRead;
    co_await ChargeCpu(costs().page_protect, BusyCat::kFault);
    continue;  // Re-check: the charge may have crossed an invalidation.
  }
  if (!write) {
    co_return;
  }
  if (BelievedHomeOf(page) != self() && !pages().HasTwin(page)) {
    co_await ChargeCpu(WriteCaptureCost(), BusyCat::kTwin);
    if (pages().State(page).prot == PageProt::kNone) {
      continue;  // Invalidated during the twin charge: the data is stale.
    }
    pages().MakeTwin(page);
  }
  pages().State(page).prot = PageProt::kReadWrite;
  co_await ChargeCpu(costs().page_protect, BusyCat::kFault);
  if (pages().State(page).prot == PageProt::kNone) {
    continue;  // Invalidated during the protect charge.
  }
  MarkDirty(page);
  co_return;
  }
}

void HlrcProtocol::InstallPageData(PageId page, const std::vector<std::byte>& data) {
  HLRC_CHECK(static_cast<int64_t>(data.size()) == pages().page_size());
  std::byte* dst = pages().PageData(page);
  if (pages().HasTwin(page)) {
    // Preserve local writes of the open interval (multiple-writer pages).
    Diff local = CreateDiff(page, pages().State(page).twin.get(), dst, pages().page_size(),
                            env().options->diff_word_bytes);
    std::memcpy(dst, data.data(), data.size());
    std::memcpy(pages().State(page).twin.get(), data.data(), data.size());
    ApplyDiff(local, dst, pages().page_size());
  } else {
    std::memcpy(dst, data.data(), data.size());
  }
}

// ---------------------------------------------------------------------------
// Home-side servicing.

void HlrcProtocol::HandleDiffFlush(NodeId writer, PageId page, uint32_t interval,
                                   const Diff& diff) {
  if (!IsHomeHere(page)) {
    // The page's home migrated away: forward along the (fixed) chain. FIFO
    // per network pair keeps each writer's diffs ordered end to end.
    auto payload = std::make_unique<DiffFlushPayload>();
    payload->writer = writer;
    payload->page = page;
    payload->interval = interval;
    payload->diff = diff;
    Send(BelievedHomeOf(page), MsgType::kDiffFlush, diff.EncodedSize(), 16,
         std::move(payload));
    return;
  }
  Trace(TraceEvent::kDiffApply, page, diff.DataBytes());
  HLRC_TRACE("[%lld] home %d: apply flush page=%d writer=%d id=%u bytes=%lld",
             (long long)engine()->Now(), self(), page, writer, interval,
             (long long)diff.DataBytes());
  if (env().options->mutation == TestMutation::kHlrcSkipDiffApply && !mutation_fired_ &&
      writer != self()) {
    // Seeded bug (TestMutation): lose this diff's data but keep all the
    // bookkeeping below, so the home serves a stale master copy without ever
    // blocking a fetch. The consistency oracle must catch the stale reads.
    mutation_fired_ = true;
  } else {
    ApplyDiff(diff, pages().PageData(page), pages().page_size());
  }
  ++stats_.diffs_applied;
  MetricDiffApplied(page, diff.DataBytes());
  SetApplied(page, writer, interval);
  WakeLocalFaultIfReady(page);
  ServePendingRequests(page);
  MaybeMigrateHome(page, writer);
}

void HlrcProtocol::MaybeMigrateHome(PageId page, NodeId writer) {
  if (!env().options->migrate_homes || writer == self()) {
    return;
  }
  if (fault_waiting_.find(page) != fault_waiting_.end()) {
    // A local access is waiting for this page's in-flight diffs; migrating
    // now would forward those diffs to the new home and strand the waiter.
    return;
  }
  if (IsDirtyInOpenInterval(page)) {
    // Our own open interval is writing the master in place (home effect);
    // handing the page away now would orphan those uncommitted writes.
    return;
  }
  WriterStreak& streak = writer_streak_[page];
  if (streak.writer != writer) {
    streak.writer = writer;
    streak.count = 0;
  }
  if (++streak.count < env().options->migrate_threshold) {
    return;
  }
  // A stable remote single writer: hand it the home so its future writes hit
  // the home effect (no twins, no diffs, no flushes).
  writer_streak_.erase(page);
  ++homes_migrated_;
  auto payload = std::make_unique<HomeTransferPayload>();
  payload->page = page;
  payload->old_home = self();
  payload->data.assign(pages().PageData(page), pages().PageData(page) + pages().page_size());
  auto ait = applied_flush_.find(page);
  if (ait != applied_flush_.end()) {
    payload->applied = ait->second;
  } else {
    payload->applied.assign(static_cast<size_t>(nodes()), 0);
  }
  home_override_[page] = writer;
  applied_flush_.erase(page);
  // Any parked requests chase the new home.
  auto pit = pending_reqs_.find(page);
  if (pit != pending_reqs_.end()) {
    std::vector<PendingReq> reqs = std::move(pit->second);
    pending_reqs_.erase(pit);
    for (PendingReq& req : reqs) {
      auto fwd = std::make_unique<HomePageRequestPayload>();
      fwd->page = page;
      fwd->requester = req.requester;
      fwd->required = std::move(req.required);
      const int64_t fwd_bytes = 16 + 8 * static_cast<int64_t>(fwd->required.size());
      Send(writer, MsgType::kPageRequest, 0, fwd_bytes, std::move(fwd));
    }
  }
  const int64_t transfer_bytes = 16 + 4 * static_cast<int64_t>(payload->applied.size());
  Send(writer, MsgType::kHomeTransfer, pages().page_size(), transfer_bytes,
       std::move(payload));
}

void HlrcProtocol::HandleHomeTransfer(PageId page, NodeId old_home,
                                      const std::vector<std::byte>& data,
                                      const std::vector<uint32_t>& applied) {
  (void)old_home;
  // Become the page's home: adopt the master copy (rebasing any local open
  // writes) and the applied-flush state.
  InstallPageData(page, data);
  pages().DropTwin(page);  // The master needs no twin at its home.
  applied_flush_[page] = applied;
  SetApplied(page, self(), vt().Get(self()));
  home_override_[page] = self();
  if (pages().State(page).prot == PageProt::kNone) {
    pages().State(page).prot = PageProt::kRead;
  }
  // A fetch of this very page may be in flight (we asked the old home just
  // before becoming the home): the transferred master satisfies it. The
  // now-redundant forwarded reply is dropped on arrival.
  auto fit = fault_waiting_.find(page);
  if (fit != fault_waiting_.end() && fit->second.done != nullptr &&
      !fit->second.done->IsDone()) {
    fit->second.already_installed = true;  // InstallPageData above covered it.
    fit->second.done->Complete();
  }
  ServePendingRequests(page);
}

void HlrcProtocol::WakeLocalFaultIfReady(PageId page) {
  auto it = fault_waiting_.find(page);
  if (it == fault_waiting_.end() || it->second.done == nullptr) {
    return;
  }
  const Required* req = RequiredOf(page);
  if (req == nullptr || AppliedSatisfies(page, *req)) {
    it->second.done->Complete();
  }
}

void HlrcProtocol::HandlePageRequest(PageId page, NodeId requester, Required required) {
  if (!IsHomeHere(page)) {
    auto fwd = std::make_unique<HomePageRequestPayload>();
    fwd->page = page;
    fwd->requester = requester;
    fwd->required = std::move(required);
    const int64_t fwd_bytes = 16 + 8 * static_cast<int64_t>(fwd->required.size());
    Send(BelievedHomeOf(page), MsgType::kPageRequest, 0, fwd_bytes, std::move(fwd));
    return;
  }
  if (AppliedSatisfies(page, required)) {
    SendPageReply(page, requester);
    return;
  }
  // Some diffs are still in flight: park the request until they land
  // (paper §2.4.2).
  HLRC_TRACE("[%lld] home %d: park request page=%d from node %d", (long long)engine()->Now(),
             self(), page, requester);
  pending_reqs_[page].push_back(
      PendingReq{requester, std::move(required), active_span_, engine()->Now()});
}

HlrcProtocol::PageSnapshot HlrcProtocol::SnapshotPage(PageId page) {
  const std::byte* src = pages().PageData(page);
  return std::make_shared<const std::vector<std::byte>>(src, src + pages().page_size());
}

void HlrcProtocol::SendPageReply(PageId page, NodeId requester, PageSnapshot snapshot) {
  Trace(TraceEvent::kPageServe, page, requester);
  HLRC_TRACE("[%lld] home %d: page reply page=%d -> node %d", (long long)engine()->Now(),
             self(), page, requester);
  auto payload = std::make_unique<HomePageReplyPayload>();
  payload->page = page;
  payload->home = self();
  payload->data = snapshot != nullptr ? std::move(snapshot) : SnapshotPage(page);
  Send(requester, MsgType::kPageReply, pages().page_size(), 16, std::move(payload));
}

void HlrcProtocol::ServePendingRequests(PageId page) {
  auto it = pending_reqs_.find(page);
  if (it == pending_reqs_.end()) {
    return;
  }
  auto& reqs = it->second;
  // Request combining (--coalesce): every parked request this pass satisfies
  // is answered from one shared immutable snapshot — the master copy cannot
  // change between replies (we are inside one service handler), so copying it
  // per requester is pure overhead. Off: one private copy per reply, matching
  // the golden runs byte for byte.
  const bool combine = env().options->coalesce;
  PageSnapshot snapshot;
  int64_t shared_replies = 0;
  for (auto rit = reqs.begin(); rit != reqs.end();) {
    if (AppliedSatisfies(page, rit->required)) {
      // The stretch this request sat parked waiting for in-flight diffs:
      // charged to the home, chained from the parked request so it lands on
      // the requester's fault critical path.
      const SpanId hw = SpanEmit(SpanKind::kHomeWait, rit->parked_at, rit->span, page,
                                 rit->requester);
      SpanCause sc(this, hw);
      if (combine) {
        if (snapshot == nullptr) {
          snapshot = SnapshotPage(page);
        }
        ++shared_replies;
        SendPageReply(page, rit->requester, snapshot);
      } else {
        SendPageReply(page, rit->requester);
      }
      rit = reqs.erase(rit);
    } else {
      ++rit;
    }
  }
  if (shared_replies >= 2) {
    stats_.page_replies_combined += shared_replies;
  }
  if (reqs.empty()) {
    pending_reqs_.erase(it);
  }
}

void HlrcProtocol::HandleProtocolMessage(Message msg) {
  const SpanId cause = msg.span;
  const SimTime t_arrive = engine()->Now();
  switch (msg.type) {
    case MsgType::kDiffFlush: {
      auto* p = static_cast<DiffFlushPayload*>(msg.payload.get());
      const SimTime cost = costs().DiffApplyCost(p->diff.DataBytes());
      // Applying the diff at the home: co-processor under OHLRC, interrupt +
      // compute processor under HLRC.
      ServeDataRequest(cost, BusyCat::kDiffApply,
                       [this, cause, t_arrive, writer = p->writer, page = p->page,
                        interval = p->interval, diff = std::move(p->diff)] {
                         SpanCause sc(this,
                                      SpanEmit(SpanKind::kDiffApply, t_arrive, cause, page));
                         HandleDiffFlush(writer, page, interval, diff);
                       });
      return;
    }
    case MsgType::kPageRequest: {
      auto* p = static_cast<HomePageRequestPayload*>(msg.payload.get());
      ServeDataRequest(costs().service_fixed, BusyCat::kService,
                       [this, cause, t_arrive, page = p->page, requester = p->requester,
                        required = std::move(p->required)]() mutable {
                         SpanCause sc(this,
                                      SpanEmit(SpanKind::kService, t_arrive, cause, page));
                         HandlePageRequest(page, requester, std::move(required));
                       });
      return;
    }
    case MsgType::kPageReply: {
      auto* p = static_cast<HomePageReplyPayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/false, 0, BusyCat::kService,
            [this, cause, t_arrive, page = p->page, home = p->home,
             data = std::move(p->data)]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, page));
              if (home != self() && (home != HomeOf(page) || home_override_.count(page) != 0)) {
                home_override_[page] = home;  // Path shortening after migration.
              }
              auto it = fault_waiting_.find(page);
              if (it == fault_waiting_.end() || it->second.done == nullptr ||
                  it->second.done->IsDone()) {
                // The fetch was already satisfied by a home transfer (this is
                // the forwarded reply catching up) — drop it.
                return;
              }
              it->second.data = std::move(data);
              it->second.done->Complete();
            });
      return;
    }
    case MsgType::kHomeTransfer: {
      auto* p = static_cast<HomeTransferPayload*>(msg.payload.get());
      ServeDataRequest(costs().service_fixed, BusyCat::kService,
                       [this, cause, t_arrive, page = p->page, old_home = p->old_home,
                        data = std::move(p->data), applied = std::move(p->applied)] {
                         SpanCause sc(this,
                                      SpanEmit(SpanKind::kService, t_arrive, cause, page));
                         HandleHomeTransfer(page, old_home, data, applied);
                       });
      return;
    }
    default:
      HLRC_CHECK_MSG(false, "HLRC node %d: unexpected message type %d", self(),
                     static_cast<int>(msg.type));
  }
}

int64_t HlrcProtocol::pending_request_count() const {
  int64_t n = 0;
  for (const auto& [page, reqs] : pending_reqs_) {
    n += static_cast<int64_t>(reqs.size());
  }
  return n;
}

int64_t HlrcProtocol::SubclassMemoryBytes() const {
  // Home-based protocol data: per-page flush timestamps and transient diffs.
  // Write notices carry no vector timestamps (paper §4.7).
  int64_t required_bytes = 0;
  for (const auto& [page, req] : required_flush_) {
    required_bytes += 8 * static_cast<int64_t>(req.size());
  }
  int64_t applied_bytes =
      static_cast<int64_t>(applied_flush_.size()) * 4 * static_cast<int64_t>(nodes());
  const int64_t migration_bytes =
      static_cast<int64_t>(home_override_.size()) * 8 +
      static_cast<int64_t>(writer_streak_.size()) * 12;
  return required_bytes + applied_bytes + inflight_diff_bytes_ + migration_bytes;
}

}  // namespace hlrc

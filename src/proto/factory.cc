#include <memory>

#include "src/proto/aurc.h"
#include "src/proto/erc.h"
#include "src/proto/hlrc.h"
#include "src/proto/lrc.h"
#include "src/proto/protocol.h"

namespace hlrc {

std::unique_ptr<ProtocolNode> ProtocolNode::Create(const Env& env) {
  switch (env.options->kind) {
    case ProtocolKind::kLrc:
    case ProtocolKind::kOlrc:
      return std::make_unique<LrcProtocol>(env);
    case ProtocolKind::kHlrc:
    case ProtocolKind::kOhlrc:
      return std::make_unique<HlrcProtocol>(env);
    case ProtocolKind::kErc:
      return std::make_unique<ErcProtocol>(env);
    case ProtocolKind::kAurc:
      return std::make_unique<AurcProtocol>(env);
  }
  HLRC_CHECK_MSG(false, "unknown protocol kind %d", static_cast<int>(env.options->kind));
  return nullptr;
}

}  // namespace hlrc

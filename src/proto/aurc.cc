#include "src/proto/aurc.h"

#include <utility>

namespace hlrc {

int64_t AurcProtocol::ProtocolMemoryBytes() const {
  return known_interval_bytes_ + SubclassMemoryBytes();
}

void AurcProtocol::OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) {
  PageList kept;
  for (PageId p : rec->pages) {
    // Flushes route via the static home (which forwards after a migration);
    // the home-effect test must use the believed home, or a node that just
    // became the home via migration would look for a twin it never made.
    const NodeId home = HomeOf(p);
    if (IsHomeHere(p)) {
      HLRC_CHECK(!pages().HasTwin(p));
      SetApplied(p, self(), rec->id);
      writer_streak_.erase(p);  // The home is writing: no migration streak.
      kept.push_back(p);
      continue;
    }
    HLRC_CHECK(pages().HasTwin(p));
    Diff d = CreateDiff(p, pages().State(p).twin.get(), pages().PageData(p),
                        pages().page_size(), env().options->diff_word_bytes);
    pages().DropTwin(p);
    if (d.Empty()) {
      continue;
    }
    kept.push_back(p);
    UpdateRequired(p, self(), rec->id);
    // The automatic-update hardware streamed these words out as they were
    // stored: no diff-creation cost, no diffs_created accounting (Table 4's
    // "AURC uses no diff operations"), but write-through amplification on the
    // wire. The flush carries the writer's interval so the home's flush
    // timestamps stay exact.
    const int64_t wire_bytes = static_cast<int64_t>(
        static_cast<double>(d.DataBytes()) * env().options->aurc_write_amplification);
    // No diff operation happened, but the amplified update bytes are still
    // attributable page traffic for the heat profile.
    MetricDiffCreated(p, wire_bytes);
    auto payload = std::make_unique<DiffFlushPayload>();
    payload->writer = self();
    payload->page = p;
    payload->interval = rec->id;
    payload->diff = std::move(d);
    SpanCause sc(this, interval_close_span());
    Send(home, MsgType::kDiffFlush, wire_bytes, 16, std::move(payload));
  }
  rec->pages = std::move(kept);
  (void)actions;  // Zero software cost at interval end.
}

void AurcProtocol::HandleProtocolMessage(Message msg) {
  if (msg.type == MsgType::kDiffFlush) {
    // Automatic updates land in home memory without interrupting either
    // processor: apply at delivery, zero occupancy. The zero-duration span
    // keeps the causal chain connected (e.g. a home-wait released by this
    // flush still traces back to the writer's interval close).
    auto* p = static_cast<DiffFlushPayload*>(msg.payload.get());
    SpanCause sc(this, SpanEmit(SpanKind::kDiffApply, engine()->Now(), msg.span, p->page));
    HandleDiffFlush(p->writer, p->page, p->interval, p->diff);
    return;
  }
  HlrcProtocol::HandleProtocolMessage(std::move(msg));
}

}  // namespace hlrc

// Protocol selection and tunables.
#ifndef SRC_PROTO_OPTIONS_H_
#define SRC_PROTO_OPTIONS_H_

#include <cstdint>

#include "src/common/types.h"

namespace hlrc {

enum class ProtocolKind : int {
  kLrc = 0,    // Homeless lazy release consistency (TreadMarks-style).
  kOlrc = 1,   // LRC with diffing/fetch service overlapped onto the co-processor.
  kHlrc = 2,   // Home-based LRC.
  kOhlrc = 3,  // HLRC with diff create/apply and page service on the co-processor.
  // Extensions beyond the paper's four (see DESIGN.md):
  kErc = 4,    // Eager release consistency: update broadcast at release
               // (Munin-style write-shared; the paper's §1 RC contrast).
  kAurc = 5,   // Automatic-update RC: HLRC's hardware ancestor — zero
               // software cost for update detection/propagation, write-through
               // traffic (paper §2.2; simulated AU hardware).
};

constexpr bool IsHomeBased(ProtocolKind k) {
  return k == ProtocolKind::kHlrc || k == ProtocolKind::kOhlrc || k == ProtocolKind::kAurc;
}
constexpr bool IsOverlapped(ProtocolKind k) {
  return k == ProtocolKind::kOlrc || k == ProtocolKind::kOhlrc;
}
const char* ProtocolName(ProtocolKind k);

// How pages are assigned to homes (home-based protocols only).
enum class HomePolicy : int {
  kBlock = 0,       // Contiguous chunks of pages per node (matches the apps'
                    // block partitioning; the paper's "chosen intelligently").
  kRoundRobin = 1,  // Page p lives on node p mod N.
  kSingleNode = 2,  // All homes on node 0 (worst case, for ablations).
};
const char* HomePolicyName(HomePolicy p);

// When the homeless protocols create diffs (paper §2.1: "eagerly, at the end
// of each interval, or lazily, on demand").
enum class DiffPolicy : int {
  kEager = 0,  // At interval end (the paper's implementation; matches OLRC).
  kLazy = 1,   // On first request (TreadMarks): saves creating diffs nobody
               // ever fetches, at the cost of doing the work on the request
               // path.
};
const char* DiffPolicyName(DiffPolicy p);

// Intentionally-broken protocol variants, used ONLY by the checker's
// mutation regression tests (tests/test_check.cc, svmcheck --mutation) to
// prove the consistency oracle catches real protocol bugs. Each mutation
// silently corrupts one protocol action exactly once per run, in a way that
// cannot hang the run — only return stale data.
enum class TestMutation : int {
  kNone = 0,
  // HLRC/AURC: the home skips applying the first remote diff flush but still
  // advances its applied-flush timestamps, so fetches are served from a
  // stale master copy (lost update at the home).
  kHlrcSkipDiffApply = 1,
  // LRC/OLRC: the first write notice that would invalidate a mapped page is
  // dropped, so the node keeps reading its stale copy (lost invalidation).
  kLrcSkipInvalidate = 2,
};
const char* TestMutationName(TestMutation m);

struct ProtocolOptions {
  ProtocolKind kind = ProtocolKind::kHlrc;
  HomePolicy home_policy = HomePolicy::kBlock;
  DiffPolicy diff_policy = DiffPolicy::kEager;
  // AURC write-through amplification: the automatic-update hardware resends
  // a word each time it is stored; we observe only the final dirty words, so
  // traffic is modelled as amplification x dirty bytes.
  double aurc_write_amplification = 1.5;
  // Home migration (home-based protocols): when a page's home observes this
  // many consecutive diff flushes from the same remote writer, it transfers
  // the home to that writer — turning a chronically misplaced page into a
  // home-effect page (extension; the dynamic version of the paper's "homes
  // chosen intelligently", §2.2).
  bool migrate_homes = false;
  int migrate_threshold = 3;
  // Homeless protocols trigger garbage collection at a barrier when a node's
  // protocol memory exceeds this threshold.
  int64_t gc_threshold_bytes = 4ll << 20;
  // Diff granularity in bytes (4 or 8).
  int diff_word_bytes = 8;
  // Coalesced wire plane (--coalesce), protocol half: request combining at
  // the home — concurrent fetches for the same page version parked behind one
  // in-flight request are all answered from one shared immutable snapshot.
  // Default off: golden summaries pin the uncombined behavior.
  bool coalesce = false;
  // Combining barrier tree (--barrier-arity=N, N >= 2): barrier enters fan in
  // and releases fan out over an N-ary tree rooted at the manager instead of
  // the flat all-to-manager pattern, so the manager NIC serializes O(arity)
  // frames per barrier instead of O(nodes). 0 (or 1) keeps the paper's flat
  // centralized barrier.
  int barrier_arity = 0;
  // Test-only fault seeding (see TestMutation above). Never set outside the
  // checker; kNone leaves every protocol untouched.
  TestMutation mutation = TestMutation::kNone;
};

}  // namespace hlrc

#endif  // SRC_PROTO_OPTIONS_H_

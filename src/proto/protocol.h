// Base class shared by all four SVM protocols.
//
// One ProtocolNode lives on every simulated node. It owns the node's interval
// and vector-timestamp machinery, the distributed lock algorithm and the
// centralized barrier manager (paper §3.5), write-notice propagation, and the
// plumbing that routes remote-request servicing to the right processor
// (compute processor via a costed receive interrupt for the non-overlapped
// protocols, communication co-processor for the overlapped ones).
//
// Subclasses implement update handling: where diffs go at interval end and
// how a page fault is resolved (homeless diff collection for LRC/OLRC,
// home-page fetch for HLRC/OHLRC).
#ifndef SRC_PROTO_PROTOCOL_H_
#define SRC_PROTO_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/mem/diff.h"
#include "src/metrics/node_metrics.h"
#include "src/mem/page_table.h"
#include "src/mem/shared_space.h"
#include "src/net/network.h"
#include "src/proto/cost_model.h"
#include "src/proto/interval.h"
#include "src/proto/interval_log.h"
#include "src/proto/options.h"
#include "src/proto/vector_clock.h"
#include "src/sim/completion.h"
#include "src/sim/processor.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace hlrc {

// Per-node protocol event counters (paper Table 4) and wait accounting
// (paper Figures 3 and 4).
struct ProtoStats {
  int64_t read_misses = 0;
  int64_t write_faults = 0;
  int64_t page_fetches = 0;  // Full pages fetched from a remote node.
  int64_t diffs_created = 0;
  int64_t diffs_applied = 0;
  int64_t diff_requests_sent = 0;
  int64_t lock_acquires = 0;   // Application-level acquires.
  int64_t remote_acquires = 0; // Acquires that needed messages.
  int64_t barriers = 0;
  int64_t intervals_closed = 0;
  int64_t write_notices_received = 0;
  int64_t pages_invalidated = 0;
  int64_t gc_runs = 0;
  // Request combining (ProtocolOptions::coalesce): page replies served from a
  // snapshot shared with at least one other parked requester. Not part of the
  // golden summary (zero with coalescing off).
  int64_t page_replies_combined = 0;

  WaitBreakdown waits;

  // Protocol memory high-water mark (Table 6).
  int64_t proto_mem_highwater = 0;

  // Interval-metadata component of the high-water mark (bytes of interval
  // records / write notices held in the interval log), tracked separately so
  // table6_memory can attribute metadata overhead. Not part of the run
  // summary or golden output.
  int64_t interval_meta_highwater = 0;
};

// One node's barrier arrival — its id and the vector time it arrived with.
// The combining barrier tree ships whole subtrees of these in one enter.
struct BarrierArrival {
  NodeId node = kInvalidNode;
  VectorClock vt;
};

class ProtocolNode {
 public:
  // Wiring provided by svm::System.
  struct Env {
    Engine* engine = nullptr;
    Network* network = nullptr;
    Processor* cpu = nullptr;  // Compute processor.
    Processor* cop = nullptr;  // Communication co-processor.
    PageTable* pages = nullptr;
    const SharedSpace* space = nullptr;  // For allocation-aware home placement.
    const CostModel* costs = nullptr;
    const ProtocolOptions* options = nullptr;
    TraceLog* trace = nullptr;  // Optional structured event trace.
    NodeId self = kInvalidNode;
    int nodes = 0;
  };

  static std::unique_ptr<ProtocolNode> Create(const Env& env);

  explicit ProtocolNode(const Env& env);
  virtual ~ProtocolNode();
  ProtocolNode(const ProtocolNode&) = delete;
  ProtocolNode& operator=(const ProtocolNode&) = delete;

  // ---- Application-facing operations --------------------------------------

  Task<void> Acquire(LockId lock);
  Task<void> Release(LockId lock);
  Task<void> Barrier(BarrierId barrier);

  // One contiguous page range of an access grant.
  struct PageSpan {
    PageId first;
    PageId last;
    bool write;
  };

  // Ensures every page in `spans` is accessible at the requested level, then
  // returns from a scan pass that performed no fault. That final pass runs
  // synchronously with the caller's resumption, so the grant holds until the
  // application's next co_await: this mirrors hardware-MMU semantics, where a
  // store after an asynchronous interval close (which write-protects pages)
  // would re-fault. Callers must perform their stores before suspending
  // again.
  Task<void> EnsureAccessSpans(std::vector<PageSpan> spans);

  // Convenience single-range form.
  Task<void> EnsureAccess(PageId first, PageId last, bool write);

  // ---- Network entry -------------------------------------------------------

  void HandleMessage(Message msg);

  // ---- Introspection -------------------------------------------------------

  const ProtoStats& stats() const { return stats_; }
  ProtoStats& mutable_stats() { return stats_; }
  const VectorClock& vt() const { return vt_; }

  // Current protocol memory footprint: interval records + twins + subclass
  // state (stored diffs, per-page timestamp vectors, ...).
  virtual int64_t ProtocolMemoryBytes() const;

  NodeId self() const { return env_.self; }
  int nodes() const { return env_.nodes; }

  // Number of pages actually allocated by the application; the block home
  // policy distributes over this range. Set by System at run start.
  void SetUsedPages(int used) { used_pages_ = used; }

  // Attaches a structured trace sink (System::EnableTracing).
  void SetTraceLog(TraceLog* trace) { env_.trace = trace; }

  // Attaches a causal span tracer (System::EnableSpans). Pure observation:
  // span recording must not change a single simulated timestamp (pinned by
  // test_golden_determinism). Null (the default) keeps every recording site
  // a single-branch no-op.
  void SetSpanTracer(SpanTracer* spans) { spans_ = spans; }

  // Attaches pre-resolved metric instruments (System::EnableMetrics). Null
  // (the default) keeps every recording site a single-branch no-op.
  void SetMetrics(ProtoMetrics* metrics) { metrics_ = metrics; }

  // Attaches a coverage observer (System::SetCoverageObserver). The protocol
  // emits kPageTransition points for every page-protection change,
  // kSyncEpoch points for write-notice batches at grants/releases, and
  // kInterval points at interval close. Pure observation; null (the
  // default) keeps every emitting site a single-branch no-op.
  void SetCoverageObserver(CoverageObserver* cov) { coverage_ = cov; }

 protected:
  // ---- Subclass interface --------------------------------------------------

  // Called when an interval with dirty pages closes, before the record is
  // published. Computes diffs (data-wise, instantly) and may remove pages
  // whose diff turned out empty (a write that did not change the page needs
  // no write notice). Returns compute-processor costs to charge; `post` runs
  // after the costs have been charged (it sends diff flushes for the
  // non-overlapped home-based protocol, or schedules co-processor diffing for
  // the overlapped ones).
  struct CloseActions {
    SimTime protect_cost = 0;  // Reprotection of dirty pages.
    SimTime diff_cost = 0;     // Diff creation on the compute processor.
    std::function<void()> post;
    SimTime TotalCpu() const { return protect_cost + diff_cost; }
  };
  virtual void OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) = 0;

  // Invalidation bookkeeping for one write notice. Returns true if the page
  // mapping was actually invalidated (for cost accounting).
  virtual bool OnWriteNotice(const IntervalRecord& rec, PageId page) = 0;

  // Brings `page` up to date after a fault. The page-fault entry cost has
  // already been charged. Runs on the faulting node's app coroutine.
  virtual Task<void> ResolveFault(PageId page, bool write) = 0;

  // Handles protocol-specific messages (diff/page/GC traffic).
  virtual void HandleProtocolMessage(Message msg) = 0;

  // Memory used by subclass data structures (Table 6).
  virtual int64_t SubclassMemoryBytes() const = 0;

  // Barrier-manager hook: runs after all nodes arrived, before releases are
  // sent. The homeless protocols run garbage collection here. `mem_pressure`
  // is true if any node flagged its protocol memory above threshold.
  virtual Task<void> BarrierPreRelease(BarrierId barrier, bool mem_pressure);

  // For the GC orchestration: the write notices node `node` is missing, i.e.
  // exactly what its barrier release will carry. Only valid at the barrier
  // manager between all-arrived and the releases.
  IntervalBatch PackBarrierReleaseFor(BarrierId barrier, NodeId node) const;

  // Called on every node when a barrier release is applied; lets subclasses
  // prune per-barrier state.
  virtual void OnBarrierReleased();

  // Release-consistency flush barrier: `done` runs once every outstanding
  // eager update of this node has been acknowledged. Grants and barrier
  // enters are gated on it, so an eager protocol's writes are globally
  // visible before any happens-before edge leaves the node. The default (all
  // lazy protocols) completes immediately.
  virtual void FlushBarrier(std::function<void()> done) { done(); }

  // ---- Services shared with subclasses -------------------------------------

  // Charges `cost` on the compute processor from the app coroutine.
  Task<void> ChargeCpu(SimTime cost, BusyCat cat);

  // Routes request servicing: `interrupt` charges the receive-interrupt cost
  // first (non-overlapped protocols servicing unsolicited requests on the
  // compute processor); on_coproc selects the co-processor.
  void Serve(bool on_coproc, bool interrupt, SimTime cost, BusyCat cat,
             std::function<void()> fn);

  // Convenience: service routing for a request-type message under this
  // protocol's overlap policy for data operations.
  void ServeDataRequest(SimTime cost, BusyCat cat, std::function<void()> fn);

  // Closes the current interval if it has dirty pages: bumps the vector
  // timestamp, records the interval, reprotects dirty pages, and invokes
  // OnIntervalClosed. Returns actions for the caller to charge/run.
  CloseActions CloseIntervalPrepared();

  // App-side interval close (charges on the app coroutine).
  Task<void> CloseIntervalFromApp();

  // Marks a page dirty in the current open interval.
  void MarkDirty(PageId page);
  bool IsDirtyInOpenInterval(PageId page) const;

  // Applies a batch of interval records learned from a grant or release.
  // Returns the cpu cost of the write-notice handling (already includes page
  // invalidation costs). The handles are stored as-is: the receiver's log
  // aliases the sender's records instead of deep-copying them.
  SimTime ApplyIntervals(const IntervalBatch& recs);

  // Packs all known intervals the node `vt` has not seen (handle copies, no
  // record copies).
  IntervalBatch PackIntervalsFor(const VectorClock& vt) const;

  // Sends a message, filling in the source.
  void Send(NodeId dst, MsgType type, int64_t update_bytes, int64_t protocol_bytes,
            std::unique_ptr<Payload> payload);

  // Home of a page under the configured policy (home-based protocols).
  NodeId HomeOf(PageId page) const;

  bool overlapped() const { return IsOverlapped(env_.options->kind); }
  bool home_based() const { return IsHomeBased(env_.options->kind); }

  // Updates the protocol-memory high-water mark.
  void NoteMemory();

  // Records a structured trace event (no-op when tracing is off).
  void Trace(TraceEvent event, int64_t arg0 = 0, int64_t arg1 = 0) const {
    if (env_.trace != nullptr) {
      env_.trace->Record(env_.self, env_.engine->Now(), event, arg0, arg1);
    }
  }

  // Metric recording helpers: no-ops when metrics are off, O(1) otherwise.
  // Subclasses call them at the sites where the corresponding ProtoStats
  // counter is bumped, adding per-page attribution the scalars cannot carry.
  void MetricFetch(PageId page, int64_t bytes) const {
    if (metrics_ != nullptr) {
      metrics_->heat->OnFetch(page, bytes);
    }
  }
  void MetricDiffCreated(PageId page, int64_t bytes) const {
    if (metrics_ != nullptr) {
      metrics_->heat->OnDiffCreated(page, bytes);
    }
  }
  void MetricDiffApplied(PageId page, int64_t bytes) const {
    if (metrics_ != nullptr) {
      metrics_->heat->OnDiffApplied(page, bytes);
    }
  }

  // Whether interval record vts are shipped on the wire (homeless only).
  bool ShipVt() const { return !home_based(); }

  int64_t IntervalBytes(const IntervalRecord& rec) const {
    return rec.EncodedSize(ShipVt());
  }

  const Env& env() const { return env_; }
  Engine* engine() const { return env_.engine; }
  const CostModel& costs() const { return *env_.costs; }
  PageTable& pages() const { return *env_.pages; }

  // Wait-accounting helper: measures the wall time from construction to
  // Finish() minus the compute-processor busy time accrued in between, and
  // adds it to `stats_.waits[cat]`. If `deduct` is not kNone the same amount
  // is subtracted from that category (used to carve GC waits out of the
  // enclosing barrier wait).
  struct WaitScope {
    ProtocolNode* node;
    WaitCat cat;
    WaitCat deduct;
    SimTime t0;
    SimTime busy0;
    WaitScope(ProtocolNode* n, WaitCat c, WaitCat d = WaitCat::kNone);
    void Finish();
  };

  // Coverage emission helper (no-op when no observer is installed).
  void Cover(CoverageObserver::Domain domain, uint64_t a, uint64_t b) const {
    if (coverage_ != nullptr) {
      coverage_->Cover(domain, a, b);
    }
  }

  // ---- Span tracing (src/tracing/span.h) -----------------------------------
  //
  // `active_span_` is the causal context of the code currently running on
  // this node: Send stamps it on outgoing Messages, and SpanCause scopes it
  // around synchronous regions. It does NOT survive engine scheduling —
  // deferred callbacks and coroutine resumptions must capture their cause
  // when created and re-establish it with SpanCause inside. All helpers are
  // single-branch no-ops when tracing is off.

  // Opens a span at Now() on this node.
  SpanId SpanBegin(SpanKind kind, int64_t a0 = 0, int64_t a1 = 0) {
    return spans_ != nullptr
               ? spans_->Begin(kind, env_.self, env_.engine->Now(), kNoSpan, a0, a1)
               : kNoSpan;
  }
  // Closes `id` at Now().
  void SpanEnd(SpanId id) {
    if (spans_ != nullptr) {
      spans_->End(id, env_.engine->Now());
    }
  }
  // Records a closed span [t0, Now()] causally linked from `cause`. Interior
  // (non-root) kinds are recorded only when they have a cause: an interior
  // span with no in-edge would be an orphan in the DAG, so untraced paths
  // (e.g. garbage-collection traffic) simply record nothing downstream.
  SpanId SpanEmit(SpanKind kind, SimTime t0, SpanId cause, int64_t a0 = 0,
                  int64_t a1 = 0) {
    if (spans_ == nullptr || (cause == kNoSpan && !SpanKindIsRoot(kind))) {
      return kNoSpan;
    }
    const SpanId id =
        spans_->Emit(kind, env_.self, t0, env_.engine->Now(), kNoSpan, a0, a1);
    spans_->AddLink(id, cause);
    return id;
  }
  void SpanLink(SpanId target, SpanId from) {
    if (spans_ != nullptr) {
      spans_->AddLink(target, from);
    }
  }
  // Stamps this node's current vector clock on `id` (root spans).
  void SpanVt(SpanId id) {
    if (spans_ != nullptr) {
      spans_->SetVt(id, vt_.raw());
    }
  }

  // Establishes `span` as the active causal context for a synchronous region
  // (restores the previous context on scope exit). Do not hold across
  // co_await: the restored value would be stale.
  struct SpanCause {
    ProtocolNode* node;
    SpanId saved;
    SpanCause(ProtocolNode* n, SpanId span) : node(n), saved(n->active_span_) {
      n->active_span_ = span;
    }
    ~SpanCause() { node->active_span_ = saved; }
    SpanCause(const SpanCause&) = delete;
    SpanCause& operator=(const SpanCause&) = delete;
  };

  SpanId active_span() const { return active_span_; }
  // The fault root currently being resolved on this node's app coroutine
  // (kNoSpan outside ResolveFault). Survives co_await, unlike active_span_.
  SpanId cur_fault_span() const { return cur_fault_span_; }
  // The interval-close span of the interval being closed; valid during
  // OnIntervalClosed for subclasses to capture into deferred flush lambdas.
  SpanId interval_close_span() const { return interval_close_span_; }
  // The manager's gather span for `barrier`, between first arrival and the
  // releases (kNoSpan otherwise); lets subclass pre-release work (GC) stay
  // connected to the barrier chain.
  SpanId BarrierGatherSpan(BarrierId barrier) const;

  ProtoStats stats_;
  ProtoMetrics* metrics_ = nullptr;
  CoverageObserver* coverage_ = nullptr;
  SpanTracer* spans_ = nullptr;
  SpanId active_span_ = kNoSpan;
  SpanId cur_fault_span_ = kNoSpan;
  SpanId interval_close_span_ = kNoSpan;
  VectorClock vt_;

  // All interval records known to this node — one append-only log per
  // writer, holding shared immutable handles — pruned at barriers once every
  // node has seen them.
  IntervalLog interval_log_;
  int64_t known_interval_bytes_ = 0;

  // Looks up a known interval record; aborts if missing.
  const IntervalRecord& KnownInterval(NodeId writer, uint32_t id) const;

 private:
  // ---- Lock algorithm ------------------------------------------------------

  struct LockState {
    bool held = false;    // Token cached here.
    bool in_use = false;  // App is inside acquire..release.
    NodeId pending_requester = kInvalidNode;
    VectorClock pending_vt;
    std::unique_ptr<Completion> waiting;  // Local acquire waiting for grant.
    // Span tracing: the parked requester's causal context (the forward's
    // service span) and the holder's critical-section span.
    SpanId pending_span = kNoSpan;
    SpanId hold_span = kNoSpan;
  };
  struct LockManagerState {
    NodeId last_requester = kInvalidNode;
  };

  NodeId LockManagerNode(LockId lock) const {
    return static_cast<NodeId>(lock % env_.nodes);
  }

  LockState& Lock(LockId lock);
  LockManagerState& ManagerState(LockId lock);

  void HandleLockRequest(LockId lock, NodeId requester, const VectorClock& rvt);
  void HandleLockForward(LockId lock, NodeId requester, const VectorClock& rvt);
  // `cause` is the requester's causal context (span tracing): the forward's
  // service span for an immediate grant, or the parked pending_span when the
  // grant happens at release time. kNoSpan when tracing is off.
  void GrantLock(LockId lock, NodeId requester, const VectorClock& rvt, SpanId cause);
  void HandleLockGrant(LockId lock, IntervalBatch intervals);

  // ---- Barrier algorithm ---------------------------------------------------

  static constexpr NodeId kBarrierManager = 0;

  struct BarrierManagerState {
    int arrived = 0;
    bool mem_pressure = false;
    bool launched = false;  // BarrierAllArrived already triggered.
    std::vector<VectorClock> arrival_vt;  // Indexed by node.
    std::vector<bool> present;
    // Span tracing: first arrival -> releases, linked from every arrival.
    SpanId gather_span = kNoSpan;
  };

  // Combining barrier tree (ProtocolOptions::barrier_arity >= 2): per-node,
  // per-barrier fan-in state. A node accumulates its own arrival plus its
  // children's combined enters; once the whole subtree has arrived it sends
  // one combined enter upward (the root instead builds BarrierManagerState
  // and runs the flat release machinery toward its direct children).
  struct BarrierTreeState {
    std::vector<BarrierArrival> arrivals;  // Subtree (node, arrival-vt) pairs.
    bool mem_pressure = false;
    bool launched = false;  // Combined enter already sent / root launched.
    SpanId gather_span = kNoSpan;
  };

  bool TreeBarrier() const { return env_.options->barrier_arity >= 2; }
  NodeId TreeParent(NodeId n) const {
    return (n - 1) / env_.options->barrier_arity;
  }
  NodeId TreeFirstChild(NodeId n) const {
    return n * env_.options->barrier_arity + 1;
  }
  int TreeSubtreeSize(NodeId n) const;

  // Folds `arrivals` (and their interval records) into this node's fan-in
  // state; forwards the combined enter upward once the subtree is complete.
  void TreeBarrierAccumulate(BarrierId barrier, std::vector<BarrierArrival> arrivals,
                             IntervalBatch intervals, bool mem_pressure);
  void TreeMaybeForwardUp(BarrierId barrier);

  void HandleBarrierEnter(BarrierId barrier, NodeId node, const VectorClock& nvt,
                          IntervalBatch intervals, bool mem_pressure);
  void BarrierAllArrived(BarrierId barrier);
  void SendBarrierReleases(BarrierId barrier);
  void HandleBarrierRelease(BarrierId barrier, IntervalBatch intervals,
                            const VectorClock& max_vt);

  Env env_;

  std::unordered_map<LockId, LockState> locks_;
  std::unordered_map<LockId, LockManagerState> lock_managers_;

  std::unordered_map<BarrierId, BarrierManagerState> barrier_mgr_;
  std::unordered_map<BarrierId, BarrierTreeState> barrier_tree_;
  std::unique_ptr<Completion> barrier_waiting_;
  VectorClock sent_to_manager_vt_;

  // Open-interval dirty set.
  std::vector<PageId> open_dirty_;
  std::vector<bool> dirty_flag_;  // Indexed by page.

  int used_pages_ = 0;  // 0 => whole space.
};

// Message payloads shared by all protocols.

struct LockRequestPayload : Payload {
  LockId lock;
  NodeId requester;
  VectorClock vt;
};

struct LockForwardPayload : Payload {
  LockId lock;
  NodeId requester;
  VectorClock vt;
};

// Grant/release payloads carry shared handles to immutable records: an
// N-node fan-out aliases one record N times instead of deep-copying it. The
// reliable channel may retransmit a whole Message (aliased, not copied), so
// immutability-after-publish is load-bearing, not just an optimization.

struct LockGrantPayload : Payload {
  LockId lock;
  IntervalBatch intervals;
};

struct BarrierEnterPayload : Payload {
  BarrierId barrier;
  NodeId node;
  VectorClock vt;
  IntervalBatch intervals;
  bool mem_pressure = false;
  // Combining barrier tree only: every (node, arrival-vt) pair of the
  // sender's subtree, the sender included. Empty for a flat enter.
  std::vector<BarrierArrival> arrivals;
};

struct BarrierReleasePayload : Payload {
  BarrierId barrier;
  IntervalBatch intervals;
  VectorClock max_vt;
};

}  // namespace hlrc

#endif  // SRC_PROTO_PROTOCOL_H_

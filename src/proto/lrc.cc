#include "src/proto/lrc.h"

#include <algorithm>

#include "src/common/log.h"
#include <cstring>
#include <utility>

namespace hlrc {

// ---------------------------------------------------------------------------
// Interval close: create diffs eagerly (paper §3: the implementation computes
// diffs at the end of each interval, on the compute processor for LRC and on
// the co-processor for OLRC).

void LrcProtocol::OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) {
  PageList kept;
  std::vector<std::pair<DiffKey, SimTime>> cop_work;
  for (PageId p : rec->pages) {
    HLRC_CHECK(pages().HasTwin(p));
    Diff d = CreateDiff(p, pages().State(p).twin.get(), pages().PageData(p),
                        pages().page_size(), env().options->diff_word_bytes);
    pages().DropTwin(p);
    if (d.Empty()) {
      continue;  // The write changed nothing: no write notice needed.
    }
    kept.push_back(p);
    Trace(TraceEvent::kDiffCreate, p, d.DataBytes());
    const SimTime create_cost = costs().DiffCreateCost(pages().page_size(), d.DataBytes());
    // With the lazy policy the diff work is deferred to the first request
    // (paper §2.1: diffs are created "eagerly, at the end of each interval,
    // or lazily, on demand"). Overlapped diffing is inherently asynchronous
    // already, so laziness applies to the compute-processor path only.
    const bool lazy = env().options->diff_policy == DiffPolicy::kLazy && !overlapped();
    ++stats_.diffs_created;
    MetricDiffCreated(p, d.DataBytes());
    SetCovered(p, self(), rec->id);

    StoredDiff sd;
    sd.bytes = d.EncodedSize();
    sd.diff = std::move(d);
    sd.vt = rec->vt;
    sd.ready = !overlapped();
    sd.cost_charged = !lazy;
    sd.create_cost = create_cost;
    diff_store_bytes_ += sd.bytes;
    diff_store_.emplace(DiffKey{p, rec->id}, std::move(sd));
    // Interval ids grow monotonically, so plain assignment keeps the maximum.
    latest_diff_id_[p] = rec->id;

    if (overlapped()) {
      cop_work.emplace_back(DiffKey{p, rec->id}, create_cost);
    } else if (!lazy) {
      actions->diff_cost += create_cost;
    }
  }
  rec->pages = std::move(kept);
  if (!cop_work.empty()) {
    actions->post = [this, cop_work = std::move(cop_work)] {
      for (const auto& [key, cost] : cop_work) {
        env().cop->RunService(cost, BusyCat::kDiffCreate,
                              [this, key] { MarkDiffReady(key.first, key.second); });
      }
    };
  }
  NoteMemory();
}

void LrcProtocol::MarkDiffReady(PageId page, uint32_t id) {
  auto it = diff_store_.find(DiffKey{page, id});
  if (it == diff_store_.end()) {
    // A barrier-time garbage collection discarded the diff while its (purely
    // time-model) co-processor computation was still queued. No request can
    // arrive for it anymore: all pending write notices were collected too.
    HLRC_CHECK(diff_ready_waiters_.find(DiffKey{page, id}) == diff_ready_waiters_.end());
    return;
  }
  it->second.ready = true;
  auto wit = diff_ready_waiters_.find(DiffKey{page, id});
  if (wit != diff_ready_waiters_.end()) {
    std::vector<std::function<void()>> waiters = std::move(wit->second);
    diff_ready_waiters_.erase(wit);
    for (auto& w : waiters) {
      w();
    }
  }
}

// ---------------------------------------------------------------------------
// Write notices.

bool LrcProtocol::OnWriteNotice(const IntervalRecord& rec, PageId page) {
  PageState& st = pages().State(page);
  if (env().options->mutation == TestMutation::kLrcSkipInvalidate && !mutation_fired_ &&
      st.prot != PageProt::kNone) {
    // Seeded bug (TestMutation): drop the first invalidating write notice
    // entirely — the node keeps reading its stale mapped copy and never
    // fetches this interval's diff. The consistency oracle must catch it.
    mutation_fired_ = true;
    return false;
  }
  pending_[page].push_back(PendingWn{rec.writer, rec.id, rec.vt});
  ++pending_count_;
  const bool was_mapped = st.prot != PageProt::kNone;
  st.prot = PageProt::kNone;
  return was_mapped;
}

bool LrcProtocol::HasPending(PageId page) const {
  auto it = pending_.find(page);
  return it != pending_.end() && !it->second.empty();
}

uint32_t LrcProtocol::GetCovered(PageId page, NodeId writer) const {
  auto it = covered_.find(page);
  if (it == covered_.end()) {
    return 0;
  }
  return it->second[static_cast<size_t>(writer)];
}

void LrcProtocol::SetCovered(PageId page, NodeId writer, uint32_t id) {
  auto it = covered_.find(page);
  if (it == covered_.end()) {
    it = covered_.emplace(page, std::vector<uint32_t>(static_cast<size_t>(nodes()), 0)).first;
  }
  uint32_t& slot = it->second[static_cast<size_t>(writer)];
  slot = std::max(slot, id);
}

void LrcProtocol::PrunePendingCovered(PageId page) {
  auto it = pending_.find(page);
  if (it == pending_.end()) {
    return;
  }
  auto& vec = it->second;
  const size_t before = vec.size();
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [this, page](const PendingWn& wn) {
                             return wn.id <= GetCovered(page, wn.writer);
                           }),
            vec.end());
  pending_count_ -= static_cast<int64_t>(before - vec.size());
  if (vec.empty()) {
    pending_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Fault resolution.

Task<void> LrcProtocol::ResolveFault(PageId page, bool write) {
  // As in the home-based protocol, every co_await can be crossed by a write
  // notice (barrier-manager interval application, charges stretched by
  // interrupts), so resolution restarts whenever the page is invalidated
  // mid-flight - the software equivalent of the store re-faulting.
  while (true) {
    if (!pages().State(page).has_copy) {
      co_await FetchFullPage(page);
      continue;
    }
    if (HasPending(page)) {
      co_await FetchDiffs(page);
      continue;
    }
    PageState& st = pages().State(page);
    if (st.prot == PageProt::kNone) {
      st.prot = PageProt::kRead;
      co_await ChargeCpu(costs().page_protect, BusyCat::kFault);
      continue;  // Re-check: the charge may have crossed an invalidation.
    }
    if (!write) {
      co_return;
    }
    if (!pages().HasTwin(page)) {
      co_await ChargeCpu(costs().TwinCost(pages().page_size()), BusyCat::kTwin);
      if (pages().State(page).prot == PageProt::kNone || HasPending(page)) {
        continue;  // Invalidated during the twin charge: the data is stale.
      }
      pages().MakeTwin(page);
    }
    pages().State(page).prot = PageProt::kReadWrite;
    co_await ChargeCpu(costs().page_protect, BusyCat::kFault);
    if (pages().State(page).prot == PageProt::kNone) {
      continue;  // Invalidated during the protect charge.
    }
    MarkDirty(page);
    co_return;
  }
}

Task<void> LrcProtocol::FetchDiffs(PageId page) {
  // Group the page's pending write notices by writer; one request per writer
  // (paper §2.1: "the acquiring processor may have to visit more than one
  // processor to obtain diffs"). The per-writer buckets are reusable scratch
  // (filled and drained synchronously, before the suspension below), visited
  // in ascending writer order like the std::map they replaced.
  if (writer_bucket_.empty()) {
    writer_bucket_.resize(static_cast<size_t>(nodes()));
  }
  HLRC_DCHECK(writer_scratch_.empty());
  for (const PendingWn& wn : pending_[page]) {
    std::vector<uint32_t>& bucket = writer_bucket_[static_cast<size_t>(wn.writer)];
    if (bucket.empty()) {
      writer_scratch_.push_back(wn.writer);
    }
    bucket.push_back(wn.id);
  }
  std::sort(writer_scratch_.begin(), writer_scratch_.end());
  HLRC_CHECK(!writer_scratch_.empty());

  HLRC_CHECK(faults_.find(page) == faults_.end());
  FaultCtx& ctx = faults_[page];
  ctx.replies_needed = static_cast<int>(writer_scratch_.size());
  ctx.done = std::make_unique<Completion>(engine());
  stats_.diff_requests_sent += static_cast<int64_t>(writer_scratch_.size());

  {
    // Chain the requests from the fault root (kNoSpan under GC validation).
    // Scoped: the context must not survive across the suspension below.
    SpanCause sc(this, cur_fault_span_);
    for (NodeId writer : writer_scratch_) {
      HLRC_CHECK(writer != self());
      std::vector<uint32_t>& ids = writer_bucket_[static_cast<size_t>(writer)];
      const int64_t id_count = static_cast<int64_t>(ids.size());
      auto payload = std::make_unique<DiffRequestPayload>();
      payload->page = page;
      payload->requester = self();
      payload->intervals = std::move(ids);
      ids.clear();  // Moved-from: make the bucket explicitly empty for reuse.
      Send(writer, MsgType::kDiffRequest, 0, 16 + 4 * id_count, std::move(payload));
    }
    writer_scratch_.clear();
  }

  co_await *ctx.done;

  auto collected = std::move(faults_[page].collected);
  faults_.erase(page);

  // Apply in happens-before order; concurrent diffs (false sharing) touch
  // disjoint words and get a deterministic tiebreak.
  std::sort(collected.begin(), collected.end(),
            [](const auto& a, const auto& b) { return std::get<0>(a).TotalOrderLess(std::get<0>(b)); });

  for (auto& [vt, id, writer, diff] : collected) {
    const SimTime t_apply = engine()->Now();
    co_await ChargeCpu(costs().DiffApplyCost(diff.DataBytes()), BusyCat::kDiffApply);
    SpanEmit(SpanKind::kDiffApply, t_apply, cur_fault_span_, page, writer);
    HLRC_TRACE("[%lld] node %d: apply diff page=%d writer=%d id=%u bytes=%lld",
               (long long)engine()->Now(), self(), page, writer, id,
               (long long)diff.DataBytes());
    Trace(TraceEvent::kDiffApply, page, diff.DataBytes());
    ApplyDiff(diff, pages().PageData(page), pages().page_size());
    if (pages().HasTwin(page)) {
      // Keep the twin in sync so the next local diff contains only local
      // writes (multiple-writer correctness).
      ApplyDiff(diff, pages().State(page).twin.get(), pages().page_size());
    }
    ++stats_.diffs_applied;
    MetricDiffApplied(page, diff.DataBytes());
    SetCovered(page, writer, id);
  }
  PrunePendingCovered(page);
}

Task<void> LrcProtocol::FetchFullPage(PageId page) {
  auto hint = owner_hint_.find(page);
  const NodeId target = hint != owner_hint_.end() ? hint->second : 0;
  HLRC_CHECK(target != self());
  ++stats_.page_fetches;
  MetricFetch(page, pages().page_size());
  Trace(TraceEvent::kPageFetch, page, target);

  HLRC_CHECK(faults_.find(page) == faults_.end());
  FaultCtx& ctx = faults_[page];
  ctx.replies_needed = 1;
  ctx.done = std::make_unique<Completion>(engine());

  auto payload = std::make_unique<HomelessPageRequestPayload>();
  payload->page = page;
  payload->requester = self();
  {
    SpanCause sc(this, cur_fault_span_);
    Send(target, MsgType::kPageRequest, 0, 16, std::move(payload));
  }

  co_await *ctx.done;

  FaultCtx& done_ctx = faults_[page];
  InstallPageData(page, done_ctx.page_data);
  for (const auto& [writer, id] : done_ctx.page_covered) {
    SetCovered(page, writer, id);
  }
  faults_.erase(page);
  pages().State(page).has_copy = true;
  PrunePendingCovered(page);
}

void LrcProtocol::InstallPageData(PageId page, const std::vector<std::byte>& data) {
  HLRC_CHECK(static_cast<int64_t>(data.size()) == pages().page_size());
  std::byte* dst = pages().PageData(page);
  if (pages().HasTwin(page)) {
    // Preserve local unflushed writes: reapply the local delta on top of the
    // incoming copy, and rebase the twin.
    Diff local = CreateDiff(page, pages().State(page).twin.get(), dst, pages().page_size(),
                            env().options->diff_word_bytes);
    std::memcpy(dst, data.data(), data.size());
    std::memcpy(pages().State(page).twin.get(), data.data(), data.size());
    ApplyDiff(local, dst, pages().page_size());
  } else {
    std::memcpy(dst, data.data(), data.size());
  }
}

// ---------------------------------------------------------------------------
// Remote request servicing.

void LrcProtocol::TrySendDiffReply(PageId page, NodeId requester,
                                   const std::vector<uint32_t>& ids) {
  for (uint32_t id : ids) {
    auto it = diff_store_.find(DiffKey{page, id});
    HLRC_CHECK_MSG(it != diff_store_.end(), "node %d: no diff for page %d interval %u", self(),
                   page, id);
    if (!it->second.ready) {
      // Diff computation still in progress on the co-processor: queue the
      // request until it completes (paper §2.4.1). The retry runs from the
      // co-processor's completion, so re-establish the requester's causal
      // context explicitly.
      diff_ready_waiters_[DiffKey{page, id}].push_back(
          [this, page, requester, ids, cause = active_span_] {
            SpanCause sc(this, cause);
            TrySendDiffReply(page, requester, ids);
          });
      return;
    }
  }
  // Lazy policy: diffs whose creation cost has not been charged yet are
  // computed now, on the serving processor, before the reply goes out.
  SimTime deferred_cost = 0;
  for (uint32_t id : ids) {
    StoredDiff& sd = diff_store_.at(DiffKey{page, id});
    if (!sd.cost_charged) {
      sd.cost_charged = true;
      deferred_cost += sd.create_cost;
    }
  }

  auto payload = std::make_unique<DiffReplyPayload>();
  payload->page = page;
  payload->writer = self();
  int64_t update_bytes = 0;
  for (uint32_t id : ids) {
    const StoredDiff& sd = diff_store_.at(DiffKey{page, id});
    payload->diffs.emplace_back(id, sd.diff);
    update_bytes += sd.bytes;
  }
  auto send = [this, requester, update_bytes, payload = std::make_shared<
                   std::unique_ptr<DiffReplyPayload>>(std::move(payload))]() mutable {
    Send(requester, MsgType::kDiffReply, update_bytes, 16, std::move(*payload));
  };
  if (deferred_cost > 0) {
    // The lazy diff creation sits on the requester's critical path: record it
    // and chain the reply from it.
    const SimTime t0 = engine()->Now();
    env().cpu->RunService(deferred_cost, BusyCat::kDiffCreate,
                          [this, t0, page, cause = active_span_,
                           send = std::move(send)]() mutable {
                            SpanCause sc(this,
                                         SpanEmit(SpanKind::kDiffCreate, t0, cause, page));
                            send();
                          });
  } else {
    send();
  }
}

void LrcProtocol::ServePageRequest(PageId page, NodeId requester) {
  Trace(TraceEvent::kPageServe, page, requester);
  const PageState& st = pages().State(page);
  HLRC_CHECK_MSG(st.has_copy, "node %d asked for page %d it does not hold", self(), page);
  auto payload = std::make_unique<HomelessPageReplyPayload>();
  payload->page = page;
  payload->data.assign(pages().PageData(page), pages().PageData(page) + pages().page_size());
  auto cit = covered_.find(page);
  if (cit != covered_.end()) {
    for (NodeId w = 0; w < nodes(); ++w) {
      if (cit->second[static_cast<size_t>(w)] > 0) {
        payload->covered.emplace_back(w, cit->second[static_cast<size_t>(w)]);
      }
    }
  }
  const int64_t covered_bytes = 16 + 8 * static_cast<int64_t>(payload->covered.size());
  Send(requester, MsgType::kPageReply, pages().page_size(), covered_bytes,
       std::move(payload));
}

void LrcProtocol::HandleProtocolMessage(Message msg) {
  const SpanId cause = msg.span;
  const SimTime t_arrive = engine()->Now();
  switch (msg.type) {
    case MsgType::kDiffRequest: {
      auto* p = static_cast<DiffRequestPayload*>(msg.payload.get());
      ServeDataRequest(costs().service_fixed, BusyCat::kService,
                       [this, cause, t_arrive, page = p->page, requester = p->requester,
                        ids = std::move(p->intervals)] {
                         SpanCause sc(this,
                                      SpanEmit(SpanKind::kService, t_arrive, cause, page));
                         TrySendDiffReply(page, requester, ids);
                       });
      return;
    }
    case MsgType::kDiffReply: {
      auto* p = static_cast<DiffReplyPayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/false, 0, BusyCat::kService,
            [this, cause, t_arrive, page = p->page, writer = p->writer,
             diffs = std::move(p->diffs)]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, page));
              auto it = faults_.find(page);
              HLRC_CHECK(it != faults_.end());
              FaultCtx& ctx = it->second;
              for (auto& [id, diff] : diffs) {
                // Look up the interval vt from the pending write notice.
                const std::vector<PendingWn>& pend = pending_.at(page);
                auto wit = std::find_if(pend.begin(), pend.end(), [&](const PendingWn& wn) {
                  return wn.writer == writer && wn.id == id;
                });
                HLRC_CHECK(wit != pend.end());
                ctx.collected.emplace_back(wit->vt, id, writer, std::move(diff));
              }
              if (--ctx.replies_needed == 0) {
                ctx.done->Complete();
              }
            });
      return;
    }
    case MsgType::kPageRequest: {
      auto* p = static_cast<HomelessPageRequestPayload*>(msg.payload.get());
      ServeDataRequest(costs().service_fixed, BusyCat::kService,
                       [this, cause, t_arrive, page = p->page, requester = p->requester] {
                         SpanCause sc(this,
                                      SpanEmit(SpanKind::kService, t_arrive, cause, page));
                         ServePageRequest(page, requester);
                       });
      return;
    }
    case MsgType::kPageReply: {
      auto* p = static_cast<HomelessPageReplyPayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/false, costs().page_protect, BusyCat::kFault,
            [this, cause, t_arrive, page = p->page, data = std::move(p->data),
             covered = std::move(p->covered)]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause, page));
              auto it = faults_.find(page);
              HLRC_CHECK(it != faults_.end());
              it->second.page_data = std::move(data);
              it->second.page_covered = std::move(covered);
              if (--it->second.replies_needed == 0) {
                it->second.done->Complete();
              }
            });
      return;
    }
    case MsgType::kGcRequest: {
      Serve(/*on_coproc=*/false, /*interrupt=*/true,
            costs().gc_fixed + costs().gc_per_page * static_cast<SimTime>(diff_store_.size()),
            BusyCat::kGc, [this, cause, t_arrive] {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause));
              HandleGcRequest();
            });
      return;
    }
    case MsgType::kGcInfo: {
      auto* p = static_cast<GcInfoPayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/false,
            costs().gc_per_page * static_cast<SimTime>(p->entries.size()), BusyCat::kGc,
            [this, cause, t_arrive, node = p->node, entries = std::move(p->entries)]() mutable {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause));
              HandleGcInfo(node, std::move(entries));
            });
      return;
    }
    case MsgType::kGcValidate: {
      auto* p = static_cast<GcValidatePayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/true,
            costs().gc_per_page * static_cast<SimTime>(p->validators.size()), BusyCat::kGc,
            [this, cause, t_arrive, validators = std::move(p->validators),
             intervals = std::move(p->intervals)] {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause));
              ApplyGcValidate(validators, intervals);
            });
      return;
    }
    case MsgType::kGcDone: {
      Serve(/*on_coproc=*/false, /*interrupt=*/false, costs().gc_fixed, BusyCat::kGc,
            [this, cause, t_arrive] {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause));
              HandleGcDone();
            });
      return;
    }
    default:
      HLRC_CHECK_MSG(false, "LRC node %d: unexpected message type %d", self(),
                     static_cast<int>(msg.type));
  }
}

// ---------------------------------------------------------------------------
// Garbage collection (paper §3.5). Orchestrated by the barrier manager while
// all nodes sit inside the barrier: collect diff inventories, let the last
// writer of each page validate its copy by fetching the missing diffs, then
// discard all diffs and write notices on release.

Task<void> LrcProtocol::BarrierPreRelease(BarrierId barrier, bool mem_pressure) {
  if (!mem_pressure) {
    co_return;
  }
  HLRC_CHECK(gc_coord_ == nullptr);
  gc_coord_ = std::make_unique<GcCoord>();
  gc_coord_->infos_pending = nodes();
  gc_coord_->dones_pending = nodes();
  gc_coord_->infos_done = std::make_unique<Completion>(engine());
  gc_coord_->dones_done = std::make_unique<Completion>(engine());

  {
    // GC happens while every node sits inside the barrier: chain it from the
    // manager's gather span so the cost lands on the barrier critical path.
    SpanCause sc(this, BarrierGatherSpan(barrier));
    for (NodeId n = 0; n < nodes(); ++n) {
      if (n == self()) {
        HandleGcRequest();
      } else {
        Send(n, MsgType::kGcRequest, 0, 8, std::make_unique<GcRequestPayload>());
      }
    }
  }
  co_await *gc_coord_->infos_done;

  // Assign validators: the last writer (maximal interval vt) of each page.
  std::vector<std::pair<PageId, NodeId>> validators;
  validators.reserve(gc_coord_->best.size());
  for (const auto& [page, best] : gc_coord_->best) {
    validators.emplace_back(page, best.second);
  }

  {
    SpanCause sc(this, BarrierGatherSpan(barrier));
    for (NodeId n = 0; n < nodes(); ++n) {
      IntervalBatch missing = PackBarrierReleaseFor(barrier, n);
      if (n == self()) {
        ApplyGcValidate(validators, missing);
      } else {
        int64_t bytes = 8 + 8 * static_cast<int64_t>(validators.size());
        for (const IntervalPtr& rec : missing) {
          bytes += IntervalBytes(*rec);
        }
        auto payload = std::make_unique<GcValidatePayload>();
        payload->validators = validators;
        payload->intervals = std::move(missing);
        Send(n, MsgType::kGcValidate, 0, bytes, std::move(payload));
      }
    }
  }
  co_await *gc_coord_->dones_done;
  gc_coord_.reset();
}

void LrcProtocol::HandleGcRequest() {
  // Report, per page we hold diffs for, our latest interval that wrote it.
  // The inventory index is maintained incrementally at diff creation, so this
  // is a sort of its keys, not a scan of the whole diff store.
  std::vector<PageId> inventory;
  inventory.reserve(latest_diff_id_.size());
  for (const auto& [page, id] : latest_diff_id_) {
    inventory.push_back(page);
  }
  std::sort(inventory.begin(), inventory.end());
  std::vector<std::tuple<PageId, uint32_t, VectorClock>> entries;
  entries.reserve(inventory.size());
  for (PageId page : inventory) {
    const uint32_t id = latest_diff_id_.at(page);
    entries.emplace_back(page, id, diff_store_.at(DiffKey{page, id}).vt);
  }

  const NodeId manager = 0;  // Barrier manager runs GC.
  if (self() == manager) {
    HandleGcInfo(self(), std::move(entries));
  } else {
    const int64_t bytes =
        8 + static_cast<int64_t>(entries.size()) * (12 + 4 * static_cast<int64_t>(nodes()));
    auto payload = std::make_unique<GcInfoPayload>();
    payload->node = self();
    payload->entries = std::move(entries);
    Send(manager, MsgType::kGcInfo, 0, bytes, std::move(payload));
  }
}

void LrcProtocol::HandleGcInfo(NodeId node,
                               std::vector<std::tuple<PageId, uint32_t, VectorClock>> entries) {
  HLRC_CHECK(gc_coord_ != nullptr);
  for (auto& [page, id, vt] : entries) {
    auto it = gc_coord_->best.find(page);
    if (it == gc_coord_->best.end() || it->second.first.TotalOrderLess(vt)) {
      gc_coord_->best[page] = {std::move(vt), node};
    }
  }
  if (--gc_coord_->infos_pending == 0) {
    gc_coord_->infos_done->Complete();
  }
}

void LrcProtocol::ApplyGcValidate(const std::vector<std::pair<PageId, NodeId>>& validators,
                                  const IntervalBatch& intervals) {
  HLRC_CHECK(gc_map_.empty());
  Trace(TraceEvent::kGcStart, static_cast<int64_t>(validators.size()));
  // Learn every pre-barrier interval now (the barrier release will re-send
  // them and dedup) so validation sees the complete pending sets.
  const SimTime wn_cost = ApplyIntervals(intervals);
  env().cpu->RunService(wn_cost, BusyCat::kWriteNotice, [] {});
  std::vector<PageId> mine;
  for (const auto& [page, validator] : validators) {
    gc_map_[page] = validator;
    if (validator == self() && HasPending(page)) {
      mine.push_back(page);
    }
  }
  SpawnDetached(ValidateForGc(std::move(mine)));
}

Task<void> LrcProtocol::ValidateForGc(std::vector<PageId> validate_pages) {
  WaitScope ws(this, WaitCat::kGc, WaitCat::kBarrier);
  for (PageId p : validate_pages) {
    co_await ChargeCpu(costs().gc_per_page, BusyCat::kGc);
    while (HasPending(p)) {
      co_await FetchDiffs(p);
    }
  }
  ws.Finish();

  const NodeId manager = 0;
  if (self() == manager) {
    HandleGcDone();
  } else {
    auto payload = std::make_unique<GcDonePayload>();
    payload->node = self();
    Send(manager, MsgType::kGcDone, 0, 8, std::move(payload));
  }
}

void LrcProtocol::HandleGcDone() {
  HLRC_CHECK(gc_coord_ != nullptr);
  if (--gc_coord_->dones_pending == 0) {
    gc_coord_->dones_done->Complete();
  }
}

void LrcProtocol::OnBarrierReleased() {
  if (gc_map_.empty()) {
    return;
  }
  ++stats_.gc_runs;
  Trace(TraceEvent::kGcEnd, static_cast<int64_t>(gc_map_.size()));
  const SimTime cost =
      costs().gc_fixed + costs().gc_per_page * static_cast<SimTime>(gc_map_.size());

  for (const auto& [page, validator] : gc_map_) {
    owner_hint_[page] = validator;
    if (validator != self() && HasPending(page)) {
      // Stale copy whose diffs are about to disappear: drop it; the next
      // access fetches the whole page from the validator.
      PageState& st = pages().State(page);
      st.has_copy = false;
      st.prot = PageProt::kNone;
      auto it = pending_.find(page);
      pending_count_ -= static_cast<int64_t>(it->second.size());
      pending_.erase(it);
      covered_.erase(page);
    }
  }
  diff_store_.clear();
  diff_store_bytes_ = 0;
  latest_diff_id_.clear();
  gc_map_.clear();
  env().cpu->RunService(cost, BusyCat::kGc, [] {});
  NoteMemory();
}

int64_t LrcProtocol::SubclassMemoryBytes() const {
  // Pending write notices carry the writer's full vector timestamp in the
  // homeless protocols (paper §4.7), so each costs 8 + 4N bytes.
  const int64_t wn_bytes = pending_count_ * (8 + 4 * static_cast<int64_t>(nodes()));
  const int64_t covered_bytes =
      static_cast<int64_t>(covered_.size()) * 4 * static_cast<int64_t>(nodes());
  return diff_store_bytes_ + wn_bytes + covered_bytes +
         static_cast<int64_t>(owner_hint_.size()) * 8;
}

}  // namespace hlrc

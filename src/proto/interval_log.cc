#include "src/proto/interval_log.h"

#include <algorithm>

#include "src/common/check.h"

namespace hlrc {

void IntervalLog::Reset(int writers) {
  HLRC_CHECK(writers >= 0);
  by_writer_.assign(static_cast<size_t>(writers), {});
  count_ = 0;
}

void IntervalLog::Append(IntervalPtr rec) {
  HLRC_CHECK(rec != nullptr);
  HLRC_CHECK_MSG(rec->writer >= 0 && rec->writer < writers(),
                 "interval writer %d outside log of %d writers", rec->writer, writers());
  HLRC_CHECK_MSG(rec->sealed(), "appending unsealed interval (w=%d id=%u)", rec->writer,
                 rec->id);
  std::vector<IntervalPtr>& log = by_writer_[static_cast<size_t>(rec->writer)];
  HLRC_CHECK_MSG(log.empty() || log.back()->id < rec->id,
                 "non-monotonic append for writer %d: id %u after %u", rec->writer, rec->id,
                 log.empty() ? 0u : log.back()->id);
  log.push_back(std::move(rec));
  ++count_;
}

void IntervalLog::PackInto(const VectorClock& vt, IntervalBatch* out) const {
  for (const std::vector<IntervalPtr>& log : by_writer_) {
    if (log.empty()) {
      continue;
    }
    const uint32_t seen = vt.Get(log.front()->writer);
    if (log.back()->id <= seen) {
      continue;  // Receiver already has this writer's whole tail.
    }
    // First record the receiver is missing; everything after it is too,
    // because ids are strictly increasing within a writer's log.
    auto first = std::partition_point(
        log.begin(), log.end(), [seen](const IntervalPtr& r) { return r->id <= seen; });
    out->insert(out->end(), first, log.end());
  }
}

const IntervalRecord* IntervalLog::Find(NodeId writer, uint32_t id) const {
  if (writer < 0 || writer >= writers()) {
    return nullptr;
  }
  const std::vector<IntervalPtr>& log = by_writer_[static_cast<size_t>(writer)];
  auto it = std::partition_point(log.begin(), log.end(),
                                 [id](const IntervalPtr& r) { return r->id < id; });
  if (it == log.end() || (*it)->id != id) {
    return nullptr;
  }
  return it->get();
}

void IntervalLog::Clear() {
  for (std::vector<IntervalPtr>& log : by_writer_) {
    log.clear();
  }
  count_ = 0;
}

}  // namespace hlrc

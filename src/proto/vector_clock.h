// Vector timestamps used to order intervals (happen-before) across nodes.
#ifndef SRC_PROTO_VECTOR_CLOCK_H_
#define SRC_PROTO_VECTOR_CLOCK_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hlrc {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int nodes) : v_(static_cast<size_t>(nodes), 0) {}

  int size() const { return static_cast<int>(v_.size()); }

  uint32_t Get(NodeId n) const { return v_[static_cast<size_t>(n)]; }
  void Set(NodeId n, uint32_t val) { v_[static_cast<size_t>(n)] = val; }
  void Bump(NodeId n) { ++v_[static_cast<size_t>(n)]; }

  // Componentwise maximum.
  void MergeWith(const VectorClock& o) {
    HLRC_CHECK(o.size() == size());
    for (size_t i = 0; i < v_.size(); ++i) {
      if (o.v_[i] > v_[i]) {
        v_[i] = o.v_[i];
      }
    }
  }

  // True if every component of *this is <= the corresponding one in o.
  bool DominatedBy(const VectorClock& o) const {
    HLRC_CHECK(o.size() == size());
    for (size_t i = 0; i < v_.size(); ++i) {
      if (v_[i] > o.v_[i]) {
        return false;
      }
    }
    return true;
  }

  bool operator==(const VectorClock& o) const { return v_ == o.v_; }

  // True if this happens-before o: dominated and not equal.
  bool HappensBefore(const VectorClock& o) const { return DominatedBy(o) && !(*this == o); }

  // True if neither happens-before the other (concurrent, unequal).
  bool ConcurrentWith(const VectorClock& o) const {
    return !DominatedBy(o) && !o.DominatedBy(*this);
  }

  // Deterministic total-order tiebreak consistent with happens-before:
  // HappensBefore(o) implies *this < o lexicographically-by-sum-then-lex.
  bool TotalOrderLess(const VectorClock& o) const {
    int64_t sa = 0;
    int64_t sb = 0;
    for (size_t i = 0; i < v_.size(); ++i) {
      sa += v_[i];
      sb += o.v_[i];
    }
    if (sa != sb) {
      return sa < sb;
    }
    return v_ < o.v_;
  }

  // Wire/storage footprint: 4 bytes per component.
  int64_t EncodedSize() const { return static_cast<int64_t>(v_.size()) * 4; }

  const std::vector<uint32_t>& raw() const { return v_; }

 private:
  std::vector<uint32_t> v_;
};

}  // namespace hlrc

#endif  // SRC_PROTO_VECTOR_CLOCK_H_

// Automatic Update Release Consistency (extension beyond the paper's four
// protocols; the paper's §2.2 background and reference [15, 16]).
//
// AURC is the protocol HLRC was derived from: the SHRIMP network interface
// snoops writes off the memory bus and propagates them to the home copy with
// zero software overhead. This simulation keeps HLRC's home/flush-timestamp
// machinery but models the hardware: write capture (twins) and update
// detection are free, updates reach the home without occupying either
// processor, and the write-through traffic is amplified (every store crosses
// the network; we observe only the final dirty words and scale by
// ProtocolOptions::aurc_write_amplification). Comparing AURC with HLRC
// quantifies the paper's central tradeoff: HLRC pays diffing software
// overhead to avoid AURC's hardware and bandwidth (paper §2.3).
#ifndef SRC_PROTO_AURC_H_
#define SRC_PROTO_AURC_H_

#include "src/proto/hlrc.h"

namespace hlrc {

class AurcProtocol : public HlrcProtocol {
 public:
  explicit AurcProtocol(const Env& env) : HlrcProtocol(env) {}

  // Twins model the automatic-update hardware state, not software memory:
  // exclude them from the protocol memory accounting.
  int64_t ProtocolMemoryBytes() const override;

 protected:
  void OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) override;
  void HandleProtocolMessage(Message msg) override;
  SimTime WriteCaptureCost() const override { return 0; }
};

}  // namespace hlrc

#endif  // SRC_PROTO_AURC_H_

#include "src/proto/erc.h"

#include <utility>

#include "src/common/log.h"

namespace hlrc {

void ErcProtocol::OnIntervalClosed(IntervalRecord* rec, CloseActions* actions) {
  std::vector<Diff> diffs;
  int64_t update_bytes = 0;
  for (PageId p : rec->pages) {
    HLRC_CHECK(pages().HasTwin(p));
    Diff d = CreateDiff(p, pages().State(p).twin.get(), pages().PageData(p),
                        pages().page_size(), env().options->diff_word_bytes);
    pages().DropTwin(p);
    if (d.Empty()) {
      continue;
    }
    ++stats_.diffs_created;
    MetricDiffCreated(p, d.DataBytes());
    actions->diff_cost += costs().DiffCreateCost(pages().page_size(), d.DataBytes());
    update_bytes += d.EncodedSize();
    diffs.push_back(std::move(d));
  }
  // Eager RC records no intervals and sends no write notices: visibility is
  // achieved by the update broadcast itself, so the record stays empty.
  rec->pages.clear();
  if (diffs.empty()) {
    return;
  }

  if (nodes() == 1) {
    return;
  }
  // Register the outstanding flush NOW, synchronously with the interval
  // close: from this instant the writes are committed to propagate, and any
  // grant or barrier enter must wait for the acknowledgements even though the
  // messages only leave after the diff costs have been charged.
  const uint64_t flush_id = next_flush_id_++;
  flushes_[flush_id] = nodes() - 1;
  actions->post = [this, flush_id, diffs = std::move(diffs), update_bytes,
                   cause = interval_close_span()]() mutable {
    SpanCause sc(this, cause);
    // Broadcast the updates to every other copy (all nodes hold copies:
    // nothing is ever invalidated under an update protocol). The flush is
    // fire-and-forget here; FlushBarrier gates outgoing grants and barrier
    // enters until every outstanding flush is acknowledged.
    HLRC_TRACE("[%lld] node %d: ERC broadcast flush %llu (%zu diffs)",
               (long long)engine()->Now(), self(), (unsigned long long)flush_id,
               diffs.size());
    for (NodeId n = 0; n < nodes(); ++n) {
      if (n == self()) {
        continue;
      }
      ++updates_broadcast_;
      auto payload = std::make_unique<ErcUpdatePayload>();
      payload->writer = self();
      payload->flush_id = flush_id;
      payload->diffs = diffs;  // Copy: one message per receiver.
      Send(n, MsgType::kDiffFlush, update_bytes, 16, std::move(payload));
    }
  };
}

void ErcProtocol::FlushBarrier(std::function<void()> done) {
  if (flushes_.empty()) {
    done();
    return;
  }
  flush_waiters_.push_back(std::move(done));
}

bool ErcProtocol::OnWriteNotice(const IntervalRecord& /*rec*/, PageId /*page*/) {
  // Never reached: no interval records are published (see OnIntervalClosed).
  return false;
}

Task<void> ErcProtocol::ResolveFault(PageId page, bool write) {
  // Pages are always valid; only write-protection upgrades fault.
  HLRC_CHECK(pages().State(page).prot != PageProt::kNone);
  if (!write) {
    co_return;
  }
  while (true) {
    if (!pages().HasTwin(page)) {
      co_await ChargeCpu(costs().TwinCost(pages().page_size()), BusyCat::kTwin);
      pages().MakeTwin(page);
    }
    pages().State(page).prot = PageProt::kReadWrite;
    co_await ChargeCpu(costs().page_protect, BusyCat::kFault);
    // Incoming updates never invalidate, so the grant is stable.
    MarkDirty(page);
    co_return;
  }
}

void ErcProtocol::HandleUpdate(NodeId writer, uint64_t flush_id, std::vector<Diff> diffs,
                               int64_t apply_bytes) {
  (void)apply_bytes;
  HLRC_TRACE("[%lld] node %d: ERC apply flush %llu from %d (%zu diffs, first page %d)",
             (long long)engine()->Now(), self(), (unsigned long long)flush_id, writer,
             diffs.size(), diffs.empty() ? -1 : diffs[0].page);
  for (const Diff& d : diffs) {
    Trace(TraceEvent::kDiffApply, d.page, d.DataBytes());
    ApplyDiff(d, pages().PageData(d.page), pages().page_size());
    if (pages().HasTwin(d.page)) {
      // Concurrent local writes on a falsely-shared page: keep the twin in
      // sync so the local diff stays disjoint.
      ApplyDiff(d, pages().State(d.page).twin.get(), pages().page_size());
    }
    ++stats_.diffs_applied;
    MetricDiffApplied(d.page, d.DataBytes());
  }
  auto payload = std::make_unique<ErcAckPayload>();
  payload->flush_id = flush_id;
  Send(writer, MsgType::kDiffReply, 0, 8, std::move(payload));
}

void ErcProtocol::HandleAck(uint64_t flush_id) {
  auto it = flushes_.find(flush_id);
  HLRC_CHECK(it != flushes_.end());
  if (--it->second == 0) {
    HLRC_TRACE("[%lld] node %d: ERC flush %llu fully acked", (long long)engine()->Now(),
               self(), (unsigned long long)flush_id);
    flushes_.erase(it);
    if (flushes_.empty() && !flush_waiters_.empty()) {
      std::vector<std::function<void()>> waiters = std::move(flush_waiters_);
      flush_waiters_.clear();
      for (auto& w : waiters) {
        w();
      }
    }
  }
}

void ErcProtocol::HandleProtocolMessage(Message msg) {
  const SpanId cause = msg.span;
  const SimTime t_arrive = engine()->Now();
  switch (msg.type) {
    case MsgType::kDiffFlush: {
      auto* p = static_cast<ErcUpdatePayload*>(msg.payload.get());
      int64_t apply_bytes = 0;
      for (const Diff& d : p->diffs) {
        apply_bytes += d.DataBytes();
      }
      // Update application interrupts the receiving compute processor — the
      // core cost of an eager update protocol.
      Serve(/*on_coproc=*/false, /*interrupt=*/true,
            costs().DiffApplyCost(apply_bytes), BusyCat::kDiffApply,
            [this, cause, t_arrive, writer = p->writer, flush_id = p->flush_id,
             diffs = std::move(p->diffs), apply_bytes]() mutable {
              // The ack sent by HandleUpdate inherits this context, so the
              // writer's flush barrier chains through the apply.
              SpanCause sc(this, SpanEmit(SpanKind::kDiffApply, t_arrive, cause,
                                          static_cast<int64_t>(flush_id)));
              HandleUpdate(writer, flush_id, std::move(diffs), apply_bytes);
            });
      return;
    }
    case MsgType::kDiffReply: {
      auto* p = static_cast<ErcAckPayload*>(msg.payload.get());
      Serve(/*on_coproc=*/false, /*interrupt=*/false, 0, BusyCat::kService,
            [this, cause, t_arrive, flush_id = p->flush_id] {
              SpanCause sc(this, SpanEmit(SpanKind::kService, t_arrive, cause,
                                          static_cast<int64_t>(flush_id)));
              HandleAck(flush_id);
            });
      return;
    }
    default:
      HLRC_CHECK_MSG(false, "ERC node %d: unexpected message type %d", self(),
                     static_cast<int>(msg.type));
  }
}

int64_t ErcProtocol::SubclassMemoryBytes() const {
  // Only in-flight flush bookkeeping; nothing accumulates.
  return static_cast<int64_t>(flushes_.size()) * 16;
}

}  // namespace hlrc

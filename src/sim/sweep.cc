#include "src/sim/sweep.h"

#include <atomic>
#include <thread>

namespace hlrc {

int EffectiveJobs(int requested, int tasks) {
  int jobs = requested;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) {
      jobs = 1;  // hardware_concurrency may be unknowable.
    }
  }
  if (tasks < 1) {
    tasks = 1;
  }
  return jobs < tasks ? jobs : tasks;
}

void ParallelFor(int count, int jobs, const std::function<void(int)>& fn) {
  if (count <= 0) {
    return;
  }
  jobs = EffectiveJobs(jobs, count);
  if (jobs <= 1) {
    for (int i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  // Dynamic self-scheduling: simulation wall time varies per task (different
  // seeds explore different schedules), so static striping would leave the
  // slowest worker as the critical path.
  std::atomic<int> next{0};
  auto worker = [&] {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs) - 1);
  for (int t = 1; t < jobs; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // The calling thread is worker 0.
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace hlrc

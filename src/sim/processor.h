// Simulated processor with two priority classes of work.
//
// Each Paragon node has a compute processor and a communication co-processor.
// Both are modelled by this class:
//
//  * Application work (ExecuteApp) runs at low priority. Only one application
//    execution can be in flight: the node's program is a single coroutine.
//  * Service work (RunService) models interrupt/request handlers. Services
//    preempt in-progress application work (the remaining application time is
//    resumed once all queued services finish) and run FIFO among themselves.
//    This matches the Paragon: a receive interrupt suspends computation, and
//    the co-processor's dispatch loop serves requests one at a time.
//
// The processor accounts busy time per category, and reports idle periods to
// an optional hook so that the node can attribute application blocked time
// (data / lock / barrier waits) for the paper's time-breakdown figures.
#ifndef SRC_SIM_PROCESSOR_H_
#define SRC_SIM_PROCESSOR_H_

#include <deque>
#include <functional>
#include <string>

#include "src/common/check.h"
#include "src/sim/completion.h"
#include "src/sim/engine.h"
#include "src/sim/time_categories.h"

namespace hlrc {

class Processor {
 public:
  Processor(Engine* engine, std::string name);
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  // Awaitable: occupies the processor for `duration` of application work,
  // possibly stretched by preempting services. At most one application
  // execution may be active.
  class AppExecution {
   public:
    AppExecution(Processor* p, SimTime duration, BusyCat cat)
        : proc_(p), duration_(duration), cat_(cat) {}
    bool await_ready() const noexcept { return duration_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) { proc_->StartApp(duration_, cat_, h); }
    void await_resume() const noexcept {}

   private:
    Processor* proc_;
    SimTime duration_;
    BusyCat cat_;
  };

  AppExecution ExecuteApp(SimTime duration, BusyCat cat = BusyCat::kCompute) {
    return AppExecution(this, duration, cat);
  }

  // Enqueues service work that occupies the processor for `duration` and then
  // invokes `done`. Services preempt application work and run FIFO.
  void RunService(SimTime duration, BusyCat cat, std::function<void()> done);

  // Total busy time by category.
  const BusyBreakdown& busy() const { return busy_; }

  // Hook invoked as OnIdle(start, end) for every maximal interval during
  // which the processor was idle while the simulation advanced.
  void SetIdleHook(std::function<void(SimTime, SimTime)> hook) { idle_hook_ = std::move(hook); }

  bool IsBusy() const { return app_active_ || service_active_; }
  SimTime BusySince() const { return busy_since_; }

  const std::string& name() const { return name_; }

 private:
  friend class AppExecution;

  void StartApp(SimTime duration, BusyCat cat, std::coroutine_handle<> waiter);
  void StartAppSlice();
  void FinishApp();
  void PreemptApp();
  void StartNextService();
  void MarkBusyStart();
  void MarkIdleStart();

  Engine* engine_;
  std::string name_;

  // Application state.
  bool app_active_ = false;
  bool app_slice_running_ = false;
  SimTime app_remaining_ = 0;
  SimTime app_slice_started_ = 0;
  BusyCat app_cat_ = BusyCat::kCompute;
  Engine::EventId app_event_ = Engine::kInvalidEvent;
  std::coroutine_handle<> app_waiter_ = nullptr;

  // Service state.
  struct Service {
    SimTime duration;
    BusyCat cat;
    std::function<void()> done;
  };
  std::deque<Service> service_queue_;
  bool service_active_ = false;

  // Accounting.
  BusyBreakdown busy_;
  SimTime idle_since_ = 0;
  SimTime busy_since_ = 0;
  bool is_idle_ = true;
  std::function<void(SimTime, SimTime)> idle_hook_;
};

}  // namespace hlrc

#endif  // SRC_SIM_PROCESSOR_H_

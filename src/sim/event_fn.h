// Small-buffer callable for engine events.
//
// Every scheduled event used to carry a std::function<void()>, whose type
// erasure heap-allocates for any capture larger than two pointers. Engine
// callbacks are scheduled millions of times per run, so EventFn stores the
// callable inline in a fixed buffer sized for the protocol's largest common
// captures and falls back to the heap only for oversized ones. Move-only
// (events fire exactly once), and move-only callables are accepted.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hlrc {

class EventFn {
 public:
  // Inline capture budget. 40 bytes covers a this-pointer plus a handful of
  // captured scalars/smart pointers — measured against the protocol and
  // processor callbacks, which keeps the slab allocation-free on the hot
  // paths — and lands the engine's Slot (EventFn + generation) on exactly one
  // 64-byte cache line.
  static constexpr size_t kInlineBytes = 40;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function.
    Emplace(std::forward<F>(f));
  }

  // Destroys any held callable and constructs `f` directly in place — the
  // engine's schedule path uses this to build the callable straight into its
  // slab slot, skipping a type-erased move.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void Emplace(F&& f) {
    Reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(Storage) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      invoke_ = &InlineInvokeConsume<Fn>;
      manage_ = &InlineManage<Fn>;
    } else {
      *reinterpret_cast<Fn**>(&storage_) = new Fn(std::forward<F>(f));
      invoke_ = &HeapInvokeConsume<Fn>;
      manage_ = &HeapManage<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  // Destroys the held callable (releasing any captured state) and empties.
  void Reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, &storage_, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  // Runs the callable and destroys it, leaving the EventFn empty — one
  // indirect call instead of separate invoke and destroy dispatches. Events
  // fire exactly once, so single-shot invocation is all the engine needs.
  void operator()() {
    const InvokeFn f = invoke_;
    invoke_ = nullptr;
    manage_ = nullptr;
    f(&storage_);
  }

 private:
  enum class Op { kDestroy, kMove };

  using Storage = std::aligned_storage_t<kInlineBytes, alignof(std::max_align_t)>;
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* from);

  template <typename Fn>
  static void InlineInvokeConsume(void* s) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(s));
    (*fn)();
    fn->~Fn();
  }
  template <typename Fn>
  static void InlineManage(Op op, void* self, void* from) {
    Fn* target = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kDestroy) {
      target->~Fn();
    } else {
      Fn* source = std::launder(reinterpret_cast<Fn*>(from));
      ::new (self) Fn(std::move(*source));
      source->~Fn();
    }
  }

  template <typename Fn>
  static void HeapInvokeConsume(void* s) {
    Fn* fn = *std::launder(reinterpret_cast<Fn**>(s));
    (*fn)();
    delete fn;
  }
  template <typename Fn>
  static void HeapManage(Op op, void* self, void* from) {
    if (op == Op::kDestroy) {
      delete *std::launder(reinterpret_cast<Fn**>(self));
    } else {
      *reinterpret_cast<Fn**>(self) = *std::launder(reinterpret_cast<Fn**>(from));
    }
  }

  void MoveFrom(EventFn&& other) {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, &storage_, &other.storage_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  Storage storage_;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace hlrc

#endif  // SRC_SIM_EVENT_FN_H_

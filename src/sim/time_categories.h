// Time accounting categories used to reproduce the paper's Figure 3/4
// execution-time breakdowns.
#ifndef SRC_SIM_TIME_CATEGORIES_H_
#define SRC_SIM_TIME_CATEGORIES_H_

#include <array>
#include <cstdint>

#include "src/common/types.h"

namespace hlrc {

// What a processor is busy doing. kCompute is application work; everything
// else is protocol overhead of one flavour or another.
enum class BusyCat : int {
  kCompute = 0,      // Application computation.
  kTwin = 1,         // Twin (clean page copy) creation.
  kDiffCreate = 2,   // Diff computation.
  kDiffApply = 3,    // Diff application.
  kWriteNotice = 4,  // Write-notice creation / processing.
  kInterrupt = 5,    // Receive-interrupt entry cost.
  kService = 6,      // Servicing remote requests (fetch page/diff, lock fwd).
  kPageTransfer = 7, // Pushing page/diff bytes through the NIC.
  kGc = 8,           // Garbage collection processing.
  kFault = 9,        // Page fault entry / protection changes.
  kCount = 10,
};

// What an application coroutine is blocked on while its compute processor is
// idle.
enum class WaitCat : int {
  kNone = 0,
  kData = 1,     // Page-miss servicing (data transfer time).
  kLock = 2,     // Lock acquire.
  kBarrier = 3,  // Barrier.
  kGc = 4,       // Waiting for garbage collection to finish.
  kCount = 5,
};

struct BusyBreakdown {
  std::array<SimTime, static_cast<int>(BusyCat::kCount)> by_cat{};

  void Add(BusyCat c, SimTime t) { by_cat[static_cast<int>(c)] += t; }
  SimTime Get(BusyCat c) const { return by_cat[static_cast<int>(c)]; }
  SimTime Total() const {
    SimTime s = 0;
    for (SimTime t : by_cat) {
      s += t;
    }
    return s;
  }
  // Everything that is not application computation.
  SimTime ProtocolOverhead() const { return Total() - Get(BusyCat::kCompute); }

  BusyBreakdown& operator+=(const BusyBreakdown& o) {
    for (int i = 0; i < static_cast<int>(BusyCat::kCount); ++i) {
      by_cat[i] += o.by_cat[i];
    }
    return *this;
  }
  BusyBreakdown operator-(const BusyBreakdown& o) const {
    BusyBreakdown r = *this;
    for (int i = 0; i < static_cast<int>(BusyCat::kCount); ++i) {
      r.by_cat[i] -= o.by_cat[i];
    }
    return r;
  }
};

struct WaitBreakdown {
  std::array<SimTime, static_cast<int>(WaitCat::kCount)> by_cat{};

  void Add(WaitCat c, SimTime t) { by_cat[static_cast<int>(c)] += t; }
  SimTime Get(WaitCat c) const { return by_cat[static_cast<int>(c)]; }
  SimTime Total() const {
    SimTime s = 0;
    for (SimTime t : by_cat) {
      s += t;
    }
    return s;
  }
  WaitBreakdown& operator+=(const WaitBreakdown& o) {
    for (int i = 0; i < static_cast<int>(WaitCat::kCount); ++i) {
      by_cat[i] += o.by_cat[i];
    }
    return *this;
  }
  WaitBreakdown operator-(const WaitBreakdown& o) const {
    WaitBreakdown r = *this;
    for (int i = 0; i < static_cast<int>(WaitCat::kCount); ++i) {
      r.by_cat[i] -= o.by_cat[i];
    }
    return r;
  }
};

const char* BusyCatName(BusyCat c);
const char* WaitCatName(WaitCat c);

}  // namespace hlrc

#endif  // SRC_SIM_TIME_CATEGORIES_H_

// One-shot awaitable completion, the bridge between event-driven protocol
// handlers and the coroutine application programs. A coroutine co_awaits a
// Completion; a message handler later calls Complete(), which resumes the
// waiter through an engine event at the current virtual time (keeping stack
// depth bounded and preserving deterministic ordering).
#ifndef SRC_SIM_COMPLETION_H_
#define SRC_SIM_COMPLETION_H_

#include <coroutine>

#include "src/common/check.h"
#include "src/sim/engine.h"

namespace hlrc {

class Completion {
 public:
  explicit Completion(Engine* engine) : engine_(engine) {}
  Completion(const Completion&) = delete;
  Completion& operator=(const Completion&) = delete;

  bool IsDone() const { return done_; }

  // Marks the completion done and resumes the waiter (if any) at the current
  // virtual time. Calling Complete twice is a programming error.
  void Complete() {
    HLRC_CHECK(!done_);
    done_ = true;
    if (waiter_) {
      std::coroutine_handle<> h = waiter_;
      waiter_ = nullptr;
      engine_->Schedule(0, [h] { h.resume(); });
    }
  }

  // Re-arms the completion for reuse. Only valid when done and not awaited.
  void Reset() {
    HLRC_CHECK(done_);
    HLRC_CHECK(!waiter_);
    done_ = false;
  }

  // The awaiter holds a pointer so that co_await on an lvalue Completion
  // works (the compiler stores the awaiter by value in the coroutine frame).
  struct Awaiter {
    Completion* c;
    bool await_ready() const noexcept { return c->done_; }
    void await_suspend(std::coroutine_handle<> h) {
      HLRC_CHECK(!c->waiter_);  // Single waiter only.
      c->waiter_ = h;
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() noexcept { return Awaiter{this}; }

 private:
  Engine* engine_;
  bool done_ = false;
  std::coroutine_handle<> waiter_ = nullptr;
};

// Awaitable that suspends the caller for `delay` nanoseconds of virtual time.
class SleepFor {
 public:
  SleepFor(Engine* engine, SimTime delay) : engine_(engine), delay_(delay) {}

  bool await_ready() const noexcept { return delay_ <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    engine_->Schedule(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine* engine_;
  SimTime delay_;
};

}  // namespace hlrc

#endif  // SRC_SIM_COMPLETION_H_

// C++20 coroutine task types used to express per-node application programs.
//
// Task<T> is a lazily-started coroutine: it begins execution when awaited and
// resumes its awaiter on completion via symmetric transfer. Root tasks are
// launched with SpawnDetached(), which drives the task and invokes a
// completion callback when the coroutine chain finishes.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "src/common/check.h"

namespace hlrc {

template <typename T = void>
class Task;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace internal

template <typename T>
class Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    h_.promise().continuation = awaiter;
    return h_;
  }
  T await_resume() {
    HLRC_CHECK(h_.promise().value.has_value());
    return std::move(*h_.promise().value);
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_ = nullptr;
};

template <>
class Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    h_.promise().continuation = awaiter;
    return h_;
  }
  void await_resume() {}

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_ = nullptr;
};

namespace internal {

// Self-destroying coroutine used to drive a root Task.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

inline Detached RunDetached(Task<void> task, std::function<void()> on_done) {
  co_await std::move(task);
  if (on_done) {
    on_done();
  }
}

}  // namespace internal

// Starts `task` immediately as a root coroutine. `on_done` (optional) runs
// synchronously when the task chain completes.
inline void SpawnDetached(Task<void> task, std::function<void()> on_done = {}) {
  internal::RunDetached(std::move(task), std::move(on_done));
}

}  // namespace hlrc

#endif  // SRC_SIM_TASK_H_

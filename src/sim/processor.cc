#include "src/sim/processor.h"

#include <utility>

namespace hlrc {

Processor::Processor(Engine* engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void Processor::MarkBusyStart() {
  if (is_idle_) {
    if (idle_hook_ && engine_->Now() > idle_since_) {
      idle_hook_(idle_since_, engine_->Now());
    }
    is_idle_ = false;
    busy_since_ = engine_->Now();
  }
}

void Processor::MarkIdleStart() {
  if (!is_idle_) {
    is_idle_ = true;
    idle_since_ = engine_->Now();
  }
}

void Processor::StartApp(SimTime duration, BusyCat cat, std::coroutine_handle<> waiter) {
  HLRC_CHECK_MSG(!app_active_, "processor %s: overlapping application executions",
                 name_.c_str());
  app_active_ = true;
  app_remaining_ = duration;
  app_cat_ = cat;
  app_waiter_ = waiter;
  if (!service_active_) {
    StartAppSlice();
  }
}

void Processor::StartAppSlice() {
  HLRC_CHECK(app_active_ && !app_slice_running_ && !service_active_);
  MarkBusyStart();
  app_slice_running_ = true;
  app_slice_started_ = engine_->Now();
  app_event_ = engine_->Schedule(app_remaining_, [this] { FinishApp(); });
}

void Processor::FinishApp() {
  HLRC_CHECK(app_active_ && app_slice_running_);
  busy_.Add(app_cat_, app_remaining_);
  app_slice_running_ = false;
  app_active_ = false;
  app_remaining_ = 0;
  app_event_ = Engine::kInvalidEvent;
  std::coroutine_handle<> waiter = app_waiter_;
  app_waiter_ = nullptr;
  if (!service_active_ && service_queue_.empty()) {
    MarkIdleStart();
  }
  // Resume the application coroutine directly: we are inside an engine event.
  waiter.resume();
}

void Processor::PreemptApp() {
  HLRC_CHECK(app_slice_running_);
  const SimTime ran = engine_->Now() - app_slice_started_;
  HLRC_CHECK(ran >= 0 && ran <= app_remaining_);
  busy_.Add(app_cat_, ran);
  app_remaining_ -= ran;
  engine_->Cancel(app_event_);
  app_event_ = Engine::kInvalidEvent;
  app_slice_running_ = false;
}

void Processor::RunService(SimTime duration, BusyCat cat, std::function<void()> done) {
  HLRC_CHECK(duration >= 0);
  service_queue_.push_back(Service{duration, cat, std::move(done)});
  if (!service_active_) {
    if (app_slice_running_) {
      PreemptApp();
    }
    service_active_ = true;
    StartNextService();
  }
}

void Processor::StartNextService() {
  HLRC_CHECK(service_active_ && !service_queue_.empty());
  MarkBusyStart();
  Service svc = std::move(service_queue_.front());
  service_queue_.pop_front();
  engine_->Schedule(svc.duration, [this, svc = std::move(svc)]() mutable {
    busy_.Add(svc.cat, svc.duration);
    // Run the handler's effects at the end of the service period. The handler
    // may enqueue further services on this processor.
    if (svc.done) {
      svc.done();
    }
    if (!service_queue_.empty()) {
      StartNextService();
      return;
    }
    service_active_ = false;
    if (app_active_) {
      // Resume the preempted (or newly requested) application work.
      StartAppSlice();
    } else {
      MarkIdleStart();
    }
  });
}

const char* BusyCatName(BusyCat c) {
  switch (c) {
    case BusyCat::kCompute:
      return "compute";
    case BusyCat::kTwin:
      return "twin";
    case BusyCat::kDiffCreate:
      return "diff-create";
    case BusyCat::kDiffApply:
      return "diff-apply";
    case BusyCat::kWriteNotice:
      return "write-notice";
    case BusyCat::kInterrupt:
      return "interrupt";
    case BusyCat::kService:
      return "service";
    case BusyCat::kPageTransfer:
      return "page-transfer";
    case BusyCat::kGc:
      return "gc";
    case BusyCat::kFault:
      return "fault";
    case BusyCat::kCount:
      break;
  }
  return "?";
}

const char* WaitCatName(WaitCat c) {
  switch (c) {
    case WaitCat::kNone:
      return "none";
    case WaitCat::kData:
      return "data";
    case WaitCat::kLock:
      return "lock";
    case WaitCat::kBarrier:
      return "barrier";
    case WaitCat::kGc:
      return "gc";
    case WaitCat::kCount:
      break;
  }
  return "?";
}

}  // namespace hlrc

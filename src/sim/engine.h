// Deterministic discrete-event simulation engine.
//
// The engine owns virtual time. Events are callbacks scheduled at absolute
// virtual times and executed in (time, insertion-order) order, which makes
// every run bit-for-bit reproducible. Events can be cancelled, which the
// processor model uses to preempt application execution when an interrupt
// arrives.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hlrc {

class Engine {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` nanoseconds from now. `delay` must be >= 0.
  EventId Schedule(SimTime delay, std::function<void()> fn) {
    HLRC_CHECK(delay >= 0);
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute virtual time `t` (>= Now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn) {
    HLRC_CHECK(t >= now_);
    const EventId id = next_id_++;
    pending_.emplace(id, std::move(fn));
    const uint64_t tiebreak = tiebreaker_ ? tiebreaker_() : 0;
    queue_.push(QEntry{t, tiebreak, id});
    return id;
  }

  // Installs a hook consulted once per scheduled event that chooses its rank
  // among simultaneous events: equal-time events run in ascending
  // (tiebreak, insertion-order). With no hook (or a hook returning a
  // constant) the engine keeps its FIFO order, so production runs are
  // unaffected; the schedule-exploration harness (src/check) installs a
  // seeded random hook to permute runnable-task order. Pass nullptr to
  // remove.
  void SetTieBreaker(std::function<uint64_t()> tiebreaker) {
    tiebreaker_ = std::move(tiebreaker);
  }

  // Cancels a previously scheduled event. Cancelling an event that already
  // ran (or was already cancelled) is a no-op.
  void Cancel(EventId id) { pending_.erase(id); }

  bool HasCancelablePending(EventId id) const { return pending_.count(id) != 0; }

  // Runs a single event. Returns false when the queue is empty.
  bool Step() {
    while (!queue_.empty()) {
      const QEntry top = queue_.top();
      queue_.pop();
      auto it = pending_.find(top.id);
      if (it == pending_.end()) {
        continue;  // Cancelled.
      }
      HLRC_CHECK(top.time >= now_);
      now_ = top.time;
      std::function<void()> fn = std::move(it->second);
      pending_.erase(it);
      ++events_processed_;
      fn();
      return true;
    }
    return false;
  }

  // Runs until no events remain.
  void Run() {
    while (Step()) {
    }
  }

  // Runs until no events remain or virtual time would exceed `deadline`.
  // Returns true if the queue drained, false if the deadline stopped the run.
  bool RunUntil(SimTime deadline) {
    while (!queue_.empty()) {
      if (NextEventTime() > deadline) {
        return false;
      }
      Step();
    }
    return true;
  }

  // Virtual time of the next runnable event; deadline checks only.
  SimTime NextEventTime() {
    while (!queue_.empty() && pending_.find(queue_.top().id) == pending_.end()) {
      queue_.pop();
    }
    HLRC_CHECK(!queue_.empty());
    return queue_.top().time;
  }

  bool Idle() {
    while (!queue_.empty() && pending_.find(queue_.top().id) == pending_.end()) {
      queue_.pop();
    }
    return queue_.empty();
  }

  int64_t events_processed() const { return events_processed_; }

 private:
  struct QEntry {
    SimTime time;
    uint64_t tiebreak;  // 0 unless a tiebreaker hook is installed.
    EventId id;
    // Later ids run later at equal (time, tiebreak): FIFO among simultaneous
    // events.
    bool operator>(const QEntry& o) const {
      if (time != o.time) {
        return time > o.time;
      }
      if (tiebreak != o.tiebreak) {
        return tiebreak > o.tiebreak;
      }
      return id > o.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  int64_t events_processed_ = 0;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue_;
  std::unordered_map<EventId, std::function<void()>> pending_;
  std::function<uint64_t()> tiebreaker_;
};

}  // namespace hlrc

#endif  // SRC_SIM_ENGINE_H_

// Deterministic discrete-event simulation engine.
//
// The engine owns virtual time. Events are callbacks scheduled at absolute
// virtual times and executed in (time, insertion-order) order, which makes
// every run bit-for-bit reproducible. Events can be cancelled, which the
// processor model uses to preempt application execution when an interrupt
// arrives.
//
// Hot-path layout (docs/PERFORMANCE.md): event records live in a slab of
// slots recycled through a free list, with the callback stored inline via
// EventFn (no per-event heap allocation for ordinary captures, no hashing on
// schedule/cancel/fire). Ready events are ordered by a 4-ary min-heap keyed
// by (time, tiebreak, insertion sequence) — the same total order the original
// binary-heap + hash-map engine used, so schedules are bit-identical.
// Cancellation is O(1): the slot is released and its generation bumped; the
// stale heap entry is skipped when it surfaces.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/sim/event_fn.h"

namespace hlrc {

class Engine {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` nanoseconds from now. `delay` must be >= 0.
  // Templated so the callable is constructed directly into its slab slot
  // instead of through a type-erased move.
  template <typename F>
  EventId Schedule(SimTime delay, F&& fn) {
    HLRC_CHECK(delay >= 0);
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at absolute virtual time `t` (>= Now()).
  template <typename F>
  EventId ScheduleAt(SimTime t, F&& fn) {
    HLRC_CHECK(t >= now_);
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if ((slot_count_ >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      slot = slot_count_++;
    }
    Slot& s = SlotAt(slot);
    s.fn.Emplace(std::forward<F>(fn));
    s.live = true;
    const EventId id = MakeId(slot, s.gen);
    const uint64_t tiebreak = tiebreaker_ ? tiebreaker_() : 0;
    HeapPush(QEntry{t, tiebreak, next_seq_++, id});
    return id;
  }

  // Installs a hook consulted once per scheduled event that chooses its rank
  // among simultaneous events: equal-time events run in ascending
  // (tiebreak, insertion-order). With no hook (or a hook returning a
  // constant) the engine keeps its FIFO order, so production runs are
  // unaffected; the schedule-exploration harness (src/check) installs a
  // seeded random hook to permute runnable-task order. Pass nullptr to
  // remove.
  void SetTieBreaker(std::function<uint64_t()> tiebreaker) {
    tiebreaker_ = std::move(tiebreaker);
  }

  // Cancels a previously scheduled event. Cancelling an event that already
  // ran (or was already cancelled) is a no-op: the slot's generation no
  // longer matches the id's.
  void Cancel(EventId id) {
    Slot* s = LiveSlot(id);
    if (s != nullptr) {
      ReleaseSlot(SlotIndex(id));
    }
  }

  bool HasCancelablePending(EventId id) const { return LiveSlot(id) != nullptr; }

  // Runs a single event. Returns false when the queue is empty.
  bool Step() {
    while (!heap_.empty()) {
      const SimTime top_time = heap_.front().time;
      const EventId top_id = heap_.front().id;
      HeapPop();
      Slot* s = LiveSlot(top_id);
      if (s == nullptr) {
        continue;  // Cancelled.
      }
      HLRC_CHECK(top_time >= now_);
      now_ = top_time;
      // Retire the slot before running the callback so a Cancel of this id
      // from inside it is a no-op (matching the original engine, which erased
      // the pending entry first). The slot only joins the free list after the
      // callback returns, so it cannot be recycled under the running closure;
      // chunked storage keeps its address stable if the callback schedules.
      s->live = false;
      ++s->gen;
      ++events_processed_;
      s->fn();  // Single-shot: runs and destroys the callable in place.
      free_.push_back(SlotIndex(top_id));
      return true;
    }
    return false;
  }

  // Runs until no events remain.
  void Run() {
    while (Step()) {
    }
  }

  // Runs until no events remain or virtual time would exceed `deadline`.
  // Returns true if the queue drained, false if the deadline stopped the run.
  bool RunUntil(SimTime deadline) {
    while (!Idle()) {
      if (NextEventTime() > deadline) {
        return false;
      }
      Step();
    }
    return true;
  }

  // Virtual time of the next runnable event; deadline checks only.
  SimTime NextEventTime() {
    DropCancelledTop();
    HLRC_CHECK(!heap_.empty());
    return heap_.front().time;
  }

  bool Idle() {
    DropCancelledTop();
    return heap_.empty();
  }

  int64_t events_processed() const { return events_processed_; }

 private:
  // One pending event: callback inline in the slab, generation-checked so a
  // recycled slot never honors a stale id.
  struct Slot {
    EventFn fn;
    uint32_t gen = 1;
    bool live = false;
  };

  // Heap entries order by (time, tiebreak, seq): later-scheduled events run
  // later at equal (time, tiebreak) — FIFO among simultaneous events, exactly
  // the (time, tiebreak, id) order of the original monotonic-id engine.
  struct QEntry {
    SimTime time;
    uint64_t tiebreak;  // 0 unless a tiebreaker hook is installed.
    uint64_t seq;
    EventId id;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(gen) << 32) | (static_cast<uint64_t>(slot) + 1);
  }
  static uint32_t SlotIndex(EventId id) { return static_cast<uint32_t>(id & 0xffffffffu) - 1; }
  static uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }

  // Slots live in fixed-size chunks so their addresses never move: Step runs
  // callbacks in place, and a callback that schedules (growing the slab) must
  // not relocate the closure it is executing from.
  static constexpr uint32_t kChunkShift = 9;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  Slot& SlotAt(uint32_t slot) { return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)]; }
  const Slot& SlotAt(uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  // The slot behind `id` if it is still pending, nullptr otherwise (invalid
  // id, already fired, or already cancelled).
  const Slot* LiveSlot(EventId id) const {
    if ((id & 0xffffffffu) == 0) {
      return nullptr;  // kInvalidEvent.
    }
    const uint32_t slot = SlotIndex(id);
    if (slot >= slot_count_) {
      return nullptr;
    }
    const Slot& s = SlotAt(slot);
    return (s.live && s.gen == GenOf(id)) ? &s : nullptr;
  }
  Slot* LiveSlot(EventId id) {
    return const_cast<Slot*>(static_cast<const Engine*>(this)->LiveSlot(id));
  }

  void ReleaseSlot(uint32_t slot) {
    Slot& s = SlotAt(slot);
    s.fn.Reset();  // Release captured state immediately, not at slot reuse.
    s.live = false;
    ++s.gen;
    free_.push_back(slot);
  }

  static bool Before(const QEntry& a, const QEntry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.tiebreak != b.tiebreak) {
      return a.tiebreak < b.tiebreak;
    }
    return a.seq < b.seq;
  }

  // 4-ary min-heap: shallower than a binary heap (fewer cache misses per
  // sift) and the 4 children of node i sit contiguously at 4i+1..4i+4.
  // Both sifts move the displaced entry into a hole instead of swapping, so
  // each level costs one store, not three. Sifts run on a raw pointer: the
  // vector never reallocates inside a sift, and a local pointer keeps the
  // compiler from reloading vector internals after every store.
  void HeapPush(const QEntry& e) {
    size_t i = heap_.size();
    heap_.push_back(e);
    QEntry* const h = heap_.data();
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!Before(e, h[parent])) {
        break;
      }
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  void HeapPop() {
    const QEntry e = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n == 0) {
      return;
    }
    QEntry* const h = heap_.data();
    size_t i = 0;
    while (true) {
      const size_t first_child = 4 * i + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (Before(h[c], h[best])) {
          best = c;
        }
      }
      if (!Before(h[best], e)) {
        break;
      }
      h[i] = h[best];
      i = best;
    }
    h[i] = e;
  }

  void DropCancelledTop() {
    while (!heap_.empty() && LiveSlot(heap_.front().id) == nullptr) {
      HeapPop();
    }
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint32_t slot_count_ = 0;
  int64_t events_processed_ = 0;
  std::vector<QEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<uint32_t> free_;
  std::function<uint64_t()> tiebreaker_;
};

}  // namespace hlrc

#endif  // SRC_SIM_ENGINE_H_

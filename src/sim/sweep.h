// Deterministic parallel sweep driver.
//
// A seed sweep (svmcheck), a bench table, or a parameter scan runs many
// independent simulations — each task builds its own System with its own
// Engine, so tasks share no mutable state and any interleaving of workers
// produces the same per-task results. This runner exploits that: tasks are
// handed out dynamically to a small thread pool, each task writes its result
// into index-addressed storage, and callers consume results in index order —
// so reports are byte-identical to a serial run at any job count
// (tests/test_golden_determinism.cc pins this for svmcheck).
//
// This is multi-process-of-engines parallelism, not a parallel engine: one
// simulation is still single-threaded and bit-for-bit deterministic.
#ifndef SRC_SIM_SWEEP_H_
#define SRC_SIM_SWEEP_H_

#include <functional>
#include <vector>

namespace hlrc {

// Worker threads actually used for `tasks` tasks when the user asked for
// `requested` jobs: 0 (or negative) means hardware concurrency; the result is
// clamped to [1, tasks].
int EffectiveJobs(int requested, int tasks);

// Runs fn(i) for every i in [0, count), distributing indices dynamically over
// up to `jobs` worker threads. With jobs <= 1 (or count <= 1) the tasks run
// inline on the calling thread in index order — no threads are spawned, so a
// --jobs=1 run is exactly the historical serial execution. fn must be safe to
// call concurrently for distinct indices and must not throw; a failed
// HLRC_CHECK aborts the whole process as usual.
void ParallelFor(int count, int jobs, const std::function<void(int)>& fn);

// Convenience: materializes fn(i) for every index, in index order. R must be
// default-constructible and movable.
template <typename R>
std::vector<R> ParallelMap(int count, int jobs, const std::function<R(int)>& fn) {
  std::vector<R> out(static_cast<size_t>(count > 0 ? count : 0));
  ParallelFor(count, jobs, [&](int i) { out[static_cast<size_t>(i)] = fn(i); });
  return out;
}

}  // namespace hlrc

#endif  // SRC_SIM_SWEEP_H_

// Inline small-vector for protocol metadata.
//
// Write-notice page lists (IntervalRecord::pages) are short for most
// intervals: a page or two for lock-protected updates, a node's band worth of
// pages at a barrier. std::vector heap-allocates even for one element, and
// the interval plane copies these lists on every close. SmallVec stores the
// first N elements inline (no allocation) and only spills to the heap past
// that, so the common record is a single contiguous object.
//
// Restricted to trivially copyable element types: growth, copies and moves
// are memcpy, and clear() is a size reset that keeps any heap buffer for
// reuse.
#ifndef SRC_MEM_SMALL_VEC_H_
#define SRC_MEM_SMALL_VEC_H_

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace hlrc {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is memcpy-based; element type must be trivially copyable");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  SmallVec(const SmallVec& o) { assign(o.begin(), o.end()); }
  SmallVec(SmallVec&& o) noexcept { StealFrom(o); }
  ~SmallVec() { delete[] heap_; }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      assign(o.begin(), o.end());
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      delete[] heap_;
      StealFrom(o);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr size_t inline_capacity() { return N; }
  size_t capacity() const { return cap_; }

  // Keeps the heap buffer (if any) for reuse.
  void clear() { size_ = 0; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void reserve(size_t cap) {
    if (cap > cap_) {
      Grow(cap);
    }
  }

  void push_back(const T& v) {
    if (size_ == cap_) {
      // `v` may alias our own storage (push_back(vec[i]), assign from a
      // range into *this): Grow frees the heap buffer, so take the value
      // before reallocating.
      const T copy = v;
      Grow(cap_ * 2);
      heap_[size_++] = copy;  // Grow always lands on the heap.
      return;
    }
    data()[size_++] = v;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) {
      push_back(*first);
    }
  }

  bool operator==(const SmallVec& o) const {
    return size_ == o.size_ &&
           std::memcmp(data(), o.data(), size_ * sizeof(T)) == 0;
  }

 private:
  void Grow(size_t cap) {
    T* buf = new T[cap];
    if (heap_ != nullptr) {
      std::memcpy(buf, heap_, size_ * sizeof(T));
      delete[] heap_;
    } else {
      // size_ <= N on this branch; the clamp makes the bound provable so the
      // compiler doesn't flag the inline-array read.
      const size_t n = size_ < N ? size_ : N;
      std::memcpy(buf, inline_, n * sizeof(T));
    }
    heap_ = buf;
    cap_ = cap;
  }

  // Leaves `o` empty. Heap buffers transfer; inline contents copy.
  void StealFrom(SmallVec& o) {
    size_ = o.size_;
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      o.heap_ = nullptr;
      o.cap_ = N;
    } else {
      heap_ = nullptr;
      cap_ = N;
      std::memcpy(inline_, o.inline_, size_ * sizeof(T));
    }
    o.size_ = 0;
  }

  T* heap_ = nullptr;
  size_t cap_ = N;
  size_t size_ = 0;
  T inline_[N];
};

}  // namespace hlrc

#endif  // SRC_MEM_SMALL_VEC_H_

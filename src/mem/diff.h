// Word-granularity page diffs.
//
// A diff records the words of a dirty page that differ from its twin (the
// clean copy snapshotted at the first write of an interval), as a list of
// contiguous runs. Diffs are created by writers at interval end (or on
// demand), shipped to readers (LRC) or to the page's home (HLRC), and applied
// onto a target copy. Contents are computed from real page bytes, so diff
// sizes — and therefore traffic and apply costs — are exact, not modelled.
#ifndef SRC_MEM_DIFF_H_
#define SRC_MEM_DIFF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace hlrc {

struct DiffRun {
  uint32_t offset = 0;           // Byte offset within the page.
  std::vector<std::byte> bytes;  // New contents.
};

struct Diff {
  PageId page = kInvalidPage;
  std::vector<DiffRun> runs;

  bool Empty() const { return runs.empty(); }

  // Total payload bytes carried.
  int64_t DataBytes() const;

  // Wire/storage footprint: per-diff header + per-run (offset, length) +
  // payload.
  int64_t EncodedSize() const;

  static constexpr int64_t kHeaderBytes = 16;
  static constexpr int64_t kRunHeaderBytes = 8;
};

// Compares `current` against `twin` with `word_bytes` granularity (4 or 8)
// and returns the diff. `page_bytes` must be a multiple of `word_bytes`.
Diff CreateDiff(PageId page, const std::byte* twin, const std::byte* current,
                int64_t page_bytes, int word_bytes);

// Applies `diff` onto `target` (a page-sized buffer).
void ApplyDiff(const Diff& diff, std::byte* target, int64_t page_bytes);

}  // namespace hlrc

#endif  // SRC_MEM_DIFF_H_

// Word-granularity page diffs.
//
// A diff records the words of a dirty page that differ from its twin (the
// clean copy snapshotted at the first write of an interval), as a list of
// contiguous runs. Diffs are created by writers at interval end (or on
// demand), shipped to readers (LRC) or to the page's home (HLRC), and applied
// onto a target copy. Contents are computed from real page bytes, so diff
// sizes — and therefore traffic and apply costs — are exact, not modelled.
//
// Hot-path layout (docs/PERFORMANCE.md): run payloads are concatenated into
// one contiguous buffer instead of one vector per run, so a diff costs at
// most two allocations regardless of run count, and DataBytes/EncodedSize —
// called on every traffic-accounting path — are O(1). CreateDiff
// short-circuits clean pages with a single whole-page memcmp and scans 8
// bytes at a time; CreateDiffReference keeps the original word-by-word
// implementation for differential testing (tests/test_diff_fast.cc).
#ifndef SRC_MEM_DIFF_H_
#define SRC_MEM_DIFF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace hlrc {

struct DiffRun {
  uint32_t offset = 0;       // Byte offset within the page.
  uint32_t length = 0;       // Payload bytes (multiple of the word size).
  uint32_t data_offset = 0;  // Payload position within Diff::data.
};

struct Diff {
  PageId page = kInvalidPage;
  std::vector<DiffRun> runs;
  std::vector<std::byte> data;  // All run payloads, concatenated in run order.

  bool Empty() const { return runs.empty(); }

  // New contents of run `r`, `r.length` bytes.
  const std::byte* RunData(const DiffRun& r) const { return data.data() + r.data_offset; }

  // Total payload bytes carried.
  int64_t DataBytes() const { return static_cast<int64_t>(data.size()); }

  // Wire/storage footprint: per-diff header + per-run (offset, length) +
  // payload. Cached at creation; debug builds assert the cache against a
  // recomputation so a mutated diff cannot ship a stale size.
  int64_t EncodedSize() const;

  static constexpr int64_t kHeaderBytes = 16;
  static constexpr int64_t kRunHeaderBytes = 8;

  // Set by CreateDiff; negative means "compute on demand" (hand-built diffs).
  int64_t cached_encoded_size = -1;
};

// Compares `current` against `twin` with `word_bytes` granularity (4 or 8)
// and returns the diff. `page_bytes` must be a multiple of `word_bytes`.
Diff CreateDiff(PageId page, const std::byte* twin, const std::byte* current,
                int64_t page_bytes, int word_bytes);

// The pre-optimization implementation (per-word memcmp, no clean-page
// short-circuit). Kept as the differential-testing oracle for CreateDiff and
// as the baseline for bench/perf_wallclock; must produce byte-identical runs.
Diff CreateDiffReference(PageId page, const std::byte* twin, const std::byte* current,
                         int64_t page_bytes, int word_bytes);

// Applies `diff` onto `target` (a page-sized buffer).
void ApplyDiff(const Diff& diff, std::byte* target, int64_t page_bytes);

}  // namespace hlrc

#endif  // SRC_MEM_DIFF_H_

// Per-node software MMU.
//
// Each node mirrors the whole shared address space in one contiguous
// anonymous mmap region, so application code can use ordinary pointers and
// multi-page arrays stay contiguous. Pages the node never touches stay
// unbacked (the kernel lazily zero-fills), which keeps 64-node simulations
// cheap. Protection is checked in software by the SVM access layer; there is
// no hardware mprotect involved.
#ifndef SRC_MEM_PAGE_TABLE_H_
#define SRC_MEM_PAGE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hlrc {

enum class PageProt : uint8_t {
  kNone = 0,       // Any access faults.
  kRead = 1,       // Writes fault.
  kReadWrite = 2,  // No faults.
};

struct PageState {
  PageProt prot = PageProt::kRead;
  // Whether the local frame holds a (possibly stale) copy of the page. LRC
  // keeps stale copies across invalidation so diffs can be applied in place;
  // a page with no copy requires a full-page fetch.
  bool has_copy = true;
  // Twin: clean snapshot taken at the first write of the current interval.
  std::unique_ptr<std::byte[]> twin;
};

class PageTable {
 public:
  PageTable(int64_t space_bytes, int64_t page_size);
  ~PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  int64_t page_size() const { return page_size_; }
  int num_pages() const { return num_pages_; }
  int64_t space_bytes() const { return space_bytes_; }

  PageId PageOf(GlobalAddr addr) const {
    HLRC_CHECK(addr < static_cast<GlobalAddr>(space_bytes_));
    return static_cast<PageId>(addr / static_cast<GlobalAddr>(page_size_));
  }

  std::byte* PageData(PageId p) {
    HLRC_CHECK(p >= 0 && p < num_pages_);
    return base_ + static_cast<int64_t>(p) * page_size_;
  }
  const std::byte* PageData(PageId p) const {
    HLRC_CHECK(p >= 0 && p < num_pages_);
    return base_ + static_cast<int64_t>(p) * page_size_;
  }

  std::byte* AddrData(GlobalAddr addr) {
    HLRC_CHECK(addr < static_cast<GlobalAddr>(space_bytes_));
    return base_ + addr;
  }

  PageState& State(PageId p) {
    HLRC_CHECK(p >= 0 && p < num_pages_);
    return states_[static_cast<size_t>(p)];
  }
  const PageState& State(PageId p) const {
    HLRC_CHECK(p >= 0 && p < num_pages_);
    return states_[static_cast<size_t>(p)];
  }

  // Snapshots the current page contents as the twin. The caller accounts the
  // cost; this just does the copy and the memory bookkeeping. Twin buffers
  // are recycled through a per-node free list (docs/PERFORMANCE.md): twin
  // churn at interval boundaries is the hottest allocation site in the
  // simulator, and the pool's steady state is the run's peak concurrent twin
  // count, so after warm-up MakeTwin/DropTwin never touch the allocator.
  void MakeTwin(PageId p);
  void DropTwin(PageId p);
  bool HasTwin(PageId p) const { return State(p).twin != nullptr; }

  // Bytes currently held in twins (protocol memory accounting).
  int64_t TwinBytes() const { return twin_count_ * page_size_; }
  int64_t twin_count() const { return twin_count_; }

  // Arena observability: buffers parked for reuse, and how many MakeTwin
  // calls were served from the pool vs the allocator.
  int64_t twin_pool_size() const { return static_cast<int64_t>(twin_pool_.size()); }
  int64_t twin_pool_hits() const { return twin_pool_hits_; }

 private:
  int64_t space_bytes_;
  int64_t page_size_;
  int num_pages_;
  std::byte* base_;  // mmap'ed; owned.
  std::vector<PageState> states_;
  int64_t twin_count_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> twin_pool_;
  int64_t twin_pool_hits_ = 0;
};

}  // namespace hlrc

#endif  // SRC_MEM_PAGE_TABLE_H_

#include "src/mem/diff.h"

#include <cstring>

#include "src/common/check.h"

namespace hlrc {

int64_t Diff::DataBytes() const {
  int64_t n = 0;
  for (const DiffRun& r : runs) {
    n += static_cast<int64_t>(r.bytes.size());
  }
  return n;
}

int64_t Diff::EncodedSize() const {
  return kHeaderBytes + static_cast<int64_t>(runs.size()) * kRunHeaderBytes + DataBytes();
}

Diff CreateDiff(PageId page, const std::byte* twin, const std::byte* current,
                int64_t page_bytes, int word_bytes) {
  HLRC_CHECK(word_bytes == 4 || word_bytes == 8);
  HLRC_CHECK(page_bytes % word_bytes == 0);

  Diff diff;
  diff.page = page;
  int64_t run_start = -1;
  for (int64_t off = 0; off <= page_bytes; off += word_bytes) {
    const bool differs =
        off < page_bytes && std::memcmp(twin + off, current + off, word_bytes) != 0;
    if (differs) {
      if (run_start < 0) {
        run_start = off;
      }
    } else if (run_start >= 0) {
      DiffRun run;
      run.offset = static_cast<uint32_t>(run_start);
      run.bytes.assign(current + run_start, current + off);
      diff.runs.push_back(std::move(run));
      run_start = -1;
    }
  }
  return diff;
}

void ApplyDiff(const Diff& diff, std::byte* target, int64_t page_bytes) {
  for (const DiffRun& r : diff.runs) {
    HLRC_CHECK(static_cast<int64_t>(r.offset) + static_cast<int64_t>(r.bytes.size()) <=
               page_bytes);
    std::memcpy(target + r.offset, r.bytes.data(), r.bytes.size());
  }
}

}  // namespace hlrc

#include "src/mem/diff.h"

#include <cstring>

#include "src/common/check.h"

namespace hlrc {
namespace {

// Word equality via memcpy'd integer loads: compiles to one aligned load per
// side (offsets are word-multiples into word-aligned buffers) without the
// call overhead and byte-wise tail handling of per-word memcmp, and is
// strict-aliasing- and sanitizer-clean.
template <int W>
inline bool WordEq(const std::byte* a, const std::byte* b) {
  if constexpr (W == 8) {
    uint64_t x, y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    return x == y;
  } else {
    uint32_t x, y;
    std::memcpy(&x, a, 4);
    std::memcpy(&y, b, 4);
    return x == y;
  }
}

inline void AppendRun(Diff* out, int64_t start, int64_t length, const std::byte* current) {
  DiffRun run;
  run.offset = static_cast<uint32_t>(start);
  run.length = static_cast<uint32_t>(length);
  run.data_offset = static_cast<uint32_t>(out->data.size());
  out->data.insert(out->data.end(), current + start, current + start + length);
  out->runs.push_back(run);
}

// Scans [0, page_bytes) at word granularity W, producing maximal runs of
// differing words — the exact run structure of CreateDiffReference. Clean
// stretches are skipped 8 bytes at a time with uint64_t loads; only granules
// known to contain a difference fall back to word-size comparisons.
template <int W>
void ScanDiff(const std::byte* twin, const std::byte* current, int64_t page_bytes, Diff* out) {
  int64_t off = 0;
  while (off < page_bytes) {
    // Fast-skip the clean region ahead, one 8-byte granule per iteration.
    while (off + 8 <= page_bytes) {
      uint64_t a, b;
      std::memcpy(&a, twin + off, 8);
      std::memcpy(&b, current + off, 8);
      if (a != b) {
        break;
      }
      off += 8;
    }
    // Either a dirty granule sits at `off`, or fewer than 8 bytes remain.
    // Locate the first differing word (for W == 4 the granule's leading word
    // may still be clean), then extend the run over consecutive dirty words.
    while (off < page_bytes && WordEq<W>(twin + off, current + off)) {
      off += W;
    }
    if (off >= page_bytes) {
      break;
    }
    const int64_t run_start = off;
    while (off < page_bytes && !WordEq<W>(twin + off, current + off)) {
      off += W;
    }
    AppendRun(out, run_start, off - run_start, current);
  }
}

int64_t ComputeEncodedSize(const Diff& d) {
  return Diff::kHeaderBytes + static_cast<int64_t>(d.runs.size()) * Diff::kRunHeaderBytes +
         d.DataBytes();
}

}  // namespace

int64_t Diff::EncodedSize() const {
  if (cached_encoded_size >= 0) {
    HLRC_DCHECK(cached_encoded_size == ComputeEncodedSize(*this));
    return cached_encoded_size;
  }
  return ComputeEncodedSize(*this);
}

Diff CreateDiff(PageId page, const std::byte* twin, const std::byte* current,
                int64_t page_bytes, int word_bytes) {
  HLRC_CHECK(word_bytes == 4 || word_bytes == 8);
  HLRC_CHECK(page_bytes % word_bytes == 0);

  Diff diff;
  diff.page = page;
  // Clean-page short-circuit: at interval close most candidate pages were
  // written but unchanged (or touched sparsely), and one whole-page memcmp
  // resolves the common all-clean case at memory bandwidth.
  if (std::memcmp(twin, current, static_cast<size_t>(page_bytes)) == 0) {
    diff.cached_encoded_size = ComputeEncodedSize(diff);
    return diff;
  }
  diff.runs.reserve(8);
  if (word_bytes == 8) {
    ScanDiff<8>(twin, current, page_bytes, &diff);
  } else {
    ScanDiff<4>(twin, current, page_bytes, &diff);
  }
  diff.cached_encoded_size = ComputeEncodedSize(diff);
  return diff;
}

Diff CreateDiffReference(PageId page, const std::byte* twin, const std::byte* current,
                         int64_t page_bytes, int word_bytes) {
  HLRC_CHECK(word_bytes == 4 || word_bytes == 8);
  HLRC_CHECK(page_bytes % word_bytes == 0);

  Diff diff;
  diff.page = page;
  int64_t run_start = -1;
  for (int64_t off = 0; off <= page_bytes; off += word_bytes) {
    const bool differs =
        off < page_bytes && std::memcmp(twin + off, current + off, word_bytes) != 0;
    if (differs) {
      if (run_start < 0) {
        run_start = off;
      }
    } else if (run_start >= 0) {
      AppendRun(&diff, run_start, off - run_start, current);
      run_start = -1;
    }
  }
  diff.cached_encoded_size = ComputeEncodedSize(diff);
  return diff;
}

void ApplyDiff(const Diff& diff, std::byte* target, int64_t page_bytes) {
  for (const DiffRun& r : diff.runs) {
    HLRC_CHECK(static_cast<int64_t>(r.offset) + static_cast<int64_t>(r.length) <= page_bytes);
    std::memcpy(target + r.offset, diff.RunData(r), r.length);
  }
}

}  // namespace hlrc

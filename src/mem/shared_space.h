// Global shared address space layout and the G_MALLOC-style bump allocator.
//
// Mirrors the Splash-2 programming model the paper implements (§3.2): the
// whole space is shareable and global data is carved out with G_MALLOC before
// the parallel phase.
#ifndef SRC_MEM_SHARED_SPACE_H_
#define SRC_MEM_SHARED_SPACE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hlrc {

class SharedSpace {
 public:
  // One G_MALLOC'ed object, in pages. The block home policy distributes each
  // allocation's pages over the nodes independently, which is how the paper's
  // systems place homes "intelligently": an array's k-th band is homed on the
  // node that owns the k-th partition.
  struct Allocation {
    PageId first_page;
    PageId last_page;
  };

  SharedSpace(int64_t space_bytes, int64_t page_size)
      : space_bytes_(space_bytes), page_size_(page_size) {
    HLRC_CHECK(space_bytes % page_size == 0);
  }

  // Allocates `bytes`, 16-byte aligned. Aborts if the space is exhausted.
  GlobalAddr Alloc(int64_t bytes) { return AllocInternal(bytes, /*page_aligned=*/false); }

  // Allocates `bytes` starting on a fresh page boundary: used to give arrays
  // page-aligned partitions, as Splash-2 programs do with padded allocators.
  GlobalAddr AllocPageAligned(int64_t bytes) {
    const GlobalAddr ps = static_cast<GlobalAddr>(page_size_);
    next_ = (next_ + ps - 1) / ps * ps;
    return AllocInternal(bytes, /*page_aligned=*/true);
  }

  // Observation hook for the workload recorder (src/wkld): called once per
  // allocation with the granted address. `page_aligned` distinguishes the
  // two allocators so a replay can reproduce the exact layout.
  using AllocHook = std::function<void(GlobalAddr addr, int64_t bytes, bool page_aligned)>;
  void SetAllocHook(AllocHook hook) { alloc_hook_ = std::move(hook); }

  // Bytes of application data allocated so far (Table 6's "application
  // memory" denominator).
  int64_t AllocatedBytes() const { return static_cast<int64_t>(next_); }

  // The allocation containing `page`, or nullptr.
  const Allocation* AllocationOf(PageId page) const {
    for (const Allocation& a : allocations_) {
      if (page >= a.first_page && page <= a.last_page) {
        return &a;
      }
    }
    return nullptr;
  }

  int64_t space_bytes() const { return space_bytes_; }
  int64_t page_size() const { return page_size_; }

 private:
  GlobalAddr AllocInternal(int64_t bytes, bool page_aligned) {
    next_ = (next_ + 15) & ~static_cast<GlobalAddr>(15);
    const GlobalAddr addr = next_;
    HLRC_CHECK_MSG(static_cast<int64_t>(addr) + bytes <= space_bytes_,
                   "shared space exhausted: need %lld more bytes",
                   static_cast<long long>(addr + static_cast<GlobalAddr>(bytes)) -
                       static_cast<long long>(space_bytes_));
    next_ += static_cast<GlobalAddr>(bytes);
    RecordAllocation(addr, bytes);
    if (alloc_hook_) {
      alloc_hook_(addr, bytes, page_aligned);
    }
    return addr;
  }

  void RecordAllocation(GlobalAddr addr, int64_t bytes) {
    const PageId first = static_cast<PageId>(addr / static_cast<GlobalAddr>(page_size_));
    const PageId last = static_cast<PageId>((addr + static_cast<GlobalAddr>(bytes) - 1) /
                                            static_cast<GlobalAddr>(page_size_));
    // Merge with the previous allocation when they share a page.
    if (!allocations_.empty() && allocations_.back().last_page >= first) {
      allocations_.back().last_page = std::max(allocations_.back().last_page, last);
      return;
    }
    allocations_.push_back(Allocation{first, last});
  }

  int64_t space_bytes_;
  int64_t page_size_;
  GlobalAddr next_ = 0;
  std::vector<Allocation> allocations_;
  AllocHook alloc_hook_;
};

}  // namespace hlrc

#endif  // SRC_MEM_SHARED_SPACE_H_

#include "src/mem/page_table.h"

#include <sys/mman.h>

#include <cstring>

namespace hlrc {

PageTable::PageTable(int64_t space_bytes, int64_t page_size)
    : space_bytes_(space_bytes), page_size_(page_size) {
  HLRC_CHECK(page_size > 0 && (page_size & (page_size - 1)) == 0);
  HLRC_CHECK(space_bytes > 0 && space_bytes % page_size == 0);
  num_pages_ = static_cast<int>(space_bytes / page_size);
  void* mem = ::mmap(nullptr, static_cast<size_t>(space_bytes_), PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  HLRC_CHECK_MSG(mem != MAP_FAILED, "mmap of %lld bytes failed",
                 static_cast<long long>(space_bytes_));
  base_ = static_cast<std::byte*>(mem);
  states_.resize(static_cast<size_t>(num_pages_));
}

PageTable::~PageTable() { ::munmap(base_, static_cast<size_t>(space_bytes_)); }

void PageTable::MakeTwin(PageId p) {
  PageState& st = State(p);
  HLRC_CHECK(st.twin == nullptr);
  if (!twin_pool_.empty()) {
    st.twin = std::move(twin_pool_.back());
    twin_pool_.pop_back();
    ++twin_pool_hits_;
  } else {
    st.twin = std::make_unique<std::byte[]>(static_cast<size_t>(page_size_));
  }
  std::memcpy(st.twin.get(), PageData(p), static_cast<size_t>(page_size_));
  ++twin_count_;
}

void PageTable::DropTwin(PageId p) {
  PageState& st = State(p);
  if (st.twin != nullptr) {
    twin_pool_.push_back(std::move(st.twin));
    --twin_count_;
  }
}

}  // namespace hlrc

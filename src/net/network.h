// Interconnect model.
//
// Message cost = one-way base latency (covering NX/2 software send/receive
// overhead) + per-hop wire time + per-byte transfer time, with serialization
// at the sending and receiving NIC channels. Endpoint serialization is what
// produces the paper's "hot spots": simultaneous requests to one node queue
// behind each other. An optional link-contention model additionally reserves
// every mesh link along the XY route.
//
// Two optional layers turn the clean fabric into a degradation-testing
// harness (docs/FAULTS.md):
//  * a FaultHook (src/net/fault_hook.h) consulted once per physical
//    transmission, which may drop, corrupt, duplicate or delay frames;
//  * a ReliableChannel (src/net/reliable_channel.h) restoring exactly-once
//    in-order delivery over the lossy fabric via seq numbers, acks and
//    timeout/retransmit, transparently to the protocols.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/coverage.h"
#include "src/common/types.h"
#include "src/metrics/histogram.h"
#include "src/net/fault_hook.h"
#include "src/net/message.h"
#include "src/net/reliable_channel.h"
#include "src/net/topology.h"
#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace hlrc {

class Metrics;

struct NetworkConfig {
  // One-way latency of a minimal message, including software overheads.
  SimTime base_latency = Micros(50);
  // Additional latency per mesh hop (wormhole routing => tiny).
  SimTime per_hop = Nanos(20);
  // Transfer time per byte. Calibrated so that an 8 KB page moves in ~353 us
  // (Table 3 reconstruction): 353000 ns / 8192 B ~= 43 ns/B.
  SimTime per_byte = Nanos(43);
  // Fixed header bytes added to every message (type, timestamps, addresses).
  int64_t header_bytes = 32;
  // Model per-link occupancy along the XY route (ablation option).
  bool model_link_contention = false;
  // Coalescing send queue (--coalesce): same-tick messages to one peer are
  // packed into a single multi-part kBundle frame, paying one header charge
  // plus `part_header_bytes` (a length prefix) per part. Default off: the
  // coalesced wire plane is an opt-in ablation, and the golden summaries pin
  // the uncoalesced traffic counts.
  bool coalesce = false;
  // Per-part length prefix charged inside a bundle.
  int64_t part_header_bytes = 4;
};

// Per-node traffic counters (Table 5). Send-side counters count physical
// transmissions (retransmissions included); receive-side counters count
// physical arrivals, so under fault injection sent > received by exactly the
// frames lost in the network.
struct TrafficStats {
  int64_t msgs_sent = 0;
  int64_t msgs_received = 0;
  int64_t update_bytes_sent = 0;
  int64_t protocol_bytes_sent = 0;  // Includes headers.
  std::array<int64_t, static_cast<int>(MsgType::kCount)> msgs_by_type{};
  // Reliable-delivery / fault-injection counters (zero on a clean fabric).
  int64_t msgs_retransmitted = 0;      // Retransmissions issued by this node.
  int64_t msgs_dropped_in_net = 0;     // Frames from this node lost or corrupted.
  int64_t msgs_duplicated_dropped = 0; // Duplicate arrivals this node discarded.
  int64_t acks_sent = 0;               // Standalone ack frames this node sent.
  // Coalescing counters (zero unless NetworkConfig::coalesce /
  // ReliabilityConfig::piggyback_acks). `msgs_sent` counts physical frames
  // (a bundle is one frame); these record how many of those frames were
  // bundles and how many logical messages rode inside them, so
  // frames = msgs_sent and logical messages = msgs_sent - frames_coalesced
  // + msgs_coalesced.
  int64_t frames_coalesced = 0;    // Bundle frames sent by this node.
  int64_t msgs_coalesced = 0;      // Logical messages packed into bundles.
  int64_t acks_piggybacked = 0;    // Ack seqs that rode data frames from this node.

  int64_t TotalBytesSent() const { return update_bytes_sent + protocol_bytes_sent; }
};

class Network {
 public:
  using Handler = std::function<void(Message)>;

  Network(Engine* engine, int nodes, NetworkConfig config);
  ~Network();

  // Registers the message handler for `node`. Must be set before Send targets
  // that node.
  void SetHandler(NodeId node, Handler handler);

  // Sends `msg`; the destination handler runs when the message has fully
  // arrived (with reliable delivery: when it has been accepted in order).
  void Send(Message msg);

  // Installs a fault hook consulted on every physical transmission. Pass
  // nullptr to remove. The hook must outlive all Send activity.
  void SetFaultHook(FaultHook* hook) { fault_hook_ = hook; }

  // Installs a hook consulted on every physical transmission that returns an
  // extra head-arrival delay (>= 0), composing with fault-injection delays.
  // Receiving-NIC serialization still delivers frames to one destination in
  // global Transmit order, so per-pair FIFO (which the protocols rely on) is
  // preserved; jitter perturbs the relative order of deliveries at
  // *different* destinations, which is what the schedule-exploration harness
  // (src/check) uses to race protocol messages against each other. Pass
  // nullptr to remove.
  using DeliveryJitterHook = std::function<SimTime(NodeId src, NodeId dst, MsgType type)>;
  void SetDeliveryJitterHook(DeliveryJitterHook hook) { jitter_hook_ = std::move(hook); }

  // Installs a coverage observer (src/common/coverage.h). The network emits
  // kMsgEdge points — consecutive (prev MsgType, MsgType) pairs of accepted
  // deliveries at each destination — and kFault points for injected fault
  // decisions. Pure observation; pass nullptr to remove.
  void SetCoverageObserver(CoverageObserver* cov) { coverage_ = cov; }

  // Enables the reliable-delivery layer. Must be called before any Send.
  void EnableReliableDelivery(const ReliabilityConfig& config);

  // Records net-level events (drops, retransmits, dup-drops) when non-null.
  void SetTraceLog(TraceLog* log) { trace_ = log; }

  // Records causal spans (src/tracing/span.h): queue / wire sub-spans per
  // transmission and retransmit sub-spans in the reliable channel, each
  // linked from the Message's causal parent. Pure observation; pass nullptr
  // to remove.
  void SetSpanTracer(SpanTracer* spans) { spans_ = spans; }

  // Pre-resolves per-node network instruments (wire latency per MsgType,
  // send-queue delay, bytes-in-flight, retransmit latency/backlog) from
  // `metrics` and registers the network's sampler series. Must precede any
  // Send; `metrics` must outlive the network's use.
  void AttachMetrics(Metrics* metrics);

  const TrafficStats& NodeStats(NodeId node) const { return stats_[node]; }
  TrafficStats TotalStats() const;
  const Mesh2D& mesh() const { return mesh_; }
  const NetworkConfig& config() const { return config_; }
  const ReliableChannel* reliable_channel() const { return channel_.get(); }

 private:
  friend class ReliableChannel;

  // Hands one message to the reliable channel or the plain fabric (the
  // pre-coalescing Send path).
  void SubmitOne(Message msg);

  // Coalescing send queue (config_.coalesce): appends to the per-(src, dst)
  // pending batch; the first message of a tick schedules a same-tick flush.
  void EnqueueCoalesced(Message msg);
  void FlushPending(NodeId src, NodeId dst);

  // Runs one frame through the physical model: NIC serialization, wire time,
  // fault decision. Schedules OnFrameArrival at the delivery time (unless the
  // frame is dropped in the network).
  void Transmit(const std::shared_ptr<WireFrame>& frame, bool retransmit);

  // Runs at the physical arrival time of `frame` on its destination NIC.
  void OnFrameArrival(const std::shared_ptr<WireFrame>& frame);

  // Hands an accepted message to the destination's protocol handler.
  void DeliverToHandler(Message msg);

  void TraceNet(NodeId node, TraceEvent event, int64_t arg0, int64_t arg1);

  // Raw instrument pointers resolved once in AttachMetrics; empty when
  // metrics are off, so the hot-path cost is one vector-emptiness branch.
  struct NodeInstruments {
    std::array<Histogram*, static_cast<size_t>(MsgType::kCount)> wire_ns{};
    Histogram* queue_ns = nullptr;
    Histogram* retransmit_ack_ns = nullptr;
    int64_t* bytes_in_flight = nullptr;
    int64_t* retransmit_backlog = nullptr;
  };
  NodeInstruments* InstrumentsFor(NodeId node) {
    return instruments_.empty() ? nullptr : &instruments_[static_cast<size_t>(node)];
  }

  Engine* engine_;
  NetworkConfig config_;
  Mesh2D mesh_;
  std::vector<Handler> handlers_;
  std::vector<SimTime> out_free_;  // Send channel free time per node.
  std::vector<SimTime> in_free_;   // Receive channel free time per node.
  std::vector<SimTime> link_free_;
  std::vector<TrafficStats> stats_;
  FaultHook* fault_hook_ = nullptr;
  DeliveryJitterHook jitter_hook_;
  CoverageObserver* coverage_ = nullptr;
  std::vector<uint32_t> last_delivered_type_;  // Per dst, for kMsgEdge edges.
  TraceLog* trace_ = nullptr;
  SpanTracer* spans_ = nullptr;
  std::vector<NodeInstruments> instruments_;
  std::unique_ptr<ReliableChannel> channel_;
  // Per-(src, dst) pending batch for the coalescing send queue; sized
  // nodes*nodes lazily on the first coalesced Send.
  struct PendingSend {
    std::vector<Message> msgs;
    bool flush_scheduled = false;
  };
  std::vector<PendingSend> pending_;
  bool sent_anything_ = false;
};

}  // namespace hlrc

#endif  // SRC_NET_NETWORK_H_

// Interconnect model.
//
// Message cost = one-way base latency (covering NX/2 software send/receive
// overhead) + per-hop wire time + per-byte transfer time, with serialization
// at the sending and receiving NIC channels. Endpoint serialization is what
// produces the paper's "hot spots": simultaneous requests to one node queue
// behind each other. An optional link-contention model additionally reserves
// every mesh link along the XY route.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/net/message.h"
#include "src/net/topology.h"
#include "src/sim/engine.h"

namespace hlrc {

struct NetworkConfig {
  // One-way latency of a minimal message, including software overheads.
  SimTime base_latency = Micros(50);
  // Additional latency per mesh hop (wormhole routing => tiny).
  SimTime per_hop = Nanos(20);
  // Transfer time per byte. Calibrated so that an 8 KB page moves in ~353 us
  // (Table 3 reconstruction): 353000 ns / 8192 B ~= 43 ns/B.
  SimTime per_byte = Nanos(43);
  // Fixed header bytes added to every message (type, timestamps, addresses).
  int64_t header_bytes = 32;
  // Model per-link occupancy along the XY route (ablation option).
  bool model_link_contention = false;
};

// Per-node traffic counters (Table 5).
struct TrafficStats {
  int64_t msgs_sent = 0;
  int64_t msgs_received = 0;
  int64_t update_bytes_sent = 0;
  int64_t protocol_bytes_sent = 0;  // Includes headers.
  std::array<int64_t, static_cast<int>(MsgType::kCount)> msgs_by_type{};

  int64_t TotalBytesSent() const { return update_bytes_sent + protocol_bytes_sent; }
};

class Network {
 public:
  using Handler = std::function<void(Message)>;

  Network(Engine* engine, int nodes, NetworkConfig config);

  // Registers the message handler for `node`. Must be set before Send targets
  // that node.
  void SetHandler(NodeId node, Handler handler);

  // Sends `msg`; the destination handler runs when the message has fully
  // arrived.
  void Send(Message msg);

  const TrafficStats& NodeStats(NodeId node) const { return stats_[node]; }
  TrafficStats TotalStats() const;
  const Mesh2D& mesh() const { return mesh_; }
  const NetworkConfig& config() const { return config_; }

 private:
  Engine* engine_;
  NetworkConfig config_;
  Mesh2D mesh_;
  std::vector<Handler> handlers_;
  std::vector<SimTime> out_free_;  // Send channel free time per node.
  std::vector<SimTime> in_free_;   // Receive channel free time per node.
  std::vector<SimTime> link_free_;
  std::vector<TrafficStats> stats_;
};

}  // namespace hlrc

#endif  // SRC_NET_NETWORK_H_

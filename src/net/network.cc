#include "src/net/network.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/metrics/metrics.h"

namespace hlrc {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kLockRequest:
      return "lock-request";
    case MsgType::kLockForward:
      return "lock-forward";
    case MsgType::kLockGrant:
      return "lock-grant";
    case MsgType::kBarrierEnter:
      return "barrier-enter";
    case MsgType::kBarrierRelease:
      return "barrier-release";
    case MsgType::kDiffFlush:
      return "diff-flush";
    case MsgType::kDiffRequest:
      return "diff-request";
    case MsgType::kDiffReply:
      return "diff-reply";
    case MsgType::kPageRequest:
      return "page-request";
    case MsgType::kPageReply:
      return "page-reply";
    case MsgType::kGcRequest:
      return "gc-request";
    case MsgType::kGcInfo:
      return "gc-info";
    case MsgType::kGcValidate:
      return "gc-validate";
    case MsgType::kGcDone:
      return "gc-done";
    case MsgType::kHomeTransfer:
      return "home-transfer";
    case MsgType::kAck:
      return "ack";
    case MsgType::kBundle:
      return "bundle";
    case MsgType::kCount:
      break;
  }
  return "?";
}

Network::Network(Engine* engine, int nodes, NetworkConfig config)
    : engine_(engine),
      config_(config),
      mesh_(nodes),
      handlers_(nodes),
      out_free_(nodes, 0),
      in_free_(nodes, 0),
      stats_(nodes),
      last_delivered_type_(nodes, static_cast<uint32_t>(MsgType::kCount)) {
  if (config_.model_link_contention) {
    link_free_.assign(static_cast<size_t>(mesh_.MaxLinkId()), 0);
  }
  if (config_.coalesce) {
    pending_.resize(static_cast<size_t>(nodes) * static_cast<size_t>(nodes));
  }
}

Network::~Network() = default;

void Network::SetHandler(NodeId node, Handler handler) {
  HLRC_CHECK(node >= 0 && node < static_cast<NodeId>(handlers_.size()));
  handlers_[node] = std::move(handler);
}

void Network::EnableReliableDelivery(const ReliabilityConfig& config) {
  HLRC_CHECK_MSG(!sent_anything_, "EnableReliableDelivery must precede any Send");
  HLRC_CHECK(config.enabled);
  HLRC_CHECK(config.retry_timeout > 0);
  HLRC_CHECK(config.retry_backoff >= 1.0);
  HLRC_CHECK(config.max_retries >= 0);
  if (config.piggyback_acks) {
    HLRC_CHECK_MSG(config.ack_delay > 0 && config.ack_delay < config.retry_timeout,
                   "piggyback ack_delay must be positive and below retry_timeout, or "
                   "deferred acks would trigger spurious retransmissions");
  }
  channel_ = std::make_unique<ReliableChannel>(engine_, this, config,
                                               static_cast<int>(handlers_.size()));
}

void Network::AttachMetrics(Metrics* metrics) {
  HLRC_CHECK_MSG(!sent_anything_, "AttachMetrics must precede any Send");
  HLRC_CHECK(metrics != nullptr);
  MetricsRegistry& reg = metrics->registry();
  const int nodes = static_cast<int>(handlers_.size());
  instruments_.assign(static_cast<size_t>(nodes), NodeInstruments{});
  for (NodeId n = 0; n < nodes; ++n) {
    NodeInstruments& ins = instruments_[static_cast<size_t>(n)];
    for (int t = 0; t < static_cast<int>(MsgType::kCount); ++t) {
      ins.wire_ns[static_cast<size_t>(t)] = reg.Histo(
          std::string("net.wire_ns.") + MsgTypeName(static_cast<MsgType>(t)), n);
    }
    ins.queue_ns = reg.Histo("net.queue_ns", n);
    ins.retransmit_ack_ns = reg.Histo("net.retransmit_ack_ns", n);
    ins.bytes_in_flight = reg.Counter("net.bytes_in_flight", n);
    ins.retransmit_backlog = reg.Counter("net.retransmit_backlog", n);
    metrics->sampler().AddSeries(
        "bytes_in_flight", n,
        [c = ins.bytes_in_flight] { return static_cast<double>(*c); });
    metrics->sampler().AddSeries(
        "retransmit_backlog", n,
        [c = ins.retransmit_backlog] { return static_cast<double>(*c); });
    metrics->sampler().AddSeries(
        "msgs_sent", n,
        [s = &stats_[static_cast<size_t>(n)]] { return static_cast<double>(s->msgs_sent); });
  }
}

void Network::Send(Message msg) {
  HLRC_CHECK(msg.src >= 0 && msg.src < static_cast<NodeId>(handlers_.size()));
  HLRC_CHECK(msg.dst >= 0 && msg.dst < static_cast<NodeId>(handlers_.size()));
  HLRC_CHECK_MSG(static_cast<bool>(handlers_[msg.dst]), "no handler on node %d", msg.dst);
  sent_anything_ = true;

  if (config_.coalesce) {
    EnqueueCoalesced(std::move(msg));
    return;
  }
  SubmitOne(std::move(msg));
}

void Network::SubmitOne(Message msg) {
  if (channel_ != nullptr) {
    channel_->SubmitData(std::move(msg));
    return;
  }
  auto frame = std::make_shared<WireFrame>();
  frame->src = msg.src;
  frame->dst = msg.dst;
  frame->type = msg.type;
  frame->update_bytes = msg.update_bytes;
  frame->protocol_bytes = msg.protocol_bytes;
  if (msg.type == MsgType::kBundle) {
    const auto* bundle = static_cast<const BundlePayload*>(msg.payload.get());
    frame->part_types.reserve(bundle->parts.size());
    for (const Message& part : bundle->parts) {
      frame->part_types.push_back(part.type);
    }
  }
  frame->msg = std::make_shared<Message>(std::move(msg));
  Transmit(frame, /*retransmit=*/false);
}

void Network::EnqueueCoalesced(Message msg) {
  const size_t idx = static_cast<size_t>(msg.src) * handlers_.size() +
                     static_cast<size_t>(msg.dst);
  PendingSend& p = pending_[idx];
  if (!p.flush_scheduled) {
    // A same-tick flush event: every Send to this pair before the engine
    // reaches it joins the batch, so the queue adds no simulated latency —
    // it only merges frames that would have departed back to back anyway.
    p.flush_scheduled = true;
    engine_->ScheduleAt(engine_->Now(),
                        [this, src = msg.src, dst = msg.dst] { FlushPending(src, dst); });
  }
  p.msgs.push_back(std::move(msg));
}

void Network::FlushPending(NodeId src, NodeId dst) {
  PendingSend& p = pending_[static_cast<size_t>(src) * handlers_.size() +
                            static_cast<size_t>(dst)];
  p.flush_scheduled = false;
  std::vector<Message> batch = std::move(p.msgs);
  p.msgs.clear();
  if (batch.empty()) {
    return;
  }
  if (batch.size() == 1) {
    SubmitOne(std::move(batch[0]));
    return;
  }
  Message bundle;
  bundle.src = src;
  bundle.dst = dst;
  bundle.type = MsgType::kBundle;
  auto payload = std::make_unique<BundlePayload>();
  payload->parts.reserve(batch.size());
  const SimTime now = engine_->Now();
  for (Message& part : batch) {
    bundle.update_bytes += part.update_bytes;
    bundle.protocol_bytes += part.protocol_bytes + config_.part_header_bytes;
    if (spans_ != nullptr && part.span != kNoSpan) {
      // The hold is zero simulated time (the flush runs in the same tick),
      // but the span keeps each part's causal chain connected through the
      // bundle hop: cause -> coalesce-hold -> receiver service.
      const SpanId h = spans_->Emit(SpanKind::kCoalesceHold, src, now, now, kNoSpan,
                                    static_cast<int64_t>(part.type));
      spans_->AddLink(h, part.span);
      part.span = h;
    }
    payload->parts.push_back(std::move(part));
  }
  TrafficStats& s = stats_[src];
  ++s.frames_coalesced;
  s.msgs_coalesced += static_cast<int64_t>(payload->parts.size());
  bundle.payload = std::move(payload);
  SubmitOne(std::move(bundle));
}

void Network::Transmit(const std::shared_ptr<WireFrame>& frame, bool retransmit) {
  const int64_t bytes = config_.header_bytes + frame->update_bytes + frame->protocol_bytes;
  const SimTime now = engine_->Now();

  TrafficStats& s = stats_[frame->src];
  ++s.msgs_sent;
  s.update_bytes_sent += frame->update_bytes;
  s.protocol_bytes_sent += frame->protocol_bytes + config_.header_bytes;
  ++s.msgs_by_type[static_cast<int>(frame->type)];
  // A bundle frame also counts its logical parts under their own types (from
  // the submit-time type list — the payload may already be consumed when a
  // late retransmission of an acked-but-lost frame passes through here), so
  // per-type logical counts are invariant under coalescing.
  for (const MsgType t : frame->part_types) {
    ++s.msgs_by_type[static_cast<int>(t)];
  }
  if (retransmit) {
    ++s.msgs_retransmitted;
    TraceNet(frame->src, TraceEvent::kNetRetransmit, static_cast<int64_t>(frame->type),
             frame->dst);
  }

  FaultDecision fault;
  if (fault_hook_ != nullptr) {
    fault = fault_hook_->OnTransmit(frame->src, frame->dst, frame->type, now, retransmit);
  }

  const SimTime xfer = bytes * config_.per_byte;

  // Sending NIC channel serialization: the sender pays for the transmission
  // whether or not the network later loses the frame.
  const SimTime departure = std::max(now, out_free_[frame->src]);
  out_free_[frame->src] = departure + xfer;
  if (NodeInstruments* ins = InstrumentsFor(frame->src)) {
    ins->queue_ns->Record(departure - now);
  }

  // Span tracing: the frame's causal parent rides on the Message (acks carry
  // none). Emitted spans never feed back into the simulation.
  const SpanId cause =
      (spans_ != nullptr && frame->msg != nullptr) ? frame->msg->span : kNoSpan;
  SpanId queue_span = kNoSpan;
  if (cause != kNoSpan && departure > now) {
    queue_span = spans_->Emit(SpanKind::kQueue, frame->src, now, departure,
                              kNoSpan, static_cast<int64_t>(frame->type));
    spans_->AddLink(queue_span, cause);
  }

  // Wire time: latency + hops. With wormhole routing the message is pipelined,
  // so the head arrives after the latency and the tail `xfer` later.
  SimTime head_arrival = departure + config_.base_latency +
                         mesh_.Hops(frame->src, frame->dst) * config_.per_hop +
                         fault.extra_delay;
  if (jitter_hook_ != nullptr) {
    const SimTime jitter = jitter_hook_(frame->src, frame->dst, frame->type);
    HLRC_CHECK(jitter >= 0);
    head_arrival += jitter;
  }

  if (config_.model_link_contention && frame->src != frame->dst) {
    // A wormhole route holds all its links for the duration of the transfer;
    // approximate by serializing on the maximum link availability.
    SimTime route_free = 0;
    const std::vector<int64_t> route = mesh_.Route(frame->src, frame->dst);
    for (int64_t l : route) {
      route_free = std::max(route_free, link_free_[static_cast<size_t>(l)]);
    }
    head_arrival = std::max(head_arrival, route_free + config_.base_latency);
    for (int64_t l : route) {
      link_free_[static_cast<size_t>(l)] = head_arrival + xfer - config_.base_latency;
    }
  }

  if (fault.drop) {
    // Lost in the fabric: never reaches the receiving NIC.
    if (coverage_ != nullptr) {
      coverage_->Cover(CoverageObserver::Domain::kFault,
                       static_cast<uint64_t>(frame->type), 0);
    }
    ++s.msgs_dropped_in_net;
    TraceNet(frame->src, TraceEvent::kNetDrop, static_cast<int64_t>(frame->type), frame->dst);
    return;
  }

  // Receiving NIC channel serialization: the message is fully delivered when
  // its bytes have drained into the destination.
  const SimTime delivered = std::max(head_arrival, in_free_[frame->dst]) + xfer;
  in_free_[frame->dst] = delivered;

  if (fault.corrupt) {
    // The bytes occupied the receiving NIC but fail their checksum there and
    // are discarded: equivalent to a loss, just later and more expensive.
    if (coverage_ != nullptr) {
      coverage_->Cover(CoverageObserver::Domain::kFault,
                       static_cast<uint64_t>(frame->type), 1);
    }
    ++s.msgs_dropped_in_net;
    TraceNet(frame->src, TraceEvent::kNetDrop, static_cast<int64_t>(frame->type), frame->dst);
    return;
  }

  if (!instruments_.empty()) {
    // Wire latency lands on the destination's histogram: it is the time the
    // receiver waited for bytes already committed to the fabric.
    instruments_[static_cast<size_t>(frame->dst)]
        .wire_ns[static_cast<size_t>(frame->type)]
        ->Record(delivered - departure);
    *instruments_[static_cast<size_t>(frame->src)].bytes_in_flight += bytes;
  }
  if (cause != kNoSpan) {
    const SpanId w = spans_->Emit(SpanKind::kWire, frame->dst, departure,
                                  delivered, kNoSpan,
                                  static_cast<int64_t>(frame->type));
    spans_->AddLink(w, queue_span != kNoSpan ? queue_span : cause);
    frame->last_wire_span = w;
  }
  engine_->ScheduleAt(delivered, [this, frame] { OnFrameArrival(frame); });

  if (coverage_ != nullptr && fault.extra_delay > 0) {
    coverage_->Cover(CoverageObserver::Domain::kFault,
                     static_cast<uint64_t>(frame->type), 2);
  }
  if (fault.duplicate && channel_ != nullptr) {
    if (coverage_ != nullptr) {
      coverage_->Cover(CoverageObserver::Domain::kFault,
                       static_cast<uint64_t>(frame->type), 3);
    }
    // A spurious second copy drains the receiving NIC right after the first.
    // Only meaningful with reliable delivery: the channel dedups it; without
    // a dedup layer a duplicate would hand the protocol the same (consumed)
    // payload twice, so the plain fabric ignores the flag.
    const SimTime delivered2 = delivered + xfer;
    in_free_[frame->dst] = delivered2;
    if (NodeInstruments* ins = InstrumentsFor(frame->src)) {
      // The duplicate copy is in flight too; each arrival decrements once.
      *ins->bytes_in_flight += bytes;
    }
    engine_->ScheduleAt(delivered2, [this, frame] { OnFrameArrival(frame); });
  }
}

void Network::OnFrameArrival(const std::shared_ptr<WireFrame>& frame) {
  ++stats_[frame->dst].msgs_received;
  if (NodeInstruments* ins = InstrumentsFor(frame->src)) {
    *ins->bytes_in_flight -=
        config_.header_bytes + frame->update_bytes + frame->protocol_bytes;
  }
  if (channel_ != nullptr) {
    channel_->OnArrival(frame);
    return;
  }
  HLRC_CHECK(!frame->is_ack);
  if (frame->last_wire_span != kNoSpan) {
    // The receiver's handler span chains from the wire span, not the sender's
    // original cause, so the hop shows up in the DAG.
    frame->msg->span = frame->last_wire_span;
  }
  DeliverToHandler(std::move(*frame->msg));
}

void Network::DeliverToHandler(Message msg) {
  if (msg.type == MsgType::kBundle) {
    // Unpack in send order; each part re-enters with its own type, so
    // coverage edges and protocol handlers never observe kBundle.
    auto* bundle = static_cast<BundlePayload*>(msg.payload.get());
    for (Message& part : bundle->parts) {
      DeliverToHandler(std::move(part));
    }
    return;
  }
  if (coverage_ != nullptr) {
    // Delivery edges: which message type followed which at this destination.
    // Node ids stay out of the point itself so the edge space measures
    // protocol behavior rather than topology.
    coverage_->Cover(CoverageObserver::Domain::kMsgEdge,
                     last_delivered_type_[msg.dst],
                     static_cast<uint64_t>(msg.type));
    last_delivered_type_[msg.dst] = static_cast<uint32_t>(msg.type);
  }
  Handler& handler = handlers_[msg.dst];
  handler(std::move(msg));
}

void Network::TraceNet(NodeId node, TraceEvent event, int64_t arg0, int64_t arg1) {
  if (trace_ != nullptr) {
    trace_->Record(node, engine_->Now(), event, arg0, arg1);
  }
}

TrafficStats Network::TotalStats() const {
  TrafficStats total;
  for (const TrafficStats& s : stats_) {
    total.msgs_sent += s.msgs_sent;
    total.msgs_received += s.msgs_received;
    total.update_bytes_sent += s.update_bytes_sent;
    total.protocol_bytes_sent += s.protocol_bytes_sent;
    total.msgs_retransmitted += s.msgs_retransmitted;
    total.msgs_dropped_in_net += s.msgs_dropped_in_net;
    total.msgs_duplicated_dropped += s.msgs_duplicated_dropped;
    total.acks_sent += s.acks_sent;
    total.frames_coalesced += s.frames_coalesced;
    total.msgs_coalesced += s.msgs_coalesced;
    total.acks_piggybacked += s.acks_piggybacked;
    for (size_t i = 0; i < s.msgs_by_type.size(); ++i) {
      total.msgs_by_type[i] += s.msgs_by_type[i];
    }
  }
  return total;
}

}  // namespace hlrc

#include "src/net/network.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace hlrc {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kLockRequest:
      return "lock-request";
    case MsgType::kLockForward:
      return "lock-forward";
    case MsgType::kLockGrant:
      return "lock-grant";
    case MsgType::kBarrierEnter:
      return "barrier-enter";
    case MsgType::kBarrierRelease:
      return "barrier-release";
    case MsgType::kDiffFlush:
      return "diff-flush";
    case MsgType::kDiffRequest:
      return "diff-request";
    case MsgType::kDiffReply:
      return "diff-reply";
    case MsgType::kPageRequest:
      return "page-request";
    case MsgType::kPageReply:
      return "page-reply";
    case MsgType::kGcRequest:
      return "gc-request";
    case MsgType::kGcInfo:
      return "gc-info";
    case MsgType::kGcValidate:
      return "gc-validate";
    case MsgType::kGcDone:
      return "gc-done";
    case MsgType::kHomeTransfer:
      return "home-transfer";
    case MsgType::kCount:
      break;
  }
  return "?";
}

Network::Network(Engine* engine, int nodes, NetworkConfig config)
    : engine_(engine),
      config_(config),
      mesh_(nodes),
      handlers_(nodes),
      out_free_(nodes, 0),
      in_free_(nodes, 0),
      stats_(nodes) {
  if (config_.model_link_contention) {
    link_free_.assign(static_cast<size_t>(mesh_.MaxLinkId()), 0);
  }
}

void Network::SetHandler(NodeId node, Handler handler) {
  HLRC_CHECK(node >= 0 && node < static_cast<NodeId>(handlers_.size()));
  handlers_[node] = std::move(handler);
}

void Network::Send(Message msg) {
  HLRC_CHECK(msg.src >= 0 && msg.src < static_cast<NodeId>(handlers_.size()));
  HLRC_CHECK(msg.dst >= 0 && msg.dst < static_cast<NodeId>(handlers_.size()));
  HLRC_CHECK_MSG(static_cast<bool>(handlers_[msg.dst]), "no handler on node %d", msg.dst);

  const int64_t bytes = msg.TotalBytes(config_.header_bytes);
  const SimTime now = engine_->Now();

  TrafficStats& s = stats_[msg.src];
  ++s.msgs_sent;
  s.update_bytes_sent += msg.update_bytes;
  s.protocol_bytes_sent += msg.protocol_bytes + config_.header_bytes;
  ++s.msgs_by_type[static_cast<int>(msg.type)];
  ++stats_[msg.dst].msgs_received;

  const SimTime xfer = bytes * config_.per_byte;

  // Sending NIC channel serialization.
  const SimTime departure = std::max(now, out_free_[msg.src]);
  out_free_[msg.src] = departure + xfer;

  // Wire time: latency + hops. With wormhole routing the message is pipelined,
  // so the head arrives after the latency and the tail `xfer` later.
  SimTime head_arrival =
      departure + config_.base_latency + mesh_.Hops(msg.src, msg.dst) * config_.per_hop;

  if (config_.model_link_contention && msg.src != msg.dst) {
    // A wormhole route holds all its links for the duration of the transfer;
    // approximate by serializing on the maximum link availability.
    SimTime route_free = 0;
    const std::vector<int64_t> route = mesh_.Route(msg.src, msg.dst);
    for (int64_t l : route) {
      route_free = std::max(route_free, link_free_[static_cast<size_t>(l)]);
    }
    head_arrival = std::max(head_arrival, route_free + config_.base_latency);
    for (int64_t l : route) {
      link_free_[static_cast<size_t>(l)] = head_arrival + xfer - config_.base_latency;
    }
  }

  // Receiving NIC channel serialization: the message is fully delivered when
  // its bytes have drained into the destination.
  const SimTime delivered = std::max(head_arrival, in_free_[msg.dst]) + xfer;
  in_free_[msg.dst] = delivered;

  Handler& handler = handlers_[msg.dst];
  engine_->ScheduleAt(delivered,
                      [&handler, m = std::make_shared<Message>(std::move(msg))]() mutable {
                        handler(std::move(*m));
                      });
}

TrafficStats Network::TotalStats() const {
  TrafficStats total;
  for (const TrafficStats& s : stats_) {
    total.msgs_sent += s.msgs_sent;
    total.msgs_received += s.msgs_received;
    total.update_bytes_sent += s.update_bytes_sent;
    total.protocol_bytes_sent += s.protocol_bytes_sent;
    for (size_t i = 0; i < s.msgs_by_type.size(); ++i) {
      total.msgs_by_type[i] += s.msgs_by_type[i];
    }
  }
  return total;
}

}  // namespace hlrc

#include "src/net/topology.h"

#include <cmath>
#include <cstdlib>

namespace hlrc {

Mesh2D::Mesh2D(int nodes) : nodes_(nodes) {
  HLRC_CHECK(nodes > 0);
  rows_ = static_cast<int>(std::sqrt(static_cast<double>(nodes)));
  while (rows_ > 1 && nodes % rows_ != 0) {
    --rows_;
  }
  cols_ = (nodes + rows_ - 1) / rows_;
}

int Mesh2D::Hops(NodeId a, NodeId b) const {
  const auto [ar, ac] = Coord(a);
  const auto [br, bc] = Coord(b);
  return std::abs(ar - br) + std::abs(ac - bc);
}

int64_t Mesh2D::LinkId(int from_row, int from_col, int to_row, int to_col) const {
  // Direction: 0=E, 1=W, 2=S, 3=N.
  int dir;
  if (to_col == from_col + 1 && to_row == from_row) {
    dir = 0;
  } else if (to_col == from_col - 1 && to_row == from_row) {
    dir = 1;
  } else if (to_row == from_row + 1 && to_col == from_col) {
    dir = 2;
  } else {
    HLRC_CHECK(to_row == from_row - 1 && to_col == from_col);
    dir = 3;
  }
  return (static_cast<int64_t>(from_row) * cols_ + from_col) * 4 + dir;
}

std::vector<int64_t> Mesh2D::Route(NodeId a, NodeId b) const {
  std::vector<int64_t> links;
  auto [r, c] = Coord(a);
  const auto [br, bc] = Coord(b);
  // X first, then Y (dimension-ordered routing).
  while (c != bc) {
    const int nc = c + (bc > c ? 1 : -1);
    links.push_back(LinkId(r, c, r, nc));
    c = nc;
  }
  while (r != br) {
    const int nr = r + (br > r ? 1 : -1);
    links.push_back(LinkId(r, c, nr, c));
    r = nr;
  }
  return links;
}

}  // namespace hlrc

// Fault-injection hook interface for the simulated interconnect.
//
// The network consults an optional FaultHook once per physical transmission
// (initial sends, retransmissions and acks alike) and applies the returned
// decision: drop the frame in the network, corrupt it (delivered bytes, but
// discarded at the receiving NIC after a checksum failure), duplicate it, or
// delay its head arrival. The hook lives here so that src/net does not depend
// on src/fault; the concrete implementation (`FaultInjector`, driven by a
// `FaultPlan`) is in src/fault/fault_injector.h.
#ifndef SRC_NET_FAULT_HOOK_H_
#define SRC_NET_FAULT_HOOK_H_

#include "src/common/types.h"
#include "src/net/message.h"

namespace hlrc {

// What happens to one physical frame. `drop` and `corrupt` are mutually
// exclusive with `duplicate`; `extra_delay` composes with either a normal or
// a duplicated delivery.
struct FaultDecision {
  bool drop = false;       // Lost in the network: never reaches the receiver.
  bool corrupt = false;    // Reaches the receiver, fails its checksum, dropped.
  bool duplicate = false;  // Delivered twice (e.g. a misrouted-and-recovered copy).
  SimTime extra_delay = 0; // Added to the head arrival time.
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Called at the simulated moment a frame enters the network. Must be
  // deterministic given the call sequence (no wall-clock, no global state).
  virtual FaultDecision OnTransmit(NodeId src, NodeId dst, MsgType type, SimTime now,
                                   bool retransmit) = 0;
};

}  // namespace hlrc

#endif  // SRC_NET_FAULT_HOOK_H_

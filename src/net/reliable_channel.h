// Reliable-delivery layer over the lossy physical interconnect.
//
// The base Network model assumes a perfectly reliable NX/2-style fabric:
// exactly-once, in-order delivery per (src, dst) pair, which every protocol
// in this repo silently depends on (one lost diff-flush or lock-grant would
// deadlock or corrupt coherence). When fault injection makes the fabric
// lossy, this layer restores those guarantees end-to-end — per-destination
// sequence numbers, receiver-side dedup and reordering, and ack / timeout /
// retransmit with exponential backoff — so all protocols run unchanged over
// an unreliable network.
//
// Wire model: each Network::Send becomes a sequenced data frame. Every
// physical arrival of a data frame is acknowledged (acks are header-sized
// kAck messages, themselves subject to fault injection). The sender
// retransmits an unacked frame after `retry_timeout`, doubling the timeout
// by `retry_backoff` per attempt; exhausting `max_retries` is a fatal
// diagnostic (the run aborts instead of hanging). The receiver delivers
// frames to the protocol handler in sequence order per (src, dst) pair,
// holding out-of-order arrivals and dropping duplicates.
//
// Everything is driven by the deterministic engine: identical seeds and
// configurations produce bit-identical runs.
#ifndef SRC_NET_RELIABLE_CHANNEL_H_
#define SRC_NET_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/net/message.h"
#include "src/sim/engine.h"

namespace hlrc {

class Network;

struct ReliabilityConfig {
  bool enabled = false;
  // First retransmission fires this long after a transmission attempt. Must
  // comfortably exceed the worst-case request round trip (base latency +
  // transfer + endpoint queueing), or spurious retransmits waste bandwidth
  // (they are harmless for correctness: the receiver dedups).
  SimTime retry_timeout = Millis(10);
  // Timeout multiplier per successive attempt of the same frame.
  double retry_backoff = 2.0;
  // Retransmissions allowed per frame before the run aborts with a fatal
  // diagnostic. With backoff 2.0 the total patience is
  // retry_timeout * (2^max_retries - 1).
  int max_retries = 12;
  // Protocol bytes carried by an ack (sequence number); headers are added by
  // the network like any other message.
  int64_t ack_bytes = 8;
  // Ack piggybacking (--coalesce): instead of a standalone ack frame per data
  // arrival, owed ack seqs ride the next data frame to that peer; a deadline
  // timer flushes a standalone (possibly multi-seq) ack when no data frame
  // materializes in time. `ack_delay` must exceed the typical request
  // turnaround (receive interrupt 690 us + service) so replies can carry the
  // request's ack, while staying well below `retry_timeout`, or deferring
  // the ack would itself trigger spurious retransmissions.
  bool piggyback_acks = false;
  SimTime ack_delay = Micros(1500);
};

// One physical transmission unit. Data frames reference the original Message
// through a shared pointer: retransmitted copies alias the same storage, and
// the receiver moves the payload out on first acceptance (later duplicates
// are identified by sequence number before the payload is touched).
struct WireFrame {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MsgType type = MsgType::kLockRequest;
  int64_t update_bytes = 0;
  int64_t protocol_bytes = 0;
  uint64_t seq = 0;
  bool is_ack = false;
  // Ack seqs carried by this frame: the single seq of a standalone ack, or
  // any number of piggybacked seqs riding a data frame (acking the reverse
  // direction of this frame's pair).
  std::vector<uint64_t> ack_seqs;
  // Logical part types of a kBundle frame, recorded at submit time so
  // retransmission statistics never touch the (possibly already-consumed)
  // payload. Empty for single-message frames.
  std::vector<MsgType> part_types;
  // Wire span of the latest physical transmission that reached the receiving
  // NIC (span tracing; kNoSpan when tracing is off or the copy was lost).
  SpanId last_wire_span = kNoSpan;
  std::shared_ptr<Message> msg;  // Null for acks.
};

class ReliableChannel {
 public:
  ReliableChannel(Engine* engine, Network* network, ReliabilityConfig config, int nodes);

  // Sender entry point: sequences `msg` and starts (re)transmission attempts.
  void SubmitData(Message msg);

  // Receiver entry point: runs at the physical arrival time of `frame` on
  // `frame->dst`. Handles acks, dedup, reordering and in-order delivery.
  void OnArrival(const std::shared_ptr<WireFrame>& frame);

  // Frames still awaiting an ack (diagnostics / tests).
  int64_t UnackedCount() const;

  const ReliabilityConfig& config() const { return config_; }

 private:
  struct Outstanding {
    std::shared_ptr<WireFrame> frame;
    Engine::EventId timer = Engine::kInvalidEvent;
    int attempts = 0;  // Physical transmissions so far.
    SimTime first_submit = 0;  // When SubmitData sequenced the frame.
  };
  struct SenderPair {
    uint64_t next_seq = 0;
    std::map<uint64_t, Outstanding> unacked;
  };
  struct ReceiverPair {
    uint64_t next_expected = 0;
    std::map<uint64_t, Message> held;  // Out-of-order arrivals awaiting a gap fill.
  };
  // Acks node `a` owes node `b` (for data b->a), indexed PairIndex(a, b).
  // Only populated when config_.piggyback_acks.
  struct AckerPair {
    std::vector<uint64_t> pending;  // Seqs awaiting an ack, arrival order.
    Engine::EventId deadline = Engine::kInvalidEvent;
  };

  size_t PairIndex(NodeId src, NodeId dst) const {
    return static_cast<size_t>(src) * static_cast<size_t>(nodes_) + static_cast<size_t>(dst);
  }

  void TransmitAttempt(SenderPair& sp, uint64_t seq);
  void OnTimeout(NodeId src, NodeId dst, uint64_t seq);
  void SendAck(const WireFrame& data_frame);

  // Retires every seq in `frame->ack_seqs` exactly once: the unacked-map
  // erase is the idempotence guard, so duplicate acks (standalone re-acks,
  // piggybacked copies riding a retransmission) neither double-count the
  // backlog nor record a second — or negative — retransmit-latency sample.
  void ProcessAcks(const WireFrame& frame);

  // Piggyback path: records the owed ack and arms the deadline timer.
  void QueueAck(const WireFrame& data_frame);
  // Deadline fallback: sends every still-owed seq as one standalone ack.
  void FlushAcks(NodeId acker, NodeId peer);

  Engine* engine_;
  Network* network_;
  ReliabilityConfig config_;
  int nodes_;
  std::vector<SenderPair> senders_;     // Indexed by PairIndex(src, dst).
  std::vector<ReceiverPair> receivers_; // Indexed by PairIndex(src, dst).
  std::vector<AckerPair> ackers_;       // Indexed by PairIndex(acker, peer).
};

}  // namespace hlrc

#endif  // SRC_NET_RELIABLE_CHANNEL_H_

#include "src/net/reliable_channel.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/net/network.h"

namespace hlrc {

ReliableChannel::ReliableChannel(Engine* engine, Network* network, ReliabilityConfig config,
                                 int nodes)
    : engine_(engine),
      network_(network),
      config_(config),
      nodes_(nodes),
      senders_(static_cast<size_t>(nodes) * static_cast<size_t>(nodes)),
      receivers_(static_cast<size_t>(nodes) * static_cast<size_t>(nodes)),
      ackers_(config_.piggyback_acks
                  ? static_cast<size_t>(nodes) * static_cast<size_t>(nodes)
                  : 0) {}

void ReliableChannel::SubmitData(Message msg) {
  SenderPair& sp = senders_[PairIndex(msg.src, msg.dst)];
  auto frame = std::make_shared<WireFrame>();
  frame->src = msg.src;
  frame->dst = msg.dst;
  frame->type = msg.type;
  frame->update_bytes = msg.update_bytes;
  frame->protocol_bytes = msg.protocol_bytes;
  frame->seq = sp.next_seq++;
  if (msg.type == MsgType::kBundle) {
    const auto* bundle = static_cast<const BundlePayload*>(msg.payload.get());
    frame->part_types.reserve(bundle->parts.size());
    for (const Message& part : bundle->parts) {
      frame->part_types.push_back(part.type);
    }
  }
  if (config_.piggyback_acks) {
    // Any acks this sender owes the destination ride along: the seqs travel
    // in the data frame's header extension and stay attached across
    // retransmissions (ProcessAcks is idempotent on the receiver).
    AckerPair& ap = ackers_[PairIndex(msg.src, msg.dst)];
    if (!ap.pending.empty()) {
      frame->ack_seqs = std::move(ap.pending);
      ap.pending.clear();
      frame->protocol_bytes +=
          config_.ack_bytes * static_cast<int64_t>(frame->ack_seqs.size());
      network_->stats_[msg.src].acks_piggybacked +=
          static_cast<int64_t>(frame->ack_seqs.size());
      if (ap.deadline != Engine::kInvalidEvent) {
        engine_->Cancel(ap.deadline);
        ap.deadline = Engine::kInvalidEvent;
      }
    }
  }
  frame->msg = std::make_shared<Message>(std::move(msg));
  Outstanding& o = sp.unacked[frame->seq];
  o.frame = frame;
  o.first_submit = engine_->Now();
  if (Network::NodeInstruments* ins = network_->InstrumentsFor(frame->src)) {
    ++*ins->retransmit_backlog;
  }
  TransmitAttempt(sp, frame->seq);
}

void ReliableChannel::TransmitAttempt(SenderPair& sp, uint64_t seq) {
  auto it = sp.unacked.find(seq);
  HLRC_CHECK(it != sp.unacked.end());
  Outstanding& o = it->second;
  ++o.attempts;
  if (o.attempts > 1 && network_->spans_ != nullptr && o.frame->msg != nullptr &&
      o.frame->msg->span != kNoSpan) {
    // A retransmission means the original cause has been blocked since the
    // first submit: record that stretch so the critical path can attribute
    // it to the retry machinery. The frame keeps its original causal parent
    // (satellite: a dropped-then-retransmitted request must still produce one
    // connected span DAG).
    const SpanId r = network_->spans_->Emit(
        SpanKind::kRetransmit, o.frame->src, o.first_submit, engine_->Now(),
        kNoSpan, static_cast<int64_t>(o.frame->type), o.attempts - 1);
    network_->spans_->AddLink(r, o.frame->msg->span);
  }
  network_->Transmit(o.frame, /*retransmit=*/o.attempts > 1);
  // Exponential backoff: pure integer/double arithmetic on virtual time, so
  // identical runs schedule identical timers.
  const SimTime timeout = static_cast<SimTime>(
      static_cast<double>(config_.retry_timeout) * std::pow(config_.retry_backoff, o.attempts - 1));
  o.timer = engine_->Schedule(
      timeout, [this, src = o.frame->src, dst = o.frame->dst, seq] { OnTimeout(src, dst, seq); });
}

void ReliableChannel::OnTimeout(NodeId src, NodeId dst, uint64_t seq) {
  SenderPair& sp = senders_[PairIndex(src, dst)];
  auto it = sp.unacked.find(seq);
  if (it == sp.unacked.end()) {
    return;  // Acked in the meantime (the ack also cancels the timer; belt and braces).
  }
  Outstanding& o = it->second;
  HLRC_CHECK_MSG(
      o.attempts - 1 < config_.max_retries,
      "reliable channel: retry budget exhausted for %s %d->%d seq=%llu after %d attempts "
      "(retry-timeout=%lld ns, backoff=%.2f, max-retries=%d): the destination is "
      "unreachable (partition?) or the retry budget is too small for this loss rate",
      MsgTypeName(o.frame->type), src, dst, static_cast<unsigned long long>(seq), o.attempts,
      static_cast<long long>(config_.retry_timeout), config_.retry_backoff,
      config_.max_retries);
  TransmitAttempt(sp, seq);
}

void ReliableChannel::SendAck(const WireFrame& data_frame) {
  auto ack = std::make_shared<WireFrame>();
  ack->src = data_frame.dst;
  ack->dst = data_frame.src;
  ack->type = MsgType::kAck;
  ack->protocol_bytes = config_.ack_bytes;
  ack->is_ack = true;
  ack->ack_seqs.push_back(data_frame.seq);
  ++network_->stats_[data_frame.dst].acks_sent;
  network_->Transmit(ack, /*retransmit=*/false);
}

void ReliableChannel::ProcessAcks(const WireFrame& frame) {
  if (frame.ack_seqs.empty()) {
    return;
  }
  // The acks travel receiver -> sender, so the acked pair is the reverse of
  // the carrying frame's direction (true for standalone acks and for seqs
  // piggybacked on a data frame alike).
  SenderPair& sp = senders_[PairIndex(frame.dst, frame.src)];
  for (const uint64_t seq : frame.ack_seqs) {
    auto it = sp.unacked.find(seq);
    if (it == sp.unacked.end()) {
      // Already retired: a duplicate ack (re-ack after a retransmission, or
      // a piggybacked copy riding a retransmitted data frame) must be a
      // no-op — in particular it must not decrement the backlog again or
      // record a second retransmit-latency sample.
      continue;
    }
    engine_->Cancel(it->second.timer);
    if (Network::NodeInstruments* ins = network_->InstrumentsFor(frame.dst)) {
      --*ins->retransmit_backlog;
      if (it->second.attempts > 1) {
        // Only frames that actually needed a retransmission: the tail the
        // retry machinery adds on top of the clean round trip. first_submit
        // is a past simulated instant, so the sample is never negative.
        ins->retransmit_ack_ns->Record(engine_->Now() - it->second.first_submit);
      }
    }
    sp.unacked.erase(it);
  }
}

void ReliableChannel::QueueAck(const WireFrame& data_frame) {
  AckerPair& ap = ackers_[PairIndex(data_frame.dst, data_frame.src)];
  for (const uint64_t seq : ap.pending) {
    if (seq == data_frame.seq) {
      return;  // A re-arrival while its ack is still owed: one ack suffices.
    }
  }
  ap.pending.push_back(data_frame.seq);
  if (ap.deadline == Engine::kInvalidEvent) {
    ap.deadline = engine_->Schedule(
        config_.ack_delay, [this, acker = data_frame.dst, peer = data_frame.src] {
          FlushAcks(acker, peer);
        });
  }
}

void ReliableChannel::FlushAcks(NodeId acker, NodeId peer) {
  AckerPair& ap = ackers_[PairIndex(acker, peer)];
  ap.deadline = Engine::kInvalidEvent;
  if (ap.pending.empty()) {
    return;  // Everything piggybacked in the meantime.
  }
  auto ack = std::make_shared<WireFrame>();
  ack->src = acker;
  ack->dst = peer;
  ack->type = MsgType::kAck;
  ack->is_ack = true;
  ack->ack_seqs = std::move(ap.pending);
  ap.pending.clear();
  ack->protocol_bytes = config_.ack_bytes * static_cast<int64_t>(ack->ack_seqs.size());
  ++network_->stats_[acker].acks_sent;
  network_->Transmit(ack, /*retransmit=*/false);
}

void ReliableChannel::OnArrival(const std::shared_ptr<WireFrame>& frame) {
  ProcessAcks(*frame);
  if (frame->is_ack) {
    return;
  }

  // Every physical data arrival is (re-)acked, duplicates included: a
  // duplicate usually means the original ack was lost and the sender is still
  // retransmitting. With piggybacking the ack is merely deferred — onto the
  // next data frame to the sender, or the deadline's standalone ack.
  if (config_.piggyback_acks) {
    QueueAck(*frame);
  } else {
    SendAck(*frame);
  }

  ReceiverPair& rp = receivers_[PairIndex(frame->src, frame->dst)];
  if (frame->seq < rp.next_expected || rp.held.count(frame->seq) != 0) {
    ++network_->stats_[frame->dst].msgs_duplicated_dropped;
    network_->TraceNet(frame->dst, TraceEvent::kNetDupDrop,
                       static_cast<int64_t>(frame->type), frame->src);
    return;
  }

  // First acceptance of this sequence number: take the payload out of the
  // shared frame (later duplicates are rejected by seq before touching it).
  Message msg = std::move(*frame->msg);
  if (frame->last_wire_span != kNoSpan) {
    // Chain the receiver's handler span from the wire span of the physical
    // copy that actually made it (retransmissions alias the same Message).
    msg.span = frame->last_wire_span;
  }
  if (frame->seq != rp.next_expected) {
    rp.held.emplace(frame->seq, std::move(msg));  // Out of order: hold for the gap.
    return;
  }
  ++rp.next_expected;
  network_->DeliverToHandler(std::move(msg));
  // A gap fill releases every consecutively-held successor, in order.
  for (auto hit = rp.held.find(rp.next_expected); hit != rp.held.end();
       hit = rp.held.find(rp.next_expected)) {
    Message next = std::move(hit->second);
    rp.held.erase(hit);
    ++rp.next_expected;
    network_->DeliverToHandler(std::move(next));
  }
}

int64_t ReliableChannel::UnackedCount() const {
  int64_t n = 0;
  for (const SenderPair& sp : senders_) {
    n += static_cast<int64_t>(sp.unacked.size());
  }
  return n;
}

}  // namespace hlrc

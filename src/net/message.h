// Message definitions for the simulated interconnect.
//
// Payloads are protocol-defined: the network layer treats them as opaque data
// with a byte size. `update_bytes` vs `protocol_bytes` mirrors the paper's
// Table 5 traffic split (diff/page data vs write notices, requests and
// synchronization messages).
#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/tracing/span.h"

namespace hlrc {

// Message types, used for statistics and debugging. The receiving protocol
// dispatches on the payload type, not on this enum.
enum class MsgType : int {
  kLockRequest = 0,
  kLockForward = 1,
  kLockGrant = 2,
  kBarrierEnter = 3,
  kBarrierRelease = 4,
  kDiffFlush = 5,    // HLRC: diff pushed to its home.
  kDiffRequest = 6,  // LRC: fetch diffs from a writer.
  kDiffReply = 7,
  kPageRequest = 8,
  kPageReply = 9,
  kGcRequest = 10,   // Manager -> all: start GC inventory.
  kGcInfo = 11,      // Node -> manager: page/diff inventory.
  kGcValidate = 12,  // Manager -> node: pages this node must validate.
  kGcDone = 13,      // Node -> manager: validation finished.
  kHomeTransfer = 14,  // Old home -> new home: page master + flush state.
  kAck = 15,           // Reliable-delivery acknowledgement (src/net/reliable_channel.h).
  kBundle = 16,        // Multi-part coalesced frame (NetworkConfig::coalesce).
  kCount = 17,
};

const char* MsgTypeName(MsgType t);

// Base class for protocol payloads.
//
// Ownership: a Message owns its payload uniquely, but the reliable channel
// may alias the whole Message across retransmissions, and interval-carrying
// payloads (grants, barrier releases) hold shared handles to immutable
// IntervalRecords that fan out to many receivers. Anything reachable from a
// payload that is shared this way must never be mutated after it is sent.
struct Payload {
  virtual ~Payload() = default;
};

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MsgType type = MsgType::kLockRequest;
  // Bytes of update data carried (diff contents, page contents).
  int64_t update_bytes = 0;
  // Bytes of protocol metadata carried (write notices, timestamps, request
  // descriptors). The fixed per-message header is added by the network.
  int64_t protocol_bytes = 0;
  // Causal parent for span tracing (src/tracing/span.h): the span that caused
  // this message. Stamped by the sender, rewritten to the wire span in
  // transit so the receiver's handler span chains through it. kNoSpan when
  // tracing is off. Pure observation — never read by protocol logic.
  SpanId span = kNoSpan;
  std::unique_ptr<Payload> payload;

  int64_t TotalBytes(int64_t header_bytes) const {
    return header_bytes + update_bytes + protocol_bytes;
  }
};

// Multi-part frame built by the coalescing send queue (NetworkConfig::
// coalesce): same-tick messages from one source to one destination ride a
// single kBundle frame, paying one header charge plus a small length prefix
// per part. The network unpacks the bundle at delivery, so protocol handlers
// only ever see the constituent messages.
struct BundlePayload : Payload {
  std::vector<Message> parts;
};

}  // namespace hlrc

#endif  // SRC_NET_MESSAGE_H_

// 2-D mesh topology with dimension-ordered (XY) routing, matching the
// Paragon's wormhole-routed mesh. Only the hop count matters for the latency
// model; the route enumeration is used by the optional link-contention model.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hlrc {

class Mesh2D {
 public:
  // Builds a near-square RxC mesh with R*C >= nodes.
  explicit Mesh2D(int nodes);

  int nodes() const { return nodes_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  std::pair<int, int> Coord(NodeId n) const {
    HLRC_CHECK(n >= 0 && n < nodes_);
    return {n / cols_, n % cols_};
  }

  // Manhattan distance under XY routing.
  int Hops(NodeId a, NodeId b) const;

  // Unique id for the directed link from mesh coordinate u to adjacent v.
  // Used by the link-contention model.
  int64_t LinkId(int from_row, int from_col, int to_row, int to_col) const;

  // Enumerates the directed links of the XY route from a to b, in order.
  std::vector<int64_t> Route(NodeId a, NodeId b) const;

  int64_t MaxLinkId() const { return 4LL * rows_ * cols_; }

 private:
  int nodes_;
  int rows_;
  int cols_;
};

}  // namespace hlrc

#endif  // SRC_NET_TOPOLOGY_H_

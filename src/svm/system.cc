#include "src/svm/system.h"

#include <cstdio>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace hlrc {

// ---------------------------------------------------------------------------
// NodeContext.

NodeContext::NodeContext(System* system, NodeId id) : system_(system), id_(id) {}

int NodeContext::nodes() const { return system_->config_.nodes; }

Task<void> NodeContext::Compute(SimTime duration) {
  if (WorkloadObserver* w = system_->wobserver_) {
    w->OnStep(id_);
    w->OnCompute(id_, duration);
  }
  if (duration > 0) {
    co_await system_->nodes_[static_cast<size_t>(id_)].cpu->ExecuteApp(duration,
                                                                       BusyCat::kCompute);
  }
}

Task<void> NodeContext::ComputeFlops(int64_t flops) {
  return Compute(system_->config_.costs.FlopCost(flops));
}

Task<void> NodeContext::Read(GlobalAddr addr, int64_t bytes) {
  HLRC_CHECK(bytes > 0);
  if (system_->wobserver_ != nullptr) {
    return Access({Range{addr, bytes, /*write=*/false}});
  }
  PageTable& pt = *system_->nodes_[static_cast<size_t>(id_)].pages;
  const PageId first = pt.PageOf(addr);
  const PageId last = pt.PageOf(addr + static_cast<GlobalAddr>(bytes) - 1);
  return system_->nodes_[static_cast<size_t>(id_)].proto->EnsureAccess(first, last, false);
}

Task<void> NodeContext::Write(GlobalAddr addr, int64_t bytes) {
  HLRC_CHECK(bytes > 0);
  if (system_->wobserver_ != nullptr) {
    return Access({Range{addr, bytes, /*write=*/true}});
  }
  PageTable& pt = *system_->nodes_[static_cast<size_t>(id_)].pages;
  const PageId first = pt.PageOf(addr);
  const PageId last = pt.PageOf(addr + static_cast<GlobalAddr>(bytes) - 1);
  return system_->nodes_[static_cast<size_t>(id_)].proto->EnsureAccess(first, last, true);
}

Task<void> NodeContext::Access(const std::vector<Range>& ranges) {
  PageTable& pt = *system_->nodes_[static_cast<size_t>(id_)].pages;
  std::vector<ProtocolNode::PageSpan> spans;
  spans.reserve(ranges.size());
  for (const Range& r : ranges) {
    HLRC_CHECK(r.bytes > 0);
    spans.push_back(ProtocolNode::PageSpan{
        pt.PageOf(r.addr), pt.PageOf(r.addr + static_cast<GlobalAddr>(r.bytes) - 1), r.write});
  }
  if (system_->wobserver_ == nullptr) {
    return system_->nodes_[static_cast<size_t>(id_)].proto->EnsureAccessSpans(std::move(spans));
  }
  return ObservedAccess(ranges, std::move(spans));
}

Task<void> NodeContext::ObservedAccess(std::vector<Range> ranges,
                                       std::vector<ProtocolNode::PageSpan> spans) {
  system_->wobserver_->OnStep(id_);
  co_await system_->nodes_[static_cast<size_t>(id_)].proto->EnsureAccessSpans(std::move(spans));
  // The grant's final pass resumed us synchronously, so the observer sees the
  // freshly granted pages before the program performs a single store.
  system_->wobserver_->OnAccess(id_, ranges);
}

bool NodeContext::NeedsAccess(GlobalAddr addr, int64_t bytes, bool write) const {
  PageTable& pt = *system_->nodes_[static_cast<size_t>(id_)].pages;
  const PageId first = pt.PageOf(addr);
  const PageId last = pt.PageOf(addr + static_cast<GlobalAddr>(bytes) - 1);
  for (PageId p = first; p <= last; ++p) {
    const PageProt prot = pt.State(p).prot;
    if (prot == PageProt::kNone || (write && prot != PageProt::kReadWrite)) {
      return true;
    }
  }
  return false;
}

Task<void> NodeContext::Lock(LockId lock) {
  if (WorkloadObserver* w = system_->wobserver_) {
    w->OnStep(id_);
    w->OnLock(id_, lock);
  }
  return system_->nodes_[static_cast<size_t>(id_)].proto->Acquire(lock);
}

Task<void> NodeContext::Unlock(LockId lock) {
  if (WorkloadObserver* w = system_->wobserver_) {
    w->OnStep(id_);
    w->OnUnlock(id_, lock);
  }
  return system_->nodes_[static_cast<size_t>(id_)].proto->Release(lock);
}

Task<void> NodeContext::Barrier(BarrierId barrier) {
  if (WorkloadObserver* w = system_->wobserver_) {
    w->OnStep(id_);
    w->OnBarrier(id_, barrier);
  }
  return system_->nodes_[static_cast<size_t>(id_)].proto->Barrier(barrier);
}

std::byte* NodeContext::RawPtr(GlobalAddr addr) const {
  return system_->nodes_[static_cast<size_t>(id_)].pages->AddrData(addr);
}

namespace {
void ObserveAccess(System* sys, const ProtocolNode& proto, NodeId node, GlobalAddr addr,
                   uint64_t value, bool is_write, AccessObserver* observer) {
  if (observer == nullptr) {
    return;
  }
  MemoryAccess a;
  a.node = node;
  a.addr = addr;
  a.value = value;
  a.is_write = is_write;
  a.vt = proto.vt();
  a.interval = a.vt.Get(node) + 1;
  a.when = sys->engine().Now();
  observer->OnAccess(a);
}
}  // namespace

Task<uint64_t> NodeContext::LoadWord(GlobalAddr addr) {
  HLRC_CHECK(addr % 8 == 0);
  co_await Read(addr, 8);
  // No suspension between the grant, the load and the observation: the value
  // and the vector timestamp belong to the same instant.
  const uint64_t value = *Ptr<const uint64_t>(addr);
  ObserveAccess(system_, *system_->nodes_[static_cast<size_t>(id_)].proto, id_, addr, value,
                /*is_write=*/false, system_->observer_);
  co_return value;
}

Task<void> NodeContext::StoreWord(GlobalAddr addr, uint64_t value) {
  HLRC_CHECK(addr % 8 == 0);
  co_await Write(addr, 8);
  *Ptr<uint64_t>(addr) = value;
  ObserveAccess(system_, *system_->nodes_[static_cast<size_t>(id_)].proto, id_, addr, value,
                /*is_write=*/true, system_->observer_);
}

void NodeContext::SnapshotPhase(int phase) {
  if (WorkloadObserver* w = system_->wobserver_) {
    w->OnStep(id_);
    w->OnPhase(id_, phase);
  }
  system_->report_.phases[{phase, id_}] = system_->SnapshotNode(id_);
}

// ---------------------------------------------------------------------------
// System.

System::System(const SimConfig& config) : config_(config) {
  HLRC_CHECK(config_.nodes > 0);
  engine_ = std::make_unique<Engine>();
  network_ = std::make_unique<Network>(engine_.get(), config_.nodes, config_.network);
  if (config_.fault.Active()) {
    HLRC_CHECK_MSG(config_.fault.dup_prob == 0 || config_.reliability.enabled,
                   "duplicate injection needs the reliable channel's dedup "
                   "(set reliability.enabled)");
    fault_ = std::make_unique<FaultInjector>(config_.fault);
    network_->SetFaultHook(fault_.get());
  }
  if (config_.reliability.enabled) {
    network_->EnableReliableDelivery(config_.reliability);
  }
  space_ = std::make_unique<SharedSpace>(config_.shared_bytes, config_.page_size);

  nodes_.resize(static_cast<size_t>(config_.nodes));
  for (NodeId n = 0; n < config_.nodes; ++n) {
    Node& node = nodes_[static_cast<size_t>(n)];
    char name[32];
    std::snprintf(name, sizeof(name), "cpu%d", n);
    node.cpu = std::make_unique<Processor>(engine_.get(), name);
    std::snprintf(name, sizeof(name), "cop%d", n);
    node.cop = std::make_unique<Processor>(engine_.get(), name);
    node.pages = std::make_unique<PageTable>(config_.shared_bytes, config_.page_size);

    ProtocolNode::Env env;
    env.engine = engine_.get();
    env.network = network_.get();
    env.cpu = node.cpu.get();
    env.cop = node.cop.get();
    env.pages = node.pages.get();
    env.space = space_.get();
    env.costs = &config_.costs;
    env.options = &config_.protocol;
    env.self = n;
    env.nodes = config_.nodes;
    node.proto = ProtocolNode::Create(env);
    node.ctx = std::make_unique<NodeContext>(this, n);

    network_->SetHandler(
        n, [proto = node.proto.get()](Message msg) { proto->HandleMessage(std::move(msg)); });
  }
}

System::~System() = default;

TraceLog* System::EnableTracing(size_t capacity) {
  HLRC_CHECK_MSG(!ran_, "EnableTracing must precede Run");
  trace_ = std::make_unique<TraceLog>(capacity);
  for (Node& node : nodes_) {
    node.proto->SetTraceLog(trace_.get());
  }
  network_->SetTraceLog(trace_.get());
  return trace_.get();
}

void System::SetWorkloadObserver(WorkloadObserver* observer) {
  HLRC_CHECK_MSG(!ran_, "SetWorkloadObserver must precede Run");
  wobserver_ = observer;
  if (observer == nullptr) {
    space_->SetAllocHook(nullptr);
  } else {
    space_->SetAllocHook([this](GlobalAddr addr, int64_t bytes, bool page_aligned) {
      wobserver_->OnAlloc(addr, bytes, page_aligned);
    });
  }
}

void System::SetCoverageObserver(CoverageObserver* cov) {
  HLRC_CHECK_MSG(!ran_, "SetCoverageObserver must precede Run");
  for (Node& node : nodes_) {
    node.proto->SetCoverageObserver(cov);
  }
  network_->SetCoverageObserver(cov);
}

Metrics* System::EnableMetrics(SimTime sample_interval) {
  HLRC_CHECK_MSG(!ran_, "EnableMetrics must precede Run");
  HLRC_CHECK_MSG(metrics_ == nullptr, "EnableMetrics may only be called once");
  metrics_ = std::make_unique<Metrics>(engine_.get(), config_.nodes,
                                       config_.shared_bytes / config_.page_size,
                                       sample_interval);
  for (NodeId n = 0; n < config_.nodes; ++n) {
    nodes_[static_cast<size_t>(n)].proto->SetMetrics(metrics_->proto(n));
  }
  network_->AttachMetrics(metrics_.get());
  return metrics_.get();
}

SpanTracer* System::EnableSpans(size_t capacity) {
  HLRC_CHECK_MSG(!ran_, "EnableSpans must precede Run");
  HLRC_CHECK_MSG(spans_ == nullptr, "EnableSpans may only be called once");
  spans_ = std::make_unique<SpanTracer>(capacity);
  for (Node& node : nodes_) {
    node.proto->SetSpanTracer(spans_.get());
  }
  network_->SetSpanTracer(spans_.get());
  return spans_.get();
}

void System::Run(const Program& program) {
  HLRC_CHECK_MSG(!ran_, "System::Run may only be called once");
  ran_ = true;

  const int used_pages = static_cast<int>(
      (space_->AllocatedBytes() + config_.page_size - 1) / config_.page_size);
  for (NodeId n = 0; n < config_.nodes; ++n) {
    nodes_[static_cast<size_t>(n)].proto->SetUsedPages(std::max(used_pages, 1));
  }

  for (NodeId n = 0; n < config_.nodes; ++n) {
    Node& node = nodes_[static_cast<size_t>(n)];
    SpawnDetached(program(*node.ctx), [this, n] {
      Node& done_node = nodes_[static_cast<size_t>(n)];
      done_node.done = true;
      done_node.finish_time = engine_->Now();
      if (wobserver_ != nullptr) {
        wobserver_->OnFinish(n);
      }
    });
  }

  if (metrics_ != nullptr) {
    // After the programs are spawned so the t=0 tick sees a live queue; the
    // sampler stops rescheduling itself once the rest of the queue drains.
    metrics_->sampler().Start();
  }

  engine_->Run();

  for (NodeId n = 0; n < config_.nodes; ++n) {
    HLRC_CHECK_MSG(nodes_[static_cast<size_t>(n)].done,
                   "deadlock: node %d did not finish (vt stuck, check lock/barrier pairing)",
                   n);
  }

  report_.total_time = 0;
  report_.app_memory_bytes = space_->AllocatedBytes();
  report_.nodes.clear();
  for (NodeId n = 0; n < config_.nodes; ++n) {
    NodeReport r = SnapshotNode(n);
    report_.total_time = std::max(report_.total_time, r.finish_time);
    report_.nodes.push_back(std::move(r));
  }
}

NodeReport System::SnapshotNode(NodeId n) const {
  const Node& node = nodes_[static_cast<size_t>(n)];
  NodeReport r;
  r.finish_time = node.done ? node.finish_time : engine_->Now();
  r.cpu_busy = node.cpu->busy();
  r.cop_busy = node.cop->busy();
  r.proto = node.proto->stats();
  r.waits = r.proto.waits;
  r.traffic = network_->NodeStats(n);
  r.proto_mem_highwater = r.proto.proto_mem_highwater;
  return r;
}

std::byte* System::NodeMemory(NodeId node, GlobalAddr addr) {
  return nodes_[static_cast<size_t>(node)].pages->AddrData(addr);
}

NodeReport RunReport::Average() const {
  NodeReport avg = Totals();
  const int64_t n = static_cast<int64_t>(nodes.size());
  if (n == 0) {
    return avg;
  }
  for (auto& v : avg.cpu_busy.by_cat) {
    v /= n;
  }
  for (auto& v : avg.cop_busy.by_cat) {
    v /= n;
  }
  for (auto& v : avg.waits.by_cat) {
    v /= n;
  }
  avg.finish_time /= n;
  avg.proto.read_misses /= n;
  avg.proto.write_faults /= n;
  avg.proto.page_fetches /= n;
  avg.proto.diffs_created /= n;
  avg.proto.diffs_applied /= n;
  avg.proto.diff_requests_sent /= n;
  avg.proto.lock_acquires /= n;
  avg.proto.remote_acquires /= n;
  avg.proto.barriers /= n;
  avg.proto.intervals_closed /= n;
  avg.proto.write_notices_received /= n;
  avg.proto.pages_invalidated /= n;
  avg.proto.interval_meta_highwater /= n;
  avg.proto_mem_highwater /= n;
  avg.traffic.msgs_sent /= n;
  avg.traffic.update_bytes_sent /= n;
  avg.traffic.protocol_bytes_sent /= n;
  return avg;
}

NodeReport RunReport::Totals() const {
  NodeReport total;
  for (const NodeReport& r : nodes) {
    total.finish_time += r.finish_time;
    total.cpu_busy += r.cpu_busy;
    total.cop_busy += r.cop_busy;
    total.waits += r.waits;
    total.proto.read_misses += r.proto.read_misses;
    total.proto.write_faults += r.proto.write_faults;
    total.proto.page_fetches += r.proto.page_fetches;
    total.proto.diffs_created += r.proto.diffs_created;
    total.proto.diffs_applied += r.proto.diffs_applied;
    total.proto.diff_requests_sent += r.proto.diff_requests_sent;
    total.proto.lock_acquires += r.proto.lock_acquires;
    total.proto.remote_acquires += r.proto.remote_acquires;
    total.proto.barriers += r.proto.barriers;
    total.proto.intervals_closed += r.proto.intervals_closed;
    total.proto.write_notices_received += r.proto.write_notices_received;
    total.proto.pages_invalidated += r.proto.pages_invalidated;
    total.proto.gc_runs += r.proto.gc_runs;
    total.proto.page_replies_combined += r.proto.page_replies_combined;
    total.proto.interval_meta_highwater += r.proto.interval_meta_highwater;
    total.proto_mem_highwater += r.proto_mem_highwater;
    total.traffic.msgs_sent += r.traffic.msgs_sent;
    total.traffic.msgs_received += r.traffic.msgs_received;
    total.traffic.update_bytes_sent += r.traffic.update_bytes_sent;
    total.traffic.protocol_bytes_sent += r.traffic.protocol_bytes_sent;
    total.traffic.msgs_retransmitted += r.traffic.msgs_retransmitted;
    total.traffic.msgs_dropped_in_net += r.traffic.msgs_dropped_in_net;
    total.traffic.msgs_duplicated_dropped += r.traffic.msgs_duplicated_dropped;
    total.traffic.acks_sent += r.traffic.acks_sent;
    total.traffic.frames_coalesced += r.traffic.frames_coalesced;
    total.traffic.msgs_coalesced += r.traffic.msgs_coalesced;
    total.traffic.acks_piggybacked += r.traffic.acks_piggybacked;
    for (size_t i = 0; i < r.traffic.msgs_by_type.size(); ++i) {
      total.traffic.msgs_by_type[i] += r.traffic.msgs_by_type[i];
    }
  }
  return total;
}

}  // namespace hlrc

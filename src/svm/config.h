// Top-level simulation configuration.
#ifndef SRC_SVM_CONFIG_H_
#define SRC_SVM_CONFIG_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/net/network.h"
#include "src/proto/cost_model.h"
#include "src/proto/options.h"

namespace hlrc {

struct SimConfig {
  int nodes = 8;
  // SVM page size. The Paragon's OSF/1 used 8 KB pages; smaller pages keep
  // scaled-down problems in a comparable sharing regime.
  int64_t page_size = 4096;
  // Size of the global shared address space (per-node mirror allocation).
  int64_t shared_bytes = 64ll << 20;

  ProtocolOptions protocol;
  NetworkConfig network;
  CostModel costs;
};

}  // namespace hlrc

#endif  // SRC_SVM_CONFIG_H_

// Top-level simulation configuration.
#ifndef SRC_SVM_CONFIG_H_
#define SRC_SVM_CONFIG_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/fault/fault_plan.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/proto/cost_model.h"
#include "src/proto/options.h"

namespace hlrc {

struct SimConfig {
  int nodes = 8;
  // SVM page size. The Paragon's OSF/1 used 8 KB pages; smaller pages keep
  // scaled-down problems in a comparable sharing regime.
  int64_t page_size = 4096;
  // Size of the global shared address space (per-node mirror allocation).
  int64_t shared_bytes = 64ll << 20;
  // Root seed of the run, echoed in reports for reproducibility. Consumers
  // (application inputs, the fault injector) derive their own seeds from it
  // unless configured explicitly.
  uint64_t seed = 42;

  ProtocolOptions protocol;
  NetworkConfig network;
  CostModel costs;
  // Fault injection (docs/FAULTS.md). An Active() plan makes the fabric
  // lossy; pair it with `reliability.enabled` unless the point of the run is
  // to watch a protocol deadlock.
  FaultPlan fault;
  ReliabilityConfig reliability;
};

}  // namespace hlrc

#endif  // SRC_SVM_CONFIG_H_

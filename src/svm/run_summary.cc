#include "src/svm/run_summary.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/metrics/json_writer.h"
#include "src/metrics/metrics.h"
#include "src/metrics/run_summary_schema.h"
#include "src/svm/system.h"
#include "src/tracing/span.h"

namespace hlrc {

namespace {

constexpr size_t kHotPageLimit = 32;

void WriteConfig(JsonWriter& w, const System& sys, const RunSummaryMeta& meta) {
  const SimConfig& c = sys.config();
  w.Key("config");
  w.BeginObject();
  w.KV("app", meta.app.empty() ? "custom" : meta.app);
  w.KV("scale", meta.scale.empty() ? "default" : meta.scale);
  w.KV("protocol", ProtocolName(c.protocol.kind));
  w.KV("nodes", c.nodes);
  w.KV("page_size", c.page_size);
  w.KV("shared_bytes", c.shared_bytes);
  w.KV("seed", static_cast<int64_t>(c.seed));
  w.KV("home_policy", HomePolicyName(c.protocol.home_policy));
  w.KV("diff_policy", DiffPolicyName(c.protocol.diff_policy));
  w.KV("migrate_homes", c.protocol.migrate_homes);
  w.KV("faults_active", c.fault.Active());
  w.KV("reliable_delivery", c.reliability.enabled);
  w.EndObject();
}

void WriteProtoTotals(JsonWriter& w, const NodeReport& t) {
  w.Key("proto");
  w.BeginObject();
  w.KV("read_misses", t.proto.read_misses);
  w.KV("write_faults", t.proto.write_faults);
  w.KV("page_fetches", t.proto.page_fetches);
  w.KV("diffs_created", t.proto.diffs_created);
  w.KV("diffs_applied", t.proto.diffs_applied);
  w.KV("diff_requests_sent", t.proto.diff_requests_sent);
  w.KV("lock_acquires", t.proto.lock_acquires);
  w.KV("remote_acquires", t.proto.remote_acquires);
  w.KV("barriers", t.proto.barriers);
  w.KV("intervals_closed", t.proto.intervals_closed);
  w.KV("write_notices_received", t.proto.write_notices_received);
  w.KV("pages_invalidated", t.proto.pages_invalidated);
  w.KV("gc_runs", t.proto.gc_runs);
  w.KV("proto_mem_highwater", t.proto_mem_highwater);
  w.EndObject();
}

void WriteTrafficTotals(JsonWriter& w, const NodeReport& t) {
  w.Key("traffic");
  w.BeginObject();
  w.KV("msgs_sent", t.traffic.msgs_sent);
  w.KV("msgs_received", t.traffic.msgs_received);
  w.KV("update_bytes_sent", t.traffic.update_bytes_sent);
  w.KV("protocol_bytes_sent", t.traffic.protocol_bytes_sent);
  w.KV("msgs_retransmitted", t.traffic.msgs_retransmitted);
  w.KV("msgs_dropped_in_net", t.traffic.msgs_dropped_in_net);
  w.KV("msgs_duplicated_dropped", t.traffic.msgs_duplicated_dropped);
  w.KV("acks_sent", t.traffic.acks_sent);
  w.Key("msgs_by_type");
  w.BeginObject();
  for (size_t i = 0; i < t.traffic.msgs_by_type.size(); ++i) {
    if (t.traffic.msgs_by_type[i] > 0) {
      w.KV(MsgTypeName(static_cast<MsgType>(i)), t.traffic.msgs_by_type[i]);
    }
  }
  w.EndObject();
  w.EndObject();
}

void WritePerNode(JsonWriter& w, const RunReport& report) {
  w.Key("per_node");
  w.BeginArray();
  for (size_t n = 0; n < report.nodes.size(); ++n) {
    const NodeReport& r = report.nodes[n];
    w.BeginObject();
    w.KV("node", static_cast<int64_t>(n));
    w.KV("finish_ns", r.finish_time);
    w.KV("compute_ns", r.Computation());
    w.KV("data_wait_ns", r.DataTransfer());
    w.KV("lock_wait_ns", r.LockTime());
    w.KV("barrier_wait_ns", r.BarrierTime());
    w.KV("gc_ns", r.GcTime());
    w.KV("proto_overhead_ns", r.ProtocolOverhead());
    w.KV("cop_busy_ns", r.cop_busy.Total());
    w.KV("msgs_sent", r.traffic.msgs_sent);
    w.KV("update_bytes_sent", r.traffic.update_bytes_sent);
    w.KV("protocol_bytes_sent", r.traffic.protocol_bytes_sent);
    w.KV("proto_mem_highwater", r.proto_mem_highwater);
    w.EndObject();
  }
  w.EndArray();
}

void WriteCounters(JsonWriter& w, const MetricsRegistry& reg) {
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, per_node] : reg.counters()) {
    w.Key(name);
    w.BeginObject();
    int64_t total = 0;
    w.Key("per_node");
    w.BeginArray();
    for (int64_t v : *per_node) {
      w.Int(v);
      total += v;
    }
    w.EndArray();
    w.KV("total", total);
    w.EndObject();
  }
  w.EndObject();
}

void WriteHistograms(JsonWriter& w, const MetricsRegistry& reg) {
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, per_node] : reg.histograms()) {
    const Histogram merged = reg.MergedHisto(name);
    if (merged.Empty()) {
      continue;  // Never-recorded instruments would only bloat the file.
    }
    w.Key(name);
    w.BeginObject();
    w.KV("count", merged.Count());
    w.KV("sum", merged.Sum());
    w.KV("min", merged.Min());
    w.KV("max", merged.Max());
    w.KV("mean", merged.Mean());
    w.Key("percentiles");
    w.BeginObject();
    w.KV("p50", merged.Percentile(50));
    w.KV("p90", merged.Percentile(90));
    w.KV("p99", merged.Percentile(99));
    w.KV("p999", merged.Percentile(99.9));
    w.EndObject();
    w.Key("buckets");
    w.BeginArray();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const int64_t n = merged.buckets()[static_cast<size_t>(b)];
      if (n == 0) {
        continue;
      }
      w.BeginObject();
      w.KV("lo", Histogram::BucketLow(b));
      w.KV("hi", Histogram::BucketHigh(b));
      w.KV("count", n);
      w.EndObject();
    }
    w.EndArray();
    w.Key("per_node_counts");
    w.BeginArray();
    for (const Histogram& h : *per_node) {
      w.Int(h.Count());
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
}

void WriteTimeseries(JsonWriter& w, const Sampler& sampler) {
  w.Key("timeseries");
  w.BeginObject();
  w.KV("interval_ns", sampler.interval());
  w.KV("truncated", sampler.truncated());
  w.Key("series");
  w.BeginArray();
  for (const Sampler::SeriesInfo& s : sampler.series()) {
    w.BeginObject();
    w.KV("name", s.name);
    w.KV("node", s.node);
    w.EndObject();
  }
  w.EndArray();
  w.Key("samples");
  w.BeginArray();
  for (const Sampler::Sample& s : sampler.samples()) {
    w.BeginObject();
    w.KV("t_ns", s.time);
    w.Key("v");
    w.BeginArray();
    for (double v : s.values) {
      w.Double(v);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void WriteHotPages(JsonWriter& w, const PageHeatProfiler& heat) {
  w.Key("hot_pages");
  w.BeginArray();
  for (const PageHeatProfiler::HotPage& hp : heat.TopN(kHotPageLimit)) {
    w.BeginObject();
    w.KV("page", hp.page);
    w.KV("score", hp.heat.Score());
    w.KV("read_faults", hp.heat.read_faults);
    w.KV("write_faults", hp.heat.write_faults);
    w.KV("fetches", hp.heat.fetches);
    w.KV("fetch_bytes", hp.heat.fetch_bytes);
    w.KV("diff_bytes_created", hp.heat.diff_bytes_created);
    w.KV("diffs_applied", hp.heat.diffs_applied);
    w.KV("diff_bytes_applied", hp.heat.diff_bytes_applied);
    w.KV("writers", static_cast<int64_t>(hp.heat.Writers()));
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

std::string RunSummaryJson(const System& sys, const RunSummaryMeta& meta) {
  const Metrics* metrics = sys.metrics();
  HLRC_CHECK_MSG(metrics != nullptr,
                 "RunSummaryJson requires System::EnableMetrics before the run");
  const RunReport& report = sys.report();

  JsonWriter w;
  w.BeginObject();
  w.KV("schema", kRunSummarySchemaName);
  w.KV("version", kRunSummarySchemaVersion);
  WriteConfig(w, sys, meta);
  w.KV("verified", meta.verified);
  if (meta.coverage.enabled) {
    w.Key("coverage");
    w.BeginObject();
    w.KV("points", meta.coverage.points);
    w.KV("hits", meta.coverage.hits);
    w.Key("domains");
    w.BeginObject();
    for (int d = 0; d < CoverageObserver::kDomains; ++d) {
      w.KV(CoverageDomainName(static_cast<CoverageObserver::Domain>(d)),
           meta.coverage.domain_points[static_cast<size_t>(d)]);
    }
    w.EndObject();
    w.EndObject();
  }

  const NodeReport totals = report.Totals();
  w.Key("totals");
  w.BeginObject();
  w.KV("virtual_time_ns", report.total_time);
  w.KV("app_memory_bytes", report.app_memory_bytes);
  WriteProtoTotals(w, totals);
  WriteTrafficTotals(w, totals);
  w.EndObject();

  WritePerNode(w, report);
  WriteCounters(w, metrics->registry());
  WriteHistograms(w, metrics->registry());
  WriteTimeseries(w, metrics->sampler());
  WriteHotPages(w, metrics->heat());
  if (sys.spans() != nullptr) {
    WriteSpansJson(&w, *sys.spans());
  }
  w.EndObject();
  return w.str();
}

bool WriteRunSummaryJson(const std::string& path, const System& sys,
                         const RunSummaryMeta& meta, std::string* err) {
  const std::string json = RunSummaryJson(sys, meta);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) {
      *err = "cannot open " + path + " for writing";
    }
    return false;
  }
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool nl = std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || n != json.size() || !nl) {
    if (err != nullptr) {
      *err = "short write to " + path;
    }
    return false;
  }
  return true;
}

}  // namespace hlrc

// Partitioning helpers shared by the benchmark applications and available to
// user programs: balanced contiguous bands (rows, molecules, cells) and
// contiguous block ownership, matching the paper's decompositions.
#ifndef SRC_SVM_PARTITION_H_
#define SRC_SVM_PARTITION_H_

#include "src/common/check.h"
#include "src/common/types.h"

namespace hlrc {

// A contiguous [first, last] range of items owned by one node. Empty when
// last < first (more nodes than items).
struct Band {
  int first = 0;
  int last = -1;

  int size() const { return last - first + 1; }
  bool empty() const { return last < first; }
  bool Contains(int i) const { return i >= first && i <= last; }
};

// Splits `items` into `parts` balanced contiguous bands; the first
// `items % parts` bands get one extra item.
inline Band BandOf(int items, int parts, int index) {
  HLRC_CHECK(parts > 0 && index >= 0 && index < parts);
  const int per = items / parts;
  const int extra = items % parts;
  Band band;
  band.first = index * per + (index < extra ? index : extra);
  band.last = band.first + per - 1 + (index < extra ? 1 : 0);
  return band;
}

// Owner of item `index` under the BandOf() split (the inverse mapping).
inline int BandOwner(int items, int parts, int index) {
  HLRC_CHECK(index >= 0 && index < items);
  const int per = items / parts;
  const int extra = items % parts;
  const int boundary = extra * (per + 1);
  if (index < boundary) {
    return index / (per + 1);
  }
  if (per == 0) {
    return parts - 1;  // Unreachable when index < items; defensive.
  }
  return extra + (index - boundary) / per;
}

// Contiguous-chunk owner: item i of `total` belongs to node floor(i*N/total).
// This is the paper's LU block distribution ("contiguous blocks distributed
// in contiguous chunks") and the block home policy's formula.
inline NodeId ContiguousOwner(int64_t index, int64_t total, int nodes) {
  HLRC_CHECK(index >= 0 && index < total);
  return static_cast<NodeId>(index * nodes / total);
}

}  // namespace hlrc

#endif  // SRC_SVM_PARTITION_H_

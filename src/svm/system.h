// svm::System — the user-facing entry point.
//
// A System builds the simulated multicomputer (engine, network, per-node
// compute + communication processors, page tables, protocol instances), runs
// one coroutine program per node against the shared-memory API, and reports
// per-node statistics in the categories the paper uses.
//
// Programming model (paper §3.2, Splash-2 style): shared memory is carved
// out with G_MALLOC-style allocation; programs synchronize exclusively with
// LOCK/UNLOCK/BARRIER; a program announces its page accesses through
// Read/Write (the software-MMU equivalent of touching the pages) and then
// operates on raw pointers into its node's copy of the space.
#ifndef SRC_SVM_SYSTEM_H_
#define SRC_SVM_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/fault/fault_injector.h"
#include "src/mem/page_table.h"
#include "src/metrics/metrics.h"
#include "src/mem/shared_space.h"
#include "src/net/network.h"
#include "src/proto/observer.h"
#include "src/proto/protocol.h"
#include "src/sim/engine.h"
#include "src/sim/processor.h"
#include "src/sim/task.h"
#include "src/svm/config.h"
#include "src/svm/workload_observer.h"
#include "src/trace/trace.h"

namespace hlrc {

class System;

// Per-node handle passed to application programs.
class NodeContext {
 public:
  NodeContext(System* system, NodeId id);

  NodeId id() const { return id_; }
  int nodes() const;

  // Charges application computation on the compute processor.
  Task<void> Compute(SimTime duration);
  Task<void> ComputeFlops(int64_t flops);

  // One range of an access grant (shared with the workload-observation
  // layer, src/svm/workload_observer.h).
  using Range = AccessRange;

  // Ensures [addr, addr+bytes) is readable / writable, faulting as needed.
  //
  // Contract (software-MMU equivalent of hardware write protection): a write
  // grant only holds until the program's next co_await — an asynchronous
  // interval close may re-protect pages afterwards. Perform all stores into a
  // granted range before suspending, and use Access() to grant several ranges
  // atomically when stores to multiple arrays are interleaved.
  Task<void> Read(GlobalAddr addr, int64_t bytes);
  Task<void> Write(GlobalAddr addr, int64_t bytes);
  Task<void> Access(const std::vector<Range>& ranges);

  // True if an access would fault (fast path check for hot loops).
  bool NeedsAccess(GlobalAddr addr, int64_t bytes, bool write) const;

  Task<void> Lock(LockId lock);
  Task<void> Unlock(LockId lock);
  Task<void> Barrier(BarrierId barrier);

  // Raw pointer into this node's copy of the shared space. Only valid for
  // ranges previously granted by Read/Write.
  template <typename T>
  T* Ptr(GlobalAddr addr) const {
    return reinterpret_cast<T*>(RawPtr(addr));
  }

  // Observed single-word accesses: grant access, perform the load/store on
  // this node's copy, and report the access (with the node's current vector
  // timestamp) to the System's AccessObserver, if any. The litmus programs
  // (src/apps/litmus.h) route every checked access through these so the
  // consistency oracle sees the exact value each read returned. `addr` must
  // be 8-byte aligned.
  Task<uint64_t> LoadWord(GlobalAddr addr);
  Task<void> StoreWord(GlobalAddr addr, uint64_t value);

  // Snapshots this node's statistics under `phase` (used for the paper's
  // Figure 4 inter-barrier windows).
  void SnapshotPhase(int phase);

  System* system() const { return system_; }

 private:
  std::byte* RawPtr(GlobalAddr addr) const;

  // Grant wrapper used when a WorkloadObserver is installed: reports the
  // grant after it completes, still synchronously with the program's
  // resumption (so the observer's snapshot sees exactly the granted state).
  Task<void> ObservedAccess(std::vector<Range> ranges,
                            std::vector<ProtocolNode::PageSpan> spans);

  System* system_;
  NodeId id_;
};

// Everything measured about one node in one run.
struct NodeReport {
  SimTime finish_time = 0;
  BusyBreakdown cpu_busy;
  BusyBreakdown cop_busy;
  WaitBreakdown waits;
  ProtoStats proto;
  TrafficStats traffic;
  int64_t proto_mem_highwater = 0;

  // The paper's Figure 3 categories.
  SimTime Computation() const { return cpu_busy.Get(BusyCat::kCompute); }
  SimTime DataTransfer() const { return waits.Get(WaitCat::kData); }
  SimTime LockTime() const { return waits.Get(WaitCat::kLock); }
  SimTime BarrierTime() const { return waits.Get(WaitCat::kBarrier); }
  SimTime GcTime() const { return waits.Get(WaitCat::kGc) + cpu_busy.Get(BusyCat::kGc); }
  SimTime ProtocolOverhead() const {
    return cpu_busy.Total() - cpu_busy.Get(BusyCat::kCompute) - cpu_busy.Get(BusyCat::kGc);
  }
};

struct RunReport {
  SimTime total_time = 0;
  int64_t app_memory_bytes = 0;
  std::vector<NodeReport> nodes;
  // Phase snapshots: (phase, node) -> cumulative report at the snapshot.
  std::map<std::pair<int, NodeId>, NodeReport> phases;

  NodeReport Average() const;
  NodeReport Totals() const;
};

class System {
 public:
  using Program = std::function<Task<void>(NodeContext&)>;

  explicit System(const SimConfig& config);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const SimConfig& config() const { return config_; }
  SharedSpace& space() { return *space_; }
  Engine& engine() { return *engine_; }
  Network& network() { return *network_; }
  // Non-null when config.fault is active (injected-fault counters).
  const FaultInjector* fault_injector() const { return fault_.get(); }

  // Enables structured protocol tracing (see src/trace). Must be called
  // before Run. Returns the log for inspection/dumping after the run.
  TraceLog* EnableTracing(size_t capacity = 1 << 20);
  TraceLog* trace() { return trace_.get(); }

  // Enables the metrics layer (src/metrics): per-node latency histograms in
  // the protocol and network, the per-page heat profile, and a sampler that
  // snapshots gauge series every `sample_interval` of simulated time. Must
  // be called before Run. Recording is pure observation — enabling metrics
  // does not change a single simulated timestamp (tested by
  // test_golden_determinism). Returns the bundle for export/inspection.
  Metrics* EnableMetrics(SimTime sample_interval = Millis(1));
  Metrics* metrics() { return metrics_.get(); }
  const Metrics* metrics() const { return metrics_.get(); }

  // Enables causal span tracing (src/tracing): per-operation cross-node
  // lifecycles — page faults, lock-acquire chains, barrier epochs, retransmit
  // sub-spans — recorded as a span DAG for critical-path attribution
  // (tools/svmtrace). Must be called before Run. Pure observation: enabling
  // spans does not change a single simulated timestamp (tested by
  // test_golden_determinism).
  SpanTracer* EnableSpans(size_t capacity = 1 << 16);
  SpanTracer* spans() { return spans_.get(); }
  const SpanTracer* spans() const { return spans_.get(); }

  // Registers an observer notified of every access made through
  // NodeContext::LoadWord / StoreWord (consistency checking; src/check).
  // Pass nullptr to remove. The observer must outlive Run.
  void SetAccessObserver(AccessObserver* observer) { observer_ = observer; }

  // Registers a workload observer notified of allocations, access grants,
  // synchronization and compute charges (trace recording; src/wkld). Must be
  // installed before App::Setup so it sees the allocations. Pass nullptr to
  // remove. The observer must outlive Run. Pure observation: installing one
  // does not change a single simulated timestamp.
  void SetWorkloadObserver(WorkloadObserver* observer);
  WorkloadObserver* workload_observer() const { return wobserver_; }

  // Installs a coverage observer on every protocol node and the network
  // (src/common/coverage.h): protocol-state coverage points for the fuzzer's
  // feedback signal and the run-summary coverage export. Must be called
  // before Run. Pure observation; pass nullptr to remove. The observer must
  // outlive Run.
  void SetCoverageObserver(CoverageObserver* cov);

  // Runs `program` on every node to completion. Aborts with a diagnostic if
  // the programs deadlock (event queue drained with unfinished programs).
  void Run(const Program& program);

  const RunReport& report() const { return report_; }

  // Direct access to one node's copy of the space (post-run verification).
  std::byte* NodeMemory(NodeId node, GlobalAddr addr);

 private:
  friend class NodeContext;

  struct Node {
    std::unique_ptr<Processor> cpu;
    std::unique_ptr<Processor> cop;
    std::unique_ptr<PageTable> pages;
    std::unique_ptr<ProtocolNode> proto;
    std::unique_ptr<NodeContext> ctx;
    bool done = false;
    SimTime finish_time = 0;
  };

  NodeReport SnapshotNode(NodeId n) const;

  SimConfig config_;
  std::unique_ptr<TraceLog> trace_;
  std::unique_ptr<Metrics> metrics_;
  std::unique_ptr<SpanTracer> spans_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<FaultInjector> fault_;  // Outlives network_ (installed as its hook).
  std::unique_ptr<Network> network_;
  std::unique_ptr<SharedSpace> space_;
  std::vector<Node> nodes_;
  RunReport report_;
  AccessObserver* observer_ = nullptr;
  WorkloadObserver* wobserver_ = nullptr;
  bool ran_ = false;
};

}  // namespace hlrc

#endif  // SRC_SVM_SYSTEM_H_

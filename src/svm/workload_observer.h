// Workload observation: the callback surface behind the trace recorder
// (src/wkld, docs/WORKLOADS.md).
//
// A WorkloadObserver registered with svm::System sees the complete
// protocol-relevant behavior of an application — shared allocations, access
// grants, synchronization operations and charged compute time — without
// seeing any of its arithmetic. That stream is exactly what a replay needs to
// re-execute the workload under a different protocol: the simulated run is a
// deterministic function of (per-node operation sequence, page contents,
// SimConfig), and page contents are reconstructed by the recorder's
// write-capture (see wkld::TraceRecorder).
//
// Callback timing contract, per node:
//   - OnStep fires at the entry of every NodeContext operation, before the
//     operation does anything. Because a program's stores happen
//     synchronously between two NodeContext calls (the software-MMU grant
//     contract, src/svm/system.h), OnStep is the earliest point at which the
//     stores since the previous grant are complete — the recorder diffs its
//     write-range snapshots here.
//   - OnAccess fires after the grant completed, at the instant the program
//     resumes with the granted (and freshly fetched/updated) pages: the
//     right moment to snapshot write ranges.
//   - Everything else fires at operation entry, after OnStep.
//
// Observation is pure: no callback charges simulated time or schedules
// events, so an installed observer cannot change a single simulated
// timestamp (pinned by test_golden_determinism).
#ifndef SRC_SVM_WORKLOAD_OBSERVER_H_
#define SRC_SVM_WORKLOAD_OBSERVER_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace hlrc {

// One byte range of an access grant (NodeContext::Range is an alias).
struct AccessRange {
  GlobalAddr addr;
  int64_t bytes;
  bool write;

  bool operator==(const AccessRange& o) const {
    return addr == o.addr && bytes == o.bytes && write == o.write;
  }
};

class WorkloadObserver {
 public:
  virtual ~WorkloadObserver() = default;

  // Shared-space allocation (during App::Setup, before Run).
  virtual void OnAlloc(GlobalAddr addr, int64_t bytes, bool page_aligned) = 0;

  // Entry of every NodeContext operation (see timing contract above).
  virtual void OnStep(NodeId node) = 0;

  virtual void OnCompute(NodeId node, SimTime duration) = 0;
  // After the grant completed; `ranges` is the grant as the program issued it.
  virtual void OnAccess(NodeId node, const std::vector<AccessRange>& ranges) = 0;
  virtual void OnLock(NodeId node, LockId lock) = 0;
  virtual void OnUnlock(NodeId node, LockId lock) = 0;
  virtual void OnBarrier(NodeId node, BarrierId barrier) = 0;
  virtual void OnPhase(NodeId node, int phase) = 0;

  // The node's program finished (its last stores are complete).
  virtual void OnFinish(NodeId node) = 0;
};

}  // namespace hlrc

#endif  // SRC_SVM_WORKLOAD_OBSERVER_H_

// Versioned JSON run summary (schema "hlrc-run-summary", version 1).
//
// One machine-readable artifact per run: configuration, the paper-style
// per-node time breakdowns, ProtoStats/TrafficStats totals, every non-empty
// latency histogram with buckets and percentiles, the sampler time-series,
// and the ranked hot-page table. Designed to be diffed across commits —
// `tools/svmprof` consumes one or two of these; docs/OBSERVABILITY.md
// documents every field, and src/metrics/run_summary_schema.h validates the
// shape. Bump the version whenever a field changes meaning or disappears;
// adding fields is backward compatible.
#ifndef SRC_SVM_RUN_SUMMARY_H_
#define SRC_SVM_RUN_SUMMARY_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/coverage.h"

namespace hlrc {

class System;

// Descriptive fields the System does not know about.
struct RunSummaryMeta {
  std::string app;    // Application name ("sor", "lu", ...; "custom" if none).
  std::string scale;  // Problem scale ("tiny", "default", "paper", ...).
  bool verified = false;
  // Protocol-state coverage of the run (svmsim --coverage / svmfuzz; see
  // docs/FUZZING.md). Plain data so src/svm does not depend on the concrete
  // map in src/fuzz; emitted as an optional "coverage" object when enabled.
  struct Coverage {
    bool enabled = false;
    int64_t points = 0;  // Distinct coverage points.
    int64_t hits = 0;    // Total emissions.
    std::array<int64_t, CoverageObserver::kDomains> domain_points = {};
  } coverage;
};

// Renders the summary for a completed run. Requires System::EnableMetrics to
// have been active during the run (histograms, time-series and heat come
// from the metrics bundle).
std::string RunSummaryJson(const System& sys, const RunSummaryMeta& meta);

// RunSummaryJson + write to `path` (newline-terminated). Returns false and
// fills `*err` on I/O failure.
bool WriteRunSummaryJson(const std::string& path, const System& sys,
                         const RunSummaryMeta& meta, std::string* err);

}  // namespace hlrc

#endif  // SRC_SVM_RUN_SUMMARY_H_

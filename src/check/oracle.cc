#include "src/check/oracle.h"

#include <cstdio>
#include <utility>

#include "src/common/check.h"

namespace hlrc {
namespace {

constexpr size_t kMaxViolations = 16;

std::string DescribeAccess(const MemoryAccess& a) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s node=%d addr=0x%llx value=0x%llx interval=%u t=%lld",
                a.is_write ? "write" : "read", a.node,
                static_cast<unsigned long long>(a.addr),
                static_cast<unsigned long long>(a.value), a.interval,
                static_cast<long long>(a.when));
  return buf;
}

}  // namespace

LrcOracle::LrcOracle(int nodes) : next_seq_(static_cast<size_t>(nodes), 0) {
  HLRC_CHECK(nodes > 0);
}

bool LrcOracle::HappensBefore(const Rec& x, const Rec& y) {
  if (x.a.node == y.a.node) {
    return x.seq < y.seq;
  }
  return y.a.vt.Get(x.a.node) >= x.a.interval;
}

void LrcOracle::OnAccess(const MemoryAccess& access) {
  Rec rec;
  rec.a = access;
  rec.seq = next_seq_[static_cast<size_t>(access.node)]++;
  if (access.is_write) {
    ++writes_recorded_;
    writes_[access.addr].push_back(std::move(rec));
    return;
  }
  ++reads_checked_;
  Validate(rec);
}

void LrcOracle::Validate(const Rec& read) {
  const auto it = writes_.find(read.a.addr);
  if (it == writes_.end()) {
    if (read.a.value != 0) {
      Report(read, "returned a value never written to this location (corruption)");
    }
    return;
  }
  const std::vector<Rec>& ws = it->second;

  // The initial zero content: legal while no write to the location
  // happens-before the read.
  if (read.a.value == 0) {
    const Rec* masking = nullptr;
    for (const Rec& w : ws) {
      if (w.a.value != 0 && HappensBefore(w, read)) {
        masking = &w;
        break;
      }
    }
    if (masking == nullptr) {
      return;
    }
    Report(read, "returned the initial zero, but it is masked by " + DescribeAccess(masking->a));
    return;
  }

  // The read is legal if some write of this value is not masked: no other
  // write to the location is ordered between it and the read.
  const Rec* candidate = nullptr;
  const Rec* masked_by = nullptr;
  for (const Rec& w : ws) {
    if (w.a.value != read.a.value) {
      continue;
    }
    candidate = &w;
    masked_by = nullptr;
    bool masked = false;
    for (const Rec& w2 : ws) {
      if (&w2 == &w || w2.a.value == w.a.value) {
        continue;
      }
      if (HappensBefore(w, w2) && HappensBefore(w2, read)) {
        masked = true;
        masked_by = &w2;
        break;
      }
    }
    if (!masked) {
      return;  // Legal.
    }
  }
  if (candidate == nullptr) {
    Report(read, "returned a value never written to this location (corruption)");
    return;
  }
  Report(read, "returned stale " + DescribeAccess(candidate->a) + ", which is masked by " +
                   DescribeAccess(masked_by->a));
}

void LrcOracle::Report(const Rec& read, std::string description) {
  if (violations_.size() >= kMaxViolations) {
    return;
  }
  OracleViolation v;
  v.read = read.a;
  v.description = DescribeAccess(read.a) + " " + std::move(description);
  violations_.push_back(std::move(v));
}

}  // namespace hlrc

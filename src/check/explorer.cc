#include "src/check/explorer.h"

#include <algorithm>
#include <utility>

#include "src/apps/litmus.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/sim/sweep.h"
#include "src/svm/system.h"

namespace hlrc {
namespace {

constexpr size_t kTraceCap = 64;

// The seeded chaos decision stream feeding both engine hooks. Decisions past
// `limit` return the deterministic defaults without consuming the Rng, so a
// (seed, limit) pair identifies a schedule exactly.
class Chaos {
 public:
  Chaos(uint64_t seed, SimTime max_jitter, uint64_t limit)
      : rng_(seed ^ 0xc2b2ae3d27d4eb4fULL), max_jitter_(max_jitter), limit_(limit) {}

  uint64_t Tiebreak() {
    if (count_ >= limit_) {
      ++count_;
      return 0;
    }
    const uint64_t v = rng_.NextU64();
    Record('T', v);
    return v;
  }

  SimTime Jitter() {
    if (count_ >= limit_) {
      ++count_;
      return 0;
    }
    const uint64_t v = rng_.NextBounded(static_cast<uint64_t>(max_jitter_) + 1);
    Record('J', v);
    return static_cast<SimTime>(v);
  }

  uint64_t count() const { return count_; }
  std::vector<ChaosDecision> trace() && { return std::move(trace_); }

 private:
  void Record(char kind, uint64_t value) {
    if (trace_.size() < kTraceCap) {
      trace_.push_back(ChaosDecision{count_, kind, value});
    }
    ++count_;
  }

  Rng rng_;
  SimTime max_jitter_;
  uint64_t limit_;
  uint64_t count_ = 0;
  std::vector<ChaosDecision> trace_;
};

}  // namespace

CheckResult RunOne(const CheckConfig& config) {
  SimConfig sim;
  sim.nodes = config.nodes;
  sim.page_size = config.page_size;
  sim.shared_bytes = config.shared_bytes;
  sim.seed = config.seed;
  sim.protocol.kind = config.protocol;
  sim.protocol.mutation = config.mutation;
  sim.fault = config.fault;
  if (sim.fault.Active() && sim.fault.seed == 0) {
    // Derive the injector's seed from the run seed so every explored seed
    // also explores a different loss pattern.
    sim.fault.seed = Rng(config.seed).NextU64();
  }
  sim.reliability = config.reliability;
  if (config.coalesce) {
    sim.network.coalesce = true;
    sim.protocol.coalesce = true;
    sim.reliability.piggyback_acks = sim.reliability.enabled;
  }
  sim.protocol.barrier_arity = config.barrier_arity;

  LitmusConfig lcfg;
  lcfg.nodes = config.nodes;
  lcfg.rounds = config.rounds;
  lcfg.seed = config.seed;
  std::unique_ptr<LitmusTest> litmus = MakeLitmus(config.litmus, lcfg);

  System sys(sim);
  litmus->Setup(sys);

  LrcOracle oracle(config.nodes);
  sys.SetAccessObserver(&oracle);

  Chaos chaos(config.seed, config.max_jitter, config.decision_limit);
  if (config.permute_tasks) {
    sys.engine().SetTieBreaker([&chaos] { return chaos.Tiebreak(); });
  }
  if (config.max_jitter > 0) {
    sys.network().SetDeliveryJitterHook(
        [&chaos](NodeId, NodeId, MsgType) { return chaos.Jitter(); });
  }

  sys.Run(litmus->Program());

  CheckResult result;
  result.ok = oracle.ok();
  result.violations = oracle.violations();
  result.decisions_used = chaos.count();
  result.trace = std::move(chaos).trace();
  result.reads_checked = oracle.reads_checked();
  result.writes_recorded = oracle.writes_recorded();
  result.sim_time = sys.report().total_time;
  result.events = sys.engine().events_processed();
  return result;
}

SweepResult Sweep(const CheckConfig& base, uint64_t first_seed, int seeds,
                  const std::function<void(uint64_t, const CheckResult&)>& on_failure,
                  int jobs) {
  SweepResult sweep;
  if (seeds <= 0) {
    return sweep;
  }
  const std::vector<CheckResult> results = ParallelMap<CheckResult>(
      seeds, jobs, [&base, first_seed](int i) {
        CheckConfig cfg = base;
        cfg.seed = first_seed + static_cast<uint64_t>(i);
        return RunOne(cfg);
      });
  // Aggregation (and failure reporting) walks results in seed order, so the
  // outcome is byte-identical to the historical serial loop.
  for (int i = 0; i < seeds; ++i) {
    const CheckResult& r = results[static_cast<size_t>(i)];
    const uint64_t seed = first_seed + static_cast<uint64_t>(i);
    ++sweep.runs;
    sweep.reads_checked += r.reads_checked;
    sweep.writes_recorded += r.writes_recorded;
    if (!r.ok) {
      ++sweep.failures;
      if (!sweep.found_failure) {
        sweep.found_failure = true;
        sweep.first_failing_seed = seed;
      }
      if (on_failure) {
        on_failure(seed, r);
      }
    }
  }
  return sweep;
}

MinimizedSchedule Minimize(const CheckConfig& failing) {
  CheckConfig cfg = failing;
  CheckResult full = RunOne(cfg);
  if (full.ok) {
    // Not reproducible under this config — return the (passing) run and let
    // the caller report it.
    return MinimizedSchedule{cfg, std::move(full)};
  }

  cfg.decision_limit = 0;
  CheckResult at_zero = RunOne(cfg);
  if (!at_zero.ok) {
    // Fails with no chaos at all (typically a seeded mutation).
    return MinimizedSchedule{cfg, std::move(at_zero)};
  }

  // Invariant: fails at `hi`, passes at `lo`. Failure is not monotone in the
  // prefix length, but the search still lands on a boundary where limit L
  // fails and L-1 passes — a minimal reproducible prefix.
  uint64_t lo = 0;
  uint64_t hi = std::min(failing.decision_limit, full.decisions_used);
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    cfg.decision_limit = mid;
    if (RunOne(cfg).ok) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  cfg.decision_limit = hi;
  CheckResult minimized = RunOne(cfg);
  HLRC_CHECK(!minimized.ok);
  return MinimizedSchedule{cfg, std::move(minimized)};
}

}  // namespace hlrc

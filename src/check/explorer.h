// Seeded schedule exploration (docs/CHECKING.md).
//
// RunOne builds a small simulated machine, runs one litmus program
// (src/apps/litmus.h) under one protocol with the LRC oracle attached, and
// perturbs the schedule from a SplitMix64 seed through two hooks:
//
//   * Engine::SetTieBreaker — a random rank per scheduled event permutes the
//     execution order of simultaneous events (coroutine resumptions, message
//     handlers, timer callbacks);
//   * Network::SetDeliveryJitterHook — a random extra head-arrival delay per
//     physical transmission races protocol messages bound for different
//     destinations against each other (per-destination FIFO, which the
//     protocols rely on, is preserved by the receiving-NIC serialization).
//
// Both hooks draw from one decision stream. A failing run is reproduced by
// its (seed, decision_limit) pair alone: decisions past the limit fall back
// to the deterministic defaults, and Minimize binary-searches the shortest
// prefix of chaos decisions that still fails — the printed trace is the
// whole schedule perturbation. Fault plans (src/fault) and the reliable
// channel compose underneath, and TestMutation seeds known protocol bugs for
// checker regression tests.
#ifndef SRC_CHECK_EXPLORER_H_
#define SRC_CHECK_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/check/oracle.h"
#include "src/common/types.h"
#include "src/fault/fault_plan.h"
#include "src/net/reliable_channel.h"
#include "src/proto/options.h"

namespace hlrc {

struct CheckConfig {
  std::string litmus = "message-passing";
  ProtocolKind protocol = ProtocolKind::kHlrc;
  int nodes = 4;
  int rounds = 3;
  uint64_t seed = 1;

  // Chaos knobs.
  bool permute_tasks = true;         // Random tiebreak among same-time events.
  SimTime max_jitter = Micros(150);  // 0 disables delivery jitter.
  // Chaos decisions past this index use the deterministic defaults
  // (tiebreak 0, jitter 0). Minimize shrinks it; sweeps leave it unlimited.
  uint64_t decision_limit = std::numeric_limits<uint64_t>::max();

  // Composition with src/fault: an Active() plan makes the fabric lossy
  // (its seed is derived from `seed` when left at the 0 sentinel).
  FaultPlan fault = [] {
    FaultPlan p;
    p.seed = 0;
    return p;
  }();
  ReliabilityConfig reliability;
  TestMutation mutation = TestMutation::kNone;

  // Coalesced wire plane (frame packing + request combining; piggybacked
  // acks whenever reliability is enabled too) and the combining barrier
  // tree, so sweeps can hammer the coalesced paths with the same chaos.
  bool coalesce = false;
  int barrier_arity = 0;

  // Small machine: litmus programs touch a handful of pages, and a small
  // page keeps diff traffic and sweep wall-time low.
  int64_t page_size = 512;
  int64_t shared_bytes = 1 << 20;
};

// One chaos decision, for trace printing. kind 'T' = event tiebreak rank,
// 'J' = delivery jitter (value in nanoseconds of extra delay).
struct ChaosDecision {
  uint64_t index = 0;
  char kind = '?';
  uint64_t value = 0;
};

struct CheckResult {
  bool ok = true;
  std::vector<OracleViolation> violations;
  uint64_t decisions_used = 0;  // Chaos decisions requested by the run.
  std::vector<ChaosDecision> trace;  // First decisions, up to a cap.
  int64_t reads_checked = 0;
  int64_t writes_recorded = 0;
  SimTime sim_time = 0;
  int64_t events = 0;
};

// Runs one (litmus, protocol, seed) execution under the oracle.
CheckResult RunOne(const CheckConfig& config);

struct SweepResult {
  int runs = 0;
  int failures = 0;
  bool found_failure = false;
  uint64_t first_failing_seed = 0;
  int64_t reads_checked = 0;
  int64_t writes_recorded = 0;
};

// Runs `seeds` explorations with seeds first_seed, first_seed+1, ...;
// `on_failure` (optional) is invoked for each failing seed, in seed order.
// `jobs` > 1 runs the seeds on that many worker threads (src/sim/sweep.h);
// every RunOne is an isolated System, so the aggregated result — and the
// order of on_failure callbacks — is identical at any job count.
SweepResult Sweep(const CheckConfig& base, uint64_t first_seed, int seeds,
                  const std::function<void(uint64_t, const CheckResult&)>& on_failure = {},
                  int jobs = 1);

// Shrinks a failing run to the shortest chaos-decision prefix that still
// fails (binary search on decision_limit; a mutation-induced failure that
// needs no chaos at all minimizes to limit 0). The returned config replays
// the minimized schedule exactly.
struct MinimizedSchedule {
  CheckConfig config;
  CheckResult result;
};
MinimizedSchedule Minimize(const CheckConfig& failing);

}  // namespace hlrc

#endif  // SRC_CHECK_EXPLORER_H_

// Release-consistency oracle.
//
// An LrcOracle observes every shared word access of a run (via
// System::SetAccessObserver) and validates, online, that each read returns a
// value lazy release consistency permits (docs/CHECKING.md):
//
//   * Every access carries its node's vector timestamp and its open interval
//     id i = vt.Get(node) + 1 (writes performed now are published under i
//     when the interval closes at the next release/barrier).
//   * Happens-before between accesses a and b:
//       - same node: program order;
//       - different nodes: b's vector timestamp covers a's interval,
//         b.vt.Get(a.node) >= a.interval.
//   * A read r of location x may return the value of write w to x iff no
//     other write w' to x is ordered between them (w hb w' hb r). The
//     initial zero content acts as a write that precedes everything, so a
//     zero read is legal only while no write to x happens-before r.
//     Reading a write *concurrent* with r is legal (a data race under RC);
//     reading a happens-before-masked value — a stale page copy, a lost
//     diff, a missed invalidation — is not.
//
// Litmus programs (src/apps/litmus.h) give every write a globally unique
// value per location, so value equality identifies the originating write
// exactly. A read of a value never written to its location is reported as
// corruption.
#ifndef SRC_CHECK_ORACLE_H_
#define SRC_CHECK_ORACLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/proto/observer.h"

namespace hlrc {

struct OracleViolation {
  MemoryAccess read;       // The offending read.
  std::string description; // Human-readable diagnosis.
};

class LrcOracle : public AccessObserver {
 public:
  explicit LrcOracle(int nodes);

  void OnAccess(const MemoryAccess& access) override;

  bool ok() const { return violations_.empty(); }
  const std::vector<OracleViolation>& violations() const { return violations_; }
  int64_t reads_checked() const { return reads_checked_; }
  int64_t writes_recorded() const { return writes_recorded_; }

 private:
  struct Rec {
    MemoryAccess a;
    uint64_t seq = 0;  // Per-node program order.
  };

  static bool HappensBefore(const Rec& x, const Rec& y);
  void Validate(const Rec& read);
  void Report(const Rec& read, std::string description);

  // All writes per location, in simulated-time order. Litmus-scale histories
  // keep the per-read masking scan (O(writes-to-x squared)) cheap.
  std::unordered_map<GlobalAddr, std::vector<Rec>> writes_;
  std::vector<uint64_t> next_seq_;  // Per-node program-order counter.
  std::vector<OracleViolation> violations_;
  int64_t reads_checked_ = 0;
  int64_t writes_recorded_ = 0;
};

}  // namespace hlrc

#endif  // SRC_CHECK_ORACLE_H_

// Causal span tracing (docs/OBSERVABILITY.md).
//
// A span is one timed episode of protocol work on one node — a page fault
// waiting, a message on the wire, a home serving a request, a diff being
// applied. Spans form a DAG: `parent` is a containment edge (the parent's
// interval covers the child's), `links` are causal flow edges carried across
// nodes on the Message (no containment implied). Roots are the operations an
// application thread blocks on (fault / lock / barrier) plus interval-close
// fan-outs; every other span must be reachable from a root or --check fails,
// which is what forces every Send in the protocols to carry a cause.
//
// Tracing is pure observation: recording spans must not change a single
// simulated timestamp (pinned by test_golden_determinism).
#ifndef SRC_TRACING_SPAN_H_
#define SRC_TRACING_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace hlrc {

class JsonWriter;
struct JsonValue;

using SpanId = int64_t;
constexpr SpanId kNoSpan = -1;

enum class SpanKind : uint8_t {
  // Root kinds: an application thread blocking (or an interval-close fan-out
  // origin). Only these may be DAG roots.
  kFault = 0,      // a0 = page, a1 = 1 if write fault
  kLock,           // a0 = lock id
  kBarrier,        // a0 = barrier id
  kIntervalClose,  // a0 = interval id

  // Interior kinds — always reachable from a root through parent/link edges.
  kQueue,          // frame waiting for the sender's link to free
  kWire,           // frame in flight (latency + transfer)
  kRetransmit,     // time between the first submit and a retransmission
  kService,        // a handler occupying cpu/coprocessor at the receiver
  kHomeWait,       // page request parked at the home behind an open interval
  kDiffCreate,     // computing a diff against the twin
  kDiffApply,      // applying a diff/page update to memory
  kWnApply,        // write-notice / bookkeeping apply (lock grant, barrier release)
  kLockHold,       // requester holds the lock (critical section = compute)
  kBarrierGather,  // manager waiting for all arrivals
  kCoalesceHold,   // message parked in the coalescing send queue (a0 = type)

  kCount,
};

const char* SpanKindName(SpanKind k);
// Returns kCount when `name` is not a span kind.
SpanKind SpanKindFromName(const std::string& name);
// True for the kinds allowed to be DAG roots.
bool SpanKindIsRoot(SpanKind k);

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;          // containment edge (same-root subtree)
  std::vector<SpanId> links;        // causal flow edges (sources preceding us)
  SpanKind kind = SpanKind::kCount;
  NodeId node = -1;
  SimTime t0 = 0;
  SimTime t1 = 0;
  int64_t a0 = 0;
  int64_t a1 = 0;
  std::vector<uint32_t> vt;         // vector-clock snapshot (roots only)
};

// Records spans with a fixed capacity. On overflow new spans are dropped
// (Begin/Emit return kNoSpan) and `dropped()` counts them; every recording
// API tolerates kNoSpan so the recorded set stays closed under references.
class SpanTracer {
 public:
  explicit SpanTracer(size_t capacity = 1 << 16);

  // Opens a span at `t0`; close it later with End. Returns kNoSpan when full.
  SpanId Begin(SpanKind kind, NodeId node, SimTime t0, SpanId parent = kNoSpan,
               int64_t a0 = 0, int64_t a1 = 0);
  // Closes `id` at `t1`. No-op for kNoSpan.
  void End(SpanId id, SimTime t1);
  // Begin + End in one call.
  SpanId Emit(SpanKind kind, NodeId node, SimTime t0, SimTime t1,
              SpanId parent = kNoSpan, int64_t a0 = 0, int64_t a1 = 0);
  // Adds causal edge `from` → `target`. No-op if either is kNoSpan.
  void AddLink(SpanId target, SpanId from);
  // Stamps a vector-clock snapshot on `id`. No-op for kNoSpan.
  void SetVt(SpanId id, const std::vector<uint32_t>& vt);

  const std::vector<Span>& spans() const { return spans_; }
  int64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

 private:
  bool Valid(SpanId id) const {
    return id >= 0 && static_cast<size_t>(id) < spans_.size();
  }

  std::vector<Span> spans_;
  size_t capacity_;
  int64_t dropped_ = 0;
};

// --- Export -----------------------------------------------------------------

inline constexpr const char* kSpansSchemaName = "hlrc-spans";
inline constexpr int kSpansSchemaVersion = 1;

// Chrome trace events for TraceLog::DumpChromeJson's extra-events splice:
// one "X" complete slice per span (pid 0, tid = node) and an "s"/"f" flow
// pair per causal link so chains render as arrows in Perfetto. Returns
// comma-joined event objects with no trailing comma (empty when no spans).
std::string ChromeSpanEvents(const SpanTracer& tracer);

// Writes the versioned `"spans"` run-summary section (key + object) into an
// open JSON object.
void WriteSpansJson(JsonWriter* w, const SpanTracer& tracer);

// Extracts the spans section from a parsed run summary. Returns false (with
// a message in *err) when the section is missing or malformed.
bool ParseSpans(const JsonValue& summary_root, std::vector<Span>* out,
                int64_t* dropped, std::string* err);

}  // namespace hlrc

#endif  // SRC_TRACING_SPAN_H_

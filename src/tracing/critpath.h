// Critical-path attribution over a span DAG (svmtrace critpath / slowest).
//
// For every blocking root (fault / lock / barrier) the root's wait is split
// among the causal descendants active during it: at each instant the deepest
// active descendant wins, its kind's category accrues the time, and instants
// covered by no descendant count as protocol bookkeeping. By construction the
// per-category times sum exactly to the root's duration (asserted in
// test_spans), reproducing the paper's Fig. 3 style breakdown from causal
// data instead of flat counters.
#ifndef SRC_TRACING_CRITPATH_H_
#define SRC_TRACING_CRITPATH_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "src/tracing/span.h"

namespace hlrc {

enum class CritCat : uint8_t {
  kWire = 0,
  kQueueing,
  kRetransmit,
  kHomeService,
  kDiffCreate,
  kDiffApply,
  kBookkeeping,
  kCompute,
  kCount,
};

constexpr size_t kCritCatCount = static_cast<size_t>(CritCat::kCount);

const char* CritCatName(CritCat c);
// Maps an interior span kind to its attribution category.
CritCat CategoryOf(SpanKind k);

using CatTimes = std::array<SimTime, kCritCatCount>;

// One entry on a root's attributed timeline: a causal descendant clipped to
// the root's window, with its BFS depth from the root.
struct CritStep {
  SpanId id = kNoSpan;
  SpanKind kind = SpanKind::kCount;
  NodeId node = -1;
  SimTime t0 = 0;
  SimTime t1 = 0;
  int depth = 0;
};

struct RootAttribution {
  SpanId id = kNoSpan;
  SpanKind kind = SpanKind::kCount;
  NodeId node = -1;
  SimTime t0 = 0;
  SimTime t1 = 0;
  int64_t a0 = 0;  // page / lock / barrier id
  CatTimes by_cat{};
  // Descendants ordered by t0 (then depth) — the hop-by-hop timeline.
  std::vector<CritStep> steps;
};

struct CritPathSummary {
  std::vector<RootAttribution> roots;
  CatTimes total{};                       // summed over all roots
  CatTimes by_kind[3]{};                  // fault / lock / barrier rollups
  SimTime total_wait = 0;
  std::map<int64_t, CatTimes> by_page;    // fault roots only, keyed by page
  std::map<int64_t, SimTime> page_wait;
};

// Index into CritPathSummary::by_kind; -1 for non-blocking root kinds.
int RootKindIndex(SpanKind k);

// Attributes every fault/lock/barrier root's wait. `spans` must already have
// passed CheckSpanDag.
CritPathSummary AttributeCriticalPaths(const std::vector<Span>& spans);

}  // namespace hlrc

#endif  // SRC_TRACING_CRITPATH_H_

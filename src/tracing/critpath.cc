#include "src/tracing/critpath.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace hlrc {

const char* CritCatName(CritCat c) {
  switch (c) {
    case CritCat::kWire:
      return "wire";
    case CritCat::kQueueing:
      return "queueing";
    case CritCat::kRetransmit:
      return "retransmit";
    case CritCat::kHomeService:
      return "home service";
    case CritCat::kDiffCreate:
      return "diff create";
    case CritCat::kDiffApply:
      return "diff apply";
    case CritCat::kBookkeeping:
      return "protocol bookkeeping";
    case CritCat::kCompute:
      return "compute";
    case CritCat::kCount:
      break;
  }
  return "?";
}

CritCat CategoryOf(SpanKind k) {
  switch (k) {
    case SpanKind::kQueue:
    case SpanKind::kCoalesceHold:
      return CritCat::kQueueing;
    case SpanKind::kWire:
      return CritCat::kWire;
    case SpanKind::kRetransmit:
      return CritCat::kRetransmit;
    case SpanKind::kService:
    case SpanKind::kHomeWait:
      return CritCat::kHomeService;
    case SpanKind::kDiffCreate:
      return CritCat::kDiffCreate;
    case SpanKind::kDiffApply:
      return CritCat::kDiffApply;
    case SpanKind::kLockHold:
    case SpanKind::kBarrierGather:
      return CritCat::kCompute;
    default:
      return CritCat::kBookkeeping;
  }
}

int RootKindIndex(SpanKind k) {
  switch (k) {
    case SpanKind::kFault:
      return 0;
    case SpanKind::kLock:
      return 1;
    case SpanKind::kBarrier:
      return 2;
    default:
      return -1;
  }
}

CritPathSummary AttributeCriticalPaths(const std::vector<Span>& spans) {
  CritPathSummary out;

  std::unordered_map<SpanId, size_t> index;
  index.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    index.emplace(spans[i].id, i);
  }
  std::vector<std::vector<size_t>> adj(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.parent != kNoSpan) {
      adj[index.at(s.parent)].push_back(i);
    }
    for (const SpanId l : s.links) {
      adj[index.at(l)].push_back(i);
    }
  }

  std::vector<int> depth(spans.size(), -1);
  for (size_t r = 0; r < spans.size(); ++r) {
    const Span& root = spans[r];
    if (RootKindIndex(root.kind) < 0) {
      continue;
    }

    RootAttribution ra;
    ra.id = root.id;
    ra.kind = root.kind;
    ra.node = root.node;
    ra.t0 = root.t0;
    ra.t1 = root.t1;
    ra.a0 = root.a0;

    // BFS over causal descendants, clipping each to the root's window. Depth
    // is the first-visit hop count: deeper spans refine their ancestors'
    // attribution (a wire span inside a fault beats the fault itself).
    std::fill(depth.begin(), depth.end(), -1);
    depth[r] = 0;
    std::deque<size_t> q{r};
    while (!q.empty()) {
      const size_t n = q.front();
      q.pop_front();
      for (const size_t c : adj[n]) {
        if (depth[c] >= 0 || RootKindIndex(spans[c].kind) >= 0) {
          continue;  // other roots (and their subtrees) attribute themselves
        }
        depth[c] = depth[n] + 1;
        q.push_back(c);
        const Span& s = spans[c];
        CritStep step;
        step.id = s.id;
        step.kind = s.kind;
        step.node = s.node;
        step.t0 = std::max(s.t0, root.t0);
        step.t1 = std::min(s.t1, root.t1);
        step.depth = depth[c];
        if (step.t0 < step.t1) {
          ra.steps.push_back(step);
        }
      }
    }
    std::sort(ra.steps.begin(), ra.steps.end(),
              [](const CritStep& a, const CritStep& b) {
                if (a.t0 != b.t0) return a.t0 < b.t0;
                if (a.depth != b.depth) return a.depth < b.depth;
                return a.id < b.id;
              });

    // Segment sweep: between consecutive boundaries the deepest active
    // descendant's category wins (ties: later start, then larger id); gaps
    // with no active descendant are protocol bookkeeping. Segments partition
    // [t0, t1], so categories sum exactly to the root's duration.
    std::vector<SimTime> cuts;
    cuts.reserve(2 * ra.steps.size() + 2);
    cuts.push_back(root.t0);
    cuts.push_back(root.t1);
    for (const CritStep& s : ra.steps) {
      cuts.push_back(s.t0);
      cuts.push_back(s.t1);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      const SimTime lo = cuts[i];
      const SimTime hi = cuts[i + 1];
      const CritStep* best = nullptr;
      for (const CritStep& s : ra.steps) {
        if (s.t0 > lo) {
          break;  // steps are t0-sorted; none further can cover lo
        }
        if (s.t1 < hi) {
          continue;
        }
        if (best == nullptr || s.depth > best->depth ||
            (s.depth == best->depth &&
             (s.t0 > best->t0 || (s.t0 == best->t0 && s.id > best->id)))) {
          best = &s;
        }
      }
      const CritCat cat =
          best != nullptr ? CategoryOf(best->kind) : CritCat::kBookkeeping;
      ra.by_cat[static_cast<size_t>(cat)] += hi - lo;
    }

    const int ki = RootKindIndex(root.kind);
    for (size_t c = 0; c < kCritCatCount; ++c) {
      out.total[c] += ra.by_cat[c];
      out.by_kind[ki][c] += ra.by_cat[c];
    }
    out.total_wait += root.t1 - root.t0;
    if (root.kind == SpanKind::kFault) {
      CatTimes& page = out.by_page[root.a0];
      for (size_t c = 0; c < kCritCatCount; ++c) {
        page[c] += ra.by_cat[c];
      }
      out.page_wait[root.a0] += root.t1 - root.t0;
    }
    out.roots.push_back(std::move(ra));
  }
  return out;
}

}  // namespace hlrc

// Span-DAG well-formedness checker (svmtrace --check, test_spans).
#ifndef SRC_TRACING_SPAN_CHECK_H_
#define SRC_TRACING_SPAN_CHECK_H_

#include <string>
#include <vector>

#include "src/tracing/span.h"

namespace hlrc {

// Validates structural invariants of a span set:
//  - ids are unique and non-negative, intervals have t0 <= t1;
//  - parent edges reference existing spans whose interval contains the child;
//  - link edges reference existing spans;
//  - the graph (parent->child, link-source->target) is acyclic;
//  - every span is reachable from a root, and roots (no parent, no incoming
//    link) are restricted to the root kinds (fault/lock/barrier/interval-close).
// Returns false and describes the first violation in *err.
bool CheckSpanDag(const std::vector<Span>& spans, std::string* err);

}  // namespace hlrc

#endif  // SRC_TRACING_SPAN_CHECK_H_

#include "src/tracing/span_check.h"

#include <unordered_map>

namespace hlrc {
namespace {

std::string Describe(const Span& s) {
  return std::string(SpanKindName(s.kind)) + " span " + std::to_string(s.id) +
         " (node " + std::to_string(s.node) + ")";
}

}  // namespace

bool CheckSpanDag(const std::vector<Span>& spans, std::string* err) {
  std::unordered_map<SpanId, size_t> index;
  index.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.id < 0) {
      *err = "negative span id " + std::to_string(s.id);
      return false;
    }
    if (!index.emplace(s.id, i).second) {
      *err = "duplicate span id " + std::to_string(s.id);
      return false;
    }
    if (s.t0 > s.t1) {
      *err = Describe(s) + " has t0 > t1";
      return false;
    }
    if (s.kind == SpanKind::kCount) {
      *err = "span " + std::to_string(s.id) + " has invalid kind";
      return false;
    }
  }

  // Forward adjacency: parent -> child and link-source -> target.
  std::vector<std::vector<size_t>> out(spans.size());
  std::vector<bool> has_in(spans.size(), false);
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.parent != kNoSpan) {
      const auto it = index.find(s.parent);
      if (it == index.end()) {
        *err = Describe(s) + " references missing parent " +
               std::to_string(s.parent);
        return false;
      }
      const Span& p = spans[it->second];
      if (p.t0 > s.t0 || s.t1 > p.t1) {
        *err = "parent " + Describe(p) + " interval [" + std::to_string(p.t0) +
               "," + std::to_string(p.t1) + "] does not contain child " +
               Describe(s) + " [" + std::to_string(s.t0) + "," +
               std::to_string(s.t1) + "]";
        return false;
      }
      out[it->second].push_back(i);
      has_in[i] = true;
    }
    for (const SpanId l : s.links) {
      const auto it = index.find(l);
      if (it == index.end()) {
        *err = Describe(s) + " references missing link source " +
               std::to_string(l);
        return false;
      }
      out[it->second].push_back(i);
      has_in[i] = true;
    }
  }

  // Roots must be root kinds; every span must be reachable from a root; the
  // whole graph must be acyclic. One iterative DFS with tricolor marking
  // covers both: 0 = white, 1 = on stack, 2 = done.
  std::vector<uint8_t> color(spans.size(), 0);
  std::vector<size_t> stack;
  size_t reached = 0;
  for (size_t r = 0; r < spans.size(); ++r) {
    if (has_in[r]) {
      continue;
    }
    if (!SpanKindIsRoot(spans[r].kind)) {
      *err = Describe(spans[r]) +
             " is an orphan: interior kind with no parent and no causal link";
      return false;
    }
    if (color[r] != 0) {
      continue;
    }
    // Iterative DFS; a frame is (node, next-child-index) packed in two stacks.
    std::vector<std::pair<size_t, size_t>> frames;
    frames.emplace_back(r, 0);
    color[r] = 1;
    ++reached;
    while (!frames.empty()) {
      auto& [n, next] = frames.back();
      if (next >= out[n].size()) {
        color[n] = 2;
        frames.pop_back();
        continue;
      }
      const size_t c = out[n][next++];
      if (color[c] == 1) {
        *err = "cycle through " + Describe(spans[c]);
        return false;
      }
      if (color[c] == 0) {
        color[c] = 1;
        ++reached;
        frames.emplace_back(c, 0);
      }
    }
  }
  if (reached != spans.size()) {
    for (size_t i = 0; i < spans.size(); ++i) {
      if (color[i] == 0) {
        *err = Describe(spans[i]) + " is not reachable from any root";
        return false;
      }
    }
  }
  return true;
}

}  // namespace hlrc

#include "src/tracing/span.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/metrics/json.h"
#include "src/metrics/json_writer.h"

namespace hlrc {

const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kFault:
      return "fault";
    case SpanKind::kLock:
      return "lock";
    case SpanKind::kBarrier:
      return "barrier";
    case SpanKind::kIntervalClose:
      return "interval-close";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kWire:
      return "wire";
    case SpanKind::kRetransmit:
      return "retransmit";
    case SpanKind::kService:
      return "service";
    case SpanKind::kHomeWait:
      return "home-wait";
    case SpanKind::kDiffCreate:
      return "diff-create";
    case SpanKind::kDiffApply:
      return "diff-apply";
    case SpanKind::kWnApply:
      return "wn-apply";
    case SpanKind::kLockHold:
      return "lock-hold";
    case SpanKind::kBarrierGather:
      return "barrier-gather";
    case SpanKind::kCoalesceHold:
      return "coalesce-hold";
    case SpanKind::kCount:
      break;
  }
  return "?";
}

SpanKind SpanKindFromName(const std::string& name) {
  for (int i = 0; i < static_cast<int>(SpanKind::kCount); ++i) {
    const SpanKind k = static_cast<SpanKind>(i);
    if (name == SpanKindName(k)) {
      return k;
    }
  }
  return SpanKind::kCount;
}

bool SpanKindIsRoot(SpanKind k) {
  return k == SpanKind::kFault || k == SpanKind::kLock ||
         k == SpanKind::kBarrier || k == SpanKind::kIntervalClose;
}

SpanTracer::SpanTracer(size_t capacity) : capacity_(capacity) {
  HLRC_CHECK(capacity > 0);
}

SpanId SpanTracer::Begin(SpanKind kind, NodeId node, SimTime t0, SpanId parent,
                         int64_t a0, int64_t a1) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return kNoSpan;
  }
  Span s;
  s.id = static_cast<SpanId>(spans_.size());
  s.parent = Valid(parent) ? parent : kNoSpan;
  s.kind = kind;
  s.node = node;
  s.t0 = t0;
  s.t1 = t0;
  s.a0 = a0;
  s.a1 = a1;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void SpanTracer::End(SpanId id, SimTime t1) {
  if (!Valid(id)) {
    return;
  }
  spans_[static_cast<size_t>(id)].t1 = t1;
}

SpanId SpanTracer::Emit(SpanKind kind, NodeId node, SimTime t0, SimTime t1,
                        SpanId parent, int64_t a0, int64_t a1) {
  const SpanId id = Begin(kind, node, t0, parent, a0, a1);
  End(id, t1);
  return id;
}

void SpanTracer::AddLink(SpanId target, SpanId from) {
  if (!Valid(target) || !Valid(from) || target == from) {
    return;
  }
  spans_[static_cast<size_t>(target)].links.push_back(from);
}

void SpanTracer::SetVt(SpanId id, const std::vector<uint32_t>& vt) {
  if (!Valid(id)) {
    return;
  }
  spans_[static_cast<size_t>(id)].vt = vt;
}

std::string ChromeSpanEvents(const SpanTracer& tracer) {
  std::string out;
  char buf[256];
  bool first = true;
  auto append = [&](const char* fmt, auto... args) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  int64_t flow_id = 0;
  for (const Span& s : tracer.spans()) {
    append(
        "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
        "\"args\":{\"span\":%lld,\"a0\":%lld,\"a1\":%lld}}",
        SpanKindName(s.kind), ToMicros(s.t0), ToMicros(s.t1 - s.t0), s.node,
        static_cast<long long>(s.id), static_cast<long long>(s.a0),
        static_cast<long long>(s.a1));
    for (const SpanId from : s.links) {
      const Span& src = tracer.spans()[static_cast<size_t>(from)];
      ++flow_id;
      append(
          "{\"name\":\"span-flow\",\"cat\":\"span\",\"ph\":\"s\","
          "\"id\":%lld,\"ts\":%.3f,\"pid\":0,\"tid\":%d}",
          static_cast<long long>(flow_id), ToMicros(src.t1), src.node);
      append(
          "{\"name\":\"span-flow\",\"cat\":\"span\",\"ph\":\"f\",\"bp\":\"e\","
          "\"id\":%lld,\"ts\":%.3f,\"pid\":0,\"tid\":%d}",
          static_cast<long long>(flow_id), ToMicros(s.t0), s.node);
    }
  }
  return out;
}

void WriteSpansJson(JsonWriter* w, const SpanTracer& tracer) {
  w->Key("spans");
  w->BeginObject();
  w->KV("schema", kSpansSchemaName);
  w->KV("version", kSpansSchemaVersion);
  w->KV("dropped", tracer.dropped());
  w->Key("spans");
  w->BeginArray();
  for (const Span& s : tracer.spans()) {
    w->BeginObject();
    w->KV("id", s.id);
    w->KV("kind", SpanKindName(s.kind));
    w->KV("node", static_cast<int64_t>(s.node));
    w->KV("t0", s.t0);
    w->KV("t1", s.t1);
    if (s.parent != kNoSpan) {
      w->KV("parent", s.parent);
    }
    if (!s.links.empty()) {
      w->Key("links");
      w->BeginArray();
      for (const SpanId l : s.links) {
        w->Int(l);
      }
      w->EndArray();
    }
    if (s.a0 != 0) {
      w->KV("a0", s.a0);
    }
    if (s.a1 != 0) {
      w->KV("a1", s.a1);
    }
    if (!s.vt.empty()) {
      w->Key("vt");
      w->BeginArray();
      for (const uint32_t c : s.vt) {
        w->Int(static_cast<int64_t>(c));
      }
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

bool ParseSpans(const JsonValue& summary_root, std::vector<Span>* out,
                int64_t* dropped, std::string* err) {
  const JsonValue* sec = summary_root.Find("spans");
  if (sec == nullptr) {
    *err = "run summary has no \"spans\" section (run svmsim with --metrics-out)";
    return false;
  }
  if (!sec->IsObject()) {
    *err = "\"spans\" section is not an object";
    return false;
  }
  if (sec->GetString("schema") != kSpansSchemaName) {
    *err = "spans: schema is not \"" + std::string(kSpansSchemaName) + "\"";
    return false;
  }
  if (sec->GetInt("version", -1) != kSpansSchemaVersion) {
    *err = "spans: unsupported version";
    return false;
  }
  if (dropped != nullptr) {
    *dropped = sec->GetInt("dropped", 0);
  }
  const JsonValue* arr = sec->Find("spans");
  if (arr == nullptr || !arr->IsArray()) {
    *err = "spans: missing span array";
    return false;
  }
  out->clear();
  out->reserve(arr->arr.size());
  for (size_t i = 0; i < arr->arr.size(); ++i) {
    const JsonValue& e = arr->arr[i];
    const std::string at = "spans[" + std::to_string(i) + "]: ";
    if (!e.IsObject()) {
      *err = at + "not an object";
      return false;
    }
    Span s;
    const JsonValue* id = e.Find("id");
    if (id == nullptr || !id->is_int) {
      *err = at + "missing integer \"id\"";
      return false;
    }
    s.id = id->num_i;
    s.kind = SpanKindFromName(e.GetString("kind"));
    if (s.kind == SpanKind::kCount) {
      *err = at + "unknown kind \"" + e.GetString("kind") + "\"";
      return false;
    }
    const JsonValue* t0 = e.Find("t0");
    const JsonValue* t1 = e.Find("t1");
    if (t0 == nullptr || !t0->is_int || t1 == nullptr || !t1->is_int) {
      *err = at + "missing integer \"t0\"/\"t1\"";
      return false;
    }
    s.t0 = t0->num_i;
    s.t1 = t1->num_i;
    s.node = static_cast<NodeId>(e.GetInt("node", -1));
    s.parent = e.GetInt("parent", kNoSpan);
    s.a0 = e.GetInt("a0", 0);
    s.a1 = e.GetInt("a1", 0);
    if (const JsonValue* links = e.Find("links")) {
      if (!links->IsArray()) {
        *err = at + "\"links\" is not an array";
        return false;
      }
      for (const JsonValue& l : links->arr) {
        if (!l.is_int) {
          *err = at + "non-integer link";
          return false;
        }
        s.links.push_back(l.num_i);
      }
    }
    if (const JsonValue* vt = e.Find("vt")) {
      if (!vt->IsArray()) {
        *err = at + "\"vt\" is not an array";
        return false;
      }
      for (const JsonValue& c : vt->arr) {
        if (!c.is_int || c.num_i < 0) {
          *err = at + "bad vector-clock entry";
          return false;
        }
        s.vt.push_back(static_cast<uint32_t>(c.num_i));
      }
    }
    out->push_back(std::move(s));
  }
  return true;
}

}  // namespace hlrc

// TraceReplayApp — re-executes a captured workload trace through the
// System's App interface, against any protocol family.
//
// Replay re-issues the recorded allocations, then runs one coroutine per
// node that replays that node's record stream: compute records charge the
// recorded durations, access records re-issue the same grants, write
// records store the same byte values, and sync records re-issue the same
// lock/unlock/barrier operations. Because a simulated run is a
// deterministic function of (per-node operation sequence, compute
// durations, page contents, SimConfig), replaying under the recording
// config reproduces the original run's protocol behavior exactly — same
// message counts per type, same time breakdown (docs/WORKLOADS.md).
//
// Under a *different* protocol family or cost model the replay re-executes
// the same application behavior and measures how that protocol handles it,
// which is the point of the subsystem.
#ifndef SRC_WKLD_REPLAY_H_
#define SRC_WKLD_REPLAY_H_

#include <functional>
#include <memory>
#include <string>

#include "src/apps/app.h"
#include "src/wkld/trace_file.h"

namespace hlrc {
namespace wkld {

// Pulls the next record for one node's replay. Returns false when the
// stream is exhausted (after delivering kEnd). Must die, not return false,
// on corruption — false means clean end-of-stream.
using RecordSource = std::function<bool(Record*)>;

// Replays records from `source` through `ctx` until kEnd. Shared by the
// file-backed TraceReplayApp and the in-memory synthetic workloads.
Task<void> ReplayStream(NodeContext& ctx, RecordSource source);

class TraceReplayApp : public App {
 public:
  // Opens and validates `path`; returns nullptr with *error set on any
  // open/format failure.
  static std::unique_ptr<TraceReplayApp> Open(const std::string& path, std::string* error);

  std::string name() const override { return "replay:" + reader_->info().app; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  const TraceInfo& info() const { return reader_->info(); }

 private:
  explicit TraceReplayApp(std::unique_ptr<TraceReader> reader);

  std::string path_;
  std::unique_ptr<TraceReader> reader_;
  // Per-node: did the stream replay cleanly through its kEnd record?
  std::vector<char> completed_;
};

}  // namespace wkld
}  // namespace hlrc

#endif  // SRC_WKLD_REPLAY_H_

// Versioned on-disk container for workload traces.
//
// Layout (all integers little-endian; see docs/WORKLOADS.md for the spec):
//
//   magic   "SVMWKLD\x1a"                                  8 bytes
//   u32     format version (kTraceVersion)
//   u32     header payload length
//   bytes   header payload (varint-encoded TraceInfo + alloc table)
//   u32     CRC-32 of the header payload
//   chunk*  { u32 node, u32 payload_len, u32 crc, payload }
//   chunk   end marker: node = 0xFFFFFFFF, payload_len = 0, crc = 0
//
// Each chunk carries whole records for one node (records never span
// chunks); within a node's chunk sequence, addresses are delta-encoded
// against the end of that node's previous range/run. The writer streams:
// per-node buffers are flushed as chunks once they pass a size threshold,
// so a trace never has to fit in memory. The reader opens one independent
// file cursor per node stream, so replay can pull all node streams
// concurrently without materializing the trace either.
#ifndef SRC_WKLD_TRACE_FILE_H_
#define SRC_WKLD_TRACE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/wkld/wire.h"
#include "src/wkld/workload.h"

namespace hlrc {
namespace wkld {

inline constexpr char kTraceMagic[8] = {'S', 'V', 'M', 'W', 'K', 'L', 'D', '\x1a'};
inline constexpr uint32_t kTraceVersion = 1;

// Streaming writer. Alloc() calls must all precede the first Append(); the
// header (which embeds the allocation table) is emitted lazily at that
// point. Append() may interleave nodes arbitrarily. Finish() (or the
// destructor) flushes remaining buffers and writes the end marker.
class TraceWriter : public WorkloadSink {
 public:
  // Dies on I/O failure (traces are produced locally; failing fast beats
  // silently dropping a recording).
  TraceWriter(const std::string& path, TraceInfo info);
  ~TraceWriter() override;

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void Alloc(const AllocEntry& entry) override;
  void Append(int node, const Record& record) override;

  void Finish();

 private:
  struct NodeBuf {
    Buffer pending;
    GlobalAddr last_addr = 0;  // Delta base for range/run addresses.
    bool ended = false;        // kEnd appended; stream is sealed.
  };

  void WriteHeaderIfNeeded();
  void FlushNode(uint32_t node);

  std::string path_;
  TraceInfo info_;
  std::FILE* file_ = nullptr;
  std::vector<NodeBuf> bufs_;
  bool header_written_ = false;
  bool finished_ = false;
};

// Validating reader. Open() checks magic, version and header CRC and
// returns nullptr with a human-readable *error on any mismatch — corrupt
// input is an expected condition, not a crash.
class TraceReader {
 public:
  static std::unique_ptr<TraceReader> Open(const std::string& path, std::string* error);
  ~TraceReader() = default;

  const TraceInfo& info() const { return info_; }

  // Sequential cursor over one node's records, backed by a private file
  // handle. Next() returns true and fills *record until the stream's kEnd
  // record (inclusive); after that it returns false with *error empty.
  // Corruption (bad chunk CRC, malformed record, truncation before kEnd)
  // returns false with *error set.
  class Stream {
   public:
    ~Stream();
    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    bool Next(Record* record, std::string* error);

   private:
    friend class TraceReader;
    Stream(std::FILE* file, uint32_t node, long first_chunk_off);

    // Loads the next chunk for node_ into chunk_, skipping other nodes'
    // chunks. Returns false at end marker (or error).
    bool LoadChunk(std::string* error);

    std::FILE* file_;
    uint32_t node_;
    Buffer chunk_;
    size_t chunk_pos_ = 0;
    GlobalAddr last_addr_ = 0;
    bool done_ = false;
  };

  std::unique_ptr<Stream> OpenStream(int node, std::string* error) const;

 private:
  TraceReader() = default;

  std::string path_;
  TraceInfo info_;
  long first_chunk_off_ = 0;
};

// Convenience: read an entire trace into `sink`, validating every chunk.
// Returns false with *error set on any corruption. *info receives the
// header metadata when non-null.
bool ReadTrace(const std::string& path, WorkloadSink* sink, TraceInfo* info,
               std::string* error);

// Convenience: write a complete in-memory workload as a trace file.
void WriteTrace(const std::string& path, TraceInfo info, const VectorSink& workload);

}  // namespace wkld
}  // namespace hlrc

#endif  // SRC_WKLD_TRACE_FILE_H_

#include "src/wkld/synth.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/wkld/replay.h"

namespace hlrc {
namespace wkld {

namespace {

// Emits one node's records for one pattern. All randomness comes from a
// per-node Rng seeded from (cfg.seed, node), so streams are independent of
// generation order; the barrier/lock schedule is derived from the loop
// structure alone so it matches across nodes.
class Gen {
 public:
  Gen(const SynthConfig& cfg, WorkloadSink* sink, int node)
      : cfg_(cfg),
        sink_(sink),
        node_(node),
        rng_(cfg.seed * 0x9E3779B9ull + static_cast<uint64_t>(node) + 1),
        block_bytes_(cfg.pages_per_node * cfg.page_size) {}

  GlobalAddr BlockAddr(int n) const {
    return static_cast<GlobalAddr>(n) * static_cast<GlobalAddr>(block_bytes_);
  }

  void Compute() {
    Record rec;
    rec.kind = Record::Kind::kCompute;
    // Jitter in [0.5, 1.5) of the mean keeps nodes from running in lockstep.
    rec.duration_ns = cfg_.compute_ns / 2 + rng_.NextInt(0, std::max<int64_t>(cfg_.compute_ns, 1) - 1);
    sink_->Append(node_, rec);
  }

  // Reads a random subrange of [base, base+span).
  void ReadOp(GlobalAddr base, int64_t span) {
    const auto [addr, len] = PickRange(base, span);
    Record rec;
    rec.kind = Record::Kind::kAccess;
    rec.ranges.push_back(AccessRange{addr, len, false});
    sink_->Append(node_, rec);
  }

  // Writes random bytes to a random subrange of [base, base+span).
  void WriteOp(GlobalAddr base, int64_t span) {
    const auto [addr, len] = PickRange(base, span);
    WriteExact(addr, len);
  }

  void WriteExact(GlobalAddr addr, int64_t len) {
    Record access;
    access.kind = Record::Kind::kAccess;
    access.ranges.push_back(AccessRange{addr, len, true});
    sink_->Append(node_, access);
    Record writes;
    writes.kind = Record::Kind::kWrites;
    WriteRun run;
    run.addr = addr;
    run.bytes.resize(static_cast<size_t>(len));
    for (uint8_t& b : run.bytes) {
      b = static_cast<uint8_t>(rng_.NextBounded(256));
    }
    writes.runs.push_back(std::move(run));
    sink_->Append(node_, writes);
  }

  void Sync(Record::Kind kind, int64_t id) {
    Record rec;
    rec.kind = kind;
    rec.sync_id = id;
    sink_->Append(node_, rec);
  }

  void End() { Sync(Record::Kind::kEnd, 0); }

  Rng& rng() { return rng_; }
  int64_t block_bytes() const { return block_bytes_; }

 private:
  std::pair<GlobalAddr, int64_t> PickRange(GlobalAddr base, int64_t span) {
    const int64_t len = std::min<int64_t>(span, rng_.NextInt(16, 256) & ~7ll);
    const int64_t off = rng_.NextInt(0, span - len) & ~7ll;
    return {base + static_cast<GlobalAddr>(off), len};
  }

  const SynthConfig& cfg_;
  WorkloadSink* sink_;
  int node_;
  Rng rng_;
  int64_t block_bytes_;
};

void GenNode(const SynthConfig& cfg, WorkloadSink* sink, int node) {
  Gen g(cfg, sink, node);
  const GlobalAddr own = g.BlockAddr(node);
  const GlobalAddr hot = g.BlockAddr(0);
  const int64_t block = g.block_bytes();
  const int p = cfg.nodes;

  for (int it = 0; it < cfg.iterations; ++it) {
    g.Sync(Record::Kind::kPhase, it);
    switch (cfg.pattern) {
      case SynthPattern::kSingleWriter:
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          if (g.rng().NextBool(cfg.write_frac)) {
            g.WriteOp(own, block);  // Writes never leave the node's block.
          } else if (g.rng().NextBool(cfg.locality)) {
            g.ReadOp(own, block);
          } else {
            g.ReadOp(g.BlockAddr(static_cast<int>(g.rng().NextBounded(
                         static_cast<uint64_t>(p)))),
                     block);
          }
        }
        g.Sync(Record::Kind::kBarrier, it);
        break;

      case SynthPattern::kMigratory:
        // The whole object follows the lock around: read-modify-write.
        g.Compute();
        g.Sync(Record::Kind::kLock, 0);
        g.ReadOp(hot, block);
        g.WriteOp(hot, block);
        g.Sync(Record::Kind::kUnlock, 0);
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          g.ReadOp(own, block);
        }
        g.Sync(Record::Kind::kBarrier, it);
        break;

      case SynthPattern::kProducerConsumer:
        // Produce into the own block, hand off at a barrier, consume the
        // left neighbor's block.
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          g.WriteOp(own, block);
        }
        g.Sync(Record::Kind::kBarrier, 2 * it);
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          g.ReadOp(g.BlockAddr((node + p - 1) % p), block);
        }
        g.Sync(Record::Kind::kBarrier, 2 * it + 1);
        break;

      case SynthPattern::kFalseSharing: {
        // Every node stores into its private slice of the shared block's
        // pages: no data races, maximal page-level write sharing.
        const int64_t slice = cfg.page_size / p;
        HLRC_CHECK_MSG(slice >= 16, "false-sharing needs page_size/nodes >= 16");
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          const int64_t page = g.rng().NextInt(0, cfg.pages_per_node - 1);
          const GlobalAddr mine =
              hot + static_cast<GlobalAddr>(page * cfg.page_size + node * slice);
          if (g.rng().NextBool(cfg.write_frac)) {
            g.WriteOp(mine, slice);
          } else {
            g.ReadOp(hot + static_cast<GlobalAddr>(page * cfg.page_size), cfg.page_size);
          }
        }
        g.Sync(Record::Kind::kBarrier, it);
        break;
      }

      case SynthPattern::kHotspot:
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          const bool local = g.rng().NextBool(cfg.locality);
          const GlobalAddr base = local ? own : hot;
          if (node != 0 && !local && g.rng().NextBool(cfg.write_frac)) {
            // Remote writes to node 0's block: the hotspot-home case. Slice
            // by node (as in false-sharing) to keep stores race-free.
            const int64_t slice = block / p;
            g.WriteOp(hot + static_cast<GlobalAddr>(node) * static_cast<GlobalAddr>(slice),
                      slice);
          } else if (g.rng().NextBool(cfg.write_frac) && local) {
            g.WriteOp(own, block);
          } else {
            g.ReadOp(base, block);
          }
        }
        g.Sync(Record::Kind::kBarrier, it);
        break;

      case SynthPattern::kReadMostly:
        if (node == 0) {
          // The single writer refreshes a few table entries...
          for (int op = 0; op < std::max(1, cfg.ops_per_iter / 4); ++op) {
            g.Compute();
            g.WriteOp(hot, block);
          }
        }
        g.Sync(Record::Kind::kBarrier, 2 * it);
        // ...then everyone (writer included) reads the table.
        for (int op = 0; op < cfg.ops_per_iter; ++op) {
          g.Compute();
          g.ReadOp(hot, block);
        }
        g.Sync(Record::Kind::kBarrier, 2 * it + 1);
        break;
    }
  }
  g.Sync(Record::Kind::kPhase, cfg.iterations);
  g.End();
}

class SyntheticApp : public App {
 public:
  explicit SyntheticApp(SynthConfig cfg) : cfg_(cfg) {}

  std::string name() const override {
    return std::string("synth-") + SynthPatternName(cfg_.pattern);
  }

  void Setup(System& sys) override {
    // Adapt to the actual topology: synthetic workloads sweep node count and
    // page size, unlike file-trace replay.
    cfg_.nodes = sys.config().nodes;
    cfg_.page_size = sys.config().page_size;
    cfg_.shared_bytes = sys.config().shared_bytes;
    workload_ = std::make_unique<VectorSink>(cfg_.nodes);
    GenerateSynthetic(cfg_, workload_.get());
    for (const AllocEntry& a : workload_->allocs()) {
      const GlobalAddr addr = a.page_aligned ? sys.space().AllocPageAligned(a.bytes)
                                             : sys.space().Alloc(a.bytes);
      HLRC_CHECK_MSG(addr == a.addr,
                     "synthetic workload expects a fresh shared space (allocation "
                     "landed at 0x%llx, expected 0x%llx)",
                     static_cast<unsigned long long>(addr),
                     static_cast<unsigned long long>(a.addr));
    }
    completed_.assign(static_cast<size_t>(cfg_.nodes), 0);
  }

  System::Program Program() override {
    return [this](NodeContext& ctx) -> Task<void> {
      return [](SyntheticApp* self, NodeContext& ctx) -> Task<void> {
        const std::vector<Record>& stream = self->workload_->stream(ctx.id());
        size_t pos = 0;
        co_await ReplayStream(ctx, [&stream, &pos](Record* rec) {
          if (pos == stream.size()) {
            return false;
          }
          *rec = stream[pos++];
          return true;
        });
        self->completed_[static_cast<size_t>(ctx.id())] = 1;
      }(this, ctx);
    };
  }

  bool Verify(System& sys, std::string* why) override {
    (void)sys;
    for (size_t n = 0; n < completed_.size(); ++n) {
      if (!completed_[n]) {
        if (why != nullptr) {
          *why = name() + ": node " + std::to_string(n) + " did not finish its stream";
        }
        return false;
      }
    }
    return true;
  }

 private:
  SynthConfig cfg_;
  std::unique_ptr<VectorSink> workload_;
  std::vector<char> completed_;
};

SynthConfig ScaledConfig(SynthPattern pattern, AppScale scale, std::optional<uint64_t> seed) {
  SynthConfig cfg;
  cfg.pattern = pattern;
  switch (scale) {
    case AppScale::kTiny:
      cfg.pages_per_node = 2;
      cfg.iterations = 4;
      cfg.ops_per_iter = 8;
      break;
    case AppScale::kDefault:
      break;  // Struct defaults.
    case AppScale::kPaper:
      cfg.pages_per_node = 8;
      cfg.iterations = 16;
      cfg.ops_per_iter = 32;
      break;
  }
  if (seed) {
    cfg.seed = *seed;
  }
  return cfg;
}

// One registrar per pattern so `svmsim --app synth-<pattern>` works like any
// other application.
const AppRegistrar kSynthRegistrars[] = {
    {"synth-single-writer",
     [](AppScale s, std::optional<uint64_t> seed) {
       return MakeSyntheticApp(ScaledConfig(SynthPattern::kSingleWriter, s, seed));
     }},
    {"synth-migratory",
     [](AppScale s, std::optional<uint64_t> seed) {
       return MakeSyntheticApp(ScaledConfig(SynthPattern::kMigratory, s, seed));
     }},
    {"synth-prodcons",
     [](AppScale s, std::optional<uint64_t> seed) {
       return MakeSyntheticApp(ScaledConfig(SynthPattern::kProducerConsumer, s, seed));
     }},
    {"synth-false-sharing",
     [](AppScale s, std::optional<uint64_t> seed) {
       return MakeSyntheticApp(ScaledConfig(SynthPattern::kFalseSharing, s, seed));
     }},
    {"synth-hotspot",
     [](AppScale s, std::optional<uint64_t> seed) {
       return MakeSyntheticApp(ScaledConfig(SynthPattern::kHotspot, s, seed));
     }},
    {"synth-read-mostly",
     [](AppScale s, std::optional<uint64_t> seed) {
       return MakeSyntheticApp(ScaledConfig(SynthPattern::kReadMostly, s, seed));
     }},
};

}  // namespace

const std::vector<std::string>& SynthPatternNames() {
  static const std::vector<std::string> names = {
      "single-writer", "migratory", "prodcons", "false-sharing", "hotspot", "read-mostly",
  };
  return names;
}

const char* SynthPatternName(SynthPattern pattern) {
  return SynthPatternNames()[static_cast<size_t>(pattern)].c_str();
}

bool ParseSynthPattern(const std::string& name, SynthPattern* pattern) {
  const std::vector<std::string>& names = SynthPatternNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      *pattern = static_cast<SynthPattern>(i);
      return true;
    }
  }
  return false;
}

void GenerateSynthetic(const SynthConfig& cfg, WorkloadSink* sink) {
  HLRC_CHECK(cfg.nodes > 0 && cfg.pages_per_node > 0 && cfg.iterations >= 0);
  HLRC_CHECK(cfg.page_size >= 256 && cfg.page_size % 16 == 0);
  const int64_t arena = static_cast<int64_t>(cfg.nodes) * cfg.pages_per_node * cfg.page_size;
  // A fresh SharedSpace bump allocator starts at 0, so one page-aligned
  // arena allocation is reproducible by construction.
  sink->Alloc(AllocEntry{0, arena, /*page_aligned=*/true});
  for (int node = 0; node < cfg.nodes; ++node) {
    GenNode(cfg, sink, node);
  }
}

void WriteSyntheticTrace(const std::string& path, const SynthConfig& cfg) {
  VectorSink workload(cfg.nodes);
  GenerateSynthetic(cfg, &workload);
  TraceInfo info;
  info.nodes = cfg.nodes;
  info.page_size = cfg.page_size;
  info.shared_bytes = cfg.shared_bytes;
  info.app = std::string("synth-") + SynthPatternName(cfg.pattern);
  info.meta = "pattern=" + std::string(SynthPatternName(cfg.pattern)) +
              " seed=" + std::to_string(cfg.seed) +
              " iterations=" + std::to_string(cfg.iterations) +
              " ops_per_iter=" + std::to_string(cfg.ops_per_iter) +
              " pages_per_node=" + std::to_string(cfg.pages_per_node) +
              " write_frac=" + std::to_string(cfg.write_frac) +
              " locality=" + std::to_string(cfg.locality);
  info.allocs = workload.allocs();
  TraceWriter writer(path, std::move(info));
  for (int node = 0; node < cfg.nodes; ++node) {
    for (const Record& rec : workload.stream(node)) {
      writer.Append(node, rec);
    }
  }
  writer.Finish();
}

std::unique_ptr<App> MakeSyntheticApp(const SynthConfig& cfg) {
  return std::make_unique<SyntheticApp>(cfg);
}

}  // namespace wkld
}  // namespace hlrc

// Seeded synthetic workload generator.
//
// Produces parameterized sharing patterns in the same record-stream form as
// recorded traces, so every consumer (trace files, replay, stats) treats
// recorded and synthetic workloads identically. Generation is a pure
// function of SynthConfig: the same config (seed included) yields a
// byte-identical workload, which makes synthetic traces reproducible
// protocol benchmarks (docs/WORKLOADS.md).
//
// The patterns cover the sharing regimes the SVM literature exercises:
//   single-writer — each node writes only its own page block; readers pull
//                   neighbor blocks (coarse-grain, no write sharing)
//   migratory     — a lock-protected object read+written by every node in
//                   turn (data migrates with the lock)
//   prodcons      — producer/consumer hand-off through per-node buffers
//                   with a barrier between produce and consume halves
//   false-sharing — nodes store to disjoint byte slices of the same pages
//   hotspot       — all nodes hammer a region homed on node 0
//   read-mostly   — node 0 updates a table; everyone else only reads it
#ifndef SRC_WKLD_SYNTH_H_
#define SRC_WKLD_SYNTH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/wkld/trace_file.h"
#include "src/wkld/workload.h"

namespace hlrc {
namespace wkld {

enum class SynthPattern {
  kSingleWriter,
  kMigratory,
  kProducerConsumer,
  kFalseSharing,
  kHotspot,
  kReadMostly,
};

// Short names as used in CLI flags and app names: "single-writer",
// "migratory", "prodcons", "false-sharing", "hotspot", "read-mostly".
const std::vector<std::string>& SynthPatternNames();
const char* SynthPatternName(SynthPattern pattern);
bool ParseSynthPattern(const std::string& name, SynthPattern* pattern);

struct SynthConfig {
  SynthPattern pattern = SynthPattern::kSingleWriter;
  int nodes = 8;
  int64_t page_size = 4096;
  int64_t shared_bytes = 64ll << 20;  // Echoed into trace headers.
  int pages_per_node = 4;             // Arena block per node.
  int iterations = 8;                 // Outer (barrier-delimited) rounds.
  int ops_per_iter = 16;              // Accesses per node per round.
  double write_frac = 0.5;            // P(an access is a write).
  double locality = 0.8;              // P(an access stays in the node's block).
  int64_t compute_ns = 2000;          // Mean compute charged between accesses.
  uint64_t seed = 42;
};

// Emits the workload for `cfg` into `sink`: one arena allocation followed
// by one record stream per node (terminated by kEnd).
void GenerateSynthetic(const SynthConfig& cfg, WorkloadSink* sink);

// Generates and writes a complete trace file for `cfg`.
void WriteSyntheticTrace(const std::string& path, const SynthConfig& cfg);

// Synthetic workloads as Apps ("synth-<pattern>", registered with
// AppRegistrar): generation happens at Setup time against the actual
// system config, so node count / page size sweeps work — unlike file-trace
// replay, which is pinned to its recorded topology.
std::unique_ptr<App> MakeSyntheticApp(const SynthConfig& cfg);

}  // namespace wkld
}  // namespace hlrc

#endif  // SRC_WKLD_SYNTH_H_

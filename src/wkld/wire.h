// Byte-level primitives of the workload trace format (docs/WORKLOADS.md):
// LEB128 varints, zigzag signed mapping, fixed-width little-endian scalars
// and CRC-32 (IEEE 802.3 polynomial, the zlib crc32 convention).
//
// Everything is explicitly little-endian and byte-oriented, so a trace
// written on one machine reads identically on any other.
#ifndef SRC_WKLD_WIRE_H_
#define SRC_WKLD_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hlrc {
namespace wkld {

using Buffer = std::vector<uint8_t>;

// ---- varint / zigzag -------------------------------------------------------

inline void PutVarint(Buffer& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutZigZag(Buffer& out, int64_t v) { PutVarint(out, ZigZag(v)); }

// Bounds-checked sequential reader over an in-memory byte span.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

  bool ReadVarint(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_ || shift >= 64) {
        return Fail();
      }
      const uint8_t byte = data_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    *v = result;
    return true;
  }

  bool ReadZigZag(int64_t* v) {
    uint64_t raw;
    if (!ReadVarint(&raw)) {
      return false;
    }
    *v = UnZigZag(raw);
    return true;
  }

  bool ReadBytes(uint8_t* out, size_t n) {
    if (size_ - pos_ < n) {
      return Fail();
    }
    for (size_t i = 0; i < n; ++i) {
      out[i] = data_[pos_ + i];
    }
    pos_ += n;
    return true;
  }

  bool ReadU8(uint8_t* v) { return ReadBytes(v, 1); }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- fixed-width little-endian scalars -------------------------------------

inline void PutU32(Buffer& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

inline void PutU64(Buffer& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) | static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

// ---- CRC-32 ----------------------------------------------------------------

// CRC-32/IEEE over `data` (crc32("123456789") == 0xCBF43926). `seed` chains
// incremental computations: pass the previous return value.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const Buffer& buf, uint32_t seed = 0) {
  return Crc32(buf.data(), buf.size(), seed);
}

}  // namespace wkld
}  // namespace hlrc

#endif  // SRC_WKLD_WIRE_H_

#include "src/wkld/replay.h"

#include <cstring>

#include "src/common/check.h"

namespace hlrc {
namespace wkld {

Task<void> ReplayStream(NodeContext& ctx, RecordSource source) {
  Record rec;
  while (source(&rec)) {
    switch (rec.kind) {
      case Record::Kind::kCompute:
        co_await ctx.Compute(rec.duration_ns);
        break;
      case Record::Kind::kAccess:
        co_await ctx.Access(rec.ranges);
        break;
      case Record::Kind::kWrites:
        // Stores must land before the next co_await: the preceding kAccess
        // grant only holds until the program suspends. Pulling the record
        // from the source is host-side work, so nothing intervened.
        for (const WriteRun& run : rec.runs) {
          std::memcpy(ctx.Ptr<std::byte>(run.addr), run.bytes.data(), run.bytes.size());
        }
        break;
      case Record::Kind::kLock:
        co_await ctx.Lock(static_cast<LockId>(rec.sync_id));
        break;
      case Record::Kind::kUnlock:
        co_await ctx.Unlock(static_cast<LockId>(rec.sync_id));
        break;
      case Record::Kind::kBarrier:
        co_await ctx.Barrier(static_cast<BarrierId>(rec.sync_id));
        break;
      case Record::Kind::kPhase:
        ctx.SnapshotPhase(static_cast<int>(rec.sync_id));
        break;
      case Record::Kind::kEnd:
        co_return;
    }
  }
}

TraceReplayApp::TraceReplayApp(std::unique_ptr<TraceReader> reader)
    : reader_(std::move(reader)) {}

std::unique_ptr<TraceReplayApp> TraceReplayApp::Open(const std::string& path,
                                                     std::string* error) {
  auto reader = TraceReader::Open(path, error);
  if (reader == nullptr) {
    return nullptr;
  }
  auto app = std::unique_ptr<TraceReplayApp>(new TraceReplayApp(std::move(reader)));
  app->path_ = path;
  return app;
}

void TraceReplayApp::Setup(System& sys) {
  const TraceInfo& info = reader_->info();
  HLRC_CHECK_MSG(sys.config().nodes == info.nodes,
                 "trace %s was recorded with %d nodes but the system has %d: a file "
                 "trace replays only at its recorded node count (its barriers would "
                 "deadlock otherwise); use a synthetic workload for node-count sweeps",
                 path_.c_str(), info.nodes, sys.config().nodes);
  for (const AllocEntry& a : info.allocs) {
    const GlobalAddr addr =
        a.page_aligned ? sys.space().AllocPageAligned(a.bytes) : sys.space().Alloc(a.bytes);
    HLRC_CHECK_MSG(addr == a.addr,
                   "replay allocation landed at 0x%llx, trace %s recorded 0x%llx: the "
                   "shared-space layout shifted (usually a page-size mismatch: trace "
                   "was recorded with page_size=%lld)",
                   static_cast<unsigned long long>(addr), path_.c_str(),
                   static_cast<unsigned long long>(a.addr),
                   static_cast<long long>(info.page_size));
  }
  completed_.assign(static_cast<size_t>(info.nodes), 0);
}

System::Program TraceReplayApp::Program() {
  return [this](NodeContext& ctx) -> Task<void> {
    return [](TraceReplayApp* self, NodeContext& ctx) -> Task<void> {
      std::string error;
      auto stream = self->reader_->OpenStream(ctx.id(), &error);
      HLRC_CHECK_MSG(stream != nullptr, "%s", error.c_str());
      TraceReader::Stream* raw = stream.get();
      bool saw_end = false;
      co_await ReplayStream(ctx, [raw, &error, &saw_end](Record* rec) {
        if (!raw->Next(rec, &error)) {
          HLRC_CHECK_MSG(error.empty(), "trace replay failed: %s", error.c_str());
          return false;
        }
        saw_end = rec->kind == Record::Kind::kEnd;
        return true;
      });
      HLRC_CHECK_MSG(saw_end, "node %d's stream ended without an END record", ctx.id());
      self->completed_[static_cast<size_t>(ctx.id())] = 1;
    }(this, ctx);
  };
}

bool TraceReplayApp::Verify(System& sys, std::string* why) {
  (void)sys;
  for (size_t n = 0; n < completed_.size(); ++n) {
    if (!completed_[n]) {
      if (why != nullptr) {
        *why = "replay: node " + std::to_string(n) + " did not finish its stream";
      }
      return false;
    }
  }
  return true;
}

}  // namespace wkld
}  // namespace hlrc

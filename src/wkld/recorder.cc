#include "src/wkld/recorder.h"

#include <cstring>

namespace hlrc {
namespace wkld {

namespace {

// Changed-byte runs separated by fewer than this many unchanged bytes are
// merged into one run. The unchanged bytes are re-stored with their current
// values on replay, which is harmless, and the merge keeps scattered small
// stores (e.g. a struct update) from exploding into many tiny runs.
constexpr int64_t kMergeGap = 32;

}  // namespace

TraceInfo MakeTraceInfo(const SimConfig& config, const std::string& app,
                        const std::string& meta) {
  TraceInfo info;
  info.nodes = config.nodes;
  info.page_size = config.page_size;
  info.shared_bytes = config.shared_bytes;
  info.app = app;
  info.meta = meta;
  return info;
}

TraceRecorder::TraceRecorder(System* system, WorkloadSink* sink)
    : system_(system), sink_(sink) {
  pending_.resize(static_cast<size_t>(system->config().nodes));
}

void TraceRecorder::OnAlloc(GlobalAddr addr, int64_t bytes, bool page_aligned) {
  sink_->Alloc(AllocEntry{addr, bytes, page_aligned});
}

void TraceRecorder::OnStep(NodeId node) { FlushWrites(node); }

void TraceRecorder::OnCompute(NodeId node, SimTime duration) {
  Record rec;
  rec.kind = Record::Kind::kCompute;
  rec.duration_ns = duration;
  sink_->Append(node, rec);
}

void TraceRecorder::OnAccess(NodeId node, const std::vector<AccessRange>& ranges) {
  Record rec;
  rec.kind = Record::Kind::kAccess;
  rec.ranges = ranges;
  sink_->Append(node, rec);
  for (const AccessRange& r : ranges) {
    if (!r.write) {
      continue;
    }
    PendingWrite pw;
    pw.addr = r.addr;
    pw.snapshot.resize(static_cast<size_t>(r.bytes));
    std::memcpy(pw.snapshot.data(), system_->NodeMemory(node, r.addr), pw.snapshot.size());
    pending_[static_cast<size_t>(node)].push_back(std::move(pw));
  }
}

void TraceRecorder::OnLock(NodeId node, LockId lock) {
  Record rec;
  rec.kind = Record::Kind::kLock;
  rec.sync_id = lock;
  sink_->Append(node, rec);
}

void TraceRecorder::OnUnlock(NodeId node, LockId lock) {
  Record rec;
  rec.kind = Record::Kind::kUnlock;
  rec.sync_id = lock;
  sink_->Append(node, rec);
}

void TraceRecorder::OnBarrier(NodeId node, BarrierId barrier) {
  Record rec;
  rec.kind = Record::Kind::kBarrier;
  rec.sync_id = barrier;
  sink_->Append(node, rec);
}

void TraceRecorder::OnPhase(NodeId node, int phase) {
  Record rec;
  rec.kind = Record::Kind::kPhase;
  rec.sync_id = phase;
  sink_->Append(node, rec);
}

void TraceRecorder::OnFinish(NodeId node) {
  FlushWrites(node);
  Record rec;
  rec.kind = Record::Kind::kEnd;
  sink_->Append(node, rec);
}

void TraceRecorder::FlushWrites(NodeId node) {
  std::vector<PendingWrite>& pending = pending_[static_cast<size_t>(node)];
  if (pending.empty()) {
    return;
  }
  Record rec;
  rec.kind = Record::Kind::kWrites;
  for (const PendingWrite& pw : pending) {
    const uint8_t* now =
        reinterpret_cast<const uint8_t*>(system_->NodeMemory(node, pw.addr));
    const int64_t n = static_cast<int64_t>(pw.snapshot.size());
    int64_t i = 0;
    while (i < n) {
      if (now[i] == pw.snapshot[static_cast<size_t>(i)]) {
        ++i;
        continue;
      }
      // Start of a changed run; extend until kMergeGap unchanged bytes.
      const int64_t start = i;
      int64_t end = i + 1;  // One past the last changed byte.
      int64_t j = end;
      while (j < n && j - end < kMergeGap) {
        if (now[j] != pw.snapshot[static_cast<size_t>(j)]) {
          end = j + 1;
        }
        ++j;
      }
      WriteRun run;
      run.addr = pw.addr + static_cast<GlobalAddr>(start);
      run.bytes.assign(now + start, now + end);
      rec.runs.push_back(std::move(run));
      i = end;
    }
  }
  pending.clear();
  if (!rec.runs.empty()) {
    sink_->Append(node, rec);
  }
}

}  // namespace wkld
}  // namespace hlrc

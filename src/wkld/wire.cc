#include "src/wkld/wire.h"

namespace hlrc {
namespace wkld {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  static const Crc32Table table;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace wkld
}  // namespace hlrc

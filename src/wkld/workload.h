// Core data model of the workload subsystem: the record stream every
// producer (recorder, synthetic generator) emits and every consumer
// (trace writer, replay app, stats) consumes.
//
// A workload is, per node, a flat sequence of Records describing what the
// node's program did between synchronization points: how long it computed,
// which shared ranges it accessed (and with what intent), which bytes it
// actually stored, and which sync operations it issued. Replaying the
// sequence through a NodeContext reproduces the original run's protocol
// behavior exactly — see docs/WORKLOADS.md for the argument.
#ifndef SRC_WKLD_WORKLOAD_H_
#define SRC_WKLD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/svm/workload_observer.h"

namespace hlrc {
namespace wkld {

// One contiguous run of bytes stored by the node, with the stored values.
struct WriteRun {
  GlobalAddr addr = 0;
  std::vector<uint8_t> bytes;

  bool operator==(const WriteRun& o) const { return addr == o.addr && bytes == o.bytes; }
};

// One event in a node's stream. Which fields are meaningful depends on kind.
struct Record {
  enum class Kind : uint8_t {
    kCompute = 1,  // duration_ns
    kAccess = 2,   // ranges
    kWrites = 3,   // runs (values stored after the preceding kAccess)
    kLock = 4,     // sync_id
    kUnlock = 5,   // sync_id
    kBarrier = 6,  // sync_id
    kPhase = 7,    // sync_id (phase number)
    kEnd = 8,      // terminator; exactly one per node stream
  };

  Kind kind = Kind::kEnd;
  int64_t duration_ns = 0;
  int64_t sync_id = 0;
  std::vector<AccessRange> ranges;
  std::vector<WriteRun> runs;

  bool operator==(const Record& o) const {
    return kind == o.kind && duration_ns == o.duration_ns && sync_id == o.sync_id &&
           ranges == o.ranges && runs == o.runs;
  }
};

const char* RecordKindName(Record::Kind kind);

// One shared-space allocation made during App::Setup, in program order.
// Replay re-issues these before running so GlobalAddrs in the stream
// resolve to the same pages.
struct AllocEntry {
  GlobalAddr addr = 0;
  int64_t bytes = 0;
  bool page_aligned = false;

  bool operator==(const AllocEntry& o) const {
    return addr == o.addr && bytes == o.bytes && page_aligned == o.page_aligned;
  }
};

// Trace-wide metadata, serialized in the file header.
struct TraceInfo {
  int nodes = 0;
  int64_t page_size = 0;
  int64_t shared_bytes = 0;
  std::string app;   // Source app name ("sor", "synth-migratory", ...).
  std::string meta;  // Free-form provenance (config summary, seed, ...).
  std::vector<AllocEntry> allocs;
};

// Consumer interface for a workload as it is produced. TraceWriter streams
// records to disk; tests collect them in memory.
class WorkloadSink {
 public:
  virtual ~WorkloadSink() = default;

  // Allocations arrive first (during Setup), then per-node records in any
  // node interleaving; records for one node arrive in program order.
  virtual void Alloc(const AllocEntry& entry) = 0;
  virtual void Append(int node, const Record& record) = 0;
};

// In-memory sink: the simplest consumer, used by the generator and tests.
class VectorSink : public WorkloadSink {
 public:
  explicit VectorSink(int nodes) : streams_(static_cast<size_t>(nodes)) {}

  void Alloc(const AllocEntry& entry) override { allocs_.push_back(entry); }
  void Append(int node, const Record& record) override {
    HLRC_CHECK(node >= 0 && static_cast<size_t>(node) < streams_.size());
    streams_[static_cast<size_t>(node)].push_back(record);
  }

  const std::vector<AllocEntry>& allocs() const { return allocs_; }
  const std::vector<Record>& stream(int node) const {
    return streams_[static_cast<size_t>(node)];
  }
  int nodes() const { return static_cast<int>(streams_.size()); }

 private:
  std::vector<AllocEntry> allocs_;
  std::vector<std::vector<Record>> streams_;
};

}  // namespace wkld
}  // namespace hlrc

#endif  // SRC_WKLD_WORKLOAD_H_

#include "src/wkld/trace_file.h"

#include <cstring>

#include "src/common/check.h"

namespace hlrc {
namespace wkld {

namespace {

// Per-node buffers are flushed as a chunk once they exceed this.
constexpr size_t kChunkFlushBytes = 64 * 1024;
constexpr uint32_t kEndMarkerNode = 0xFFFFFFFFu;

void EncodeRecord(const Record& rec, Buffer& out, GlobalAddr* last_addr) {
  out.push_back(static_cast<uint8_t>(rec.kind));
  switch (rec.kind) {
    case Record::Kind::kCompute:
      PutVarint(out, static_cast<uint64_t>(rec.duration_ns));
      break;
    case Record::Kind::kAccess:
      PutVarint(out, rec.ranges.size());
      for (const AccessRange& r : rec.ranges) {
        PutZigZag(out, static_cast<int64_t>(r.addr) - static_cast<int64_t>(*last_addr));
        PutVarint(out, static_cast<uint64_t>(r.bytes));
        out.push_back(r.write ? 1 : 0);
        *last_addr = r.addr + static_cast<GlobalAddr>(r.bytes);
      }
      break;
    case Record::Kind::kWrites:
      PutVarint(out, rec.runs.size());
      for (const WriteRun& run : rec.runs) {
        PutZigZag(out, static_cast<int64_t>(run.addr) - static_cast<int64_t>(*last_addr));
        PutVarint(out, run.bytes.size());
        out.insert(out.end(), run.bytes.begin(), run.bytes.end());
        *last_addr = run.addr + static_cast<GlobalAddr>(run.bytes.size());
      }
      break;
    case Record::Kind::kLock:
    case Record::Kind::kUnlock:
    case Record::Kind::kBarrier:
    case Record::Kind::kPhase:
      PutZigZag(out, rec.sync_id);
      break;
    case Record::Kind::kEnd:
      break;
  }
}

bool DecodeRecord(ByteReader& in, Record* rec, GlobalAddr* last_addr) {
  uint8_t kind_byte;
  if (!in.ReadU8(&kind_byte)) {
    return false;
  }
  if (kind_byte < static_cast<uint8_t>(Record::Kind::kCompute) ||
      kind_byte > static_cast<uint8_t>(Record::Kind::kEnd)) {
    return false;
  }
  *rec = Record{};
  rec->kind = static_cast<Record::Kind>(kind_byte);
  switch (rec->kind) {
    case Record::Kind::kCompute: {
      uint64_t ns;
      if (!in.ReadVarint(&ns)) {
        return false;
      }
      rec->duration_ns = static_cast<int64_t>(ns);
      return true;
    }
    case Record::Kind::kAccess: {
      uint64_t count;
      if (!in.ReadVarint(&count) || count > (1u << 20)) {
        return false;
      }
      rec->ranges.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        int64_t delta;
        uint64_t bytes;
        uint8_t write;
        if (!in.ReadZigZag(&delta) || !in.ReadVarint(&bytes) || !in.ReadU8(&write) ||
            write > 1) {
          return false;
        }
        AccessRange r;
        r.addr = static_cast<GlobalAddr>(static_cast<int64_t>(*last_addr) + delta);
        r.bytes = static_cast<int64_t>(bytes);
        r.write = write != 0;
        *last_addr = r.addr + static_cast<GlobalAddr>(r.bytes);
        rec->ranges.push_back(r);
      }
      return true;
    }
    case Record::Kind::kWrites: {
      uint64_t count;
      if (!in.ReadVarint(&count) || count > (1u << 24)) {
        return false;
      }
      rec->runs.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        int64_t delta;
        uint64_t len;
        if (!in.ReadZigZag(&delta) || !in.ReadVarint(&len)) {
          return false;
        }
        WriteRun run;
        run.addr = static_cast<GlobalAddr>(static_cast<int64_t>(*last_addr) + delta);
        run.bytes.resize(static_cast<size_t>(len));
        if (!in.ReadBytes(run.bytes.data(), run.bytes.size())) {
          return false;
        }
        *last_addr = run.addr + static_cast<GlobalAddr>(run.bytes.size());
        rec->runs.push_back(std::move(run));
      }
      return true;
    }
    case Record::Kind::kLock:
    case Record::Kind::kUnlock:
    case Record::Kind::kBarrier:
    case Record::Kind::kPhase:
      return in.ReadZigZag(&rec->sync_id);
    case Record::Kind::kEnd:
      return true;
  }
  return false;
}

void EncodeHeader(const TraceInfo& info, Buffer& out) {
  PutVarint(out, static_cast<uint64_t>(info.nodes));
  PutVarint(out, static_cast<uint64_t>(info.page_size));
  PutVarint(out, static_cast<uint64_t>(info.shared_bytes));
  PutVarint(out, info.app.size());
  out.insert(out.end(), info.app.begin(), info.app.end());
  PutVarint(out, info.meta.size());
  out.insert(out.end(), info.meta.begin(), info.meta.end());
  PutVarint(out, info.allocs.size());
  GlobalAddr last = 0;
  for (const AllocEntry& a : info.allocs) {
    PutZigZag(out, static_cast<int64_t>(a.addr) - static_cast<int64_t>(last));
    PutVarint(out, static_cast<uint64_t>(a.bytes));
    out.push_back(a.page_aligned ? 1 : 0);
    last = a.addr;
  }
}

bool DecodeHeader(const Buffer& payload, TraceInfo* info) {
  ByteReader in(payload.data(), payload.size());
  uint64_t nodes, page_size, shared_bytes, len;
  if (!in.ReadVarint(&nodes) || !in.ReadVarint(&page_size) || !in.ReadVarint(&shared_bytes)) {
    return false;
  }
  info->nodes = static_cast<int>(nodes);
  info->page_size = static_cast<int64_t>(page_size);
  info->shared_bytes = static_cast<int64_t>(shared_bytes);
  if (!in.ReadVarint(&len) || len > payload.size()) {
    return false;
  }
  info->app.resize(static_cast<size_t>(len));
  if (!in.ReadBytes(reinterpret_cast<uint8_t*>(info->app.data()), info->app.size())) {
    return false;
  }
  if (!in.ReadVarint(&len) || len > payload.size()) {
    return false;
  }
  info->meta.resize(static_cast<size_t>(len));
  if (!in.ReadBytes(reinterpret_cast<uint8_t*>(info->meta.data()), info->meta.size())) {
    return false;
  }
  uint64_t count;
  if (!in.ReadVarint(&count) || count > (1u << 20)) {
    return false;
  }
  GlobalAddr last = 0;
  info->allocs.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delta;
    uint64_t bytes;
    uint8_t aligned;
    if (!in.ReadZigZag(&delta) || !in.ReadVarint(&bytes) || !in.ReadU8(&aligned) ||
        aligned > 1) {
      return false;
    }
    AllocEntry a;
    a.addr = static_cast<GlobalAddr>(static_cast<int64_t>(last) + delta);
    a.bytes = static_cast<int64_t>(bytes);
    a.page_aligned = aligned != 0;
    last = a.addr;
    info->allocs.push_back(a);
  }
  return in.AtEnd();
}

void FWrite(std::FILE* f, const void* data, size_t n, const std::string& path) {
  HLRC_CHECK_MSG(std::fwrite(data, 1, n, f) == n, "short write to trace file %s",
                 path.c_str());
}

}  // namespace

const char* RecordKindName(Record::Kind kind) {
  switch (kind) {
    case Record::Kind::kCompute:
      return "COMPUTE";
    case Record::Kind::kAccess:
      return "ACCESS";
    case Record::Kind::kWrites:
      return "WRITES";
    case Record::Kind::kLock:
      return "LOCK";
    case Record::Kind::kUnlock:
      return "UNLOCK";
    case Record::Kind::kBarrier:
      return "BARRIER";
    case Record::Kind::kPhase:
      return "PHASE";
    case Record::Kind::kEnd:
      return "END";
  }
  return "?";
}

// ---- TraceWriter -----------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, TraceInfo info)
    : path_(path), info_(std::move(info)) {
  HLRC_CHECK_MSG(info_.nodes > 0, "trace needs at least one node");
  file_ = std::fopen(path.c_str(), "wb");
  HLRC_CHECK_MSG(file_ != nullptr, "cannot open trace file %s for writing", path.c_str());
  bufs_.resize(static_cast<size_t>(info_.nodes));
}

TraceWriter::~TraceWriter() {
  if (!finished_) {
    Finish();
  }
}

void TraceWriter::Alloc(const AllocEntry& entry) {
  HLRC_CHECK_MSG(!header_written_, "Alloc() after first Append(): allocations must all "
                                   "happen during Setup, before any node runs");
  info_.allocs.push_back(entry);
}

void TraceWriter::WriteHeaderIfNeeded() {
  if (header_written_) {
    return;
  }
  header_written_ = true;
  Buffer payload;
  EncodeHeader(info_, payload);
  Buffer head;
  head.insert(head.end(), kTraceMagic, kTraceMagic + sizeof(kTraceMagic));
  PutU32(head, kTraceVersion);
  PutU32(head, static_cast<uint32_t>(payload.size()));
  head.insert(head.end(), payload.begin(), payload.end());
  PutU32(head, Crc32(payload));
  FWrite(file_, head.data(), head.size(), path_);
}

void TraceWriter::Append(int node, const Record& record) {
  HLRC_CHECK(node >= 0 && static_cast<size_t>(node) < bufs_.size());
  HLRC_CHECK(!finished_);
  WriteHeaderIfNeeded();
  NodeBuf& buf = bufs_[static_cast<size_t>(node)];
  HLRC_CHECK_MSG(!buf.ended, "Append() after kEnd for node %d", node);
  EncodeRecord(record, buf.pending, &buf.last_addr);
  if (record.kind == Record::Kind::kEnd) {
    buf.ended = true;
  }
  if (buf.pending.size() >= kChunkFlushBytes) {
    FlushNode(static_cast<uint32_t>(node));
  }
}

void TraceWriter::FlushNode(uint32_t node) {
  NodeBuf& buf = bufs_[node];
  if (buf.pending.empty()) {
    return;
  }
  Buffer head;
  PutU32(head, node);
  PutU32(head, static_cast<uint32_t>(buf.pending.size()));
  PutU32(head, Crc32(buf.pending));
  FWrite(file_, head.data(), head.size(), path_);
  FWrite(file_, buf.pending.data(), buf.pending.size(), path_);
  buf.pending.clear();
}

void TraceWriter::Finish() {
  HLRC_CHECK(!finished_);
  finished_ = true;
  WriteHeaderIfNeeded();  // Header even for an empty trace.
  for (uint32_t n = 0; n < bufs_.size(); ++n) {
    FlushNode(n);
  }
  Buffer marker;
  PutU32(marker, kEndMarkerNode);
  PutU32(marker, 0);
  PutU32(marker, 0);
  FWrite(file_, marker.data(), marker.size(), path_);
  HLRC_CHECK_MSG(std::fclose(file_) == 0, "close failed for trace file %s", path_.c_str());
  file_ = nullptr;
}

// ---- TraceReader -----------------------------------------------------------

std::unique_ptr<TraceReader> TraceReader::Open(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why) -> std::unique_ptr<TraceReader> {
    if (error != nullptr) {
      *error = path + ": " + why;
    }
    return nullptr;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return fail("cannot open");
  }
  uint8_t fixed[16];
  if (std::fread(fixed, 1, sizeof(fixed), f) != sizeof(fixed)) {
    std::fclose(f);
    return fail("truncated header");
  }
  if (std::memcmp(fixed, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    std::fclose(f);
    return fail("not a workload trace (bad magic)");
  }
  const uint32_t version = GetU32(fixed + 8);
  if (version != kTraceVersion) {
    std::fclose(f);
    return fail("unsupported trace version " + std::to_string(version) + " (expected " +
                std::to_string(kTraceVersion) + ")");
  }
  const uint32_t header_len = GetU32(fixed + 12);
  if (header_len > (1u << 28)) {
    std::fclose(f);
    return fail("implausible header length");
  }
  Buffer payload(header_len);
  if (header_len != 0 && std::fread(payload.data(), 1, header_len, f) != header_len) {
    std::fclose(f);
    return fail("truncated header payload");
  }
  uint8_t crc_bytes[4];
  if (std::fread(crc_bytes, 1, 4, f) != 4) {
    std::fclose(f);
    return fail("truncated header CRC");
  }
  if (GetU32(crc_bytes) != Crc32(payload)) {
    std::fclose(f);
    return fail("header CRC mismatch (file corrupt)");
  }
  auto reader = std::unique_ptr<TraceReader>(new TraceReader());
  reader->path_ = path;
  if (!DecodeHeader(payload, &reader->info_)) {
    std::fclose(f);
    return fail("malformed header payload");
  }
  reader->first_chunk_off_ = std::ftell(f);
  std::fclose(f);
  if (reader->info_.nodes <= 0) {
    return fail("trace declares no nodes");
  }
  return reader;
}

std::unique_ptr<TraceReader::Stream> TraceReader::OpenStream(int node,
                                                             std::string* error) const {
  if (node < 0 || node >= info_.nodes) {
    if (error != nullptr) {
      *error = path_ + ": node " + std::to_string(node) + " out of range";
    }
    return nullptr;
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = path_ + ": cannot reopen";
    }
    return nullptr;
  }
  return std::unique_ptr<Stream>(
      new Stream(f, static_cast<uint32_t>(node), first_chunk_off_));
}

TraceReader::Stream::Stream(std::FILE* file, uint32_t node, long first_chunk_off)
    : file_(file), node_(node) {
  std::fseek(file_, first_chunk_off, SEEK_SET);
}

TraceReader::Stream::~Stream() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool TraceReader::Stream::LoadChunk(std::string* error) {
  while (true) {
    uint8_t head[12];
    if (std::fread(head, 1, sizeof(head), file_) != sizeof(head)) {
      *error = "trace truncated: no end marker";
      return false;
    }
    const uint32_t node = GetU32(head);
    const uint32_t len = GetU32(head + 4);
    const uint32_t crc = GetU32(head + 8);
    if (node == kEndMarkerNode) {
      *error = "trace ended before node " + std::to_string(node_) + "'s END record";
      return false;
    }
    if (len == 0 || len > (1u << 28)) {
      *error = "implausible chunk length";
      return false;
    }
    if (node != node_) {
      if (std::fseek(file_, static_cast<long>(len), SEEK_CUR) != 0) {
        *error = "trace truncated mid-chunk";
        return false;
      }
      continue;
    }
    chunk_.resize(len);
    if (std::fread(chunk_.data(), 1, len, file_) != len) {
      *error = "trace truncated mid-chunk";
      return false;
    }
    if (Crc32(chunk_) != crc) {
      *error = "chunk CRC mismatch for node " + std::to_string(node_) + " (file corrupt)";
      return false;
    }
    chunk_pos_ = 0;
    return true;
  }
}

bool TraceReader::Stream::Next(Record* record, std::string* error) {
  error->clear();
  if (done_) {
    return false;
  }
  if (chunk_pos_ == chunk_.size()) {
    if (!LoadChunk(error)) {
      done_ = true;
      return false;
    }
  }
  ByteReader in(chunk_.data() + chunk_pos_, chunk_.size() - chunk_pos_);
  if (!DecodeRecord(in, record, &last_addr_)) {
    *error = "malformed record for node " + std::to_string(node_);
    done_ = true;
    return false;
  }
  chunk_pos_ += in.pos();
  if (record->kind == Record::Kind::kEnd) {
    done_ = true;
  }
  return true;
}

// ---- convenience -----------------------------------------------------------

bool ReadTrace(const std::string& path, WorkloadSink* sink, TraceInfo* info,
               std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  auto reader = TraceReader::Open(path, error);
  if (reader == nullptr) {
    return false;
  }
  if (info != nullptr) {
    *info = reader->info();
  }
  if (sink != nullptr) {
    for (const AllocEntry& a : reader->info().allocs) {
      sink->Alloc(a);
    }
  }
  for (int node = 0; node < reader->info().nodes; ++node) {
    auto stream = reader->OpenStream(node, error);
    if (stream == nullptr) {
      return false;
    }
    Record rec;
    bool saw_end = false;
    while (stream->Next(&rec, error)) {
      if (sink != nullptr) {
        sink->Append(node, rec);
      }
      saw_end = rec.kind == Record::Kind::kEnd;
    }
    if (!error->empty()) {
      return false;
    }
    if (!saw_end) {
      *error = path + ": node " + std::to_string(node) + " stream missing END record";
      return false;
    }
  }
  return true;
}

void WriteTrace(const std::string& path, TraceInfo info, const VectorSink& workload) {
  HLRC_CHECK(info.nodes == workload.nodes());
  TraceWriter writer(path, std::move(info));
  for (const AllocEntry& a : workload.allocs()) {
    writer.Alloc(a);
  }
  for (int node = 0; node < workload.nodes(); ++node) {
    for (const Record& rec : workload.stream(node)) {
      writer.Append(node, rec);
    }
  }
  writer.Finish();
}

}  // namespace wkld
}  // namespace hlrc

// TraceRecorder — captures a running application's shared-access and
// synchronization behavior through the System's WorkloadObserver hooks.
//
// Access grants are recorded as-is. Stored *values* are captured by
// snapshot-and-diff: when a grant containing write ranges completes, the
// recorder snapshots those ranges from the node's memory; at the node's
// next operation (the earliest point after which no further stores can
// have happened — stores execute synchronously between two NodeContext
// calls) it diffs the snapshot against memory and emits the changed byte
// runs. This makes the capture exact: replaying the grants and the runs
// reproduces the node's page contents, and therefore the protocol's diffs,
// fetches and message counts, bit for bit.
//
// Recording is pure observation — it never awaits, charges time, or
// touches protocol state, so a recorded run is time-identical to an
// unrecorded one.
#ifndef SRC_WKLD_RECORDER_H_
#define SRC_WKLD_RECORDER_H_

#include <vector>

#include "src/svm/system.h"
#include "src/svm/workload_observer.h"
#include "src/wkld/workload.h"

namespace hlrc {
namespace wkld {

// Builds the header metadata for a recording of `app` under `config`.
TraceInfo MakeTraceInfo(const SimConfig& config, const std::string& app,
                        const std::string& meta);

class TraceRecorder : public WorkloadObserver {
 public:
  // Both pointers are borrowed and must outlive the recorder. Install with
  // system->SetWorkloadObserver(&recorder) before App::Setup.
  TraceRecorder(System* system, WorkloadSink* sink);

  void OnAlloc(GlobalAddr addr, int64_t bytes, bool page_aligned) override;
  void OnStep(NodeId node) override;
  void OnCompute(NodeId node, SimTime duration) override;
  void OnAccess(NodeId node, const std::vector<AccessRange>& ranges) override;
  void OnLock(NodeId node, LockId lock) override;
  void OnUnlock(NodeId node, LockId lock) override;
  void OnBarrier(NodeId node, BarrierId barrier) override;
  void OnPhase(NodeId node, int phase) override;
  void OnFinish(NodeId node) override;

 private:
  // One write range granted to the node, with its byte values at grant time.
  struct PendingWrite {
    GlobalAddr addr = 0;
    std::vector<uint8_t> snapshot;
  };

  // Diffs node's pending snapshots against current memory, emits a kWrites
  // record if anything changed, and clears the pending set.
  void FlushWrites(NodeId node);

  System* system_;
  WorkloadSink* sink_;
  std::vector<std::vector<PendingWrite>> pending_;
};

}  // namespace wkld
}  // namespace hlrc

#endif  // SRC_WKLD_RECORDER_H_

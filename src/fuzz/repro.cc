#include "src/fuzz/repro.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hlrc {
namespace fuzz {
namespace {

using wkld::Record;

constexpr const char* kMagic = "hlrc-svmfuzz-repro v1";

bool ParseProtocolName(const std::string& s, ProtocolKind* out) {
  for (int k = 0; k <= static_cast<int>(ProtocolKind::kAurc); ++k) {
    if (s == ProtocolName(static_cast<ProtocolKind>(k))) {
      *out = static_cast<ProtocolKind>(k);
      return true;
    }
  }
  return false;
}

bool ParseMutationName(const std::string& s, TestMutation* out) {
  for (int m = 0; m <= static_cast<int>(TestMutation::kLrcSkipInvalidate); ++m) {
    if (s == TestMutationName(static_cast<TestMutation>(m))) {
      *out = static_cast<TestMutation>(m);
      return true;
    }
  }
  return false;
}

bool ParseHomePolicyName(const std::string& s, HomePolicy* out) {
  for (int p = 0; p <= static_cast<int>(HomePolicy::kSingleNode); ++p) {
    if (s == HomePolicyName(static_cast<HomePolicy>(p))) {
      *out = static_cast<HomePolicy>(p);
      return true;
    }
  }
  return false;
}

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) {
    *error = "repro parse: " + why;
  }
  return false;
}

}  // namespace

std::string SerializeRepro(const ReproFile& repro) {
  const WorkloadGenome& g = repro.input.workload;
  const ScheduleGenome& s = repro.input.schedule;
  const HarnessConfig& c = repro.config;
  std::ostringstream out;
  out << kMagic << "\n";
  out << "protocol " << ProtocolName(c.protocol) << "\n";
  out << "mutation " << TestMutationName(c.mutation) << "\n";
  out << "home-policy " << HomePolicyName(c.home_policy) << "\n";
  out << "migrate-homes " << (c.migrate_homes ? 1 : 0) << "\n";
  out << "permute-tasks " << (c.permute_tasks ? 1 : 0) << "\n";
  char num[64];
  std::snprintf(num, sizeof(num), "%.17g %.17g", c.fault.drop_prob, c.fault.delay_prob);
  out << "fault " << c.fault.seed << " " << num << " " << c.fault.delay_min << " "
      << c.fault.delay_max << "\n";
  out << "nodes " << g.nodes << "\n";
  out << "page-size " << g.page_size << "\n";
  out << "shared-bytes " << g.shared_bytes << "\n";
  out << "origin " << (g.origin.empty() ? "unknown" : g.origin) << "\n";
  out << "schedule-seed " << s.seed << "\n";
  out << "max-jitter " << s.max_jitter << "\n";
  out << "schedule-prefix " << s.prefix.size();
  for (uint64_t v : s.prefix) {
    out << " " << v;
  }
  out << "\n";
  if (!repro.cross.empty()) {
    out << "cross " << repro.cross.size();
    for (ProtocolKind p : repro.cross) {
      out << " " << ProtocolName(p);
    }
    out << "\n";
  }
  if (!repro.violation.empty()) {
    // Single line: newlines in the description would break the format.
    std::string flat = repro.violation;
    for (char& ch : flat) {
      if (ch == '\n') {
        ch = ' ';
      }
    }
    out << "violation " << flat << "\n";
  }
  for (const wkld::AllocEntry& a : g.allocs) {
    out << "alloc " << a.addr << " " << a.bytes << " " << (a.page_aligned ? 1 : 0) << "\n";
  }
  for (int n = 0; n < g.nodes; ++n) {
    out << "node " << n << "\n";
    for (const Record& rec : g.streams[static_cast<size_t>(n)]) {
      switch (rec.kind) {
        case Record::Kind::kCompute:
          out << "c " << rec.duration_ns << "\n";
          break;
        case Record::Kind::kAccess:
          out << "a " << rec.ranges.size();
          for (const AccessRange& r : rec.ranges) {
            out << " " << (r.write ? 'w' : 'r') << " " << r.addr << " " << r.bytes;
          }
          out << "\n";
          break;
        case Record::Kind::kLock:
          out << "l " << rec.sync_id << "\n";
          break;
        case Record::Kind::kUnlock:
          out << "u " << rec.sync_id << "\n";
          break;
        case Record::Kind::kBarrier:
          out << "b " << rec.sync_id << "\n";
          break;
        case Record::Kind::kPhase:
          out << "p " << rec.sync_id << "\n";
          break;
        case Record::Kind::kEnd:
          out << "e\n";
          break;
        case Record::Kind::kWrites:
          break;  // Never present in genomes.
      }
    }
  }
  out << "end\n";
  return out.str();
}

bool ParseRepro(const std::string& text, ReproFile* out, std::string* error) {
  *out = ReproFile{};
  WorkloadGenome& g = out->input.workload;
  ScheduleGenome& s = out->input.schedule;
  HarnessConfig& c = out->config;

  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Fail(error, "bad magic (expected '" + std::string(kMagic) + "')");
  }

  int cur_node = -1;
  bool saw_end = false;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto bad = [&]() {
      return Fail(error, "line " + std::to_string(lineno) + ": malformed '" + key + "'");
    };
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "protocol") {
      std::string v;
      if (!(ls >> v) || !ParseProtocolName(v, &c.protocol)) {
        return Fail(error, "unknown protocol on line " + std::to_string(lineno));
      }
    } else if (key == "mutation") {
      std::string v;
      if (!(ls >> v) || !ParseMutationName(v, &c.mutation)) {
        return Fail(error, "unknown mutation on line " + std::to_string(lineno));
      }
    } else if (key == "home-policy") {
      std::string v;
      if (!(ls >> v) || !ParseHomePolicyName(v, &c.home_policy)) {
        return Fail(error, "unknown home policy on line " + std::to_string(lineno));
      }
    } else if (key == "migrate-homes") {
      int v = 0;
      if (!(ls >> v)) return bad();
      c.migrate_homes = v != 0;
    } else if (key == "permute-tasks") {
      int v = 0;
      if (!(ls >> v)) return bad();
      c.permute_tasks = v != 0;
    } else if (key == "fault") {
      if (!(ls >> c.fault.seed >> c.fault.drop_prob >> c.fault.delay_prob >>
            c.fault.delay_min >> c.fault.delay_max)) {
        return bad();
      }
    } else if (key == "nodes") {
      if (!(ls >> g.nodes) || g.nodes <= 0 || g.nodes > 1024) return bad();
      g.streams.assign(static_cast<size_t>(g.nodes), {});
    } else if (key == "page-size") {
      if (!(ls >> g.page_size) || g.page_size <= 0) return bad();
    } else if (key == "shared-bytes") {
      if (!(ls >> g.shared_bytes) || g.shared_bytes <= 0) return bad();
    } else if (key == "origin") {
      ls >> g.origin;
    } else if (key == "schedule-seed") {
      if (!(ls >> s.seed)) return bad();
    } else if (key == "max-jitter") {
      if (!(ls >> s.max_jitter) || s.max_jitter < 0) return bad();
    } else if (key == "schedule-prefix") {
      size_t n = 0;
      if (!(ls >> n) || n > (1u << 20)) return bad();
      s.prefix.resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (!(ls >> s.prefix[i])) return bad();
      }
    } else if (key == "cross") {
      size_t n = 0;
      if (!(ls >> n) || n > 16) return bad();
      out->cross.resize(n);
      for (size_t i = 0; i < n; ++i) {
        std::string v;
        if (!(ls >> v) || !ParseProtocolName(v, &out->cross[i])) return bad();
      }
    } else if (key == "violation") {
      std::getline(ls, out->violation);
      while (!out->violation.empty() && out->violation.front() == ' ') {
        out->violation.erase(out->violation.begin());
      }
    } else if (key == "alloc") {
      wkld::AllocEntry a;
      int aligned = 0;
      if (!(ls >> a.addr >> a.bytes >> aligned)) return bad();
      a.page_aligned = aligned != 0;
      g.allocs.push_back(a);
    } else if (key == "node") {
      if (!(ls >> cur_node) || cur_node < 0 || cur_node >= g.nodes) return bad();
    } else if (key == "c" || key == "a" || key == "l" || key == "u" || key == "b" ||
               key == "p" || key == "e") {
      if (cur_node < 0) {
        return Fail(error, "record before any 'node' header on line " +
                               std::to_string(lineno));
      }
      Record rec;
      if (key == "c") {
        rec.kind = Record::Kind::kCompute;
        if (!(ls >> rec.duration_ns) || rec.duration_ns < 0) return bad();
      } else if (key == "a") {
        rec.kind = Record::Kind::kAccess;
        size_t n = 0;
        if (!(ls >> n) || n > (1u << 16)) return bad();
        rec.ranges.resize(n);
        for (size_t i = 0; i < n; ++i) {
          char intent = 0;
          if (!(ls >> intent >> rec.ranges[i].addr >> rec.ranges[i].bytes) ||
              (intent != 'r' && intent != 'w') || rec.ranges[i].bytes <= 0) {
            return bad();
          }
          rec.ranges[i].write = intent == 'w';
        }
      } else if (key == "l" || key == "u" || key == "b" || key == "p") {
        rec.kind = key == "l"   ? Record::Kind::kLock
                   : key == "u" ? Record::Kind::kUnlock
                   : key == "b" ? Record::Kind::kBarrier
                                : Record::Kind::kPhase;
        if (!(ls >> rec.sync_id) || rec.sync_id < 0) return bad();
      } else {
        rec.kind = Record::Kind::kEnd;
      }
      g.streams[static_cast<size_t>(cur_node)].push_back(rec);
    } else {
      return Fail(error, "unknown key '" + key + "' on line " + std::to_string(lineno));
    }
  }
  if (!saw_end) {
    return Fail(error, "truncated file (no 'end' line)");
  }
  if (g.nodes == 0) {
    return Fail(error, "missing 'nodes'");
  }
  for (int n = 0; n < g.nodes; ++n) {
    const auto& stream = g.streams[static_cast<size_t>(n)];
    if (stream.empty() || stream.back().kind != Record::Kind::kEnd) {
      return Fail(error, "node " + std::to_string(n) + " stream lacks an 'e' terminator");
    }
  }
  return true;
}

bool WriteReproFile(const std::string& path, const ReproFile& repro, std::string* error) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  f << SerializeRepro(repro);
  f.close();
  if (!f) {
    if (error != nullptr) {
      *error = "write to " + path + " failed";
    }
    return false;
  }
  return true;
}

bool LoadReproFile(const std::string& path, ReproFile* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseRepro(buf.str(), out, error);
}

std::string ReplayRepro(const ReproFile& repro) {
  const RunOutcome out = RunGenome(repro.input, repro.config, nullptr);
  if (!out.ok) {
    return out.violations.front();
  }
  if (!repro.cross.empty()) {
    const DifferentialResult diff =
        RunDifferential(repro.input, repro.config, repro.cross, nullptr);
    if (diff.diverged) {
      return diff.reports.front();
    }
  }
  return "";
}

}  // namespace fuzz
}  // namespace hlrc

#include "src/fuzz/harness.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "src/check/oracle.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/svm/system.h"

namespace hlrc {
namespace fuzz {
namespace {

using wkld::Record;

// Globally unique, nonzero store value for (node, per-node op counter).
uint64_t StoreValue(NodeId node, uint64_t ctr) {
  return (static_cast<uint64_t>(node) + 1) << 40 | ((ctr + 1) << 8) | 1;
}

// Deterministic sample of up to 4 aligned words in [addr, addr+bytes): the
// first word, the last, and up to two hashed interior picks. Identical
// across protocols, so final-image vectors align in the differential diff.
void SampleWords(GlobalAddr addr, int64_t bytes, std::vector<GlobalAddr>* out) {
  const GlobalAddr first = (addr + 7) & ~static_cast<GlobalAddr>(7);
  const GlobalAddr end = addr + static_cast<GlobalAddr>(bytes);
  if (first + 8 > end) {
    return;
  }
  const GlobalAddr last = (end - 8) & ~static_cast<GlobalAddr>(7);
  out->push_back(first);
  const uint64_t nwords = (last - first) / 8 + 1;
  if (nwords >= 3) {
    uint64_t h = first * 0x9e3779b97f4a7c15ULL + nwords;
    h ^= h >> 29;
    const uint64_t i1 = 1 + h % (nwords - 2);
    out->push_back(first + i1 * 8);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
    const uint64_t i2 = 1 + h % (nwords - 2);
    if (i2 != i1) {
      out->push_back(first + i2 * 8);
    }
  }
  if (last != first) {
    out->push_back(last);
  }
}

// Static per-word write analysis over the genome's program order.
struct WordInfo {
  NodeId writer = kInvalidNode;
  bool multi = false;           // More than one writing node.
  uint64_t last_value = 0;      // Program-order-last value of `writer`.
};

// The decision stream: prefix-pinned, then Rng continuation. Same xor
// constant as the explorer's Chaos so an empty prefix reproduces svmcheck's
// decision stream for the same seed.
class PrefixChaos {
 public:
  explicit PrefixChaos(const ScheduleGenome& s)
      : genome_(&s), rng_(s.seed ^ 0xc2b2ae3d27d4eb4fULL) {}

  uint64_t Tiebreak() { return NextRaw(); }

  SimTime Jitter() {
    return static_cast<SimTime>(
        NextRaw() % (static_cast<uint64_t>(genome_->max_jitter) + 1));
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t NextRaw() {
    const uint64_t v = count_ < genome_->prefix.size() ? genome_->prefix[count_]
                                                       : rng_.NextU64();
    ++count_;
    return v;
  }

  const ScheduleGenome* genome_;
  Rng rng_;
  uint64_t count_ = 0;
};

struct HarnessState {
  const WorkloadGenome* genome = nullptr;
  BarrierId final_barrier = 0;
  std::map<GlobalAddr, WordInfo> words;
  std::vector<GlobalAddr> check_addrs;  // Sorted single-writer words, capped.
  std::vector<uint64_t> final_values;   // Filled by node 0 post-barrier.
  std::vector<std::string> violations;  // Final-image mismatches.
};

constexpr size_t kMaxCheckedWords = 64;

void Prescan(HarnessState* st) {
  const WorkloadGenome& g = *st->genome;
  BarrierId max_barrier = 0;
  std::vector<GlobalAddr> sample;
  for (int n = 0; n < g.nodes; ++n) {
    uint64_t ctr = 0;
    for (const Record& rec : g.streams[static_cast<size_t>(n)]) {
      if (rec.kind == Record::Kind::kBarrier) {
        max_barrier = std::max(max_barrier, static_cast<BarrierId>(rec.sync_id));
      }
      if (rec.kind != Record::Kind::kAccess) {
        continue;
      }
      for (const AccessRange& r : rec.ranges) {
        sample.clear();
        SampleWords(r.addr, r.bytes, &sample);
        if (!r.write) {
          continue;
        }
        for (GlobalAddr w : sample) {
          WordInfo& info = st->words[w];
          if (info.writer == kInvalidNode) {
            info.writer = n;
          } else if (info.writer != n) {
            info.multi = true;
          }
          if (info.writer == n) {
            info.last_value = StoreValue(n, ctr);
          }
          ++ctr;
        }
      }
    }
  }
  st->final_barrier = max_barrier + 1;

  std::vector<GlobalAddr> single;
  for (const auto& [addr, info] : st->words) {
    if (info.writer != kInvalidNode && !info.multi) {
      single.push_back(addr);
    }
  }
  // Evenly-spaced cap keeps the check O(1)-ish while still spanning the
  // touched address range.
  const size_t step = std::max<size_t>(1, single.size() / kMaxCheckedWords);
  for (size_t i = 0; i < single.size() && st->check_addrs.size() < kMaxCheckedWords;
       i += step) {
    st->check_addrs.push_back(single[i]);
  }
}

Task<void> RunNode(HarnessState* st, NodeContext& ctx) {
  const int node = ctx.id();
  const std::vector<Record>& stream =
      st->genome->streams[static_cast<size_t>(node)];
  uint64_t ctr = 0;
  std::vector<GlobalAddr> sample;
  bool ended = false;
  for (const Record& rec : stream) {
    if (ended) {
      break;
    }
    switch (rec.kind) {
      case Record::Kind::kCompute:
        co_await ctx.Compute(rec.duration_ns);
        break;
      case Record::Kind::kAccess:
        for (const AccessRange& r : rec.ranges) {
          sample.clear();
          SampleWords(r.addr, r.bytes, &sample);
          for (GlobalAddr w : sample) {
            if (r.write) {
              co_await ctx.StoreWord(w, StoreValue(node, ctr));
              ++ctr;
            } else {
              co_await ctx.LoadWord(w);
            }
          }
        }
        break;
      case Record::Kind::kLock:
        co_await ctx.Lock(static_cast<LockId>(rec.sync_id));
        break;
      case Record::Kind::kUnlock:
        co_await ctx.Unlock(static_cast<LockId>(rec.sync_id));
        break;
      case Record::Kind::kBarrier:
        co_await ctx.Barrier(static_cast<BarrierId>(rec.sync_id));
        break;
      case Record::Kind::kWrites:
      case Record::Kind::kPhase:
        break;  // The harness performs its own stores; phases are cosmetic.
      case Record::Kind::kEnd:
        ended = true;
        break;
    }
  }

  // Quiesce: the final barrier orders every write of every node before the
  // image readback below.
  co_await ctx.Barrier(st->final_barrier);
  if (node == 0) {
    for (GlobalAddr addr : st->check_addrs) {
      const uint64_t got = co_await ctx.LoadWord(addr);
      st->final_values.push_back(got);
      const WordInfo& info = st->words.at(addr);
      if (got != info.last_value) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "final-image: word 0x%llx expected 0x%llx (node %d's last "
                      "write) but read 0x%llx",
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(info.last_value), info.writer,
                      static_cast<unsigned long long>(got));
        st->violations.push_back(buf);
      }
    }
  }
  co_return;
}

}  // namespace

RunOutcome RunGenome(const FuzzInput& input, const HarnessConfig& config,
                     CoverageObserver* cov) {
  const WorkloadGenome& g = input.workload;
  HLRC_CHECK(g.nodes > 0 && static_cast<int>(g.streams.size()) == g.nodes);

  SimConfig sim;
  sim.nodes = g.nodes;
  sim.page_size = g.page_size;
  sim.shared_bytes = g.shared_bytes;
  sim.seed = input.schedule.seed;
  sim.protocol.kind = config.protocol;
  sim.protocol.mutation = config.mutation;
  sim.protocol.home_policy = config.home_policy;
  sim.protocol.migrate_homes = config.migrate_homes;
  sim.fault = config.fault;
  sim.reliability = config.reliability;
  if (sim.fault.Active()) {
    if (sim.fault.seed == 0) {
      // Derive the loss pattern from the schedule seed, like svmcheck.
      sim.fault.seed = Rng(input.schedule.seed).NextU64();
    }
    // A dropped grant or barrier release on a lossless-transport protocol is
    // a deadlock, which System::Run treats as fatal: always pair injected
    // faults with the reliable-delivery layer.
    sim.reliability.enabled = true;
  }

  System sys(sim);
  for (const wkld::AllocEntry& a : g.allocs) {
    const GlobalAddr addr = a.page_aligned ? sys.space().AllocPageAligned(a.bytes)
                                           : sys.space().Alloc(a.bytes);
    HLRC_CHECK_MSG(addr == a.addr, "genome allocation landed at 0x%llx, expected 0x%llx",
                   static_cast<unsigned long long>(addr),
                   static_cast<unsigned long long>(a.addr));
  }

  LrcOracle oracle(g.nodes);
  sys.SetAccessObserver(&oracle);
  if (cov != nullptr) {
    sys.SetCoverageObserver(cov);
  }

  PrefixChaos chaos(input.schedule);
  if (config.permute_tasks) {
    sys.engine().SetTieBreaker([&chaos] { return chaos.Tiebreak(); });
  }
  if (input.schedule.max_jitter > 0) {
    sys.network().SetDeliveryJitterHook(
        [&chaos](NodeId, NodeId, MsgType) { return chaos.Jitter(); });
  }

  HarnessState state;
  state.genome = &g;
  Prescan(&state);

  sys.Run([&state](NodeContext& ctx) -> Task<void> { return RunNode(&state, ctx); });

  RunOutcome out;
  for (const OracleViolation& v : oracle.violations()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "oracle: node %d read 0x%llx = 0x%llx: ",
                  v.read.node, static_cast<unsigned long long>(v.read.addr),
                  static_cast<unsigned long long>(v.read.value));
    out.violations.push_back(buf + v.description);
  }
  out.violations.insert(out.violations.end(), state.violations.begin(),
                        state.violations.end());
  out.ok = out.violations.empty();
  out.final_addrs = std::move(state.check_addrs);
  out.final_words = std::move(state.final_values);
  const NodeReport totals = sys.report().Totals();
  out.lock_acquires = totals.proto.lock_acquires;
  out.barriers = totals.proto.barriers;
  out.reads_checked = oracle.reads_checked();
  out.decisions_used = chaos.count();
  out.sim_time = sys.report().total_time;
  return out;
}

DifferentialResult RunDifferential(const FuzzInput& input, const HarnessConfig& base,
                                   const std::vector<ProtocolKind>& protocols,
                                   CoverageMap* aggregate) {
  DifferentialResult diff;
  HLRC_CHECK(!protocols.empty());
  std::vector<RunOutcome> outcomes;
  outcomes.reserve(protocols.size());
  for (ProtocolKind p : protocols) {
    HarnessConfig hc = base;
    hc.protocol = p;
    CoverageMap local(static_cast<uint64_t>(p) + 1);
    outcomes.push_back(RunGenome(input, hc, &local));
    ++diff.runs;
    if (aggregate != nullptr) {
      aggregate->MergeNovel(local);
    }
  }
  const RunOutcome& ref = outcomes[0];
  for (size_t i = 0; i < protocols.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    const char* name = ProtocolName(protocols[i]);
    for (const std::string& v : o.violations) {
      diff.diverged = true;
      diff.reports.push_back(std::string(name) + ": " + v);
    }
    if (i == 0) {
      continue;
    }
    if (o.final_words != ref.final_words) {
      diff.diverged = true;
      for (size_t w = 0; w < o.final_words.size() && w < ref.final_words.size(); ++w) {
        if (o.final_words[w] != ref.final_words[w]) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "divergence: word 0x%llx is 0x%llx under %s but 0x%llx under %s",
                        static_cast<unsigned long long>(ref.final_addrs[w]),
                        static_cast<unsigned long long>(ref.final_words[w]),
                        ProtocolName(protocols[0]),
                        static_cast<unsigned long long>(o.final_words[w]), name);
          diff.reports.push_back(buf);
        }
      }
    }
    if (o.lock_acquires != ref.lock_acquires || o.barriers != ref.barriers) {
      diff.diverged = true;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "divergence: %s ran %lld acquires / %lld barriers, %s ran "
                    "%lld / %lld",
                    ProtocolName(protocols[0]), static_cast<long long>(ref.lock_acquires),
                    static_cast<long long>(ref.barriers), name,
                    static_cast<long long>(o.lock_acquires),
                    static_cast<long long>(o.barriers));
      diff.reports.push_back(buf);
    }
  }
  return diff;
}

}  // namespace fuzz
}  // namespace hlrc

#include "src/fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/sim/sweep.h"

namespace hlrc {
namespace fuzz {
namespace {

constexpr int kSeedPatterns = static_cast<int>(wkld::SynthPattern::kReadMostly) + 1;

// Strips one contiguous run of records from a node's stream (minimizer
// candidate). Sync records are never removed — the per-node barrier
// sequences and lock pairing must survive minimization just as they
// survive mutation.
bool RemovableRun(const std::vector<wkld::Record>& stream, size_t begin, size_t len) {
  for (size_t i = begin; i < begin + len && i < stream.size(); ++i) {
    const wkld::Record::Kind k = stream[i].kind;
    if (k != wkld::Record::Kind::kCompute && k != wkld::Record::Kind::kAccess &&
        k != wkld::Record::Kind::kPhase) {
      return false;
    }
  }
  return begin + len <= stream.size();
}

}  // namespace

Fuzzer::Fuzzer(const FuzzConfig& config)
    : config_(config), rng_(config.seed), coverage_(0) {
  HLRC_CHECK_MSG(config_.budget > 0, "fuzz budget must be positive");
  HLRC_CHECK_MSG(config_.batch > 0, "fuzz batch must be positive");
  HLRC_CHECK_MSG(config_.nodes >= 2, "fuzzing needs at least two nodes");
}

HarnessConfig Fuzzer::BaseHarness() const {
  HarnessConfig hc;
  hc.protocol = config_.primary;
  hc.mutation = config_.mutation;
  if (config_.fault_drop > 0.0 || config_.fault_delay > 0.0) {
    hc.fault.drop_prob = config_.fault_drop;
    hc.fault.delay_prob = config_.fault_delay;
    hc.fault.seed = 0;  // Derived per-run from the schedule seed.
  }
  return hc;
}

Fuzzer::Processed Fuzzer::ExecuteBatch(const std::vector<FuzzInput>& inputs) {
  struct Slot {
    RunOutcome outcome;
    CoverageMap cov;
  };
  const HarnessConfig base = BaseHarness();
  const int count = static_cast<int>(inputs.size());
  std::vector<Slot> slots = ParallelMap<Slot>(count, config_.jobs, [&](int i) {
    Slot s;
    s.cov = CoverageMap(static_cast<uint64_t>(config_.primary) + 1);
    s.outcome = RunGenome(inputs[static_cast<size_t>(i)], base, &s.cov);
    return s;
  });
  ++stats_.batches;

  // Fold in slot order: corpus growth, stats and the aggregate map are
  // bit-identical at any --jobs count.
  Processed pr;
  for (int i = 0; i < count; ++i) {
    const FuzzInput& input = inputs[static_cast<size_t>(i)];
    const Slot& slot = slots[static_cast<size_t>(i)];
    ++stats_.executions;
    const int64_t novel = coverage_.MergeNovel(slot.cov);
    if (!slot.outcome.ok) {
      pr.failed = true;
      pr.failing = input;
      pr.violation = slot.outcome.violations.front();
      pr.differential = false;
      return pr;
    }
    if (novel <= 0) {
      continue;
    }
    ++stats_.novel_inputs;
    if (config_.feedback) {
      const uint64_t hash = HashInput(input);
      if (std::find(corpus_hashes_.begin(), corpus_hashes_.end(), hash) ==
          corpus_hashes_.end()) {
        corpus_.push_back(input);
        corpus_hashes_.push_back(hash);
      }
    }
    if (config_.differential && !config_.cross.empty() &&
        stats_.executions + static_cast<int>(config_.cross.size()) <= config_.budget) {
      const DifferentialResult diff =
          RunDifferential(input, base, config_.cross, &coverage_);
      stats_.executions += diff.runs;
      stats_.differential_runs += diff.runs;
      if (diff.diverged) {
        pr.failed = true;
        pr.failing = input;
        pr.violation = diff.reports.front();
        pr.differential = true;
        return pr;
      }
    }
  }
  return pr;
}

std::string Fuzzer::Check(const FuzzInput& input, bool differential, int* spent) {
  const HarnessConfig base = BaseHarness();
  const RunOutcome out = RunGenome(input, base, nullptr);
  *spent += 1;
  if (!out.ok) {
    return out.violations.front();
  }
  if (differential && !config_.cross.empty()) {
    const DifferentialResult diff = RunDifferential(input, base, config_.cross, nullptr);
    *spent += diff.runs;
    if (diff.diverged) {
      return diff.reports.front();
    }
  }
  return "";
}

FuzzInput Fuzzer::MinimizeInput(const FuzzInput& failing, bool differential,
                                std::string* violation) {
  FuzzInput cur = failing;
  int spent = 0;

  // Workload: greedy ddmin-lite over each node's mutable records — try
  // removing runs of shrinking length, keep any candidate that still fails.
  for (int node = 0; node < cur.workload.nodes && spent < config_.minimize_budget;
       ++node) {
    const size_t node_idx = static_cast<size_t>(node);
    size_t len = std::max<size_t>(cur.workload.streams[node_idx].size() / 2, 1);
    for (;;) {
      size_t begin = 0;
      while (begin + len < cur.workload.streams[node_idx].size() &&
             spent < config_.minimize_budget) {
        if (!RemovableRun(cur.workload.streams[node_idx], begin, len)) {
          ++begin;
          continue;
        }
        FuzzInput candidate = cur;
        std::vector<wkld::Record>& cs = candidate.workload.streams[node_idx];
        cs.erase(cs.begin() + static_cast<int64_t>(begin),
                 cs.begin() + static_cast<int64_t>(begin + len));
        const std::string v = Check(candidate, differential, &spent);
        if (!v.empty()) {
          cur = std::move(candidate);
          *violation = v;
          // Keep `begin` in place: the stream shrank under it.
        } else {
          ++begin;
        }
      }
      if (len <= 1 || spent >= config_.minimize_budget) {
        break;
      }
      len /= 2;
    }
  }

  // Schedule: try dropping the pinned prefix entirely, then trailing halves.
  while (!cur.schedule.prefix.empty() && spent < config_.minimize_budget) {
    FuzzInput candidate = cur;
    const size_t keep = candidate.schedule.prefix.size() / 2;
    candidate.schedule.prefix.resize(keep);
    const std::string v = Check(candidate, differential, &spent);
    if (v.empty()) {
      break;
    }
    cur = candidate;
    *violation = v;
    if (keep == 0) {
      break;
    }
  }
  return cur;
}

FuzzResult Fuzzer::Run() {
  const auto start = std::chrono::steady_clock::now();
  const auto time_up = [&]() {
    if (config_.max_seconds <= 0.0) {
      return false;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= config_.max_seconds;
  };

  // Seed genomes: all six sharing patterns, one schedule each. Seeds are
  // corpus members unconditionally — with feedback off the corpus stays
  // exactly this set and the session is a uniform random sweep over it.
  std::vector<FuzzInput> seeds;
  seeds.reserve(kSeedPatterns);
  for (int p = 0; p < kSeedPatterns; ++p) {
    FuzzInput in;
    in.workload =
        SeedWorkload(static_cast<wkld::SynthPattern>(p), config_.nodes,
                     config_.page_size, config_.shared_bytes,
                     config_.seed + static_cast<uint64_t>(p));
    in.schedule.seed = rng_.NextU64();
    in.schedule.max_jitter = config_.max_jitter;
    seeds.push_back(in);
  }
  for (const FuzzInput& in : seeds) {
    corpus_.push_back(in);
    corpus_hashes_.push_back(HashInput(in));
  }

  FuzzResult result;
  Processed failure = ExecuteBatch(seeds);
  while (!failure.failed && stats_.executions < config_.budget && !time_up()) {
    const int remaining = config_.budget - stats_.executions;
    const int n = std::min(config_.batch, remaining);
    std::vector<FuzzInput> mutants;
    mutants.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const FuzzInput& parent =
          corpus_[static_cast<size_t>(rng_.NextBounded(corpus_.size()))];
      FuzzInput kid = parent;
      bool mutate_workload = rng_.NextBool(0.7);
      const bool mutate_schedule = rng_.NextBool(0.7);
      if (!mutate_workload && !mutate_schedule) {
        mutate_workload = true;
      }
      if (mutate_workload) {
        kid.workload = MutateWorkload(parent.workload, &rng_);
      }
      if (mutate_schedule) {
        kid.schedule = MutateSchedule(parent.schedule, &rng_);
      }
      mutants.push_back(std::move(kid));
    }
    failure = ExecuteBatch(mutants);
  }

  if (failure.failed) {
    result.found_failure = true;
    result.violation = failure.violation;
    FuzzInput minimized =
        MinimizeInput(failure.failing, failure.differential, &result.violation);
    result.repro.input = std::move(minimized);
    result.repro.config = BaseHarness();
    if (failure.differential) {
      result.repro.cross = config_.cross;
    }
    result.repro.violation = result.violation;
  }

  stats_.corpus_size = static_cast<int>(corpus_.size());
  result.stats = stats_;
  result.coverage_points = coverage_.points();
  result.coverage_hits = coverage_.hits();
  result.coverage_report = coverage_.Report();
  return result;
}

}  // namespace fuzz
}  // namespace hlrc

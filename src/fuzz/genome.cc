#include "src/fuzz/genome.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/check.h"

namespace hlrc {
namespace fuzz {
namespace {

using wkld::Record;

// Records the mutation operators may move, drop or rewrite. Sync records
// (lock/unlock/barrier) and the kEnd terminator form the fixed skeleton.
bool Mutable(const Record& rec) {
  return rec.kind == Record::Kind::kCompute || rec.kind == Record::Kind::kAccess ||
         rec.kind == Record::Kind::kPhase;
}

// Picks a random contiguous run of mutable records in `stream`, at most
// `max_len` long. Returns false if the stream has no mutable record.
bool PickMutableRun(const std::vector<Record>& stream, Rng* rng, int max_len,
                    size_t* begin, size_t* len) {
  std::vector<size_t> starts;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (Mutable(stream[i])) {
      starts.push_back(i);
    }
  }
  if (starts.empty()) {
    return false;
  }
  *begin = starts[rng->NextBounded(starts.size())];
  size_t n = 1;
  while (n < static_cast<size_t>(max_len) && *begin + n < stream.size() &&
         Mutable(stream[*begin + n])) {
    ++n;
  }
  *len = 1 + rng->NextBounded(n);
  return true;
}

// Re-clamps one access range into [0, shared_bytes), preserving addr % 8
// (the harness samples 8-byte words) and a minimum 8-byte length.
void ClampRange(AccessRange* r, int64_t shared_bytes) {
  if (r->bytes < 8) {
    r->bytes = 8;
  }
  if (r->addr + static_cast<GlobalAddr>(r->bytes) > static_cast<GlobalAddr>(shared_bytes)) {
    if (r->addr >= static_cast<GlobalAddr>(shared_bytes - 8)) {
      r->addr = static_cast<GlobalAddr>(shared_bytes - 8) & ~static_cast<GlobalAddr>(7);
    }
    r->bytes = shared_bytes - static_cast<int64_t>(r->addr);
  }
}

// Returns indices of kAccess records in `stream`.
std::vector<size_t> AccessIndices(const std::vector<Record>& stream) {
  std::vector<size_t> out;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].kind == Record::Kind::kAccess && !stream[i].ranges.empty()) {
      out.push_back(i);
    }
  }
  return out;
}

void MutateSplice(WorkloadGenome* g, Rng* rng) {
  const int src = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  const int dst = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  size_t begin = 0;
  size_t len = 0;
  if (!PickMutableRun(g->streams[src], rng, /*max_len=*/4, &begin, &len)) {
    return;
  }
  std::vector<Record> chunk(g->streams[src].begin() + static_cast<int64_t>(begin),
                            g->streams[src].begin() + static_cast<int64_t>(begin + len));
  // Insert anywhere before the kEnd terminator.
  std::vector<Record>& d = g->streams[dst];
  const size_t at = rng->NextBounded(d.size());  // d.size() >= 1 (kEnd).
  d.insert(d.begin() + static_cast<int64_t>(std::min(at, d.size() - 1)), chunk.begin(),
           chunk.end());
}

void MutateTruncate(WorkloadGenome* g, Rng* rng) {
  const int node = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  size_t begin = 0;
  size_t len = 0;
  if (!PickMutableRun(g->streams[node], rng, /*max_len=*/8, &begin, &len)) {
    return;
  }
  std::vector<Record>& s = g->streams[node];
  s.erase(s.begin() + static_cast<int64_t>(begin), s.begin() + static_cast<int64_t>(begin + len));
}

void MutateRetargetPage(WorkloadGenome* g, Rng* rng) {
  const int node = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  const std::vector<size_t> acc = AccessIndices(g->streams[node]);
  if (acc.empty()) {
    return;
  }
  Record& rec = g->streams[node][acc[rng->NextBounded(acc.size())]];
  AccessRange& r = rec.ranges[rng->NextBounded(rec.ranges.size())];
  const int64_t pages = g->shared_bytes / g->page_size;
  const int64_t page = static_cast<int64_t>(r.addr) / g->page_size;
  const int64_t delta = rng->NextInt(1, static_cast<int>(std::min<int64_t>(pages - 1, 64)));
  const int64_t new_page = (page + delta) % pages;
  // A whole-page shift preserves addr % 8.
  r.addr = static_cast<GlobalAddr>(new_page * g->page_size +
                                   static_cast<int64_t>(r.addr) % g->page_size);
  ClampRange(&r, g->shared_bytes);
}

void MutatePermuteLocks(WorkloadGenome* g, Rng* rng) {
  std::vector<int64_t> ids;
  for (const std::vector<Record>& s : g->streams) {
    for (const Record& rec : s) {
      if (rec.kind == Record::Kind::kLock) {
        ids.push_back(rec.sync_id);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) {
    return;
  }
  // Seeded Fisher-Yates over the id set, plus a chance of shifting the whole
  // set to fresh ids (different manager nodes: id % nodes).
  std::vector<int64_t> to = ids;
  for (size_t i = to.size(); i > 1; --i) {
    std::swap(to[i - 1], to[rng->NextBounded(i)]);
  }
  const int64_t shift = rng->NextBool(0.5) ? rng->NextInt(0, 2 * g->nodes) : 0;
  std::map<int64_t, int64_t> remap;
  for (size_t i = 0; i < ids.size(); ++i) {
    remap[ids[i]] = to[i] + shift;
  }
  // Applied globally, so acquire/release pairing is preserved on every node.
  for (std::vector<Record>& s : g->streams) {
    for (Record& rec : s) {
      if (rec.kind == Record::Kind::kLock || rec.kind == Record::Kind::kUnlock) {
        rec.sync_id = remap[rec.sync_id];
      }
    }
  }
}

void MutateFlipIntent(WorkloadGenome* g, Rng* rng) {
  const int node = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  const std::vector<size_t> acc = AccessIndices(g->streams[node]);
  if (acc.empty()) {
    return;
  }
  Record& rec = g->streams[node][acc[rng->NextBounded(acc.size())]];
  AccessRange& r = rec.ranges[rng->NextBounded(rec.ranges.size())];
  r.write = !r.write;
}

void MutateComputeJitter(WorkloadGenome* g, Rng* rng) {
  const int node = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  std::vector<size_t> comp;
  for (size_t i = 0; i < g->streams[node].size(); ++i) {
    if (g->streams[node][i].kind == Record::Kind::kCompute) {
      comp.push_back(i);
    }
  }
  if (comp.empty()) {
    return;
  }
  Record& rec = g->streams[node][comp[rng->NextBounded(comp.size())]];
  const int64_t old = rec.duration_ns;
  rec.duration_ns = static_cast<int64_t>(rng->NextBounded(
      static_cast<uint64_t>(std::max<int64_t>(4 * old, 1000)) + 1));
}

void MutateAccessResize(WorkloadGenome* g, Rng* rng) {
  const int node = static_cast<int>(rng->NextInt(0, g->nodes - 1));
  const std::vector<size_t> acc = AccessIndices(g->streams[node]);
  if (acc.empty()) {
    return;
  }
  Record& rec = g->streams[node][acc[rng->NextBounded(acc.size())]];
  AccessRange& r = rec.ranges[rng->NextBounded(rec.ranges.size())];
  // Grow up to 4 pages or shrink down to one word, 8-byte granular.
  const int64_t max_bytes = std::min<int64_t>(4 * g->page_size, g->shared_bytes);
  r.bytes = 8 + static_cast<int64_t>(rng->NextBounded(
                    static_cast<uint64_t>(max_bytes / 8))) * 8;
  ClampRange(&r, g->shared_bytes);
}

}  // namespace

WorkloadGenome SeedWorkload(wkld::SynthPattern pattern, int nodes, int64_t page_size,
                            int64_t shared_bytes, uint64_t seed) {
  wkld::SynthConfig cfg;
  cfg.pattern = pattern;
  cfg.nodes = nodes;
  cfg.page_size = page_size;
  cfg.shared_bytes = shared_bytes;
  cfg.pages_per_node = 2;
  cfg.iterations = 2;
  cfg.ops_per_iter = 4;
  cfg.seed = seed;
  wkld::VectorSink sink(nodes);
  wkld::GenerateSynthetic(cfg, &sink);

  WorkloadGenome g;
  g.nodes = nodes;
  g.page_size = page_size;
  g.shared_bytes = shared_bytes;
  g.allocs = sink.allocs();
  g.origin = std::string("synth-") + wkld::SynthPatternName(pattern);
  g.streams.resize(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    for (const Record& rec : sink.stream(n)) {
      if (rec.kind == Record::Kind::kWrites) {
        continue;  // The harness performs its own (unique-valued) stores.
      }
      g.streams[static_cast<size_t>(n)].push_back(rec);
    }
    HLRC_CHECK(!g.streams[static_cast<size_t>(n)].empty() &&
               g.streams[static_cast<size_t>(n)].back().kind == Record::Kind::kEnd);
  }
  return g;
}

WorkloadGenome MutateWorkload(const WorkloadGenome& parent, Rng* rng) {
  WorkloadGenome g = parent;
  const int ops = static_cast<int>(rng->NextInt(1, 3));
  for (int i = 0; i < ops; ++i) {
    switch (rng->NextBounded(7)) {
      case 0: MutateSplice(&g, rng); break;
      case 1: MutateTruncate(&g, rng); break;
      case 2: MutateRetargetPage(&g, rng); break;
      case 3: MutatePermuteLocks(&g, rng); break;
      case 4: MutateFlipIntent(&g, rng); break;
      case 5: MutateComputeJitter(&g, rng); break;
      default: MutateAccessResize(&g, rng); break;
    }
  }
  return g;
}

ScheduleGenome MutateSchedule(const ScheduleGenome& parent, Rng* rng) {
  ScheduleGenome s = parent;
  switch (rng->NextBounded(4)) {
    case 0:  // Reseed: an entirely fresh decision stream.
      s.seed = rng->NextU64();
      s.prefix.clear();
      break;
    case 1: {  // Extend: pin a few more decisions to fresh random values.
      const int n = static_cast<int>(rng->NextInt(1, 16));
      for (int i = 0; i < n; ++i) {
        s.prefix.push_back(rng->NextU64());
      }
      break;
    }
    case 2:  // Perturb: change one pinned decision, keep everything before.
      if (s.prefix.empty()) {
        s.prefix.push_back(rng->NextU64());
      } else {
        s.prefix[rng->NextBounded(s.prefix.size())] = rng->NextU64();
      }
      break;
    default:  // Truncate: un-pin a tail of decisions.
      if (!s.prefix.empty()) {
        s.prefix.resize(rng->NextBounded(s.prefix.size()));
      }
      break;
  }
  return s;
}

uint64_t HashInput(const FuzzInput& input) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  const WorkloadGenome& g = input.workload;
  mix(static_cast<uint64_t>(g.nodes));
  mix(static_cast<uint64_t>(g.page_size));
  for (const wkld::AllocEntry& a : g.allocs) {
    mix(a.addr);
    mix(static_cast<uint64_t>(a.bytes));
    mix(a.page_aligned ? 1 : 0);
  }
  for (const std::vector<Record>& s : g.streams) {
    for (const Record& rec : s) {
      mix(static_cast<uint64_t>(rec.kind));
      mix(static_cast<uint64_t>(rec.duration_ns));
      mix(static_cast<uint64_t>(rec.sync_id));
      for (const AccessRange& r : rec.ranges) {
        mix(r.addr);
        mix(static_cast<uint64_t>(r.bytes));
        mix(r.write ? 1 : 0);
      }
    }
  }
  mix(input.schedule.seed);
  mix(static_cast<uint64_t>(input.schedule.max_jitter));
  for (uint64_t v : input.schedule.prefix) {
    mix(v);
  }
  return h;
}

}  // namespace fuzz
}  // namespace hlrc

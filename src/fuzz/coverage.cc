#include "src/fuzz/coverage.h"

#include <cstdio>

namespace hlrc {
namespace fuzz {

uint64_t CoverageMap::Mix(uint64_t salt, Domain domain, uint64_t a, uint64_t b) {
  // SplitMix64-style finalization over the four fields. The domain tag is
  // folded in first so (a, b) collisions across domains are as unlikely as
  // any other 64-bit collision.
  uint64_t h = salt + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(domain) + 1);
  for (uint64_t v : {a, b}) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
  }
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void CoverageMap::Cover(Domain domain, uint64_t a, uint64_t b) {
  ++hits_;
  sets_[static_cast<size_t>(domain)].insert(Mix(salt_, domain, a, b));
}

size_t CoverageMap::points() const {
  size_t total = 0;
  for (const auto& s : sets_) {
    total += s.size();
  }
  return total;
}

int64_t CoverageMap::MergeNovel(const CoverageMap& other) {
  int64_t novel = 0;
  for (int d = 0; d < kDomains; ++d) {
    for (uint64_t key : other.sets_[d]) {
      if (sets_[d].insert(key).second) {
        ++novel;
      }
    }
  }
  hits_ += other.hits_;
  return novel;
}

uint64_t CoverageMap::Fingerprint() const {
  // Sum + xor of the (already well-mixed) keys: commutative, so emission and
  // merge order cannot matter.
  uint64_t sum = 0;
  uint64_t x = 0;
  for (const auto& s : sets_) {
    for (uint64_t key : s) {
      sum += key;
      x ^= key;
    }
  }
  return sum ^ (x * 0x9e3779b97f4a7c15ULL) ^ static_cast<uint64_t>(points());
}

std::string CoverageMap::Report() const {
  char line[128];
  std::string out;
  for (int d = 0; d < kDomains; ++d) {
    std::snprintf(line, sizeof(line), "  %-16s %zu\n",
                  CoverageDomainName(static_cast<Domain>(d)), sets_[d].size());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-16s %zu (%lld hits)\n", "total", points(),
                static_cast<long long>(hits_));
  out += line;
  return out;
}

}  // namespace fuzz
}  // namespace hlrc

// Self-contained reproducer files (docs/FUZZING.md).
//
// A repro file carries everything needed to replay one fuzzer finding with
// no corpus, trace file or seed sweep: the harness configuration, the
// workload genome (allocations + per-node record streams) and the schedule
// genome (seed + pinned decision prefix), plus the violation the original
// run produced. `svmfuzz --repro=FILE` replays it and verifies the same
// violation reappears; corpus entries use the same format with an empty
// violation line.
//
// The format is a line-oriented text file ("hlrc-svmfuzz-repro v1"),
// versioned like the other on-disk formats in this repo; parsing rejects
// unknown versions and malformed records with a diagnostic rather than
// guessing.
#ifndef SRC_FUZZ_REPRO_H_
#define SRC_FUZZ_REPRO_H_

#include <string>

#include "src/fuzz/genome.h"
#include "src/fuzz/harness.h"

namespace hlrc {
namespace fuzz {

struct ReproFile {
  FuzzInput input;
  HarnessConfig config;
  // Protocols the differential harness compared (empty: primary run only).
  std::vector<ProtocolKind> cross;
  std::string violation;  // First violation description; empty for corpus entries.
};

std::string SerializeRepro(const ReproFile& repro);
bool ParseRepro(const std::string& text, ReproFile* out, std::string* error);

bool WriteReproFile(const std::string& path, const ReproFile& repro, std::string* error);
bool LoadReproFile(const std::string& path, ReproFile* out, std::string* error);

// Replays a repro exactly as the fuzzer judged it: one run under the primary
// protocol, then (if `cross` is non-empty) the differential comparison.
// Returns the first violation/divergence description, or "" if clean.
std::string ReplayRepro(const ReproFile& repro);

}  // namespace fuzz
}  // namespace hlrc

#endif  // SRC_FUZZ_REPRO_H_

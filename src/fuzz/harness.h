// Fuzzing execution harness (docs/FUZZING.md).
//
// RunGenome executes one FuzzInput on an isolated simulated machine under
// one protocol:
//
//   * The workload genome's record streams replay word-granularly through
//     NodeContext::LoadWord / StoreWord, so every shared read is validated
//     online by the LRC oracle (src/check/oracle.h). Stores use globally
//     unique values — (node, per-node op counter) encoded in the word — so
//     the oracle identifies the originating write of every read exactly.
//   * The schedule genome drives the engine tie-breaker and the network
//     delivery-jitter hook through a prefix-pinned decision stream.
//   * After the streams, all nodes pass a final barrier and node 0 reads
//     back a deterministic sample of single-writer words. Under any release-
//     consistent execution the final barrier orders every write before these
//     reads, so each must return its writer's program-order-last value; the
//     values double as the final-memory-image vector the differential
//     harness compares across protocols.
//
// RunDifferential replays the same input under several protocols and diffs
// the final images plus the protocol-independent totals (application-level
// lock acquires and barriers). Traffic and timing differ across protocols
// by design and are never compared.
#ifndef SRC_FUZZ_HARNESS_H_
#define SRC_FUZZ_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/coverage.h"
#include "src/fault/fault_plan.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/genome.h"
#include "src/net/reliable_channel.h"
#include "src/proto/options.h"

namespace hlrc {
namespace fuzz {

struct HarnessConfig {
  ProtocolKind protocol = ProtocolKind::kHlrc;
  TestMutation mutation = TestMutation::kNone;
  bool permute_tasks = true;
  HomePolicy home_policy = HomePolicy::kBlock;
  bool migrate_homes = false;
  // An Active() plan makes the fabric lossy; RunGenome force-enables
  // reliable delivery in that case (a dropped grant would otherwise abort
  // the run as a deadlock).
  FaultPlan fault = [] {
    FaultPlan p;
    p.seed = 0;  // 0 sentinel: derived from the schedule seed.
    return p;
  }();
  ReliabilityConfig reliability;
};

struct RunOutcome {
  bool ok = true;
  // Oracle violations and final-image mismatches, human-readable.
  std::vector<std::string> violations;
  // Checked single-writer words: address + final value read by node 0.
  std::vector<GlobalAddr> final_addrs;
  std::vector<uint64_t> final_words;
  // Protocol-independent totals (must match across protocols).
  int64_t lock_acquires = 0;
  int64_t barriers = 0;
  int64_t reads_checked = 0;
  uint64_t decisions_used = 0;
  SimTime sim_time = 0;
};

// Runs one input under one protocol. `cov` (optional) receives the run's
// protocol-state coverage points.
RunOutcome RunGenome(const FuzzInput& input, const HarnessConfig& config,
                     CoverageObserver* cov);

struct DifferentialResult {
  bool diverged = false;
  std::vector<std::string> reports;
  int runs = 0;
};

// Replays `input` under every protocol in `protocols` (first entry is the
// reference) and diffs outcomes. Per-run coverage is merged into
// `aggregate` when non-null, salted by protocol kind.
DifferentialResult RunDifferential(const FuzzInput& input, const HarnessConfig& base,
                                   const std::vector<ProtocolKind>& protocols,
                                   CoverageMap* aggregate);

}  // namespace fuzz
}  // namespace hlrc

#endif  // SRC_FUZZ_HARNESS_H_

// Concrete protocol-state coverage map (docs/FUZZING.md).
//
// CoverageMap is the CoverageObserver the fuzzer installs on a System: it
// hashes every (salt, domain, a, b) point into a 64-bit key and keeps the
// distinct set per domain. The salt carries the protocol kind, so the same
// page-transition exercised under HLRC and LRC counts as two points — the
// map measures "protocol behaviors exercised", and a differential run over
// four protocols is worth four clean runs of one.
//
// The map is deterministic: the same run produces the same point set, and
// Fingerprint() is order-independent, so merging per-run maps in any order
// yields the same aggregate (the fuzzer merges parallel batch results in
// slot order anyway, for bit-identical stats at any job count).
#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>

#include "src/common/coverage.h"

namespace hlrc {
namespace fuzz {

class CoverageMap : public CoverageObserver {
 public:
  // `salt` distinguishes otherwise-identical point spaces (the fuzzer passes
  // the ProtocolKind under which the run executed).
  explicit CoverageMap(uint64_t salt = 0) : salt_(salt) {}

  void Cover(Domain domain, uint64_t a, uint64_t b) override;

  // Distinct coverage points seen, over all domains.
  size_t points() const;
  // Total emissions (distinct or not).
  int64_t hits() const { return hits_; }
  // Distinct points in one domain.
  size_t DomainPoints(Domain domain) const {
    return sets_[static_cast<size_t>(domain)].size();
  }

  // Adds every point of `other` to this map; returns how many were new.
  // Zero means `other` explored nothing this map had not already seen.
  int64_t MergeNovel(const CoverageMap& other);

  // Order-independent digest of the point set: equal maps have equal
  // fingerprints regardless of emission or merge order.
  uint64_t Fingerprint() const;

  // Deterministic human-readable breakdown (one line per domain + total).
  std::string Report() const;

 private:
  static uint64_t Mix(uint64_t salt, Domain domain, uint64_t a, uint64_t b);

  uint64_t salt_;
  std::array<std::unordered_set<uint64_t>, kDomains> sets_;
  int64_t hits_ = 0;
};

}  // namespace fuzz
}  // namespace hlrc

#endif  // SRC_FUZZ_COVERAGE_H_

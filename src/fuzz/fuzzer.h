// Coverage-guided protocol fuzzer (docs/FUZZING.md).
//
// The session loop:
//
//   1. Seed the corpus with tiny genomes of all six synthetic sharing
//      patterns (src/wkld/synth.h), one schedule genome each.
//   2. Draw a batch of mutants (parent picked from the corpus, workload
//      and/or schedule mutated), execute them under the primary protocol in
//      parallel (src/sim/sweep.h), and merge the per-run coverage maps into
//      the aggregate in slot order — so corpus growth, stats and the final
//      coverage map are bit-identical at any --jobs count.
//   3. An input whose coverage contains points the aggregate has never seen
//      is coverage-novel: it joins the corpus (when feedback is on) and is
//      additionally replayed through the differential cross-protocol
//      harness.
//   4. Any oracle violation, final-image mismatch or cross-protocol
//      divergence stops the session: the input is minimized (workload
//      record removal + schedule-prefix truncation, re-checking the failure
//      after each step) and serialized as a self-contained repro file.
//
// With feedback off the same machinery runs as a uniform random sweep over
// the seed genomes — the control arm for the guided-vs-random coverage
// comparison pinned in tests/test_fuzz.cc.
#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/coverage.h"
#include "src/fuzz/genome.h"
#include "src/fuzz/harness.h"
#include "src/fuzz/repro.h"

namespace hlrc {
namespace fuzz {

struct FuzzConfig {
  uint64_t seed = 1;
  // Total harness executions (seed runs, mutants and differential replays
  // all count). The session stops when the budget is spent.
  int budget = 1000;
  int jobs = 1;
  int batch = 16;

  // Machine shape for every run (litmus-scale keeps runs cheap; the
  // schedule and mutations do the exploring).
  int nodes = 4;
  int64_t page_size = 512;
  int64_t shared_bytes = 1 << 20;
  SimTime max_jitter = Micros(150);

  ProtocolKind primary = ProtocolKind::kHlrc;
  // Differential set; the first entry is the reference image.
  std::vector<ProtocolKind> cross = {ProtocolKind::kLrc, ProtocolKind::kErc,
                                     ProtocolKind::kHlrc, ProtocolKind::kAurc};
  // Seeded protocol bug for canary regressions (tests/test_fuzz.cc, CI).
  TestMutation mutation = TestMutation::kNone;

  bool feedback = true;      // Coverage-guided corpus growth.
  bool differential = true;  // Cross-protocol replay of novel inputs.

  // Optional fault injection under every run (reliable delivery is forced
  // on by the harness when active).
  double fault_drop = 0.0;
  double fault_delay = 0.0;

  // Wall-clock bound for CI smoke sessions; 0 = none. Checked between
  // batches only, so results up to the stopping point stay deterministic.
  double max_seconds = 0.0;

  // Extra executions the minimizer may spend shrinking a failure.
  int minimize_budget = 200;
};

struct FuzzStats {
  int executions = 0;
  int batches = 0;
  int corpus_size = 0;
  int novel_inputs = 0;
  int differential_runs = 0;
};

struct FuzzResult {
  bool found_failure = false;
  std::string violation;  // First (minimized) violation description.
  ReproFile repro;        // Valid when found_failure.
  FuzzStats stats;
  size_t coverage_points = 0;
  int64_t coverage_hits = 0;
  std::string coverage_report;
};

class Fuzzer {
 public:
  explicit Fuzzer(const FuzzConfig& config);

  // Runs one session to budget exhaustion, wall-clock bound or first
  // failure. Deterministic for a given config when max_seconds is 0.
  FuzzResult Run();

  // Post-Run inspection (corpus entries in discovery order; aggregate map).
  const std::vector<FuzzInput>& corpus() const { return corpus_; }
  const CoverageMap& coverage() const { return coverage_; }

 private:
  HarnessConfig BaseHarness() const;
  // Executes `inputs` in parallel under the primary protocol, then folds
  // results in slot order. Returns the first failing description, if any.
  struct Processed {
    bool failed = false;
    FuzzInput failing;
    std::string violation;
    bool differential = false;  // Failure came from the differential harness.
  };
  Processed ExecuteBatch(const std::vector<FuzzInput>& inputs);
  // Re-checks a candidate during minimization; empty string = passes.
  std::string Check(const FuzzInput& input, bool differential, int* spent);
  FuzzInput MinimizeInput(const FuzzInput& failing, bool differential,
                          std::string* violation);

  FuzzConfig config_;
  Rng rng_;
  CoverageMap coverage_;
  std::vector<FuzzInput> corpus_;
  std::vector<uint64_t> corpus_hashes_;
  FuzzStats stats_;
};

}  // namespace fuzz
}  // namespace hlrc

#endif  // SRC_FUZZ_FUZZER_H_

// Fuzzer input genomes and mutation operators (docs/FUZZING.md).
//
// A fuzz input is a pair of genomes:
//
//   * WorkloadGenome — a synthetic-workload record stream (src/wkld) carved
//     down to the protocol-relevant skeleton: compute charges, access
//     grants, and the synchronization sequence. The harness performs its own
//     stores with globally unique values, so kWrites records are stripped at
//     seed time and never mutated.
//   * ScheduleGenome — the chaos-decision string feeding the engine
//     tie-breaker and the network delivery-jitter hook (src/check/explorer
//     semantics): decision i < prefix.size() is pinned to prefix[i], later
//     decisions continue from the seeded Rng. Prefix-preserving mutations
//     perturb a single decision while replaying everything before it.
//
// Mutations preserve run liveness by construction: only non-sync records
// (compute/access/phase) are spliced, truncated or retargeted, and lock ids
// are remapped globally, so the per-node barrier sequences and lock pairing
// that System::Run's deadlock detector enforces stay intact.
#ifndef SRC_FUZZ_GENOME_H_
#define SRC_FUZZ_GENOME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/wkld/synth.h"
#include "src/wkld/workload.h"

namespace hlrc {
namespace fuzz {

struct WorkloadGenome {
  int nodes = 0;
  int64_t page_size = 0;
  int64_t shared_bytes = 0;
  std::vector<wkld::AllocEntry> allocs;
  // One record stream per node, each terminated by kEnd; kWrites never
  // appears (see header comment).
  std::vector<std::vector<wkld::Record>> streams;
  std::string origin;  // Provenance for reports ("synth-migratory", ...).
};

struct ScheduleGenome {
  uint64_t seed = 1;
  SimTime max_jitter = 0;
  std::vector<uint64_t> prefix;  // Pinned decisions; raw 64-bit draws.
};

struct FuzzInput {
  WorkloadGenome workload;
  ScheduleGenome schedule;
};

// Builds a seed genome from one synthetic sharing pattern at fuzzing scale
// (tiny record streams; the schedule explores, the workload only has to
// reach the interesting protocol states).
WorkloadGenome SeedWorkload(wkld::SynthPattern pattern, int nodes, int64_t page_size,
                            int64_t shared_bytes, uint64_t seed);

// Applies 1-3 randomly chosen workload mutation operators:
// splice / truncate (non-sync record runs), retarget-page (shift an access
// range by whole pages), permute-locks (global lock-id remap), flip-intent
// (read<->write), compute-jitter, access-resize.
WorkloadGenome MutateWorkload(const WorkloadGenome& parent, Rng* rng);

// Applies one schedule mutation operator: reseed, extend-prefix,
// perturb-prefix or truncate-prefix.
ScheduleGenome MutateSchedule(const ScheduleGenome& parent, Rng* rng);

// Structural hash of an input (streams + allocs + schedule), for corpus
// dedup of byte-identical inputs.
uint64_t HashInput(const FuzzInput& input);

}  // namespace fuzz
}  // namespace hlrc

#endif  // SRC_FUZZ_GENOME_H_
